package persona

// Integration tests for storage tiering: the decoded-chunk cache must be
// invisible to pipeline output (byte-identical SAM with the cache on or
// off, serial or parallel), warm runs must be served from the cache, and
// the sort's spill-compression policy must follow the measured store
// profile — compress behind a high-latency store, stay raw locally.

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"persona/internal/storage"
)

// runFusedSAM runs the canonical fused pipeline on an existing session and
// returns the exported SAM bytes plus the report.
func runFusedSAM(t *testing.T, sess *Session, dataset string, idx *Index) ([]byte, *PipelineReport) {
	t.Helper()
	var sam bytes.Buffer
	report, err := sess.Read(dataset).
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&sam).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sam.Bytes(), report
}

// TestPipelineCacheEquivalence is the cache-transparency acceptance check:
// the fused pipeline must produce byte-identical output with the chunk
// cache disabled and enabled (cold and warm), at GOMAXPROCS 1 and 4.
func TestPipelineCacheEquivalence(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)

		off := NewSession(store, SessionOptions{CacheBytes: -1})
		samOff, repOff := runFusedSAM(t, off, "ds", idx)
		if repOff.Cache != nil {
			t.Fatalf("GOMAXPROCS=%d: disabled cache still reported stats %+v", procs, repOff.Cache)
		}
		off.Close()

		on := NewSession(store, SessionOptions{})
		samCold, repCold := runFusedSAM(t, on, "ds", idx)
		samWarm, repWarm := runFusedSAM(t, on, "ds", idx)
		on.Close()

		runtime.GOMAXPROCS(prev)

		if !bytes.Equal(samOff, samCold) {
			t.Fatalf("GOMAXPROCS=%d: cold cached output differs from uncached (%d vs %d bytes)",
				procs, len(samCold), len(samOff))
		}
		if !bytes.Equal(samOff, samWarm) {
			t.Fatalf("GOMAXPROCS=%d: warm cached output differs from uncached (%d vs %d bytes)",
				procs, len(samWarm), len(samOff))
		}
		if repCold == nil || repCold.Cache == nil || repCold.Cache.Misses == 0 {
			t.Fatalf("GOMAXPROCS=%d: cold run reported no cache misses: %+v", procs, repCold.Cache)
		}
		if repWarm.Cache == nil || repWarm.Cache.Misses != 0 {
			t.Fatalf("GOMAXPROCS=%d: warm run missed the cache: %+v", procs, repWarm.Cache)
		}
		if repWarm.Cache.Hits != repCold.Cache.Misses {
			t.Fatalf("GOMAXPROCS=%d: warm hits %d != cold misses %d",
				procs, repWarm.Cache.Hits, repCold.Cache.Misses)
		}
	}
}

// TestPipelineWarmCacheStats checks the session-level accounting the job
// server exposes: after a cold and a warm run the cumulative stats must be
// the sum of the per-run deltas, and FlushCache must make the next run cold
// again.
func TestPipelineWarmCacheStats(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	_, cold := runFusedSAM(t, sess, "ds", idx)
	_, warm := runFusedSAM(t, sess, "ds", idx)

	total, ok := sess.CacheStats()
	if !ok {
		t.Fatal("session has no cache")
	}
	if total.Hits != cold.Cache.Hits+warm.Cache.Hits ||
		total.Misses != cold.Cache.Misses+warm.Cache.Misses {
		t.Fatalf("cumulative stats %+v don't sum the run deltas (%+v, %+v)",
			total, cold.Cache, warm.Cache)
	}
	if total.Bytes <= 0 || total.Entries <= 0 {
		t.Fatalf("no resident entries after warm run: %+v", total)
	}

	entries, bytesFlushed := sess.FlushCache()
	if entries != total.Entries || bytesFlushed != total.Bytes {
		t.Fatalf("FlushCache dropped (%d, %d), stats said (%d, %d)",
			entries, bytesFlushed, total.Entries, total.Bytes)
	}
	_, recold := runFusedSAM(t, sess, "ds", idx)
	if recold.Cache.Misses == 0 || recold.Cache.Hits != 0 {
		t.Fatalf("post-flush run was not cold: %+v", recold.Cache)
	}
}

// TestPipelineSpillCompressionDecision drives the cost model end to end:
// the same pipeline over the same data must compress its sort spills behind
// a profiled 25 ms store (transfer-dominated), keep them raw on a profiled
// local store, and keep them raw with no profile at all — all three
// producing identical SAM output (the merge reads either encoding).
func TestPipelineSpillCompressionDecision(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}

	run := func(s storage.Store) ([]byte, *SpillReport) {
		sess := NewSession(s, SessionOptions{})
		defer sess.Close()
		sam, rep := runFusedSAM(t, sess, "ds", idx)
		if rep.Spill == nil || rep.Spill.Runs == 0 {
			t.Fatalf("sort spilled no runs: %+v", rep.Spill)
		}
		t.Logf("spill: %+v", *rep.Spill)
		return sam, rep.Spill
	}

	// Remote: 25 ms per read. The pipeline's own source reads prime the
	// RetryStore profile ring before the first superchunk spills, so the
	// policy sees a slow, low-throughput store and compresses.
	remoteSAM, remote := run(storage.NewRetryStore(
		storage.WithLatency(store, 25*time.Millisecond), storage.RetryPolicy{}))
	if remote.Compressed != remote.Runs || remote.Decision != "transfer-dominated" {
		t.Fatalf("remote spills %+v, want all compressed/transfer-dominated", remote)
	}
	if remote.StoredBytes >= remote.RawBytes {
		t.Fatalf("compressed spills stored %d bytes >= raw %d", remote.StoredBytes, remote.RawBytes)
	}

	// Local: profiled, but sub-threshold latency — never burn merge CPU.
	localSAM, local := run(storage.NewRetryStore(store, storage.RetryPolicy{}))
	if local.Compressed != 0 || local.Decision != "local" {
		t.Fatalf("local spills %+v, want raw/local", local)
	}

	// Unprofiled plain store: no decider at all, historical raw behavior.
	plainSAM, plain := run(store)
	if plain.Compressed != 0 || plain.Decision != "default-raw" {
		t.Fatalf("unprofiled spills %+v, want raw/default-raw", plain)
	}

	if !bytes.Equal(remoteSAM, localSAM) || !bytes.Equal(remoteSAM, plainSAM) {
		t.Fatal("spill encoding changed pipeline output")
	}
}
