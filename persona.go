// Package persona is a Go reproduction of "Persona: A High-Performance
// Bioinformatics Framework" (Byma et al., USENIX ATC 2017): a dataflow
// framework for cluster-scale bioinformatics built around the Aggregate
// Genomic Data (AGD) column-store format.
//
// The package is the public facade — the equivalent of the paper's thin
// client library (§4.1). Its primary abstraction is the Session/Pipeline
// pair: a Session owns the long-lived runtime (the store, one shared
// work-stealing executor, the chunk pools, a reference-index cache), and a
// Pipeline is a fluent, validated stage graph whose Run streams AGD chunks
// stage-to-stage over that runtime. A whole-genome preprocessing workflow
// is one composed graph — no intermediate dataset is written between
// stages (sort, a global barrier, spills temporary run blobs only):
//
//	sess := persona.NewSession(store, persona.SessionOptions{})
//	defer sess.Close()
//	report, err := sess.Read("patient").
//		Align(idx, persona.AlignOptions{}).
//		Sort(persona.ByLocation).
//		MarkDuplicates().
//		ExportSAM(os.Stdout).
//		Run(ctx)
//
// The stages cover the full pipeline the paper evaluates:
//
//   - FASTQ import into AGD and export to FASTQ/SAM/BAM (§5.7)
//   - single-server dataflow alignment with the SNAP-style aligner (§4.3)
//   - distributed alignment across worker nodes fed by a manifest server
//     (§5.2, §5.5)
//   - external-merge sorting by location or read ID (§4.3, Table 2)
//   - Samblaster-style duplicate marking on the results column (§5.6)
//   - filtering and pileup-based variant calling (§1, §8)
//
// Every stage also remains available as a one-shot free function (Align,
// Sort, MarkDuplicates, Filter, Export*, Import*, CallVariants) — thin
// wrappers that run a single stage against the store directly, for callers
// that do not need composition. All of them take a context.Context and
// honor cancellation per chunk.
//
// Storage backends (local directories, an in-memory store, and a Ceph-like
// replicated object store) implement the same BlobStore interface, so
// pipelines are storage-agnostic (§4.2). See ROADMAP.md for the map from
// paper sections to open work and PERF.md for measured results, including
// the fused-pipeline wall/alloc deltas.
package persona

import (
	"context"
	"io"

	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/cluster"
	"persona/internal/core"
	"persona/internal/filter"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/genome"
	"persona/internal/markdup"
	"persona/internal/storage"
	"persona/internal/varcall"
)

// Re-exported core types, so library users need only this package for the
// common paths.
type (
	// Store is the blob-storage interface datasets live in.
	Store = storage.Store
	// Manifest describes an AGD dataset.
	Manifest = agd.Manifest
	// Dataset provides read access to an AGD dataset.
	Dataset = agd.Dataset
	// Result is one alignment outcome record.
	Result = agd.Result
	// Genome is a reference genome.
	Genome = genome.Genome
	// Index is a SNAP-style reference seed index.
	Index = snap.Index
	// AlignReport summarizes a single-server alignment run.
	AlignReport = core.AlignReport
	// ClusterReport summarizes a distributed alignment run.
	ClusterReport = cluster.Report
	// SortKey names the sort order of a dataset.
	SortKey = agdsort.Key
	// DupStats reports a duplicate-marking pass.
	DupStats = markdup.Stats
	// StorageStats counts a resilient store's retry/hedge activity
	// (storage.RetryStats).
	StorageStats = storage.RetryStats
	// CacheStats counts the session chunk cache's hits, misses, fills and
	// evictions (agd.CacheStats).
	CacheStats = agd.CacheStats
	// SpillReport summarizes a sort's spill-compression decisions
	// (agdsort.SpillReport).
	SpillReport = agdsort.SpillReport
	// RetryPolicy tunes a resilient store wrapper (NewRetryStore).
	RetryPolicy = storage.RetryPolicy
	// FaultPolicy scripts a fault-injecting store wrapper (NewFaultStore).
	FaultPolicy = storage.FaultPolicy
	// OpFaults is a FaultPolicy's per-operation fault mix.
	OpFaults = storage.OpFaults
	// KeyFaults targets a fault mix at blobs whose name contains a substring.
	KeyFaults = storage.KeyFaults
)

// Sort orders.
const (
	ByLocation = agdsort.ByLocation
	ByMetadata = agdsort.ByMetadata
)

// NewLocalStore opens a Store over a local directory.
func NewLocalStore(dir string) (Store, error) { return storage.NewLocal(dir) }

// NewMemStore returns an in-memory Store (tests, experiments).
func NewMemStore() Store { return storage.NewMem() }

// NewObjectStore returns a Ceph-like replicated object store with the
// paper's testbed defaults (7 OSDs, 3-way replication).
func NewObjectStore() (*storage.ObjectStore, error) {
	return storage.NewObjectStore(storage.ObjectStoreConfig{})
}

// NewRetryStore wraps a Store with the resilience layer: per-attempt
// timeouts, capped exponential backoff with jitter, a retry budget,
// transient-vs-permanent classification, and hedged async reads. A Session
// over a resilient store surfaces its activity via Session.ResilienceStats
// and per-run in PipelineReport.Storage.
func NewRetryStore(inner Store, pol RetryPolicy) *storage.RetryStore {
	return storage.NewRetryStore(inner, pol)
}

// NewFaultStore wraps a Store with seeded deterministic fault injection
// (transient errors, latency spikes, stalls, corrupt reads) for chaos
// testing. Close it to unblock injected stalls.
func NewFaultStore(inner Store, pol FaultPolicy) *storage.FaultStore {
	return storage.NewFaultStore(inner, pol)
}

// SynthesizeGenome generates the deterministic synthetic reference used in
// place of hg19 (the real reference cannot ship with the repository).
func SynthesizeGenome(totalBases int, seed int64) (*Genome, error) {
	return genome.Synthesize(genome.DefaultSyntheticConfig(totalBases, seed))
}

// BuildIndex builds a SNAP-style seed index over a reference genome. When
// serving repeated requests, prefer Session.Index, which caches the build.
func BuildIndex(g *Genome) (*Index, error) {
	return snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
}

// RefSeqs derives manifest reference entries from a genome.
func RefSeqs(g *Genome) []agd.RefSeq { return agd.RefSeqsFromGenome(g) }

// ImportFASTQ converts a FASTQ stream into an AGD dataset and returns its
// manifest and record count — the one-stage form of the pipeline source
// Session.ImportFASTQ.
func ImportFASTQ(ctx context.Context, store Store, name string, src io.Reader, refs []agd.RefSeq, chunkSize int) (*Manifest, uint64, error) {
	return fastq.Import(ctx, store, name, src, fastq.ImportOptions{ChunkSize: chunkSize, RefSeqs: refs})
}

// OpenDataset opens an existing AGD dataset.
func OpenDataset(store Store, name string) (*Dataset, error) { return agd.Open(store, name) }

// AlignOptions configures Align.
type AlignOptions struct {
	// ExecutorThreads sizes the shared compute executor; 0 means 2. In a
	// Pipeline the executor is session-owned and this field is ignored.
	ExecutorThreads int
	// MaxDist is the aligner's maximum edit distance; 0 means 12.
	MaxDist int
	// Prefetch is the input stream's chunk-fetch window: how many chunks'
	// column blobs the pipeline keeps in flight, counting the one being
	// decoded. 1 fetches synchronously; 0 picks the pipeline default. In a
	// Pipeline the window is session-owned and this field is ignored.
	Prefetch int
}

// Align runs the single-server Persona alignment pipeline over a dataset,
// appending a results column.
func Align(ctx context.Context, store Store, dataset string, idx *Index, opts AlignOptions) (*AlignReport, *Manifest, error) {
	return core.Align(ctx, core.AlignConfig{
		Store:           store,
		Dataset:         dataset,
		Index:           idx,
		Aligner:         snap.Config{MaxDist: opts.MaxDist},
		ExecutorThreads: opts.ExecutorThreads,
		Prefetch:        opts.Prefetch,
	})
}

// AlignDistributed aligns a dataset across nodes worker nodes coordinated
// by a TCP manifest server (§5.2). Session.AlignDistributed is the form
// that shares a session's executor and warm index cache.
func AlignDistributed(ctx context.Context, store Store, dataset string, idx *Index, nodes, threadsPerNode int) (*ClusterReport, *Manifest, error) {
	return cluster.Align(ctx, store, dataset, idx, cluster.Config{
		Nodes:          nodes,
		ThreadsPerNode: threadsPerNode,
	})
}

// Sort externally sorts a dataset by the given key into outputName (empty
// for "<name>.sorted") and returns the sorted manifest — the one-stage form
// of the pipeline stage Pipeline.Sort.
func Sort(ctx context.Context, store Store, dataset string, by SortKey, outputName string) (*Manifest, error) {
	return agdsort.Sort(ctx, store, dataset, agdsort.Options{By: by, OutputName: outputName})
}

// MarkDuplicates flags duplicate reads in a dataset's results column — the
// one-stage form of Pipeline.MarkDuplicates.
func MarkDuplicates(ctx context.Context, store Store, dataset string) (DupStats, error) {
	return markdup.Mark(ctx, store, dataset)
}

// ExportSAM streams a dataset out as SAM text — the one-stage form of
// Pipeline.ExportSAM.
func ExportSAM(ctx context.Context, store Store, dataset string, dst io.Writer) (uint64, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return 0, err
	}
	return sam.Export(ctx, ds, dst)
}

// ExportBAM streams a dataset out as BAM — the one-stage form of
// Pipeline.ExportBAM.
func ExportBAM(ctx context.Context, store Store, dataset string, dst io.Writer) (uint64, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return 0, err
	}
	return bam.Export(ctx, ds, dst)
}

// ExportFASTQ streams a dataset's reads back out as FASTQ — the one-stage
// form of Pipeline.ExportFASTQ.
func ExportFASTQ(ctx context.Context, store Store, dataset string, dst io.Writer) (uint64, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return 0, err
	}
	return fastq.Export(ctx, ds, dst)
}

// ImportSAM converts an aligned SAM stream into an AGD dataset with all
// four standard columns; reference sequences come from the @SQ header.
func ImportSAM(ctx context.Context, store Store, name string, src io.Reader, chunkSize int) (*Manifest, uint64, error) {
	return sam.Import(ctx, store, name, src, sam.ImportOptions{ChunkSize: chunkSize})
}

// Filter predicates, re-exported from internal/filter.
var (
	// FilterMappedOnly keeps aligned reads.
	FilterMappedOnly = filter.MappedOnly
	// FilterMinMapQ keeps reads at or above a mapping quality.
	FilterMinMapQ = filter.MinMapQ
	// FilterDropDuplicates keeps non-duplicate reads (run MarkDuplicates
	// first).
	FilterDropDuplicates = filter.DropDuplicates
	// FilterRegion keeps reads starting in [start, end) of the global
	// coordinate space.
	FilterRegion = filter.Region
	// FilterAnd combines predicates conjunctively.
	FilterAnd = filter.And
)

// FilterPredicate decides whether a record survives a Filter pass.
type FilterPredicate = filter.Predicate

// FilterStats reports a filter pass.
type FilterStats = filter.Stats

// Filter writes the subset of a dataset matching pred into outputName
// (empty for "<name>.filtered") — the one-stage form of Pipeline.Filter.
func Filter(ctx context.Context, store Store, dataset string, pred FilterPredicate, outputName string) (*Manifest, FilterStats, error) {
	return filter.Run(ctx, store, dataset, pred, filter.Options{OutputName: outputName})
}

// Variant is one called SNP.
type Variant = varcall.Variant

// CallVariants runs the pileup-based SNP caller over an aligned dataset
// (§8's variant-calling stage) with default options.
func CallVariants(ctx context.Context, store Store, dataset string, ref *Genome) ([]Variant, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return nil, err
	}
	return varcall.CallDataset(ctx, ds, ref, varcall.NewOptions())
}

// WriteVCF renders variant calls as a VCF 4.2 stream.
func WriteVCF(w io.Writer, ref *Genome, variants []Variant) error {
	return varcall.WriteVCF(w, agd.RefSeqsFromGenome(ref), variants)
}

// BuildBWAIndex builds the FM-index used by the BWA alignment engine.
func BuildBWAIndex(g *Genome) (*bwa.FMIndex, error) { return bwa.NewFMIndex(g) }

// AlignBWA runs the single-server pipeline with the BWA-MEM-style engine.
func AlignBWA(ctx context.Context, store Store, dataset string, fm *bwa.FMIndex, g *Genome, paired bool) (*AlignReport, *Manifest, error) {
	return core.Align(ctx, core.AlignConfig{
		Store:   store,
		Dataset: dataset,
		Engine:  core.EngineBWA,
		FMIndex: fm,
		Genome:  g,
		Paired:  paired,
	})
}

// AlignPaired runs the single-server SNAP pipeline in paired-end mode
// (records 2i and 2i+1 form pairs).
func AlignPaired(ctx context.Context, store Store, dataset string, idx *Index, opts AlignOptions) (*AlignReport, *Manifest, error) {
	return core.Align(ctx, core.AlignConfig{
		Store:           store,
		Dataset:         dataset,
		Index:           idx,
		Aligner:         snap.Config{MaxDist: opts.MaxDist},
		ExecutorThreads: opts.ExecutorThreads,
		Prefetch:        opts.Prefetch,
		Paired:          true,
	})
}
