// Package persona is a Go reproduction of "Persona: A High-Performance
// Bioinformatics Framework" (Byma et al., USENIX ATC 2017): a dataflow
// framework for cluster-scale bioinformatics built around the Aggregate
// Genomic Data (AGD) column-store format.
//
// The package is the public facade — the equivalent of the paper's thin
// Python library (§4.1). It covers the full pipeline the paper evaluates:
//
//   - FASTQ import into AGD and export to FASTQ/SAM/BAM (§5.7)
//   - single-server dataflow alignment with the SNAP-style aligner (§4.3)
//   - distributed alignment across worker nodes fed by a manifest server
//     (§5.2, §5.5)
//   - external-merge sorting by location or read ID (§4.3, Table 2)
//   - Samblaster-style duplicate marking on the results column (§5.6)
//
// Storage backends (local directories, an in-memory store, and a Ceph-like
// replicated object store) implement the same BlobStore interface, so
// pipelines are storage-agnostic (§4.2). See DESIGN.md for the map from
// paper sections to packages and EXPERIMENTS.md for reproduced results.
package persona

import (
	"context"
	"io"

	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/cluster"
	"persona/internal/core"
	"persona/internal/filter"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/genome"
	"persona/internal/markdup"
	"persona/internal/storage"
	"persona/internal/varcall"
)

// Re-exported core types, so library users need only this package for the
// common paths.
type (
	// Store is the blob-storage interface datasets live in.
	Store = storage.Store
	// Manifest describes an AGD dataset.
	Manifest = agd.Manifest
	// Dataset provides read access to an AGD dataset.
	Dataset = agd.Dataset
	// Result is one alignment outcome record.
	Result = agd.Result
	// Genome is a reference genome.
	Genome = genome.Genome
	// Index is a SNAP-style reference seed index.
	Index = snap.Index
	// AlignReport summarizes a single-server alignment run.
	AlignReport = core.AlignReport
	// ClusterReport summarizes a distributed alignment run.
	ClusterReport = cluster.Report
	// SortStats names the sort order of a dataset.
	SortKey = agdsort.Key
	// DupStats reports a duplicate-marking pass.
	DupStats = markdup.Stats
)

// Sort orders.
const (
	ByLocation = agdsort.ByLocation
	ByMetadata = agdsort.ByMetadata
)

// NewLocalStore opens a Store over a local directory.
func NewLocalStore(dir string) (Store, error) { return storage.NewLocal(dir) }

// NewMemStore returns an in-memory Store (tests, experiments).
func NewMemStore() Store { return storage.NewMem() }

// NewObjectStore returns a Ceph-like replicated object store with the
// paper's testbed defaults (7 OSDs, 3-way replication).
func NewObjectStore() (*storage.ObjectStore, error) {
	return storage.NewObjectStore(storage.ObjectStoreConfig{})
}

// SynthesizeGenome generates the deterministic synthetic reference used in
// place of hg19 (see DESIGN.md §3).
func SynthesizeGenome(totalBases int, seed int64) (*Genome, error) {
	return genome.Synthesize(genome.DefaultSyntheticConfig(totalBases, seed))
}

// BuildIndex builds a SNAP-style seed index over a reference genome.
func BuildIndex(g *Genome) (*Index, error) {
	return snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
}

// RefSeqs derives manifest reference entries from a genome.
func RefSeqs(g *Genome) []agd.RefSeq { return agd.RefSeqsFromGenome(g) }

// ImportFASTQ converts a FASTQ stream into an AGD dataset and returns its
// manifest and record count.
func ImportFASTQ(store Store, name string, src io.Reader, refs []agd.RefSeq, chunkSize int) (*Manifest, uint64, error) {
	return fastq.Import(store, name, src, fastq.ImportOptions{ChunkSize: chunkSize, RefSeqs: refs})
}

// OpenDataset opens an existing AGD dataset.
func OpenDataset(store Store, name string) (*Dataset, error) { return agd.Open(store, name) }

// AlignOptions configures Align.
type AlignOptions struct {
	// ExecutorThreads sizes the shared compute executor; 0 means 2.
	ExecutorThreads int
	// MaxDist is the aligner's maximum edit distance; 0 means 12.
	MaxDist int
	// Prefetch is the input stream's chunk-fetch window: how many chunks'
	// column blobs the pipeline keeps in flight, counting the one being
	// decoded. 1 fetches synchronously; 0 picks the pipeline default.
	Prefetch int
}

// Align runs the single-server Persona alignment pipeline over a dataset,
// appending a results column.
func Align(ctx context.Context, store Store, dataset string, idx *Index, opts AlignOptions) (*AlignReport, *Manifest, error) {
	return core.Align(ctx, core.AlignConfig{
		Store:           store,
		Dataset:         dataset,
		Index:           idx,
		Aligner:         snap.Config{MaxDist: opts.MaxDist},
		ExecutorThreads: opts.ExecutorThreads,
		Prefetch:        opts.Prefetch,
	})
}

// AlignDistributed aligns a dataset across nodes worker nodes coordinated
// by a TCP manifest server (§5.2).
func AlignDistributed(store Store, dataset string, idx *Index, nodes, threadsPerNode int) (*ClusterReport, *Manifest, error) {
	return cluster.Align(store, dataset, idx, cluster.Config{
		Nodes:          nodes,
		ThreadsPerNode: threadsPerNode,
	})
}

// Sort externally sorts a dataset by the given key into outputName (empty
// for "<name>.sorted") and returns the sorted manifest.
func Sort(store Store, dataset string, by SortKey, outputName string) (*Manifest, error) {
	return agdsort.Sort(store, dataset, agdsort.Options{By: by, OutputName: outputName})
}

// MarkDuplicates flags duplicate reads in a dataset's results column.
func MarkDuplicates(store Store, dataset string) (DupStats, error) {
	return markdup.Mark(store, dataset)
}

// ExportSAM streams a dataset out as SAM text.
func ExportSAM(store Store, dataset string, dst io.Writer) (uint64, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return 0, err
	}
	return sam.Export(ds, dst)
}

// ExportBAM streams a dataset out as BAM.
func ExportBAM(store Store, dataset string, dst io.Writer) (uint64, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return 0, err
	}
	return bam.Export(ds, dst)
}

// ExportFASTQ streams a dataset's reads back out as FASTQ.
func ExportFASTQ(store Store, dataset string, dst io.Writer) (uint64, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return 0, err
	}
	return fastq.Export(ds, dst)
}

// ImportSAM converts an aligned SAM stream into an AGD dataset with all
// four standard columns; reference sequences come from the @SQ header.
func ImportSAM(store Store, name string, src io.Reader, chunkSize int) (*Manifest, uint64, error) {
	return sam.Import(store, name, src, sam.ImportOptions{ChunkSize: chunkSize})
}

// Filter predicates, re-exported from internal/filter.
var (
	// FilterMappedOnly keeps aligned reads.
	FilterMappedOnly = filter.MappedOnly
	// FilterMinMapQ keeps reads at or above a mapping quality.
	FilterMinMapQ = filter.MinMapQ
	// FilterDropDuplicates keeps non-duplicate reads (run MarkDuplicates
	// first).
	FilterDropDuplicates = filter.DropDuplicates
	// FilterRegion keeps reads starting in [start, end) of the global
	// coordinate space.
	FilterRegion = filter.Region
	// FilterAnd combines predicates conjunctively.
	FilterAnd = filter.And
)

// FilterPredicate decides whether a record survives a Filter pass.
type FilterPredicate = filter.Predicate

// FilterStats reports a filter pass.
type FilterStats = filter.Stats

// Filter writes the subset of a dataset matching pred into outputName
// (empty for "<name>.filtered").
func Filter(store Store, dataset string, pred FilterPredicate, outputName string) (*Manifest, FilterStats, error) {
	return filter.Run(store, dataset, pred, filter.Options{OutputName: outputName})
}

// Variant is one called SNP.
type Variant = varcall.Variant

// CallVariants runs the pileup-based SNP caller over an aligned dataset
// (§8's variant-calling stage) with default options.
func CallVariants(store Store, dataset string, ref *Genome) ([]Variant, error) {
	ds, err := agd.Open(store, dataset)
	if err != nil {
		return nil, err
	}
	return varcall.CallDataset(ds, ref, varcall.NewOptions())
}

// WriteVCF renders variant calls as a VCF 4.2 stream.
func WriteVCF(w io.Writer, ref *Genome, variants []Variant) error {
	return varcall.WriteVCF(w, agd.RefSeqsFromGenome(ref), variants)
}

// BuildBWAIndex builds the FM-index used by the BWA alignment engine.
func BuildBWAIndex(g *Genome) (*bwa.FMIndex, error) { return bwa.NewFMIndex(g) }

// AlignBWA runs the single-server pipeline with the BWA-MEM-style engine.
func AlignBWA(ctx context.Context, store Store, dataset string, fm *bwa.FMIndex, g *Genome, paired bool) (*AlignReport, *Manifest, error) {
	return core.Align(ctx, core.AlignConfig{
		Store:   store,
		Dataset: dataset,
		Engine:  core.EngineBWA,
		FMIndex: fm,
		Genome:  g,
		Paired:  paired,
	})
}

// AlignPaired runs the single-server SNAP pipeline in paired-end mode
// (records 2i and 2i+1 form pairs).
func AlignPaired(ctx context.Context, store Store, dataset string, idx *Index, opts AlignOptions) (*AlignReport, *Manifest, error) {
	return core.Align(ctx, core.AlignConfig{
		Store:           store,
		Dataset:         dataset,
		Index:           idx,
		Aligner:         snap.Config{MaxDist: opts.MaxDist},
		ExecutorThreads: opts.ExecutorThreads,
		Prefetch:        opts.Prefetch,
		Paired:          true,
	})
}
