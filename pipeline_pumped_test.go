package persona

// Tests for the pumped pipeline scheduler: golden byte-equivalence against
// the serial pull scheduler at different GOMAXPROCS settings and edge
// depths, stage accounting sanity, and teardown hygiene when the sink fails
// mid-merge (the sort spill sweep). All of these are meant to run under
// -race with GOMAXPROCS=4 in CI.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// runWGSBoth runs the canonical Read→Align→Sort→MarkDup pipeline over "ds" into
// SAM and BAM buffers, serial or pumped (at depth, 0 = default).
func runWGSBoth(t *testing.T, sess *Session, idx *Index, serial bool, depth int) ([]byte, []byte, *PipelineReport) {
	t.Helper()
	ctx := context.Background()
	build := func(sink func(p *Pipeline) *Pipeline) *Pipeline {
		p := sink(sess.Read("ds").Align(idx, AlignOptions{}).Sort(ByLocation).MarkDuplicates())
		if serial {
			p = p.Serial()
		}
		if depth > 0 {
			p = p.EdgeDepth(depth)
		}
		return p
	}
	var sam, bam bytes.Buffer
	report, err := build(func(p *Pipeline) *Pipeline { return p.ExportSAM(&sam) }).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := build(func(p *Pipeline) *Pipeline { return p.ExportBAM(&bam) }).Run(ctx); err != nil {
		t.Fatal(err)
	}
	return sam.Bytes(), bam.Bytes(), report
}

// TestPipelinePumpedMatchesSerial is the pumped scheduler's golden check:
// identical SAM and BAM bytes to the serial pull scheduler, at GOMAXPROCS 1
// and 4 — overlap must change timing only, never order or content.
func TestPipelinePumpedMatchesSerial(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			serialSAM, serialBAM, serialRep := runWGSBoth(t, sess, idx, true, 0)
			pumpedSAM, pumpedBAM, pumpedRep := runWGSBoth(t, sess, idx, false, 0)

			if !bytes.Equal(serialSAM, pumpedSAM) {
				t.Fatalf("pumped SAM differs from serial (%d vs %d bytes)", len(pumpedSAM), len(serialSAM))
			}
			if !bytes.Equal(serialBAM, pumpedBAM) {
				t.Fatalf("pumped BAM differs from serial (%d vs %d bytes)", len(pumpedBAM), len(serialBAM))
			}
			if serialRep.Pumped || serialRep.EdgeDepth != 0 {
				t.Fatalf("serial run reported pumped=%v depth=%d", serialRep.Pumped, serialRep.EdgeDepth)
			}
			if !pumpedRep.Pumped || pumpedRep.EdgeDepth != DefaultEdgeDepth {
				t.Fatalf("pumped run reported pumped=%v depth=%d", pumpedRep.Pumped, pumpedRep.EdgeDepth)
			}
			if pumpedRep.Records != 800 || serialRep.Records != 800 {
				t.Fatalf("records pumped=%d serial=%d", pumpedRep.Records, serialRep.Records)
			}

			// Stage accounting sanity on the pumped run: every stage moved
			// all groups, no queue exceeded the edge depth, and attribution
			// never went negative.
			if len(pumpedRep.Stages) != 5 {
				t.Fatalf("stage reports: %v", pumpedRep.Stages)
			}
			for _, st := range pumpedRep.Stages {
				if st.PeakQueue > pumpedRep.EdgeDepth {
					t.Errorf("stage %s peak queue %d exceeds edge depth %d", st.Stage, st.PeakQueue, pumpedRep.EdgeDepth)
				}
				if st.Busy < 0 || st.Blocked < 0 {
					t.Errorf("stage %s negative attribution: busy=%v blocked=%v", st.Stage, st.Busy, st.Blocked)
				}
				if st.Elapsed != st.Busy {
					t.Errorf("stage %s pumped Elapsed %v != Busy %v", st.Stage, st.Elapsed, st.Busy)
				}
				if st.Groups == 0 {
					t.Errorf("stage %s moved no groups", st.Stage)
				}
			}
			if size, free := sess.PoolStats(); size != free {
				t.Fatalf("chunk pool leak: %d of %d free", free, size)
			}
		})
	}
}

// TestPipelineEdgeDepthSweep: output bytes are identical at every queue
// depth, including depth 1 (maximum backpressure — every edge is a
// handoff).
func TestPipelineEdgeDepthSweep(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()

	baseSAM, baseBAM, _ := runWGSBoth(t, sess, idx, true, 0)
	for _, depth := range []int{1, 2, 8} {
		sam, bam, report := runWGSBoth(t, sess, idx, false, depth)
		if !bytes.Equal(baseSAM, sam) || !bytes.Equal(baseBAM, bam) {
			t.Fatalf("depth %d output differs from serial", depth)
		}
		if report.EdgeDepth != depth {
			t.Fatalf("report depth %d, want %d", report.EdgeDepth, depth)
		}
		if size, free := sess.PoolStats(); size != free {
			t.Fatalf("depth %d chunk pool leak: %d of %d free", depth, free, size)
		}
	}
}

// failingWriter fails every Write after limit bytes — a sink dying
// mid-stream (disk full) partway through sort's merge.
type failingWriter struct {
	n, limit int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.limit {
		return 0, errors.New("sink: disk full")
	}
	return len(p), nil
}

// TestPipelineSinkFailureSweepsSortSpills is the satellite-3 check: when the
// sink dies partway through sort's merge, the teardown cascade must reach
// the sort stage's stop hook and sweep the phase-1 spill blobs — the store
// ends with exactly the keys it started with, the pools drain, and no pump
// goroutine outlives the run.
func TestPipelineSinkFailureSweepsSortSpills(t *testing.T) {
	store, g := pipelineFixture(t, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(store, SessionOptions{})
	defer sess.Close()
	time.Sleep(10 * time.Millisecond) // let executor workers reach steady state
	goroutines := runtime.NumGoroutine()
	keysBefore, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	putsBefore := len(store.putNames())

	_, err = sess.Read("ds").
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&failingWriter{limit: 512}).
		Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("run with failing sink returned %v, want the sink's error", err)
	}

	// The sort must actually have spilled (the failure landed mid-merge,
	// after phase 1 staged and wrote superchunks)...
	spilled := false
	for _, name := range store.putNames()[putsBefore:] {
		if strings.HasPrefix(name, ".pipeline/") {
			spilled = true
			break
		}
	}
	if !spilled {
		t.Fatal("sort never spilled; the failure did not land mid-merge")
	}
	// ...and the sweep must have removed every spill again: key count back
	// to the pre-run state.
	if left, _ := store.List(".pipeline/"); len(left) != 0 {
		t.Fatalf("spill blobs left after sink failure: %v", left)
	}
	keysAfter, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keysAfter) != len(keysBefore) {
		t.Fatalf("store key count changed across failed run: %d -> %d", len(keysBefore), len(keysAfter))
	}

	// Pools and pump goroutines drain back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		size, free := sess.PoolStats()
		ngo := runtime.NumGoroutine()
		if size == free && ngo <= goroutines {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after sink failure: pool %d/%d free, goroutines %d (was %d)",
				free, size, ngo, goroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same session still completes the pipeline cleanly afterwards.
	var out bytes.Buffer
	report, err := sess.Read("ds").
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&out).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Records != 800 {
		t.Fatalf("post-failure run exported %d records", report.Records)
	}
}
