package persona_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"persona"
	"persona/internal/agd"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
)

// TestExtendedPipeline covers the extension surface: paired-end alignment,
// the BWA engine, filtering, variant calling with VCF output, and SAM
// import.
func TestExtendedPipeline(t *testing.T) {
	ref, err := persona.SynthesizeGenome(200_000, 57)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(ref, reads.SimConfig{
		Seed: 58, N: 600, ReadLen: 80, Paired: true, InsertMean: 300, InsertStd: 30, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var fqBuf bytes.Buffer
	fw := fastq.NewWriter(&fqBuf)
	for i := range rs {
		if err := fw.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fq := fqBuf.String()

	// Paired-end SNAP alignment through the pipeline.
	store := persona.NewMemStore()
	if _, _, err := persona.ImportFASTQ(context.Background(), store, "pe", strings.NewReader(fq), persona.RefSeqs(ref), 128); err != nil {
		t.Fatal(err)
	}
	idx, err := persona.BuildIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := persona.AlignPaired(context.Background(), store, "pe", idx, persona.AlignOptions{}); err != nil {
		t.Fatal(err)
	}
	ds, err := persona.OpenDataset(store, "pe")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	proper := 0
	for _, r := range results {
		if r.Flags&agd.FlagProperPair != 0 {
			proper++
		}
	}
	if frac := float64(proper) / float64(len(results)); frac < 0.8 {
		t.Fatalf("proper-pair fraction %.3f", frac)
	}

	// Filter to confident reads.
	_, fstats, err := persona.Filter(context.Background(), store, "pe", persona.FilterMinMapQ(20), "pe.confident")
	if err != nil {
		t.Fatal(err)
	}
	if fstats.Kept == 0 || fstats.Kept > fstats.In {
		t.Fatalf("filter stats %+v", fstats)
	}

	// Variant calling on the filtered dataset (no planted variants: expect
	// few calls) and VCF output.
	variants, err := persona.CallVariants(context.Background(), store, "pe.confident", ref)
	if err != nil {
		t.Fatal(err)
	}
	var vcf bytes.Buffer
	if err := persona.WriteVCF(&vcf, ref, variants); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcf.String(), "##fileformat=VCFv4.2") {
		t.Fatal("VCF header missing")
	}

	// BWA engine over the same reads (single-end mode).
	storeBWA := persona.NewMemStore()
	if _, _, err := persona.ImportFASTQ(context.Background(), storeBWA, "bw", strings.NewReader(fq), persona.RefSeqs(ref), 128); err != nil {
		t.Fatal(err)
	}
	fm, err := persona.BuildBWAIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	report, _, err := persona.AlignBWA(context.Background(), storeBWA, "bw", fm, ref, false)
	if err != nil {
		t.Fatal(err)
	}
	if report.Reads != int64(len(rs)) {
		t.Fatalf("BWA aligned %d reads", report.Reads)
	}

	// SAM round trip: export the paired dataset, re-import, compare results.
	var samText bytes.Buffer
	if _, err := persona.ExportSAM(context.Background(), store, "pe", &samText); err != nil {
		t.Fatal(err)
	}
	store2 := persona.NewMemStore()
	m2, n2, err := persona.ImportSAM(context.Background(), store2, "reimported", strings.NewReader(samText.String()), 128)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != uint64(len(results)) {
		t.Fatalf("re-imported %d records, want %d", n2, len(results))
	}
	ds2, err := persona.OpenDataset(store2, "reimported")
	if err != nil {
		t.Fatal(err)
	}
	results2, err := ds2.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Location != results2[i].Location ||
			results[i].Flags != results2[i].Flags ||
			results[i].Cigar != results2[i].Cigar {
			t.Fatalf("record %d changed through SAM round trip:\n%+v\n%+v", i, results[i], results2[i])
		}
	}
	if m2.NumRecords() != uint64(len(results)) {
		t.Fatalf("manifest records %d", m2.NumRecords())
	}

	// Reads must also round-trip in as-sequenced orientation.
	origBases, err := ds.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	reBases, err := ds2.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	for i := range origBases {
		if !bytes.Equal(origBases[i], reBases[i]) {
			t.Fatalf("read %d bases changed through SAM round trip", i)
		}
	}
}
