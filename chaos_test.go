package persona

// Chaos suite: fused pipelines driven through a fault-injecting store behind
// the resilience layer must produce byte-identical output to a fault-free
// run (transient faults), or fail with a clean classified error naming the
// corrupt chunk (permanent faults) — never wrong output, never leaked pooled
// chunks. Seeds are fixed so CI replays the same fault schedules.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"persona/internal/agd"
	"persona/internal/formats/fastq"
	"persona/internal/reads"
	"persona/internal/storage"
)

// chaosImport imports the standard simulated read set into store as dataset
// name, returning the genome.
func chaosImport(t testing.TB, store Store, name string) *Genome {
	t.Helper()
	g, err := SynthesizeGenome(150_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 8, N: 800, ReadLen: 80, ErrorRate: 0.003, DuplicateFraction: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	w := fastq.NewWriter(&fq)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ImportFASTQ(context.Background(), store, name, strings.NewReader(fq.String()), RefSeqs(g), 100); err != nil {
		t.Fatal(err)
	}
	return g
}

// runWGS runs the fused whole-genome preprocessing pipeline over a session.
func runWGS(t testing.TB, sess *Session, dataset string, idx *Index) (*PipelineReport, []byte) {
	t.Helper()
	var sam bytes.Buffer
	report, err := sess.Read(dataset).
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&sam).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return report, sam.Bytes()
}

// checkNoLeak asserts every pooled chunk went back to the session pool.
func checkNoLeak(t testing.TB, sess *Session) {
	t.Helper()
	size, free := sess.PoolStats()
	if size != free {
		t.Fatalf("chunk pool leak: %d of %d chunks not returned", size-free, size)
	}
}

// TestChaosFusedPipelineTransientFaults: under >=10% injected transient read
// errors (plus latency spikes and flaky writes — sort's spill blobs flow
// through the same store), the fused WGS pipeline must produce byte-identical
// SAM to the fault-free run, for each seed of the fixed matrix.
func TestChaosFusedPipelineTransientFaults(t *testing.T) {
	cleanStore := NewMemStore()
	g := chaosImport(t, cleanStore, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	cleanSess := NewSession(cleanStore, SessionOptions{})
	defer cleanSess.Close()
	cleanReport, cleanSAM := runWGS(t, cleanSess, "ds", idx)
	if cleanReport.Storage != nil {
		t.Fatal("plain store reported resilience stats")
	}
	checkNoLeak(t, cleanSess)

	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(string(rune('A'+seed%26)), func(t *testing.T) {
			inner := NewMemStore()
			chaosImport(t, inner, "ds")
			faulty := NewFaultStore(inner, FaultPolicy{
				Seed:   seed,
				Reads:  OpFaults{ErrProb: 0.15, LatencyProb: 0.05, Latency: 200 * time.Microsecond},
				Writes: OpFaults{ErrProb: 0.1},
			})
			defer faulty.Close()
			resilient := NewRetryStore(faulty, RetryPolicy{
				MaxAttempts: 8, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond,
			})
			sess := NewSession(resilient, SessionOptions{})
			defer sess.Close()

			report, sam := runWGS(t, sess, "ds", idx)
			if !bytes.Equal(sam, cleanSAM) {
				t.Fatalf("seed %d: SAM differs from fault-free run (%d vs %d bytes)", seed, len(sam), len(cleanSAM))
			}
			if faulty.Stats().InjectedErrors == 0 {
				t.Fatalf("seed %d: no faults injected; the chaos run is vacuous", seed)
			}
			if report.Storage == nil || report.Storage.Retries == 0 {
				t.Fatalf("seed %d: report.Storage = %+v, want recorded retries", seed, report.Storage)
			}
			checkNoLeak(t, sess)
		})
	}
}

// TestChaosCorruptChunkFailsClean: a targeted corrupt bases chunk must
// surface as a classified permanent error naming the chunk — retries must
// not mask it, and the pipeline must never emit wrong output.
func TestChaosCorruptChunkFailsClean(t *testing.T) {
	inner := NewMemStore()
	g := chaosImport(t, inner, "ds")
	idx, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDataset(inner, "ds")
	if err != nil {
		t.Fatal(err)
	}
	target := ds.Manifest.ChunkBlobPath(3, agd.ColBases)

	faulty := NewFaultStore(inner, FaultPolicy{
		Seed: 99,
		Keys: []KeyFaults{{Substr: target, Reads: OpFaults{CorruptProb: 1}}},
	})
	defer faulty.Close()
	resilient := NewRetryStore(faulty, RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond})
	sess := NewSession(resilient, SessionOptions{})
	defer sess.Close()

	var sam bytes.Buffer
	_, err = sess.Read("ds").
		Align(idx, AlignOptions{}).
		Sort(ByLocation).
		MarkDuplicates().
		ExportSAM(&sam).
		Run(context.Background())
	if err == nil {
		t.Fatal("pipeline over a corrupt chunk succeeded")
	}
	if !errors.Is(err, agd.ErrChecksum) {
		t.Fatalf("err = %v, want a checksum-classified error", err)
	}
	if !strings.Contains(err.Error(), target) {
		t.Fatalf("err = %v, does not name the corrupt chunk %q", err, target)
	}
	if storage.IsTransient(err) {
		t.Fatal("corruption classified transient")
	}
	checkNoLeak(t, sess)
}

// TestChaosDistributedAlignWithSession: the session-level distributed align
// over a resilient faulty store matches the clean run's alignment results
// and surfaces retry activity via Session.ResilienceStats.
func TestChaosDistributedAlignWithSession(t *testing.T) {
	cleanStore := NewMemStore()
	g := chaosImport(t, cleanStore, "ds")
	cleanSess := NewSession(cleanStore, SessionOptions{})
	defer cleanSess.Close()
	if _, _, err := cleanSess.AlignDistributed(context.Background(), "ds", g, 2, 2); err != nil {
		t.Fatal(err)
	}
	var cleanSAM bytes.Buffer
	if _, err := ExportSAM(context.Background(), cleanStore, "ds", &cleanSAM); err != nil {
		t.Fatal(err)
	}

	inner := NewMemStore()
	chaosImport(t, inner, "ds")
	// The distributed read path touches only a handful of blobs (one bases
	// chunk per manifest entry), so the error rate is high to guarantee the
	// fixed seed injects at least one fault into the run.
	faulty := NewFaultStore(inner, FaultPolicy{
		Seed:  44,
		Reads: OpFaults{ErrProb: 0.35},
	})
	defer faulty.Close()
	resilient := NewRetryStore(faulty, RetryPolicy{
		MaxAttempts: 8, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond,
	})
	sess := NewSession(resilient, SessionOptions{})
	defer sess.Close()
	if _, ok := sess.ResilienceStats(); !ok {
		t.Fatal("resilient store not detected by the session")
	}
	report, m, err := sess.AlignDistributed(context.Background(), "ds", g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("results column not registered")
	}
	if report.Degraded {
		t.Fatal("transient faults degraded the run")
	}
	var sam bytes.Buffer
	if _, err := ExportSAM(context.Background(), inner, "ds", &sam); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sam.Bytes(), cleanSAM.Bytes()) {
		t.Fatal("distributed alignment under faults differs from the clean run")
	}
	if faulty.Stats().InjectedErrors == 0 {
		t.Fatal("no faults injected; the chaos run is vacuous")
	}
	stats, _ := sess.ResilienceStats()
	if stats.Retries == 0 {
		t.Fatal("no retries recorded")
	}
}
