// Benchmarks mirroring the paper's evaluation: one bench per table/figure
// (wrapping internal/experiments, which persona-bench also uses) plus
// microbenchmarks of the core kernels. Absolute numbers are machine-local;
// EXPERIMENTS.md records paper-vs-measured shapes.
package persona_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"persona"
	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/align"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/experiments"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/genome"
	"persona/internal/reads"
	"persona/internal/simulate"
	"persona/internal/storage"
	"persona/internal/tco"
	"persona/internal/testutil"
)

// benchScale keeps the measured benchmarks fast enough for -bench=. runs.
func benchScale() experiments.Scale {
	return experiments.Scale{GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, DupFrac: 0.15, Seed: 4}
}

// --- Table 1: single-server alignment, SNAP row-oriented vs Persona AGD ---

func BenchmarkTable1_Modeled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Table1(simulate.DefaultPaperParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_MeasuredPersonaAGD(b *testing.B) {
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, Seed: 4, SkipAlign: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := agd.NewMemStore()
		if err := copyStore(store, fresh); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := persona.Align(context.Background(), fresh, "ds", f.Index, persona.AlignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_AsyncReadPrefetch sweeps the input stream's chunk-fetch
// window over the Table 1 pipeline with simulated per-blob storage latency
// (an in-memory store cannot show fetch stalls; a device can). prefetch=1
// is the synchronous path — every blob Get stalls the streamer — while
// wider windows overlap the latency with decode and alignment (§4.2).
func BenchmarkTable1_AsyncReadPrefetch(b *testing.B) {
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, Seed: 4, SkipAlign: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Latency per blob Get, sized like an object-store round trip: large
	// enough that fetch time rivals this host's per-chunk compute, so the
	// sweep isolates how much of it each window hides.
	const blobLatency = 25 * time.Millisecond
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("prefetch=%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := agd.NewMemStore()
				if err := copyStore(store, fresh); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := persona.Align(context.Background(), storage.WithLatency(fresh, blobLatency), "ds", f.Index,
					persona.AlignOptions{Prefetch: window}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1_ColdWarmCache measures the decoded-chunk cache on the
// Table 1 read→align workload at zero and object-store (25 ms) blob
// latency. cold flushes the session cache before every op, so each run
// pays full fetch+decode; warm pre-warms once and every measured op is
// served from the cache — at 25 ms that removes the storage tier entirely
// and the warm number should sit near the 0 ms compute floor.
func BenchmarkTable1_ColdWarmCache(b *testing.B) {
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, Seed: 4, SkipAlign: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	runOnce := func(b *testing.B, sess *persona.Session) {
		if _, err := sess.Read("ds").
			Align(f.Index, persona.AlignOptions{}).
			ExportSAM(io.Discard).
			Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	for _, lat := range []time.Duration{0, 25 * time.Millisecond} {
		var bs storage.Store = agd.NewMemStore()
		if err := copyStore(store, bs.(agd.BlobStore)); err != nil {
			b.Fatal(err)
		}
		if lat > 0 {
			bs = storage.WithLatency(bs, lat)
		}
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("latency=%s/%s", lat, mode), func(b *testing.B) {
				sess := persona.NewSession(bs, persona.SessionOptions{})
				defer sess.Close()
				if mode == "warm" {
					runOnce(b, sess)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "cold" {
						b.StopTimer()
						sess.FlushCache()
						b.StartTimer()
					}
					runOnce(b, sess)
				}
			})
		}
	}
}

func copyStore(src, dst agd.BlobStore, prefixes ...string) error {
	names, err := src.List("")
	if err != nil {
		return err
	}
	for _, n := range names {
		blob, err := src.Get(n)
		if err != nil {
			return err
		}
		if err := dst.Put(n, blob); err != nil {
			return err
		}
	}
	return nil
}

// --- Table 2: sorting ---

// BenchmarkTable2_Sorts measures Persona's AGD external merge sort itself:
// the aligned fixture (SNAP index build + alignment) is constructed once
// outside the measured region, so ns/op and allocs/op track the sort path,
// not the harness. The full tool comparison against the samtools/Picard
// baselines remains experiments.RunTable2 (persona-bench table2).
func BenchmarkTable2_Sorts(b *testing.B) {
	sc := benchScale()
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: sc.GenomeSize, NumReads: sc.NumReads, ReadLen: sc.ReadLen,
		ChunkSize: sc.ChunkSize, DupFrac: sc.DupFrac, Seed: sc.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, by := range []agdsort.Key{agdsort.ByLocation, agdsort.ByMetadata} {
		b.Run("by="+by.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := agdsort.SortDataset(context.Background(), f.Dataset, agdsort.Options{By: by, OutputName: "sorted"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 3: TCO model ---

func BenchmarkTable3_TCO(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tco.Default().Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: CPU utilization traces ---

func BenchmarkFig5_UtilizationTraces(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Fig5(simulate.DefaultPaperParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: thread scaling ---

func BenchmarkFig6_Model(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		simulate.Fig6(simulate.DefaultPaperParams())
	}
}

func BenchmarkFig6_MeasuredThreadSweep(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 800
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6Measured(context.Background(), io.Discard, sc, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: cluster scaling ---

func BenchmarkFig7_DES(b *testing.B) {
	counts := []int{1, 8, 32, 60, 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Fig7(simulate.DefaultPaperParams(), counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_MeasuredCluster(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 800
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7Measured(context.Background(), io.Discard, sc, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: workload analysis ---

func BenchmarkFig8_Profiles(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(context.Background(), io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.6 duplicate marking and §5.7 conversion ---

func BenchmarkDupmark_Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDupmark(context.Background(), io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConversion_ImportExport measures the conversion paths
// themselves (the §5.7 workloads): FASTQ→AGD import plus the SAM and BAM
// exporters, with the FASTQ text and the aligned dataset built once outside
// the measured region. The throughput experiment stays
// experiments.RunConversion (persona-bench conversion).
func BenchmarkConversion_ImportExport(b *testing.B) {
	sc := benchScale()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(sc.GenomeSize, sc.Seed))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: sc.Seed + 1, N: sc.NumReads, ReadLen: sc.ReadLen,
		ErrorRate: 0.003, DuplicateFraction: sc.DupFrac,
	})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	var fq bytes.Buffer
	fw := fastq.NewWriter(&fq)
	for i := range rs {
		if err := fw.Write(&rs[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		b.Fatal(err)
	}
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: sc.GenomeSize, NumReads: sc.NumReads, ReadLen: sc.ReadLen,
		ChunkSize: sc.ChunkSize, DupFrac: sc.DupFrac, Seed: sc.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("fastq_import", func(b *testing.B) {
		b.SetBytes(int64(fq.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst := agd.NewMemStore()
			if _, _, err := fastq.Import(context.Background(), dst, "conv", bytes.NewReader(fq.Bytes()), fastq.ImportOptions{ChunkSize: sc.ChunkSize}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sam_export", func(b *testing.B) {
		cw := &countWriter{}
		if _, err := sam.Export(context.Background(), f.Dataset, cw); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(cw.n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sam.Export(context.Background(), f.Dataset, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bam_export", func(b *testing.B) {
		cw := &countWriter{}
		if _, err := bam.Export(context.Background(), f.Dataset, cw); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(cw.n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bam.Export(context.Background(), f.Dataset, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// --- Kernel microbenchmarks ---

func benchGenome(b *testing.B, size int) *genome.Genome {
	b.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(size, 9))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkKernel_LandauVishkin(b *testing.B) {
	g := benchGenome(b, 50_000)
	read, _ := g.Slice(1000, 101)
	window, _ := g.Slice(1000, 113)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.LandauVishkin(read, window, 12)
	}
}

func BenchmarkKernel_SmithWaterman(b *testing.B) {
	g := benchGenome(b, 50_000)
	read, _ := g.Slice(2000, 101)
	window, _ := g.Slice(1984, 133)
	sc := align.DefaultScoring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.SmithWaterman(read, window, sc)
	}
}

func BenchmarkKernel_SNAPAlignRead(b *testing.B) {
	g := benchGenome(b, 400_000)
	idx, err := snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		b.Fatal(err)
	}
	a := snap.NewAligner(idx, snap.Config{MaxDist: 10})
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 10, N: 256, ReadLen: 101, ErrorRate: 0.003})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(rs[i%len(rs)].Bases)
	}
	b.SetBytes(101)
}

func BenchmarkKernel_BWAAlignRead(b *testing.B) {
	g := benchGenome(b, 400_000)
	idx, err := bwa.NewFMIndex(g)
	if err != nil {
		b.Fatal(err)
	}
	a := bwa.NewAligner(idx, g, bwa.Config{})
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 11, N: 256, ReadLen: 101, ErrorRate: 0.003})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(rs[i%len(rs)].Bases)
	}
	b.SetBytes(101)
}

func BenchmarkKernel_BaseCompaction(b *testing.B) {
	g := benchGenome(b, 10_000)
	bases, _ := g.Slice(0, 101)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = agd.CompactBases(buf[:0], bases)
	}
	b.SetBytes(101)
}

func BenchmarkKernel_ChunkEncodeDecode(b *testing.B) {
	g := benchGenome(b, 200_000)
	builder := agd.NewChunkBuilder(agd.TypeCompactBases, 0)
	for pos := int64(0); pos < 100_000; pos += 101 {
		bases, _ := g.Slice(pos, 101)
		builder.AppendBases(bases)
	}
	chunk := builder.Chunk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := agd.EncodeChunk(chunk, agd.CompressGzip)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agd.DecodeChunk(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel_ChunkEncodeDecodePooled is the codec on the pipeline's
// steady-state path: encode appends into a recycled blob and decode reuses
// one chunk's backing arrays, so the loop runs allocation-free apart from
// gzip-internal pooling.
func BenchmarkKernel_ChunkEncodeDecodePooled(b *testing.B) {
	g := benchGenome(b, 200_000)
	builder := agd.NewChunkBuilder(agd.TypeCompactBases, 0)
	for pos := int64(0); pos < 100_000; pos += 101 {
		bases, _ := g.Slice(pos, 101)
		builder.AppendBases(bases)
	}
	chunk := builder.Chunk()
	var blob []byte
	var dec agd.Chunk
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		blob, err = agd.EncodeChunkAppend(blob[:0], chunk, agd.CompressGzip)
		if err != nil {
			b.Fatal(err)
		}
		if err := agd.DecodeChunkInto(&dec, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_FASTQParse(b *testing.B) {
	g := benchGenome(b, 50_000)
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 12, N: 1000, ReadLen: 101})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	text := buf.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := fastq.NewScanner(strings.NewReader(text))
		n := 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil || n != len(rs) {
			b.Fatalf("parsed %d, err %v", n, sc.Err())
		}
	}
}

// BenchmarkKernel_RecordArenaAppend is the shared arena's append path: the
// per-record cost every staging/writer hot loop now pays instead of a heap
// allocation.
func BenchmarkKernel_RecordArenaAppend(b *testing.B) {
	const perRound = 1024
	a := agd.NewRecordArena(perRound*64, perRound)
	rec := bytes.Repeat([]byte("r"), 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Len() >= perRound {
			a.Reset()
		}
		a.Append(rec)
	}
}

// BenchmarkKernel_ResultViewDecode is the zero-copy results decode used by
// sort key extraction, export, filtering and duplicate marking.
func BenchmarkKernel_ResultViewDecode(b *testing.B) {
	r := agd.Result{Location: 123456, MateLocation: -1, TemplateLen: 0, Score: 3,
		MapQ: 60, Flags: agd.FlagReverse, Cigar: "101M"}
	enc := agd.EncodeResult(nil, &r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agd.DecodeResultView(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel_SAMLineWrite is the append-based SAM record renderer on
// the export hot path (one aligned record per iteration).
func BenchmarkKernel_SAMLineWrite(b *testing.B) {
	refs := []agd.RefSeq{{Name: "chr1", Length: 1 << 20}}
	refmap := sam.NewRefMap(refs)
	w, err := sam.NewWriter(io.Discard, refs, "coordinate")
	if err != nil {
		b.Fatal(err)
	}
	name := []byte("sim.12345")
	seq := bytes.Repeat([]byte("ACGT"), 25)
	qual := bytes.Repeat([]byte("I"), 100)
	v := agd.ResultView{Location: 99_000, MateLocation: -1, MapQ: 60, Cigar: []byte("100M")}
	b.SetBytes(int64(len(seq)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteView(name, seq, qual, &v, refmap); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6 design choices) ---

func BenchmarkAblation_ChunkSize(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunChunkSizeAblation(context.Background(), io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Compression(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCompressionAblation(context.Background(), io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Subchunks(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSubchunkAblation(context.Background(), io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline_WGS measures the WGS preprocessing chain
// align → sort → markdup → export BAM two ways over identical reads:
// "staged" uses the one-shot free functions (align writes results chunks,
// sort materializes a sorted dataset, markdup rewrites it, export re-reads
// it); "fused" runs the same stages as one Session/Pipeline graph, where
// chunks stream stage-to-stage and only sort's temporary spill touches the
// store — under the pumped scheduler (bounded edges, stages overlapped);
// "fused-pull" is the same graph on the serial pull scheduler, isolating
// what the overlap buys. The BAM bytes are identical (asserted in
// TestPipelineMatchesStagedSAM and TestPipelinePumpedMatchesSerial); the
// staged/fused delta is the store round trips. Dataset setup is outside the
// timer.
func BenchmarkPipeline_WGS(b *testing.B) {
	sc := benchScale()
	cfg := testutil.Config{
		GenomeSize: sc.GenomeSize, NumReads: sc.NumReads, ReadLen: sc.ReadLen,
		ChunkSize: sc.ChunkSize, DupFrac: sc.DupFrac, Seed: sc.Seed, SkipAlign: true,
	}
	seedStore := agd.NewMemStore()
	f, err := testutil.BuildE(seedStore, "ds", cfg)
	if err != nil {
		b.Fatal(err)
	}
	idx := f.Index
	ctx := context.Background()

	// freshStore clones the unaligned dataset into a new store per
	// iteration (both paths mutate or require an unaligned input).
	freshStore := func(b *testing.B) persona.Store {
		names, err := seedStore.List("")
		if err != nil {
			b.Fatal(err)
		}
		dst := agd.NewMemStore()
		for _, name := range names {
			blob, err := seedStore.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			if err := dst.Put(name, blob); err != nil {
				b.Fatal(err)
			}
		}
		return dst
	}

	b.Run("staged", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := freshStore(b)
			b.StartTimer()
			if _, _, err := persona.Align(ctx, store, "ds", idx, persona.AlignOptions{}); err != nil {
				b.Fatal(err)
			}
			if _, err := persona.Sort(ctx, store, "ds", persona.ByLocation, "ds.sorted"); err != nil {
				b.Fatal(err)
			}
			if _, err := persona.MarkDuplicates(ctx, store, "ds.sorted"); err != nil {
				b.Fatal(err)
			}
			if _, err := persona.ExportBAM(ctx, store, "ds.sorted", io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	runFused := func(b *testing.B, serial bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			store := freshStore(b)
			sess := persona.NewSession(store, persona.SessionOptions{})
			b.StartTimer()
			p := sess.Read("ds").
				Align(idx, persona.AlignOptions{}).
				Sort(persona.ByLocation).
				MarkDuplicates().
				ExportBAM(io.Discard)
			if serial {
				p = p.Serial()
			}
			if _, err := p.Run(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			sess.Close()
			b.StartTimer()
		}
	}
	b.Run("fused", func(b *testing.B) { runFused(b, false) })
	b.Run("fused-pull", func(b *testing.B) { runFused(b, true) })
}
