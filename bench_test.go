// Benchmarks mirroring the paper's evaluation: one bench per table/figure
// (wrapping internal/experiments, which persona-bench also uses) plus
// microbenchmarks of the core kernels. Absolute numbers are machine-local;
// EXPERIMENTS.md records paper-vs-measured shapes.
package persona_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"persona"
	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/experiments"
	"persona/internal/formats/fastq"
	"persona/internal/genome"
	"persona/internal/reads"
	"persona/internal/simulate"
	"persona/internal/storage"
	"persona/internal/tco"
	"persona/internal/testutil"
)

// benchScale keeps the measured benchmarks fast enough for -bench=. runs.
func benchScale() experiments.Scale {
	return experiments.Scale{GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, DupFrac: 0.15, Seed: 4}
}

// --- Table 1: single-server alignment, SNAP row-oriented vs Persona AGD ---

func BenchmarkTable1_Modeled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Table1(simulate.DefaultPaperParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_MeasuredPersonaAGD(b *testing.B) {
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, Seed: 4, SkipAlign: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := agd.NewMemStore()
		if err := copyStore(store, fresh); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := persona.Align(context.Background(), fresh, "ds", f.Index, persona.AlignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_AsyncReadPrefetch sweeps the input stream's chunk-fetch
// window over the Table 1 pipeline with simulated per-blob storage latency
// (an in-memory store cannot show fetch stalls; a device can). prefetch=1
// is the synchronous path — every blob Get stalls the streamer — while
// wider windows overlap the latency with decode and alignment (§4.2).
func BenchmarkTable1_AsyncReadPrefetch(b *testing.B) {
	store := agd.NewMemStore()
	f, err := testutil.BuildE(store, "ds", testutil.Config{
		GenomeSize: 200_000, NumReads: 2000, ReadLen: 101, ChunkSize: 250, Seed: 4, SkipAlign: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Latency per blob Get, sized like an object-store round trip: large
	// enough that fetch time rivals this host's per-chunk compute, so the
	// sweep isolates how much of it each window hides.
	const blobLatency = 25 * time.Millisecond
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("prefetch=%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := agd.NewMemStore()
				if err := copyStore(store, fresh); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := persona.Align(context.Background(), storage.WithLatency(fresh, blobLatency), "ds", f.Index,
					persona.AlignOptions{Prefetch: window}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func copyStore(src, dst agd.BlobStore, prefixes ...string) error {
	names, err := src.List("")
	if err != nil {
		return err
	}
	for _, n := range names {
		blob, err := src.Get(n)
		if err != nil {
			return err
		}
		if err := dst.Put(n, blob); err != nil {
			return err
		}
	}
	return nil
}

// --- Table 2: sorting ---

func BenchmarkTable2_Sorts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: TCO model ---

func BenchmarkTable3_TCO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tco.Default().Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: CPU utilization traces ---

func BenchmarkFig5_UtilizationTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Fig5(simulate.DefaultPaperParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: thread scaling ---

func BenchmarkFig6_Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		simulate.Fig6(simulate.DefaultPaperParams())
	}
}

func BenchmarkFig6_MeasuredThreadSweep(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 800
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6Measured(io.Discard, sc, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: cluster scaling ---

func BenchmarkFig7_DES(b *testing.B) {
	counts := []int{1, 8, 32, 60, 100}
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Fig7(simulate.DefaultPaperParams(), counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_MeasuredCluster(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 800
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7Measured(io.Discard, sc, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8: workload analysis ---

func BenchmarkFig8_Profiles(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 500
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.6 duplicate marking and §5.7 conversion ---

func BenchmarkDupmark_Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDupmark(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConversion_ImportExport(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConversion(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel microbenchmarks ---

func benchGenome(b *testing.B, size int) *genome.Genome {
	b.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(size, 9))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkKernel_LandauVishkin(b *testing.B) {
	g := benchGenome(b, 50_000)
	read, _ := g.Slice(1000, 101)
	window, _ := g.Slice(1000, 113)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.LandauVishkin(read, window, 12)
	}
}

func BenchmarkKernel_SmithWaterman(b *testing.B) {
	g := benchGenome(b, 50_000)
	read, _ := g.Slice(2000, 101)
	window, _ := g.Slice(1984, 133)
	sc := align.DefaultScoring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.SmithWaterman(read, window, sc)
	}
}

func BenchmarkKernel_SNAPAlignRead(b *testing.B) {
	g := benchGenome(b, 400_000)
	idx, err := snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		b.Fatal(err)
	}
	a := snap.NewAligner(idx, snap.Config{MaxDist: 10})
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 10, N: 256, ReadLen: 101, ErrorRate: 0.003})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(rs[i%len(rs)].Bases)
	}
	b.SetBytes(101)
}

func BenchmarkKernel_BWAAlignRead(b *testing.B) {
	g := benchGenome(b, 400_000)
	idx, err := bwa.NewFMIndex(g)
	if err != nil {
		b.Fatal(err)
	}
	a := bwa.NewAligner(idx, g, bwa.Config{})
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 11, N: 256, ReadLen: 101, ErrorRate: 0.003})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(rs[i%len(rs)].Bases)
	}
	b.SetBytes(101)
}

func BenchmarkKernel_BaseCompaction(b *testing.B) {
	g := benchGenome(b, 10_000)
	bases, _ := g.Slice(0, 101)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = agd.CompactBases(buf[:0], bases)
	}
	b.SetBytes(101)
}

func BenchmarkKernel_ChunkEncodeDecode(b *testing.B) {
	g := benchGenome(b, 200_000)
	builder := agd.NewChunkBuilder(agd.TypeCompactBases, 0)
	for pos := int64(0); pos < 100_000; pos += 101 {
		bases, _ := g.Slice(pos, 101)
		builder.AppendBases(bases)
	}
	chunk := builder.Chunk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := agd.EncodeChunk(chunk, agd.CompressGzip)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agd.DecodeChunk(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel_ChunkEncodeDecodePooled is the codec on the pipeline's
// steady-state path: encode appends into a recycled blob and decode reuses
// one chunk's backing arrays, so the loop runs allocation-free apart from
// gzip-internal pooling.
func BenchmarkKernel_ChunkEncodeDecodePooled(b *testing.B) {
	g := benchGenome(b, 200_000)
	builder := agd.NewChunkBuilder(agd.TypeCompactBases, 0)
	for pos := int64(0); pos < 100_000; pos += 101 {
		bases, _ := g.Slice(pos, 101)
		builder.AppendBases(bases)
	}
	chunk := builder.Chunk()
	var blob []byte
	var dec agd.Chunk
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		blob, err = agd.EncodeChunkAppend(blob[:0], chunk, agd.CompressGzip)
		if err != nil {
			b.Fatal(err)
		}
		if err := agd.DecodeChunkInto(&dec, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_FASTQParse(b *testing.B) {
	g := benchGenome(b, 50_000)
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 12, N: 1000, ReadLen: 101})
	if err != nil {
		b.Fatal(err)
	}
	rs, _ := sim.All()
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	text := buf.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := fastq.NewScanner(strings.NewReader(text))
		n := 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil || n != len(rs) {
			b.Fatalf("parsed %d, err %v", n, sc.Err())
		}
	}
}

// --- Ablations (DESIGN.md §6 design choices) ---

func BenchmarkAblation_ChunkSize(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 1000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunChunkSizeAblation(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCompressionAblation(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Subchunks(b *testing.B) {
	sc := benchScale()
	sc.NumReads = 1000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSubchunkAblation(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}
