package core

import (
	"context"
	"testing"

	"persona/internal/agd"
	"persona/internal/genome"
	"persona/internal/reads"
	"persona/internal/testutil"
)

func TestAlignPipelineBWAEngine(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 150_000, NumReads: 400, ReadLen: 90, ChunkSize: 100, Seed: 111, SkipAlign: true,
	})
	fm, err := BuildBWAIndex(f.Genome)
	if err != nil {
		t.Fatal(err)
	}
	report, m, err := Align(context.Background(), AlignConfig{
		Store: store, Dataset: "ds",
		Engine: EngineBWA, FMIndex: fm, Genome: f.Genome,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("no results column")
	}
	if report.Reads != 400 {
		t.Fatalf("Reads = %d", report.Reads)
	}

	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	mapped, correct := 0, 0
	for i, r := range results {
		if r.IsUnmapped() {
			continue
		}
		mapped++
		diff := r.Location - f.Origins[i].Pos
		if diff < 0 {
			diff = -diff
		}
		if diff <= 8 {
			correct++
		}
	}
	if frac := float64(mapped) / 400; frac < 0.9 {
		t.Fatalf("BWA engine mapped %.3f", frac)
	}
	if frac := float64(correct) / float64(mapped); frac < 0.9 {
		t.Fatalf("BWA engine correct %.3f", frac)
	}
}

func TestAlignPipelineEngineValidation(t *testing.T) {
	store := agd.NewMemStore()
	testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 60_000, NumReads: 100, ReadLen: 60, ChunkSize: 50, Seed: 112, SkipAlign: true,
	})
	if _, _, err := Align(context.Background(), AlignConfig{Store: store, Dataset: "ds", Engine: EngineBWA}); err == nil {
		t.Fatal("BWA engine without index accepted")
	}
	if _, _, err := Align(context.Background(), AlignConfig{Store: store, Dataset: "ds", Engine: EngineSNAP}); err == nil {
		t.Fatal("SNAP engine without index accepted")
	}
}

// pairedFixture writes a paired dataset (R1 at even, R2 at odd ordinals).
func pairedFixture(t *testing.T, store agd.BlobStore, name string, genomeSize, numReads int) (*genome.Genome, []reads.Origin) {
	t.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(genomeSize, 113))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 114, N: numReads, ReadLen: 80, Paired: true, InsertMean: 300, InsertStd: 30, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	w, err := agd.NewWriter(store, name, agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: 100, RefSeqs: agd.RefSeqsFromGenome(g),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if err := w.Append(rs[i].Bases, rs[i].Quals, []byte(rs[i].Meta)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return g, origins
}

func TestAlignPipelinePairedSNAP(t *testing.T) {
	store := agd.NewMemStore()
	g, origins := pairedFixture(t, store, "ds", 200_000, 400)
	idx, err := buildSnapIdx(g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Align(context.Background(), AlignConfig{
		Store: store, Dataset: "ds", Index: idx, Paired: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPairedResults(t, store, origins, 0.8)
}

func TestAlignPipelinePairedBWABatch(t *testing.T) {
	store := agd.NewMemStore()
	g, origins := pairedFixture(t, store, "ds", 200_000, 400)
	fm, err := BuildBWAIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Align(context.Background(), AlignConfig{
		Store: store, Dataset: "ds",
		Engine: EngineBWA, FMIndex: fm, Genome: g, Paired: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPairedResults(t, store, origins, 0.7)
}

func checkPairedResults(t *testing.T, store agd.BlobStore, origins []reads.Origin, minProper float64) {
	t.Helper()
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(results)%2 != 0 {
		t.Fatalf("odd result count %d", len(results))
	}
	proper, correct := 0, 0
	for i := 0; i < len(results); i += 2 {
		r1, r2 := results[i], results[i+1]
		if r1.Flags&agd.FlagPaired == 0 || r2.Flags&agd.FlagPaired == 0 {
			t.Fatalf("pair %d missing paired flags: %+v %+v", i/2, r1, r2)
		}
		if r1.Flags&agd.FlagFirstInPair == 0 || r2.Flags&agd.FlagSecondInPair == 0 {
			t.Fatalf("pair %d order flags wrong", i/2)
		}
		if r1.Flags&agd.FlagProperPair == 0 {
			continue
		}
		proper++
		d1 := r1.Location - origins[i].Pos
		if d1 < 0 {
			d1 = -d1
		}
		d2 := r2.Location - origins[i+1].Pos
		if d2 < 0 {
			d2 = -d2
		}
		if d1 <= 8 && d2 <= 8 {
			correct++
		}
	}
	if frac := float64(proper) / float64(len(results)/2); frac < minProper {
		t.Fatalf("proper fraction %.3f < %.2f", frac, minProper)
	}
	if proper > 0 {
		if frac := float64(correct) / float64(proper); frac < 0.9 {
			t.Fatalf("pair-correct fraction %.3f", frac)
		}
	}
}

func TestAlignPipelinePairedOddCount(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 60_000, NumReads: 101, ReadLen: 60, ChunkSize: 50, Seed: 115, SkipAlign: true,
	})
	if _, _, err := Align(context.Background(), AlignConfig{
		Store: store, Dataset: "ds", Index: f.Index, Paired: true,
	}); err == nil {
		t.Fatal("odd record count accepted for paired alignment")
	}
}
