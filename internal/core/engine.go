package core

import (
	"fmt"

	"persona/internal/agd"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/genome"
)

// ReadAligner is the single-end alignment interface process subgraphs use;
// both integrated aligners satisfy it (§4.3).
type ReadAligner interface {
	AlignRead(bases []byte) agd.Result
}

// PairAligner aligns read pairs one at a time (the SNAP paired path).
type PairAligner interface {
	AlignPair(bases1, bases2 []byte) (agd.Result, agd.Result)
}

// BatchPairAligner aligns read pairs a batch at a time. BWA-MEM's paired
// mode needs the whole batch for its single-threaded insert-size inference
// step (§4.3), so the pipeline hands it entire subchunks.
type BatchPairAligner interface {
	AlignPairBatch(pairs1, pairs2 [][]byte) ([]agd.Result, bwa.InsertStats)
}

// Engine selects the integrated aligner.
type Engine int

const (
	// EngineSNAP is the hash-index aligner (default; the paper's
	// throughput workhorse).
	EngineSNAP Engine = iota
	// EngineBWA is the FM-index aligner.
	EngineBWA
)

func (e Engine) String() string {
	if e == EngineBWA {
		return "bwa"
	}
	return "snap"
}

// engineFactory builds per-worker aligner instances for a config.
func engineFactory(cfg *AlignConfig) (func() ReadAligner, error) {
	switch cfg.Engine {
	case EngineSNAP:
		if cfg.Index == nil {
			return nil, fmt.Errorf("core: SNAP engine needs Index")
		}
		return func() ReadAligner {
			return snap.NewAligner(cfg.Index, cfg.Aligner)
		}, nil
	case EngineBWA:
		if cfg.FMIndex == nil || cfg.Genome == nil {
			return nil, fmt.Errorf("core: BWA engine needs FMIndex and Genome")
		}
		return func() ReadAligner {
			return bwa.NewAligner(cfg.FMIndex, cfg.Genome, cfg.BWAConfig)
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown engine %d", cfg.Engine)
	}
}

// BuildBWAIndex builds the FM-index for the BWA engine.
func BuildBWAIndex(g *genome.Genome) (*bwa.FMIndex, error) { return bwa.NewFMIndex(g) }

// buildSnapIdx builds a SNAP index with the package's standard test/CLI
// seed length.
func buildSnapIdx(g *genome.Genome) (*snap.Index, error) {
	return snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
}
