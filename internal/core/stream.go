package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/dataflow"
)

// alignStage is the per-stream state of a streaming alignment: pooled
// aligner values, reusable result arenas and the output chunk builders
// (one reused builder on the serial pull path, a bounded pool when the
// stage is pumped).
type alignStage struct {
	exec      *dataflow.Executor
	aligners  chan ReadAligner
	arenas    []*agd.RecordArena
	builder   *agd.ChunkBuilder
	pool      *agd.BuilderPool
	owned     bool // input groups are valid until Release
	paired    bool
	subchunks int
	report    *AlignReport
	started   time.Time
	basesCol  int
}

// AlignStream is the stream-in/stream-out form of Align, used by composed
// pipelines: it appends a results column to every group of in, aligning
// records in fine-grain subchunks on the shared executor (Fig. 4), and the
// encoded results travel with the group in memory — no store round trip.
// The executor is owned by the caller (a Session) and is never closed here.
// The returned report's counters update as groups flow; Elapsed and Stats
// are finalized when the stream delivers io.EOF or is closed.
func AlignStream(cfg AlignConfig, exec *dataflow.Executor, in *agd.GroupStream) (*agd.GroupStream, *AlignReport, error) {
	if exec == nil {
		return nil, nil, fmt.Errorf("core: AlignStream needs an executor")
	}
	cfg.applyDefaults()
	basesCol := in.Meta.Col(agd.ColBases)
	if basesCol < 0 {
		return nil, nil, fmt.Errorf("core: stream has no %q column", agd.ColBases)
	}
	if in.Meta.HasColumn(agd.ColResults) {
		return nil, nil, fmt.Errorf("core: stream already carries a results column")
	}
	if cfg.Paired && in.Meta.NumRecords%2 != 0 {
		return nil, nil, fmt.Errorf("core: paired alignment needs an even record count, stream has %d", in.Meta.NumRecords)
	}
	factory, err := engineFactory(&cfg)
	if err != nil {
		return nil, nil, err
	}
	st := &alignStage{
		exec:      exec,
		aligners:  make(chan ReadAligner, exec.Workers()),
		arenas:    make([]*agd.RecordArena, cfg.Subchunks),
		owned:     in.Owned,
		paired:    cfg.Paired,
		subchunks: cfg.Subchunks,
		report:    &AlignReport{},
		started:   time.Now(),
		basesCol:  basesCol,
	}
	if cfg.Pipelining > 1 {
		st.pool = agd.NewBuilderPool(cfg.Pipelining, []agd.ColumnSpec{{Name: agd.ColResults, Type: agd.TypeResults}})
	} else {
		st.builder = agd.NewChunkBuilder(agd.TypeResults, 0)
	}
	for i := 0; i < exec.Workers(); i++ {
		st.aligners <- factory()
	}
	for i := range st.arenas {
		st.arenas[i] = agd.NewRecordArena(4096, 64)
	}

	meta := in.Meta.WithColumn(agd.ColResults)
	// finish runs from the EOF path or a concurrent teardown Close — once,
	// whichever comes first (pumped pipelines can race the two).
	var finishOnce sync.Once
	finish := func() {
		finishOnce.Do(func() {
			st.report.Elapsed = time.Since(st.started)
			if st.report.Elapsed > 0 {
				st.report.BasesPerSec = float64(st.report.Bases) / st.report.Elapsed.Seconds()
			}
			st.collectStats()
		})
	}
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		g, err := in.Next(ctx)
		if err == io.EOF {
			finish()
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		return st.alignGroup(ctx, g)
	}
	out := agd.NewGroupStream(meta, next, func() { finish(); in.Close() })
	out.Owned = st.pool != nil && in.Owned
	return out, st.report, nil
}

// alignGroup aligns one row group, returning the group with a results chunk
// appended. The results chunk aliases the stage's reused builder, valid
// until the next group is requested.
func (st *alignStage) alignGroup(ctx context.Context, g *agd.RowGroup) (*agd.RowGroup, error) {
	bases := g.Chunks[st.basesCol]
	n := bases.NumRecords()
	sub := st.subchunks
	if sub > n {
		sub = n
	}
	if sub == 0 {
		sub = 1
	}
	// The subchunk batch is pinned to the group's shard, with idle shards
	// stealing the tail. Submission and completion are tracked by a private
	// latch: if the context dies mid-group the stage still waits for the
	// tasks it managed to submit — they hold references to the group's
	// chunks, which may recycle through a shared pool on release, so
	// returning before they finish would hand live buffers to another
	// decode.
	comp := dataflow.NewCompletion(sub)
	submitted := 0
	var submitErr error
	for s := 0; s < sub; s++ {
		lo, hi := s*n/sub, (s+1)*n/sub
		if st.paired {
			// Subchunk boundaries must not split pairs.
			lo, hi = lo&^1, hi&^1
			if s == sub-1 {
				hi = n
			}
		}
		ra := st.arenas[s]
		ra.Reset()
		task := func(lo, hi int, ra *agd.RecordArena) dataflow.ShardTask {
			return func(int) {
				defer comp.Done()
				if ctx.Err() != nil {
					return // cancelled: drain without aligning
				}
				a := <-st.aligners
				defer func() { st.aligners <- a }()
				alignRange(a, bases, ra, lo, hi, st.paired)
			}
		}(lo, hi, ra)
		if err := st.exec.SubmitSharded(ctx, g.Shard, task); err != nil {
			submitErr = err
			break
		}
		submitted++
	}
	for s := submitted; s < sub; s++ {
		comp.Done()
	}
	// Wait with a background context: the executor outlives the pipeline,
	// so submitted tasks always complete, and waiting keeps the group's
	// chunks alive until no task references them.
	if err := comp.Wait(context.Background()); err != nil {
		g.Release()
		return nil, err
	}
	if submitErr == nil {
		submitErr = ctx.Err()
	}
	if submitErr != nil {
		g.Release()
		return nil, submitErr
	}

	builder := st.builder
	var set *agd.BuilderSet
	if st.pool != nil {
		var err error
		if set, err = st.pool.Get(ctx, bases.FirstOrdinal); err != nil {
			g.Release()
			return nil, err
		}
		builder = set.Builders[0]
	}
	putSet := func() {
		if set != nil {
			st.pool.Put(set)
		}
	}
	builder.Reset(agd.TypeResults, bases.FirstOrdinal)
	for s := 0; s < sub; s++ {
		ra := st.arenas[s]
		for i := 0; i < ra.Len(); i++ {
			builder.Append(ra.Record(i))
		}
	}
	if builder.NumRecords() != n {
		putSet()
		g.Release()
		return nil, fmt.Errorf("core: group %d aligned %d of %d records", g.Index, builder.NumRecords(), n)
	}

	var chunkBases int64
	for r := 0; r < n; r++ {
		rec, err := bases.Record(r)
		if err != nil {
			putSet()
			g.Release()
			return nil, err
		}
		count, l := uvarint(rec)
		if l <= 0 {
			putSet()
			g.Release()
			return nil, fmt.Errorf("core: corrupt bases record in group %d", g.Index)
		}
		chunkBases += int64(count)
	}
	st.report.Chunks++
	st.report.Reads += int64(n)
	st.report.Bases += chunkBases

	chunks := make([]*agd.Chunk, 0, len(g.Chunks)+1)
	chunks = append(chunks, g.Chunks...)
	chunks = append(chunks, builder.Chunk())
	release := g.Release
	if set != nil {
		release = func() {
			st.pool.Put(set)
			g.Release()
		}
	}
	return agd.NewRowGroup(g.Index, g.Shard, chunks, release), nil
}

// collectStats drains the aligner pool and aggregates SNAP work counters
// (called once, after the last group).
func (st *alignStage) collectStats() {
	if st.aligners == nil {
		return
	}
	close(st.aligners)
	for a := range st.aligners {
		if sa, ok := a.(*snap.Aligner); ok {
			s := sa.Stats()
			st.report.Stats.Reads += s.Reads
			st.report.Stats.SeedLookups += s.SeedLookups
			st.report.Stats.CandidatesxLV += s.CandidatesxLV
			st.report.Stats.LVCells += s.LVCells
			st.report.Stats.BytesCompared += s.BytesCompared
			st.report.Stats.Aligned += s.Aligned
		}
	}
	st.aligners = nil
}
