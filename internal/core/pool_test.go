package core

import (
	"context"
	"testing"

	"persona/internal/agd"
	"persona/internal/testutil"
)

// TestAlignPooledChunkLifecycleRace drives a full Align run with every stage
// parallel, so chunk-pool get/put, arena recycling and parallel member
// compression all race each other. Under `go test -race` this is the
// regression test for the pooled chunk lifecycle; in any mode it checks that
// recycled buffers cannot bleed data between chunks (results must be
// identical to a serial run).
func TestAlignPooledChunkLifecycleRace(t *testing.T) {
	run := func(readers, parsers, alignerNodes, writers, execThreads int) []agd.Result {
		store := agd.NewMemStore()
		f := testutil.Build(t, store, "ds", testutil.Config{
			GenomeSize: 120_000, NumReads: 600, ReadLen: 80, ChunkSize: 48, Seed: 123, SkipAlign: true,
		})
		_, _, err := Align(context.Background(), AlignConfig{
			Store: store, Dataset: "ds", Index: f.Index,
			Readers: readers, Parsers: parsers, AlignerNodes: alignerNodes,
			Writers: writers, ExecutorThreads: execThreads, Subchunks: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := agd.Open(store, "ds")
		if err != nil {
			t.Fatal(err)
		}
		results, err := ds.ReadAllResults()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	serial := run(1, 1, 1, 1, 1)
	parallel := run(3, 3, 3, 3, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d differs between serial and parallel runs:\n  serial:   %+v\n  parallel: %+v",
				i, serial[i], parallel[i])
		}
	}
}
