// Package core assembles Persona's dataflow pipelines (§4 of the paper):
// the I/O input subgraph (reader → AGD parser → chunk queue), the process
// subgraphs (alignment over a shared fine-grain executor, per Fig. 4), and
// the I/O output subgraph (writer nodes with compression). It corresponds
// to the "thin Python library that stitches these nodes together into
// optimized subgraphs" (§4.1); the root persona package re-exports it.
package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"persona/internal/agd"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/dataflow"
	"persona/internal/genome"
	"persona/internal/storage"
)

// AlignConfig parameterizes the single-server alignment pipeline.
type AlignConfig struct {
	// Store holds the dataset; results are written back to it.
	Store storage.Store
	// Dataset names the AGD dataset to align.
	Dataset string
	// Engine selects the integrated aligner (default EngineSNAP).
	Engine Engine
	// Index is the SNAP seed index of the reference (EngineSNAP).
	Index *snap.Index
	// Aligner tunes the SNAP algorithm.
	Aligner snap.Config
	// FMIndex and Genome configure the BWA engine (EngineBWA).
	FMIndex   *bwa.FMIndex
	Genome    *genome.Genome
	BWAConfig bwa.Config
	// Paired aligns consecutive records as pairs (records 2i and 2i+1).
	Paired bool

	// Readers/Parsers/AlignerNodes/Writers set per-stage node parallelism.
	// Zero values choose small defaults. Queue capacities default to the
	// number of their downstream nodes (§4.5). Blob fetching is asynchronous
	// (agd.ChunkStream), so Readers no longer names a node: it sizes the
	// default fetch window instead, and Parsers is the number of stream
	// consumers that wait on fetches and decode them.
	Readers, Parsers, AlignerNodes, Writers int
	// Prefetch is the chunk-fetch window of the input stream: how many
	// chunks' column blobs are kept in flight, counting the one being
	// decoded. 1 fetches synchronously; 0 defaults to 2*Readers.
	Prefetch int
	// ExecutorThreads is the size of the shared fine-grain executor that
	// owns all compute threads (Fig. 4). Default 2.
	ExecutorThreads int
	// Subchunks is the fine-grain split of each chunk. Default 8.
	Subchunks int
	// Pipelining (AlignStream only) is how many output groups may be in
	// flight at once. ≤ 1 keeps the serial pull contract (the results chunk
	// aliases one reused builder, valid until the next group); > 1 draws
	// results builders from a bounded pool of that size, so a pumped edge
	// can queue groups that stay valid until Release.
	Pipelining int
}

func (c *AlignConfig) applyDefaults() {
	if c.Readers <= 0 {
		c.Readers = 2
	}
	if c.Parsers <= 0 {
		c.Parsers = 2
	}
	if c.AlignerNodes <= 0 {
		c.AlignerNodes = 2
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.ExecutorThreads <= 0 {
		c.ExecutorThreads = 2
	}
	if c.Prefetch <= 0 {
		c.Prefetch = 2 * c.Readers
	}
	if c.Subchunks <= 0 {
		c.Subchunks = 8
	}
}

// AlignReport summarizes a pipeline run.
type AlignReport struct {
	Chunks      int
	Reads       int64
	Bases       int64
	Elapsed     time.Duration
	BasesPerSec float64
	// Stats aggregates the aligners' work counters (perfmodel input).
	Stats snap.Stats
}

// parsedChunk travels streamer → aligner: decoded chunk objects plus the
// executor shard the chunk's pooled buffers are affine to.
type parsedChunk struct {
	idx         int
	shard       int
	bases, qual *agd.Chunk
}

// alignedChunk travels aligner → writer: per-subchunk arenas of encoded
// result records, in record order (arenas[s] holds subchunk s's contiguous
// range). The writer folds the records into the output chunk and recycles
// the arenas.
type alignedChunk struct {
	idx    int
	shard  int
	first  uint64
	arenas []*agd.RecordArena
	reads  int
	bases  int64
}

// Align runs the full Persona alignment graph over a dataset and registers
// the results column. It is the single-server counterpart of cluster.Align.
func Align(ctx context.Context, cfg AlignConfig) (*AlignReport, *agd.Manifest, error) {
	cfg.applyDefaults()
	ds, err := agd.Open(cfg.Store, cfg.Dataset)
	if err != nil {
		return nil, nil, err
	}
	m := ds.Manifest
	if m.HasColumn(agd.ColResults) {
		return nil, nil, fmt.Errorf("core: dataset %q already has results", cfg.Dataset)
	}

	if cfg.Paired && m.NumRecords()%2 != 0 {
		return nil, nil, fmt.Errorf("core: paired alignment needs an even record count, dataset %q has %d", cfg.Dataset, m.NumRecords())
	}
	factory, err := engineFactory(&cfg)
	if err != nil {
		return nil, nil, err
	}
	exec := dataflow.NewExecutor(cfg.ExecutorThreads, cfg.ExecutorThreads*2)
	defer exec.Close()
	aligners := make(chan ReadAligner, cfg.ExecutorThreads)
	for i := 0; i < cfg.ExecutorThreads; i++ {
		aligners <- factory()
	}

	// codec routes chunk (de)compression members through the same shared
	// executor as alignment, so compression parallelism and alignment
	// parallelism draw from one set of compute threads (Fig. 4).
	codec := agd.Codec{Exec: exec}

	// chunkPool recycles parsed chunk objects streamer→aligner with one
	// free list per executor shard: chunk i's buffers check out of (and
	// return to) shard i%N's list, so they stay hot in the cache of the
	// worker its subchunk tasks are pinned to. Each parsed row group checks
	// out two chunks (bases, qual). Sized so every stage can hold its share
	// with a little slack; exhaustion blocks the streamers, which is the
	// intended back-pressure.
	chunkPool := agd.NewShardedChunkPool(exec.NumShards(), 2*(cfg.Parsers+2*cfg.AlignerNodes)+2)
	// arenaPool recycles per-subchunk result arenas aligner→writer, also
	// sharded: a subchunk task checks its arena out of the shard actually
	// running it (stolen tasks use the thief's list), and the writer
	// returns it to the chunk's home shard.
	arenaPool := dataflow.NewShardedItemPool(
		exec.NumShards(),
		(2*cfg.AlignerNodes+2*cfg.Writers)*cfg.Subchunks+cfg.ExecutorThreads,
		func() *agd.RecordArena { return agd.NewRecordArena(4096, 64) },
		func(ra *agd.RecordArena) *agd.RecordArena { ra.Reset(); return ra },
	)
	// builderPool recycles the writers' output chunk builders.
	builderPool := dataflow.NewItemPool(
		cfg.Writers+1,
		func() *agd.ChunkBuilder { return agd.NewChunkBuilder(agd.TypeResults, 0) },
		nil,
	)

	g := dataflow.NewGraph()
	g.MustAddQueue("parsed", cfg.AlignerNodes)
	g.MustAddQueue("aligned", cfg.Writers)

	// Input subgraph: a prefetching chunk stream over the two columns
	// alignment touches (§5.2). The stream keeps cfg.Prefetch chunks' blob
	// fetches in flight through the store's async read path, so fetch
	// latency overlaps with decode and alignment instead of stalling the
	// pipeline one Get at a time; the streamer nodes wait on the window's
	// head, decode into pooled chunks, and feed the aligners.
	stream, err := ds.Stream(agd.StreamOptions{
		Columns:     []string{agd.ColBases, agd.ColQual},
		Prefetch:    cfg.Prefetch,
		ShardedPool: chunkPool,
		Codec:       codec,
	})
	if err != nil {
		return nil, nil, err
	}
	defer stream.Close()
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "streamer",
		Parallelism: cfg.Parsers,
		Outputs:     []string{"parsed"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			out := nc.Output("parsed")
			for {
				sc, err := stream.Next(ctx)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				cols := sc.Chunks()
				nc.Processed(1)
				if err := out.Put(ctx, parsedChunk{idx: sc.Index, shard: sc.Shard(), bases: cols[0], qual: cols[1]}); err != nil {
					return err
				}
			}
		},
	})

	// Process subgraph: aligner nodes split each chunk into subchunks and
	// feed the shared executor (Fig. 4), then emit the encoded results.
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "aligner",
		Parallelism: cfg.AlignerNodes,
		Inputs:      []string{"parsed"},
		Outputs:     []string{"aligned"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			in, out := nc.Input("parsed"), nc.Output("aligned")
			for {
				msg, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				pc := msg.(parsedChunk)
				n := pc.bases.NumRecords()
				var chunkBases int64
				sub := cfg.Subchunks
				if sub > n {
					sub = n
				}
				if sub == 0 {
					sub = 1
				}
				arenas := make([]*agd.RecordArena, sub)
				// All subchunks go to the chunk's shard (Fig. 4 + sharding):
				// the shard's worker pops them LIFO against its warm cache
				// and idle shards steal the batch's tail.
				err := exec.SubmitWaitTo(ctx, pc.shard, sub, func(s int) dataflow.ShardTask {
					lo, hi := s*n/sub, (s+1)*n/sub
					if cfg.Paired {
						// Subchunk boundaries must not split pairs.
						lo, hi = lo&^1, hi&^1
						if s == sub-1 {
							hi = n
						}
					}
					return func(es int) {
						// The arena comes from the free list of the shard
						// actually running the task — a stolen subchunk
						// writes into the thief's cache-warm arena.
						ra, err := arenaPool.Get(ctx, es)
						if err != nil {
							// Cancelled mid-run: fall back to a throwaway
							// arena so the subchunk still completes.
							ra = &agd.RecordArena{}
						}
						arenas[s] = ra
						a := <-aligners
						defer func() { aligners <- a }()
						alignRange(a, pc.bases, ra, lo, hi, cfg.Paired)
					}
				})
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					rec, err := pc.bases.Record(r)
					if err != nil {
						return err
					}
					count, l := uvarint(rec)
					if l <= 0 {
						return fmt.Errorf("core: corrupt bases record in chunk %d", pc.idx)
					}
					chunkBases += int64(count)
				}
				first := pc.bases.FirstOrdinal
				// The encoded results no longer reference the parsed
				// chunks; recycle them on the chunk's shard for the
				// streamers.
				chunkPool.Put(pc.shard, pc.bases)
				chunkPool.Put(pc.shard, pc.qual)
				nc.Processed(1)
				if err := out.Put(ctx, alignedChunk{
					idx: pc.idx, shard: pc.shard, first: first,
					arenas: arenas, reads: n, bases: chunkBases,
				}); err != nil {
					return err
				}
			}
		},
	})

	// Output subgraph: writers encode and store result chunks.
	report := &AlignReport{}
	var reportMu sync.Mutex
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "writer",
		Parallelism: cfg.Writers,
		Inputs:      []string{"aligned"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			in := nc.Input("aligned")
			for {
				msg, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				ac := msg.(alignedChunk)
				builder, err := builderPool.Get(ctx)
				if err != nil {
					return err
				}
				builder.Reset(agd.TypeResults, ac.first)
				// Subchunk arenas hold contiguous record ranges in order, so
				// appending arena by arena reproduces record order. The
				// records are copied into the builder; the exhausted arenas
				// go back to the aligner nodes' pool.
				for _, ra := range ac.arenas {
					if ra == nil {
						continue
					}
					for i := 0; i < ra.Len(); i++ {
						builder.Append(ra.Record(i))
					}
					arenaPool.Put(ac.shard, ra)
				}
				// Compression members are pinned to the chunk's shard, so
				// one chunk's decode, align and compress land on the same
				// worker while surplus members are stolen by idle shards.
				blob, err := codec.WithShard(ac.shard).Encode(builder.Chunk(), agd.CompressGzip)
				builderPool.Put(builder)
				if err != nil {
					return err
				}
				if err := cfg.Store.Put(m.ChunkBlobPath(ac.idx, agd.ColResults), blob); err != nil {
					return err
				}
				reportMu.Lock()
				report.Chunks++
				report.Reads += int64(ac.reads)
				report.Bases += ac.bases
				reportMu.Unlock()
				nc.Processed(1)
			}
		},
	})

	start := time.Now()
	if err := dataflow.NewSession(g).Run(ctx); err != nil {
		return nil, nil, err
	}
	report.Elapsed = time.Since(start)
	if report.Elapsed > 0 {
		report.BasesPerSec = float64(report.Bases) / report.Elapsed.Seconds()
	}
	close(aligners)
	for a := range aligners {
		// Work counters are engine-specific; aggregate SNAP's (the Fig. 8
		// instrumentation input) when available.
		if sa, ok := a.(*snap.Aligner); ok {
			s := sa.Stats()
			report.Stats.Reads += s.Reads
			report.Stats.SeedLookups += s.SeedLookups
			report.Stats.CandidatesxLV += s.CandidatesxLV
			report.Stats.LVCells += s.LVCells
			report.Stats.BytesCompared += s.BytesCompared
			report.Stats.Aligned += s.Aligned
		}
	}

	updated, err := agd.RegisterColumn(cfg.Store, m, agd.ColResults)
	if err != nil {
		return nil, nil, err
	}
	return report, updated, nil
}

// uvarint decodes the leading uvarint of a compacted bases record.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, 0
}

// unmappedResult is the record appended for reads that fail to decode.
var unmappedResult = agd.Result{
	Location:     agd.UnmappedLocation,
	MateLocation: agd.UnmappedLocation,
	Flags:        agd.FlagUnmapped,
}

// alignRange aligns records [lo, hi) of a chunk, appending each encoded
// result in record order to ra, single-end or paired. Paired mode prefers
// the batch interface (BWA's per-batch insert-size inference), falling back
// to pair-at-a-time. All decode and encode scratch is reused, so the
// steady-state loop performs no per-read allocation.
func alignRange(a ReadAligner, basesChunk *agd.Chunk, ra *agd.RecordArena, lo, hi int, paired bool) {
	if !paired {
		var scratch []byte
		for r := lo; r < hi; r++ {
			bases, err := basesChunk.ExpandBasesRecord(scratch[:0], r)
			if err != nil {
				ra.AppendResult(&unmappedResult)
				continue
			}
			res := a.AlignRead(bases)
			ra.AppendResult(&res)
			scratch = bases
		}
		return
	}

	numPairs := (hi - lo) / 2
	if batch, ok := a.(BatchPairAligner); ok {
		// Materialize the subchunk's pairs (batch aligners need them all).
		p1 := make([][]byte, numPairs)
		p2 := make([][]byte, numPairs)
		for p := 0; p < numPairs; p++ {
			b1, err1 := basesChunk.ExpandBasesRecord(nil, lo+2*p)
			b2, err2 := basesChunk.ExpandBasesRecord(nil, lo+2*p+1)
			if err1 != nil || err2 != nil {
				b1, b2 = nil, nil
			}
			p1[p], p2[p] = b1, b2
		}
		results, _ := batch.AlignPairBatch(p1, p2)
		for p := 0; p < numPairs; p++ {
			if p1[p] == nil {
				ra.AppendResult(&unmappedResult)
				ra.AppendResult(&unmappedResult)
				continue
			}
			ra.AppendResult(&results[2*p])
			ra.AppendResult(&results[2*p+1])
		}
		return
	}

	pa, isPair := a.(PairAligner)
	if !isPair {
		// No paired support: align ends independently.
		var scratch []byte
		for r := lo; r < lo+2*numPairs; r++ {
			bases, err := basesChunk.ExpandBasesRecord(scratch[:0], r)
			if err != nil {
				ra.AppendResult(&unmappedResult)
				continue
			}
			res := a.AlignRead(bases)
			ra.AppendResult(&res)
			scratch = bases
		}
		return
	}
	var s1, s2 []byte
	for p := 0; p < numPairs; p++ {
		b1, err1 := basesChunk.ExpandBasesRecord(s1[:0], lo+2*p)
		b2, err2 := basesChunk.ExpandBasesRecord(s2[:0], lo+2*p+1)
		s1, s2 = b1, b2
		if err1 != nil || err2 != nil {
			ra.AppendResult(&unmappedResult)
			ra.AppendResult(&unmappedResult)
			continue
		}
		r1, r2 := pa.AlignPair(b1, b2)
		ra.AppendResult(&r1)
		ra.AppendResult(&r2)
	}
}
