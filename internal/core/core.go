// Package core assembles Persona's dataflow pipelines (§4 of the paper):
// the I/O input subgraph (reader → AGD parser → chunk queue), the process
// subgraphs (alignment over a shared fine-grain executor, per Fig. 4), and
// the I/O output subgraph (writer nodes with compression). It corresponds
// to the "thin Python library that stitches these nodes together into
// optimized subgraphs" (§4.1); the root persona package re-exports it.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"persona/internal/agd"
	"persona/internal/align/bwa"
	"persona/internal/align/snap"
	"persona/internal/dataflow"
	"persona/internal/genome"
	"persona/internal/storage"
)

// AlignConfig parameterizes the single-server alignment pipeline.
type AlignConfig struct {
	// Store holds the dataset; results are written back to it.
	Store storage.Store
	// Dataset names the AGD dataset to align.
	Dataset string
	// Engine selects the integrated aligner (default EngineSNAP).
	Engine Engine
	// Index is the SNAP seed index of the reference (EngineSNAP).
	Index *snap.Index
	// Aligner tunes the SNAP algorithm.
	Aligner snap.Config
	// FMIndex and Genome configure the BWA engine (EngineBWA).
	FMIndex   *bwa.FMIndex
	Genome    *genome.Genome
	BWAConfig bwa.Config
	// Paired aligns consecutive records as pairs (records 2i and 2i+1).
	Paired bool

	// Readers/Parsers/AlignerNodes/Writers set per-stage node parallelism.
	// Zero values choose small defaults. Queue capacities default to the
	// number of their downstream nodes (§4.5).
	Readers, Parsers, AlignerNodes, Writers int
	// ExecutorThreads is the size of the shared fine-grain executor that
	// owns all compute threads (Fig. 4). Default 2.
	ExecutorThreads int
	// Subchunks is the fine-grain split of each chunk. Default 8.
	Subchunks int
}

func (c *AlignConfig) applyDefaults() {
	if c.Readers <= 0 {
		c.Readers = 2
	}
	if c.Parsers <= 0 {
		c.Parsers = 2
	}
	if c.AlignerNodes <= 0 {
		c.AlignerNodes = 2
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.ExecutorThreads <= 0 {
		c.ExecutorThreads = 2
	}
	if c.Subchunks <= 0 {
		c.Subchunks = 8
	}
}

// AlignReport summarizes a pipeline run.
type AlignReport struct {
	Chunks      int
	Reads       int64
	Bases       int64
	Elapsed     time.Duration
	BasesPerSec float64
	// Stats aggregates the aligners' work counters (perfmodel input).
	Stats snap.Stats
}

// chunkWork travels reader → parser: raw column blobs of one chunk.
type chunkWork struct {
	idx         int
	bases, qual []byte
}

// parsedChunk travels parser → aligner: decoded chunk objects.
type parsedChunk struct {
	idx         int
	bases, qual *agd.Chunk
}

// alignedChunk travels aligner → writer: encoded result records.
type alignedChunk struct {
	idx     int
	first   uint64
	encoded [][]byte
	reads   int
	bases   int64
}

// Align runs the full Persona alignment graph over a dataset and registers
// the results column. It is the single-server counterpart of cluster.Align.
func Align(ctx context.Context, cfg AlignConfig) (*AlignReport, *agd.Manifest, error) {
	cfg.applyDefaults()
	ds, err := agd.Open(cfg.Store, cfg.Dataset)
	if err != nil {
		return nil, nil, err
	}
	m := ds.Manifest
	if m.HasColumn(agd.ColResults) {
		return nil, nil, fmt.Errorf("core: dataset %q already has results", cfg.Dataset)
	}

	if cfg.Paired && m.NumRecords()%2 != 0 {
		return nil, nil, fmt.Errorf("core: paired alignment needs an even record count, dataset %q has %d", cfg.Dataset, m.NumRecords())
	}
	factory, err := engineFactory(&cfg)
	if err != nil {
		return nil, nil, err
	}
	exec := dataflow.NewExecutor(cfg.ExecutorThreads, cfg.ExecutorThreads*2)
	defer exec.Close()
	aligners := make(chan ReadAligner, cfg.ExecutorThreads)
	for i := 0; i < cfg.ExecutorThreads; i++ {
		aligners <- factory()
	}

	g := dataflow.NewGraph()
	g.MustAddQueue("names", len(m.Chunks))
	g.MustAddQueue("raw", cfg.Parsers)
	g.MustAddQueue("parsed", cfg.AlignerNodes)
	g.MustAddQueue("aligned", cfg.Writers)

	// Source: enqueue every chunk index (the local stand-in for fetching
	// names from the manifest server, §5.2).
	g.MustAddNode(dataflow.NodeSpec{
		Name:    "source",
		Outputs: []string{"names"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			for i := range m.Chunks {
				if err := nc.Output("names").Put(ctx, i); err != nil {
					return err
				}
			}
			return nil
		},
	})

	// Input subgraph: readers fetch the bases and qual column blobs —
	// only the two columns alignment touches (§5.2).
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "reader",
		Parallelism: cfg.Readers,
		Inputs:      []string{"names"},
		Outputs:     []string{"raw"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			in, out := nc.Input("names"), nc.Output("raw")
			for {
				msg, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				idx := msg.(int)
				basesBlob, err := cfg.Store.Get(m.ChunkBlobPath(idx, agd.ColBases))
				if err != nil {
					return err
				}
				qualBlob, err := cfg.Store.Get(m.ChunkBlobPath(idx, agd.ColQual))
				if err != nil {
					return err
				}
				nc.Processed(1)
				if err := out.Put(ctx, chunkWork{idx: idx, bases: basesBlob, qual: qualBlob}); err != nil {
					return err
				}
			}
		},
	})

	// Parser: decompress and parse blobs into chunk objects.
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "parser",
		Parallelism: cfg.Parsers,
		Inputs:      []string{"raw"},
		Outputs:     []string{"parsed"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			in, out := nc.Input("raw"), nc.Output("parsed")
			for {
				msg, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				w := msg.(chunkWork)
				basesChunk, err := agd.DecodeChunk(w.bases)
				if err != nil {
					return err
				}
				qualChunk, err := agd.DecodeChunk(w.qual)
				if err != nil {
					return err
				}
				nc.Processed(1)
				if err := out.Put(ctx, parsedChunk{idx: w.idx, bases: basesChunk, qual: qualChunk}); err != nil {
					return err
				}
			}
		},
	})

	// Process subgraph: aligner nodes split each chunk into subchunks and
	// feed the shared executor (Fig. 4), then emit the encoded results.
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "aligner",
		Parallelism: cfg.AlignerNodes,
		Inputs:      []string{"parsed"},
		Outputs:     []string{"aligned"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			in, out := nc.Input("parsed"), nc.Output("aligned")
			for {
				msg, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				pc := msg.(parsedChunk)
				n := pc.bases.NumRecords()
				encoded := make([][]byte, n)
				var chunkBases int64
				sub := cfg.Subchunks
				if sub > n {
					sub = n
				}
				if sub == 0 {
					sub = 1
				}
				err := exec.SubmitWait(ctx, sub, func(s int) dataflow.Task {
					lo, hi := s*n/sub, (s+1)*n/sub
					if cfg.Paired {
						// Subchunk boundaries must not split pairs.
						lo, hi = lo&^1, hi&^1
						if s == sub-1 {
							hi = n
						}
					}
					return func() {
						a := <-aligners
						defer func() { aligners <- a }()
						alignRange(a, pc.bases, encoded, lo, hi, cfg.Paired)
					}
				})
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					rec, err := pc.bases.Record(r)
					if err != nil {
						return err
					}
					count, l := uvarint(rec)
					if l <= 0 {
						return fmt.Errorf("core: corrupt bases record in chunk %d", pc.idx)
					}
					chunkBases += int64(count)
				}
				nc.Processed(1)
				if err := out.Put(ctx, alignedChunk{
					idx: pc.idx, first: pc.bases.FirstOrdinal,
					encoded: encoded, reads: n, bases: chunkBases,
				}); err != nil {
					return err
				}
			}
		},
	})

	// Output subgraph: writers encode and store result chunks.
	report := &AlignReport{}
	var reportMu sync.Mutex
	g.MustAddNode(dataflow.NodeSpec{
		Name:        "writer",
		Parallelism: cfg.Writers,
		Inputs:      []string{"aligned"},
		Fn: func(ctx context.Context, nc *dataflow.NodeContext) error {
			in := nc.Input("aligned")
			for {
				msg, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				ac := msg.(alignedChunk)
				builder := agd.NewChunkBuilder(agd.TypeResults, ac.first)
				for _, rec := range ac.encoded {
					builder.Append(rec)
				}
				blob, err := agd.EncodeChunk(builder.Chunk(), agd.CompressGzip)
				if err != nil {
					return err
				}
				if err := cfg.Store.Put(m.ChunkBlobPath(ac.idx, agd.ColResults), blob); err != nil {
					return err
				}
				reportMu.Lock()
				report.Chunks++
				report.Reads += int64(ac.reads)
				report.Bases += ac.bases
				reportMu.Unlock()
				nc.Processed(1)
			}
		},
	})

	start := time.Now()
	if err := dataflow.NewSession(g).Run(ctx); err != nil {
		return nil, nil, err
	}
	report.Elapsed = time.Since(start)
	if report.Elapsed > 0 {
		report.BasesPerSec = float64(report.Bases) / report.Elapsed.Seconds()
	}
	close(aligners)
	for a := range aligners {
		// Work counters are engine-specific; aggregate SNAP's (the Fig. 8
		// instrumentation input) when available.
		if sa, ok := a.(*snap.Aligner); ok {
			s := sa.Stats()
			report.Stats.Reads += s.Reads
			report.Stats.SeedLookups += s.SeedLookups
			report.Stats.CandidatesxLV += s.CandidatesxLV
			report.Stats.LVCells += s.LVCells
			report.Stats.BytesCompared += s.BytesCompared
			report.Stats.Aligned += s.Aligned
		}
	}

	updated, err := agd.RegisterColumn(cfg.Store, m, agd.ColResults)
	if err != nil {
		return nil, nil, err
	}
	return report, updated, nil
}

// uvarint decodes the leading uvarint of a compacted bases record.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, 0
}

// alignRange aligns records [lo, hi) of a chunk into encoded, single-end or
// paired. Paired mode prefers the batch interface (BWA's per-batch
// insert-size inference), falling back to pair-at-a-time.
func alignRange(a ReadAligner, basesChunk *agd.Chunk, encoded [][]byte, lo, hi int, paired bool) {
	unmapped := func() []byte {
		return agd.EncodeResult(nil, &agd.Result{
			Location:     agd.UnmappedLocation,
			MateLocation: agd.UnmappedLocation,
			Flags:        agd.FlagUnmapped,
		})
	}
	if !paired {
		var scratch []byte
		for r := lo; r < hi; r++ {
			bases, err := basesChunk.ExpandBasesRecord(scratch[:0], r)
			if err != nil {
				encoded[r] = unmapped()
				continue
			}
			res := a.AlignRead(bases)
			encoded[r] = agd.EncodeResult(nil, &res)
			scratch = bases
		}
		return
	}

	// Materialize the subchunk's pairs (batch aligners need them all).
	numPairs := (hi - lo) / 2
	p1 := make([][]byte, numPairs)
	p2 := make([][]byte, numPairs)
	for p := 0; p < numPairs; p++ {
		b1, err1 := basesChunk.ExpandBasesRecord(nil, lo+2*p)
		b2, err2 := basesChunk.ExpandBasesRecord(nil, lo+2*p+1)
		if err1 != nil || err2 != nil {
			b1, b2 = nil, nil
		}
		p1[p], p2[p] = b1, b2
	}

	if batch, ok := a.(BatchPairAligner); ok {
		results, _ := batch.AlignPairBatch(p1, p2)
		for p := 0; p < numPairs; p++ {
			if p1[p] == nil {
				encoded[lo+2*p], encoded[lo+2*p+1] = unmapped(), unmapped()
				continue
			}
			encoded[lo+2*p] = agd.EncodeResult(nil, &results[2*p])
			encoded[lo+2*p+1] = agd.EncodeResult(nil, &results[2*p+1])
		}
		return
	}
	pa, ok := a.(PairAligner)
	if !ok {
		// No paired support: align ends independently.
		for p := 0; p < numPairs; p++ {
			for _, r := range []int{lo + 2*p, lo + 2*p + 1} {
				bases, err := basesChunk.ExpandBasesRecord(nil, r)
				if err != nil {
					encoded[r] = unmapped()
					continue
				}
				res := a.AlignRead(bases)
				encoded[r] = agd.EncodeResult(nil, &res)
			}
		}
		return
	}
	for p := 0; p < numPairs; p++ {
		if p1[p] == nil {
			encoded[lo+2*p], encoded[lo+2*p+1] = unmapped(), unmapped()
			continue
		}
		r1, r2 := pa.AlignPair(p1[p], p2[p])
		encoded[lo+2*p] = agd.EncodeResult(nil, &r1)
		encoded[lo+2*p+1] = agd.EncodeResult(nil, &r2)
	}
}
