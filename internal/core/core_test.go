package core

import (
	"context"
	"testing"

	"persona/internal/agd"
	"persona/internal/testutil"
)

func TestAlignPipelineEndToEnd(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 200_000, NumReads: 1000, ReadLen: 90, ChunkSize: 128, Seed: 91, SkipAlign: true,
	})
	report, m, err := Align(context.Background(), AlignConfig{
		Store: store, Dataset: "ds", Index: f.Index,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("results column missing")
	}
	if report.Reads != 1000 {
		t.Fatalf("Reads = %d", report.Reads)
	}
	if report.Bases != 1000*90 {
		t.Fatalf("Bases = %d", report.Bases)
	}
	if report.Chunks != 8 { // ceil(1000/128)
		t.Fatalf("Chunks = %d", report.Chunks)
	}
	if report.BasesPerSec <= 0 {
		t.Fatal("throughput not measured")
	}
	if report.Stats.Reads != 1000 || report.Stats.CandidatesxLV == 0 {
		t.Fatalf("aligner stats not aggregated: %+v", report.Stats)
	}

	// Accuracy: pipeline results must match direct alignment quality.
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	mapped, correct := 0, 0
	for i, r := range results {
		if r.IsUnmapped() {
			continue
		}
		mapped++
		diff := r.Location - f.Origins[i].Pos
		if diff < 0 {
			diff = -diff
		}
		if diff <= 5 {
			correct++
		}
	}
	if frac := float64(mapped) / float64(len(results)); frac < 0.95 {
		t.Fatalf("mapped %.3f", frac)
	}
	if frac := float64(correct) / float64(mapped); frac < 0.9 {
		t.Fatalf("correct %.3f", frac)
	}
}

func TestAlignPipelineParallelConfigs(t *testing.T) {
	// Results must be identical regardless of node parallelism.
	mk := func(readers, parsers, alignerNodes, writers int) []agd.Result {
		store := agd.NewMemStore()
		f := testutil.Build(t, store, "ds", testutil.Config{
			GenomeSize: 100_000, NumReads: 400, ReadLen: 70, ChunkSize: 64, Seed: 92, SkipAlign: true,
		})
		_, _, err := Align(context.Background(), AlignConfig{
			Store: store, Dataset: "ds", Index: f.Index,
			Readers: readers, Parsers: parsers, AlignerNodes: alignerNodes, Writers: writers,
		})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := agd.Open(store, "ds")
		if err != nil {
			t.Fatal(err)
		}
		results, err := ds.ReadAllResults()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial := mk(1, 1, 1, 1)
	parallel := mk(3, 3, 3, 3)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d differs between parallelism configs:\n%+v\n%+v", i, serial[i], parallel[i])
		}
	}
}

func TestAlignPipelineRejectsAligned(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 60_000, NumReads: 100, ReadLen: 60, ChunkSize: 50, Seed: 93,
	})
	if _, _, err := Align(context.Background(), AlignConfig{Store: store, Dataset: "ds", Index: f.Index}); err == nil {
		t.Fatal("re-align succeeded")
	}
}

func TestAlignPipelineMissingDataset(t *testing.T) {
	store := agd.NewMemStore()
	if _, _, err := Align(context.Background(), AlignConfig{Store: store, Dataset: "nope"}); err == nil {
		t.Fatal("missing dataset accepted")
	}
}

func TestAlignPipelineCancellation(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 100_000, NumReads: 500, ReadLen: 80, ChunkSize: 50, Seed: 94, SkipAlign: true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Align(ctx, AlignConfig{Store: store, Dataset: "ds", Index: f.Index}); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}
