package dataflow

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestShardedItemPoolAffinity(t *testing.T) {
	p := NewShardedItemPool(2, 4, func() *int { v := new(int); return v }, nil)
	ctx := context.Background()

	// Drain shard 0's seeded list (size 4 over 2 shards = 2 per list), then
	// recycle one item: it must come back from shard 0's own list.
	v, err := p.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(0, v)
	got, err := p.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatal("shard 0 did not get its own recycled item back")
	}
	if p.LocalHits() < 1 {
		t.Fatalf("LocalHits = %d, want >= 1", p.LocalHits())
	}
	p.Put(0, got)
	p.Put(0, v2)
	if p.Free() != 4 {
		t.Fatalf("Free = %d, want 4", p.Free())
	}
}

func TestShardedItemPoolStealsAcrossShards(t *testing.T) {
	// One item total, seeded on shard 0's list: a Get on shard 1 must find
	// it rather than block.
	p := NewShardedItemPool(2, 1, func() int { return 7 }, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	v, err := p.Get(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("got %d, want 7", v)
	}
}

func TestShardedItemPoolWakesCrossShardPut(t *testing.T) {
	// The lost-wakeup regression: a getter blocked on shard 0 must wake
	// when the item is Put back onto shard 1's local list.
	p := NewShardedItemPool(2, 1, func() int { return 1 }, nil)
	ctx := context.Background()
	v, err := p.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan int, 1)
	go func() {
		v, err := p.Get(ctx, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Get returned while the pool was exhausted")
	case <-time.After(20 * time.Millisecond):
	}

	p.Put(1, v) // lands on the OTHER shard's list
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never saw the cross-shard Put")
	}
}

func TestShardedItemPoolGetCancels(t *testing.T) {
	p := NewShardedItemPool(2, 1, func() int { return 1 }, nil)
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := p.Get(ctx, 0); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := p.Get(ctx, 1); err == nil {
		t.Fatal("Get on cancelled context succeeded")
	}
}

func TestShardedItemPoolReset(t *testing.T) {
	p := NewShardedItemPool(2, 2,
		func() []byte { return make([]byte, 0, 8) },
		func(b []byte) []byte { return b[:0] },
	)
	ctx := context.Background()
	b, err := p.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, 1, 2, 3)
	p.Put(0, b)
	b2, err := p.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2) != 0 {
		t.Fatalf("recycled item not reset: len=%d", len(b2))
	}
}

func TestShardedItemPoolConcurrentChurn(t *testing.T) {
	const shards, size = 4, 8
	p := NewShardedItemPool(shards, size, func() *int { return new(int) }, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				v, err := p.Get(ctx, g%shards)
				if err != nil {
					t.Error(err)
					return
				}
				*v++
				p.Put((g+i)%shards, v)
			}
		}(g)
	}
	wg.Wait()
	if p.Free() != size {
		t.Fatalf("Free = %d after churn, want %d", p.Free(), size)
	}
}

func TestShardedBufferPool(t *testing.T) {
	p := NewShardedPool(2, 4, 32)
	ctx := context.Background()

	// Drain shard 1's seeded list (4 buffers over 2 shards = 2 per list),
	// then recycle one: it must come back from shard 1's own list.
	b, err := p.GetShard(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := p.GetShard(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Write([]byte("x"))
	b.Release()
	b2, err := p.GetShard(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		t.Fatal("shard 1 did not get its own released buffer back")
	}
	if b2.Len() != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", b2.Len())
	}
	if p.LocalHits() < 1 {
		t.Fatalf("LocalHits = %d, want >= 1", p.LocalHits())
	}
	b2.Release()
	bb.Release()

	// GetShard on an UNSHARDED pool must behave like Get — block on
	// exhaustion and wake on Release (the nil-wake regression).
	up := NewPool(1, 8)
	ub, err := up.GetShard(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan struct{})
	go func() {
		b, err := up.GetShard(ctx, 0)
		if err != nil {
			t.Error(err)
		} else {
			b.Release()
		}
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("GetShard returned on an exhausted unsharded pool")
	case <-time.After(20 * time.Millisecond):
	}
	ub.Release()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("unsharded GetShard did not wake on Release")
	}

	// Plain Get keeps working on a sharded pool and can drain everything.
	var bufs []*Buffer
	for i := 0; i < 4; i++ {
		b, err := p.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	// Exhausted: a GetShard must block, then wake on a Release.
	got := make(chan *Buffer, 1)
	go func() {
		b, err := p.GetShard(ctx, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got <- b
	}()
	select {
	case <-got:
		t.Fatal("GetShard returned while pool was exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	bufs[0].Release()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("GetShard did not unblock after Release")
	}
	for _, b := range bufs[1:] {
		b.Release()
	}
}
