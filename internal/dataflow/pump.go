package dataflow

import (
	"context"
	"sync"
)

// This file schedules pumps: the stage-driving loops of a pumped pipeline.
// A pump spends most of its life blocked — on a bounded edge at depth, on an
// empty upstream edge, on an exhausted buffer pool — so pumps are dedicated
// goroutines, not executor tasks: parking a blocked pump on one of the
// executor's fixed worker shards would starve the fine-grain subchunk tasks
// the stages themselves submit (with #pumps ≥ #workers the graph deadlocks
// outright). The Go scheduler parks blocked pumps for free; the sharded
// executor keeps doing what it is good at — running short CPU-bound tasks.

// Pump identifies one stage-driving goroutine. Home is the executor shard
// the pump's fine-grain submissions should prefer (from Executor.NextShard),
// so concurrent stages spread across shards instead of contending for one.
type Pump struct {
	// Name labels the pump in reports ("align", "sort", ...).
	Name string
	// Home is the pump's preferred executor shard.
	Home int
}

// Pumps runs a set of pumps over one shared derived context. The first pump
// failure cancels the context so every sibling unwinds; Wait blocks until
// all pumps have exited and returns that first failure. The zero value is
// not usable — construct with NewPumps.
type Pumps struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPumps prepares a pump set under a parent context: cancelling the parent
// cancels every pump.
func NewPumps(parent context.Context) *Pumps {
	ctx, cancel := context.WithCancel(parent)
	return &Pumps{ctx: ctx, cancel: cancel}
}

// Context returns the shared pump context. Edge watchers hang off it so
// condition-variable waits (which cannot select on a context) still unwind
// on cancellation.
func (p *Pumps) Context() context.Context { return p.ctx }

// Go starts one pump. fn receives the shared context; returning a non-nil
// error records it (first failure wins) and cancels the siblings. Clean
// EOF-driven exits return nil.
func (p *Pumps) Go(pump Pump, fn func(ctx context.Context) error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := fn(p.ctx); err != nil {
			p.fail(err)
		}
	}()
}

// Fail injects a failure from outside the pump set — e.g. the sink loop,
// which runs on the caller's goroutine but participates in the same
// first-error teardown.
func (p *Pumps) Fail(err error) {
	if err != nil {
		p.fail(err)
	}
}

func (p *Pumps) fail(err error) {
	p.mu.Lock()
	// First failure wins, except that a real error displaces a bare
	// cancellation: when teardown races, the pump that saw ctx.Err() may
	// report before the pump holding the root cause.
	if p.err == nil || (isCtxErr(p.err) && !isCtxErr(err)) {
		p.err = err
	}
	p.mu.Unlock()
	p.cancel()
}

func isCtxErr(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// Wait blocks until every pump has exited, cancels the shared context (so a
// clean run releases its watcher resources) and returns the first recorded
// failure, nil for a clean run.
func (p *Pumps) Wait() error {
	p.wg.Wait()
	p.cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
