package dataflow

import (
	"fmt"
	"sync"
)

// Resources is the session-scoped container for shared objects: buffer
// pools, chunk object pools, and large read-only state such as the
// multi-gigabyte reference indexes required by the aligners (§4.1, §4.5).
// Nodes receive handles (names) and look the objects up here, mirroring the
// paper's use of TensorFlow resource handles instead of tensors.
type Resources struct {
	mu sync.RWMutex
	m  map[string]any
}

// NewResources returns an empty resource container.
func NewResources() *Resources {
	return &Resources{m: make(map[string]any)}
}

// Register stores value under name. Registering a name twice is an error:
// shared resources are created once at graph-construction time.
func (r *Resources) Register(name string, value any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.m[name]; exists {
		return fmt.Errorf("dataflow: resource %q already registered", name)
	}
	r.m[name] = value
	return nil
}

// MustRegister is Register but panics on duplicate names; intended for
// graph-construction code where a duplicate is a programming error.
func (r *Resources) MustRegister(name string, value any) {
	if err := r.Register(name, value); err != nil {
		panic(err)
	}
}

// Lookup returns the resource registered under name.
func (r *Resources) Lookup(name string) (any, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.m[name]
	return v, ok
}

// Names returns the registered resource names (unordered).
func (r *Resources) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	return names
}

// LookupAs fetches a resource and type-asserts it in one step, returning a
// descriptive error when the name is missing or the type does not match.
func LookupAs[T any](r *Resources, name string) (T, error) {
	var zero T
	v, ok := r.Lookup(name)
	if !ok {
		return zero, fmt.Errorf("dataflow: resource %q not registered", name)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("dataflow: resource %q has type %T, not %T", name, v, zero)
	}
	return t, nil
}
