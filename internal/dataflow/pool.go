package dataflow

import (
	"context"
	"sync/atomic"
)

// Buffer is a recyclable byte buffer. Persona avoids TensorFlow-style string
// tensors (which copy on every hop) by carrying bulk data in pooled buffers
// and passing only handles through queues (§4.5, §4.6).
type Buffer struct {
	data []byte
	pool *Pool
	// home is the shard whose free list this buffer was last checked out
	// for (sharded pools only); Release routes it back there.
	home int
}

// Bytes returns the current contents of the buffer.
func (b *Buffer) Bytes() []byte { return b.data }

// Len returns the number of bytes currently stored.
func (b *Buffer) Len() int { return len(b.data) }

// Reset truncates the buffer to length zero, retaining capacity.
func (b *Buffer) Reset() { b.data = b.data[:0] }

// Grow ensures capacity for at least n additional bytes.
func (b *Buffer) Grow(n int) {
	if cap(b.data)-len(b.data) >= n {
		return
	}
	grown := make([]byte, len(b.data), len(b.data)+n)
	copy(grown, b.data)
	b.data = grown
}

// Write appends p, growing as needed. It implements io.Writer and never
// returns an error.
func (b *Buffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// WriteByte appends a single byte. It implements io.ByteWriter.
func (b *Buffer) WriteByte(c byte) error {
	b.data = append(b.data, c)
	return nil
}

// SetLen resizes the buffer to n bytes, growing (zero-filled) as needed.
// Useful for readers that fill the underlying slice directly.
func (b *Buffer) SetLen(n int) {
	if n <= cap(b.data) {
		b.data = b.data[:n]
		return
	}
	grown := make([]byte, n)
	copy(grown, b.data)
	b.data = grown
}

// Release returns the buffer to its pool. The caller must not use the buffer
// afterwards. Releasing a pool-less buffer is a no-op.
func (b *Buffer) Release() {
	if b.pool != nil {
		b.pool.Put(b)
	}
}

// Pool is a bounded pool of recyclable buffers: the zero-copy architecture
// of §4.5. Bounding the pool (together with queue capacities) caps total
// memory use: once every buffer is checked out, Get blocks until a
// downstream node releases one, which is exactly the back-pressure that
// keeps the input subgraph from running unboundedly ahead of the aligners.
type Pool struct {
	free chan *Buffer
	size int

	// sharded, when non-nil (NewShardedPool), holds the buffers instead of
	// free: per-shard hot lists with the ShardedItemPool steal/wake
	// protocol, so the subtle blocking logic exists exactly once.
	sharded *ShardedItemPool[*Buffer]

	allocated atomic.Int64 // buffers ever created
	recycled  atomic.Int64 // unsharded Put calls that returned a buffer
}

// NewPool creates a pool holding at most size buffers, each initially with
// the given byte capacity. All buffers are pre-allocated so steady-state
// operation performs no allocation.
func NewPool(size, bufCap int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{free: make(chan *Buffer, size), size: size}
	for i := 0; i < size; i++ {
		p.free <- &Buffer{data: make([]byte, 0, bufCap), pool: p}
		p.allocated.Add(1)
	}
	return p
}

// NewShardedPool is NewPool with per-shard free lists: buffers checked out
// via GetShard come back (through Release/Put) to the same shard's list, so
// a shard's working set of buffers stays in its core's cache. Get/Put keep
// working (with no shard preference). The buffers live in a
// ShardedItemPool, which owns the steal/wake protocol.
func NewShardedPool(shards, size, bufCap int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size}
	p.sharded = NewShardedItemPool(shards, size,
		func() *Buffer {
			p.allocated.Add(1)
			return &Buffer{data: make([]byte, 0, bufCap), pool: p}
		},
		func(b *Buffer) *Buffer { b.Reset(); return b },
	)
	return p
}

// Size returns the pool's bound.
func (p *Pool) Size() int { return p.size }

// Shards returns the number of per-shard free lists (1 on an unsharded
// pool).
func (p *Pool) Shards() int {
	if p.sharded == nil {
		return 1
	}
	return p.sharded.Shards()
}

// Get obtains a buffer, blocking until one is free or ctx is cancelled.
// The returned buffer has length zero.
func (p *Pool) Get(ctx context.Context) (*Buffer, error) {
	if p.sharded != nil {
		return p.GetShard(ctx, 0)
	}
	select {
	case b := <-p.free:
		b.Reset()
		return b, nil
	case <-ctx.Done():
		return nil, ErrStopped
	}
}

// GetShard obtains a buffer with shard affinity: the shard's own free list
// is tried first, then the shared list, then the other shards'. The buffer
// remembers the shard, so Release returns it to the same list. On an
// unsharded pool it is plain Get.
func (p *Pool) GetShard(ctx context.Context, shard int) (*Buffer, error) {
	if p.sharded == nil {
		return p.Get(ctx)
	}
	b, err := p.sharded.Get(ctx, shard)
	if err != nil {
		return nil, err
	}
	b.Reset()
	b.home = shard
	return b, nil
}

// TryGet obtains a buffer without blocking.
func (p *Pool) TryGet() (*Buffer, bool) {
	if p.sharded != nil {
		b, ok := p.sharded.TryGet(0)
		if ok {
			b.Reset()
			b.home = 0
		}
		return b, ok
	}
	select {
	case b := <-p.free:
		b.Reset()
		return b, true
	default:
		return nil, false
	}
}

// Put returns a buffer to the pool — on a sharded pool, to the free list of
// the shard it was checked out for. Buffers from other pools or surplus
// buffers are dropped for the garbage collector (leaky-bucket semantics).
func (p *Pool) Put(b *Buffer) {
	if b == nil || b.pool != p {
		return
	}
	if p.sharded != nil {
		p.sharded.Put(b.home, b)
		return
	}
	select {
	case p.free <- b:
		p.recycled.Add(1)
	default:
		// Pool full: drop. Cannot happen when buffers only come from this
		// pool, but harmless if it does.
	}
}

// Free returns the number of buffers currently available.
func (p *Pool) Free() int {
	if p.sharded != nil {
		return p.sharded.Free()
	}
	return len(p.free)
}

// LocalHits reports how many GetShard calls were served by the caller's own
// shard list — the affinity hit rate (0 on an unsharded pool).
func (p *Pool) LocalHits() int64 {
	if p.sharded == nil {
		return 0
	}
	return p.sharded.LocalHits()
}

// Stats reports total buffers allocated and total successful recycles.
func (p *Pool) Stats() (allocated, recycled int64) {
	if p.sharded != nil {
		return p.allocated.Load(), p.sharded.Recycled()
	}
	return p.allocated.Load(), p.recycled.Load()
}

// ItemPool is Pool generalized to arbitrary recyclable items: parsed chunk
// objects, result arenas — anything the steady-state pipeline would
// otherwise allocate per hop. Like Pool it is bounded and pre-allocated, so
// Get blocks when every item is checked out, giving the same back-pressure
// that keeps the input subgraph from running ahead of compute (§4.5).
type ItemPool[T any] struct {
	free  chan T
	size  int
	reset func(T) T

	recycled atomic.Int64
}

// NewItemPool creates a pool of size items built by newItem. reset is
// applied on Put to scrub an item for reuse (it may return a different
// value, e.g. a truncated slice); nil means items are reused as-is.
func NewItemPool[T any](size int, newItem func() T, reset func(T) T) *ItemPool[T] {
	if size < 1 {
		size = 1
	}
	p := &ItemPool[T]{free: make(chan T, size), size: size, reset: reset}
	for i := 0; i < size; i++ {
		p.free <- newItem()
	}
	return p
}

// Size returns the pool's bound.
func (p *ItemPool[T]) Size() int { return p.size }

// Free returns the number of items currently available.
func (p *ItemPool[T]) Free() int { return len(p.free) }

// Recycled reports how many Put calls returned an item to the pool.
func (p *ItemPool[T]) Recycled() int64 { return p.recycled.Load() }

// Get obtains an item, blocking until one is free or ctx is cancelled.
func (p *ItemPool[T]) Get(ctx context.Context) (T, error) {
	select {
	case v := <-p.free:
		return v, nil
	case <-ctx.Done():
		var zero T
		return zero, ErrStopped
	}
}

// TryGet obtains an item without blocking.
func (p *ItemPool[T]) TryGet() (T, bool) {
	select {
	case v := <-p.free:
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Put returns an item to the pool after applying reset. Surplus items (more
// Puts than Gets) are dropped for the garbage collector.
func (p *ItemPool[T]) Put(v T) {
	if p.reset != nil {
		v = p.reset(v)
	}
	select {
	case p.free <- v:
		p.recycled.Add(1)
	default:
	}
}
