package dataflow

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// NodeFunc is the body of a dataflow node replica. It should loop reading
// from its input queues until Get reports closed-and-drained, then return.
// Returning a non-nil error aborts the whole session.
type NodeFunc func(ctx context.Context, nc *NodeContext) error

// NodeContext gives a running node access to its session environment.
type NodeContext struct {
	// Name is the node's name; Replica identifies which of the node's
	// parallel instances this is (0-based).
	Name    string
	Replica int

	// Resources is the session's shared resource container.
	Resources *Resources

	graph *Graph
	stats *NodeStats
}

// Input returns the named queue, for consuming.
func (nc *NodeContext) Input(name string) *Queue { return nc.graph.mustQueue(name) }

// Output returns the named queue, for producing.
func (nc *NodeContext) Output(name string) *Queue { return nc.graph.mustQueue(name) }

// Busy records d as useful work time for utilization accounting.
func (nc *NodeContext) Busy(d time.Duration) { nc.stats.busyNanos.Add(int64(d)) }

// Processed increments the node's processed-message counter by n.
func (nc *NodeContext) Processed(n int64) { nc.stats.processed.Add(n) }

// NodeStats accumulates per-node counters across all replicas.
type NodeStats struct {
	Name      string
	processed atomic.Int64
	busyNanos atomic.Int64
}

// Processed returns the number of messages the node reported processing.
func (s *NodeStats) Processed() int64 { return s.processed.Load() }

// Busy returns cumulative useful-work time reported by the node.
func (s *NodeStats) Busy() time.Duration { return time.Duration(s.busyNanos.Load()) }

type node struct {
	name        string
	parallelism int
	fn          NodeFunc
	inputs      []string
	outputs     []string
	stats       *NodeStats
}

// Graph is a static description of a Persona computation: nodes joined by
// named queues. Queues record their producer nodes so the session can close
// each queue exactly when its last producer finishes, propagating
// end-of-stream through the pipeline without sentinel messages.
type Graph struct {
	mu     sync.Mutex
	nodes  []*node
	queues map[string]*Queue
	// producers counts, per queue, the number of node replicas that write to
	// it; the session decrements these as replicas exit.
	producers map[string]*atomic.Int64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		queues:    make(map[string]*Queue),
		producers: make(map[string]*atomic.Int64),
	}
}

// AddQueue creates a named bounded queue. Adding a duplicate name is an
// error.
func (g *Graph) AddQueue(name string, capacity int) (*Queue, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.queues[name]; exists {
		return nil, fmt.Errorf("dataflow: queue %q already exists", name)
	}
	q := NewQueue(name, capacity)
	g.queues[name] = q
	g.producers[name] = &atomic.Int64{}
	return q, nil
}

// MustAddQueue is AddQueue but panics on error; for graph-construction code.
func (g *Graph) MustAddQueue(name string, capacity int) *Queue {
	q, err := g.AddQueue(name, capacity)
	if err != nil {
		panic(err)
	}
	return q
}

// NodeSpec describes a node to add to a graph.
type NodeSpec struct {
	// Name identifies the node in stats and errors.
	Name string
	// Parallelism is the number of replicas to run (default 1).
	Parallelism int
	// Inputs and Outputs name the queues the node consumes and produces.
	// All must have been added with AddQueue. Output queues are closed
	// automatically once every producer replica has returned.
	Inputs  []string
	Outputs []string
	// Fn is the node body.
	Fn NodeFunc
}

// AddNode registers a node. Queue names must already exist.
func (g *Graph) AddNode(spec NodeSpec) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if spec.Fn == nil {
		return fmt.Errorf("dataflow: node %q has nil Fn", spec.Name)
	}
	if spec.Parallelism < 1 {
		spec.Parallelism = 1
	}
	for _, in := range append(append([]string{}, spec.Inputs...), spec.Outputs...) {
		if _, ok := g.queues[in]; !ok {
			return fmt.Errorf("dataflow: node %q references unknown queue %q", spec.Name, in)
		}
	}
	n := &node{
		name:        spec.Name,
		parallelism: spec.Parallelism,
		fn:          spec.Fn,
		inputs:      append([]string{}, spec.Inputs...),
		outputs:     append([]string{}, spec.Outputs...),
		stats:       &NodeStats{Name: spec.Name},
	}
	g.nodes = append(g.nodes, n)
	for _, out := range n.outputs {
		g.producers[out].Add(int64(n.parallelism))
	}
	return nil
}

// MustAddNode is AddNode but panics on error.
func (g *Graph) MustAddNode(spec NodeSpec) {
	if err := g.AddNode(spec); err != nil {
		panic(err)
	}
}

// Queue returns a queue by name.
func (g *Graph) Queue(name string) (*Queue, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	q, ok := g.queues[name]
	return q, ok
}

func (g *Graph) mustQueue(name string) *Queue {
	q, ok := g.Queue(name)
	if !ok {
		panic(fmt.Sprintf("dataflow: unknown queue %q", name))
	}
	return q
}

// Stats returns per-node statistics, in node-addition order.
func (g *Graph) Stats() []*NodeStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*NodeStats, len(g.nodes))
	for i, n := range g.nodes {
		out[i] = n.stats
	}
	return out
}

// Session executes a graph, in the role of the TensorFlow direct session
// the paper uses unmodified (§5.2).
type Session struct {
	Graph     *Graph
	Resources *Resources
}

// NewSession returns a session for g with a fresh resource container.
func NewSession(g *Graph) *Session {
	return &Session{Graph: g, Resources: NewResources()}
}

// Run starts every node replica, waits for all of them to finish, and
// returns the first error (if any). On error the context handed to nodes is
// cancelled so blocked queue operations unwind. Output queues are closed as
// their last producer replica exits, which cascades end-of-stream through
// the pipeline.
func (s *Session) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	g := s.Graph
	g.mu.Lock()
	nodes := append([]*node{}, g.nodes...)
	g.mu.Unlock()

	var wg sync.WaitGroup
	var firstErr atomic.Value // of error

	for _, n := range nodes {
		for r := 0; r < n.parallelism; r++ {
			wg.Add(1)
			go func(n *node, replica int) {
				defer wg.Done()
				nc := &NodeContext{
					Name:      n.name,
					Replica:   replica,
					Resources: s.Resources,
					graph:     g,
					stats:     n.stats,
				}
				err := func() (err error) {
					defer func() {
						if p := recover(); p != nil {
							err = fmt.Errorf("panic: %v", p)
						}
					}()
					return n.fn(runCtx, nc)
				}()
				if err != nil && err != ErrStopped {
					firstErr.CompareAndSwap(nil, error(&nodeError{node: n.name, err: err}))
					cancel()
				}
				// This replica will produce no more output; close queues
				// whose producers have all exited.
				for _, out := range n.outputs {
					if g.producers[out].Add(-1) == 0 {
						g.mustQueue(out).Close()
					}
				}
			}(n, r)
		}
	}
	wg.Wait()

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}
	return stop(ctx)
}
