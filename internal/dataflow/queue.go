package dataflow

import (
	"context"
	"sync"
	"sync/atomic"
)

// Queue is a bounded FIFO connecting dataflow nodes. Bounding the queue is
// how Persona controls memory pressure (§4.5): the number of AGD chunks in
// flight is the sum of queue capacities plus the number of nodes holding a
// chunk, so shallow queues both cap memory and avoid stragglers caused by
// "expensive" chunks piling up behind one node.
//
// A queue may have multiple producers and multiple consumers. Producers call
// Close (or the Graph closes the queue automatically once every producer
// node has finished); consumers observe drained-and-closed via the ok result
// of Get.
//
// The implementation never closes the data channel: closing is signalled on
// a separate done channel so that a producer blocked in Put can never panic
// by sending on a closed channel.
type Queue struct {
	name string
	ch   chan Message
	done chan struct{}

	closeOnce sync.Once

	puts atomic.Int64
	gets atomic.Int64
}

// NewQueue returns a queue with the given name (used in stats and errors)
// and capacity. Capacity 0 gives a synchronous handoff queue.
func NewQueue(name string, capacity int) *Queue {
	if capacity < 0 {
		capacity = 0
	}
	return &Queue{
		name: name,
		ch:   make(chan Message, capacity),
		done: make(chan struct{}),
	}
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return cap(q.ch) }

// Len returns the number of messages currently buffered.
func (q *Queue) Len() int { return len(q.ch) }

// Put enqueues m, blocking while the queue is full. It returns ErrClosed if
// the queue has been closed and ErrStopped if ctx is cancelled first.
func (q *Queue) Put(ctx context.Context, m Message) error {
	select {
	case <-q.done:
		return ErrClosed
	default:
	}
	select {
	case q.ch <- m:
		q.puts.Add(1)
		return nil
	case <-q.done:
		return ErrClosed
	case <-ctx.Done():
		return ErrStopped
	}
}

// Get dequeues a message, blocking while the queue is empty. ok is false
// when the queue is closed and drained, or when ctx is cancelled.
func (q *Queue) Get(ctx context.Context) (m Message, ok bool) {
	// Prefer buffered data over the closed signal so that messages enqueued
	// before Close are always delivered.
	select {
	case m = <-q.ch:
		q.gets.Add(1)
		return m, true
	default:
	}
	select {
	case m = <-q.ch:
		q.gets.Add(1)
		return m, true
	case <-q.done:
		// Drain anything that raced in before the close signal.
		select {
		case m = <-q.ch:
			q.gets.Add(1)
			return m, true
		default:
			return nil, false
		}
	case <-ctx.Done():
		return nil, false
	}
}

// TryGet dequeues a message without blocking.
func (q *Queue) TryGet() (m Message, ok bool) {
	select {
	case m = <-q.ch:
		q.gets.Add(1)
		return m, true
	default:
		return nil, false
	}
}

// Close marks the queue closed. Buffered messages remain readable; Get
// returns ok=false once drained. Close is idempotent and safe to call
// concurrently with Put and Get.
func (q *Queue) Close() {
	q.closeOnce.Do(func() { close(q.done) })
}

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool {
	select {
	case <-q.done:
		return true
	default:
		return false
	}
}

// Stats reports the total number of puts and gets over the queue's lifetime.
func (q *Queue) Stats() (puts, gets int64) {
	return q.puts.Load(), q.gets.Load()
}
