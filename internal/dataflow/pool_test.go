package dataflow

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestPoolRecycles(t *testing.T) {
	p := NewPool(2, 16)
	ctx := context.Background()

	b1, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Free() != 0 {
		t.Fatalf("Free = %d, want 0", p.Free())
	}
	b1.Write([]byte("hello"))
	b1.Release()
	b3, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if b3 != b1 {
		t.Fatal("pool did not recycle the released buffer")
	}
	if b3.Len() != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", b3.Len())
	}
	b2.Release()
	b3.Release()

	alloc, recycled := p.Stats()
	if alloc != 2 {
		t.Fatalf("allocated = %d, want 2", alloc)
	}
	if recycled != 3 {
		t.Fatalf("recycled = %d, want 3", recycled)
	}
}

func TestPoolBlocksWhenExhausted(t *testing.T) {
	p := NewPool(1, 4)
	ctx := context.Background()
	b, err := p.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan *Buffer, 1)
	go func() {
		b2, err := p.Get(ctx)
		if err != nil {
			t.Error(err)
		}
		got <- b2
	}()

	select {
	case <-got:
		t.Fatal("Get returned while pool was exhausted")
	case <-time.After(20 * time.Millisecond):
	}

	b.Release()
	select {
	case b2 := <-got:
		if b2 != b {
			t.Fatal("expected the released buffer")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get did not unblock after Release")
	}
}

func TestPoolGetCancels(t *testing.T) {
	p := NewPool(1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	b, _ := p.Get(ctx)
	defer b.Release()
	cancel()
	if _, err := p.Get(ctx); err == nil {
		t.Fatal("Get on cancelled context succeeded")
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	p := NewPool(4, 8)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b, err := p.Get(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				b.Write([]byte{1, 2, 3})
				b.Release()
			}
		}()
	}
	wg.Wait()
	if p.Free() != 4 {
		t.Fatalf("Free = %d after churn, want 4", p.Free())
	}
	alloc, _ := p.Stats()
	if alloc != 4 {
		t.Fatalf("allocated = %d, want 4 (no growth under churn)", alloc)
	}
}

func TestBufferGrowAndSetLen(t *testing.T) {
	var b Buffer
	b.Grow(10)
	if cap(b.Bytes()) < 10 {
		t.Fatalf("cap = %d after Grow(10)", cap(b.Bytes()))
	}
	b.Write([]byte("abc"))
	b.SetLen(6)
	if b.Len() != 6 {
		t.Fatalf("Len = %d, want 6", b.Len())
	}
	if got := string(b.Bytes()[:3]); got != "abc" {
		t.Fatalf("prefix = %q, want abc", got)
	}
	b.SetLen(2)
	if string(b.Bytes()) != "ab" {
		t.Fatalf("shrunk = %q, want ab", string(b.Bytes()))
	}
	// Release without a pool must not panic.
	b.Release()
}
