package dataflow

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("q", 8)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 0; i < 8; i++ {
		m, ok := q.Get(ctx)
		if !ok {
			t.Fatalf("Get %d: closed early", i)
		}
		if m.(int) != i {
			t.Fatalf("Get %d: got %v, want %d", i, m, i)
		}
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue("q", 4)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Put(ctx, 99); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: got %v, want ErrClosed", err)
	}
	for i := 0; i < 3; i++ {
		m, ok := q.Get(ctx)
		if !ok || m.(int) != i {
			t.Fatalf("Get %d after Close: got %v, %v", i, m, ok)
		}
	}
	if _, ok := q.Get(ctx); ok {
		t.Fatal("Get on drained closed queue reported ok")
	}
}

func TestQueueBlockingPutUnblocksOnClose(t *testing.T) {
	q := NewQueue("q", 1)
	ctx := context.Background()
	if err := q.Put(ctx, 1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- q.Put(ctx, 2) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Put after Close: got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Put did not unblock on Close")
	}
}

func TestQueueContextCancel(t *testing.T) {
	q := NewQueue("q", 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := q.Get(ctx); ok {
			t.Error("Get returned ok after cancel")
		}
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Get did not unblock on context cancel")
	}
	if err := q.Put(ctx, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("Put on cancelled ctx: got %v, want ErrStopped", err)
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer, consumers = 8, 500, 4
	q := NewQueue("q", 16)
	ctx := context.Background()

	var wgP sync.WaitGroup
	for p := 0; p < producers; p++ {
		wgP.Add(1)
		go func(p int) {
			defer wgP.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(ctx, p*perProducer+i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]bool)
	var wgC sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wgC.Add(1)
		go func() {
			defer wgC.Done()
			for {
				m, ok := q.Get(ctx)
				if !ok {
					return
				}
				mu.Lock()
				if seen[m.(int)] {
					t.Errorf("duplicate message %v", m)
				}
				seen[m.(int)] = true
				mu.Unlock()
			}
		}()
	}

	wgP.Wait()
	q.Close()
	wgC.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("received %d messages, want %d", len(seen), producers*perProducer)
	}
}

func TestQueuePreservesArbitraryValues(t *testing.T) {
	// Property: any slice of ints round-trips through a queue in order.
	f := func(values []int) bool {
		q := NewQueue("q", len(values)+1)
		ctx := context.Background()
		for _, v := range values {
			if err := q.Put(ctx, v); err != nil {
				return false
			}
		}
		q.Close()
		for _, want := range values {
			m, ok := q.Get(ctx)
			if !ok || m.(int) != want {
				return false
			}
		}
		_, ok := q.Get(ctx)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue("q", 4)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	q.Get(ctx)
	puts, gets := q.Stats()
	if puts != 3 || gets != 1 {
		t.Fatalf("Stats = (%d, %d), want (3, 1)", puts, gets)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
}
