package dataflow

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
)

// buildLinear builds source -> worker(xN) -> sink over two queues and
// returns the collected sink output.
func runLinear(t *testing.T, items, workers int) []int {
	t.Helper()
	g := NewGraph()
	g.MustAddQueue("in", 4)
	g.MustAddQueue("out", 4)

	g.MustAddNode(NodeSpec{
		Name:    "source",
		Outputs: []string{"in"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			q := nc.Output("in")
			for i := 0; i < items; i++ {
				if err := q.Put(ctx, i); err != nil {
					return err
				}
			}
			return nil
		},
	})
	g.MustAddNode(NodeSpec{
		Name:        "double",
		Parallelism: workers,
		Inputs:      []string{"in"},
		Outputs:     []string{"out"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			in, out := nc.Input("in"), nc.Output("out")
			for {
				m, ok := in.Get(ctx)
				if !ok {
					return nil
				}
				nc.Processed(1)
				if err := out.Put(ctx, m.(int)*2); err != nil {
					return err
				}
			}
		},
	})

	var mu sync.Mutex
	var got []int
	g.MustAddNode(NodeSpec{
		Name:   "sink",
		Inputs: []string{"out"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			q := nc.Input("out")
			for {
				m, ok := q.Get(ctx)
				if !ok {
					return nil
				}
				mu.Lock()
				got = append(got, m.(int))
				mu.Unlock()
			}
		},
	})

	if err := NewSession(g).Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sort.Ints(got)
	return got
}

func TestGraphLinearPipeline(t *testing.T) {
	got := runLinear(t, 50, 1)
	if len(got) != 50 {
		t.Fatalf("sink received %d items, want 50", len(got))
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestGraphParallelWorkersCloseOnce(t *testing.T) {
	// With parallel replicas producing into one queue, the queue must close
	// only after the LAST replica exits, and all items must arrive.
	got := runLinear(t, 200, 8)
	if len(got) != 200 {
		t.Fatalf("sink received %d items, want 200", len(got))
	}
}

func TestGraphErrorPropagation(t *testing.T) {
	g := NewGraph()
	g.MustAddQueue("q", 1)
	boom := errors.New("boom")

	g.MustAddNode(NodeSpec{
		Name:    "bad",
		Outputs: []string{"q"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			return boom
		},
	})
	g.MustAddNode(NodeSpec{
		Name:   "stuck",
		Inputs: []string{"q"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			// Would block forever if cancellation did not propagate.
			for {
				if _, ok := nc.Input("q").Get(ctx); !ok {
					return nil
				}
			}
		},
	})

	err := NewSession(g).Run(context.Background())
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("error %q does not identify the failing node", err)
	}
}

func TestGraphPanicBecomesError(t *testing.T) {
	g := NewGraph()
	g.MustAddNode(NodeSpec{
		Name: "panicky",
		Fn: func(ctx context.Context, nc *NodeContext) error {
			panic("kaboom")
		},
	})
	err := NewSession(g).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run = %v, want panic converted to error", err)
	}
}

func TestGraphDiamondTopology(t *testing.T) {
	// source fans out to two stages that both feed one sink queue.
	g := NewGraph()
	g.MustAddQueue("src", 4)
	g.MustAddQueue("sink", 4)

	g.MustAddNode(NodeSpec{
		Name:    "source",
		Outputs: []string{"src"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			for i := 1; i <= 20; i++ {
				if err := nc.Output("src").Put(ctx, i); err != nil {
					return err
				}
			}
			return nil
		},
	})
	for _, mult := range []int{10, 100} {
		mult := mult
		g.MustAddNode(NodeSpec{
			Name:    "stage",
			Inputs:  []string{"src"},
			Outputs: []string{"sink"},
			Fn: func(ctx context.Context, nc *NodeContext) error {
				for {
					m, ok := nc.Input("src").Get(ctx)
					if !ok {
						return nil
					}
					if err := nc.Output("sink").Put(ctx, m.(int)*mult); err != nil {
						return err
					}
				}
			},
		})
	}

	sum := 0
	g.MustAddNode(NodeSpec{
		Name:   "sum",
		Inputs: []string{"sink"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			for {
				m, ok := nc.Input("sink").Get(ctx)
				if !ok {
					return nil
				}
				sum += m.(int)
			}
		},
	})

	if err := NewSession(g).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every item goes through exactly one stage; total is sum(i)*10 or *100
	// per item, so bounds are 210*10 and 210*100; exact value depends on the
	// racy split, but the item count discipline means sum % 10 == 0 and
	// sum >= 2100 and sum <= 21000.
	if sum < 2100 || sum > 21000 || sum%10 != 0 {
		t.Fatalf("diamond sum = %d out of expected range", sum)
	}
}

func TestGraphDuplicateQueue(t *testing.T) {
	g := NewGraph()
	g.MustAddQueue("q", 1)
	if _, err := g.AddQueue("q", 1); err == nil {
		t.Fatal("duplicate AddQueue succeeded")
	}
}

func TestGraphUnknownQueueRejected(t *testing.T) {
	g := NewGraph()
	err := g.AddNode(NodeSpec{
		Name:   "n",
		Inputs: []string{"nope"},
		Fn:     func(ctx context.Context, nc *NodeContext) error { return nil },
	})
	if err == nil {
		t.Fatal("AddNode with unknown queue succeeded")
	}
}

func TestGraphNodeStats(t *testing.T) {
	runLinear(t, 10, 2)
	// Stats are attached to a fresh graph inside runLinear; build a small
	// graph here instead to check the counters.
	g := NewGraph()
	g.MustAddQueue("q", 2)
	g.MustAddNode(NodeSpec{
		Name:    "src",
		Outputs: []string{"q"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			for i := 0; i < 5; i++ {
				if err := nc.Output("q").Put(ctx, i); err != nil {
					return err
				}
				nc.Processed(1)
			}
			return nil
		},
	})
	g.MustAddNode(NodeSpec{
		Name:   "snk",
		Inputs: []string{"q"},
		Fn: func(ctx context.Context, nc *NodeContext) error {
			for {
				if _, ok := nc.Input("q").Get(ctx); !ok {
					return nil
				}
			}
		},
	})
	if err := NewSession(g).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := g.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats len = %d, want 2", len(stats))
	}
	if stats[0].Processed() != 5 {
		t.Fatalf("src processed = %d, want 5", stats[0].Processed())
	}
}

func TestResources(t *testing.T) {
	r := NewResources()
	if err := r.Register("x", 42); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", 43); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	v, err := LookupAs[int](r, "x")
	if err != nil || v != 42 {
		t.Fatalf("LookupAs = %v, %v", v, err)
	}
	if _, err := LookupAs[string](r, "x"); err == nil {
		t.Fatal("LookupAs with wrong type succeeded")
	}
	if _, err := LookupAs[int](r, "missing"); err == nil {
		t.Fatal("LookupAs on missing name succeeded")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("Names = %v", names)
	}
}
