package dataflow

import (
	"context"
	"sync"
	"sync/atomic"
)

// Task is a unit of fine-grain work submitted to an Executor, typically the
// alignment of one subchunk of reads into a designated region of an output
// buffer.
type Task func()

// Executor owns a fixed set of worker goroutines and a fine-grain task
// queue. It implements the mechanism of Fig. 4: AGD chunks are too coarse
// for per-thread work items (they cause stragglers), so multiple parallel
// aligner nodes split each chunk into subchunks and feed (subchunk, buffer)
// tasks to a single shared executor, keeping every core continuously busy
// with meaningful work regardless of which chunk the work belongs to.
type Executor struct {
	tasks   chan Task
	workers int

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	busyNanos atomic.Int64
	clock     func() int64 // monotonic-ish nanosecond clock, swappable for tests
}

// NewExecutor starts an executor with the given number of worker goroutines
// and task queue depth. Workers run until Close is called.
func NewExecutor(workers, queueDepth int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = workers
	}
	e := &Executor{
		tasks:   make(chan Task, queueDepth),
		workers: workers,
		done:    make(chan struct{}),
		clock:   nanotime,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		select {
		case task := <-e.tasks:
			e.run(task)
		case <-e.done:
			// Drain already-queued tasks, then exit.
			for {
				select {
				case task := <-e.tasks:
					e.run(task)
				default:
					return
				}
			}
		}
	}
}

func (e *Executor) run(task Task) {
	start := e.clock()
	task()
	e.busyNanos.Add(e.clock() - start)
	e.completed.Add(1)
}

// Workers returns the number of worker goroutines.
func (e *Executor) Workers() int { return e.workers }

// Submit enqueues a task, blocking while the queue is full. It returns
// ErrClosed after Close and ErrStopped if ctx is cancelled first.
func (e *Executor) Submit(ctx context.Context, t Task) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	select {
	case e.tasks <- t:
		e.submitted.Add(1)
		return nil
	case <-e.done:
		return ErrClosed
	case <-ctx.Done():
		return ErrStopped
	}
}

// SubmitWait splits work into n tasks produced by gen and blocks until all
// of them have completed (the "originating aligner node is notified" step of
// Fig. 4). gen is called with subchunk indices 0..n-1.
func (e *Executor) SubmitWait(ctx context.Context, n int, gen func(i int) Task) error {
	if n <= 0 {
		return nil
	}
	c := NewCompletion(n)
	for i := 0; i < n; i++ {
		task := gen(i)
		if err := e.Submit(ctx, func() {
			defer c.Done()
			task()
		}); err != nil {
			// Account for tasks never submitted so Wait can still return.
			for j := i; j < n; j++ {
				c.Done()
			}
			return err
		}
	}
	return c.Wait(ctx)
}

// Close shuts the executor down after draining already-queued tasks, and
// waits for the workers to exit. Close is idempotent. The task channel is
// never closed, so a Submit racing Close fails with ErrClosed instead of
// panicking.
func (e *Executor) Close() {
	e.closeOnce.Do(func() { close(e.done) })
	e.wg.Wait()
}

// Stats reports tasks submitted, tasks completed, and cumulative busy
// nanoseconds across all workers (used for utilization accounting).
func (e *Executor) Stats() (submitted, completed, busyNanos int64) {
	return e.submitted.Load(), e.completed.Load(), e.busyNanos.Load()
}

// Completion is a countdown latch used to signal that all subchunks of a
// chunk have been processed.
type Completion struct {
	remaining atomic.Int64
	done      chan struct{}
}

// NewCompletion returns a latch that fires after n calls to Done.
func NewCompletion(n int) *Completion {
	c := &Completion{done: make(chan struct{})}
	c.remaining.Store(int64(n))
	if n <= 0 {
		close(c.done)
	}
	return c
}

// Done records one completed unit; the final call releases waiters.
func (c *Completion) Done() {
	if c.remaining.Add(-1) == 0 {
		close(c.done)
	}
}

// Wait blocks until the latch fires or ctx is cancelled.
func (c *Completion) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ErrStopped
	}
}
