package dataflow

import (
	"context"
	"sync"
	"sync/atomic"
)

// Task is a unit of fine-grain work submitted to an Executor, typically the
// alignment of one subchunk of reads into a designated region of an output
// buffer.
type Task func()

// ShardTask is a Task that is told which shard's worker ran it, so the task
// can check pooled resources out of (and back into) that shard's free lists.
// A stolen task receives the thief's shard, not the shard it was submitted
// to — the point of the handoff is that recycled buffers stay in the cache
// of the core that actually touched them.
type ShardTask func(shard int)

// taskItem is one queued unit: exactly one of fn/sfn is set. done, when
// non-nil, is counted down after the task runs — carrying the latch in the
// item (instead of a wrapper closure) keeps SubmitWait's per-task cost to
// the task closure itself.
type taskItem struct {
	fn   Task
	sfn  ShardTask
	done *Completion
}

// Executor owns a fixed set of worker goroutines, one per shard, each with a
// bounded local deque. It implements the mechanism of Fig. 4 — AGD chunks
// are too coarse for per-thread work items, so nodes split chunks into
// subchunks and feed fine-grain tasks to one shared executor — extended with
// the NUMA-style sharding the ROADMAP asks for: tasks submitted to a shard
// run LIFO on that shard's worker (the just-decoded chunk is still hot in
// its cache), and a worker whose deque runs dry steals FIFO from a random
// victim, so no core idles while any shard has queued work.
type Executor struct {
	shards []*shard

	// stealWake invites parked workers to scan for stealable work. It is
	// buffered to len(shards) tokens: a push that finds the owner already
	// notified adds a token here, and a parked worker consuming any token
	// re-scans every shard before parking again, so queued work is never
	// stranded.
	stealWake chan struct{}
	// spaceWake wakes submitters blocked on full deques; every pop that
	// frees a slot adds a token.
	spaceWake chan struct{}

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
	// closeMu orders pushes against Close: a push that succeeds under the
	// read lock is in a deque before Close (write lock) fires done, so the
	// workers' final drain sweeps always see it — no task can be stranded
	// (and no Completion latch hung) by a Submit racing Close.
	closeMu sync.RWMutex
	closed  bool

	rr     atomic.Uint32 // round-robin cursor for affinity-free Submit
	pumpRR atomic.Uint32 // round-robin cursor for pump home shards (NextShard)
	clock  func() int64  // monotonic-ish nanosecond clock, swappable for tests
}

// shard is one worker's slice of the executor: a bounded ring-buffer deque
// (local LIFO pop at the tail, FIFO steal at the head) plus its stat
// counters.
type shard struct {
	id int

	mu   sync.Mutex
	ring []taskItem
	head int // index of the oldest queued task
	n    int // queued task count

	// wake is the owner's parking token (capacity 1): a push to this shard
	// sets it so the idle owner runs its own work before any thief sees it.
	wake chan struct{}
	// parked is true while the owner is blocked waiting for work; a push
	// that finds the owner running (not parked) also invites a thief, so a
	// task never waits out the owner's current task while other workers
	// idle.
	parked atomic.Bool

	submitted atomic.Int64 // tasks enqueued to this shard
	completed atomic.Int64 // tasks run by this shard's worker
	busyNanos atomic.Int64 // time this shard's worker spent inside tasks
	steals    atomic.Int64 // tasks this shard's worker stole from others
}

// push enqueues a task; it reports false when the deque is full.
func (s *shard) push(t taskItem) bool {
	s.mu.Lock()
	if s.n == len(s.ring) {
		s.mu.Unlock()
		return false
	}
	s.ring[(s.head+s.n)%len(s.ring)] = t
	s.n++
	s.mu.Unlock()
	s.submitted.Add(1)
	return true
}

// popLocal removes the newest task (LIFO): the task whose chunk data the
// owner most recently touched.
func (s *shard) popLocal() (taskItem, bool) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return taskItem{}, false
	}
	s.n--
	i := (s.head + s.n) % len(s.ring)
	t := s.ring[i]
	s.ring[i] = taskItem{}
	s.mu.Unlock()
	return t, true
}

// popSteal removes the oldest task (FIFO): thieves take the work the owner
// is furthest from touching, which is also the fair draining order.
func (s *shard) popSteal() (taskItem, bool) {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return taskItem{}, false
	}
	t := s.ring[s.head]
	s.ring[s.head] = taskItem{}
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	s.mu.Unlock()
	return t, true
}

// NewExecutor starts an executor with one worker goroutine (and one shard)
// per worker, splitting queueDepth across the shards' local deques. Workers
// run until Close is called.
func NewExecutor(workers, queueDepth int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < workers {
		queueDepth = workers
	}
	perShard := (queueDepth + workers - 1) / workers
	e := &Executor{
		shards:    make([]*shard, workers),
		stealWake: make(chan struct{}, workers),
		spaceWake: make(chan struct{}, workers),
		done:      make(chan struct{}),
		clock:     nanotime,
	}
	for i := range e.shards {
		e.shards[i] = &shard{
			id:   i,
			ring: make([]taskItem, perShard),
			wake: make(chan struct{}, 1),
		}
	}
	e.wg.Add(workers)
	for i := range e.shards {
		go e.worker(e.shards[i])
	}
	return e
}

// notify wakes the shard's owner after a push. A thief is invited too
// unless the owner is parked and freshly tokened — a parked owner will run
// the task itself (preserving idle-shard affinity), but an owner that is
// mid-task must not strand the push while other workers idle. All sends are
// non-blocking: when the steal channel is saturated, enough re-scans are
// already pending to find every queued task.
func (e *Executor) notify(s *shard) {
	ownerTokened := false
	select {
	case s.wake <- struct{}{}:
		ownerTokened = true
	default:
	}
	if ownerTokened && s.parked.Load() {
		return
	}
	select {
	case e.stealWake <- struct{}{}:
	default:
	}
}

// freedSpace wakes one submitter blocked on full deques.
func (e *Executor) freedSpace() {
	select {
	case e.spaceWake <- struct{}{}:
	default:
	}
}

// worker runs the shard's loop: local LIFO work first, then a randomized
// steal sweep, then park until notified. After Close it keeps draining —
// local queue and victims alike — and exits once a full sweep finds nothing.
func (e *Executor) worker(s *shard) {
	defer e.wg.Done()
	// Cheap per-worker xorshift so concurrent thieves don't contend on a
	// shared RNG and don't all start their sweeps at the same victim.
	rng := uint64(s.id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	nextRand := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for {
		t, ok := s.popLocal()
		if ok {
			// This pop services any pending owner wakeup: draining the
			// token here keeps it meaning "owner needs waking", so a push
			// while the owner is actively popping re-arms the token
			// instead of needlessly inviting a thief.
			select {
			case <-s.wake:
			default:
			}
		} else {
			t, ok = e.steal(s, nextRand())
		}
		if ok {
			e.freedSpace()
			e.run(s, t)
			continue
		}
		// Publish parked before blocking: a push that reads it false while
		// the owner is still sweeping is harmless (the sweep finds the
		// task or the owner parks and consumes the push's token).
		s.parked.Store(true)
		select {
		case <-s.wake:
			s.parked.Store(false)
		case <-e.stealWake:
			s.parked.Store(false)
		case <-e.done:
			s.parked.Store(false)
			// Drain: anything pushed before Close is visible to this
			// final sweep (the push happened under the shard mutex).
			for {
				t, ok := s.popLocal()
				if !ok {
					t, ok = e.steal(s, nextRand())
				}
				if !ok {
					return
				}
				e.freedSpace()
				e.run(s, t)
			}
		}
	}
}

// steal scans every other shard starting at a random victim, taking the
// oldest task of the first non-empty deque.
func (e *Executor) steal(thief *shard, seed uint64) (taskItem, bool) {
	n := len(e.shards)
	if n == 1 {
		return taskItem{}, false
	}
	start := int(seed % uint64(n))
	for i := 0; i < n; i++ {
		victim := e.shards[(start+i)%n]
		if victim == thief {
			continue
		}
		if t, ok := victim.popSteal(); ok {
			thief.steals.Add(1)
			return t, true
		}
	}
	return taskItem{}, false
}

// run executes one task on shard s, attributing busy time and completion to
// the shard that actually ran it.
func (e *Executor) run(s *shard, t taskItem) {
	if t.done != nil {
		defer t.done.Done()
	}
	start := e.clock()
	if t.sfn != nil {
		t.sfn(s.id)
	} else {
		t.fn()
	}
	s.busyNanos.Add(e.clock() - start)
	s.completed.Add(1)
}

// Workers returns the number of worker goroutines.
func (e *Executor) Workers() int { return len(e.shards) }

// NumShards returns the number of shards (equal to Workers; each worker owns
// one shard's deque and free-list affinity).
func (e *Executor) NumShards() int { return len(e.shards) }

// NextShard hands out round-robin home shards, one per call: a pipeline
// assigns each pump a home so pump-affine submissions (SubmitSharded with
// the pump's home) spread stage-internal tasks across the shards instead of
// piling every pump's work onto shard 0.
func (e *Executor) NextShard() int {
	return int(e.pumpRR.Add(1)-1) % len(e.shards)
}

// tryPush attempts one push under the close read-lock, so it can never
// land a task in a deque the workers have already finished draining.
func (e *Executor) tryPush(s *shard, t taskItem) (pushed, closed bool) {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return false, true
	}
	pushed = s.push(t)
	e.closeMu.RUnlock()
	if pushed {
		e.notify(s)
	}
	return pushed, false
}

// submitItem places a task, preferring the given shard, spilling to the
// other shards when it is full, and blocking while every deque is full. A
// negative shard means no affinity (round-robin).
func (e *Executor) submitItem(ctx context.Context, preferred int, t taskItem) error {
	n := len(e.shards)
	if preferred < 0 {
		preferred = int(e.rr.Add(1)-1) % n
	} else {
		preferred %= n
	}
	for {
		for i := 0; i < n; i++ {
			pushed, closed := e.tryPush(e.shards[(preferred+i)%n], t)
			if closed {
				return ErrClosed
			}
			if pushed {
				return nil
			}
		}
		select {
		case <-e.spaceWake:
		case <-e.done:
			return ErrClosed
		case <-ctx.Done():
			return ErrStopped
		}
	}
}

// Submit enqueues a task on a round-robin shard, blocking while every deque
// is full. It returns ErrClosed after Close and ErrStopped if ctx is
// cancelled first.
func (e *Executor) Submit(ctx context.Context, t Task) error {
	return e.submitItem(ctx, -1, taskItem{fn: t})
}

// SubmitTo enqueues a task with shard affinity: it lands on the given
// shard's deque (modulo the shard count) so the shard's worker pops it LIFO
// while the data it touches is still cache-hot. Affinity is advisory — a
// full deque spills to a neighbor and idle workers may steal — so SubmitTo
// never trades deadlock for locality.
func (e *Executor) SubmitTo(ctx context.Context, shard int, t Task) error {
	return e.submitItem(ctx, shard, taskItem{fn: t})
}

// SubmitSharded is SubmitTo for tasks that want to know which shard's worker
// ran them (e.g. to recycle pooled buffers into that shard's free list).
func (e *Executor) SubmitSharded(ctx context.Context, shard int, t ShardTask) error {
	return e.submitItem(ctx, shard, taskItem{sfn: t})
}

// SubmitWait splits work into n tasks produced by gen and blocks until all
// of them have completed (the "originating aligner node is notified" step of
// Fig. 4). gen is called with subchunk indices 0..n-1.
func (e *Executor) SubmitWait(ctx context.Context, n int, gen func(i int) Task) error {
	if n <= 0 {
		return nil
	}
	c := NewCompletion(n)
	for i := 0; i < n; i++ {
		if err := e.submitItem(ctx, -1, taskItem{fn: gen(i), done: c}); err != nil {
			// Account for tasks never submitted so Wait can still return.
			for j := i; j < n; j++ {
				c.Done()
			}
			return err
		}
	}
	return c.Wait(ctx)
}

// SubmitWaitTo is SubmitWait with shard affinity: all n tasks are enqueued
// on the given shard, so the shard's owner runs them cache-hot while idle
// shards steal the tail of the batch. Each task receives the shard that
// actually ran it.
func (e *Executor) SubmitWaitTo(ctx context.Context, shard, n int, gen func(i int) ShardTask) error {
	if n <= 0 {
		return nil
	}
	c := NewCompletion(n)
	for i := 0; i < n; i++ {
		if err := e.submitItem(ctx, shard, taskItem{sfn: gen(i), done: c}); err != nil {
			for j := i; j < n; j++ {
				c.Done()
			}
			return err
		}
	}
	return c.Wait(ctx)
}

// Close shuts the executor down after draining already-queued tasks, and
// waits for the workers to exit. Close is idempotent. A Submit racing Close
// either lands before the drain (its task runs) or fails with ErrClosed —
// never a silently dropped task.
func (e *Executor) Close() {
	e.closeOnce.Do(func() {
		e.closeMu.Lock()
		e.closed = true
		close(e.done)
		e.closeMu.Unlock()
	})
	e.wg.Wait()
}

// Stats reports tasks submitted, tasks completed, and cumulative busy
// nanoseconds aggregated across all shards. Per-shard attribution (the
// busyNanos undercount the single global counters had once tasks run on
// multiple shards) lives in ShardStats.
func (e *Executor) Stats() (submitted, completed, busyNanos int64) {
	for _, s := range e.shards {
		submitted += s.submitted.Load()
		completed += s.completed.Load()
		busyNanos += s.busyNanos.Load()
	}
	return submitted, completed, busyNanos
}

// ShardStat is one shard's counter snapshot.
type ShardStat struct {
	Shard     int
	Submitted int64 // tasks enqueued to this shard's deque
	Completed int64 // tasks run by this shard's worker (local + stolen)
	BusyNanos int64 // time the worker spent inside tasks
	Steals    int64 // tasks the worker took from other shards' deques
}

// ShardStats returns a per-shard snapshot. Summing Steals over shards and
// dividing by completed tasks gives the steal ratio PERF.md reports: how
// much of the executor's throughput came from load balancing rather than
// affinity.
func (e *Executor) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{
			Shard:     i,
			Submitted: s.submitted.Load(),
			Completed: s.completed.Load(),
			BusyNanos: s.busyNanos.Load(),
			Steals:    s.steals.Load(),
		}
	}
	return out
}

// Steals returns the total number of stolen tasks across all shards.
func (e *Executor) Steals() int64 {
	var n int64
	for _, s := range e.shards {
		n += s.steals.Load()
	}
	return n
}

// Completion is a countdown latch used to signal that all subchunks of a
// chunk have been processed.
type Completion struct {
	remaining atomic.Int64
	done      chan struct{}
}

// NewCompletion returns a latch that fires after n calls to Done.
func NewCompletion(n int) *Completion {
	c := &Completion{done: make(chan struct{})}
	c.remaining.Store(int64(n))
	if n <= 0 {
		close(c.done)
	}
	return c
}

// Done records one completed unit; the final call releases waiters.
func (c *Completion) Done() {
	if c.remaining.Add(-1) == 0 {
		close(c.done)
	}
}

// Wait blocks until the latch fires or ctx is cancelled.
func (c *Completion) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ErrStopped
	}
}
