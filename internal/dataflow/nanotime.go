package dataflow

import "time"

// nanotime returns a monotonic nanosecond timestamp. time.Since on a fixed
// base uses the runtime's monotonic clock, avoiding wall-clock jumps.
var nanotimeBase = time.Now()

func nanotime() int64 { return int64(time.Since(nanotimeBase)) }
