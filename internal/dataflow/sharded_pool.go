package dataflow

import (
	"context"
	"sync/atomic"
)

// ShardedItemPool is ItemPool with per-shard free lists, the pool half of
// the executor's sharding story: a chunk decoded by shard S's worker is
// recycled onto shard S's list and handed back to the next task running
// there, so pooled buffers stay in the LLC of the core that last wrote them
// instead of ping-ponging through one global free list.
//
// Capacity semantics match ItemPool: the pool holds size pre-allocated
// items, Get blocks when every item is checked out (the §4.5 back-pressure),
// and surplus Puts are dropped. The per-shard lists are a placement
// preference, not a partition — a shard that runs dry steals from its
// neighbors' lists before blocking, so sharding never deadlocks a caller
// while free items exist anywhere.
type ShardedItemPool[T any] struct {
	// locals are the per-shard hot lists; shared is the overflow list that
	// also serves shard-less callers.
	locals []chan T
	shared chan T
	// notify carries one wake token per Put (capacity size, so a token is
	// only ever dropped when enough re-sweeps are already pending): blocked
	// getters consume a token and re-sweep every list, which closes the race
	// where an item lands on another shard's list after a getter's sweep.
	notify chan struct{}
	size   int
	reset  func(T) T

	recycled  atomic.Int64
	localHits atomic.Int64
}

// NewShardedItemPool creates a pool of size items built by newItem, spread
// over shards free lists (seeded round-robin so first Gets hit warm lists).
// reset is applied on Put, as in NewItemPool.
func NewShardedItemPool[T any](shards, size int, newItem func() T, reset func(T) T) *ShardedItemPool[T] {
	if shards < 1 {
		shards = 1
	}
	if size < 1 {
		size = 1
	}
	localCap := (size + shards - 1) / shards
	p := &ShardedItemPool[T]{
		locals: make([]chan T, shards),
		shared: make(chan T, size),
		notify: make(chan struct{}, size),
		size:   size,
		reset:  reset,
	}
	for i := range p.locals {
		p.locals[i] = make(chan T, localCap)
	}
	for i := 0; i < size; i++ {
		v := newItem()
		select {
		case p.locals[i%shards] <- v:
		default:
			p.shared <- v
		}
	}
	return p
}

// Shards returns the number of per-shard free lists.
func (p *ShardedItemPool[T]) Shards() int { return len(p.locals) }

// Size returns the pool's bound.
func (p *ShardedItemPool[T]) Size() int { return p.size }

// Free returns the number of items currently available across all lists.
func (p *ShardedItemPool[T]) Free() int {
	n := len(p.shared)
	for _, l := range p.locals {
		n += len(l)
	}
	return n
}

// Recycled reports how many Put calls returned an item to the pool.
func (p *ShardedItemPool[T]) Recycled() int64 { return p.recycled.Load() }

// LocalHits reports how many Gets were served by the caller's own shard
// list — the affinity hit rate.
func (p *ShardedItemPool[T]) LocalHits() int64 { return p.localHits.Load() }

func (p *ShardedItemPool[T]) clamp(shard int) int {
	if shard < 0 {
		return 0
	}
	return shard % len(p.locals)
}

// sweep tries every list once without blocking.
func (p *ShardedItemPool[T]) sweep(shard int) (T, bool) {
	select {
	case v := <-p.locals[shard]:
		p.localHits.Add(1)
		return v, true
	default:
	}
	select {
	case v := <-p.shared:
		return v, true
	default:
	}
	for i := range p.locals {
		if i == shard {
			continue
		}
		select {
		case v := <-p.locals[i]:
			return v, true
		default:
		}
	}
	var zero T
	return zero, false
}

// Get obtains an item, preferring the shard's own free list, then the shared
// list, then stealing from other shards, blocking until an item is free or
// ctx is cancelled.
func (p *ShardedItemPool[T]) Get(ctx context.Context, shard int) (T, error) {
	shard = p.clamp(shard)
	for {
		if v, ok := p.sweep(shard); ok {
			return v, nil
		}
		select {
		case <-p.notify:
		case <-ctx.Done():
			var zero T
			return zero, ErrStopped
		}
	}
}

// TryGet obtains an item without blocking.
func (p *ShardedItemPool[T]) TryGet(shard int) (T, bool) {
	return p.sweep(p.clamp(shard))
}

// Put returns an item to the shard's free list (overflowing to the shared
// list) after applying reset. Surplus items are dropped for the garbage
// collector, as in ItemPool.
func (p *ShardedItemPool[T]) Put(shard int, v T) {
	if p.reset != nil {
		v = p.reset(v)
	}
	shard = p.clamp(shard)
	select {
	case p.locals[shard] <- v:
	default:
		select {
		case p.shared <- v:
		default:
			return // surplus: drop without waking anyone
		}
	}
	p.recycled.Add(1)
	select {
	case p.notify <- struct{}{}:
	default:
	}
}
