// Package dataflow implements the coarse-grain dataflow execution engine
// underlying Persona (§4 of the paper). It plays the role TensorFlow plays
// in the original system: operators ("nodes") are stitched into graphs with
// bounded queues between them, bulk data is carried in recyclable pooled
// buffers so that only small handles flow through the graph, shared
// read-only state (reference indexes, executors) lives in a resource
// container attached to the session, and compute-intense kernels delegate
// fine-grain work to a shared Executor that owns the worker threads
// (Fig. 4 of the paper).
//
// The engine is deliberately generic: nothing in this package knows about
// genomics. Persona's AGD readers, parsers, aligners and writers are all
// implemented as Node functions in other packages.
package dataflow

import (
	"context"
	"errors"
	"fmt"
)

// Message is the unit of data flowing through queues. Persona follows the
// paper's "tensors of handles" discipline: messages are small handle structs
// (chunk descriptors, buffer handles), never multi-megabyte payloads; bulk
// data is referenced via pooled buffers.
type Message = any

// ErrClosed is returned by Queue.Put after the queue has been closed and by
// Executor.Submit after the executor has been shut down.
var ErrClosed = errors.New("dataflow: closed")

// ErrStopped is returned when an operation is abandoned because the session
// context was cancelled.
var ErrStopped = errors.New("dataflow: stopped")

// nodeError decorates an error with the name of the node that produced it so
// that pipeline failures identify their origin.
type nodeError struct {
	node string
	err  error
}

func (e *nodeError) Error() string { return fmt.Sprintf("dataflow: node %q: %v", e.node, e.err) }

func (e *nodeError) Unwrap() error { return e.err }

// stop reports whether the context is done, translating the cancellation
// into ErrStopped for uniform handling.
func stop(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ErrStopped
	default:
		return nil
	}
}
