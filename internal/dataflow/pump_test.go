package dataflow

// Tests for the pump scheduler: shared-context fan-out, first-error-wins
// teardown, and the real-error-displaces-cancellation rule the pipeline's
// error reporting depends on.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPumpsCleanRun: every pump exits nil, Wait returns nil, and the shared
// context is released afterwards.
func TestPumpsCleanRun(t *testing.T) {
	p := NewPumps(context.Background())
	for i := 0; i < 3; i++ {
		p.Go(Pump{Name: "ok"}, func(ctx context.Context) error { return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("clean run reported %v", err)
	}
	if p.Context().Err() == nil {
		t.Fatal("Wait left the shared context alive")
	}
}

// TestPumpsFirstErrorCancelsSiblings: one failing pump cancels the shared
// context, unwinding a sibling blocked on it, and Wait reports the failure.
func TestPumpsFirstErrorCancelsSiblings(t *testing.T) {
	boom := errors.New("boom")
	p := NewPumps(context.Background())
	unwound := make(chan struct{})
	p.Go(Pump{Name: "blocked"}, func(ctx context.Context) error {
		<-ctx.Done()
		close(unwound)
		return nil
	})
	p.Go(Pump{Name: "failing"}, func(ctx context.Context) error { return boom })
	select {
	case <-unwound:
	case <-time.After(2 * time.Second):
		t.Fatal("sibling was not cancelled by the failure")
	}
	if err := p.Wait(); err != boom {
		t.Fatalf("Wait returned %v, want boom", err)
	}
}

// TestPumpsRealErrorDisplacesCancellation: when teardown races, a pump
// reporting bare context.Canceled must not mask the sibling holding the root
// cause — the pipeline's Run error is built from this rule.
func TestPumpsRealErrorDisplacesCancellation(t *testing.T) {
	boom := errors.New("root cause")
	p := NewPumps(context.Background())
	p.Go(Pump{Name: "late-root-cause"}, func(ctx context.Context) error {
		<-ctx.Done() // woken by the sibling's cancellation, then reports the real error
		return boom
	})
	p.Go(Pump{Name: "cancelled-first"}, func(ctx context.Context) error {
		return context.Canceled
	})
	if err := p.Wait(); err != boom {
		t.Fatalf("Wait returned %v, want the displaced root cause", err)
	}

	// The reverse never happens: a real error already recorded is not
	// displaced by a later cancellation.
	q := NewPumps(context.Background())
	q.Go(Pump{Name: "fails"}, func(ctx context.Context) error { return boom })
	q.Go(Pump{Name: "cancels"}, func(ctx context.Context) error {
		<-ctx.Done()
		return context.Canceled
	})
	if err := q.Wait(); err != boom {
		t.Fatalf("real error was displaced by cancellation: %v", err)
	}
}

// TestPumpsExternalFail: the sink loop (caller goroutine) participates in the
// same teardown via Fail; Fail(nil) is a no-op.
func TestPumpsExternalFail(t *testing.T) {
	boom := errors.New("sink failed")
	p := NewPumps(context.Background())
	p.Go(Pump{Name: "blocked"}, func(ctx context.Context) error {
		<-ctx.Done()
		return nil
	})
	p.Fail(nil) // no-op: must not cancel anything
	select {
	case <-p.Context().Done():
		t.Fatal("Fail(nil) cancelled the pump context")
	case <-time.After(20 * time.Millisecond):
	}
	p.Fail(boom)
	if err := p.Wait(); err != boom {
		t.Fatalf("Wait returned %v, want the injected failure", err)
	}
}

// TestPumpsParentCancellation: cancelling the parent unwinds every pump.
func TestPumpsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPumps(ctx)
	p.Go(Pump{Name: "blocked"}, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	cancel()
	if err := p.Wait(); err != context.Canceled {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
}
