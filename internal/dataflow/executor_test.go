package dataflow

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutorRunsAllTasks(t *testing.T) {
	e := NewExecutor(4, 8)
	defer e.Close()
	ctx := context.Background()

	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := e.Submit(ctx, func() {
			defer wg.Done()
			n.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	// The WaitGroup fires inside the task, just before the worker bumps its
	// completed counter; poll briefly so the assertion doesn't race it.
	var submitted, completed int64
	for deadline := time.Now().Add(2 * time.Second); ; {
		submitted, completed, _ = e.Stats()
		if completed == 100 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if submitted != 100 || completed != 100 {
		t.Fatalf("Stats = (%d, %d), want (100, 100)", submitted, completed)
	}
}

func TestExecutorParallelismBound(t *testing.T) {
	const workers = 3
	e := NewExecutor(workers, 64)
	defer e.Close()
	ctx := context.Background()

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		err := e.Submit(ctx, func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestExecutorSubmitWait(t *testing.T) {
	e := NewExecutor(2, 4)
	defer e.Close()
	ctx := context.Background()

	results := make([]int, 10)
	err := e.SubmitWait(ctx, len(results), func(i int) Task {
		return func() { results[i] = i * i }
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestExecutorSubmitWaitZero(t *testing.T) {
	e := NewExecutor(1, 1)
	defer e.Close()
	if err := e.SubmitWait(context.Background(), 0, nil); err != nil {
		t.Fatalf("SubmitWait(0) = %v", err)
	}
}

func TestExecutorCloseDrains(t *testing.T) {
	e := NewExecutor(1, 16)
	ctx := context.Background()
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		if err := e.Submit(ctx, func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close() // must wait for queued tasks
	if n.Load() != 10 {
		t.Fatalf("Close drained %d tasks, want 10", n.Load())
	}
	if err := e.Submit(ctx, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestExecutorSharedAcrossFeeders(t *testing.T) {
	// Multiple "aligner nodes" feed one executor concurrently — the Fig. 4
	// configuration. Each waits for its own chunk's subchunks only.
	e := NewExecutor(4, 8)
	defer e.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for node := 0; node < 6; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			sum := make([]int64, 1)
			err := e.SubmitWait(ctx, 20, func(i int) Task {
				return func() { atomic.AddInt64(&sum[0], int64(i)) }
			})
			if err != nil {
				t.Errorf("node %d: %v", node, err)
				return
			}
			if sum[0] != 190 { // 0+1+..+19
				t.Errorf("node %d: sum = %d before SubmitWait returned, want 190", node, sum[0])
			}
		}(node)
	}
	wg.Wait()
}

// settle gives freshly started workers time to finish their initial sweep
// and park, so wake-token bookkeeping is deterministic from a known state.
func settle() { time.Sleep(30 * time.Millisecond) }

func TestExecutorSubmitToAffinityWhenIdle(t *testing.T) {
	// With every worker parked and no wake tokens outstanding, a SubmitTo
	// places only the owner's token, so the target shard itself must run
	// the task.
	e := NewExecutor(4, 16)
	defer e.Close()
	ctx := context.Background()
	settle()

	const target = 2
	for i := 0; i < 20; i++ {
		// Wait for the owner to re-park: a push to a non-parked owner
		// deliberately invites a thief, so strict affinity only holds
		// from the parked state.
		for deadline := time.Now().Add(2 * time.Second); !e.shards[target].parked.Load(); {
			if time.Now().After(deadline) {
				t.Fatalf("shard %d worker never parked before probe %d", target, i)
			}
			time.Sleep(time.Millisecond)
		}
		ran := make(chan int, 1)
		if err := e.SubmitSharded(ctx, target, func(shard int) { ran <- shard }); err != nil {
			t.Fatal(err)
		}
		select {
		case shard := <-ran:
			if shard != target {
				t.Fatalf("probe %d ran on shard %d, want %d (idle-shard affinity)", i, shard, target)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("probe %d never ran", i)
		}
	}
	stats := e.ShardStats()
	if stats[target].Completed != 20 {
		t.Fatalf("shard %d completed %d, want 20", target, stats[target].Completed)
	}
	if got := e.Steals(); got != 0 {
		t.Fatalf("Steals = %d on an idle executor, want 0", got)
	}
}

func TestExecutorBusyOwnerInvitesThief(t *testing.T) {
	// A task pushed to a shard whose owner is mid-task must not wait out
	// that task while another worker sits parked: the push invites a thief.
	e := NewExecutor(2, 8)
	defer e.Close()
	ctx := context.Background()
	settle()

	gate := make(chan struct{})
	if err := e.SubmitTo(ctx, 0, func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	settle() // worker 0 is now inside the gate task; worker 1 is parked
	done := make(chan int, 1)
	if err := e.SubmitSharded(ctx, 0, func(shard int) { done <- shard }); err != nil {
		t.Fatal(err)
	}
	select {
	case shard := <-done:
		if shard != 1 {
			t.Fatalf("probe ran on shard %d, want stolen by idle shard 1", shard)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("probe stranded behind the busy owner")
	}
	close(gate)
}

func TestExecutorStealSpreadsWork(t *testing.T) {
	// Everything is submitted to shard 0 (the deque is deep enough that
	// nothing spills); the other shards must steal the batch's tail.
	e := NewExecutor(4, 256)
	defer e.Close()
	ctx := context.Background()
	settle()

	const tasks = 48
	var ran atomic.Int64
	c := NewCompletion(tasks)
	for i := 0; i < tasks; i++ {
		if err := e.SubmitTo(ctx, 0, func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
			c.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	if e.Steals() == 0 {
		t.Fatal("no steals while one shard held the whole batch")
	}
	// The latch fires inside the task, just before the worker bumps its
	// completed counter, so give the counters a moment to settle.
	var stats []ShardStat
	var completed int64
	for deadline := time.Now().Add(2 * time.Second); ; {
		stats = e.ShardStats()
		completed = 0
		for _, s := range stats {
			completed += s.Completed
		}
		if completed == tasks || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if stats[0].Submitted != tasks {
		t.Fatalf("shard 0 submitted %d, want %d", stats[0].Submitted, tasks)
	}
	if completed != tasks {
		t.Fatalf("per-shard completions sum to %d, want %d", completed, tasks)
	}
	busy := 0
	for _, s := range stats {
		if s.Completed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards completed work; stealing did not spread the batch", busy)
	}
}

func TestExecutorCloseDuringSteal(t *testing.T) {
	// Close racing an active steal storm: every queued task still runs
	// exactly once and Close returns.
	for round := 0; round < 10; round++ {
		e := NewExecutor(4, 256)
		ctx := context.Background()
		const tasks = 200
		var ran atomic.Int64
		for i := 0; i < tasks; i++ {
			if err := e.SubmitTo(ctx, 0, func() { ran.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
		e.Close() // must drain local deques and in-progress steals
		if ran.Load() != tasks {
			t.Fatalf("round %d: Close drained %d tasks, want %d", round, ran.Load(), tasks)
		}
	}
}

func TestExecutorSubmitWaitRacingClose(t *testing.T) {
	// SubmitWait concurrent with Close must always return — either its
	// tasks ran (pushed before the drain) or it got ErrClosed. A push
	// stranded after the workers' final sweep would hang the latch forever.
	for round := 0; round < 20; round++ {
		e := NewExecutor(2, 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := e.SubmitWait(context.Background(), 3, func(int) Task { return func() {} })
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("SubmitWait = %v, want ErrClosed", err)
						}
						return
					}
				}
			}()
		}
		time.Sleep(time.Millisecond)
		e.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("SubmitWait hung across Close")
		}
	}
}

func TestExecutorSubmitWaitTo(t *testing.T) {
	e := NewExecutor(3, 12)
	defer e.Close()
	ctx := context.Background()

	results := make([]int, 30)
	shards := make([]int, 30)
	err := e.SubmitWaitTo(ctx, 1, len(results), func(i int) ShardTask {
		return func(shard int) {
			results[i] = i * i
			shards[i] = shard
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
		if shards[i] < 0 || shards[i] >= e.NumShards() {
			t.Fatalf("task %d reported shard %d out of range", i, shards[i])
		}
	}
}

func TestExecutorPerShardBusyNanos(t *testing.T) {
	// The old executor kept one global busy counter; per-shard counters
	// must sum to the aggregate exactly (fake clock: 1 tick per reading).
	e := NewExecutor(2, 8)
	defer e.Close()
	var tick atomic.Int64
	e.clock = func() int64 { return tick.Add(1) }
	ctx := context.Background()

	if err := e.SubmitWait(ctx, 10, func(i int) Task { return func() {} }); err != nil {
		t.Fatal(err)
	}
	_, completed, busy := e.Stats()
	if completed != 10 {
		t.Fatalf("completed = %d, want 10", completed)
	}
	var sum int64
	for _, s := range e.ShardStats() {
		sum += s.BusyNanos
	}
	if sum != busy {
		t.Fatalf("per-shard busyNanos sum %d != aggregate %d", sum, busy)
	}
	if busy <= 0 {
		t.Fatalf("busyNanos = %d, want > 0", busy)
	}
}

func TestExecutorSubmitBlocksWhenFull(t *testing.T) {
	// One worker, depth-1 deque: with the worker wedged and the slot taken,
	// Submit must block until a pop frees space.
	e := NewExecutor(1, 1)
	defer e.Close()
	ctx := context.Background()
	gate := make(chan struct{})
	if err := e.Submit(ctx, func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	settle() // let the worker pick up the gate task
	if err := e.Submit(ctx, func() {}); err != nil {
		t.Fatal(err) // fills the single slot
	}
	submitted := make(chan error, 1)
	go func() { submitted <- e.Submit(ctx, func() {}) }()
	select {
	case err := <-submitted:
		t.Fatalf("Submit returned %v while every deque was full", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-submitted:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit did not unblock after space freed")
	}
}

func TestCompletionLatch(t *testing.T) {
	c := NewCompletion(3)
	ctx := context.Background()
	done := make(chan error, 1)
	go func() { done <- c.Wait(ctx) }()
	c.Done()
	c.Done()
	select {
	case <-done:
		t.Fatal("Wait returned before final Done")
	case <-time.After(10 * time.Millisecond):
	}
	c.Done()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after final Done")
	}
}
