package dataflow

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutorRunsAllTasks(t *testing.T) {
	e := NewExecutor(4, 8)
	defer e.Close()
	ctx := context.Background()

	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := e.Submit(ctx, func() {
			defer wg.Done()
			n.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	submitted, completed, _ := e.Stats()
	if submitted != 100 || completed != 100 {
		t.Fatalf("Stats = (%d, %d), want (100, 100)", submitted, completed)
	}
}

func TestExecutorParallelismBound(t *testing.T) {
	const workers = 3
	e := NewExecutor(workers, 64)
	defer e.Close()
	ctx := context.Background()

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		err := e.Submit(ctx, func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestExecutorSubmitWait(t *testing.T) {
	e := NewExecutor(2, 4)
	defer e.Close()
	ctx := context.Background()

	results := make([]int, 10)
	err := e.SubmitWait(ctx, len(results), func(i int) Task {
		return func() { results[i] = i * i }
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestExecutorSubmitWaitZero(t *testing.T) {
	e := NewExecutor(1, 1)
	defer e.Close()
	if err := e.SubmitWait(context.Background(), 0, nil); err != nil {
		t.Fatalf("SubmitWait(0) = %v", err)
	}
}

func TestExecutorCloseDrains(t *testing.T) {
	e := NewExecutor(1, 16)
	ctx := context.Background()
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		if err := e.Submit(ctx, func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close() // must wait for queued tasks
	if n.Load() != 10 {
		t.Fatalf("Close drained %d tasks, want 10", n.Load())
	}
	if err := e.Submit(ctx, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestExecutorSharedAcrossFeeders(t *testing.T) {
	// Multiple "aligner nodes" feed one executor concurrently — the Fig. 4
	// configuration. Each waits for its own chunk's subchunks only.
	e := NewExecutor(4, 8)
	defer e.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for node := 0; node < 6; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			sum := make([]int64, 1)
			err := e.SubmitWait(ctx, 20, func(i int) Task {
				return func() { atomic.AddInt64(&sum[0], int64(i)) }
			})
			if err != nil {
				t.Errorf("node %d: %v", node, err)
				return
			}
			if sum[0] != 190 { // 0+1+..+19
				t.Errorf("node %d: sum = %d before SubmitWait returned, want 190", node, sum[0])
			}
		}(node)
	}
	wg.Wait()
}

func TestCompletionLatch(t *testing.T) {
	c := NewCompletion(3)
	ctx := context.Background()
	done := make(chan error, 1)
	go func() { done <- c.Wait(ctx) }()
	c.Done()
	c.Done()
	select {
	case <-done:
		t.Fatal("Wait returned before final Done")
	case <-time.After(10 * time.Millisecond):
	}
	c.Done()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after final Done")
	}
}
