package reads

import (
	"strings"
	"testing"

	"persona/internal/genome"
)

func testGenome(t *testing.T) *genome.Genome {
	t.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(100_000, 11))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulatorSingleEnd(t *testing.T) {
	g := testGenome(t)
	sim, err := NewSimulator(g, SimConfig{Seed: 1, N: 500, ReadLen: 101})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	if len(rs) != 500 || len(origins) != 500 {
		t.Fatalf("got %d reads, %d origins", len(rs), len(origins))
	}
	names := make(map[string]bool)
	for i, r := range rs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.Len() != 101 {
			t.Fatalf("read %d length %d", i, r.Len())
		}
		if names[r.Meta] {
			t.Fatalf("duplicate read name %q", r.Meta)
		}
		names[r.Meta] = true
		o := origins[i]
		if o.Pos < 0 || o.Pos+101 > g.Len() {
			t.Fatalf("origin %d out of range: %+v", i, o)
		}
		for _, q := range r.Quals {
			if q < '!'+2 || q > '!'+41 {
				t.Fatalf("quality %q out of Phred range", q)
			}
		}
	}
}

func TestSimulatedReadsMatchOrigin(t *testing.T) {
	g := testGenome(t)
	sim, err := NewSimulator(g, SimConfig{Seed: 2, N: 200, ReadLen: 80, ErrorRate: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	for i, r := range rs {
		ref, err := g.Slice(origins[i].Pos, r.Len())
		if err != nil {
			t.Fatal(err)
		}
		seq := r.Bases
		if origins[i].Reverse {
			seq = genome.ReverseComplement(make([]byte, len(seq)), seq)
		}
		mismatches := 0
		for j := range seq {
			if seq[j] != ref[j] {
				mismatches++
			}
		}
		// With ~0.2% error rate an 80bp read should rarely have more than a
		// handful of mismatches.
		if mismatches > 8 {
			t.Fatalf("read %d: %d mismatches vs origin", i, mismatches)
		}
	}
}

func TestSimulatorPaired(t *testing.T) {
	g := testGenome(t)
	sim, err := NewSimulator(g, SimConfig{Seed: 3, N: 100, ReadLen: 50, Paired: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	if len(rs) != 100 {
		t.Fatalf("got %d reads", len(rs))
	}
	for i := 0; i < len(rs); i += 2 {
		r1, r2 := rs[i], rs[i+1]
		o1, o2 := origins[i], origins[i+1]
		if !strings.HasSuffix(r1.Meta, "/1") || !strings.HasSuffix(r2.Meta, "/2") {
			t.Fatalf("pair names %q %q", r1.Meta, r2.Meta)
		}
		if strings.TrimSuffix(r1.Meta, "/1") != strings.TrimSuffix(r2.Meta, "/2") {
			t.Fatalf("pair names disagree: %q %q", r1.Meta, r2.Meta)
		}
		if o1.Reverse || !o2.Reverse {
			t.Fatalf("pair %d orientation: %+v %+v", i/2, o1, o2)
		}
		if o2.Pos < o1.Pos {
			t.Fatalf("pair %d positions inverted: %d %d", i/2, o1.Pos, o2.Pos)
		}
		insert := o2.Pos + 50 - o1.Pos
		if insert < 100 || insert > 1000 {
			t.Fatalf("pair %d insert %d out of plausible range", i/2, insert)
		}
	}
}

func TestSimulatorPairedOddN(t *testing.T) {
	g := testGenome(t)
	if _, err := NewSimulator(g, SimConfig{Seed: 1, N: 3, Paired: true}); err == nil {
		t.Fatal("odd paired N accepted")
	}
}

func TestSimulatorDuplicates(t *testing.T) {
	g := testGenome(t)
	sim, err := NewSimulator(g, SimConfig{Seed: 4, N: 2000, ReadLen: 60, DuplicateFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	_, origins := sim.All()
	seen := make(map[Origin]int)
	dups := 0
	for _, o := range origins {
		if seen[o] > 0 {
			dups++
		}
		seen[o]++
	}
	frac := float64(dups) / float64(len(origins))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("duplicate fraction %.3f, want ≈0.25", frac)
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	g := testGenome(t)
	mk := func() []Read {
		sim, err := NewSimulator(g, SimConfig{Seed: 9, N: 50, ReadLen: 70})
		if err != nil {
			t.Fatal(err)
		}
		rs, _ := sim.All()
		return rs
	}
	a, b := mk(), mk()
	for i := range a {
		if string(a[i].Bases) != string(b[i].Bases) || string(a[i].Quals) != string(b[i].Quals) {
			t.Fatalf("read %d differs between identically seeded runs", i)
		}
	}
}

func TestSimulatorValidation(t *testing.T) {
	g := testGenome(t)
	if _, err := NewSimulator(g, SimConfig{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewSimulator(g, SimConfig{N: 1, ReadLen: int(g.Len()) + 1}); err == nil {
		t.Fatal("read longer than genome accepted")
	}
}

func TestReadValidate(t *testing.T) {
	r := Read{Meta: "x", Bases: []byte("ACGT"), Quals: []byte("IIII")}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Read{Meta: "y", Bases: []byte("ACGT"), Quals: []byte("II")}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched quals accepted")
	}
	empty := Read{Meta: "z"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty read accepted")
	}
}
