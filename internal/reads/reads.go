// Package reads models sequencer reads and provides an Illumina-like read
// simulator.
//
// The paper's evaluation dataset is half of Illumina ERR174324: 223 million
// single-end 101-base reads. That dataset cannot ship with this repository,
// so the simulator generates reads with the same statistical structure:
// fixed read length, positionally increasing error rate with Phred-scaled
// quality strings, arbitrary read order, optional paired-end reads with a
// normally distributed insert size, and a configurable PCR-duplicate
// fraction (needed by the duplicate-marking experiments). See DESIGN.md §3.
package reads

import (
	"fmt"
	"math"
	"math/rand"

	"persona/internal/genome"
)

// Read is one sequencer read: the three fields a FASTQ record carries (§2.1
// of the paper: bases, per-base quality, unique metadata).
type Read struct {
	// Meta uniquely identifies the read (FASTQ name line without '@').
	Meta string
	// Bases holds the base letters (A,C,G,T,N), one per position.
	Bases []byte
	// Quals holds Phred+33 quality letters, len(Quals) == len(Bases).
	Quals []byte
}

// Len returns the read length in bases.
func (r *Read) Len() int { return len(r.Bases) }

// Validate checks structural invariants.
func (r *Read) Validate() error {
	if len(r.Bases) == 0 {
		return fmt.Errorf("reads: %q has no bases", r.Meta)
	}
	if len(r.Bases) != len(r.Quals) {
		return fmt.Errorf("reads: %q has %d bases but %d quals", r.Meta, len(r.Bases), len(r.Quals))
	}
	return nil
}

// Origin records where a simulated read was drawn from, for alignment
// accuracy measurement. It is carried in the read metadata.
type Origin struct {
	Pos     int64 // global reference position of the leftmost base
	Reverse bool  // read was reverse-complemented
}

// SimConfig parameterizes read simulation.
type SimConfig struct {
	// Seed makes simulation deterministic.
	Seed int64
	// N is the number of reads (for paired mode, N must be even and counts
	// individual reads, i.e. N/2 pairs).
	N int
	// ReadLen is the read length; the paper's dataset uses 101.
	ReadLen int
	// Paired selects paired-end simulation.
	Paired bool
	// InsertMean and InsertStd parameterize the outer distance between
	// paired reads. Defaults: 400 / 50.
	InsertMean, InsertStd float64
	// ErrorRate is the per-base substitution probability at the 5' end;
	// the rate triples along the read as on real Illumina machines.
	// Default 0.002.
	ErrorRate float64
	// DuplicateFraction is the fraction of reads that are PCR duplicates of
	// an earlier read (same origin, independent errors). Default 0.
	DuplicateFraction float64
	// NamePrefix prefixes read names; default "sim".
	NamePrefix string
}

// Simulator draws reads from a reference genome.
type Simulator struct {
	cfg SimConfig
	gen *genome.Genome
	rng *rand.Rand
}

// NewSimulator validates cfg and returns a simulator over g.
func NewSimulator(g *genome.Genome, cfg SimConfig) (*Simulator, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("reads: N = %d", cfg.N)
	}
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = 101
	}
	if int64(cfg.ReadLen) > g.Len() {
		return nil, fmt.Errorf("reads: read length %d exceeds genome length %d", cfg.ReadLen, g.Len())
	}
	if cfg.Paired && cfg.N%2 != 0 {
		return nil, fmt.Errorf("reads: paired simulation needs even N, got %d", cfg.N)
	}
	if cfg.InsertMean == 0 {
		cfg.InsertMean = 400
	}
	if cfg.InsertStd == 0 {
		cfg.InsertStd = 50
	}
	if cfg.ErrorRate == 0 {
		cfg.ErrorRate = 0.002
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "sim"
	}
	return &Simulator{cfg: cfg, gen: g, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// All generates the full configured read set. Reads come back in arbitrary
// (non-positional) order, as from a sequencer. The parallel Origin slice
// reports ground truth for accuracy measurements.
func (s *Simulator) All() ([]Read, []Origin) {
	out := make([]Read, 0, s.cfg.N)
	origins := make([]Origin, 0, s.cfg.N)
	if s.cfg.Paired {
		for len(out) < s.cfg.N {
			r1, r2, o1, o2 := s.pair(len(out))
			out = append(out, r1, r2)
			origins = append(origins, o1, o2)
		}
	} else {
		for len(out) < s.cfg.N {
			if s.cfg.DuplicateFraction > 0 && len(out) > 0 && s.rng.Float64() < s.cfg.DuplicateFraction {
				// Duplicate an earlier read's origin with fresh errors.
				i := s.rng.Intn(len(out))
				r, o := s.fromOrigin(origins[i], fmt.Sprintf("%s.%d.dup", s.cfg.NamePrefix, len(out)))
				out = append(out, r)
				origins = append(origins, o)
				continue
			}
			r, o := s.single(fmt.Sprintf("%s.%d", s.cfg.NamePrefix, len(out)))
			out = append(out, r)
			origins = append(origins, o)
		}
	}
	return out, origins
}

// single draws one read from a uniformly random genome position and strand.
func (s *Simulator) single(name string) (Read, Origin) {
	o := Origin{
		Pos:     s.randPos(s.cfg.ReadLen),
		Reverse: s.rng.Intn(2) == 1,
	}
	r, o := s.fromOrigin(o, name)
	return r, o
}

// fromOrigin materializes a read from an origin with fresh sequencing
// errors.
func (s *Simulator) fromOrigin(o Origin, name string) (Read, Origin) {
	n := s.cfg.ReadLen
	ref, err := s.gen.Slice(o.Pos, n)
	if err != nil {
		// randPos guarantees validity; reaching here is a bug.
		panic(err)
	}
	bases := make([]byte, n)
	if o.Reverse {
		genome.ReverseComplement(bases, ref)
	} else {
		copy(bases, ref)
	}
	quals := make([]byte, n)
	for i := 0; i < n; i++ {
		rate := s.errorRateAt(i, n)
		quals[i] = phred(rate, s.rng)
		if s.rng.Float64() < rate {
			bases[i] = mutate(bases[i], s.rng)
		}
	}
	return Read{Meta: name, Bases: bases, Quals: quals}, o
}

// pair draws a proper pair: R1 forward / R2 reverse on opposite strands with
// a normally distributed outer distance.
func (s *Simulator) pair(serial int) (Read, Read, Origin, Origin) {
	n := s.cfg.ReadLen
	for {
		insert := int(s.rng.NormFloat64()*s.cfg.InsertStd + s.cfg.InsertMean)
		if insert < 2*n {
			insert = 2 * n
		}
		start := s.randPos(insert)
		o1 := Origin{Pos: start, Reverse: false}
		o2 := Origin{Pos: start + int64(insert) - int64(n), Reverse: true}
		name := fmt.Sprintf("%s.p%d", s.cfg.NamePrefix, serial/2)
		r1, o1 := s.fromOrigin(o1, name+"/1")
		r2, o2 := s.fromOrigin(o2, name+"/2")
		return r1, r2, o1, o2
	}
}

// randPos returns a global position with span bases of room after it.
func (s *Simulator) randPos(span int) int64 {
	return int64(s.rng.Int63n(s.gen.Len() - int64(span) + 1))
}

// errorRateAt models Illumina's rising error rate along the read: base rate
// at the 5' end rising to ~3x at the 3' end.
func (s *Simulator) errorRateAt(i, n int) float64 {
	frac := float64(i) / float64(n-1)
	return s.cfg.ErrorRate * (1 + 2*frac)
}

// phred converts an error rate to a Phred+33 quality letter with a little
// jitter, clamped to [2, 41] as on Illumina machines.
func phred(rate float64, rng *rand.Rand) byte {
	q := -10 * math.Log10(rate)
	q += rng.NormFloat64() * 2
	if q < 2 {
		q = 2
	}
	if q > 41 {
		q = 41
	}
	return byte('!' + int(q))
}

// mutate returns a random base different from b.
func mutate(b byte, rng *rand.Rand) byte {
	letters := []byte{'A', 'C', 'G', 'T'}
	for {
		nb := letters[rng.Intn(4)]
		if nb != b {
			return nb
		}
	}
}
