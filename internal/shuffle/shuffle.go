// Package shuffle implements the key-range shuffle under Persona's
// distributed fused pipelines: the coordination payloads and blob layout
// that move sorted superchunk runs from the workers that built them to the
// partitions that own their key ranges.
//
// The flow mirrors a sample sort stretched across nodes, reusing the
// in-process sort's splitter machinery (agdsort): every map task spills one
// sorted run and reports an equi-depth sample of its keys; the coordinator
// pools the samples into p-1 global splitters (SelectCuts); every shuffle
// task then cuts its run at those splitters and hands each fragment to its
// partition via the blob store, under deterministic
// "<prefix>/part<k>/piece-<run>" names — so a re-executed task rewrites
// identical blobs and recovery needs no cleanup protocol. Location-sorted
// pipelines that mark duplicates also emit a halo per cut: the results
// fields of rows just below the splitter, wide enough (2·maxSpan+1) that
// every signature able to collide across the cut is present, which lets
// each partition seed its duplicate-marker independently.
package shuffle

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"slices"

	"persona/internal/agd"
	"persona/internal/agdsort"
)

// SampleCount is how many rows each run contributes to splitter selection —
// the same equi-depth sampling density the in-process parallel merge uses.
const SampleCount = 64

// Sample is one sampled run row on the wire (agdsort.RunSample's JSON
// form): the packed primary key plus, for metadata sorts, the full key
// bytes.
type Sample struct {
	Key  uint64 `json:"k"`
	Full []byte `json:"f,omitempty"`
}

// RunSummary is a map task's completion payload: the run's equi-depth key
// samples plus what halo sizing and skew accounting need.
type RunSummary struct {
	Rows    int      `json:"rows"`
	Samples []Sample `json:"samples,omitempty"`
	// MaxSpan is the largest |signature position − location| over the run's
	// mapped rows (duplicate-marking pipelines only).
	MaxSpan int64 `json:"max_span,omitempty"`
}

// Cuts is the coordinator's splitter decision, broadcast to every worker
// before the shuffle phase opens.
type Cuts struct {
	// Splitters holds the p-1 sorted partition boundaries; rows comparing
	// >= a splitter belong to the partition at its right.
	Splitters []Sample `json:"splitters"`
	// Halo is the key-distance below each cut whose rows seed the right
	// partition's duplicate marker (0 when the pipeline does not mark).
	Halo int64 `json:"halo,omitempty"`
}

// ShuffleResult is a shuffle task's completion payload.
type ShuffleResult struct {
	// PartRows is how many of the run's rows each partition received.
	PartRows []int64 `json:"part_rows"`
	// Bytes is the encoded size of every piece and halo blob written.
	Bytes int64 `json:"bytes"`
}

// PartResult is a reduce task's completion payload: the partition's output
// chunk layout and its stage statistics.
type PartResult struct {
	// ChunkRecords lists the partition's output chunks in row order.
	ChunkRecords []uint32 `json:"chunk_records,omitempty"`
	Rows         uint64   `json:"rows"`
	DupReads     uint64   `json:"dup_reads,omitempty"`
	Duplicates   uint64   `json:"duplicates,omitempty"`
	FilterIn     uint64   `json:"filter_in,omitempty"`
	FilterKept   uint64   `json:"filter_kept,omitempty"`
}

// Encode renders a coordination payload as one protocol token (base64 of
// JSON — the manifest-server protocol is line-oriented).
func Encode(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("shuffle: encode payload: %w", err)
	}
	return base64.RawURLEncoding.EncodeToString(b), nil
}

// Decode parses a payload token produced by Encode.
func Decode(tok string, v any) error {
	b, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return fmt.Errorf("shuffle: decode payload: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("shuffle: decode payload: %w", err)
	}
	return nil
}

// RunBlob names map task b's sorted run under a shuffle namespace.
func RunBlob(prefix string, b int) string {
	return fmt.Sprintf("%s/run-%06d", prefix, b)
}

// PieceBlob names run b's fragment owned by partition k. Every (k, b) pair
// is written, empty fragments included, so readers need no existence
// probes.
func PieceBlob(prefix string, k, b int) string {
	return fmt.Sprintf("%s/part%d/piece-%06d", prefix, k, b)
}

// HaloBlob names run b's duplicate-marking halo for partition k (k >= 1:
// partition 0 has no earlier rows to seed from).
func HaloBlob(prefix string, k, b int) string {
	return fmt.Sprintf("%s/part%d/halo-%06d", prefix, k, b)
}

// PartChunkPath names output chunk i of partition k under an output
// dataset prefix — the per-partition analogue of agd.ChunkEntryPath,
// stitched into one manifest afterwards.
func PartChunkPath(out string, k, i int) string {
	return fmt.Sprintf("%s/part%d/chunk-%06d", out, k, i)
}

// SelectCuts pools every run's samples and picks p-1 equi-depth splitters,
// the same quantile rule the in-process parallel merge applies to its own
// sampling (duplicate splitters are possible on skewed keys and yield empty
// partitions — harmless). Halo is sized from the summaries' maximum
// signature span: a row whose signature collides with a row at or above a
// cut must itself lie within 2·maxSpan of the cut, so 2·maxSpan+1 covers
// every cross-cut collision. Returns an error when no run reported any
// rows.
func SelectCuts(summaries []RunSummary, p int, markdup bool) (Cuts, error) {
	if p <= 0 {
		return Cuts{}, fmt.Errorf("shuffle: select cuts: %d partitions", p)
	}
	var samples []Sample
	var rows int
	var maxSpan int64
	for _, s := range summaries {
		rows += s.Rows
		samples = append(samples, s.Samples...)
		if s.MaxSpan > maxSpan {
			maxSpan = s.MaxSpan
		}
	}
	if rows == 0 {
		return Cuts{}, fmt.Errorf("shuffle: select cuts: no rows sampled")
	}
	cuts := Cuts{Splitters: make([]Sample, 0, p-1)}
	if markdup {
		cuts.Halo = 2*maxSpan + 1
	}
	if p == 1 {
		return cuts, nil
	}
	slices.SortFunc(samples, func(a, b Sample) int {
		if a.Key != b.Key {
			if a.Key < b.Key {
				return -1
			}
			return 1
		}
		return bytes.Compare(a.Full, b.Full)
	})
	for i := 1; i < p; i++ {
		cuts.Splitters = append(cuts.Splitters, samples[i*len(samples)/p])
	}
	return cuts, nil
}

// CutPoints returns, for each splitter, the first row of the sorted run at
// or after it — the fragment boundaries of a shuffle task. The cuts are
// sorted, so the returned indexes are nondecreasing.
func CutPoints(run *agd.Chunk, keyCol int, by agdsort.Key, splitters []Sample) []int {
	pts := make([]int, len(splitters))
	for i, sp := range splitters {
		pts[i] = agdsort.CutRun(run, keyCol, by, agdsort.RunSample{Key: sp.Key, Full: sp.Full})
	}
	return pts
}

// BuildPiece packs rows [lo, hi) of a decoded run into a raw piece chunk,
// record bytes unchanged — partition merges read pieces exactly as the
// in-process merge reads whole runs.
func BuildPiece(run *agd.Chunk, lo, hi int) (*agd.Chunk, error) {
	b := agd.NewChunkBuilder(agd.TypeRaw, 0)
	for r := lo; r < hi; r++ {
		rec, err := run.Record(r)
		if err != nil {
			return nil, err
		}
		b.Append(rec)
	}
	return b.Chunk(), nil
}

// HaloRange returns the row range [lo, hi) of the run whose keys lie in
// [cut.Key−halo, cut.Key) — the rows below a cut whose signatures could
// collide with rows at or above it. Location keys only (halos exist only
// for location-sorted marking pipelines).
func HaloRange(run *agd.Chunk, keyCol int, by agdsort.Key, cut Sample, halo int64) (lo, hi int) {
	low := uint64(0)
	if uint64(halo) <= cut.Key {
		low = cut.Key - uint64(halo)
	}
	lo = agdsort.CutRun(run, keyCol, by, agdsort.RunSample{Key: low})
	hi = agdsort.CutRun(run, keyCol, by, agdsort.RunSample{Key: cut.Key, Full: cut.Full})
	return lo, hi
}

// BuildHalo packs the key-column fields (results records, for marking
// pipelines) of rows [lo, hi) into a raw chunk.
func BuildHalo(run *agd.Chunk, keyCol, lo, hi int) (*agd.Chunk, error) {
	b := agd.NewChunkBuilder(agd.TypeRaw, 0)
	for r := lo; r < hi; r++ {
		f, err := agdsort.RunField(run, keyCol, r)
		if err != nil {
			return nil, err
		}
		b.Append(f)
	}
	return b.Chunk(), nil
}

// Skew is the partition imbalance measure the cluster report carries:
// largest partition over mean partition size (1.0 = perfectly even; 0 when
// there are no rows).
func Skew(partRows []int64) float64 {
	if len(partRows) == 0 {
		return 0
	}
	var max, sum int64
	for _, n := range partRows {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(partRows))
	return float64(max) / mean
}
