package shuffle

import (
	"math/rand"
	"sort"
	"testing"
)

// summarize fabricates per-run summaries the way map tasks do: each run
// holds a sorted slice of keys and contributes SampleCount equi-spaced
// samples.
func summarize(runs [][]uint64) []RunSummary {
	out := make([]RunSummary, len(runs))
	for i, keys := range runs {
		s := RunSummary{Rows: len(keys)}
		if len(keys) > 0 {
			step := len(keys) / SampleCount
			if step < 1 {
				step = 1
			}
			for r := 0; r < len(keys); r += step {
				s.Samples = append(s.Samples, Sample{Key: keys[r]})
			}
		}
		out[i] = s
	}
	return out
}

// partition counts how population keys split across the splitters (equal
// keys go right of their cut, matching agdsort.CutRun).
func partition(keys []uint64, cuts Cuts, p int) []int64 {
	rows := make([]int64, p)
	for _, k := range keys {
		part := 0
		for _, sp := range cuts.Splitters {
			if k >= sp.Key {
				part++
			}
		}
		rows[part]++
	}
	return rows
}

// TestSelectCutsSkewProperty: over fixed-seed uniform, clustered and
// exponential-ish key populations split into runs, the chosen splitters
// must keep partition skew bounded whenever keys are distinct enough to
// allow balance.
func TestSelectCutsSkewProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(rng.Intn(1 << 30)) },
		"clustered": func() uint64 { return uint64(rng.Intn(64))*1e6 + uint64(rng.Intn(1000)) },
		"heavytail": func() uint64 { return uint64(rng.ExpFloat64() * 1e6) },
	}
	for name, draw := range distributions {
		for _, p := range []int{2, 3, 4, 8} {
			const n, nRuns = 8000, 5
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = draw()
			}
			runs := make([][]uint64, nRuns)
			for i, k := range keys {
				runs[i%nRuns] = append(runs[i%nRuns], k)
			}
			for _, r := range runs {
				sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
			}
			cuts, err := SelectCuts(summarize(runs), p, false)
			if err != nil {
				t.Fatalf("%s/p=%d: %v", name, p, err)
			}
			if len(cuts.Splitters) != p-1 {
				t.Fatalf("%s/p=%d: %d splitters", name, p, len(cuts.Splitters))
			}
			for i := 1; i < len(cuts.Splitters); i++ {
				if cuts.Splitters[i].Key < cuts.Splitters[i-1].Key {
					t.Fatalf("%s/p=%d: splitters not sorted", name, p)
				}
			}
			rows := partition(keys, cuts, p)
			var total int64
			for _, r := range rows {
				total += r
			}
			if total != n {
				t.Fatalf("%s/p=%d: partitions hold %d rows, want %d", name, p, total, n)
			}
			// Equi-depth sampling at 64 samples/run keeps the largest
			// partition within ~2x of the mean on these populations.
			if skew := Skew(rows); skew > 2.0 {
				t.Errorf("%s/p=%d: skew %.2f > 2.0 (rows %v)", name, p, skew, rows)
			}
		}
	}
}

// TestSelectCutsConstantKeys: indistinguishable keys collapse every
// splitter onto the same value — legal (all rows land right of the cuts),
// just maximally skewed.
func TestSelectCutsConstantKeys(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = 7
	}
	cuts, err := SelectCuts(summarize([][]uint64{keys}), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := partition(keys, cuts, 4)
	if rows[3] != 1000 {
		t.Errorf("constant keys should all land in the last partition, got %v", rows)
	}
	if skew := Skew(rows); skew != 4.0 {
		t.Errorf("skew = %v, want 4.0 (one partition holds everything)", skew)
	}
}

// TestSelectCutsHalo: halo width is 2*maxSpan+1 for marking pipelines and
// absent otherwise.
func TestSelectCutsHalo(t *testing.T) {
	sums := []RunSummary{{Rows: 10, Samples: []Sample{{Key: 5}}, MaxSpan: 40}}
	cuts, err := SelectCuts(sums, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if cuts.Halo != 81 {
		t.Errorf("Halo = %d, want 81", cuts.Halo)
	}
	cuts, err = SelectCuts(sums, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if cuts.Halo != 0 {
		t.Errorf("Halo = %d, want 0 without markdup", cuts.Halo)
	}
}

// TestSelectCutsErrors: zero partitions and empty sampling are rejected.
func TestSelectCutsErrors(t *testing.T) {
	if _, err := SelectCuts(nil, 0, false); err == nil {
		t.Error("p=0 did not error")
	}
	if _, err := SelectCuts([]RunSummary{{Rows: 0}}, 2, false); err == nil {
		t.Error("zero rows did not error")
	}
}

// TestEncodeDecodeRoundTrip: payloads survive the line protocol as single
// space-free tokens.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := RunSummary{Rows: 3, Samples: []Sample{{Key: 9, Full: []byte("read/1\x00x")}}, MaxSpan: 12}
	tok, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tok {
		if c == ' ' || c == '\n' {
			t.Fatalf("token contains whitespace: %q", tok)
		}
	}
	var out RunSummary
	if err := Decode(tok, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != in.Rows || out.MaxSpan != in.MaxSpan || len(out.Samples) != 1 ||
		out.Samples[0].Key != 9 || string(out.Samples[0].Full) != "read/1\x00x" {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if err := Decode("!!!not-base64!!!", &out); err == nil {
		t.Error("bad token did not error")
	}
}

// TestSkew covers the imbalance measure's edges.
func TestSkew(t *testing.T) {
	cases := []struct {
		rows []int64
		want float64
	}{
		{nil, 0},
		{[]int64{0, 0}, 0},
		{[]int64{10, 10}, 1.0},
		{[]int64{30, 10}, 1.5},
	}
	for _, c := range cases {
		if got := Skew(c.rows); got != c.want {
			t.Errorf("Skew(%v) = %v, want %v", c.rows, got, c.want)
		}
	}
}
