// Package tco implements the total-cost-of-ownership analysis of §6.1 and
// Table 3: cluster hardware costs, the 5-year TCO factor, cost per
// alignment, per-genome storage cost, and the Amazon Glacier comparison.
package tco

import "fmt"

// Model holds the cost parameters. Defaults reproduce Table 3.
type Model struct {
	ComputeServerCost float64 // $ per compute server
	StorageServerCost float64 // $ per storage server
	FabricPortCost    float64 // $ per used fabric port

	ComputeServers int
	StorageServers int
	FabricPorts    int

	// TCOFactor scales hardware cost to 5-year TCO (power, cooling,
	// facility, administration — the Hamilton datacenter-cost model the
	// paper cites). Table 3's $613K → $943K implies ≈1.538.
	TCOFactor float64
	Years     float64

	// SecondsPerAlignment is one server's end-to-end time per genome
	// (≈600 s: 22.53 Gbases at 45.45 Mbases/s plus I/O overhead).
	SecondsPerAlignment float64

	// Storage capacity/cost parameters.
	UsableCapacityTB float64 // storage cluster usable capacity (126 TB)
	GenomeSizeGB     float64 // AGD genome size (16 GB)

	// GlacierPerGBMonth is Amazon Glacier's $/GB/month price the paper
	// quotes ($0.007).
	GlacierPerGBMonth float64
}

// Default returns the paper's Table 3 parameters.
func Default() Model {
	return Model{
		ComputeServerCost: 8450,
		StorageServerCost: 7575,
		FabricPortCost:    792,

		ComputeServers: 60,
		StorageServers: 7,
		FabricPorts:    67,

		TCOFactor: 1.538,
		Years:     5,

		SecondsPerAlignment: 600,

		UsableCapacityTB: 126,
		GenomeSizeGB:     16,

		GlacierPerGBMonth: 0.007,
	}
}

// LineItem is one row of the Table 3 cost table.
type LineItem struct {
	Item     string
	UnitCost float64
	Units    int
	Total    float64
}

// Report is the full Table 3 plus the §6.1 derived quantities.
type Report struct {
	Items         []LineItem
	HardwareTotal float64
	TCO5yr        float64

	AlignmentsPerDay    float64 // cluster capacity at 100% utilization
	CostPerAlignment    float64 // dollars
	GenomesStorable     float64 // usable capacity / genome size
	StoragePerGenome    float64 // storage-server cost / capacity in genomes
	GlacierPerGenome5yr float64 // Glacier cost of one genome for the lifetime

	// Single-server scenario (§6.1 case 1).
	SingleServerAlignmentsPerDay float64
	SingleServerCostPerAlignment float64
}

// Evaluate computes the report.
func (m Model) Evaluate() (Report, error) {
	if m.ComputeServers <= 0 || m.SecondsPerAlignment <= 0 || m.Years <= 0 {
		return Report{}, fmt.Errorf("tco: invalid model %+v", m)
	}
	r := Report{
		Items: []LineItem{
			{Item: "Compute Server", UnitCost: m.ComputeServerCost, Units: m.ComputeServers,
				Total: m.ComputeServerCost * float64(m.ComputeServers)},
			{Item: "Storage server", UnitCost: m.StorageServerCost, Units: m.StorageServers,
				Total: m.StorageServerCost * float64(m.StorageServers)},
			{Item: "Fabric ports", UnitCost: m.FabricPortCost, Units: m.FabricPorts,
				Total: m.FabricPortCost * float64(m.FabricPorts)},
		},
	}
	for _, it := range r.Items {
		r.HardwareTotal += it.Total
	}
	r.TCO5yr = r.HardwareTotal * m.TCOFactor

	perServerPerDay := 86400 / m.SecondsPerAlignment
	r.AlignmentsPerDay = perServerPerDay * float64(m.ComputeServers)
	lifetimeAlignments := r.AlignmentsPerDay * 365 * m.Years
	r.CostPerAlignment = r.TCO5yr / lifetimeAlignments

	r.GenomesStorable = m.UsableCapacityTB * 1000 / m.GenomeSizeGB
	storageCost := m.StorageServerCost * float64(m.StorageServers)
	r.StoragePerGenome = storageCost / r.GenomesStorable
	r.GlacierPerGenome5yr = m.GlacierPerGBMonth * m.GenomeSizeGB * 12 * m.Years

	r.SingleServerAlignmentsPerDay = perServerPerDay
	r.SingleServerCostPerAlignment = m.ComputeServerCost * m.TCOFactor /
		(perServerPerDay * 365 * m.Years)
	return r, nil
}

// ScaleForGenomes returns the compute/storage machine counts needed to
// sequence-and-store the given number of genomes per day, respecting the
// paper's 60:7 compute-to-storage "not to exceed" ratio (§6.1 case 3).
func (m Model) ScaleForGenomes(genomesPerDay float64) (computeServers, storageServers int) {
	perServerPerDay := 86400 / m.SecondsPerAlignment
	computeServers = int(genomesPerDay/perServerPerDay + 0.999)
	if computeServers < 1 {
		computeServers = 1
	}
	// One storage server per 60/7 compute servers, rounded up.
	storageServers = (computeServers*7 + 59) / 60
	if storageServers < 1 {
		storageServers = 1
	}
	return computeServers, storageServers
}
