// Package tco implements the total-cost-of-ownership analysis of §6.1 and
// Table 3: cluster hardware costs, the 5-year TCO factor, cost per
// alignment, per-genome storage cost, and the Amazon Glacier comparison.
package tco

import (
	"fmt"
	"time"
)

// Model holds the cost parameters. Defaults reproduce Table 3.
type Model struct {
	ComputeServerCost float64 // $ per compute server
	StorageServerCost float64 // $ per storage server
	FabricPortCost    float64 // $ per used fabric port

	ComputeServers int
	StorageServers int
	FabricPorts    int

	// TCOFactor scales hardware cost to 5-year TCO (power, cooling,
	// facility, administration — the Hamilton datacenter-cost model the
	// paper cites). Table 3's $613K → $943K implies ≈1.538.
	TCOFactor float64
	Years     float64

	// SecondsPerAlignment is one server's end-to-end time per genome
	// (≈600 s: 22.53 Gbases at 45.45 Mbases/s plus I/O overhead).
	SecondsPerAlignment float64

	// Storage capacity/cost parameters.
	UsableCapacityTB float64 // storage cluster usable capacity (126 TB)
	GenomeSizeGB     float64 // AGD genome size (16 GB)

	// GlacierPerGBMonth is Amazon Glacier's $/GB/month price the paper
	// quotes ($0.007).
	GlacierPerGBMonth float64
}

// Default returns the paper's Table 3 parameters.
func Default() Model {
	return Model{
		ComputeServerCost: 8450,
		StorageServerCost: 7575,
		FabricPortCost:    792,

		ComputeServers: 60,
		StorageServers: 7,
		FabricPorts:    67,

		TCOFactor: 1.538,
		Years:     5,

		SecondsPerAlignment: 600,

		UsableCapacityTB: 126,
		GenomeSizeGB:     16,

		GlacierPerGBMonth: 0.007,
	}
}

// LineItem is one row of the Table 3 cost table.
type LineItem struct {
	Item     string
	UnitCost float64
	Units    int
	Total    float64
}

// Report is the full Table 3 plus the §6.1 derived quantities.
type Report struct {
	Items         []LineItem
	HardwareTotal float64
	TCO5yr        float64

	AlignmentsPerDay    float64 // cluster capacity at 100% utilization
	CostPerAlignment    float64 // dollars
	GenomesStorable     float64 // usable capacity / genome size
	StoragePerGenome    float64 // storage-server cost / capacity in genomes
	GlacierPerGenome5yr float64 // Glacier cost of one genome for the lifetime

	// Single-server scenario (§6.1 case 1).
	SingleServerAlignmentsPerDay float64
	SingleServerCostPerAlignment float64
}

// Evaluate computes the report.
func (m Model) Evaluate() (Report, error) {
	if m.ComputeServers <= 0 || m.SecondsPerAlignment <= 0 || m.Years <= 0 {
		return Report{}, fmt.Errorf("tco: invalid model %+v", m)
	}
	r := Report{
		Items: []LineItem{
			{Item: "Compute Server", UnitCost: m.ComputeServerCost, Units: m.ComputeServers,
				Total: m.ComputeServerCost * float64(m.ComputeServers)},
			{Item: "Storage server", UnitCost: m.StorageServerCost, Units: m.StorageServers,
				Total: m.StorageServerCost * float64(m.StorageServers)},
			{Item: "Fabric ports", UnitCost: m.FabricPortCost, Units: m.FabricPorts,
				Total: m.FabricPortCost * float64(m.FabricPorts)},
		},
	}
	for _, it := range r.Items {
		r.HardwareTotal += it.Total
	}
	r.TCO5yr = r.HardwareTotal * m.TCOFactor

	perServerPerDay := 86400 / m.SecondsPerAlignment
	r.AlignmentsPerDay = perServerPerDay * float64(m.ComputeServers)
	lifetimeAlignments := r.AlignmentsPerDay * 365 * m.Years
	r.CostPerAlignment = r.TCO5yr / lifetimeAlignments

	r.GenomesStorable = m.UsableCapacityTB * 1000 / m.GenomeSizeGB
	storageCost := m.StorageServerCost * float64(m.StorageServers)
	r.StoragePerGenome = storageCost / r.GenomesStorable
	r.GlacierPerGenome5yr = m.GlacierPerGBMonth * m.GenomeSizeGB * 12 * m.Years

	r.SingleServerAlignmentsPerDay = perServerPerDay
	r.SingleServerCostPerAlignment = m.ComputeServerCost * m.TCOFactor /
		(perServerPerDay * 365 * m.Years)
	return r, nil
}

// ScaleForGenomes returns the compute/storage machine counts needed to
// sequence-and-store the given number of genomes per day, respecting the
// paper's 60:7 compute-to-storage "not to exceed" ratio (§6.1 case 3).
func (m Model) ScaleForGenomes(genomesPerDay float64) (computeServers, storageServers int) {
	perServerPerDay := 86400 / m.SecondsPerAlignment
	computeServers = int(genomesPerDay/perServerPerDay + 0.999)
	if computeServers < 1 {
		computeServers = 1
	}
	// One storage server per 60/7 compute servers, rounded up.
	storageServers = (computeServers*7 + 59) / 60
	if storageServers < 1 {
		storageServers = 1
	}
	return computeServers, storageServers
}

// CPUHourRate is the model's dollars per compute-server hour over the
// ownership period — the rate storage-aware runtime policies use to price
// CPU they spend against transfer time they save.
func (m Model) CPUHourRate() float64 {
	return m.ComputeServerCost * m.TCOFactor / (m.Years * 365 * 24)
}

// StorageProfile is the measured read behavior of the attached store, as
// reported by storage.RetryStore.ReadProfile: the evidence a storage-aware
// policy decides on. A zero Samples count means the store is unprofiled and
// policies must not guess.
type StorageProfile struct {
	ReadLatency time.Duration // median per-read latency
	ReadMBps    float64       // mean observed throughput, MB/s
	Samples     int           // reads behind the numbers
}

// SpillPolicy prices compressing a sort's spilled superchunk run against
// writing it raw, using the measured store profile (BioWorkbench's point:
// drive storage/compression choices from workload measurements, not flags).
// Compressing trades CPU seconds — compress at spill, decompress at merge —
// for transfer seconds on both the Put and the later Get of the run. On a
// local store the transfer is nearly free and compression always loses; on
// a remote store past the crossover run size, transfer dominates and
// compression wins. Both sides are priced through the TCO model's $/CPU-hour
// so the decision is a dollar comparison, also usable for accounting.
type SpillPolicy struct {
	Profile StorageProfile
	// CompressMBps and DecompressMBps are the gzip (BestSpeed) encode and
	// decode rates assumed for run payloads; Ratio is the compressed size
	// fraction. Zero values take the defaults measured for AGD base/qual
	// payloads on one core.
	CompressMBps   float64
	DecompressMBps float64
	Ratio          float64
	// LocalLatency is the read latency at or below which the store is
	// considered local and spills are never compressed. Zero takes
	// DefaultLocalLatency.
	LocalLatency time.Duration
	// DollarsPerCPUHour prices the CPU side; zero takes the default
	// model's CPUHourRate.
	DollarsPerCPUHour float64
}

// Defaults for SpillPolicy's zero fields.
const (
	// DefaultCompressMBps and DefaultDecompressMBps are single-core gzip
	// BestSpeed rates on chunked genomic payloads.
	DefaultCompressMBps   = 120
	DefaultDecompressMBps = 400
	// DefaultSpillRatio is the typical compressed fraction of superchunk
	// run payloads (bases + quals + metadata mix).
	DefaultSpillRatio = 0.45
	// DefaultLocalLatency separates local disks (sub-millisecond to ~2 ms
	// reads) from anything with real round trips.
	DefaultLocalLatency = 2 * time.Millisecond
)

// SpillDecision is the priced outcome for one run.
type SpillDecision struct {
	Compress bool
	RunBytes int64
	// TransferSavedSec is the wall the smaller payload saves across the
	// run's Put and later Get; CPUSpentSec what encode+decode cost.
	TransferSavedSec float64
	CPUSpentSec      float64
	// DollarDelta is CPU spent minus transfer saved, priced at the CPU-hour
	// rate: negative means compressing is the cheaper run.
	DollarDelta float64
	// Reason is a short machine-greppable tag: "unprofiled", "local",
	// "transfer-dominated" or "cpu-dominated".
	Reason string
}

// Decide prices one spill run of the given size.
func (p SpillPolicy) Decide(runBytes int64) SpillDecision {
	d := SpillDecision{RunBytes: runBytes}
	compressMBps := p.CompressMBps
	if compressMBps <= 0 {
		compressMBps = DefaultCompressMBps
	}
	decompressMBps := p.DecompressMBps
	if decompressMBps <= 0 {
		decompressMBps = DefaultDecompressMBps
	}
	ratio := p.Ratio
	if ratio <= 0 || ratio >= 1 {
		ratio = DefaultSpillRatio
	}
	localLat := p.LocalLatency
	if localLat <= 0 {
		localLat = DefaultLocalLatency
	}
	rate := p.DollarsPerCPUHour
	if rate <= 0 {
		rate = Default().CPUHourRate()
	}
	mb := float64(runBytes) / 1e6
	d.CPUSpentSec = mb/compressMBps + ratio*mb/decompressMBps
	if p.Profile.Samples == 0 {
		// No evidence about the store; never burn CPU on a guess.
		d.Reason = "unprofiled"
		d.DollarDelta = d.CPUSpentSec * rate / 3600
		return d
	}
	if p.Profile.ReadLatency <= localLat {
		d.Reason = "local"
		d.DollarDelta = d.CPUSpentSec * rate / 3600
		return d
	}
	if p.Profile.ReadMBps > 0 {
		// The run is written once and read back once at merge; the smaller
		// payload saves (1-ratio) of both transfers.
		d.TransferSavedSec = 2 * mb * (1 - ratio) / p.Profile.ReadMBps
	}
	d.DollarDelta = (d.CPUSpentSec - d.TransferSavedSec) * rate / 3600
	if d.TransferSavedSec > d.CPUSpentSec {
		d.Compress = true
		d.Reason = "transfer-dominated"
	} else {
		d.Reason = "cpu-dominated"
	}
	return d
}
