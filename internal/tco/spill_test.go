package tco

import (
	"testing"
	"time"
)

// crossoverMBps computes the store throughput at which compressing a spill
// run breaks even under the default encode/decode rates: below it transfer
// dominates (compress), above it CPU dominates (skip). Both sides scale
// linearly in run size, so the decision pivots on the measured profile, not
// the run.
func crossoverMBps() float64 {
	cpuPerMB := 1/float64(DefaultCompressMBps) + DefaultSpillRatio/float64(DefaultDecompressMBps)
	return 2 * (1 - DefaultSpillRatio) / cpuPerMB
}

func TestSpillPolicyCrossover(t *testing.T) {
	x := crossoverMBps()
	if x < 50 || x > 500 {
		t.Fatalf("default crossover %.1f MB/s outside plausible range", x)
	}
	remote := func(mbps float64) SpillPolicy {
		return SpillPolicy{Profile: StorageProfile{
			ReadLatency: 25 * time.Millisecond,
			ReadMBps:    mbps,
			Samples:     32,
		}}
	}
	const run = 8 << 20

	// Slow remote store (transfer-dominated side of the crossover).
	d := remote(x / 2).Decide(run)
	if !d.Compress || d.Reason != "transfer-dominated" {
		t.Fatalf("slow store: %+v, want compress/transfer-dominated", d)
	}
	if d.DollarDelta >= 0 {
		t.Fatalf("slow store: dollar delta %.6f, want negative (compressing is cheaper)", d.DollarDelta)
	}
	if d.TransferSavedSec <= d.CPUSpentSec {
		t.Fatalf("slow store: saved %.3fs <= spent %.3fs", d.TransferSavedSec, d.CPUSpentSec)
	}

	// Fast remote store (CPU-dominated side).
	d = remote(x * 2).Decide(run)
	if d.Compress || d.Reason != "cpu-dominated" {
		t.Fatalf("fast store: %+v, want skip/cpu-dominated", d)
	}
	if d.DollarDelta <= 0 {
		t.Fatalf("fast store: dollar delta %.6f, want positive (compressing would cost)", d.DollarDelta)
	}
}

func TestSpillPolicyGuards(t *testing.T) {
	// Unprofiled store: never compress on a guess.
	d := SpillPolicy{}.Decide(8 << 20)
	if d.Compress || d.Reason != "unprofiled" {
		t.Fatalf("unprofiled: %+v", d)
	}

	// Local store: sub-threshold latency skips regardless of throughput.
	d = SpillPolicy{Profile: StorageProfile{
		ReadLatency: time.Millisecond,
		ReadMBps:    5, // would be transfer-dominated if it were remote
		Samples:     100,
	}}.Decide(8 << 20)
	if d.Compress || d.Reason != "local" {
		t.Fatalf("local: %+v", d)
	}

	// Zero-size run must not panic or produce NaNs that flip the decision.
	d = SpillPolicy{Profile: StorageProfile{
		ReadLatency: 25 * time.Millisecond, ReadMBps: 10, Samples: 8,
	}}.Decide(0)
	if d.Compress {
		t.Fatalf("zero-byte run compressed: %+v", d)
	}
}

func TestCPUHourRate(t *testing.T) {
	rate := Default().CPUHourRate()
	// $8450 × 1.538 over 5 years ≈ $0.297/hour.
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("CPUHourRate = %.4f, want ≈ 0.30", rate)
	}
}
