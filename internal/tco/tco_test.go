package tco

import (
	"math"
	"testing"
)

func TestTable3Reproduction(t *testing.T) {
	r, err := Default().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3: $507K compute, $53K storage, $53K fabric, $613K total,
	// $943K TCO(5yr).
	if r.Items[0].Total != 507_000 {
		t.Fatalf("compute total = %.0f", r.Items[0].Total)
	}
	if r.Items[1].Total != 53_025 {
		t.Fatalf("storage total = %.0f", r.Items[1].Total)
	}
	if r.Items[2].Total != 53_064 {
		t.Fatalf("fabric total = %.0f", r.Items[2].Total)
	}
	if math.Abs(r.HardwareTotal-613_089) > 1 {
		t.Fatalf("hardware total = %.0f, want ≈613K", r.HardwareTotal)
	}
	if r.TCO5yr < 930_000 || r.TCO5yr > 950_000 {
		t.Fatalf("TCO = %.0f, want ≈943K", r.TCO5yr)
	}
	// Cost/alignment ≈ 6.07¢ (we land within a cent).
	if r.CostPerAlignment < 0.05 || r.CostPerAlignment > 0.07 {
		t.Fatalf("cost/alignment = %.4f, want ≈0.0607", r.CostPerAlignment)
	}
	// §6.1: storage $8.83/genome, ~6000 genomes, Glacier $6.72.
	if math.Abs(r.GenomesStorable-7875) > 2000 {
		// 126 TB / 16 GB = 7875; the paper rounds to ~6000 with overheads.
		t.Fatalf("genomes storable = %.0f", r.GenomesStorable)
	}
	if r.StoragePerGenome < 5 || r.StoragePerGenome > 10 {
		t.Fatalf("storage/genome = %.2f, want ≈8.83", r.StoragePerGenome)
	}
	if math.Abs(r.GlacierPerGenome5yr-6.72) > 0.01 {
		t.Fatalf("glacier = %.2f, want 6.72", r.GlacierPerGenome5yr)
	}
	// Single server ≈144/day at ~4-5¢.
	if r.SingleServerAlignmentsPerDay != 144 {
		t.Fatalf("single-server/day = %.1f, want 144", r.SingleServerAlignmentsPerDay)
	}
	if r.SingleServerCostPerAlignment < 0.035 || r.SingleServerCostPerAlignment > 0.055 {
		t.Fatalf("single-server cost = %.4f, want ≈0.041–0.05", r.SingleServerCostPerAlignment)
	}
	// Storage dwarfs compute per genome: two orders of magnitude (§6.1).
	if ratio := r.StoragePerGenome / r.CostPerAlignment; ratio < 50 {
		t.Fatalf("storage/compute cost ratio = %.1f, want ≫", ratio)
	}
}

func TestComputeDominatesClusterCost(t *testing.T) {
	r, err := Default().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Abstract claim: "server cost dominates for a balanced system".
	if r.Items[0].Total < r.Items[1].Total+r.Items[2].Total {
		t.Fatal("compute servers should dominate cluster cost")
	}
}

func TestScaleForGenomes(t *testing.T) {
	m := Default()
	c, s := m.ScaleForGenomes(8640) // exactly the default cluster's capacity
	if c != 60 {
		t.Fatalf("compute = %d, want 60", c)
	}
	if s != 7 {
		t.Fatalf("storage = %d, want 7", s)
	}
	// 100,000 Genomes-style burst: ~10x the cluster.
	c, s = m.ScaleForGenomes(86400)
	if c != 600 || s != 70 {
		t.Fatalf("nation scale = %d/%d", c, s)
	}
	c, s = m.ScaleForGenomes(1)
	if c != 1 || s != 1 {
		t.Fatalf("minimum scale = %d/%d", c, s)
	}
}

func TestEvaluateValidation(t *testing.T) {
	m := Default()
	m.ComputeServers = 0
	if _, err := m.Evaluate(); err == nil {
		t.Fatal("invalid model accepted")
	}
}
