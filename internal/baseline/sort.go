package baseline

import (
	"compress/gzip"
	"io"
	"runtime"

	"persona/internal/agd"
	"persona/internal/formats/bam"
	"persona/internal/formats/sam"
)

// SamtoolsSortBAM models `samtools sort` with threads: it parses an entire
// BAM stream into row records, sorts by coordinate, and writes a sorted BAM
// with parallel BGZF compression. All columns of every record are
// decompressed, parsed and re-compressed — exactly the row-orientation tax
// Table 2 measures against AGD.
func SamtoolsSortBAM(in io.Reader, out io.Writer) (int, error) {
	r, err := bam.NewReader(in)
	if err != nil {
		return 0, errRecordf("samtools-sort", err)
	}
	refs := r.Refs()
	idx := refIndex(refs)
	var recs []sortKeyed
	for r.Scan() {
		rec := r.Record()
		recs = append(recs, keyOf(&rec, idx))
	}
	if err := r.Err(); err != nil {
		return 0, errRecordf("samtools-sort", err)
	}
	coordinateSort(recs)
	w, err := bam.NewWriterParallel(out, refs, "coordinate", runtime.NumCPU())
	if err != nil {
		return 0, errRecordf("samtools-sort", err)
	}
	for i := range recs {
		if err := w.Write(&recs[i].rec); err != nil {
			return 0, errRecordf("samtools-sort", err)
		}
	}
	if err := w.Close(); err != nil {
		return 0, errRecordf("samtools-sort", err)
	}
	return len(recs), nil
}

// ConvertSAMToBAM models the `samtools view -b` conversion step that Table 2
// bills separately ("Samtools requires sorting input in BAM format").
func ConvertSAMToBAM(in io.Reader, out io.Writer, refs []agd.RefSeq) (int, error) {
	sc := sam.NewScanner(in)
	w, err := bam.NewWriter(out, refs, "unsorted")
	if err != nil {
		return 0, errRecordf("sam2bam", err)
	}
	n := 0
	for sc.Scan() {
		rec := sc.Record()
		if err := w.Write(&rec); err != nil {
			return n, errRecordf("sam2bam", err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, errRecordf("sam2bam", err)
	}
	return n, w.Close()
}

// PicardSortSAM models Picard's SortSam: strictly single-threaded (§5.6:
// "Picard does not have an option for multithreading"), SAM text in, sorted
// BAM out (SortSam's usual deployment), with per-record defensive copies
// standing in for Picard's per-record JVM object allocation.
func PicardSortSAM(in io.Reader, out io.Writer, refs []agd.RefSeq) (int, error) {
	sc := sam.NewScanner(in)
	idx := refIndex(refs)
	var recs []sortKeyed
	for sc.Scan() {
		rec := sc.Record()
		// Deliberate per-record copy churn: Picard materializes a
		// SAMRecord object graph per row.
		cp := rec
		cp.Name = string(append([]byte{}, rec.Name...))
		cp.Seq = string(append([]byte{}, rec.Seq...))
		cp.Qual = string(append([]byte{}, rec.Qual...))
		cp.Cigar = string(append([]byte{}, rec.Cigar...))
		recs = append(recs, keyOf(&cp, idx))
	}
	if err := sc.Err(); err != nil {
		return 0, errRecordf("picard-sort", err)
	}
	coordinateSort(recs)
	// Picard's Deflater runs at its default level (~5-6) and cannot be
	// parallelized; together with the single-threaded sort this is where
	// the paper's 5.15x gap comes from.
	w, err := bam.NewWriterLevel(out, refs, "coordinate", gzip.DefaultCompression)
	if err != nil {
		return 0, errRecordf("picard-sort", err)
	}
	for i := range recs {
		if err := w.Write(&recs[i].rec); err != nil {
			return 0, errRecordf("picard-sort", err)
		}
	}
	if err := w.Close(); err != nil {
		return 0, errRecordf("picard-sort", err)
	}
	return len(recs), nil
}
