// Package baseline reimplements the row-oriented tools the paper compares
// against (§5): a standalone SNAP-style aligner pipeline (gzipped FASTQ in,
// SAM text out), samtools-style BAM sorting (with and without the SAM→BAM
// conversion the paper bills separately in Table 2), a Picard-style
// single-threaded sort, and a Samblaster-style streaming duplicate marker.
//
// These exist so the evaluation harness can measure Persona against the
// same algorithmic structure the original tools have: whole-row parsing,
// monolithic row-oriented files, and (for Picard) single-threaded
// per-record object churn. See DESIGN.md §3 on why reimplementation
// preserves the comparison's shape.
package baseline

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/reads"
)

// CountingReader counts bytes read through it (I/O accounting for Table 1).
type CountingReader struct {
	R io.Reader
	N int64
}

func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	return n, err
}

// CountingWriter counts bytes written through it.
type CountingWriter struct {
	W io.Writer
	N int64
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}

// StandaloneConfig configures the standalone aligner run.
type StandaloneConfig struct {
	// Threads is the number of aligner workers (default 1).
	Threads int
	// Gzipped indicates the FASTQ input is gzip-compressed.
	Gzipped bool
	// BatchSize is reads per work item (default 1024).
	BatchSize int
	// AlignerConfig tunes the embedded SNAP algorithm.
	AlignerConfig snap.Config
}

// StandaloneStats reports a standalone run.
type StandaloneStats struct {
	Reads   int64
	Aligned int64
}

// RunStandaloneAligner is the "SNAP standalone" baseline of Table 1 and
// Fig. 5/6: a self-contained row-oriented pipeline that parses FASTQ,
// aligns, and writes SAM text, with an ad-hoc thread pool instead of
// Persona's dataflow.
func RunStandaloneAligner(idx *snap.Index, refs []agd.RefSeq, in io.Reader, out io.Writer, cfg StandaloneConfig) (StandaloneStats, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	var sc *fastq.Scanner
	if cfg.Gzipped {
		var err error
		sc, err = fastq.NewGzipScanner(in)
		if err != nil {
			return StandaloneStats{}, err
		}
	} else {
		sc = fastq.NewScanner(in)
	}

	refmap := sam.NewRefMap(refs)
	w, err := sam.NewWriter(out, refs, "unsorted")
	if err != nil {
		return StandaloneStats{}, err
	}

	type batch []reads.Read
	work := make(chan batch, cfg.Threads)
	var stats StandaloneStats
	var mu sync.Mutex // serializes SAM output
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := snap.NewAligner(idx, cfg.AlignerConfig)
			for b := range work {
				recs := make([]sam.Record, 0, len(b))
				var aligned int64
				for i := range b {
					res := a.AlignRead(b[i].Bases)
					if !res.IsUnmapped() {
						aligned++
					}
					rec, err := sam.FromResult(b[i].Meta, string(b[i].Bases), string(b[i].Quals), &res, refmap)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					recs = append(recs, rec)
				}
				mu.Lock()
				for i := range recs {
					if err := w.Write(&recs[i]); err != nil {
						errOnce.Do(func() { firstErr = err })
						mu.Unlock()
						return
					}
				}
				stats.Reads += int64(len(recs))
				stats.Aligned += aligned
				mu.Unlock()
			}
		}()
	}

	cur := make(batch, 0, cfg.BatchSize)
	for sc.Scan() {
		cur = append(cur, sc.Read())
		if len(cur) == cfg.BatchSize {
			work <- cur
			cur = make(batch, 0, cfg.BatchSize)
		}
	}
	if len(cur) > 0 {
		work <- cur
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return stats, firstErr
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	return stats, w.Flush()
}

// sortKeyed pairs a record with its coordinate key for sorting.
type sortKeyed struct {
	refIdx int
	pos    int64
	rec    sam.Record
}

func coordinateSort(recs []sortKeyed) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].refIdx != recs[j].refIdx {
			return recs[i].refIdx < recs[j].refIdx
		}
		return recs[i].pos < recs[j].pos
	})
}

func refIndex(refs []agd.RefSeq) map[string]int {
	m := make(map[string]int, len(refs))
	for i, r := range refs {
		m[r.Name] = i
	}
	return m
}

func keyOf(rec *sam.Record, refIdx map[string]int) sortKeyed {
	k := sortKeyed{refIdx: len(refIdx) + 1, pos: 1 << 62, rec: *rec} // unmapped last
	if rec.Ref != "*" && rec.Ref != "" {
		if i, ok := refIdx[rec.Ref]; ok {
			k.refIdx, k.pos = i, rec.Pos
		}
	}
	return k
}

// errRecordf keeps error formatting consistent across the baselines.
func errRecordf(tool string, err error) error {
	return fmt.Errorf("baseline/%s: %w", tool, err)
}
