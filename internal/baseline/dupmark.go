package baseline

import (
	"io"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/formats/sam"
)

// dupSig is the Samblaster duplicate signature over SAM rows.
type dupSig struct {
	ref     string
	pos     int64
	reverse bool
	matePos int64
}

// DupStats reports a duplicate-marking pass.
type DupStats struct {
	Reads      int64
	Duplicates int64
}

// SamblasterMark models Samblaster: it streams SAM text, computes each
// read's unclipped-position signature, flags duplicates, and writes SAM
// back out. Unlike Persona's results-column marking (§5.6), every row must
// be fully parsed and re-serialized.
func SamblasterMark(in io.Reader, out io.Writer, refs []agd.RefSeq) (DupStats, error) {
	sc := sam.NewScanner(in)
	w, err := sam.NewWriter(out, refs, "")
	if err != nil {
		return DupStats{}, errRecordf("samblaster", err)
	}
	seen := make(map[dupSig]struct{})
	var stats DupStats
	for sc.Scan() {
		rec := sc.Record()
		stats.Reads++
		if rec.Flags&agd.FlagUnmapped == 0 {
			sig, err := samSignature(&rec)
			if err != nil {
				return stats, errRecordf("samblaster", err)
			}
			if _, dup := seen[sig]; dup {
				rec.Flags |= agd.FlagDuplicate
				stats.Duplicates++
			} else {
				seen[sig] = struct{}{}
			}
		}
		if err := w.Write(&rec); err != nil {
			return stats, errRecordf("samblaster", err)
		}
	}
	if err := sc.Err(); err != nil {
		return stats, errRecordf("samblaster", err)
	}
	return stats, w.Flush()
}

// samSignature computes the unclipped 5' signature of a SAM row.
func samSignature(rec *sam.Record) (dupSig, error) {
	cigar, err := align.ParseCigar(rec.Cigar)
	if err != nil {
		return dupSig{}, err
	}
	reverse := rec.Flags&agd.FlagReverse != 0
	pos := rec.Pos
	if !reverse {
		if len(cigar) > 0 && (cigar[0].Op == align.CigarSoftClip || cigar[0].Op == align.CigarHardClip) {
			pos -= int64(cigar[0].Len)
		}
	} else {
		pos += int64(cigar.RefLen())
		if n := len(cigar); n > 0 && (cigar[n-1].Op == align.CigarSoftClip || cigar[n-1].Op == align.CigarHardClip) {
			pos += int64(cigar[n-1].Len)
		}
		pos--
	}
	sig := dupSig{ref: rec.Ref, pos: pos, reverse: reverse, matePos: -1}
	if rec.Flags&agd.FlagPaired != 0 && rec.PNext > 0 {
		sig.matePos = rec.PNext
	}
	return sig, nil
}
