package baseline

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/formats/sam"
	"persona/internal/genome"
	"persona/internal/reads"
)

// fixture builds a genome, index, simulated reads and their FASTQ text.
func fixture(t *testing.T, genomeSize, numReads, readLen int, seed int64) (*snap.Index, []agd.RefSeq, []reads.Read, string) {
	t.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(genomeSize, seed))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: seed + 1, N: numReads, ReadLen: readLen, ErrorRate: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return idx, agd.RefSeqsFromGenome(g), rs, buf.String()
}

func TestStandaloneAlignerProducesSAM(t *testing.T) {
	idx, refs, rs, fq := fixture(t, 100_000, 300, 80, 71)
	var out bytes.Buffer
	stats, err := RunStandaloneAligner(idx, refs, strings.NewReader(fq), &out, StandaloneConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != int64(len(rs)) {
		t.Fatalf("processed %d reads, want %d", stats.Reads, len(rs))
	}
	if float64(stats.Aligned)/float64(stats.Reads) < 0.9 {
		t.Fatalf("aligned fraction too low: %+v", stats)
	}
	sc := sam.NewScanner(&out)
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(rs) {
		t.Fatalf("SAM has %d records, want %d", n, len(rs))
	}
}

func TestStandaloneAlignerGzipInput(t *testing.T) {
	idx, refs, rs, fq := fixture(t, 60_000, 100, 70, 72)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write([]byte(fq)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cr := &CountingReader{R: &gz}
	cw := &CountingWriter{W: &out}
	stats, err := RunStandaloneAligner(idx, refs, cr, cw, StandaloneConfig{Threads: 2, Gzipped: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != int64(len(rs)) {
		t.Fatalf("reads = %d", stats.Reads)
	}
	if cr.N == 0 || cw.N == 0 {
		t.Fatal("byte counters not counting")
	}
	// SAM text out is much larger than gzipped FASTQ in — the write
	// amplification Table 1 quantifies.
	if cw.N < cr.N {
		t.Fatalf("expected SAM out (%d B) > gz FASTQ in (%d B)", cw.N, cr.N)
	}
}

// alignedSAM produces SAM text of aligned reads for the sort/dup baselines.
func alignedSAM(t *testing.T, idx *snap.Index, refs []agd.RefSeq, fq string) string {
	t.Helper()
	var out bytes.Buffer
	if _, err := RunStandaloneAligner(idx, refs, strings.NewReader(fq), &out, StandaloneConfig{Threads: 2}); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSamtoolsSortBAM(t *testing.T) {
	idx, refs, rs, fq := fixture(t, 80_000, 200, 70, 73)
	samText := alignedSAM(t, idx, refs, fq)

	var bamBuf bytes.Buffer
	n, err := ConvertSAMToBAM(strings.NewReader(samText), &bamBuf, refs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rs) {
		t.Fatalf("converted %d records, want %d", n, len(rs))
	}

	var sorted bytes.Buffer
	n, err = SamtoolsSortBAM(&bamBuf, &sorted)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rs) {
		t.Fatalf("sorted %d records", n)
	}

	r, err := bam.NewReader(&sorted)
	if err != nil {
		t.Fatal(err)
	}
	idxOf := refIndex(r.Refs())
	lastRef, lastPos := -1, int64(-1)
	count := 0
	for r.Scan() {
		rec := r.Record()
		count++
		if rec.Ref == "*" {
			continue
		}
		ri := idxOf[rec.Ref]
		if ri < lastRef || (ri == lastRef && rec.Pos < lastPos) {
			t.Fatalf("order violated at %s:%d after ref %d pos %d", rec.Ref, rec.Pos, lastRef, lastPos)
		}
		lastRef, lastPos = ri, rec.Pos
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if count != len(rs) {
		t.Fatalf("read back %d records", count)
	}
}

func TestPicardSortSAM(t *testing.T) {
	idx, refs, rs, fq := fixture(t, 80_000, 150, 70, 74)
	samText := alignedSAM(t, idx, refs, fq)
	var sorted bytes.Buffer
	n, err := PicardSortSAM(strings.NewReader(samText), &sorted, refs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rs) {
		t.Fatalf("sorted %d records", n)
	}
	br, err := bam.NewReader(&sorted)
	if err != nil {
		t.Fatal(err)
	}
	idxOf := refIndex(refs)
	lastRef, lastPos := -1, int64(-1)
	for br.Scan() {
		rec := br.Record()
		if rec.Ref == "*" {
			continue
		}
		ri := idxOf[rec.Ref]
		if ri < lastRef || (ri == lastRef && rec.Pos < lastPos) {
			t.Fatal("picard sort order violated")
		}
		lastRef, lastPos = ri, rec.Pos
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSamblasterMark(t *testing.T) {
	idx, refs, _, fq := fixture(t, 80_000, 200, 70, 75)
	samText := alignedSAM(t, idx, refs, fq)
	// Duplicate the SAM body once to guarantee duplicates: every record
	// appears twice.
	sc := sam.NewScanner(strings.NewReader(samText))
	var recs []sam.Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var doubled bytes.Buffer
	w, err := sam.NewWriter(&doubled, refs, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range recs {
		cp := recs[i]
		cp.Name += ".dup"
		if err := w.Write(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	stats, err := SamblasterMark(&doubled, &out, refs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads != int64(2*len(recs)) {
		t.Fatalf("reads = %d", stats.Reads)
	}
	mappedOnce := 0
	for i := range recs {
		if recs[i].Flags&agd.FlagUnmapped == 0 {
			mappedOnce++
		}
	}
	if stats.Duplicates < int64(mappedOnce) {
		t.Fatalf("duplicates = %d, want >= %d (every mapped record recurs)", stats.Duplicates, mappedOnce)
	}
	// Output must carry the flags.
	sc = sam.NewScanner(&out)
	flagged := int64(0)
	for sc.Scan() {
		if sc.Record().Flags&agd.FlagDuplicate != 0 {
			flagged++
		}
	}
	if flagged != stats.Duplicates {
		t.Fatalf("output carries %d duplicate flags, stats say %d", flagged, stats.Duplicates)
	}
}
