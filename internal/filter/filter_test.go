package filter

import (
	"context"
	"testing"

	"persona/internal/agd"
	"persona/internal/markdup"
	"persona/internal/testutil"
)

func buildAligned(t *testing.T, store agd.BlobStore, dupFrac float64) *testutil.Fixture {
	t.Helper()
	return testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 150_000, NumReads: 1200, ReadLen: 80, ChunkSize: 200, DupFrac: dupFrac, Seed: 101,
	})
}

func TestFilterMinMapQ(t *testing.T) {
	store := agd.NewMemStore()
	f := buildAligned(t, store, 0)
	m, stats, err := RunDataset(context.Background(), f.Dataset, MinMapQ(30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.In != 1200 {
		t.Fatalf("In = %d", stats.In)
	}
	if stats.Kept == 0 || stats.Kept > stats.In {
		t.Fatalf("Kept = %d", stats.Kept)
	}
	if m.NumRecords() != uint64(stats.Kept) {
		t.Fatalf("output has %d records, stats say %d", m.NumRecords(), stats.Kept)
	}

	out, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	results, err := out.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.IsUnmapped() || r.MapQ < 30 {
			t.Fatalf("record %d violates predicate: %+v", i, r)
		}
	}
	// Row integrity: bases/metadata still pair with results.
	bases, err := out.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != len(results) {
		t.Fatalf("columns disagree: %d bases, %d results", len(bases), len(results))
	}
	for _, b := range bases {
		if len(b) != 80 {
			t.Fatalf("filtered base record has length %d", len(b))
		}
	}
}

func TestFilterDropDuplicates(t *testing.T) {
	store := agd.NewMemStore()
	f := buildAligned(t, store, 0.25)
	dstats, err := markdup.MarkDataset(context.Background(), f.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	// Re-open: markdup rewrote the results blobs.
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := RunDataset(context.Background(), ds, DropDuplicates(), Options{OutputName: "dedup"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.In-stats.Kept != dstats.Duplicates {
		t.Fatalf("dropped %d, markdup flagged %d", stats.In-stats.Kept, dstats.Duplicates)
	}
	out, err := agd.Open(store, m.Name)
	if err != nil {
		t.Fatal(err)
	}
	results, err := out.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.IsDuplicate() {
			t.Fatal("duplicate survived the filter")
		}
	}
}

func TestFilterRegion(t *testing.T) {
	store := agd.NewMemStore()
	f := buildAligned(t, store, 0)
	const lo, hi = 10_000, 60_000
	_, stats, err := RunDataset(context.Background(), f.Dataset, Region(lo, hi), Options{OutputName: "window"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := agd.Open(store, "window")
	if err != nil {
		t.Fatal(err)
	}
	results, err := out.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(results)) != stats.Kept {
		t.Fatalf("kept %d, read back %d", stats.Kept, len(results))
	}
	for _, r := range results {
		if r.Location < lo || r.Location >= hi {
			t.Fatalf("record at %d escaped the region", r.Location)
		}
	}
}

func TestFilterAnd(t *testing.T) {
	p := And(MappedOnly(), MinMapQ(50))
	if p(&agd.ResultView{Location: 5, MapQ: 60}) != true {
		t.Fatal("both-true rejected")
	}
	if p(&agd.ResultView{Location: 5, MapQ: 10}) {
		t.Fatal("low mapq accepted")
	}
	if p(&agd.ResultView{Location: agd.UnmappedLocation, Flags: agd.FlagUnmapped, MapQ: 60}) {
		t.Fatal("unmapped accepted")
	}
}

func TestFilterErrors(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "nores", testutil.Config{
		GenomeSize: 60_000, NumReads: 100, ReadLen: 60, ChunkSize: 50, Seed: 102, SkipAlign: true,
	})
	if _, _, err := RunDataset(context.Background(), f.Dataset, MappedOnly(), Options{}); err == nil {
		t.Fatal("filter without results column succeeded")
	}
	f2 := buildAligned(t, store, 0)
	// A predicate nothing matches must error rather than write an empty
	// dataset.
	if _, _, err := RunDataset(context.Background(), f2.Dataset, Region(1<<40, 1<<40+1), Options{}); err == nil {
		t.Fatal("empty filter result accepted")
	}
	if _, _, err := Run(context.Background(), store, "missing", MappedOnly(), Options{}); err == nil {
		t.Fatal("missing dataset accepted")
	}
}
