// Package filter implements dataset filtering, one of the pipeline stages
// the paper names in its goal list (§1: "including (but not limited to)
// read alignment, sorting, duplicate marking, filtering, and variant
// calling"). A filter pass streams a dataset chunk by chunk (prefetching
// blob fetches through agd.ChunkStream), keeps the rows matching a
// predicate over their alignment results, and writes a new row-grouped
// dataset. Predicates see zero-copy result views, so a pass performs no
// per-record allocation.
package filter

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"persona/internal/agd"
)

// Predicate decides whether a record stays, given a borrowed view of its
// alignment result (valid only for the duration of the call).
type Predicate func(res *agd.ResultView) bool

// MinMapQ keeps reads with mapping quality of at least q.
func MinMapQ(q uint8) Predicate {
	return func(res *agd.ResultView) bool { return !res.IsUnmapped() && res.MapQ >= q }
}

// MappedOnly keeps aligned reads.
func MappedOnly() Predicate {
	return func(res *agd.ResultView) bool { return !res.IsUnmapped() }
}

// DropDuplicates keeps reads not flagged as PCR duplicates (run markdup
// first).
func DropDuplicates() Predicate {
	return func(res *agd.ResultView) bool { return !res.IsDuplicate() }
}

// Region keeps reads whose leftmost base falls in [start, end) of the
// global coordinate space.
func Region(start, end int64) Predicate {
	return func(res *agd.ResultView) bool {
		return !res.IsUnmapped() && res.Location >= start && res.Location < end
	}
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(res *agd.ResultView) bool {
		for _, p := range ps {
			if !p(res) {
				return false
			}
		}
		return true
	}
}

// Stats reports a filter pass.
type Stats struct {
	In, Kept uint64
}

// Options configures a filter pass.
type Options struct {
	// OutputName names the filtered dataset; default "<name>.filtered".
	OutputName string
	// OutputChunkSize is records per output chunk; defaults to the input's.
	OutputChunkSize int
	// Prefetch is the chunk-fetch window (agd.ChunkStream); 0 selects
	// agd.DefaultPrefetch.
	Prefetch int
}

// Run filters a dataset into a new dataset, preserving all columns.
// Cancellation and deadline of ctx are checked per chunk.
func Run(ctx context.Context, store agd.BlobStore, name string, pred Predicate, opts Options) (*agd.Manifest, Stats, error) {
	ds, err := agd.Open(store, name)
	if err != nil {
		return nil, Stats{}, err
	}
	return RunDataset(ctx, ds, pred, opts)
}

// RunDataset is Run over an open dataset.
func RunDataset(ctx context.Context, ds *agd.Dataset, pred Predicate, opts Options) (*agd.Manifest, Stats, error) {
	m := ds.Manifest
	if !m.HasColumn(agd.ColResults) {
		return nil, Stats{}, fmt.Errorf("filter: dataset %q has no results column", m.Name)
	}
	if opts.OutputName == "" {
		opts.OutputName = m.Name + ".filtered"
	}
	if opts.OutputChunkSize <= 0 {
		if len(m.Chunks) > 0 {
			opts.OutputChunkSize = int(m.Chunks[0].Records)
		} else {
			opts.OutputChunkSize = agd.DefaultChunkSize
		}
	}

	// Locate the results column for predicate evaluation.
	resCol := -1
	cols := agd.SpecsForColumns(m.Columns)
	for i, colName := range m.Columns {
		if colName == agd.ColResults {
			resCol = i
		}
	}

	w, err := agd.NewWriter(ds.Store(), opts.OutputName, cols, agd.WriterOptions{
		ChunkSize:     opts.OutputChunkSize,
		RefSeqs:       m.RefSeqs,
		SortedBy:      m.SortedBy, // filtering preserves order
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, Stats{}, err
	}

	window := opts.Prefetch
	if window <= 0 {
		window = agd.DefaultPrefetch
	}
	chunkPool := agd.NewChunkPool(len(m.Columns) * (window + 1))
	stream, err := ds.Stream(agd.StreamOptions{Prefetch: opts.Prefetch, Pool: chunkPool})
	if err != nil {
		return nil, Stats{}, err
	}
	defer stream.Close()

	var stats Stats
	fields := make([][]byte, len(m.Columns))
	for {
		sc, err := stream.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, stats, err
		}
		chunks := sc.Chunks()
		for r := 0; r < chunks[0].NumRecords(); r++ {
			stats.In++
			rec, err := chunks[resCol].Record(r)
			if err != nil {
				return nil, stats, err
			}
			res, err := agd.DecodeResultView(rec)
			if err != nil {
				return nil, stats, err
			}
			if !pred(&res) {
				continue
			}
			for col, c := range chunks {
				f, err := c.Record(r)
				if err != nil {
					return nil, stats, err
				}
				fields[col] = f
			}
			// Records are already in stored representation (bases stay
			// compacted), so the zero-copy append applies.
			if err := w.AppendStored(fields...); err != nil {
				return nil, stats, err
			}
			stats.Kept++
		}
		// AppendStored copied the kept rows into the writer's builders;
		// recycle the streamed chunks.
		sc.Release()
	}
	if stats.Kept == 0 {
		return nil, stats, fmt.Errorf("filter: no records of %q match", m.Name)
	}
	manifest, err := w.Close()
	if err != nil {
		return nil, stats, err
	}
	return manifest, stats, nil
}

// RunStream is the stream-in/stream-out form of Run, used by composed
// pipelines: each group is replaced by a (possibly smaller) group holding
// only the rows matching pred; groups left empty by the predicate are
// dropped. Row order and columns are preserved, so the stream metadata
// passes through unchanged. The returned stats update as groups flow.
//
// pipelining is how many output groups may be in flight at once. With
// pipelining ≤ 1 (the serial pull path) output chunks alias one reused
// builder set, valid until the next group; with pipelining > 1 builders come
// from a bounded pool of that size and each group is valid until its
// Release (the kept rows are copied, so the output owns its bytes outright).
func RunStream(in *agd.GroupStream, pred Predicate, pipelining int) (*agd.GroupStream, *Stats, error) {
	resCol := in.Meta.Col(agd.ColResults)
	if resCol < 0 {
		return nil, nil, fmt.Errorf("filter: stream has no results column")
	}
	specs := agd.SpecsForColumns(in.Meta.Columns)
	var pool *agd.BuilderPool
	var fixed *agd.BuilderSet
	if pipelining > 1 {
		pool = agd.NewBuilderPool(pipelining, specs)
	} else {
		fixed = &agd.BuilderSet{Builders: make([]*agd.ChunkBuilder, len(specs))}
		for i, spec := range specs {
			fixed.Builders[i] = agd.NewChunkBuilder(spec.Type, 0)
		}
	}
	stats := &Stats{}
	outIdx := 0
	meta := in.Meta
	meta.NumRecords = 0 // unknown until the predicate has run
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		for {
			g, err := in.Next(ctx)
			if err != nil {
				return nil, err
			}
			first := g.Chunks[0].FirstOrdinal
			set := fixed
			if pool != nil {
				if set, err = pool.Get(ctx, first); err != nil {
					g.Release()
					return nil, err
				}
			}
			builders := set.Builders
			for i, spec := range specs {
				builders[i].Reset(spec.Type, first)
			}
			fail := func(err error) (*agd.RowGroup, error) {
				if pool != nil {
					pool.Put(set)
				}
				g.Release()
				return nil, err
			}
			n := g.NumRecords()
			kept := 0
			for r := 0; r < n; r++ {
				stats.In++
				rec, err := g.Chunks[resCol].Record(r)
				if err != nil {
					return fail(err)
				}
				res, err := agd.DecodeResultView(rec)
				if err != nil {
					return fail(err)
				}
				if !pred(&res) {
					continue
				}
				for col, c := range g.Chunks {
					f, err := c.Record(r)
					if err != nil {
						return fail(err)
					}
					// Rows stay in stored representation (bases compacted).
					builders[col].Append(f)
				}
				kept++
			}
			stats.Kept += uint64(kept)
			g.Release()
			if kept == 0 {
				if pool != nil {
					pool.Put(set)
				}
				continue // fully filtered group: pull the next one
			}
			var release func()
			if pool != nil {
				put := set
				release = func() { pool.Put(put) }
			}
			out := agd.NewRowGroup(outIdx, g.Shard, set.Chunks(), release)
			outIdx++
			return out, nil
		}
	}
	out := agd.NewGroupStream(meta, next, in.Close)
	out.Owned = pool != nil
	return out, stats, nil
}
