package genome

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCodeLetterRoundTrip(t *testing.T) {
	for _, b := range []byte{'A', 'C', 'G', 'T', 'N'} {
		if got := Letter(Code(b)); got != b {
			t.Errorf("Letter(Code(%c)) = %c", b, got)
		}
	}
	if Code('a') != Code('A') || Code('x') != Code('N') {
		t.Error("case folding / unknown mapping broken")
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	for b, want := range pairs {
		if got := Complement(b); got != want {
			t.Errorf("Complement(%c) = %c, want %c", b, got, want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		// Map arbitrary bytes into base space first.
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = Letter(b % 5)
		}
		rc := ReverseComplement(make([]byte, len(seq)), seq)
		rcrc := ReverseComplement(make([]byte, len(rc)), rc)
		return bytes.Equal(rcrc, seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewGenomeCoordinates(t *testing.T) {
	g, err := New([]Contig{
		{Name: "c1", Seq: []byte("ACGTACGT")},
		{Name: "c2", Seq: []byte("TTTT")},
		{Name: "c3", Seq: []byte("GGGGGG")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 18 {
		t.Fatalf("Len = %d, want 18", g.Len())
	}
	name, off, err := g.Locate(9)
	if err != nil || name != "c2" || off != 1 {
		t.Fatalf("Locate(9) = %s,%d,%v want c2,1", name, off, err)
	}
	pos, err := g.GlobalPos("c3", 2)
	if err != nil || pos != 14 {
		t.Fatalf("GlobalPos(c3,2) = %d,%v want 14", pos, err)
	}
	if _, err := g.GlobalPos("nope", 0); err == nil {
		t.Fatal("GlobalPos on unknown contig succeeded")
	}
	if _, err := g.At(-1); err == nil {
		t.Fatal("At(-1) succeeded")
	}
	if _, err := g.Slice(16, 5); err == nil {
		t.Fatal("Slice past end succeeded")
	}
	b, err := g.At(8)
	if err != nil || b != 'T' {
		t.Fatalf("At(8) = %c,%v want T", b, err)
	}
}

func TestLocateGlobalPosInverse(t *testing.T) {
	g, err := Synthesize(DefaultSyntheticConfig(50_000, 7))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		pos := int64(raw) % g.Len()
		name, off, err := g.Locate(pos)
		if err != nil {
			return false
		}
		back, err := g.GlobalPos(name, off)
		return err == nil && back == pos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewGenomeRejectsBadInput(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) succeeded")
	}
	if _, err := New([]Contig{{Name: "", Seq: []byte("A")}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New([]Contig{{Name: "x", Seq: nil}}); err == nil {
		t.Fatal("empty contig accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultSyntheticConfig(100_000, 42)
	g1, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1.Seq(), g2.Seq()) {
		t.Fatal("same seed produced different genomes")
	}
	g3, err := Synthesize(DefaultSyntheticConfig(100_000, 43))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(g1.Seq(), g3.Seq()) {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestSynthesizeProperties(t *testing.T) {
	g, err := Synthesize(DefaultSyntheticConfig(200_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 200_000 {
		t.Fatalf("Len = %d, want 200000", g.Len())
	}
	if g.NumContigs() < 2 {
		t.Fatalf("NumContigs = %d, want >= 2", g.NumContigs())
	}
	var counts [256]int
	for _, b := range g.Seq() {
		counts[b]++
	}
	for _, b := range g.Seq() {
		switch b {
		case 'A', 'C', 'G', 'T', 'N':
		default:
			t.Fatalf("unexpected base %q", b)
		}
	}
	gc := float64(counts['G']+counts['C']) / float64(g.Len())
	if gc < 0.35 || gc > 0.47 {
		t.Fatalf("GC = %.3f, want ≈0.41", gc)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(SyntheticConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Synthesize(SyntheticConfig{ContigLengths: []int{0}}); err == nil {
		t.Fatal("zero-length contig accepted")
	}
}

func TestGenomeString(t *testing.T) {
	g, _ := New([]Contig{{Name: "c1", Seq: []byte("ACGT")}})
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
}
