// Package genome models reference genomes: named contigs of bases, global
// coordinates, and deterministic synthetic genome generation.
//
// The paper aligns against hg19 (≈3 Gbp). hg19 is not redistributable inside
// this repository and would not fit the test environment, so benchmarks and
// tests use synthetic genomes drawn from a seeded PRNG with hg19-like
// properties (multiple contigs, ~41% GC, occasional N runs and repeated
// segments so aligners see both unique and ambiguous seeds). All code paths
// are sequence-agnostic; see DESIGN.md §3 for the substitution argument.
package genome

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Base codes. Persona stores bases 3 bits each (AGD base compaction), which
// leaves room for the ambiguous base N alongside A, C, G, T.
const (
	BaseA = byte('A')
	BaseC = byte('C')
	BaseG = byte('G')
	BaseT = byte('T')
	BaseN = byte('N')
)

// Code converts a base letter to its 3-bit code (0..4). Lower-case letters
// are accepted. Unknown letters map to N's code.
func Code(b byte) uint8 {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return 4
	}
}

// Letter converts a 3-bit code back to its base letter.
func Letter(code uint8) byte {
	switch code {
	case 0:
		return BaseA
	case 1:
		return BaseC
	case 2:
		return BaseG
	case 3:
		return BaseT
	default:
		return BaseN
	}
}

// Complement returns the Watson-Crick complement of a base letter; N maps to
// N.
func Complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return BaseT
	case 'C', 'c':
		return BaseG
	case 'G', 'g':
		return BaseC
	case 'T', 't':
		return BaseA
	default:
		return BaseN
	}
}

// ReverseComplement writes the reverse complement of src into dst, which
// must have len(src) capacity available; it returns dst resliced.
func ReverseComplement(dst, src []byte) []byte {
	dst = dst[:len(src)]
	for i, b := range src {
		dst[len(src)-1-i] = Complement(b)
	}
	return dst
}

// ReverseComplementScratch is ReverseComplement over a reusable scratch:
// dst's backing array is grown as needed and reused otherwise, so hot loops
// (SAM import/export, pileup) flip strands without allocating.
func ReverseComplementScratch(dst, src []byte) []byte {
	if cap(dst) < len(src) {
		dst = make([]byte, len(src))
	}
	return ReverseComplement(dst[:0], src)
}

// ReverseScratch copies src reversed into a reusable scratch (the quality
// string of a reverse-strand read, flipped alongside its bases).
func ReverseScratch(dst, src []byte) []byte {
	dst = append(dst[:0], src...)
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Contig is a named contiguous reference sequence (a chromosome in hg19
// terms). Offset is the contig's start in the genome's global coordinate
// space, which is how AGD results store positions.
type Contig struct {
	Name   string
	Offset int64
	Seq    []byte
}

// Len returns the contig length in bases.
func (c *Contig) Len() int { return len(c.Seq) }

// Genome is a reference genome: an ordered list of contigs plus the
// concatenated sequence for global addressing.
type Genome struct {
	contigs []Contig
	seq     []byte // concatenation of all contig sequences
	total   int64
}

// ErrOutOfRange is returned for positions outside the genome.
var ErrOutOfRange = errors.New("genome: position out of range")

// New assembles a genome from named sequences in order. Sequences are
// retained (not copied); callers must not mutate them afterwards.
func New(contigs []Contig) (*Genome, error) {
	g := &Genome{}
	var off int64
	for _, c := range contigs {
		if c.Name == "" {
			return nil, errors.New("genome: contig with empty name")
		}
		if len(c.Seq) == 0 {
			return nil, fmt.Errorf("genome: contig %q is empty", c.Name)
		}
		c.Offset = off
		g.contigs = append(g.contigs, c)
		g.seq = append(g.seq, c.Seq...)
		off += int64(len(c.Seq))
	}
	if len(g.contigs) == 0 {
		return nil, errors.New("genome: no contigs")
	}
	g.total = off
	return g, nil
}

// Len returns total bases across all contigs.
func (g *Genome) Len() int64 { return g.total }

// NumContigs returns the number of contigs.
func (g *Genome) NumContigs() int { return len(g.contigs) }

// Contigs returns the contig descriptors in genome order.
func (g *Genome) Contigs() []Contig { return g.contigs }

// Seq returns the full concatenated sequence. Callers must not mutate it.
func (g *Genome) Seq() []byte { return g.seq }

// At returns the base at global position pos.
func (g *Genome) At(pos int64) (byte, error) {
	if pos < 0 || pos >= g.total {
		return 0, ErrOutOfRange
	}
	return g.seq[pos], nil
}

// Slice returns the subsequence [pos, pos+n) in global coordinates. The
// returned slice aliases the genome; callers must not mutate it.
func (g *Genome) Slice(pos int64, n int) ([]byte, error) {
	if pos < 0 || pos+int64(n) > g.total {
		return nil, ErrOutOfRange
	}
	return g.seq[pos : pos+int64(n)], nil
}

// Locate translates a global position to (contig name, 0-based offset within
// the contig).
func (g *Genome) Locate(pos int64) (string, int64, error) {
	if pos < 0 || pos >= g.total {
		return "", 0, ErrOutOfRange
	}
	i := sort.Search(len(g.contigs), func(i int) bool {
		return g.contigs[i].Offset+int64(len(g.contigs[i].Seq)) > pos
	})
	c := &g.contigs[i]
	return c.Name, pos - c.Offset, nil
}

// GlobalPos translates (contig name, offset) to a global position.
func (g *Genome) GlobalPos(contig string, off int64) (int64, error) {
	for i := range g.contigs {
		if g.contigs[i].Name == contig {
			if off < 0 || off >= int64(len(g.contigs[i].Seq)) {
				return 0, ErrOutOfRange
			}
			return g.contigs[i].Offset + off, nil
		}
	}
	return 0, fmt.Errorf("genome: unknown contig %q", contig)
}

// String summarizes the genome.
func (g *Genome) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "genome{%d contigs, %d bases:", len(g.contigs), g.total)
	for _, c := range g.contigs {
		fmt.Fprintf(&sb, " %s=%d", c.Name, len(c.Seq))
	}
	sb.WriteByte('}')
	return sb.String()
}

// SyntheticConfig parameterizes synthetic genome generation.
type SyntheticConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// ContigLengths gives the length of each generated contig, in order.
	ContigLengths []int
	// GC is the GC content in [0,1]; hg19 is ≈0.41. Zero means 0.41.
	GC float64
	// RepeatFraction is the fraction of each contig rewritten as copies of
	// earlier segments, creating the ambiguous (multi-mapping) regions real
	// genomes have. Zero means 0.05.
	RepeatFraction float64
	// NRunEvery inserts a short run of N every approximately this many
	// bases (0 disables). Real references contain N gaps.
	NRunEvery int
}

// DefaultSyntheticConfig returns an hg19-flavoured configuration with the
// given total size split over a few contigs.
func DefaultSyntheticConfig(totalBases int, seed int64) SyntheticConfig {
	// Split roughly like the first human chromosomes: a few contigs of
	// decreasing size.
	weights := []float64{0.35, 0.25, 0.2, 0.12, 0.08}
	lengths := make([]int, 0, len(weights))
	remaining := totalBases
	for i, w := range weights {
		n := int(float64(totalBases) * w)
		if i == len(weights)-1 {
			n = remaining
		}
		if n <= 0 {
			break
		}
		lengths = append(lengths, n)
		remaining -= n
	}
	return SyntheticConfig{
		Seed:           seed,
		ContigLengths:  lengths,
		GC:             0.41,
		RepeatFraction: 0.05,
		NRunEvery:      1 << 20,
	}
}

// Synthesize generates a deterministic synthetic genome.
func Synthesize(cfg SyntheticConfig) (*Genome, error) {
	if len(cfg.ContigLengths) == 0 {
		return nil, errors.New("genome: no contig lengths")
	}
	if cfg.GC == 0 {
		cfg.GC = 0.41
	}
	if cfg.RepeatFraction == 0 {
		cfg.RepeatFraction = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	contigs := make([]Contig, 0, len(cfg.ContigLengths))
	for i, n := range cfg.ContigLengths {
		if n <= 0 {
			return nil, fmt.Errorf("genome: contig %d has length %d", i, n)
		}
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = randomBase(rng, cfg.GC)
		}
		applyRepeats(rng, seq, cfg.RepeatFraction)
		if cfg.NRunEvery > 0 {
			applyNRuns(rng, seq, cfg.NRunEvery)
		}
		contigs = append(contigs, Contig{Name: fmt.Sprintf("chr%d", i+1), Seq: seq})
	}
	return New(contigs)
}

func randomBase(rng *rand.Rand, gc float64) byte {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return BaseG
		}
		return BaseC
	}
	if rng.Intn(2) == 0 {
		return BaseA
	}
	return BaseT
}

// applyRepeats copies earlier segments over later positions so a fraction of
// the contig is (near-)duplicated, as in real genomes.
func applyRepeats(rng *rand.Rand, seq []byte, fraction float64) {
	if len(seq) < 1000 || fraction <= 0 {
		return
	}
	target := int(float64(len(seq)) * fraction)
	for copied := 0; copied < target; {
		segLen := 200 + rng.Intn(800)
		src := rng.Intn(len(seq) - segLen)
		dst := rng.Intn(len(seq) - segLen)
		if src == dst {
			continue
		}
		copy(seq[dst:dst+segLen], seq[src:src+segLen])
		// Sprinkle a few mutations so repeats are near-exact, not exact.
		for m := 0; m < segLen/100; m++ {
			seq[dst+rng.Intn(segLen)] = randomBase(rng, 0.5)
		}
		copied += segLen
	}
}

func applyNRuns(rng *rand.Rand, seq []byte, every int) {
	for pos := every; pos+64 < len(seq); pos += every {
		runLen := 8 + rng.Intn(56)
		for i := 0; i < runLen; i++ {
			seq[pos+i] = BaseN
		}
	}
}
