package perfmodel

import "testing"

// Representative per-read counters, in the ballpark the instrumented
// aligners report on the synthetic workload.
func snapMix() OpMix {
	// ~12 seed lookups, ~8 LV verifications × ~49 cells, ~110 bytes/window.
	return SNAPMix(1000, 12_000, 390_000, 900_000)
}

func bwaMix() OpMix {
	// ~180 FM probes (101 steps × strands, occ scans), ~13k SW cells.
	return BWAMix(1000, 180_000, 13_000_000)
}

func TestProfilesAreValidBreakdowns(t *testing.T) {
	for _, ht := range []bool{false, true} {
		for name, mix := range map[string]OpMix{"snap": snapMix(), "bwa": bwaMix()} {
			b := Profile(name, mix, ht)
			if err := b.Validate(); err != nil {
				t.Fatalf("ht=%v: %v", ht, err)
			}
		}
	}
}

func TestSNAPIsCoreBoundBWAIsMemoryBound(t *testing.T) {
	snap := Profile("snap", snapMix(), false)
	bwa := Profile("bwa", bwaMix(), false)

	// §6: "With SNAP ... the issue is due to the core and not memory
	// access"; "In BWA-MEM, the system is much more memory bound."
	if snap.CoreBound <= snap.MemoryBound {
		t.Fatalf("SNAP core %.3f <= memory %.3f", snap.CoreBound, snap.MemoryBound)
	}
	if bwa.MemoryBound <= bwa.CoreBound {
		t.Fatalf("BWA memory %.3f <= core %.3f", bwa.MemoryBound, bwa.CoreBound)
	}
	// Both are heavily backend bound.
	if snap.BackendBound < 0.35 || bwa.BackendBound < 0.35 {
		t.Fatalf("backend bound too low: snap %.3f bwa %.3f", snap.BackendBound, bwa.BackendBound)
	}
	// BWA should be more memory bound than SNAP.
	if bwa.MemoryBound <= snap.MemoryBound {
		t.Fatalf("BWA memory %.3f <= SNAP memory %.3f", bwa.MemoryBound, snap.MemoryBound)
	}
}

func TestHyperthreadingIncreasesMemoryPressure(t *testing.T) {
	for name, mix := range map[string]OpMix{"snap": snapMix(), "bwa": bwaMix()} {
		off := Profile(name, mix, false)
		on := Profile(name, mix, true)
		if on.MemoryBound <= off.MemoryBound {
			t.Fatalf("%s: HT memory %.3f <= no-HT %.3f", name, on.MemoryBound, off.MemoryBound)
		}
	}
}

func TestSPECReferencesValid(t *testing.T) {
	refs := SPECReferences()
	if len(refs) < 4 {
		t.Fatalf("refs = %d", len(refs))
	}
	for _, b := range refs {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// mcf is the canonical memory-bound point.
	var mcf, namd Breakdown
	for _, b := range refs {
		switch b.Name {
		case "spec-mcf":
			mcf = b
		case "spec-namd":
			namd = b
		}
	}
	if mcf.MemoryBound <= namd.MemoryBound {
		t.Fatal("mcf should be more memory bound than namd")
	}
}

func TestZeroReadsSafe(t *testing.T) {
	b := Profile("empty", SNAPMix(0, 0, 0, 0), false)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
