// Package perfmodel reproduces the workload analysis of Fig. 8: a top-down
// microarchitectural breakdown of the two aligners compared against SPEC
// reference points.
//
// Substitution note (DESIGN.md §3): the paper uses Intel VTune on real
// Xeons. Hardware PMU access is unavailable here, so the breakdown is
// computed from the aligners' instrumented operation mixes: the SNAP
// aligner reports Landau-Vishkin cell work (short dependent ALU chains and
// branches — core pressure) and bytes compared (mostly streaming); the BWA
// aligner reports FM-index rank probes (cache/DTLB-hostile random reads —
// memory pressure) and Smith-Waterman cell work. A fixed cost model maps
// these mixes onto the top-down categories. The calibration targets the
// paper's qualitative findings: both aligners are heavily backend bound;
// SNAP's stalls come from the core, BWA's from memory (§6), and
// hyperthreading shifts both toward memory by doubling cache pressure.
package perfmodel

import "fmt"

// Breakdown is a top-down cycle accounting: the four top-level categories
// sum to 1; CoreBound+MemoryBound == BackendBound.
type Breakdown struct {
	Name           string
	Retiring       float64
	BadSpeculation float64
	FrontendBound  float64
	BackendBound   float64
	CoreBound      float64
	MemoryBound    float64
}

// Validate checks the accounting identities.
func (b Breakdown) Validate() error {
	total := b.Retiring + b.BadSpeculation + b.FrontendBound + b.BackendBound
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("perfmodel: %s top-down sums to %.3f", b.Name, total)
	}
	split := b.CoreBound + b.MemoryBound
	if split < b.BackendBound-0.001 || split > b.BackendBound+0.001 {
		return fmt.Errorf("perfmodel: %s backend split %.3f != backend %.3f", b.Name, split, b.BackendBound)
	}
	return nil
}

// OpMix summarizes an aligner's instrumented work counters, normalized per
// read. Obtain one from SNAPMix/BWAMix.
type OpMix struct {
	// RandomAccesses counts cache-hostile lookups (hash probes, FM rank
	// queries) per read.
	RandomAccesses float64
	// DependentALU counts serially dependent compute operations (LV cells:
	// each depends on its neighbours, defeating ILP) per read.
	DependentALU float64
	// ThroughputALU counts ILP/SIMD-friendly compute operations
	// (Smith-Waterman band cells) per read.
	ThroughputALU float64
	// StreamBytes counts sequentially touched bytes per read.
	StreamBytes float64
	// BranchOps counts data-dependent branches per read.
	BranchOps float64
}

// SNAPMix derives the op mix from SNAP aligner counters.
// The counters are those maintained by align/snap.Aligner.Stats().
func SNAPMix(reads, seedLookups, lvCells, bytesCompared int64) OpMix {
	if reads == 0 {
		reads = 1
	}
	r := float64(reads)
	// lvCells is the measured count of LV operations (extension byte
	// comparisons plus diagonal updates) — serially dependent with
	// data-dependent branches, the "small instruction mix and many data
	// dependent instructions and branches" §6 blames for SNAP being core
	// bound.
	dependent := float64(lvCells) / r
	return OpMix{
		RandomAccesses: float64(seedLookups) / r,
		DependentALU:   dependent,
		StreamBytes:    float64(bytesCompared) / r,
		BranchOps:      dependent,
	}
}

// BWAMix derives the op mix from BWA aligner counters.
func BWAMix(reads, fmProbes, swCells int64) OpMix {
	if reads == 0 {
		reads = 1
	}
	r := float64(reads)
	return OpMix{
		RandomAccesses: float64(fmProbes) / r,
		// SW fills a band of independent cells: wide ILP, unlike LV.
		ThroughputALU: float64(swCells) / r,
		StreamBytes:   float64(swCells) / r,
		BranchOps:     float64(swCells) / (4 * r), // SW branches are predictable
	}
}

// cost weights: relative cycle cost of one unit of each op class.
const (
	costRandom  = 60.0 // LLC/TLB miss-dominated probe
	costDepALU  = 2.5  // serially dependent op: latency-bound, no ILP
	costThruALU = 0.25 // independent op: 4-wide issue hides it
	costStream  = 0.05 // per byte, prefetch-friendly
	costBranch  = 1.2  // includes misprediction amortization
)

// Profile maps an op mix to a top-down breakdown. ht selects the
// hyperthreaded variant, which increases memory pressure (two threads share
// L1/L2 and DTLB) and slightly improves retiring.
func Profile(name string, mix OpMix, ht bool) Breakdown {
	memCycles := mix.RandomAccesses * costRandom
	coreCycles := mix.DependentALU*costDepALU + mix.ThroughputALU*costThruALU
	streamCycles := mix.StreamBytes * costStream
	branchCycles := mix.BranchOps * costBranch

	if ht {
		// Sharing the cache hierarchy raises miss rates; the paper's Fig. 8
		// shows higher memory-bound levels with SMT on.
		memCycles *= 1.35
	}

	total := memCycles + coreCycles + streamCycles + branchCycles
	if total == 0 {
		total = 1
	}

	// Stall model: random-access cycles stall the backend on memory;
	// dependent ALU chains stall the backend on the core (ports busy,
	// dependency chains); branches contribute bad speculation; streaming
	// mostly retires.
	memFrac := memCycles / total
	coreFrac := coreCycles / total
	branchFrac := branchCycles / total

	b := Breakdown{Name: name}
	b.BadSpeculation = 0.25 * branchFrac
	b.FrontendBound = 0.05
	b.MemoryBound = 0.65 * memFrac
	b.CoreBound = 0.55 * coreFrac
	b.BackendBound = b.MemoryBound + b.CoreBound
	b.Retiring = 1 - b.BadSpeculation - b.FrontendBound - b.BackendBound
	if b.Retiring < 0.05 {
		// Renormalize pathological mixes so the identity holds.
		scale := (1 - 0.05 - b.FrontendBound - b.BadSpeculation) / b.BackendBound
		b.MemoryBound *= scale
		b.CoreBound *= scale
		b.BackendBound = b.MemoryBound + b.CoreBound
		b.Retiring = 0.05
	}
	if ht {
		// SMT hides some frontend bubbles and retires more per cycle.
		delta := 0.02
		if b.FrontendBound > delta {
			b.FrontendBound -= delta
			b.Retiring += delta
		}
	}
	return b
}

// HG19SNAPCandidates is the mean number of candidate locations a SNAP-style
// aligner verifies per ~100-bp read against hg19. Hash seeds on a 3-Gbp
// reference hit several locations each (and ~45% of the genome is
// repetitive), so tens of candidates surface per read before best-score
// early termination prunes them; 16 is a conservative post-pruning mean.
// Synthetic megabase-scale references cannot reproduce this multiplicity
// (4^16 seed space vastly exceeds them), so measured mixes are extrapolated.
const HG19SNAPCandidates = 16

// ExtrapolateSNAPToHG19 rescales a measured small-genome SNAP op mix to
// hg19 candidate multiplicity: per-verification costs (measured) are kept,
// the number of verifications per read is raised to HG19SNAPCandidates, and
// each verification's reference-window fetch becomes a random access (at
// 3 Gbp the window is never cache resident).
func ExtrapolateSNAPToHG19(mix OpMix, measuredVerifiesPerRead float64) OpMix {
	if measuredVerifiesPerRead <= 0 {
		return mix
	}
	scale := HG19SNAPCandidates / measuredVerifiesPerRead
	if scale < 1 {
		return mix
	}
	mix.DependentALU *= scale
	mix.BranchOps *= scale
	mix.StreamBytes *= scale
	mix.RandomAccesses += HG19SNAPCandidates
	return mix
}

// SPECReferences returns canned top-down points for the SPEC CPU2006
// workloads Fig. 8 plots alongside the aligners, taken from published
// top-down characterizations (mcf: memory bound; libquantum: streaming
// memory; namd: compute bound; perlbench: balanced/frontend-sensitive).
func SPECReferences() []Breakdown {
	return []Breakdown{
		{Name: "spec-mcf", Retiring: 0.15, BadSpeculation: 0.10, FrontendBound: 0.05, BackendBound: 0.70, CoreBound: 0.10, MemoryBound: 0.60},
		{Name: "spec-libquantum", Retiring: 0.25, BadSpeculation: 0.02, FrontendBound: 0.03, BackendBound: 0.70, CoreBound: 0.15, MemoryBound: 0.55},
		{Name: "spec-namd", Retiring: 0.55, BadSpeculation: 0.05, FrontendBound: 0.05, BackendBound: 0.35, CoreBound: 0.30, MemoryBound: 0.05},
		{Name: "spec-perlbench", Retiring: 0.40, BadSpeculation: 0.12, FrontendBound: 0.18, BackendBound: 0.30, CoreBound: 0.18, MemoryBound: 0.12},
	}
}
