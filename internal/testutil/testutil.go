// Package testutil builds the synthetic fixtures shared by tests and
// benchmarks: small genomes, simulated read sets, and fully aligned AGD
// datasets.
package testutil

import (
	"testing"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/genome"
	"persona/internal/reads"
)

// Fixture bundles a synthetic genome with an aligned dataset over it.
type Fixture struct {
	Genome  *genome.Genome
	Index   *snap.Index
	Dataset *agd.Dataset
	Origins []reads.Origin
}

// Config parameterizes fixture construction.
type Config struct {
	GenomeSize int
	NumReads   int
	ReadLen    int
	ChunkSize  int
	DupFrac    float64
	Seed       int64
	// SkipAlign leaves the dataset without a results column.
	SkipAlign bool
}

// Build creates a genome, simulates reads, writes them as an AGD dataset
// into store under name, and (unless SkipAlign) aligns them with the SNAP
// aligner and appends the results column.
func Build(t testing.TB, store agd.BlobStore, name string, cfg Config) *Fixture {
	t.Helper()
	f, err := BuildE(store, name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// BuildE is Build with an error return, for use outside tests (benchmark
// harness, examples).
func BuildE(store agd.BlobStore, name string, cfg Config) (*Fixture, error) {
	if cfg.GenomeSize <= 0 {
		cfg.GenomeSize = 200_000
	}
	if cfg.NumReads <= 0 {
		cfg.NumReads = 1000
	}
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = 101
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}

	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(cfg.GenomeSize, cfg.Seed))
	if err != nil {
		return nil, err
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed:              cfg.Seed + 1,
		N:                 cfg.NumReads,
		ReadLen:           cfg.ReadLen,
		ErrorRate:         0.003,
		DuplicateFraction: cfg.DupFrac,
	})
	if err != nil {
		return nil, err
	}
	rs, origins := sim.All()

	w, err := agd.NewWriter(store, name, agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: cfg.ChunkSize,
		RefSeqs:   agd.RefSeqsFromGenome(g),
	})
	if err != nil {
		return nil, err
	}
	for i := range rs {
		if err := w.Append(rs[i].Bases, rs[i].Quals, []byte(rs[i].Meta)); err != nil {
			return nil, err
		}
	}
	m, err := w.Close()
	if err != nil {
		return nil, err
	}

	idx, err := snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
	if err != nil {
		return nil, err
	}
	fixture := &Fixture{Genome: g, Index: idx, Origins: origins}

	if !cfg.SkipAlign {
		aligner := snap.NewAligner(idx, snap.Config{MaxDist: 10})
		results := make([][]byte, len(rs))
		for i := range rs {
			res := aligner.AlignRead(rs[i].Bases)
			results[i] = agd.EncodeResult(nil, &res)
		}
		m, err = agd.AppendColumn(store, m, agd.ColumnSpec{Name: agd.ColResults, Type: agd.TypeResults},
			func(chunkIdx int) ([][]byte, error) {
				entry := m.Chunks[chunkIdx]
				return results[entry.First : entry.First+uint64(entry.Records)], nil
			})
		if err != nil {
			return nil, err
		}
	}
	fixture.Dataset = agd.OpenManifest(store, m)
	return fixture, nil
}
