package simulate

import (
	"container/heap"
	"fmt"
	"time"
)

// Distributed fused-pipeline model: the three-phase sample sort
// internal/cluster executes (map: read+align+spill a sorted run; shuffle:
// cut runs at the global splitters and rewrite every byte as partition
// pieces; reduce: merge each partition and write the output dataset) as a
// discrete-event simulation over the same FCFS storage resources as the
// Fig. 7 alignment model, with a barrier between phases — the coordinator
// computes global cuts only after the last map ack, and a partition merge
// starts only after the last shuffle ack. The merge itself is memory-bound
// and negligible next to alignment at paper calibration, so reduce CPU is
// not modelled; the phase is storage-limited.

// ParamsFromProfile reseeds the storage-side calibration of base from a
// measured read profile (storage.RetryStore.ReadProfile's values: median
// per-read latency, mean MB/s, sample count) instead of the hardcoded
// constants: the per-pipe bandwidth becomes the measured throughput, the
// aggregate Ceph read/write capacities scale by the same factor (cluster
// width held constant, per-OSD service time measured), and the measured
// median latency joins the startup ramp as the first-chunk fetch cost.
// With no samples the calibration is returned untouched — simulation
// quality degrades to the paper constants, never to garbage.
func ParamsFromProfile(base PaperParams, lat time.Duration, mbps float64, samples int) PaperParams {
	if samples <= 0 || mbps <= 0 {
		return base
	}
	measured := mbps * 1e6 // bytes/s per pipe
	factor := measured / base.PipeBW
	base.PipeBW = measured
	base.DiskBW *= factor
	base.CephReadBW *= factor
	base.CephWriteBW *= factor
	base.StartupSeconds += lat.Seconds()
	return base
}

// distTask is one phase task's resource demands.
type distTask struct {
	readBytes  float64
	cpuSeconds float64
	writeBytes float64
}

// runPhase executes one phase's tasks across nodes worker nodes, each
// prefetching up to queueDepth tasks, against shared read/write resources,
// starting at start. Returns the phase's completion time (the barrier).
func runPhase(nodes, queueDepth, nTasks int, task distTask, read, write *fcfs, start float64) float64 {
	type nodeState struct {
		queued   int
		fetching int
		cpuBusy  bool
	}
	ns := make([]nodeState, nodes)
	remaining := nTasks
	finished := 0
	end := start

	var events eventHeap
	schedule := func(t float64, fn func(now float64)) {
		heap.Push(&events, event{t: t, fn: fn})
	}
	complete := func(now float64) {
		finished++
		if now > end {
			end = now
		}
	}

	var tryFetch func(n int, now float64)
	var tryCPU func(n int, now float64)
	tryFetch = func(n int, now float64) {
		nd := &ns[n]
		for remaining > 0 && nd.fetching+nd.queued < queueDepth {
			remaining--
			nd.fetching++
			done := now
			if task.readBytes > 0 {
				done = read.request(now, task.readBytes)
			}
			schedule(done, func(now float64) {
				nd.fetching--
				nd.queued++
				tryCPU(n, now)
				tryFetch(n, now)
			})
		}
	}
	tryCPU = func(n int, now float64) {
		nd := &ns[n]
		if nd.cpuBusy || nd.queued == 0 {
			return
		}
		nd.queued--
		nd.cpuBusy = true
		schedule(now+task.cpuSeconds, func(now float64) {
			nd.cpuBusy = false
			if task.writeBytes > 0 {
				schedule(write.request(now, task.writeBytes), complete)
			} else {
				complete(now)
			}
			tryCPU(n, now)
			tryFetch(n, now)
		})
	}

	heap.Init(&events)
	for n := 0; n < nodes; n++ {
		tryFetch(n, start)
	}
	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		e.fn(e.t)
	}
	return end
}

// DistPipelineConfig parameterizes one distributed-pipeline simulation.
type DistPipelineConfig struct {
	Nodes int
	// ChunksPerBatch is the map granularity (0 = the scheduler's default 8).
	ChunksPerBatch int
	Params         PaperParams
}

// DistPipelineResult reports one simulated distributed-pipeline run.
type DistPipelineResult struct {
	Nodes          int
	Seconds        float64 // makespan including the startup ramp
	MapSeconds     float64 // read + align + spill runs (ends at the cut barrier)
	ShuffleSeconds float64 // run → partition piece rewrite
	ReduceSeconds  float64 // piece merge + replicated output write
	BasesPerSec    float64
	ShuffleBytes   float64 // bytes crossing the shuffle (read once, written once)
}

// SimulateDistPipeline runs the three-phase DES for one node count.
func SimulateDistPipeline(cfg DistPipelineConfig) (DistPipelineResult, error) {
	p := cfg.Params
	if cfg.Nodes <= 0 {
		return DistPipelineResult{}, fmt.Errorf("simulate: Nodes = %d", cfg.Nodes)
	}
	perBatch := cfg.ChunksPerBatch
	if perBatch <= 0 {
		perBatch = 8
	}
	numBatches := (p.NumChunks + perBatch - 1) / perBatch
	if numBatches < 1 {
		return DistPipelineResult{}, fmt.Errorf("simulate: no chunks")
	}
	// A sorted run holds every column the pipeline touches: the read
	// columns that came in plus the results column alignment appended.
	runBytes := (p.AGDReadBytes + p.AGDWriteBytes) / float64(numBatches)
	batchBases := p.TotalBases / float64(numBatches)

	read := &fcfs{rate: p.CephReadBW}
	write := &fcfs{rate: p.CephWriteBW}

	// Map: read a batch of chunks, align at the node rate, spill one
	// unreplicated run. Shuffle: read each run back, rewrite its bytes as
	// partition pieces (unreplicated temp blobs). Reduce: each partition
	// reads its pieces and writes the replicated output dataset.
	mapEnd := runPhase(cfg.Nodes, p.QueueDepth, numBatches, distTask{
		readBytes:  p.AGDReadBytes / float64(numBatches),
		cpuSeconds: batchBases / p.NodeRate,
		writeBytes: runBytes,
	}, read, write, 0)
	shufEnd := runPhase(cfg.Nodes, p.QueueDepth, numBatches, distTask{
		readBytes:  runBytes,
		writeBytes: runBytes,
	}, read, write, mapEnd)
	partBytes := (p.AGDReadBytes + p.AGDWriteBytes) / float64(cfg.Nodes)
	redEnd := runPhase(cfg.Nodes, p.QueueDepth, cfg.Nodes, distTask{
		readBytes:  partBytes,
		writeBytes: partBytes * float64(p.Replication),
	}, read, write, shufEnd)

	makespan := redEnd + p.StartupSeconds
	return DistPipelineResult{
		Nodes:          cfg.Nodes,
		Seconds:        makespan,
		MapSeconds:     mapEnd,
		ShuffleSeconds: shufEnd - mapEnd,
		ReduceSeconds:  redEnd - shufEnd,
		BasesPerSec:    p.TotalBases / makespan,
		ShuffleBytes:   p.AGDReadBytes + p.AGDWriteBytes,
	}, nil
}

// DistPoint is one point of the distributed-pipeline scaling series.
type DistPoint struct {
	Nodes       int
	Seconds     float64
	BasesPerSec float64
}

// DistScaling sweeps node counts through the distributed-pipeline DES — the
// predicted analogue of PERF.md's measured workers∈{1,2,4} curve.
func DistScaling(p PaperParams, nodeCounts []int) ([]DistPoint, error) {
	var out []DistPoint
	for _, n := range nodeCounts {
		res, err := SimulateDistPipeline(DistPipelineConfig{Nodes: n, Params: p})
		if err != nil {
			return nil, err
		}
		out = append(out, DistPoint{Nodes: n, Seconds: res.Seconds, BasesPerSec: res.BasesPerSec})
	}
	return out, nil
}
