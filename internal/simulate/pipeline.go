package simulate

import "fmt"

// PipelineConfig describes one single-server alignment configuration for
// the fluid pipeline model: total I/O volumes, compute rate, and the
// storage path the bytes travel.
type PipelineConfig struct {
	Name string

	TotalBases  float64
	ComputeRate float64 // bases/s with all aligner threads busy

	ReadBytes  float64 // total input bytes
	WriteBytes float64 // total output bytes

	// Storage path. Exactly one of the following shapes applies:
	//  - SharedDiskBW > 0: reads and writes share one device (single disk
	//    or RAID0) through the OS buffer cache (writeback model).
	//  - ChannelBW > 0: reads and writes share a single network channel
	//    (the rados pipe path of Table 1's "Network" row for SNAP).
	//  - ReadBW/WriteBW > 0: independent read/write paths (Persona on
	//    Ceph: reads and replicated writes ride separate flows under the
	//    NIC cap).
	SharedDiskBW float64
	ChannelBW    float64
	ReadBW       float64
	WriteBW      float64

	// Buffer cache writeback (shared-disk path): dirty bytes accumulate
	// until DirtyHigh, then the flusher drains the cache to DirtyLow at
	// full disk bandwidth, starving reads — the §5.3 observation that "the
	// operating system's buffer cache writeback policy competes with the
	// application-driven data reads". Zeros choose defaults.
	DirtyHigh, DirtyLow float64

	// InputBufferBytes caps read-ahead (defaults to 256 MB).
	InputBufferBytes float64
}

// UtilSample is one point of the Fig. 5 CPU-utilization trace.
type UtilSample struct {
	T         float64 // seconds
	CPU       float64 // fraction of aligner capacity busy [0,1]
	ReadMBps  float64
	WriteMBps float64
}

// PipelineResult is the outcome of a fluid simulation.
type PipelineResult struct {
	Name                  string
	Seconds               float64
	Trace                 []UtilSample
	AvgCPU                float64
	ReadBytes, WriteBytes float64
}

// RunPipeline advances a fluid model of the read→align→write pipeline in
// fixed steps until all bases are aligned and all output has reached
// stable storage.
func RunPipeline(cfg PipelineConfig) (PipelineResult, error) {
	if cfg.TotalBases <= 0 || cfg.ComputeRate <= 0 {
		return PipelineResult{}, fmt.Errorf("simulate: bad pipeline config %+v", cfg)
	}
	paths := 0
	if cfg.SharedDiskBW > 0 {
		paths++
	}
	if cfg.ChannelBW > 0 {
		paths++
	}
	if cfg.ReadBW > 0 || cfg.WriteBW > 0 {
		paths++
	}
	if paths != 1 {
		return PipelineResult{}, fmt.Errorf("simulate: config %q must select exactly one storage path", cfg.Name)
	}
	if cfg.InputBufferBytes <= 0 {
		cfg.InputBufferBytes = 256e6
	}
	if cfg.DirtyHigh <= 0 {
		cfg.DirtyHigh = 1.5e9
	}
	if cfg.DirtyLow <= 0 {
		cfg.DirtyLow = 0.3e9
	}

	readPerBase := cfg.ReadBytes / cfg.TotalBases
	writePerBase := cfg.WriteBytes / cfg.TotalBases

	const dt = 0.05
	const sampleEvery = 1.0 // seconds per trace sample

	var (
		t                         float64
		basesDone                 float64
		bytesRead                 float64
		inputBuf                  float64 // bytes read but not yet consumed by align
		dirty                     float64 // bytes written but not yet flushed
		flushing                  bool
		trace                     []UtilSample
		cpuAccum                  float64
		cpuSamples                int
		winRead, winWrite, winCPU float64
		winT                      float64
	)

	// Completion uses a half-base / half-byte epsilon: the fluid quantities
	// asymptote toward their totals and would otherwise never land exactly.
	for {
		if basesDone >= cfg.TotalBases-0.5 && dirty <= 0.5 {
			break
		}
		if t > 1e7 {
			return PipelineResult{}, fmt.Errorf("simulate: %q did not converge", cfg.Name)
		}

		// Bandwidth available this step.
		var readBW, writeBW float64
		switch {
		case cfg.SharedDiskBW > 0:
			if flushing {
				readBW, writeBW = 0, cfg.SharedDiskBW
			} else {
				readBW, writeBW = cfg.SharedDiskBW, 0
			}
		case cfg.ChannelBW > 0:
			// Reads and writes share the channel; pending output drains
			// first (the pipe applies back-pressure), reads get the rest.
			writeNeed := dirty / dt
			if writeNeed > cfg.ChannelBW {
				writeNeed = cfg.ChannelBW
			}
			writeBW = writeNeed
			readBW = cfg.ChannelBW - writeBW
		default:
			readBW, writeBW = cfg.ReadBW, cfg.WriteBW
		}

		// Read stage.
		var readBytesStep float64
		if bytesRead < cfg.ReadBytes {
			room := cfg.InputBufferBytes - inputBuf
			readBytesStep = readBW * dt
			if readBytesStep > room {
				readBytesStep = room
			}
			if readBytesStep > cfg.ReadBytes-bytesRead {
				readBytesStep = cfg.ReadBytes - bytesRead
			}
			if readBytesStep < 0 {
				readBytesStep = 0
			}
			bytesRead += readBytesStep
			inputBuf += readBytesStep
		}

		// Align stage: limited by compute rate and input availability.
		alignBases := cfg.ComputeRate * dt
		if remaining := cfg.TotalBases - basesDone; alignBases > remaining {
			alignBases = remaining
		}
		if readPerBase > 0 && bytesRead < cfg.ReadBytes-0.5 {
			// While input is still streaming, consumption is bounded by
			// what has arrived. Once everything is read, the remaining
			// buffered fluid is exactly the remaining bases (modulo float
			// residue), so the clamp above suffices.
			if avail := inputBuf / readPerBase; alignBases > avail {
				alignBases = avail
			}
		}
		basesDone += alignBases
		inputBuf -= alignBases * readPerBase
		dirty += alignBases * writePerBase

		// Write-back stage.
		if cfg.SharedDiskBW > 0 {
			if !flushing && (dirty >= cfg.DirtyHigh || (basesDone >= cfg.TotalBases-0.5 && dirty > 0.5)) {
				flushing = true
			}
			if flushing {
				flushed := writeBW * dt
				if flushed > dirty {
					flushed = dirty
				}
				dirty -= flushed
				winWrite += flushed
				// Stay in the flush state during the final drain (all
				// bases aligned): everything left must reach the disk.
				finalDrain := basesDone >= cfg.TotalBases-0.5
				if dirty <= cfg.DirtyLow && !finalDrain {
					flushing = false
				}
			}
		} else {
			flushed := writeBW * dt
			if flushed > dirty {
				flushed = dirty
			}
			dirty -= flushed
			winWrite += flushed
		}

		cpu := alignBases / (cfg.ComputeRate * dt)
		cpuAccum += cpu
		cpuSamples++
		winRead += readBytesStep
		winCPU += cpu * dt
		winT += dt
		t += dt
		if winT >= sampleEvery {
			trace = append(trace, UtilSample{
				T:         t,
				CPU:       winCPU / winT,
				ReadMBps:  winRead / winT / 1e6,
				WriteMBps: winWrite / winT / 1e6,
			})
			winRead, winWrite, winCPU, winT = 0, 0, 0, 0
		}
	}

	res := PipelineResult{
		Name:       cfg.Name,
		Seconds:    t,
		Trace:      trace,
		ReadBytes:  cfg.ReadBytes,
		WriteBytes: cfg.WriteBytes,
	}
	if cpuSamples > 0 {
		res.AvgCPU = cpuAccum / float64(cpuSamples)
	}
	return res, nil
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Config         string
	SNAPSeconds    float64
	PersonaSeconds float64
	Speedup        float64
}

// Table1 reproduces the paper's Table 1: single-server dataset alignment
// time for SNAP (gzipped FASTQ → SAM) versus Persona (AGD), across three
// storage configurations, plus the data-volume row.
func Table1(p PaperParams) ([]Table1Row, error) {
	type pair struct {
		name          string
		snap, persona PipelineConfig
	}
	raidBW := p.DiskBW * float64(p.RAIDDisks)
	pairs := []pair{
		{
			name: "Disk(Single)",
			snap: PipelineConfig{Name: "snap-single", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
				ReadBytes: p.FASTQReadBytes, WriteBytes: p.SAMWriteBytes, SharedDiskBW: p.DiskBW},
			persona: PipelineConfig{Name: "persona-single", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
				ReadBytes: p.AGDReadBytes, WriteBytes: p.AGDWriteBytes, SharedDiskBW: p.DiskBW},
		},
		{
			name: "Disk(RAID)",
			snap: PipelineConfig{Name: "snap-raid", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
				ReadBytes: p.FASTQReadBytes, WriteBytes: p.SAMWriteBytes, SharedDiskBW: raidBW},
			persona: PipelineConfig{Name: "persona-raid", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
				ReadBytes: p.AGDReadBytes, WriteBytes: p.AGDWriteBytes, SharedDiskBW: raidBW},
		},
		{
			name: "Network",
			snap: PipelineConfig{Name: "snap-network", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
				ReadBytes: p.FASTQReadBytes, WriteBytes: p.SAMWriteBytes, ChannelBW: p.PipeBW},
			persona: PipelineConfig{Name: "persona-network", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
				ReadBytes: p.AGDReadBytes, WriteBytes: p.AGDWriteBytes, ReadBW: p.NICBW, WriteBW: p.NICBW},
		},
	}
	var rows []Table1Row
	for _, pr := range pairs {
		s, err := RunPipeline(pr.snap)
		if err != nil {
			return nil, err
		}
		g, err := RunPipeline(pr.persona)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Config:         pr.name,
			SNAPSeconds:    s.Seconds,
			PersonaSeconds: g.Seconds,
			Speedup:        s.Seconds / g.Seconds,
		})
	}
	return rows, nil
}

// Fig5 produces the CPU-utilization traces of Fig. 5: SNAP vs Persona on a
// single disk (a) and on RAID0 (b).
func Fig5(p PaperParams) (map[string]PipelineResult, error) {
	raidBW := p.DiskBW * float64(p.RAIDDisks)
	configs := []PipelineConfig{
		{Name: "snap-singledisk", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
			ReadBytes: p.FASTQReadBytes, WriteBytes: p.SAMWriteBytes, SharedDiskBW: p.DiskBW},
		{Name: "persona-singledisk", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
			ReadBytes: p.AGDReadBytes, WriteBytes: p.AGDWriteBytes, SharedDiskBW: p.DiskBW},
		{Name: "snap-raid0", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
			ReadBytes: p.FASTQReadBytes, WriteBytes: p.SAMWriteBytes, SharedDiskBW: raidBW},
		{Name: "persona-raid0", TotalBases: p.TotalBases, ComputeRate: p.NodeRate,
			ReadBytes: p.AGDReadBytes, WriteBytes: p.AGDWriteBytes, SharedDiskBW: raidBW},
	}
	out := make(map[string]PipelineResult, len(configs))
	for _, cfg := range configs {
		res, err := RunPipeline(cfg)
		if err != nil {
			return nil, err
		}
		out[cfg.Name] = res
	}
	return out, nil
}
