package simulate

import (
	"math"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	p := DefaultPaperParams()
	rows, err := Table1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}

	single := byName["Disk(Single)"]
	// Paper: 817 vs 501 s → 1.63×. Shape: Persona wins by 1.4–1.9×.
	if single.Speedup < 1.4 || single.Speedup > 1.9 {
		t.Fatalf("single-disk speedup %.2f, want ≈1.63", single.Speedup)
	}
	// Persona single-disk should be close to compute-bound time (~496 s).
	compute := p.TotalBases / p.NodeRate
	if single.PersonaSeconds < compute*0.98 || single.PersonaSeconds > compute*1.15 {
		t.Fatalf("persona single-disk %.0f s, compute bound is %.0f s", single.PersonaSeconds, compute)
	}

	raid := byName["Disk(RAID)"]
	// Paper: 494 vs 499 → ≈1.0 (both compute bound).
	if raid.Speedup < 0.9 || raid.Speedup > 1.1 {
		t.Fatalf("RAID speedup %.2f, want ≈1.0", raid.Speedup)
	}

	network := byName["Network"]
	// Paper: 760 vs 493.5 → 1.54×.
	if network.Speedup < 1.3 || network.Speedup > 1.8 {
		t.Fatalf("network speedup %.2f, want ≈1.54", network.Speedup)
	}

	// Data-volume shape: SNAP writes ~16.75× more than Persona.
	if ratio := p.SAMWriteBytes / p.AGDWriteBytes; ratio < 15 || ratio > 18 {
		t.Fatalf("write amplification %.1f, want ≈16.75", ratio)
	}
}

func TestFig5SNAPSingleDiskIsCyclical(t *testing.T) {
	p := DefaultPaperParams()
	traces, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	snap := traces["snap-singledisk"]
	// Count CPU troughs: transitions from >0.8 to <0.4 — the §5.3
	// writeback stalls.
	dips := 0
	high := false
	for _, s := range snap.Trace {
		if s.CPU > 0.8 {
			high = true
		}
		if high && s.CPU < 0.4 {
			dips++
			high = false
		}
	}
	if dips < 5 {
		t.Fatalf("SNAP single-disk trace has %d CPU dips, want cyclical behaviour", dips)
	}
	if snap.AvgCPU > 0.85 {
		t.Fatalf("SNAP single-disk avg CPU %.2f, should be throttled by disk", snap.AvgCPU)
	}

	persona := traces["persona-singledisk"]
	if persona.AvgCPU < 0.9 {
		t.Fatalf("Persona single-disk avg CPU %.2f, want CPU bound", persona.AvgCPU)
	}

	// RAID0: both roughly CPU bound (Fig. 5b).
	if traces["snap-raid0"].AvgCPU < 0.85 || traces["persona-raid0"].AvgCPU < 0.9 {
		t.Fatalf("RAID0 traces not CPU bound: snap %.2f persona %.2f",
			traces["snap-raid0"].AvgCPU, traces["persona-raid0"].AvgCPU)
	}
}

func TestFig7LinearThenSaturates(t *testing.T) {
	p := DefaultPaperParams()
	counts := []int{1, 2, 4, 8, 16, 32, 48, 60, 70, 85, 100}
	points, err := Fig7(p, counts)
	if err != nil {
		t.Fatal(err)
	}
	byNodes := map[int]Fig7Point{}
	for _, pt := range points {
		byNodes[pt.Nodes] = pt
	}

	// Linear region: throughput at 32 nodes ≈ 32 × single-node. The paper's
	// own measured 32-node point sits at ~93% of its ideal line (1.353 vs
	// 1.454 Gbases/s), so the band accepts the startup-ramp discount.
	one := byNodes[1].BasesPerSec
	r32 := byNodes[32].BasesPerSec / (32 * one)
	if r32 < 0.90 || r32 > 1.05 {
		t.Fatalf("32-node efficiency %.3f, want ≈0.93-1", r32)
	}

	// Paper headline: ≈1.353 Gbases/s at 32 nodes, ≈16.7 s per genome.
	if g := byNodes[32].BasesPerSec / 1e9; g < 1.25 || g < 0 || g > 1.55 {
		t.Fatalf("32-node rate %.3f Gbases/s, want ≈1.35", g)
	}
	if s := byNodes[32].Seconds; s < 15 || s > 19 {
		t.Fatalf("32-node time %.1f s, want ≈16.7", s)
	}

	// Saturation: 100 nodes gain little over 70 (write-limited past ~60).
	gain := byNodes[100].BasesPerSec / byNodes[70].BasesPerSec
	if gain > 1.10 {
		t.Fatalf("100 vs 70 nodes gain %.2f, expected saturation", gain)
	}
	// And 60 nodes should still be reasonably efficient.
	r60 := byNodes[60].BasesPerSec / (60 * one)
	if r60 < 0.85 {
		t.Fatalf("60-node efficiency %.3f, want >0.85", r60)
	}
	// Sanity: non-decreasing throughput with more nodes.
	for i := 1; i < len(counts); i++ {
		if byNodes[counts[i]].BasesPerSec+1e3 < byNodes[counts[i-1]].BasesPerSec {
			t.Fatalf("throughput decreased from %d to %d nodes", counts[i-1], counts[i])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	p := DefaultPaperParams()
	points := Fig6(p)
	if len(points) != 48 {
		t.Fatalf("points = %d", len(points))
	}
	at := func(threads int) Fig6Point { return points[threads-1] }

	// Near-linear to 24 threads.
	lin := at(24).PersonaSNAP / (24 * at(1).PersonaSNAP)
	if math.Abs(lin-1) > 0.05 {
		t.Fatalf("24-thread linearity %.3f", lin)
	}
	// Hyperthread gain ≈32% per extra thread pair region.
	gain := at(48).PersonaSNAP / at(24).PersonaSNAP
	if gain < 1.25 || gain > 1.4 {
		t.Fatalf("SMT gain %.3f, want ≈1.32", gain)
	}
	// SNAP drops at 48 threads, Persona does not.
	if at(48).SNAP >= at(47).SNAP {
		t.Fatal("SNAP should drop at 48 threads")
	}
	if at(48).PersonaSNAP < at(47).PersonaSNAP {
		t.Fatal("Persona SNAP should not drop at 48 threads")
	}
	// BWA flattens past 24; Persona BWA scales slightly better.
	if at(40).BWA > at(24).BWA*1.02 {
		t.Fatal("standalone BWA should not scale past 24 threads")
	}
	if at(40).PersonaBWA <= at(40).BWA {
		t.Fatal("Persona BWA should beat standalone BWA past 24 threads")
	}
	// Persona-SNAP at 47 threads matches the calibrated node rate.
	if math.Abs(at(47).PersonaSNAP-p.NodeRate)/p.NodeRate > 0.01 {
		t.Fatalf("47-thread rate %.3e, want %.3e", at(47).PersonaSNAP, p.NodeRate)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := RunPipeline(PipelineConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunPipeline(PipelineConfig{
		TotalBases: 1e9, ComputeRate: 1e6, SharedDiskBW: 1, ChannelBW: 1,
	}); err == nil {
		t.Fatal("two storage paths accepted")
	}
}

func TestSimulateClusterValidation(t *testing.T) {
	if _, err := SimulateCluster(ClusterSimConfig{Nodes: 0, Params: DefaultPaperParams()}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}
