package simulate

import (
	"testing"
	"time"
)

func TestParamsFromProfileUnmeasured(t *testing.T) {
	base := DefaultPaperParams()
	got := ParamsFromProfile(base, 5*time.Millisecond, 120, 0)
	if got != base {
		t.Error("zero samples should leave the calibration untouched")
	}
	got = ParamsFromProfile(base, 5*time.Millisecond, 0, 10)
	if got != base {
		t.Error("zero throughput should leave the calibration untouched")
	}
}

func TestParamsFromProfileSeeds(t *testing.T) {
	base := DefaultPaperParams()
	// Twice the paper's per-pipe bandwidth: every storage-side rate doubles,
	// compute rates stay put, and the measured latency joins the ramp.
	got := ParamsFromProfile(base, 20*time.Millisecond, 2*base.PipeBW/1e6, 64)
	if got.PipeBW != 2*base.PipeBW {
		t.Errorf("PipeBW = %g, want %g", got.PipeBW, 2*base.PipeBW)
	}
	if got.CephReadBW != 2*base.CephReadBW || got.CephWriteBW != 2*base.CephWriteBW || got.DiskBW != 2*base.DiskBW {
		t.Errorf("aggregates not scaled: read %g write %g disk %g", got.CephReadBW, got.CephWriteBW, got.DiskBW)
	}
	if want := base.StartupSeconds + 0.02; got.StartupSeconds != want {
		t.Errorf("StartupSeconds = %g, want %g", got.StartupSeconds, want)
	}
	if got.NodeRate != base.NodeRate {
		t.Errorf("NodeRate changed: %g", got.NodeRate)
	}
}

func TestSimulateDistPipelineScaling(t *testing.T) {
	p := DefaultPaperParams()
	points, err := DistScaling(p, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Seconds >= points[i-1].Seconds {
			t.Errorf("no speedup from %d to %d nodes: %.1fs -> %.1fs",
				points[i-1].Nodes, points[i].Nodes, points[i-1].Seconds, points[i].Seconds)
		}
	}
	// At few nodes the run is alignment-bound, so doubling nodes should
	// nearly halve the makespan (allow 25% slack for the storage phases).
	if sp := points[0].Seconds / points[1].Seconds; sp < 1.5 {
		t.Errorf("1→2 node speedup = %.2f, want near-linear", sp)
	}

	res, err := SimulateDistPipeline(DistPipelineConfig{Nodes: 4, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapSeconds <= 0 || res.ShuffleSeconds <= 0 || res.ReduceSeconds <= 0 {
		t.Errorf("phase times must be positive: map %.1f shuffle %.1f reduce %.1f",
			res.MapSeconds, res.ShuffleSeconds, res.ReduceSeconds)
	}
	if res.MapSeconds < res.ShuffleSeconds {
		t.Errorf("at paper calibration the map (alignment) phase should dominate: map %.1f < shuffle %.1f",
			res.MapSeconds, res.ShuffleSeconds)
	}
	if res.ShuffleBytes != p.AGDReadBytes+p.AGDWriteBytes {
		t.Errorf("ShuffleBytes = %g", res.ShuffleBytes)
	}

	if _, err := SimulateDistPipeline(DistPipelineConfig{Nodes: 0, Params: p}); err == nil {
		t.Error("Nodes=0 did not error")
	}
}
