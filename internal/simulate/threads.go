package simulate

// Thread-scaling model behind Fig. 6: alignment rate versus provisioned
// aligner threads on one 48-logical-core server (24 physical, 2-way SMT).
// Calibrated to the paper's observations (§5.4):
//   - near-linear speedup to 24 threads;
//   - a 2nd hyperthread adds ~32% of a core;
//   - standalone SNAP drops at 48 threads from I/O-scheduling contention,
//     Persona does not (TensorFlow queue abstractions);
//   - standalone BWA flattens past 24 threads on memory contention;
//     Persona-BWA scales slightly better because its executor pins
//     processing stages to thread sets, reducing interference (§6).

// Fig6Point is one sample of one Fig. 6 series.
type Fig6Point struct {
	Threads int
	// Rates in bases/s.
	SNAP, PersonaSNAP, BWA, PersonaBWA float64
	SNAPPerfect, BWAPerfect            float64
}

// snapPerCoreRate derives the per-physical-core SNAP rate from the
// calibrated 47-thread node rate.
func snapPerCoreRate(p PaperParams) float64 {
	// 47 threads = 24 physical + 23 hyperthreads.
	effective := float64(p.PhysicalCores) + float64(47-p.PhysicalCores)*p.HyperthreadGain
	return p.NodeRate / effective
}

// bwaSlowdown is SNAP's throughput advantage over BWA-MEM per core; BWA-MEM
// trades speed for sensitivity (§5.3: SNAP "has higher throughput").
const bwaSlowdown = 2.8

// effectiveCores maps a thread count to effective cores with SMT yield.
func effectiveCores(threads int, p PaperParams) float64 {
	if threads <= p.PhysicalCores {
		return float64(threads)
	}
	ht := threads - p.PhysicalCores
	if ht > p.PhysicalCores {
		ht = p.PhysicalCores
	}
	return float64(p.PhysicalCores) + float64(ht)*p.HyperthreadGain
}

// Fig6 produces all series for threads 1..48.
func Fig6(p PaperParams) []Fig6Point {
	snapCore := snapPerCoreRate(p)
	bwaCore := snapCore / bwaSlowdown
	var out []Fig6Point
	for t := 1; t <= 2*p.PhysicalCores; t++ {
		eff := effectiveCores(t, p)

		snap := snapCore * eff
		if t == 2*p.PhysicalCores {
			// §5.4: "At 48 threads however, contention with I/O scheduling
			// causes a drop in performance in SNAP."
			snap *= 0.90
		}
		personaSNAP := snapCore * eff

		var bwa, personaBWA float64
		if t <= p.PhysicalCores {
			bwa = bwaCore * float64(t)
			personaBWA = bwa
		} else {
			ht := float64(t - p.PhysicalCores)
			// Standalone BWA: memory contention consumes the SMT gain and
			// erodes slightly with every extra hyperthread.
			bwa = bwaCore * float64(p.PhysicalCores) * (1 - 0.004*ht)
			// Persona BWA: reduced interference keeps a modest SMT gain.
			personaBWA = bwaCore * (float64(p.PhysicalCores) + ht*0.12)
		}

		out = append(out, Fig6Point{
			Threads:     t,
			SNAP:        snap,
			PersonaSNAP: personaSNAP,
			BWA:         bwa,
			PersonaBWA:  personaBWA,
			SNAPPerfect: snapCore * float64(t),
			BWAPerfect:  bwaCore * float64(t),
		})
	}
	return out
}
