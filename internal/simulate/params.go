// Package simulate models Persona's performance at paper scale: the
// single-server I/O experiments of Table 1 and Fig. 5, the thread-scaling
// curves of Fig. 6, and the cluster-scaling experiment of Fig. 7.
//
// The paper itself validates its >32-node claims with exactly this
// methodology: "we deploy multiple 'virtual' TensorFlow sessions per server
// and replace the CPU-intensive SNAP algorithm with a stub that simply
// suspends execution for the mean time required to align a chunk" (§5.5).
// This package is that stub methodology made explicit: calibrated rates
// plus a discrete-event/fluid model of disks, buffer cache, NICs and the
// Ceph cluster. Functional distributed behaviour (real chunk fan-out,
// real TCP manifest server) lives in internal/cluster; absolute paper-scale
// numbers come from here. See DESIGN.md §3.
package simulate

// PaperParams holds the calibrated paper-scale constants (§5.1–§5.2 and
// Table 1 of the paper).
type PaperParams struct {
	// Dataset: half of ERR174324.
	ReadLen    int     // 101 bases
	ChunkReads int     // 100,000 reads per AGD chunk
	NumChunks  int     // 2231 chunks
	TotalBases float64 // ≈22.53 Gbases

	// Compute.
	NodeRate        float64 // bases/s per node at 47 aligner threads (≈45.45e6)
	PhysicalCores   int     // 24 per node
	HyperthreadGain float64 // 2nd hyperthread adds 32% of a core (§5.4)

	// Single-server storage (Table 1).
	AGDReadBytes   float64 // bases+qual columns: ≈15 GB
	AGDWriteBytes  float64 // results column: ≈4 GB
	FASTQReadBytes float64 // gzipped FASTQ: ≈18 GB
	SAMWriteBytes  float64 // SAM text: ≈67 GB
	DiskBW         float64 // effective single-disk bandwidth, B/s
	RAIDDisks      int     // RAID0 width
	NICBW          float64 // 10GbE
	PipeBW         float64 // single-stream rados pipe effective B/s (§5.3 fn.1)

	// Ceph cluster (Fig. 7).
	CephReadBW  float64 // measured aggregate read peak: 6 GB/s
	CephWriteBW float64 // aggregate replicated-write capacity, B/s
	Replication int     // 3-way
	QueueDepth  int     // chunks in flight per node (shallow queues, §4.5)
	// StartupSeconds is the per-run ramp (session launch, first-chunk
	// fetch) included in end-to-end times: the paper measures "from the
	// beginning of the request to when all results are written back", and
	// its measured 32-node point sits at ~93% of its ideal line.
	StartupSeconds float64
}

// DefaultPaperParams returns the calibration used throughout EXPERIMENTS.md.
func DefaultPaperParams() PaperParams {
	return PaperParams{
		ReadLen:    101,
		ChunkReads: 100_000,
		NumChunks:  2231,
		TotalBases: 2231 * 100_000 * 101, // 22.533 Gbases

		NodeRate:        45.45e6,
		PhysicalCores:   24,
		HyperthreadGain: 0.32,

		AGDReadBytes:   15e9,
		AGDWriteBytes:  4e9,
		FASTQReadBytes: 18e9,
		SAMWriteBytes:  67e9,
		DiskBW:         110e6,
		RAIDDisks:      6,
		NICBW:          1.25e9,
		PipeBW:         112e6,

		CephReadBW:  6e9,
		CephWriteBW: 1.45e9, // 70 disks × ~110 MB/s over 3× replication + journaling ≈ 1.45 GB/s
		Replication: 3,
		QueueDepth:  2,

		StartupSeconds: 1.0,
	}
}
