package simulate

import (
	"container/heap"
	"fmt"
)

// Discrete-event simulation of the Fig. 7 experiment: N compute nodes pull
// AGD chunks from the Ceph cluster, align them at the calibrated node rate,
// and write replicated results back. The storage cluster's aggregate read
// and write bandwidths are FCFS-served resources; when the replicated
// result writes exhaust CephWriteBW (≈60 nodes at paper calibration),
// throughput saturates — "beyond 60 nodes ... write performance of the
// alignment results limits performance" (§5.5).

// event is one scheduled simulation callback.
type event struct {
	t  float64
	fn func(now float64)
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// fcfs is a single-server queue with a fixed byte rate: requests are
// serviced in arrival order at the resource's aggregate bandwidth.
type fcfs struct {
	rate   float64 // bytes/s
	freeAt float64
	busy   float64 // cumulative busy seconds
}

// request schedules a transfer of size bytes arriving at now and returns
// its completion time.
func (r *fcfs) request(now, bytes float64) float64 {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	dur := bytes / r.rate
	r.freeAt = start + dur
	r.busy += dur
	return r.freeAt
}

// ClusterSimConfig parameterizes one cluster simulation run.
type ClusterSimConfig struct {
	Nodes  int
	Params PaperParams
}

// ClusterSimResult reports one run.
type ClusterSimResult struct {
	Nodes       int
	Seconds     float64 // makespan: request start to last result write
	BasesPerSec float64
	ReadBusy    float64 // Ceph read resource utilization [0,1]
	WriteBusy   float64 // Ceph write resource utilization [0,1]
}

// clusterNode is one compute node's pipeline state.
type clusterNode struct {
	queued   int // fetched chunks awaiting CPU
	fetching int // fetches in flight
	cpuBusy  bool
}

// SimulateCluster runs the chunk-level DES for a node count.
func SimulateCluster(cfg ClusterSimConfig) (ClusterSimResult, error) {
	p := cfg.Params
	if cfg.Nodes <= 0 {
		return ClusterSimResult{}, fmt.Errorf("simulate: Nodes = %d", cfg.Nodes)
	}
	chunkBases := float64(p.ChunkReads * p.ReadLen)
	chunkReadBytes := p.AGDReadBytes / float64(p.NumChunks)
	chunkWriteBytes := p.AGDWriteBytes / float64(p.NumChunks) * float64(p.Replication)
	alignTime := chunkBases / p.NodeRate

	read := &fcfs{rate: p.CephReadBW}
	write := &fcfs{rate: p.CephWriteBW}

	nodes := make([]clusterNode, cfg.Nodes)
	remaining := p.NumChunks // chunks not yet claimed
	written := 0             // chunks fully written back
	var makespan float64

	var events eventHeap
	schedule := func(t float64, fn func(now float64)) {
		heap.Push(&events, event{t: t, fn: fn})
	}

	var tryFetch func(n int, now float64)
	var tryAlign func(n int, now float64)

	tryFetch = func(n int, now float64) {
		nd := &nodes[n]
		for remaining > 0 && nd.fetching+nd.queued < p.QueueDepth {
			remaining--
			nd.fetching++
			done := read.request(now, chunkReadBytes)
			schedule(done, func(now float64) {
				nd.fetching--
				nd.queued++
				tryAlign(n, now)
				tryFetch(n, now)
			})
		}
	}

	tryAlign = func(n int, now float64) {
		nd := &nodes[n]
		if nd.cpuBusy || nd.queued == 0 {
			return
		}
		nd.queued--
		nd.cpuBusy = true
		schedule(now+alignTime, func(now float64) {
			nd.cpuBusy = false
			wDone := write.request(now, chunkWriteBytes)
			schedule(wDone, func(now float64) {
				written++
				if now > makespan {
					makespan = now
				}
			})
			tryAlign(n, now)
			tryFetch(n, now)
		})
	}

	heap.Init(&events)
	for n := 0; n < cfg.Nodes; n++ {
		tryFetch(n, 0)
	}
	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		e.fn(e.t)
	}
	if written != p.NumChunks {
		return ClusterSimResult{}, fmt.Errorf("simulate: only %d/%d chunks completed", written, p.NumChunks)
	}
	makespan += p.StartupSeconds

	res := ClusterSimResult{
		Nodes:       cfg.Nodes,
		Seconds:     makespan,
		BasesPerSec: p.TotalBases / makespan,
	}
	if makespan > 0 {
		res.ReadBusy = read.busy / makespan
		res.WriteBusy = write.busy / makespan
	}
	return res, nil
}

// Fig7Point is one point of the Fig. 7 series.
type Fig7Point struct {
	Nodes       int
	BasesPerSec float64
	Seconds     float64
}

// Fig7 sweeps node counts and returns the "Simulation" series of Fig. 7
// (of which the ≤32-node prefix corresponds to the paper's "Actual" range).
func Fig7(p PaperParams, nodeCounts []int) ([]Fig7Point, error) {
	var out []Fig7Point
	for _, n := range nodeCounts {
		res, err := SimulateCluster(ClusterSimConfig{Nodes: n, Params: p})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Point{Nodes: n, BasesPerSec: res.BasesPerSec, Seconds: res.Seconds})
	}
	return out, nil
}
