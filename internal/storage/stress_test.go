package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"persona/internal/agd"
)

func TestObjectStoreGetAsyncMatchesGet(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 5, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("b-%02d", i), []byte(fmt.Sprintf("v-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Async pass-through: the store has a native implementation.
	if Async(s) != AsyncStore(s) {
		t.Fatal("ObjectStore not passed through Async")
	}
	for i := 0; i < 40; i++ {
		got, err := s.GetAsync(fmt.Sprintf("b-%02d", i)).Wait(context.Background())
		if err != nil || string(got) != fmt.Sprintf("v-%02d", i) {
			t.Fatalf("GetAsync(b-%02d) = %q, %v", i, got, err)
		}
	}
	if _, err := s.GetAsync("missing").Wait(context.Background()); !errors.Is(err, agd.ErrNotFound) {
		t.Fatalf("missing async read err = %v", err)
	}

	names := make([]string, 40)
	for i := range names {
		names[i] = fmt.Sprintf("b-%02d", i)
	}
	futs := s.GetBatch(names)
	for i, fut := range futs {
		got, err := fut.Wait(context.Background())
		if err != nil || string(got) != fmt.Sprintf("v-%02d", i) {
			t.Fatalf("batch future %d = %q, %v", i, got, err)
		}
	}

	stats := s.Stats()
	if stats.AsyncGets != 81 { // 40 singles + 40 batched + 1 miss
		t.Fatalf("AsyncGets = %d", stats.AsyncGets)
	}
	if stats.Batches != 1 {
		t.Fatalf("Batches = %d", stats.Batches)
	}
	if stats.MaxInFlight < 1 {
		t.Fatalf("MaxInFlight = %d", stats.MaxInFlight)
	}
	if stats.Gets != 80 { // the miss is not a served read
		t.Fatalf("Gets = %d", stats.Gets)
	}
}

func TestObjectStoreCloseFailsPendingReads(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.GetAsync("k").Wait(context.Background()); err == nil {
		t.Fatal("async read on closed store succeeded")
	}
	// Synchronous reads still work.
	if got, err := s.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("sync Get after Close = %q, %v", got, err)
	}
	s.Close() // idempotent
}

// TestObjectStoreStress interleaves Put/Get/GetAsync/GetBatch with OSD
// failure injection and recovery from many goroutines. The failer keeps at
// most 2 of 7 OSDs down at once (3-way replication tolerates that without
// write loss), so after every OSD recovers, every key must read back its
// last acknowledged write — no lost newest-version blobs. Run under -race
// this is the regression test for the RLock read path and the per-OSD
// queue workers.
func TestObjectStoreStress(t *testing.T) {
	const (
		osds          = 7
		writers       = 4
		keysPerWriter = 12
		versions      = 20
		readers       = 3
	)
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: osds, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	key := func(w, k int) string { return fmt.Sprintf("w%d/key-%03d", w, k) }
	val := func(v int) []byte { return []byte(fmt.Sprintf("v%05d", v)) }

	// Seed every key so readers never race an absent blob.
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPerWriter; k++ {
			if err := s.Put(key(w, k), val(0)); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var chaos sync.WaitGroup

	// Failer: flap pairs of OSDs, never more than 2 down at once.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := rng.Intn(osds)
			b := (a + 1 + rng.Intn(osds-1)) % osds
			_ = s.FailOSD(a)
			_ = s.FailOSD(b)
			_ = s.RecoverOSD(a)
			_ = s.RecoverOSD(b)
		}
	}()

	// Readers: random sync and async reads; values must always be one of
	// the writer's versions (never torn, never foreign).
	for r := 0; r < readers; r++ {
		chaos.Add(1)
		go func(seed int64) {
			defer chaos.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w, k := rng.Intn(writers), rng.Intn(keysPerWriter)
				check := func(got []byte, err error) {
					if err != nil {
						t.Errorf("read %s: %v", key(w, k), err)
						return
					}
					if len(got) != 6 || got[0] != 'v' {
						t.Errorf("read %s = torn value %q", key(w, k), got)
					}
				}
				switch rng.Intn(3) {
				case 0:
					check(s.Get(key(w, k)))
				case 1:
					check(s.GetAsync(key(w, k)).Wait(context.Background()))
				default:
					names := []string{key(w, k), key((w+1)%writers, k)}
					for _, fut := range s.GetBatch(names) {
						got, err := fut.Wait(context.Background())
						if err != nil {
							t.Errorf("batch read: %v", err)
						} else if len(got) != 6 || got[0] != 'v' {
							t.Errorf("batch read = torn value %q", got)
						}
					}
				}
			}
		}(int64(100 + r))
	}

	// Writers: monotonically versioned overwrites of their own keys.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 1; v <= versions; v++ {
				for k := 0; k < keysPerWriter; k++ {
					if err := s.Put(key(w, k), val(v)); err != nil {
						t.Errorf("Put %s v%d: %v", key(w, k), v, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaos.Wait()
	if t.Failed() {
		return
	}

	// Recover everything and verify no newest-version blob was lost.
	for i := 0; i < osds; i++ {
		if err := s.RecoverOSD(i); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPerWriter; k++ {
			got, err := s.Get(key(w, k))
			if err != nil {
				t.Fatalf("%s lost after recovery: %v", key(w, k), err)
			}
			if string(got) != string(val(versions)) {
				t.Fatalf("%s = %q after recovery, want %q (newest version lost)",
					key(w, k), got, val(versions))
			}
		}
	}
	stats := s.Stats()
	if stats.AsyncGets == 0 || stats.Gets == 0 || stats.MaxInFlight == 0 {
		t.Fatalf("stress exercised no async reads: %+v", stats)
	}
}
