package storage

// This file is the fault-injection half of the storage fault model: a
// FaultStore wraps any Store and injects transient errors, latency spikes,
// stalls and corrupt payloads under a seeded deterministic policy, so chaos
// tests can script failure scenarios ("OSD 3 is flaky", "this chunk's blob
// is corrupt") and replay them exactly. The resilience half — retry,
// backoff, hedging — lives in retry.go and is what the injected faults are
// aimed at.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"persona/internal/agd"
)

// ErrInjected is the transient error FaultStore returns for injected
// failures. Retry layers classify it transient (it does not wrap any of the
// permanent sentinels), so a retried operation eventually succeeds — the
// deterministic draw changes with each attempt.
var ErrInjected = errors.New("storage: injected transient fault")

// ErrFaultStoreClosed reports an operation that was stalled when the
// FaultStore was closed.
var ErrFaultStoreClosed = errors.New("storage: fault store closed")

// OpFaults is the per-operation fault mix. Probabilities are in [0, 1];
// zero values inject nothing.
type OpFaults struct {
	// ErrProb is the probability an operation fails with ErrInjected
	// before touching the underlying store.
	ErrProb float64
	// LatencyProb is the probability an operation is delayed by Latency
	// before proceeding (a latency spike, not a failure).
	LatencyProb float64
	// Latency is the injected spike duration (default 1ms).
	Latency time.Duration
	// StallProb is the probability an operation hangs for Stall before
	// proceeding — long enough that a per-op timeout or a hedged read
	// should beat it. Stalls are context-aware in the sense that closing
	// the FaultStore unblocks them immediately.
	StallProb float64
	// Stall is the injected stall duration (default 1s).
	Stall time.Duration
	// CorruptProb is the probability a read returns a corrupted copy of
	// the payload (one byte flipped at a deterministic position). Applies
	// to reads only; the underlying blob is never modified.
	CorruptProb float64
}

func (f OpFaults) active() bool {
	return f.ErrProb > 0 || f.LatencyProb > 0 || f.StallProb > 0 || f.CorruptProb > 0
}

// KeyFaults targets a fault mix at specific keys: any blob whose name
// contains Substr uses these faults instead of the policy's defaults — so a
// test can script "chunk-000002.bases is corrupt" or "everything under
// ds/ stalls".
type KeyFaults struct {
	Substr string
	Reads  OpFaults
	Writes OpFaults
}

// FaultPolicy is a FaultStore's seeded deterministic fault schedule.
//
// Determinism: every injection decision is a pure function of (Seed, op,
// key, per-key attempt number, fault kind) — not of wall clock or goroutine
// schedule — so a fixed seed yields the same fault sequence per key on
// every run, and a retried operation draws fresh (but reproducible)
// outcomes each attempt.
type FaultPolicy struct {
	// Seed selects the deterministic fault schedule.
	Seed int64
	// Reads is the default fault mix for Get/GetAsync/GetBatch.
	Reads OpFaults
	// Writes is the default fault mix for Put and Delete (CorruptProb is
	// ignored for writes).
	Writes OpFaults
	// Keys overrides the defaults for matching keys; the first matching
	// rule wins.
	Keys []KeyFaults
}

// FaultStats counts what a FaultStore injected.
type FaultStats struct {
	InjectedErrors  int64
	InjectedLatency int64
	InjectedStalls  int64
	CorruptedReads  int64
}

// FaultStore injects faults per FaultPolicy in front of any Store. It
// implements both BlobStore and AsyncBlobStore (async reads run the same
// injected sync path on a bounded set of goroutines, so stalls occupy a
// slot exactly like a stuck device queue). Close unblocks in-flight stalls;
// the wrapped store is not closed.
type FaultStore struct {
	inner Store
	pol   FaultPolicy

	mu       sync.Mutex
	attempts map[string]uint64 // per op|key deterministic attempt counter

	sem      chan struct{}
	stop     chan struct{}
	stopOnce sync.Once

	injectedErrors  atomic.Int64
	injectedLatency atomic.Int64
	injectedStalls  atomic.Int64
	corruptedReads  atomic.Int64
}

// faultStoreParallelism bounds concurrent async reads through the wrapper.
const faultStoreParallelism = 32

// NewFaultStore wraps inner with pol.
func NewFaultStore(inner Store, pol FaultPolicy) *FaultStore {
	return &FaultStore{
		inner:    inner,
		pol:      pol,
		attempts: make(map[string]uint64),
		sem:      make(chan struct{}, faultStoreParallelism),
		stop:     make(chan struct{}),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (s *FaultStore) Stats() FaultStats {
	return FaultStats{
		InjectedErrors:  s.injectedErrors.Load(),
		InjectedLatency: s.injectedLatency.Load(),
		InjectedStalls:  s.injectedStalls.Load(),
		CorruptedReads:  s.corruptedReads.Load(),
	}
}

// Close unblocks any in-flight injected stalls and makes future stalls
// return ErrFaultStoreClosed immediately. Operations themselves remain
// usable (a closed FaultStore keeps injecting errors and corruption).
func (s *FaultStore) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// readFaults / writeFaults resolve the fault mix for one key.
func (s *FaultStore) readFaults(key string) OpFaults {
	for _, k := range s.pol.Keys {
		if strings.Contains(key, k.Substr) {
			return k.Reads
		}
	}
	return s.pol.Reads
}

func (s *FaultStore) writeFaults(key string) OpFaults {
	for _, k := range s.pol.Keys {
		if strings.Contains(key, k.Substr) {
			return k.Writes
		}
	}
	return s.pol.Writes
}

// nextAttempt returns this call's deterministic attempt number for (op, key).
func (s *FaultStore) nextAttempt(op, key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := op + "|" + key
	n := s.attempts[k]
	s.attempts[k] = n + 1
	return n
}

// draw is the deterministic uniform variate in [0, 1) for one injection
// decision: a hash of (seed, op, key, attempt, fault kind). FNV's final
// multiply diffuses a trailing-byte change (the attempt counter) poorly into
// the high bits, so the sum goes through a splitmix64 finalizer before the
// top 53 bits become the variate.
func (s *FaultStore) draw(op, key, kind string, attempt uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d", s.pol.Seed, op, key, kind, attempt)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// delay sleeps for d unless the store is closed first; it reports whether
// the sleep ran to completion.
func (s *FaultStore) delay(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

// inject runs the pre-operation fault mix (stall, latency spike, transient
// error) for one attempt; a non-nil error aborts the operation.
func (s *FaultStore) inject(op, key string, f OpFaults, attempt uint64) error {
	if f.StallProb > 0 && s.draw(op, key, "stall", attempt) < f.StallProb {
		s.injectedStalls.Add(1)
		d := f.Stall
		if d <= 0 {
			d = time.Second
		}
		if !s.delay(d) {
			return fmt.Errorf("%s %q: %w", op, key, ErrFaultStoreClosed)
		}
	}
	if f.LatencyProb > 0 && s.draw(op, key, "latency", attempt) < f.LatencyProb {
		s.injectedLatency.Add(1)
		d := f.Latency
		if d <= 0 {
			d = time.Millisecond
		}
		if !s.delay(d) {
			return fmt.Errorf("%s %q: %w", op, key, ErrFaultStoreClosed)
		}
	}
	if f.ErrProb > 0 && s.draw(op, key, "err", attempt) < f.ErrProb {
		s.injectedErrors.Add(1)
		return fmt.Errorf("%s %q: %w", op, key, ErrInjected)
	}
	return nil
}

// Get implements Store with read faults.
func (s *FaultStore) Get(name string) ([]byte, error) {
	f := s.readFaults(name)
	if !f.active() {
		return s.inner.Get(name)
	}
	attempt := s.nextAttempt("get", name)
	if err := s.inject("get", name, f, attempt); err != nil {
		return nil, err
	}
	data, err := s.inner.Get(name)
	if err != nil {
		return nil, err
	}
	if f.CorruptProb > 0 && s.draw("get", name, "corrupt", attempt) < f.CorruptProb {
		s.corruptedReads.Add(1)
		cp := make([]byte, len(data))
		copy(cp, data)
		if len(cp) > 0 {
			pos := int(s.draw("get", name, "corrupt-pos", attempt) * float64(len(cp)))
			if pos >= len(cp) {
				pos = len(cp) - 1
			}
			cp[pos] ^= 0x40
		}
		return cp, nil
	}
	return data, nil
}

// Put implements Store with write faults.
func (s *FaultStore) Put(name string, data []byte) error {
	f := s.writeFaults(name)
	if !f.active() {
		return s.inner.Put(name, data)
	}
	if err := s.inject("put", name, f, s.nextAttempt("put", name)); err != nil {
		return err
	}
	return s.inner.Put(name, data)
}

// Delete implements Store with write faults.
func (s *FaultStore) Delete(name string) error {
	f := s.writeFaults(name)
	if !f.active() {
		return s.inner.Delete(name)
	}
	if err := s.inject("delete", name, f, s.nextAttempt("delete", name)); err != nil {
		return err
	}
	return s.inner.Delete(name)
}

// List implements Store. Listing is the manifest/control path and is left
// fault-free: the fault model targets the data plane.
func (s *FaultStore) List(prefix string) ([]string, error) {
	return s.inner.List(prefix)
}

// GetAsync implements AsyncBlobStore: the injected sync read runs on a
// bounded goroutine, so a stalled read occupies one of the wrapper's slots
// the way a stuck request occupies a device queue.
func (s *FaultStore) GetAsync(name string) *Future {
	fut, resolve := agd.NewFuture()
	s.sem <- struct{}{}
	go func() {
		defer func() { <-s.sem }()
		resolve(s.Get(name))
	}()
	return fut
}

// GetBatch implements AsyncBlobStore.
func (s *FaultStore) GetBatch(names []string) []*Future {
	futs := make([]*Future, len(names))
	for i, name := range names {
		futs[i] = s.GetAsync(name)
	}
	return futs
}

var (
	_ Store      = (*FaultStore)(nil)
	_ AsyncStore = (*FaultStore)(nil)
)
