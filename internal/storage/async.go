package storage

// This file is the async read path of the object store: the equivalent of
// the paper's reader nodes keeping many object fetches in flight against the
// Ceph cluster (§4.2). Every OSD gets a request queue served by its own
// worker, so a GetBatch fans out across the primaries of its blobs and the
// per-OSD service order stays FIFO — a miniature of one outstanding-request
// queue per object storage daemon.

import (
	"fmt"
	"time"

	"persona/internal/agd"
)

// AsyncStore is a Store with asynchronous batched reads; it is
// agd.AsyncBlobStore.
type AsyncStore = agd.AsyncBlobStore

// Future is the handle of one pending read; it is agd.Future.
type Future = agd.Future

// Async returns s as an AsyncStore: stores with a native async path (the
// object store, MemStore, DirStore) pass through, anything else gets a
// bounded goroutine adapter.
func Async(s Store) AsyncStore { return agd.AsyncOf(s) }

// osdQueueDepth is the per-OSD request queue capacity. Enqueueing blocks
// beyond it, which bounds the memory a runaway prefetcher can pin.
const osdQueueDepth = 256

// readReq is one queued async read awaiting service by an OSD worker.
type readReq struct {
	name    string
	resolve func([]byte, error)
}

// ensureAsync lazily starts the per-OSD queue workers.
func (s *ObjectStore) ensureAsync() {
	s.asyncOnce.Do(func() {
		s.stop = make(chan struct{})
		s.queues = make([]chan readReq, len(s.osds))
		for i := range s.queues {
			q := make(chan readReq, osdQueueDepth)
			s.queues[i] = q
			go s.serveOSD(q)
		}
	})
}

// serveOSD services one OSD's read queue until the store is closed.
func (s *ObjectStore) serveOSD(q chan readReq) {
	for {
		select {
		case req := <-q:
			data, degraded, err := s.read(req.name)
			if err == nil {
				s.countRead(data, degraded)
			}
			req.resolve(data, err)
			s.stats.inFlight.Add(-1)
		case <-s.stop:
			// Close set the closed flag before firing stop, so no new
			// request can arrive; fail whatever is still queued so no
			// waiter hangs.
			for {
				select {
				case req := <-q:
					req.resolve(nil, fmt.Errorf("storage: object store closed"))
					s.stats.inFlight.Add(-1)
				default:
					return
				}
			}
		}
	}
}

// GetAsync implements AsyncStore: the read is enqueued on the primary
// replica's OSD queue and served by that OSD's worker (falling back to
// surviving replicas exactly like Get).
func (s *ObjectStore) GetAsync(name string) *Future {
	s.ensureAsync()
	fut, resolve := agd.NewFuture()
	s.stats.asyncGets.Add(1)
	n := s.stats.inFlight.Add(1)
	for {
		max := s.stats.maxInFlight.Load()
		if n <= max || s.stats.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	primary := s.placement(name)[0]
	// Enqueue under the close read-lock: either the store is already closed
	// (fail fast) or the request is fully enqueued before Close can let the
	// workers exit — a racing Close always drains it.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.stats.inFlight.Add(-1)
		resolve(nil, fmt.Errorf("storage: object store closed"))
		return fut
	}
	s.queues[primary] <- readReq{name: name, resolve: resolve}
	s.closeMu.RUnlock()
	return fut
}

// GetBatch implements AsyncStore: every read goes to its own primary's
// queue, so the batch is serviced by as many OSD workers as it has distinct
// primaries — the fan-out that lets one reader node saturate the cluster.
func (s *ObjectStore) GetBatch(names []string) []*Future {
	s.stats.batches.Add(1)
	futs := make([]*Future, len(names))
	for i, name := range names {
		futs[i] = s.GetAsync(name)
	}
	return futs
}

// Close stops the OSD queue workers. Pending async reads resolve with an
// error; reads issued after Close fail immediately. Synchronous operations
// remain usable. Closing an already-closed or never-async store is a no-op.
func (s *ObjectStore) Close() {
	s.ensureAsync()
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.stop)
}

var _ AsyncStore = (*ObjectStore)(nil)

// latencyStore wraps a Store so every Get costs at least a fixed simulated
// device latency. Benchmarks use it to make fetch-stall effects visible on
// an in-memory store: a synchronous reader pays the latency once per blob,
// while prefetched reads overlap their waits.
type latencyStore struct {
	Store
	d time.Duration
}

// WithLatency wraps store with d of per-Get simulated read latency. The
// wrapper is deliberately not an AsyncStore, so Async(WithLatency(...))
// exercises the generic adapter over the delayed Get.
func WithLatency(store Store, d time.Duration) Store {
	return latencyStore{Store: store, d: d}
}

func (l latencyStore) Get(name string) ([]byte, error) {
	time.Sleep(l.d)
	return l.Store.Get(name)
}
