package storage

// This file is the async read path of the object store: the equivalent of
// the paper's reader nodes keeping many object fetches in flight against the
// Ceph cluster (§4.2). Every OSD gets a request queue served by its own
// worker, so a GetBatch fans out across the primaries of its blobs and the
// per-OSD service order stays FIFO — a miniature of one outstanding-request
// queue per object storage daemon.

import (
	"context"
	"fmt"
	"time"

	"persona/internal/agd"
)

// AsyncStore is a Store with asynchronous batched reads; it is
// agd.AsyncBlobStore.
type AsyncStore = agd.AsyncBlobStore

// Future is the handle of one pending read; it is agd.Future.
type Future = agd.Future

// Async returns s as an AsyncStore: stores with a native async path (the
// object store, MemStore, DirStore) pass through, anything else gets a
// bounded goroutine adapter.
func Async(s Store) AsyncStore { return agd.AsyncOf(s) }

// osdQueueDepth is the per-OSD request queue capacity. Enqueueing blocks
// beyond it, which bounds the memory a runaway prefetcher can pin.
const osdQueueDepth = 256

// readReq is one queued async read awaiting service by an OSD worker.
type readReq struct {
	name    string
	resolve func([]byte, error)
}

// ensureAsync lazily starts the per-OSD queue workers.
func (s *ObjectStore) ensureAsync() {
	s.asyncOnce.Do(func() {
		s.stop = make(chan struct{})
		s.queues = make([]chan readReq, len(s.osds))
		for i := range s.queues {
			q := make(chan readReq, osdQueueDepth)
			s.queues[i] = q
			go s.serveOSD(q)
		}
	})
}

// serveOSD services one OSD's read queue until the store is closed.
func (s *ObjectStore) serveOSD(q chan readReq) {
	for {
		select {
		case req := <-q:
			data, degraded, err := s.read(req.name)
			if err == nil {
				s.countRead(data, degraded)
			}
			req.resolve(data, err)
			s.stats.inFlight.Add(-1)
		case <-s.stop:
			// Close set the closed flag before firing stop, so no new
			// request can arrive; fail whatever is still queued so no
			// waiter hangs.
			for {
				select {
				case req := <-q:
					req.resolve(nil, fmt.Errorf("storage: object store closed"))
					s.stats.inFlight.Add(-1)
				default:
					return
				}
			}
		}
	}
}

// GetAsync implements AsyncStore: the read is enqueued on the primary
// replica's OSD queue and served by that OSD's worker (falling back to
// surviving replicas exactly like Get).
func (s *ObjectStore) GetAsync(name string) *Future {
	s.ensureAsync()
	fut, resolve := agd.NewFuture()
	s.stats.asyncGets.Add(1)
	n := s.stats.inFlight.Add(1)
	for {
		max := s.stats.maxInFlight.Load()
		if n <= max || s.stats.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	primary := s.placement(name)[0]
	// Enqueue under the close read-lock: either the store is already closed
	// (fail fast) or the request is fully enqueued before Close can let the
	// workers exit — a racing Close always drains it.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.stats.inFlight.Add(-1)
		resolve(nil, fmt.Errorf("storage: object store closed"))
		return fut
	}
	s.queues[primary] <- readReq{name: name, resolve: resolve}
	s.closeMu.RUnlock()
	return fut
}

// GetBatch implements AsyncStore: every read goes to its own primary's
// queue, so the batch is serviced by as many OSD workers as it has distinct
// primaries — the fan-out that lets one reader node saturate the cluster.
func (s *ObjectStore) GetBatch(names []string) []*Future {
	s.stats.batches.Add(1)
	futs := make([]*Future, len(names))
	for i, name := range names {
		futs[i] = s.GetAsync(name)
	}
	return futs
}

// Close stops the OSD queue workers. Pending async reads resolve with an
// error; reads issued after Close fail immediately. Synchronous operations
// remain usable. Closing an already-closed or never-async store is a no-op.
func (s *ObjectStore) Close() {
	s.ensureAsync()
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.stop)
}

var _ AsyncStore = (*ObjectStore)(nil)

// LatencyStore wraps a Store so every read costs at least a fixed simulated
// device latency — the reusable bench harness for remote-store experiments.
// Synchronous Gets sleep the full delay each; asynchronous reads (GetAsync/
// GetBatch) complete no earlier than the delay after issue but overlap both
// each other and the underlying fetch, exactly how round trips to a remote
// object store behave. Earlier revisions delayed only the synchronous path,
// which silently exempted any natively-async inner store from the simulated
// latency. Writes are not delayed: the harness isolates read latency.
type LatencyStore struct {
	inner Store
	as    AsyncStore
	d     time.Duration
}

// WithLatency wraps store with d of per-read simulated latency on both the
// synchronous and asynchronous read paths.
func WithLatency(store Store, d time.Duration) *LatencyStore {
	return &LatencyStore{inner: store, as: Async(store), d: d}
}

// Delay returns the simulated per-read latency.
func (l *LatencyStore) Delay() time.Duration { return l.d }

// Get implements Store with the full delay paid synchronously.
func (l *LatencyStore) Get(name string) ([]byte, error) {
	time.Sleep(l.d)
	return l.inner.Get(name)
}

// Put implements Store (not delayed).
func (l *LatencyStore) Put(name string, data []byte) error { return l.inner.Put(name, data) }

// Delete implements Store (not delayed).
func (l *LatencyStore) Delete(name string) error { return l.inner.Delete(name) }

// List implements Store (not delayed).
func (l *LatencyStore) List(prefix string) ([]string, error) { return l.inner.List(prefix) }

// GetAsync implements AsyncStore: the inner fetch is issued immediately and
// the future resolves once both the delay and the fetch have elapsed, so
// in-flight reads overlap their latencies.
func (l *LatencyStore) GetAsync(name string) *Future {
	return l.delayBatch(l.as.GetBatch([]string{name}))[0]
}

// GetBatch implements AsyncStore: every read in the batch is issued at once
// and pays the delay concurrently — a window of N reads costs one delay of
// wall clock, not N, which is what a prefetching reader buys on a real
// remote store.
func (l *LatencyStore) GetBatch(names []string) []*Future {
	return l.delayBatch(l.as.GetBatch(names))
}

func (l *LatencyStore) delayBatch(inner []*Future) []*Future {
	futs := make([]*Future, len(inner))
	resolves := make([]func([]byte, error), len(inner))
	for i := range inner {
		futs[i], resolves[i] = agd.NewFuture()
	}
	timer := time.After(l.d)
	go func() {
		<-timer
		for i, f := range inner {
			<-f.Done()
			resolves[i](f.Wait(context.Background()))
		}
	}()
	return futs
}

// GetRange implements agd.RangeBlobStore with the same per-read delay, so
// header probes on a simulated remote store still cost a round trip.
func (l *LatencyStore) GetRange(name string, off int64, n int) ([]byte, error) {
	time.Sleep(l.d)
	return agd.RangeOf(l.inner).GetRange(name, off, n)
}

// GetRanges implements agd.RangeBlobStore (one delay per call — the ranges
// travel in one round trip).
func (l *LatencyStore) GetRanges(name string, ranges []agd.ByteRange) ([][]byte, error) {
	time.Sleep(l.d)
	return agd.RangeOf(l.inner).GetRanges(name, ranges)
}

var (
	_ Store              = (*LatencyStore)(nil)
	_ AsyncStore         = (*LatencyStore)(nil)
	_ agd.RangeBlobStore = (*LatencyStore)(nil)
)
