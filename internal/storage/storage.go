// Package storage provides the storage backends Persona reads AGD datasets
// from: the local filesystem and a Ceph-like replicated object store
// (§4.2: "Currently, Persona supports a local disk or the Ceph object
// store — other storage systems can be supported simply by writing the
// interface into a new Reader dataflow node").
//
// The object store is an in-process functional model of the paper's 7-node
// Ceph cluster: blobs are placed on OSDs by consistent hashing, written
// with 3-way replication, and served from the primary replica (or a
// surviving replica after failure injection). Timing behaviour at paper
// scale — 6 GB/s aggregate reads, replicated write costs — is modeled
// separately in internal/simulate; this package is about data placement,
// durability and accounting.
package storage

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"persona/internal/agd"
)

// Store is the blob interface Persona pipelines use; it is agd.BlobStore.
type Store = agd.BlobStore

// NewLocal returns a Store over a local directory.
func NewLocal(dir string) (Store, error) { return agd.NewDirStore(dir) }

// NewMem returns an in-memory Store.
func NewMem() Store { return agd.NewMemStore() }

// ObjectStoreConfig configures the replicated object store.
type ObjectStoreConfig struct {
	// OSDs is the number of object storage daemons (paper testbed: 7 nodes
	// × 10 disks; one OSD per node here). Default 7.
	OSDs int
	// Replication is the number of replicas per blob (paper: 3). Default 3.
	Replication int
}

// ObjectStore is the Ceph-like store.
type ObjectStore struct {
	mu      sync.RWMutex
	osds    []*osd
	repl    int
	version uint64
	stats   objectStats

	// Async read machinery: one request queue per OSD, served by a worker
	// goroutine, so a batch of reads fans out across primaries concurrently
	// (see async.go). Started lazily on first async use. closeMu orders
	// enqueues against Close: requests sent under the read lock are fully
	// enqueued before Close (write lock) lets the workers drain and exit,
	// so no future is ever stranded unresolved.
	asyncOnce sync.Once
	queues    []chan readReq
	stop      chan struct{}
	closeMu   sync.RWMutex
	closed    bool
}

// ObjectStoreStats counts traffic through the store.
type ObjectStoreStats struct {
	Puts, Gets        int64
	BytesIn           int64 // logical bytes written (pre-replication)
	BytesOut          int64
	ReplicatedBytesIn int64 // physical bytes including replicas
	DegradedReads     int64 // reads served by a non-primary replica
	AsyncGets         int64 // reads issued through GetAsync/GetBatch
	Batches           int64 // GetBatch calls
	MaxInFlight       int64 // peak concurrent async reads in flight
}

// objectStats is the store's live counter set. Counters are atomics so the
// read path can bump them without holding the write lock — Get serves
// concurrent readers under RLock.
type objectStats struct {
	puts, gets        atomic.Int64
	bytesIn           atomic.Int64
	bytesOut          atomic.Int64
	replicatedBytesIn atomic.Int64
	degradedReads     atomic.Int64
	asyncGets         atomic.Int64
	batches           atomic.Int64
	inFlight          atomic.Int64
	maxInFlight       atomic.Int64
}

type osd struct {
	id    int
	up    bool
	blobs map[string]blob
	bytes int64
}

// blob carries a version so recovery can tell stale replicas from current
// ones (a miniature of Ceph's per-object version in the PG log).
type blob struct {
	data    []byte
	version uint64
}

// NewObjectStore builds an object store.
func NewObjectStore(cfg ObjectStoreConfig) (*ObjectStore, error) {
	if cfg.OSDs <= 0 {
		cfg.OSDs = 7
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > cfg.OSDs {
		return nil, fmt.Errorf("storage: replication %d exceeds %d OSDs", cfg.Replication, cfg.OSDs)
	}
	s := &ObjectStore{repl: cfg.Replication}
	for i := 0; i < cfg.OSDs; i++ {
		s.osds = append(s.osds, &osd{id: i, up: true, blobs: make(map[string]blob)})
	}
	return s, nil
}

// placement returns the OSD ids holding name, primary first (rendezvous /
// highest-random-weight hashing, the same family of placement function as
// Ceph's CRUSH).
func (s *ObjectStore) placement(name string) []int {
	type weighted struct {
		id int
		w  uint64
	}
	ws := make([]weighted, len(s.osds))
	for i := range s.osds {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d", name, i)
		ws[i] = weighted{id: i, w: h.Sum64()}
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].w > ws[b].w })
	out := make([]int, s.repl)
	for i := 0; i < s.repl; i++ {
		out[i] = ws[i].id
	}
	return out
}

// Put implements Store with replication.
func (s *ObjectStore) Put(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	placed := 0
	for _, id := range s.placement(name) {
		o := s.osds[id]
		if !o.up {
			continue
		}
		if prev, ok := o.blobs[name]; ok {
			o.bytes -= int64(len(prev.data))
		}
		o.blobs[name] = blob{data: cp, version: s.version}
		o.bytes += int64(len(cp))
		placed++
	}
	if placed == 0 {
		return fmt.Errorf("put %q: storage: no OSD up", name)
	}
	s.stats.puts.Add(1)
	s.stats.bytesIn.Add(int64(len(data)))
	s.stats.replicatedBytesIn.Add(int64(len(data) * placed))
	return nil
}

// read returns the newest version among up replicas and whether the read was
// degraded (served by a non-primary). It takes only the read lock, so any
// number of readers — sync callers and OSD queue workers alike — proceed in
// parallel; stats are the callers' job.
func (s *ObjectStore) read(name string) (data []byte, degraded bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bestIdx := -1
	var best blob
	for i, id := range s.placement(name) {
		o := s.osds[id]
		if !o.up {
			continue
		}
		b, ok := o.blobs[name]
		if !ok {
			continue
		}
		if bestIdx < 0 || b.version > best.version {
			bestIdx, best = i, b
		}
	}
	if bestIdx < 0 {
		return nil, false, fmt.Errorf("get %q: %w", name, agd.ErrNotFound)
	}
	return best.data, bestIdx > 0, nil
}

// Get implements Store, reading the newest version among up replicas
// (primary-first for accounting; a stale primary after recovery is
// overruled by fresher replicas).
func (s *ObjectStore) Get(name string) ([]byte, error) {
	data, degraded, err := s.read(name)
	if err != nil {
		return nil, err
	}
	s.countRead(data, degraded)
	return data, nil
}

// countRead bumps the read counters for one served blob.
func (s *ObjectStore) countRead(data []byte, degraded bool) {
	s.stats.gets.Add(1)
	s.stats.bytesOut.Add(int64(len(data)))
	if degraded {
		s.stats.degradedReads.Add(1)
	}
}

// Delete implements Store.
func (s *ObjectStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.placement(name) {
		o := s.osds[id]
		if prev, ok := o.blobs[name]; ok {
			o.bytes -= int64(len(prev.data))
			delete(o.blobs, name)
		}
	}
	return nil
}

// List implements Store.
func (s *ObjectStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, o := range s.osds {
		if !o.up {
			continue
		}
		for name := range o.blobs {
			if strings.HasPrefix(name, prefix) {
				set[name] = true
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// FailOSD marks an OSD down (failure injection). Blobs on it become
// unavailable until RecoverOSD.
func (s *ObjectStore) FailOSD(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.osds) {
		return fmt.Errorf("storage: no OSD %d", id)
	}
	s.osds[id].up = false
	return nil
}

// RecoverOSD brings an OSD back up and re-replicates the blobs it should
// hold from surviving replicas (a miniature of Ceph recovery).
func (s *ObjectStore) RecoverOSD(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.osds) {
		return fmt.Errorf("storage: no OSD %d", id)
	}
	o := s.osds[id]
	o.up = true
	// Find every blob placed on this OSD and restore the newest version
	// from the surviving replicas, replacing anything stale.
	for _, other := range s.osds {
		if other == o || !other.up {
			continue
		}
		for name, b := range other.blobs {
			for _, pid := range s.placement(name) {
				if pid != id {
					continue
				}
				have, ok := o.blobs[name]
				if !ok || b.version > have.version {
					if ok {
						o.bytes -= int64(len(have.data))
					}
					o.blobs[name] = b
					o.bytes += int64(len(b.data))
				}
			}
		}
	}
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (s *ObjectStore) Stats() ObjectStoreStats {
	return ObjectStoreStats{
		Puts:              s.stats.puts.Load(),
		Gets:              s.stats.gets.Load(),
		BytesIn:           s.stats.bytesIn.Load(),
		BytesOut:          s.stats.bytesOut.Load(),
		ReplicatedBytesIn: s.stats.replicatedBytesIn.Load(),
		DegradedReads:     s.stats.degradedReads.Load(),
		AsyncGets:         s.stats.asyncGets.Load(),
		Batches:           s.stats.batches.Load(),
		MaxInFlight:       s.stats.maxInFlight.Load(),
	}
}

// OSDBytes returns per-OSD stored bytes (placement balance accounting).
func (s *ObjectStore) OSDBytes() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.osds))
	for i, o := range s.osds {
		out[i] = o.bytes
	}
	return out
}

var _ Store = (*ObjectStore)(nil)
