package storage

import (
	"fmt"
	"testing"

	"persona/internal/agd"
)

func TestObjectStorePutGet(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 5, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("missing blob fetched")
	}
	stats := s.Stats()
	if stats.BytesIn != 5 || stats.ReplicatedBytesIn != 15 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestObjectStoreReplicationSurvivesFailures(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 7, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("blob-%d", i), []byte(fmt.Sprintf("data-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Any 2 OSDs may fail with 3-way replication.
	if err := s.FailOSD(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailOSD(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := s.Get(fmt.Sprintf("blob-%d", i))
		if err != nil {
			t.Fatalf("blob-%d lost after 2 OSD failures: %v", i, err)
		}
		if string(got) != fmt.Sprintf("data-%d", i) {
			t.Fatalf("blob-%d corrupted", i)
		}
	}
	if s.Stats().DegradedReads == 0 {
		t.Fatal("expected some degraded reads with 2 OSDs down")
	}
}

func TestObjectStoreRecovery(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 5, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("b-%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FailOSD(1); err != nil {
		t.Fatal(err)
	}
	// Overwrites while down leave OSD 1 stale; recovery must re-replicate.
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("b-%d", i), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RecoverOSD(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		got, err := s.Get(fmt.Sprintf("b-%d", i))
		if err != nil || string(got) != "y" {
			t.Fatalf("b-%d after recovery = %q, %v", i, got, err)
		}
	}
}

func TestObjectStorePlacementBalance(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 7, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 100)
	for i := 0; i < 700; i++ {
		if err := s.Put(fmt.Sprintf("chunk-%06d", i), blob); err != nil {
			t.Fatal(err)
		}
	}
	bytes := s.OSDBytes()
	// 700 blobs × 3 replicas / 7 OSDs = 300 blobs ≈ 30000 B per OSD.
	for i, b := range bytes {
		if b < 15000 || b > 45000 {
			t.Fatalf("OSD %d holds %d bytes; placement badly skewed: %v", i, b, bytes)
		}
	}
}

func TestObjectStoreAsAGDBackend(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := agd.NewWriter(s, "ds", agd.StandardReadColumns(), agd.WriterOptions{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte("ACGTACGT"), []byte("IIIIIIII"), []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ds, err := agd.Open(s, "ds")
	if err != nil {
		t.Fatal(err)
	}
	bases, err := ds.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 10 {
		t.Fatalf("bases = %d", len(bases))
	}
}

func TestObjectStoreValidation(t *testing.T) {
	if _, err := NewObjectStore(ObjectStoreConfig{OSDs: 2, Replication: 3}); err == nil {
		t.Fatal("replication > OSDs accepted")
	}
	s, _ := NewObjectStore(ObjectStoreConfig{})
	if err := s.FailOSD(99); err == nil {
		t.Fatal("failing unknown OSD succeeded")
	}
}
