package storage

// This file is the resilience half of the storage fault model: RetryStore
// wraps any Store with per-attempt timeouts, capped exponential backoff with
// jitter, a retry budget, transient-vs-permanent error classification, and
// hedged async reads after a p99-based delay. Pipelines see a Store that
// absorbs transient faults (injected by FaultStore in tests, real in
// production) and surfaces what it spent doing so through RetryStats.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"persona/internal/agd"
)

// ErrStalled reports an attempt abandoned by the per-op timeout. It is
// deliberately distinct from context.DeadlineExceeded: a stalled attempt is
// transient (retry against another replica or a recovered device), while a
// caller's expired deadline is permanent and never retried.
var ErrStalled = errors.New("storage: operation stalled past the per-op timeout")

// IsTransient classifies an error for retry purposes: true means a retry
// may succeed. Permanent (non-retryable) errors are the caller's context
// ending (context.Canceled, context.DeadlineExceeded), a missing blob
// (agd.ErrNotFound), and detected corruption (agd.ErrCorrupt, which
// agd.ErrChecksum wraps, and agd.ErrBadMagic) — re-reading a corrupt
// replica returns the same bytes, so retrying hides the failure instead of
// fixing it. Everything else — I/O errors, injected faults, stalls — is
// transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, agd.ErrNotFound) || errors.Is(err, agd.ErrCorrupt) || errors.Is(err, agd.ErrBadMagic) {
		return false
	}
	return true
}

// IsPermanent reports a non-nil error that IsTransient would not retry.
func IsPermanent(err error) bool { return err != nil && !IsTransient(err) }

// RetryPolicy parameterizes a RetryStore. The zero value picks the defaults
// noted per field.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation, counting the first (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff delay and the jitter floor (default 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 100ms).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// OpTimeout abandons a single read attempt after this long, classifying
	// it ErrStalled (transient). 0 disables per-attempt timeouts.
	OpTimeout time.Duration
	// HedgeDelay is how long GetAsync/GetBatch wait before issuing a hedged
	// second read. 0 adapts: a bit above the p99 of recently observed read
	// latencies (falling back to OpTimeout/2, then 50ms, until enough
	// samples exist).
	HedgeDelay time.Duration
	// DisableHedge turns hedged reads off.
	DisableHedge bool
	// Budget, when positive, bounds the total retries (re-attempts beyond
	// each operation's first try) the store will ever spend; once
	// exhausted, operations fail on their first error. 0 means unlimited.
	Budget int64
	// Classify overrides IsTransient.
	Classify func(error) bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = 100 * time.Millisecond
		if p.MaxDelay < p.BaseDelay {
			p.MaxDelay = p.BaseDelay
		}
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Classify == nil {
		p.Classify = IsTransient
	}
	return p
}

// backoffDelay is the delay before retry number `retry` (0-based): capped
// exponential growth with full jitter over [BaseDelay, min(MaxDelay,
// BaseDelay·Multiplier^retry)] — always within [BaseDelay, MaxDelay].
func backoffDelay(pol RetryPolicy, retry int, rnd func() float64) time.Duration {
	base := float64(pol.BaseDelay)
	d := base * math.Pow(pol.Multiplier, float64(retry))
	if max := float64(pol.MaxDelay); d > max {
		d = max
	}
	if d < base {
		d = base
	}
	return time.Duration(base + rnd()*(d-base))
}

// RetryStats counts a RetryStore's resilience activity.
type RetryStats struct {
	// Retries is how many re-attempts (beyond first tries) were issued.
	Retries int64
	// OpTimeouts is how many attempts the per-op timeout abandoned.
	OpTimeouts int64
	// Hedges is how many hedged reads were issued; HedgesWon how many
	// resolved before the primary.
	Hedges, HedgesWon int64
	// BudgetExhausted is how many operations failed because the retry
	// budget was spent.
	BudgetExhausted int64
}

// Delta returns a - b, counter by counter: the activity between two
// snapshots.
func (a RetryStats) Delta(b RetryStats) RetryStats {
	return RetryStats{
		Retries:         a.Retries - b.Retries,
		OpTimeouts:      a.OpTimeouts - b.OpTimeouts,
		Hedges:          a.Hedges - b.Hedges,
		HedgesWon:       a.HedgesWon - b.HedgesWon,
		BudgetExhausted: a.BudgetExhausted - b.BudgetExhausted,
	}
}

// latencyRing keeps the most recent successful read latencies (and their
// payload sizes) for the adaptive hedge delay and the measured read profile
// that drives storage-aware policies (spill compression).
type latencyRing struct {
	mu      sync.Mutex
	samples [128]time.Duration
	bytes   [128]int64
	n       int // total recorded
}

func (l *latencyRing) record(d time.Duration, size int) {
	l.mu.Lock()
	i := l.n % len(l.samples)
	l.samples[i] = d
	l.bytes[i] = int64(size)
	l.n++
	l.mu.Unlock()
}

// profile returns the median read latency, the mean observed throughput in
// MB/s (total bytes over total read time across the retained window), and
// the number of samples behind them. Throughput is 0 when the window carries
// no bytes or no measurable time.
func (l *latencyRing) profile() (lat time.Duration, mbps float64, samples int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > len(l.samples) {
		n = len(l.samples)
	}
	if n == 0 {
		return 0, 0, 0
	}
	cp := make([]time.Duration, n)
	copy(cp, l.samples[:n])
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	lat = cp[n/2]
	var sumBytes int64
	var sumTime time.Duration
	for i := 0; i < n; i++ {
		sumBytes += l.bytes[i]
		sumTime += l.samples[i]
	}
	if sumTime > 0 && sumBytes > 0 {
		mbps = float64(sumBytes) / 1e6 / sumTime.Seconds()
	}
	return lat, mbps, n
}

// p99 returns the 99th percentile of the ring, or 0 until it has enough
// samples to mean anything.
func (l *latencyRing) p99() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if n > len(l.samples) {
		n = len(l.samples)
	}
	if n < 32 {
		return 0
	}
	cp := make([]time.Duration, n)
	copy(cp, l.samples[:n])
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	return cp[(n*99)/100]
}

// RetryStore wraps a Store with the RetryPolicy. Reads, writes, deletes and
// lists all retry transient errors with backoff; sync reads additionally get
// per-attempt timeouts (via the inner store's async path), and async reads
// (GetAsync/GetBatch) get hedging. It implements BlobStore and
// AsyncBlobStore.
type RetryStore struct {
	inner Store
	async AsyncStore
	pol   RetryPolicy

	budget   atomic.Int64 // remaining retry budget; meaningful iff budgeted
	budgeted bool

	retries         atomic.Int64
	opTimeouts      atomic.Int64
	hedges          atomic.Int64
	hedgesWon       atomic.Int64
	budgetExhausted atomic.Int64

	lat latencyRing

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewRetryStore wraps inner with pol (zero-value fields take defaults).
func NewRetryStore(inner Store, pol RetryPolicy) *RetryStore {
	r := &RetryStore{
		inner: inner,
		async: Async(inner),
		pol:   pol.withDefaults(),
		rng:   rand.New(rand.NewSource(rand.Int63())),
	}
	if r.pol.Budget > 0 {
		r.budgeted = true
		r.budget.Store(r.pol.Budget)
	}
	return r
}

// RetryStats returns a snapshot of the resilience counters. (Named
// RetryStats rather than Stats so wrapped stores' own Stats methods stay
// reachable and Session can detect the resilience layer by interface.)
func (r *RetryStore) RetryStats() RetryStats {
	return RetryStats{
		Retries:         r.retries.Load(),
		OpTimeouts:      r.opTimeouts.Load(),
		Hedges:          r.hedges.Load(),
		HedgesWon:       r.hedgesWon.Load(),
		BudgetExhausted: r.budgetExhausted.Load(),
	}
}

// ReadProfile reports the store's measured read behavior over the recent
// successful-read window: median per-read latency, mean throughput in MB/s,
// and how many samples back them. Policies that trade CPU against transfer
// time (agdsort's spill compression via internal/tco) feed on this instead
// of a configuration flag, so the decision tracks the store actually
// attached — local disk, or a remote object store with real round trips.
func (r *RetryStore) ReadProfile() (lat time.Duration, mbps float64, samples int) {
	return r.lat.profile()
}

func (r *RetryStore) rand() float64 {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.rng.Float64()
}

// spendRetry takes one unit of retry budget; false means exhausted.
func (r *RetryStore) spendRetry() bool {
	if r.budgeted && r.budget.Add(-1) < 0 {
		r.budgetExhausted.Add(1)
		return false
	}
	r.retries.Add(1)
	return true
}

// sleepBackoff waits out retry number `retry`'s backoff, aborting early if
// quit closes.
func (r *RetryStore) sleepBackoff(retry int, quit <-chan struct{}) {
	t := time.NewTimer(backoffDelay(r.pol, retry, r.rand))
	defer t.Stop()
	select {
	case <-t.C:
	case <-quit:
	}
}

// attemptGet is one read attempt, bounded by the per-op timeout.
func (r *RetryStore) attemptGet(name string) ([]byte, error) {
	t0 := time.Now()
	if r.pol.OpTimeout <= 0 {
		data, err := r.inner.Get(name)
		if err == nil {
			r.lat.record(time.Since(t0), len(data))
		}
		return data, err
	}
	fut := r.async.GetAsync(name)
	t := time.NewTimer(r.pol.OpTimeout)
	defer t.Stop()
	select {
	case <-fut.Done():
		data, err := fut.Wait(context.Background())
		if err == nil {
			r.lat.record(time.Since(t0), len(data))
		}
		return data, err
	case <-t.C:
		// The attempt is abandoned, not cancelled — its eventual result is
		// dropped by the future. Classified transient via ErrStalled.
		r.opTimeouts.Add(1)
		return nil, fmt.Errorf("get %q: %w (%v)", name, ErrStalled, r.pol.OpTimeout)
	}
}

// getRetry is the full attempt loop for one read. quit, when closed, stops
// further attempts between tries (used to cancel the losing side of a
// hedged pair); the loop then returns its last error.
func (r *RetryStore) getRetry(name string, quit <-chan struct{}) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !r.spendRetry() {
				// Budget exhausted: surface the last underlying error, not a
				// budget error — the cause is what the caller can act on.
				return nil, lastErr
			}
			r.sleepBackoff(attempt-1, quit)
			select {
			case <-quit:
				return nil, lastErr
			default:
			}
		}
		data, err := r.attemptGet(name)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !r.pol.Classify(err) {
			return nil, err // permanent: never retried
		}
	}
	return nil, lastErr
}

// Get implements Store: retries with backoff, no hedging (hedges are the
// async path's tool — a sync caller is already paying full latency).
func (r *RetryStore) Get(name string) ([]byte, error) {
	return r.getRetry(name, nil)
}

// hedgeDelay picks how long to wait before hedging one read.
func (r *RetryStore) hedgeDelay() time.Duration {
	if r.pol.HedgeDelay > 0 {
		return r.pol.HedgeDelay
	}
	if p99 := r.lat.p99(); p99 > 0 {
		return p99 + p99/4
	}
	if r.pol.OpTimeout > 0 {
		return r.pol.OpTimeout / 2
	}
	return 50 * time.Millisecond
}

// hedgedGet races a primary retry loop against a hedge issued after the
// hedge delay; the first success (or first permanent error) wins, and the
// loser is told to stop retrying.
func (r *RetryStore) hedgedGet(name string) ([]byte, error) {
	if r.pol.DisableHedge {
		return r.getRetry(name, nil)
	}
	type result struct {
		data  []byte
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	quit := make(chan struct{})
	defer close(quit)
	launch := func(hedge bool) {
		go func() {
			data, err := r.getRetry(name, quit)
			ch <- result{data, err, hedge}
		}()
	}
	launch(false)
	t := time.NewTimer(r.hedgeDelay())
	defer t.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case out := <-ch:
			inFlight--
			if out.err == nil {
				if out.hedge {
					r.hedgesWon.Add(1)
				}
				return out.data, nil
			}
			if !r.pol.Classify(out.err) {
				return nil, out.err // permanent: the twin would hit it too
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inFlight == 0 {
				// Both sides (or the only side) exhausted their attempts.
				return nil, firstErr
			}
		case <-t.C:
			if inFlight == 1 {
				r.hedges.Add(1)
				launch(true)
				inFlight++
			}
		}
	}
}

// GetAsync implements AsyncBlobStore with retry + hedging. The retry loop
// runs on its own goroutine; concurrency is bounded by the caller's batch
// window and the inner store's own async bounds.
func (r *RetryStore) GetAsync(name string) *Future {
	fut, resolve := agd.NewFuture()
	go func() {
		resolve(r.hedgedGet(name))
	}()
	return fut
}

// GetBatch implements AsyncBlobStore: each read is independently retried
// and hedged.
func (r *RetryStore) GetBatch(names []string) []*Future {
	futs := make([]*Future, len(names))
	for i, name := range names {
		futs[i] = r.GetAsync(name)
	}
	return futs
}

// doRetry runs a non-read operation's attempt loop.
func (r *RetryStore) doRetry(op func() error) error {
	var lastErr error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !r.spendRetry() {
				return lastErr
			}
			r.sleepBackoff(attempt-1, nil)
		}
		err := op()
		if err == nil {
			return nil
		}
		lastErr = err
		if !r.pol.Classify(err) {
			return err
		}
	}
	return lastErr
}

// Put implements Store with retries. Puts must be idempotent (they are:
// Put replaces), since a retried put may re-send a write that in fact
// landed.
func (r *RetryStore) Put(name string, data []byte) error {
	return r.doRetry(func() error { return r.inner.Put(name, data) })
}

// Delete implements Store with retries.
func (r *RetryStore) Delete(name string) error {
	return r.doRetry(func() error { return r.inner.Delete(name) })
}

// List implements Store with retries.
func (r *RetryStore) List(prefix string) ([]string, error) {
	var names []string
	err := r.doRetry(func() error {
		var err error
		names, err = r.inner.List(prefix)
		return err
	})
	return names, err
}

var (
	_ Store      = (*RetryStore)(nil)
	_ AsyncStore = (*RetryStore)(nil)
)
