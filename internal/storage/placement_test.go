package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: placement always returns Replication distinct, in-range OSDs,
// for arbitrary blob names.
func TestPlacementReplicasDistinct(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 7, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(name string) bool {
		ids := s.placement(name)
		if len(ids) != 3 {
			return false
		}
		seen := make(map[int]bool)
		for _, id := range ids {
			if id < 0 || id >= 7 || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: placement is a pure function of the name — OSD up/down flaps
// must not move blobs (rendezvous hashing owes its stability to ignoring
// liveness; only read fallback handles it).
func TestPlacementStableUnderFlaps(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 9, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	names := make([]string, 1000)
	before := make([][]int, len(names))
	for i := range names {
		names[i] = fmt.Sprintf("ds/chunk-%06d.col%d", rng.Intn(1_000_000), rng.Intn(4))
		before[i] = s.placement(names[i])
	}
	for flap := 0; flap < 50; flap++ {
		id := rng.Intn(9)
		if err := s.FailOSD(id); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			if err := s.RecoverOSD(id); err != nil {
				t.Fatal(err)
			}
		}
		for i, name := range names {
			after := s.placement(name)
			for r := range after {
				if after[r] != before[i][r] {
					t.Fatalf("flap %d moved %q: %v -> %v", flap, name, before[i], after)
				}
			}
		}
	}
}

// Property: rendezvous placement balances load — on 10k equally sized
// blobs, every OSD's byte count stays within 2x of the mean (and above
// half of it).
func TestPlacementBalanceTenThousandBlobs(t *testing.T) {
	s, err := NewObjectStore(ObjectStoreConfig{OSDs: 7, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 64)
	for i := 0; i < 10_000; i++ {
		if err := s.Put(fmt.Sprintf("bench/chunk-%06d.bases", i), blob); err != nil {
			t.Fatal(err)
		}
	}
	bytes := s.OSDBytes()
	var total int64
	for _, b := range bytes {
		total += b
	}
	mean := total / int64(len(bytes))
	for id, b := range bytes {
		if b > 2*mean || b < mean/2 {
			t.Fatalf("OSD %d holds %d bytes, mean is %d: skew beyond 2x (%v)", id, b, mean, bytes)
		}
	}
}
