package storage

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"persona/internal/agd"
)

// TestLatencyStoreDelaysAllReadPaths checks the wrapper's contract: sync
// Gets pay the delay each, async batches pay it once (issued concurrently,
// overlapped), range reads pay it, and writes pay nothing.
func TestLatencyStoreDelaysAllReadPaths(t *testing.T) {
	const d = 30 * time.Millisecond
	mem := NewMem()
	ls := WithLatency(mem, d)
	for i := 0; i < 8; i++ {
		if err := ls.Put(string(rune('a'+i)), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}

	// Sync Get pays the full delay.
	t0 := time.Now()
	if _, err := ls.Get("a"); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(t0); e < d {
		t.Fatalf("sync Get took %v, want >= %v", e, d)
	}

	// A batch of async reads overlaps: 8 reads cost ~one delay, not 8.
	t0 = time.Now()
	futs := ls.GetBatch([]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	for _, f := range futs {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	e := time.Since(t0)
	if e < d {
		t.Fatalf("async batch completed in %v — the delay was not applied to async reads", e)
	}
	if e > 6*d {
		t.Fatalf("async batch took %v: reads serialized instead of overlapping one %v delay", e, d)
	}

	// GetAsync alone also pays the delay.
	t0 = time.Now()
	if _, err := ls.GetAsync("a").Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(t0); e < d {
		t.Fatalf("GetAsync took %v, want >= %v", e, d)
	}

	// Range reads pay the delay (one per call).
	t0 = time.Now()
	if _, err := ls.GetRange("a", 0, 3); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(t0); e < d {
		t.Fatalf("GetRange took %v, want >= %v", e, d)
	}

	// Errors propagate through the delayed future.
	if _, err := ls.GetAsync("missing").Wait(context.Background()); err == nil {
		t.Fatal("missing blob resolved without error")
	}

	// Writes and lists are not delayed (allow generous scheduling slack but
	// far below the read delay).
	t0 = time.Now()
	for i := 0; i < 20; i++ {
		if err := ls.Put("w", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := ls.List(""); err != nil {
			t.Fatal(err)
		}
	}
	if e := time.Since(t0); e > d {
		t.Fatalf("20 Put+List rounds took %v — writes appear to pay the read delay", e)
	}
}

// TestRetryStoreReadProfile checks the latency ring's throughput profile:
// reads through a latency-wrapped store must report a median latency at
// least the injected delay and a sane MB/s figure.
func TestRetryStoreReadProfile(t *testing.T) {
	const d = 10 * time.Millisecond
	mem := NewMem()
	payload := make([]byte, 64<<10)
	if err := mem.Put("blob", payload); err != nil {
		t.Fatal(err)
	}
	rs := NewRetryStore(WithLatency(mem, d), RetryPolicy{})
	if _, _, n := rs.ReadProfile(); n != 0 {
		t.Fatalf("unprofiled store reports %d samples", n)
	}
	for i := 0; i < 8; i++ {
		if _, err := rs.Get("blob"); err != nil {
			t.Fatal(err)
		}
	}
	lat, mbps, n := rs.ReadProfile()
	if n != 8 {
		t.Fatalf("samples = %d, want 8", n)
	}
	if lat < d {
		t.Fatalf("median latency %v below injected %v", lat, d)
	}
	if mbps <= 0 {
		t.Fatalf("throughput = %.2f MB/s, want > 0", mbps)
	}
	// 64 KiB per ~10ms read is at most ~6.5 MB/s; the profile must be in
	// that ballpark, not the memory-bandwidth figure.
	if mbps > 64 {
		t.Fatalf("throughput %.2f MB/s ignores the injected latency", mbps)
	}
}

// TestFaultStoreCorruptBlobNeverCached wires a chunk cache over a FaultStore
// that corrupts one chunk blob's reads: the checksum rejects the blob every
// time, the cache never retains it, and untouched columns still cache and
// serve hits.
func TestFaultStoreCorruptBlobNeverCached(t *testing.T) {
	mem := NewMem()
	// Build a small dataset directly with agd.
	w, err := agd.NewWriter(mem, "ds", agd.StandardReadColumns(), agd.WriterOptions{ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := w.Append([]byte("ACGTACGTAC"), []byte("IIIIIIIIII"), []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}

	fs := NewFaultStore(mem, FaultPolicy{
		Seed: 3,
		Keys: []KeyFaults{{
			Substr: "chunk-000001.bases",
			Reads:  OpFaults{CorruptProb: 1},
		}},
	})
	defer fs.Close()
	ds, err := agd.Open(fs, "ds")
	if err != nil {
		t.Fatal(err)
	}
	cache := agd.NewChunkCache(1 << 20)
	readAll := func() error {
		st, err := ds.Stream(agd.StreamOptions{Cache: cache})
		if err != nil {
			return err
		}
		defer st.Close()
		for {
			sc, err := st.Next(context.Background())
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			sc.Release()
		}
	}
	for pass := 0; pass < 3; pass++ {
		err := readAll()
		if err == nil {
			t.Fatalf("pass %d: corrupted read succeeded", pass)
		}
		if !errors.Is(err, agd.ErrCorrupt) && !errors.Is(err, agd.ErrChecksum) {
			t.Fatalf("pass %d: error %v, want corruption", pass, err)
		}
	}
	s := cache.Stats()
	if s.FillErrors < 3 {
		t.Fatalf("fill errors = %d, want one per pass", s.FillErrors)
	}
	// The corrupt blob must not be resident; resident entries must decode to
	// the expected record count (i.e. only healthy columns cached).
	probe, fill := cache.Lookup("ds/chunk-000001.bases")
	if !fill {
		t.Fatal("corrupt blob is resident in the cache")
	}
	cache.Abort(probe, nil)
	cache.Unpin(probe)
	if stats := fs.Stats(); stats.CorruptedReads == 0 {
		t.Fatal("fault store injected no corruption — test is vacuous")
	}
}

// TestLatencyStoreConcurrentUse shakes the delayed-future plumbing under
// -race: concurrent batches against one wrapper, with waiters on every
// future.
func TestLatencyStoreConcurrentUse(t *testing.T) {
	mem := NewMem()
	for _, n := range []string{"x", "y", "z"} {
		if err := mem.Put(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	ls := WithLatency(mem, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				futs := ls.GetBatch([]string{"x", "y", "z"})
				for _, f := range futs {
					if _, err := f.Wait(context.Background()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
