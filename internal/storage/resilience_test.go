package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"persona/internal/agd"
)

// TestFaultStoreDeterministic: two FaultStores with the same seed and policy
// inject the identical fault sequence per key, regardless of call order.
func TestFaultStoreDeterministic(t *testing.T) {
	build := func() *FaultStore {
		inner := agd.NewMemStore()
		for i := 0; i < 8; i++ {
			if err := inner.Put(fmt.Sprintf("blob-%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return NewFaultStore(inner, FaultPolicy{
			Seed:  42,
			Reads: OpFaults{ErrProb: 0.5, CorruptProb: 0.2},
		})
	}
	type outcome struct {
		errored bool
		data    string
	}
	run := func(fs *FaultStore) []outcome {
		var out []outcome
		for attempt := 0; attempt < 6; attempt++ {
			for i := 0; i < 8; i++ {
				data, err := fs.Get(fmt.Sprintf("blob-%d", i))
				out = append(out, outcome{errored: err != nil, data: string(data)})
			}
		}
		return out
	}
	a, b := run(build()), run(build())
	if len(a) != len(b) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a), len(b))
	}
	errored := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].errored {
			errored++
		}
	}
	if errored == 0 {
		t.Fatal("ErrProb 0.5 injected no errors in 48 reads")
	}
}

// TestFaultStoreCorruption: corruption is detectable, deterministic, and
// never touches the underlying blob.
func TestFaultStoreCorruption(t *testing.T) {
	inner := agd.NewMemStore()
	orig := []byte("the quick brown fox")
	if err := inner.Put("k", orig); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner, FaultPolicy{Seed: 7, Reads: OpFaults{CorruptProb: 1}})
	got, err := fs.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(orig) {
		t.Fatal("CorruptProb 1 returned clean bytes")
	}
	if fs.Stats().CorruptedReads != 1 {
		t.Fatalf("CorruptedReads = %d", fs.Stats().CorruptedReads)
	}
	clean, err := inner.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(clean) != string(orig) {
		t.Fatal("underlying blob was modified")
	}
}

// TestFaultStoreTargetsKeys: a KeyFaults rule overrides the defaults for
// matching keys only.
func TestFaultStoreTargetsKeys(t *testing.T) {
	inner := agd.NewMemStore()
	inner.Put("ds/chunk-0.bases", []byte("aaaa"))
	inner.Put("ds/chunk-1.bases", []byte("bbbb"))
	fs := NewFaultStore(inner, FaultPolicy{
		Seed: 1,
		Keys: []KeyFaults{{Substr: "chunk-1", Reads: OpFaults{ErrProb: 1}}},
	})
	if _, err := fs.Get("ds/chunk-0.bases"); err != nil {
		t.Fatalf("untargeted key failed: %v", err)
	}
	if _, err := fs.Get("ds/chunk-1.bases"); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted key err = %v, want ErrInjected", err)
	}
}

// TestBackoffJitterBounds: every backoff delay stays within
// [BaseDelay, MaxDelay], whatever the retry number and jitter draw.
func TestBackoffJitterBounds(t *testing.T) {
	pol := RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2}.withDefaults()
	for retry := 0; retry < 20; retry++ {
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
			d := backoffDelay(pol, retry, func() float64 { return u })
			if d < pol.BaseDelay || d > pol.MaxDelay {
				t.Fatalf("retry %d u=%v: delay %v outside [%v, %v]", retry, u, d, pol.BaseDelay, pol.MaxDelay)
			}
		}
	}
	// Growth: the ceiling for a late retry must reach the cap.
	d := backoffDelay(pol, 10, func() float64 { return 0.999999 })
	if d < 90*time.Millisecond {
		t.Fatalf("retry 10 max draw = %v, expected near MaxDelay", d)
	}
}

// failNStore fails the first n operations per key with a numbered transient
// error, then succeeds.
type failNStore struct {
	Store
	n     int
	mu    sync.Mutex
	calls map[string]int
}

func newFailNStore(inner Store, n int) *failNStore {
	return &failNStore{Store: inner, n: n, calls: make(map[string]int)}
}

func (s *failNStore) callNum(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.calls[name]
	s.calls[name] = c + 1
	return c
}

func (s *failNStore) Get(name string) ([]byte, error) {
	if c := s.callNum(name); c < s.n {
		return nil, fmt.Errorf("flaky device (call %d): %w", c, ErrInjected)
	}
	return s.Store.Get(name)
}

// TestRetryBudgetExhaustionReturnsLastError: once the budget is spent, the
// operation fails with the last underlying error — not a budget error.
func TestRetryBudgetExhaustionReturnsLastError(t *testing.T) {
	inner := agd.NewMemStore()
	inner.Put("k", []byte("v"))
	flaky := newFailNStore(inner, 1000) // never succeeds
	rs := NewRetryStore(flaky, RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond,
		Budget: 1,
	})
	_, err := rs.Get("k")
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want the underlying ErrInjected", err)
	}
	// Budget 1 allowed exactly one retry, so the last attempt is call 1.
	if want := "flaky device (call 1)"; !errors.Is(err, ErrInjected) || err.Error()[:len(want)] != want {
		t.Fatalf("err = %v, want the error of the last attempt (%s...)", err, want)
	}
	st := rs.RetryStats()
	if st.Retries != 1 || st.BudgetExhausted != 1 {
		t.Fatalf("stats = %+v, want 1 retry and 1 budget exhaustion", st)
	}
}

// deadlineStore always fails with a wrapped context.DeadlineExceeded.
type deadlineStore struct {
	Store
	calls atomic.Int64
}

func (s *deadlineStore) Get(name string) ([]byte, error) {
	s.calls.Add(1)
	return nil, fmt.Errorf("get %q: %w", name, context.DeadlineExceeded)
}

// TestDeadlineExceededNeverRetried: a caller's expired deadline is
// permanent — one attempt, zero retries.
func TestDeadlineExceededNeverRetried(t *testing.T) {
	ds := &deadlineStore{Store: agd.NewMemStore()}
	rs := NewRetryStore(ds, RetryPolicy{MaxAttempts: 8, BaseDelay: time.Microsecond})
	_, err := rs.Get("k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if n := ds.calls.Load(); n != 1 {
		t.Fatalf("inner store called %d times, want 1", n)
	}
	if st := rs.RetryStats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", st.Retries)
	}
}

// TestPermanentErrorsNotRetried: same for not-found and corruption.
func TestPermanentErrorsNotRetried(t *testing.T) {
	rs := NewRetryStore(agd.NewMemStore(), RetryPolicy{MaxAttempts: 8, BaseDelay: time.Microsecond})
	if _, err := rs.Get("missing"); !errors.Is(err, agd.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if st := rs.RetryStats(); st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", st.Retries)
	}
	for _, err := range []error{agd.ErrChecksum, agd.ErrCorrupt, agd.ErrBadMagic, context.Canceled, context.DeadlineExceeded} {
		if IsTransient(fmt.Errorf("get %q: %w", "k", err)) {
			t.Errorf("IsTransient(%v) = true, want permanent", err)
		}
	}
	for _, err := range []error{ErrInjected, ErrStalled, errors.New("io: device sneezed")} {
		if !IsTransient(fmt.Errorf("get %q: %w", "k", err)) {
			t.Errorf("IsTransient(%v) = false, want transient", err)
		}
	}
	if IsTransient(nil) || IsPermanent(nil) {
		t.Error("nil error classified")
	}
}

// TestRetryAbsorbsInjectedFaults: a RetryStore over a 50%-flaky FaultStore
// serves every read.
func TestRetryAbsorbsInjectedFaults(t *testing.T) {
	inner := agd.NewMemStore()
	for i := 0; i < 32; i++ {
		inner.Put(fmt.Sprintf("blob-%d", i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	fs := NewFaultStore(inner, FaultPolicy{Seed: 9, Reads: OpFaults{ErrProb: 0.5}})
	rs := NewRetryStore(fs, RetryPolicy{MaxAttempts: 10, BaseDelay: time.Microsecond, MaxDelay: 50 * time.Microsecond})
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("blob-%d", i)
		data, err := rs.Get(name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(data) != want {
			t.Fatalf("get %s = %q", name, data)
		}
	}
	if st := rs.RetryStats(); st.Retries == 0 {
		t.Fatal("no retries recorded against a flaky store")
	}
}

// slowFirstStore stalls each key's first read; later reads are instant.
type slowFirstStore struct {
	Store
	delay time.Duration
	mu    sync.Mutex
	calls map[string]int
}

func (s *slowFirstStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	c := s.calls[name]
	s.calls[name] = c + 1
	s.mu.Unlock()
	if c == 0 {
		time.Sleep(s.delay)
	}
	return s.Store.Get(name)
}

// TestHedgedReadWins: with the primary stuck in a slow first read, the hedge
// launched after HedgeDelay returns first.
func TestHedgedReadWins(t *testing.T) {
	inner := agd.NewMemStore()
	inner.Put("k", []byte("v"))
	slow := &slowFirstStore{Store: inner, delay: 300 * time.Millisecond, calls: make(map[string]int)}
	rs := NewRetryStore(slow, RetryPolicy{HedgeDelay: 5 * time.Millisecond})
	t0 := time.Now()
	data, err := rs.GetAsync("k").Wait(context.Background())
	if err != nil || string(data) != "v" {
		t.Fatalf("hedged read = %q, %v", data, err)
	}
	if took := time.Since(t0); took > 200*time.Millisecond {
		t.Fatalf("hedged read took %v, primary's stall leaked through", took)
	}
	st := rs.RetryStats()
	if st.Hedges != 1 || st.HedgesWon != 1 {
		t.Fatalf("stats = %+v, want the hedge issued and won", st)
	}
}

// TestOpTimeoutRetries: a per-op timeout abandons a stalled attempt as
// transient (ErrStalled) and the retry succeeds — while a caller deadline
// would not have been retried.
func TestOpTimeoutRetries(t *testing.T) {
	inner := agd.NewMemStore()
	inner.Put("k", []byte("v"))
	slow := &slowFirstStore{Store: inner, delay: 300 * time.Millisecond, calls: make(map[string]int)}
	rs := NewRetryStore(slow, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Microsecond,
		OpTimeout: 20 * time.Millisecond, DisableHedge: true,
	})
	data, err := rs.Get("k")
	if err != nil || string(data) != "v" {
		t.Fatalf("get = %q, %v", data, err)
	}
	st := rs.RetryStats()
	if st.OpTimeouts != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 op timeout and 1 retry", st)
	}
}

// TestRetryStoreStatsDelta: snapshots subtract cleanly.
func TestRetryStoreStatsDelta(t *testing.T) {
	a := RetryStats{Retries: 5, OpTimeouts: 3, Hedges: 2, HedgesWon: 1, BudgetExhausted: 1}
	b := RetryStats{Retries: 2, OpTimeouts: 1, Hedges: 1}
	d := a.Delta(b)
	want := RetryStats{Retries: 3, OpTimeouts: 2, Hedges: 1, HedgesWon: 1, BudgetExhausted: 1}
	if d != want {
		t.Fatalf("Delta = %+v, want %+v", d, want)
	}
}

// TestFaultStoreAsyncPath: GetBatch through the wrapper injects the same
// per-key faults as the sync path would.
func TestFaultStoreAsyncPath(t *testing.T) {
	inner := agd.NewMemStore()
	for i := 0; i < 8; i++ {
		inner.Put(fmt.Sprintf("b%d", i), []byte{byte(i)})
	}
	fs := NewFaultStore(inner, FaultPolicy{Seed: 3, Reads: OpFaults{ErrProb: 0.4}})
	defer fs.Close()
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}
	futs := fs.GetBatch(names)
	errored := 0
	for i, f := range futs {
		data, err := f.Wait(context.Background())
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("future %d: %v", i, err)
			}
			errored++
			continue
		}
		if len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("future %d = %v", i, data)
		}
	}
	if errored == 0 {
		t.Fatal("no faults injected on the async path")
	}
}

// TestFaultStoreCloseUnblocksStall: Close releases an in-flight stall.
func TestFaultStoreCloseUnblocksStall(t *testing.T) {
	inner := agd.NewMemStore()
	inner.Put("k", []byte("v"))
	fs := NewFaultStore(inner, FaultPolicy{Seed: 5, Reads: OpFaults{StallProb: 1, Stall: time.Hour}})
	done := make(chan error, 1)
	go func() {
		_, err := fs.Get("k")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fs.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFaultStoreClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read not unblocked by Close")
	}
}
