// Package fastq reads and writes the FASTQ format (§2.2 of the paper): the
// ASCII text format sequencing machines produce, four lines per read
// (@name, bases, +, qualities). Parsing is structural (line positions), so
// the notorious '@' ambiguity — '@' is also a legal quality value — is
// handled correctly.
package fastq

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"

	"persona/internal/reads"
)

// Scanner parses FASTQ records from a stream. Each record's fields are read
// into reused buffers: View exposes them zero-copy (the import hot path),
// Read materializes an owning reads.Read.
type Scanner struct {
	r       *bufio.Reader
	lineNum int
	meta    []byte
	bases   []byte
	quals   []byte
	plus    []byte // '+' separator line scratch
	err     error
}

// NewScanner returns a scanner over r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, 1<<16)}
}

// NewGzipScanner returns a scanner over a gzip-compressed FASTQ stream (the
// distribution format; §2.2). The caller owns closing the underlying reader.
func NewGzipScanner(r io.Reader) (*Scanner, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("fastq: %w", err)
	}
	return NewScanner(zr), nil
}

// Scan advances to the next record, returning false at EOF or on error.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	var err error
	s.meta, err = s.line(s.meta[:0])
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = err
		return false
	}
	if len(s.meta) == 0 || s.meta[0] != '@' {
		s.err = fmt.Errorf("fastq: line %d: record does not start with '@': %q", s.lineNum, s.meta)
		return false
	}
	s.bases, err = s.line(s.bases[:0])
	if err != nil {
		s.err = fmt.Errorf("fastq: line %d: missing bases: %v", s.lineNum, err)
		return false
	}
	s.plus, err = s.line(s.plus[:0])
	if err != nil || len(s.plus) == 0 || s.plus[0] != '+' {
		s.err = fmt.Errorf("fastq: line %d: missing '+' separator", s.lineNum)
		return false
	}
	s.quals, err = s.line(s.quals[:0])
	if err != nil {
		s.err = fmt.Errorf("fastq: line %d: missing qualities: %v", s.lineNum, err)
		return false
	}
	if len(s.quals) != len(s.bases) {
		s.err = fmt.Errorf("fastq: line %d: %d bases but %d qualities", s.lineNum, len(s.bases), len(s.quals))
		return false
	}
	return true
}

// line reads one line into buf (reusing its backing array), trimming the
// terminator. io.EOF is returned only when no bytes remain.
func (s *Scanner) line(buf []byte) ([]byte, error) {
	for {
		frag, err := s.r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if len(buf) == 0 && err != nil {
			return nil, err
		}
		s.lineNum++
		for len(buf) > 0 && (buf[len(buf)-1] == '\n' || buf[len(buf)-1] == '\r') {
			buf = buf[:len(buf)-1]
		}
		return buf, nil
	}
}

// View returns the current record's fields (name without '@'), aliasing the
// scanner's reused buffers: valid only until the next Scan. This is the
// zero-allocation path the AGD importer uses.
func (s *Scanner) View() (meta, bases, quals []byte) {
	return s.meta[1:], s.bases, s.quals
}

// Read returns an owning copy of the current record.
func (s *Scanner) Read() reads.Read {
	meta, bases, quals := s.View()
	return reads.Read{
		Meta:  string(meta),
		Bases: append([]byte{}, bases...),
		Quals: append([]byte{}, quals...),
	}
}

// Err returns the first error encountered (nil at clean EOF).
func (s *Scanner) Err() error { return s.err }

// Writer emits FASTQ records.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a FASTQ writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record.
func (w *Writer) Write(r *reads.Read) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if err := w.w.WriteByte('@'); err != nil {
		return err
	}
	if _, err := w.w.WriteString(r.Meta); err != nil {
		return err
	}
	return w.tail(r.Bases, r.Quals)
}

// WriteFields emits one record from raw field bytes — the export hot path,
// no reads.Read materialization.
func (w *Writer) WriteFields(meta, bases, quals []byte) error {
	if len(bases) == 0 {
		return fmt.Errorf("reads: %q has no bases", meta)
	}
	if len(bases) != len(quals) {
		return fmt.Errorf("reads: %q has %d bases but %d quals", meta, len(bases), len(quals))
	}
	if err := w.w.WriteByte('@'); err != nil {
		return err
	}
	if _, err := w.w.Write(meta); err != nil {
		return err
	}
	return w.tail(bases, quals)
}

// tail writes the bases / separator / qualities lines.
func (w *Writer) tail(bases, quals []byte) error {
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	if _, err := w.w.Write(bases); err != nil {
		return err
	}
	if _, err := w.w.WriteString("\n+\n"); err != nil {
		return err
	}
	if _, err := w.w.Write(quals); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
