// Package fastq reads and writes the FASTQ format (§2.2 of the paper): the
// ASCII text format sequencing machines produce, four lines per read
// (@name, bases, +, qualities). Parsing is structural (line positions), so
// the notorious '@' ambiguity — '@' is also a legal quality value — is
// handled correctly.
package fastq

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"persona/internal/reads"
)

// Scanner parses FASTQ records from a stream.
type Scanner struct {
	r       *bufio.Reader
	lineNum int
	rec     reads.Read
	err     error
}

// NewScanner returns a scanner over r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, 1<<16)}
}

// NewGzipScanner returns a scanner over a gzip-compressed FASTQ stream (the
// distribution format; §2.2). The caller owns closing the underlying reader.
func NewGzipScanner(r io.Reader) (*Scanner, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("fastq: %w", err)
	}
	return NewScanner(zr), nil
}

// Scan advances to the next record, returning false at EOF or on error.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	name, err := s.line()
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.err = err
		return false
	}
	if len(name) == 0 || name[0] != '@' {
		s.err = fmt.Errorf("fastq: line %d: record does not start with '@': %q", s.lineNum, name)
		return false
	}
	bases, err := s.line()
	if err != nil {
		s.err = fmt.Errorf("fastq: line %d: missing bases: %v", s.lineNum, err)
		return false
	}
	plus, err := s.line()
	if err != nil || len(plus) == 0 || plus[0] != '+' {
		s.err = fmt.Errorf("fastq: line %d: missing '+' separator", s.lineNum)
		return false
	}
	quals, err := s.line()
	if err != nil {
		s.err = fmt.Errorf("fastq: line %d: missing qualities: %v", s.lineNum, err)
		return false
	}
	if len(quals) != len(bases) {
		s.err = fmt.Errorf("fastq: line %d: %d bases but %d qualities", s.lineNum, len(bases), len(quals))
		return false
	}
	s.rec = reads.Read{
		Meta:  string(name[1:]),
		Bases: append([]byte{}, bases...),
		Quals: append([]byte{}, quals...),
	}
	return true
}

// line reads one line, trimming the terminator.
func (s *Scanner) line() ([]byte, error) {
	line, err := s.r.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return nil, err
	}
	s.lineNum++
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

// Read returns the current record. Valid until the next Scan.
func (s *Scanner) Read() reads.Read { return s.rec }

// Err returns the first error encountered (nil at clean EOF).
func (s *Scanner) Err() error { return s.err }

// Writer emits FASTQ records.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a FASTQ writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record.
func (w *Writer) Write(r *reads.Read) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if err := w.w.WriteByte('@'); err != nil {
		return err
	}
	if _, err := w.w.WriteString(r.Meta); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	if _, err := w.w.Write(r.Bases); err != nil {
		return err
	}
	if _, err := w.w.WriteString("\n+\n"); err != nil {
		return err
	}
	if _, err := w.w.Write(r.Quals); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
