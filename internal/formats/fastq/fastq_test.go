package fastq

import (
	"context"
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"persona/internal/agd"
	"persona/internal/genome"
	"persona/internal/reads"
)

const sample = "@read.1\nACGT\n+\nII@I\n@read.2\nTTTTT\n+\n!!!!!\n"

func TestScannerParsesRecords(t *testing.T) {
	sc := NewScanner(strings.NewReader(sample))
	var got []reads.Read
	for sc.Scan() {
		got = append(got, sc.Read())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2", len(got))
	}
	if got[0].Meta != "read.1" || string(got[0].Bases) != "ACGT" || string(got[0].Quals) != "II@I" {
		t.Fatalf("record 0 = %+v", got[0])
	}
	if got[1].Meta != "read.2" || string(got[1].Bases) != "TTTTT" {
		t.Fatalf("record 1 = %+v", got[1])
	}
}

func TestScannerHandlesAtSignQuality(t *testing.T) {
	// '@' as the first quality character must not be mistaken for a new
	// record (the FASTQ pitfall the paper calls out in §2.2).
	in := "@r1\nAC\n+\n@@\n@r2\nGG\n+\nII\n"
	sc := NewScanner(strings.NewReader(in))
	count := 0
	for sc.Scan() {
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("parsed %d records, want 2", count)
	}
}

func TestScannerErrors(t *testing.T) {
	cases := []string{
		"read.1\nACGT\n+\nIIII\n", // missing @
		"@r\nACGT\n-\nIIII\n",     // bad separator
		"@r\nACGT\n+\nII\n",       // length mismatch
		"@r\nACGT\n",              // truncated
	}
	for i, in := range cases {
		sc := NewScanner(strings.NewReader(in))
		for sc.Scan() {
		}
		if sc.Err() == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

func TestWriterScannerRoundTrip(t *testing.T) {
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(20_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 1, N: 100, ReadLen: 50})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	sc := NewScanner(&buf)
	i := 0
	for sc.Scan() {
		got := sc.Read()
		if got.Meta != rs[i].Meta || !bytes.Equal(got.Bases, rs[i].Bases) || !bytes.Equal(got.Quals, rs[i].Quals) {
			t.Fatalf("record %d mismatch", i)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(rs) {
		t.Fatalf("round-tripped %d records, want %d", i, len(rs))
	}
}

func TestGzipScanner(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(sample)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewGzipScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for sc.Scan() {
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("parsed %d records, want 2", count)
	}
}

func TestImportExportAGDRoundTrip(t *testing.T) {
	store := agd.NewMemStore()
	m, n, err := Import(context.Background(), store, "ds", strings.NewReader(sample), ImportOptions{ChunkSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(m.Chunks) != 2 {
		t.Fatalf("imported %d records in %d chunks", n, len(m.Chunks))
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	en, err := Export(context.Background(), ds, &out)
	if err != nil {
		t.Fatal(err)
	}
	if en != 2 {
		t.Fatalf("exported %d records", en)
	}
	if out.String() != sample {
		t.Fatalf("export mismatch:\n%q\nwant\n%q", out.String(), sample)
	}
}

func TestImportRejectsMalformed(t *testing.T) {
	store := agd.NewMemStore()
	if _, _, err := Import(context.Background(), store, "ds", strings.NewReader("garbage\n"), ImportOptions{}); err == nil {
		t.Fatal("malformed FASTQ imported")
	}
}
