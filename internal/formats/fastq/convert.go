package fastq

import (
	"fmt"
	"io"
	"runtime"

	"persona/internal/agd"
	"persona/internal/reads"
)

// ImportOptions configures FASTQ → AGD conversion.
type ImportOptions struct {
	// ChunkSize is records per AGD chunk (default agd.DefaultChunkSize).
	ChunkSize int
	// RefSeqs, if known, is recorded in the manifest.
	RefSeqs []agd.RefSeq
}

// Import converts a FASTQ stream into an AGD dataset (the paper's import
// utility, measured at 360 MB/s in §5.7). It returns the manifest and the
// number of reads imported.
func Import(store agd.BlobStore, name string, src io.Reader, opts ImportOptions) (*agd.Manifest, uint64, error) {
	w, err := agd.NewWriter(store, name, agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: opts.ChunkSize,
		RefSeqs:   opts.RefSeqs,
		// Compress completed chunks on all cores while parsing continues;
		// the overlap is what lets the paper's importer hit 360 MB/s.
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, 0, err
	}
	sc := NewScanner(src)
	for sc.Scan() {
		r := sc.Read()
		if err := w.Append(r.Bases, r.Quals, []byte(r.Meta)); err != nil {
			return nil, 0, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	m, err := w.Close()
	if err != nil {
		return nil, 0, err
	}
	return m, m.NumRecords(), nil
}

// Export converts an AGD dataset back to FASTQ, streaming chunk by chunk.
func Export(ds *agd.Dataset, dst io.Writer) (uint64, error) {
	w := NewWriter(dst)
	var n uint64
	for i := 0; i < ds.NumChunks(); i++ {
		basesChunk, err := ds.ReadChunk(agd.ColBases, i)
		if err != nil {
			return n, err
		}
		qualChunk, err := ds.ReadChunk(agd.ColQual, i)
		if err != nil {
			return n, err
		}
		metaChunk, err := ds.ReadChunk(agd.ColMetadata, i)
		if err != nil {
			return n, err
		}
		if basesChunk.NumRecords() != qualChunk.NumRecords() || basesChunk.NumRecords() != metaChunk.NumRecords() {
			return n, fmt.Errorf("fastq: chunk %d columns disagree on record count", i)
		}
		for r := 0; r < basesChunk.NumRecords(); r++ {
			bases, err := basesChunk.ExpandBasesRecord(nil, r)
			if err != nil {
				return n, err
			}
			qual, err := qualChunk.Record(r)
			if err != nil {
				return n, err
			}
			meta, err := metaChunk.Record(r)
			if err != nil {
				return n, err
			}
			rec := reads.Read{Meta: string(meta), Bases: bases, Quals: qual}
			if err := w.Write(&rec); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, w.Flush()
}
