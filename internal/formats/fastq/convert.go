package fastq

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"persona/internal/agd"
)

// ImportOptions configures FASTQ → AGD conversion.
type ImportOptions struct {
	// ChunkSize is records per AGD chunk (default agd.DefaultChunkSize).
	ChunkSize int
	// RefSeqs, if known, is recorded in the manifest.
	RefSeqs []agd.RefSeq
}

// Import converts a FASTQ stream into an AGD dataset (the paper's import
// utility, measured at 360 MB/s in §5.7). Scanned fields flow zero-copy
// from the scanner's reused buffers into the writer's chunk builders, so
// steady-state import performs no per-read allocation. It returns the
// manifest and the number of reads imported. Cancellation and deadline of
// ctx are checked once per output chunk's worth of reads.
func Import(ctx context.Context, store agd.BlobStore, name string, src io.Reader, opts ImportOptions) (*agd.Manifest, uint64, error) {
	w, err := agd.NewWriter(store, name, agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: opts.ChunkSize,
		RefSeqs:   opts.RefSeqs,
		// Compress completed chunks on all cores while parsing continues;
		// the overlap is what lets the paper's importer hit 360 MB/s.
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, 0, err
	}
	chunkSize := uint64(opts.ChunkSize)
	if chunkSize == 0 {
		chunkSize = agd.DefaultChunkSize
	}
	sc := NewScanner(src)
	var n uint64
	for sc.Scan() {
		if n%chunkSize == 0 {
			if err := ctx.Err(); err != nil {
				return nil, n, err
			}
		}
		n++
		meta, bases, quals := sc.View()
		if err := w.Append(bases, quals, meta); err != nil {
			return nil, 0, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	m, err := w.Close()
	if err != nil {
		return nil, 0, err
	}
	return m, m.NumRecords(), nil
}

// ImportStream parses a FASTQ stream into a pipeline group stream — the
// source form of Import used by composed pipelines: the parsed chunks feed
// the next stage in memory, and nothing is written to a store unless the
// pipeline ends in a dataset sink. Each group holds ChunkSize reads in the
// three standard read columns, built into reused builders (a group is valid
// until the next one is requested). Scanner errors surface from Next.
func ImportStream(src io.Reader, opts ImportOptions) *agd.GroupStream {
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = agd.DefaultChunkSize
	}
	specs := agd.StandardReadColumns()
	builders := make([]*agd.ChunkBuilder, len(specs))
	for i, spec := range specs {
		builders[i] = agd.NewChunkBuilder(spec.Type, 0)
	}
	sc := NewScanner(src)
	var (
		ordinal uint64
		idx     int
		done    bool
	)
	meta := agd.StreamMeta{
		Columns:   []string{agd.ColBases, agd.ColQual, agd.ColMetadata},
		RefSeqs:   opts.RefSeqs,
		ChunkSize: chunkSize,
	}
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		if done {
			return nil, io.EOF
		}
		for i, spec := range specs {
			builders[i].Reset(spec.Type, ordinal)
		}
		rows := 0
		for rows < chunkSize && sc.Scan() {
			m, bases, quals := sc.View()
			builders[0].AppendBases(bases)
			builders[1].Append(quals)
			builders[2].Append(m)
			rows++
		}
		if err := sc.Err(); err != nil {
			done = true
			return nil, err
		}
		if rows == 0 {
			done = true
			return nil, io.EOF
		}
		ordinal += uint64(rows)
		chunks := make([]*agd.Chunk, len(builders))
		for i := range builders {
			chunks[i] = builders[i].Chunk()
		}
		g := agd.NewRowGroup(idx, 0, chunks, nil)
		idx++
		return g, nil
	}
	return agd.NewGroupStream(meta, next, nil)
}

// Export converts an AGD dataset back to FASTQ. Chunks arrive through a
// prefetching ChunkStream and records are written straight from the column
// bytes (bases expand into a reused scratch), so the export performs no
// per-read allocation. Cancellation and deadline of ctx are checked per
// chunk.
func Export(ctx context.Context, ds *agd.Dataset, dst io.Writer) (uint64, error) {
	chunkPool := agd.NewChunkPool(3 * (agd.DefaultPrefetch + 1))
	in, err := ds.Groups(agd.StreamOptions{
		Columns: []string{agd.ColBases, agd.ColQual, agd.ColMetadata},
		Pool:    chunkPool,
	})
	if err != nil {
		return 0, err
	}
	defer in.Close()
	return ExportStream(ctx, in, dst)
}

// ExportStream renders a pipeline stream's reads as FASTQ — the stream-in
// sink form of Export.
func ExportStream(ctx context.Context, in *agd.GroupStream, dst io.Writer) (uint64, error) {
	basesCol := in.Meta.Col(agd.ColBases)
	qualCol := in.Meta.Col(agd.ColQual)
	metaCol := in.Meta.Col(agd.ColMetadata)
	if basesCol < 0 || qualCol < 0 || metaCol < 0 {
		return 0, fmt.Errorf("fastq: stream lacks a read column (have %v)", in.Meta.Columns)
	}
	w := NewWriter(dst)
	var n uint64
	var bases []byte
	walk := func(g *agd.RowGroup) error {
		basesChunk, qualChunk, metaChunk := g.Chunks[basesCol], g.Chunks[qualCol], g.Chunks[metaCol]
		if basesChunk.NumRecords() != qualChunk.NumRecords() || basesChunk.NumRecords() != metaChunk.NumRecords() {
			return fmt.Errorf("fastq: group %d columns disagree on record count", g.Index)
		}
		var err error
		for r := 0; r < basesChunk.NumRecords(); r++ {
			bases, err = basesChunk.ExpandBasesRecord(bases[:0], r)
			if err != nil {
				return err
			}
			qual, err := qualChunk.Record(r)
			if err != nil {
				return err
			}
			meta, err := metaChunk.Record(r)
			if err != nil {
				return err
			}
			if err := w.WriteFields(meta, bases, qual); err != nil {
				return err
			}
			n++
		}
		return nil
	}
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		err = walk(g)
		g.Release() // release on the error path too (pooled sources)
		if err != nil {
			return n, err
		}
	}
	return n, w.Flush()
}
