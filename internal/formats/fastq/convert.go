package fastq

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"persona/internal/agd"
)

// ImportOptions configures FASTQ → AGD conversion.
type ImportOptions struct {
	// ChunkSize is records per AGD chunk (default agd.DefaultChunkSize).
	ChunkSize int
	// RefSeqs, if known, is recorded in the manifest.
	RefSeqs []agd.RefSeq
	// Pipelining (ImportStream only) is how many parsed groups may be in
	// flight at once. ≤ 1 keeps the serial pull contract (reused builders,
	// each group valid until the next); > 1 draws builders from a bounded
	// pool of that size so a pumped edge can queue groups.
	Pipelining int
	// Shards (ImportStream only) rotates group shard affinity over that many
	// executor shards, so downstream sharded submissions (align subchunks)
	// spread instead of landing on shard 0. 0 leaves every group on shard 0.
	Shards int
}

// Import converts a FASTQ stream into an AGD dataset (the paper's import
// utility, measured at 360 MB/s in §5.7). Scanned fields flow zero-copy
// from the scanner's reused buffers into the writer's chunk builders, so
// steady-state import performs no per-read allocation. It returns the
// manifest and the number of reads imported. Cancellation and deadline of
// ctx are checked once per output chunk's worth of reads.
func Import(ctx context.Context, store agd.BlobStore, name string, src io.Reader, opts ImportOptions) (*agd.Manifest, uint64, error) {
	w, err := agd.NewWriter(store, name, agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: opts.ChunkSize,
		RefSeqs:   opts.RefSeqs,
		// Compress completed chunks on all cores while parsing continues;
		// the overlap is what lets the paper's importer hit 360 MB/s.
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, 0, err
	}
	chunkSize := uint64(opts.ChunkSize)
	if chunkSize == 0 {
		chunkSize = agd.DefaultChunkSize
	}
	sc := NewScanner(src)
	var n uint64
	for sc.Scan() {
		if n%chunkSize == 0 {
			if err := ctx.Err(); err != nil {
				return nil, n, err
			}
		}
		n++
		meta, bases, quals := sc.View()
		if err := w.Append(bases, quals, meta); err != nil {
			return nil, 0, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	m, err := w.Close()
	if err != nil {
		return nil, 0, err
	}
	return m, m.NumRecords(), nil
}

// ImportStream parses a FASTQ stream into a pipeline group stream — the
// source form of Import used by composed pipelines: the parsed chunks feed
// the next stage in memory, and nothing is written to a store unless the
// pipeline ends in a dataset sink. Each group holds ChunkSize reads in the
// three standard read columns. With opts.Pipelining ≤ 1 groups build into
// reused builders (valid until the next group); with Pipelining > 1 builders
// come from a bounded pool so queued groups stay valid until Release.
// Scanner errors surface from Next.
func ImportStream(src io.Reader, opts ImportOptions) *agd.GroupStream {
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = agd.DefaultChunkSize
	}
	specs := agd.StandardReadColumns()
	var pool *agd.BuilderPool
	var fixed *agd.BuilderSet
	if opts.Pipelining > 1 {
		pool = agd.NewBuilderPool(opts.Pipelining, specs)
	} else {
		fixed = &agd.BuilderSet{Builders: make([]*agd.ChunkBuilder, len(specs))}
		for i, spec := range specs {
			fixed.Builders[i] = agd.NewChunkBuilder(spec.Type, 0)
		}
	}
	sc := NewScanner(src)
	var (
		ordinal uint64
		idx     int
		done    bool
	)
	meta := agd.StreamMeta{
		Columns:   []string{agd.ColBases, agd.ColQual, agd.ColMetadata},
		RefSeqs:   opts.RefSeqs,
		ChunkSize: chunkSize,
	}
	next := func(ctx context.Context) (*agd.RowGroup, error) {
		if done {
			return nil, io.EOF
		}
		set := fixed
		if pool != nil {
			var err error
			if set, err = pool.Get(ctx, ordinal); err != nil {
				return nil, err
			}
		}
		builders := set.Builders
		for i, spec := range specs {
			builders[i].Reset(spec.Type, ordinal)
		}
		rows := 0
		for rows < chunkSize && sc.Scan() {
			m, bases, quals := sc.View()
			builders[0].AppendBases(bases)
			builders[1].Append(quals)
			builders[2].Append(m)
			rows++
		}
		fin := func(err error) (*agd.RowGroup, error) {
			done = true
			if pool != nil {
				pool.Put(set)
			}
			return nil, err
		}
		if err := sc.Err(); err != nil {
			return fin(err)
		}
		if rows == 0 {
			return fin(io.EOF)
		}
		ordinal += uint64(rows)
		shard := 0
		if opts.Shards > 1 {
			shard = idx % opts.Shards
		}
		var release func()
		if pool != nil {
			put := set
			release = func() { pool.Put(put) }
		}
		g := agd.NewRowGroup(idx, shard, set.Chunks(), release)
		idx++
		return g, nil
	}
	gs := agd.NewGroupStream(meta, next, nil)
	gs.Owned = pool != nil
	return gs
}

// Export converts an AGD dataset back to FASTQ. Chunks arrive through a
// prefetching ChunkStream and records are written straight from the column
// bytes (bases expand into a reused scratch), so the export performs no
// per-read allocation. Cancellation and deadline of ctx are checked per
// chunk.
func Export(ctx context.Context, ds *agd.Dataset, dst io.Writer) (uint64, error) {
	chunkPool := agd.NewChunkPool(3 * (agd.DefaultPrefetch + 1))
	in, err := ds.Groups(agd.StreamOptions{
		Columns: []string{agd.ColBases, agd.ColQual, agd.ColMetadata},
		Pool:    chunkPool,
	})
	if err != nil {
		return 0, err
	}
	defer in.Close()
	return ExportStream(ctx, in, dst)
}

// ExportStream renders a pipeline stream's reads as FASTQ — the stream-in
// sink form of Export.
func ExportStream(ctx context.Context, in *agd.GroupStream, dst io.Writer) (uint64, error) {
	basesCol := in.Meta.Col(agd.ColBases)
	qualCol := in.Meta.Col(agd.ColQual)
	metaCol := in.Meta.Col(agd.ColMetadata)
	if basesCol < 0 || qualCol < 0 || metaCol < 0 {
		return 0, fmt.Errorf("fastq: stream lacks a read column (have %v)", in.Meta.Columns)
	}
	w := NewWriter(dst)
	var n uint64
	var bases []byte
	walk := func(g *agd.RowGroup) error {
		basesChunk, qualChunk, metaChunk := g.Chunks[basesCol], g.Chunks[qualCol], g.Chunks[metaCol]
		if basesChunk.NumRecords() != qualChunk.NumRecords() || basesChunk.NumRecords() != metaChunk.NumRecords() {
			return fmt.Errorf("fastq: group %d columns disagree on record count", g.Index)
		}
		var err error
		for r := 0; r < basesChunk.NumRecords(); r++ {
			bases, err = basesChunk.ExpandBasesRecord(bases[:0], r)
			if err != nil {
				return err
			}
			qual, err := qualChunk.Record(r)
			if err != nil {
				return err
			}
			meta, err := metaChunk.Record(r)
			if err != nil {
				return err
			}
			if err := w.WriteFields(meta, bases, qual); err != nil {
				return err
			}
			n++
		}
		return nil
	}
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		err = walk(g)
		g.Release() // release on the error path too (pooled sources)
		if err != nil {
			return n, err
		}
	}
	return n, w.Flush()
}
