package fastq

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"persona/internal/agd"
)

// ImportOptions configures FASTQ → AGD conversion.
type ImportOptions struct {
	// ChunkSize is records per AGD chunk (default agd.DefaultChunkSize).
	ChunkSize int
	// RefSeqs, if known, is recorded in the manifest.
	RefSeqs []agd.RefSeq
}

// Import converts a FASTQ stream into an AGD dataset (the paper's import
// utility, measured at 360 MB/s in §5.7). Scanned fields flow zero-copy
// from the scanner's reused buffers into the writer's chunk builders, so
// steady-state import performs no per-read allocation. It returns the
// manifest and the number of reads imported.
func Import(store agd.BlobStore, name string, src io.Reader, opts ImportOptions) (*agd.Manifest, uint64, error) {
	w, err := agd.NewWriter(store, name, agd.StandardReadColumns(), agd.WriterOptions{
		ChunkSize: opts.ChunkSize,
		RefSeqs:   opts.RefSeqs,
		// Compress completed chunks on all cores while parsing continues;
		// the overlap is what lets the paper's importer hit 360 MB/s.
		ParallelFlush: runtime.NumCPU(),
	})
	if err != nil {
		return nil, 0, err
	}
	sc := NewScanner(src)
	for sc.Scan() {
		meta, bases, quals := sc.View()
		if err := w.Append(bases, quals, meta); err != nil {
			return nil, 0, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	m, err := w.Close()
	if err != nil {
		return nil, 0, err
	}
	return m, m.NumRecords(), nil
}

// Export converts an AGD dataset back to FASTQ. Chunks arrive through a
// prefetching ChunkStream and records are written straight from the column
// bytes (bases expand into a reused scratch), so the export performs no
// per-read allocation.
func Export(ds *agd.Dataset, dst io.Writer) (uint64, error) {
	w := NewWriter(dst)
	chunkPool := agd.NewChunkPool(3 * (agd.DefaultPrefetch + 1))
	stream, err := ds.Stream(agd.StreamOptions{
		Columns: []string{agd.ColBases, agd.ColQual, agd.ColMetadata},
		Pool:    chunkPool,
	})
	if err != nil {
		return 0, err
	}
	defer stream.Close()
	var n uint64
	var bases []byte
	for {
		sc, err := stream.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		chunks := sc.Chunks()
		basesChunk, qualChunk, metaChunk := chunks[0], chunks[1], chunks[2]
		if basesChunk.NumRecords() != qualChunk.NumRecords() || basesChunk.NumRecords() != metaChunk.NumRecords() {
			return n, fmt.Errorf("fastq: chunk %d columns disagree on record count", sc.Index)
		}
		for r := 0; r < basesChunk.NumRecords(); r++ {
			bases, err = basesChunk.ExpandBasesRecord(bases[:0], r)
			if err != nil {
				return n, err
			}
			qual, err := qualChunk.Record(r)
			if err != nil {
				return n, err
			}
			meta, err := metaChunk.Record(r)
			if err != nil {
				return n, err
			}
			if err := w.WriteFields(meta, bases, qual); err != nil {
				return n, err
			}
			n++
		}
		sc.Release()
	}
	return n, w.Flush()
}
