package fastq_test

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"persona/internal/agd"
	"persona/internal/formats/fastq"
	"persona/internal/genome"
	"persona/internal/reads"
)

// TestFASTQRoundTripGolden pins exact FASTQ text through FASTQ → AGD →
// FASTQ: the zero-allocation import/export rewrite must be byte-identical
// to the record-at-a-time one it replaced. '@' as a quality value (the
// classic FASTQ ambiguity) is covered.
func TestFASTQRoundTripGolden(t *testing.T) {
	const golden = "@r1 first read\nACGTACGT\n+\nIIIIIIII\n" +
		"@r2\nGGGG\n+\n@@@@\n" +
		"@r3/1 with spaces\tand tab\nTTTTTTTTTTTT\n+\n!\"#$%&'()*+,\n"

	store := agd.NewMemStore()
	_, n, err := fastq.Import(context.Background(), store, "ds", strings.NewReader(golden), fastq.ImportOptions{ChunkSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d records", n)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := fastq.Export(context.Background(), ds, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != golden {
		t.Fatalf("round trip is not byte-identical:\n--- want ---\n%s--- got ---\n%s", golden, out.String())
	}
}

// TestFASTQRoundTripSimulated round-trips a simulator-scale read set.
func TestFASTQRoundTripSimulated(t *testing.T) {
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(50_000, 9))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 21, N: 500, ReadLen: 101})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	var text bytes.Buffer
	w := fastq.NewWriter(&text)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	store := agd.NewMemStore()
	if _, _, err := fastq.Import(context.Background(), store, "ds", bytes.NewReader(text.Bytes()), fastq.ImportOptions{ChunkSize: 100}); err != nil {
		t.Fatal(err)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := fastq.Export(context.Background(), ds, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text.Bytes(), out.Bytes()) {
		t.Fatal("FASTQ → AGD → FASTQ round trip is not byte-identical")
	}
}
