package bam

import (
	"bytes"
	"testing"

	"persona/internal/agd"
	"persona/internal/formats/sam"
)

var testRefs = []agd.RefSeq{
	{Name: "chr1", Length: 1000},
	{Name: "chr2", Length: 500},
}

func TestWriterReaderRoundTrip(t *testing.T) {
	recs := []sam.Record{
		{Name: "r1", Flags: 0, Ref: "chr1", Pos: 100, MapQ: 60, Cigar: "4M", RNext: "*", Seq: "ACGT", Qual: "IIII"},
		{Name: "r2", Flags: agd.FlagUnmapped, Ref: "*", Pos: 0, Cigar: "*", RNext: "*", Seq: "GGGGG", Qual: "!!!!!"},
		{Name: "r3", Flags: agd.FlagPaired | agd.FlagReverse, Ref: "chr2", Pos: 7, MapQ: 13,
			Cigar: "2M1I2M", RNext: "=", PNext: 200, TLen: -150, Seq: "TTTAA", Qual: "ABCDE"},
		{Name: "r4", Flags: agd.FlagPaired, Ref: "chr1", Pos: 50, MapQ: 22,
			Cigar: "3M", RNext: "chr2", PNext: 10, TLen: 0, Seq: "CCC", Qual: "JJJ"},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testRefs, "coordinate")
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Refs()) != 2 || r.Refs()[0].Name != "chr1" || r.Refs()[1].Length != 500 {
		t.Fatalf("refs = %+v", r.Refs())
	}
	if !bytes.Contains([]byte(r.HeaderText()), []byte("SO:coordinate")) {
		t.Fatal("header text missing sort order")
	}

	i := 0
	for r.Scan() {
		got := r.Record()
		want := recs[i]
		if got != want {
			t.Fatalf("record %d:\ngot  %+v\nwant %+v", i, got, want)
		}
		i++
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(recs) {
		t.Fatalf("read %d records, want %d", i, len(recs))
	}
}

func TestWriterRejectsUnknownRef(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testRefs, "")
	if err != nil {
		t.Fatal(err)
	}
	rec := sam.Record{Name: "r", Ref: "chrX", Pos: 1, Cigar: "1M", Seq: "A", Qual: "I"}
	if err := w.Write(&rec); err == nil {
		t.Fatal("unknown ref accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a bam file at all"))); err == nil {
		t.Fatal("garbage accepted as BAM")
	}
}

func TestOddLengthSeqNibbles(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testRefs, "")
	if err != nil {
		t.Fatal(err)
	}
	rec := sam.Record{Name: "odd", Ref: "chr1", Pos: 1, MapQ: 1, Cigar: "5M", RNext: "*", Seq: "ACGTN", Qual: "IIIII"}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Scan() {
		t.Fatalf("Scan failed: %v", r.Err())
	}
	if got := r.Record(); got.Seq != "ACGTN" {
		t.Fatalf("seq = %q, want ACGTN", got.Seq)
	}
}
