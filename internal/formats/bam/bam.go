// Package bam reads and writes the BAM binary alignment format: a BGZF
// stream carrying a binary header and alignment records. Persona produces
// BAM for compatibility with unported tools (§4.4; export throughput is the
// §5.7 experiment).
package bam

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/formats/bgzf"
	"persona/internal/formats/sam"
)

var bamMagic = []byte{'B', 'A', 'M', 1}

// seqNibble encodes a base letter into BAM's 4-bit code.
func seqNibble(b byte) byte {
	switch b {
	case 'A', 'a':
		return 1
	case 'C', 'c':
		return 2
	case 'G', 'g':
		return 4
	case 'T', 't':
		return 8
	default:
		return 15 // N
	}
}

// nibbleSeq decodes a 4-bit code back to a base letter.
func nibbleSeq(n byte) byte {
	switch n {
	case 1:
		return 'A'
	case 2:
		return 'C'
	case 4:
		return 'G'
	case 8:
		return 'T'
	default:
		return 'N'
	}
}

// blockWriter is the compressed-stream sink: the serial bgzf.Writer or the
// multi-worker bgzf.ParallelWriter (samtools-style --threads compression).
type blockWriter interface {
	io.Writer
	Close() error
}

// Writer emits a BAM file.
type Writer struct {
	z     blockWriter
	refs  map[string]int32
	buf   bytes.Buffer
	cigar align.Cigar // reused parse scratch (WriteView)
}

// NewWriter writes the BAM header (text header plus reference dictionary)
// and returns a record writer with serial BGZF compression.
func NewWriter(w io.Writer, refs []agd.RefSeq, sortOrder string) (*Writer, error) {
	return newWriter(bgzf.NewWriter(w), refs, sortOrder)
}

// NewWriterParallel is NewWriter with BGZF blocks compressed on workers
// goroutines.
func NewWriterParallel(w io.Writer, refs []agd.RefSeq, sortOrder string, workers int) (*Writer, error) {
	return newWriter(bgzf.NewParallelWriter(w, workers), refs, sortOrder)
}

// NewWriterLevel is NewWriter with an explicit BGZF compression level.
func NewWriterLevel(w io.Writer, refs []agd.RefSeq, sortOrder string, level int) (*Writer, error) {
	return newWriter(bgzf.NewWriterLevel(w, level), refs, sortOrder)
}

func newWriter(z blockWriter, refs []agd.RefSeq, sortOrder string) (*Writer, error) {
	bw := &Writer{z: z, refs: make(map[string]int32, len(refs))}
	if sortOrder == "" {
		sortOrder = "unsorted"
	}
	var text bytes.Buffer
	fmt.Fprintf(&text, "@HD\tVN:1.6\tSO:%s\n", sortOrder)
	for _, r := range refs {
		fmt.Fprintf(&text, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length)
	}

	var hdr bytes.Buffer
	hdr.Write(bamMagic)
	le := binary.LittleEndian
	var n4 [4]byte
	le.PutUint32(n4[:], uint32(text.Len()))
	hdr.Write(n4[:])
	hdr.Write(text.Bytes())
	le.PutUint32(n4[:], uint32(len(refs)))
	hdr.Write(n4[:])
	for i, r := range refs {
		le.PutUint32(n4[:], uint32(len(r.Name)+1))
		hdr.Write(n4[:])
		hdr.WriteString(r.Name)
		hdr.WriteByte(0)
		le.PutUint32(n4[:], uint32(r.Length))
		hdr.Write(n4[:])
		bw.refs[r.Name] = int32(i)
	}
	if _, err := bw.z.Write(hdr.Bytes()); err != nil {
		return nil, err
	}
	return bw, nil
}

// refID resolves a reference name to its dictionary index; "*" and "" map
// to -1.
func (w *Writer) refID(name string) (int32, error) {
	if name == "" || name == "*" {
		return -1, nil
	}
	id, ok := w.refs[name]
	if !ok {
		return 0, fmt.Errorf("bam: unknown reference %q", name)
	}
	return id, nil
}

// Write emits one alignment record.
func (w *Writer) Write(r *sam.Record) error {
	refID, err := w.refID(r.Ref)
	if err != nil {
		return err
	}
	nextRef := r.RNext
	if nextRef == "=" {
		nextRef = r.Ref
	}
	nextRefID, err := w.refID(nextRef)
	if err != nil {
		return err
	}
	cigar, err := align.ParseCigar(r.Cigar)
	if err != nil {
		return err
	}

	w.buf.Reset()
	le := binary.LittleEndian
	var n4 [4]byte
	put32 := func(v uint32) { le.PutUint32(n4[:], v); w.buf.Write(n4[:]) }

	put32(uint32(refID))
	put32(uint32(int32(r.Pos - 1)))
	// l_read_name | mapq<<8 | bin<<16 (bin left 0: indexing unused here)
	put32(uint32(len(r.Name)+1) | uint32(r.MapQ)<<8)
	put32(uint32(len(cigar)) | uint32(r.Flags)<<16)
	put32(uint32(len(r.Seq)))
	put32(uint32(nextRefID))
	put32(uint32(int32(r.PNext - 1)))
	put32(uint32(r.TLen))
	w.buf.WriteString(r.Name)
	w.buf.WriteByte(0)
	for _, e := range cigar {
		put32(uint32(e.Len)<<4 | uint32(e.Op.BAMCode()))
	}
	for i := 0; i < len(r.Seq); i += 2 {
		b := seqNibble(r.Seq[i]) << 4
		if i+1 < len(r.Seq) {
			b |= seqNibble(r.Seq[i+1])
		}
		w.buf.WriteByte(b)
	}
	for i := 0; i < len(r.Qual); i++ {
		w.buf.WriteByte(r.Qual[i] - '!')
	}

	le.PutUint32(n4[:], uint32(w.buf.Len()))
	if _, err := w.z.Write(n4[:]); err != nil {
		return err
	}
	_, err = w.z.Write(w.buf.Bytes())
	return err
}

// WriteView emits one alignment record assembled from AGD column bytes and
// a decoded result view — the zero-allocation export path. seq and qual
// must already be in SAM orientation.
func (w *Writer) WriteView(name, seq, qual []byte, v *agd.ResultView, refmap *sam.RefMap) error {
	refID, pos := int32(-1), int64(-1)
	cigar := w.cigar[:0]
	if !v.IsUnmapped() {
		ref, p, err := refmap.Locate(v.Location)
		if err != nil {
			return err
		}
		if refID, err = w.refID(ref); err != nil {
			return err
		}
		pos = p
		if cigar, err = align.ParseCigarBytes(cigar, v.Cigar); err != nil {
			return err
		}
	}
	w.cigar = cigar
	nextRefID, pnext := int32(-1), int64(-1)
	if v.Flags&agd.FlagPaired != 0 && v.MateLocation >= 0 {
		ref, p, err := refmap.Locate(v.MateLocation)
		if err != nil {
			return err
		}
		if nextRefID, err = w.refID(ref); err != nil {
			return err
		}
		pnext = p
	}
	w.writeRecord(refID, pos, nextRefID, pnext, v.MapQ, v.Flags, v.TemplateLen, name, cigar, seq, qual)
	return w.flushRecord()
}

// put32 appends one little-endian uint32 to the record buffer. A method
// (not a closure) so the hot writeRecord loop does not allocate a capture.
func (w *Writer) put32(v uint32) {
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], v)
	w.buf.Write(n4[:])
}

// writeRecord renders one record into the reused buffer.
func (w *Writer) writeRecord(refID int32, pos int64, nextRefID int32, pnext int64, mapq uint8, flags uint16, tlen int32, name []byte, cigar align.Cigar, seq, qual []byte) {
	w.buf.Reset()
	w.put32(uint32(refID))
	w.put32(uint32(int32(pos)))
	// l_read_name | mapq<<8 | bin<<16 (bin left 0: indexing unused here)
	w.put32(uint32(len(name)+1) | uint32(mapq)<<8)
	w.put32(uint32(len(cigar)) | uint32(flags)<<16)
	w.put32(uint32(len(seq)))
	w.put32(uint32(nextRefID))
	w.put32(uint32(int32(pnext)))
	w.put32(uint32(tlen))
	w.buf.Write(name)
	w.buf.WriteByte(0)
	for _, e := range cigar {
		w.put32(uint32(e.Len)<<4 | uint32(e.Op.BAMCode()))
	}
	for i := 0; i < len(seq); i += 2 {
		b := seqNibble(seq[i]) << 4
		if i+1 < len(seq) {
			b |= seqNibble(seq[i+1])
		}
		w.buf.WriteByte(b)
	}
	for i := 0; i < len(qual); i++ {
		w.buf.WriteByte(qual[i] - '!')
	}
}

// flushRecord emits the buffered record with its length prefix.
func (w *Writer) flushRecord() error {
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(w.buf.Len()))
	if _, err := w.z.Write(n4[:]); err != nil {
		return err
	}
	_, err := w.z.Write(w.buf.Bytes())
	return err
}

// Close flushes the BGZF stream and writes its EOF marker.
func (w *Writer) Close() error { return w.z.Close() }

// Export streams an AGD dataset out as BAM (§5.7's export path). Records
// render straight from the streamed column bytes (sam.StreamRecords), so
// the export performs no per-record allocation. It returns the number of
// records written.
func Export(ctx context.Context, ds *agd.Dataset, dst io.Writer) (uint64, error) {
	if !ds.Manifest.HasColumn(agd.ColResults) {
		return 0, fmt.Errorf("bam: dataset %q has no results column", ds.Manifest.Name)
	}
	refmap := sam.NewRefMap(ds.Manifest.RefSeqs)
	sortOrder := "unsorted"
	if ds.Manifest.SortedBy == "location" {
		sortOrder = "coordinate"
	}
	w, err := NewWriter(dst, ds.Manifest.RefSeqs, sortOrder)
	if err != nil {
		return 0, err
	}
	var n uint64
	err = sam.StreamRecords(ctx, ds, func(meta, seq, qual []byte, v *agd.ResultView) error {
		n++
		return w.WriteView(meta, seq, qual, v, refmap)
	})
	if err != nil {
		return n, err
	}
	return n, w.Close()
}

// ExportStream renders a pipeline stream (with a results column) as BAM —
// the stream-in sink form of Export.
func ExportStream(ctx context.Context, in *agd.GroupStream, dst io.Writer) (uint64, error) {
	refmap := sam.NewRefMap(in.Meta.RefSeqs)
	sortOrder := "unsorted"
	if in.Meta.SortedBy == "location" {
		sortOrder = "coordinate"
	}
	w, err := NewWriter(dst, in.Meta.RefSeqs, sortOrder)
	if err != nil {
		return 0, err
	}
	var n uint64
	err = sam.StreamGroups(ctx, in, func(meta, seq, qual []byte, v *agd.ResultView) error {
		n++
		return w.WriteView(meta, seq, qual, v, refmap)
	})
	if err != nil {
		return n, err
	}
	return n, w.Close()
}
