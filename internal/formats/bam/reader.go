package bam

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/formats/bgzf"
	"persona/internal/formats/sam"
)

// Reader parses a BAM file.
type Reader struct {
	r    *bufio.Reader
	refs []agd.RefSeq
	text string
	rec  sam.Record
	err  error
}

// NewReader parses the BAM header of the BGZF stream in r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(bgzf.NewReader(r), 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("bam: reading magic: %w", err)
	}
	for i, b := range bamMagic {
		if magic[i] != b {
			return nil, fmt.Errorf("bam: bad magic %q", magic)
		}
	}
	textLen, err := read32(br)
	if err != nil {
		return nil, err
	}
	text := make([]byte, textLen)
	if _, err := io.ReadFull(br, text); err != nil {
		return nil, err
	}
	nRef, err := read32(br)
	if err != nil {
		return nil, err
	}
	refs := make([]agd.RefSeq, 0, nRef)
	for i := uint32(0); i < nRef; i++ {
		nameLen, err := read32(br)
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		refLen, err := read32(br)
		if err != nil {
			return nil, err
		}
		refs = append(refs, agd.RefSeq{Name: strings.TrimRight(string(name), "\x00"), Length: int64(refLen)})
	}
	return &Reader{r: br, refs: refs, text: string(text)}, nil
}

func read32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Refs returns the reference dictionary.
func (r *Reader) Refs() []agd.RefSeq { return r.refs }

// HeaderText returns the SAM text header embedded in the BAM header.
func (r *Reader) HeaderText() string { return r.text }

// Scan advances to the next alignment record.
func (r *Reader) Scan() bool {
	if r.err != nil {
		return false
	}
	blockSize, err := read32(r.r)
	if err != nil {
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			r.err = err
		}
		return false
	}
	block := make([]byte, blockSize)
	if _, err := io.ReadFull(r.r, block); err != nil {
		r.err = fmt.Errorf("bam: truncated record: %w", err)
		return false
	}
	rec, err := parseRecord(block, r.refs)
	if err != nil {
		r.err = err
		return false
	}
	r.rec = rec
	return true
}

// Record returns the current record.
func (r *Reader) Record() sam.Record { return r.rec }

// Err returns the first error encountered (nil at clean EOF).
func (r *Reader) Err() error { return r.err }

func parseRecord(b []byte, refs []agd.RefSeq) (sam.Record, error) {
	var rec sam.Record
	if len(b) < 32 {
		return rec, fmt.Errorf("bam: record too short (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	refID := int32(le.Uint32(b[0:4]))
	pos := int32(le.Uint32(b[4:8]))
	lReadName := int(b[8])
	rec.MapQ = b[9]
	nCigar := int(le.Uint16(b[12:14]))
	rec.Flags = le.Uint16(b[14:16])
	lSeq := int(le.Uint32(b[16:20]))
	nextRefID := int32(le.Uint32(b[20:24]))
	nextPos := int32(le.Uint32(b[24:28]))
	rec.TLen = int32(le.Uint32(b[28:32]))

	refName := func(id int32) string {
		if id < 0 || int(id) >= len(refs) {
			return "*"
		}
		return refs[id].Name
	}
	rec.Ref = refName(refID)
	rec.Pos = int64(pos) + 1
	if rec.Ref == "*" {
		rec.Pos = 0
	}
	rec.RNext = refName(nextRefID)
	rec.PNext = int64(nextPos) + 1
	if rec.RNext == "*" {
		rec.PNext = 0
	} else if rec.RNext == rec.Ref && rec.Ref != "*" {
		rec.RNext = "="
	}

	off := 32
	if off+lReadName > len(b) {
		return rec, fmt.Errorf("bam: record name overruns block")
	}
	rec.Name = strings.TrimRight(string(b[off:off+lReadName]), "\x00")
	off += lReadName

	if off+nCigar*4 > len(b) {
		return rec, fmt.Errorf("bam: cigar overruns block")
	}
	var cigar align.Cigar
	for i := 0; i < nCigar; i++ {
		v := le.Uint32(b[off : off+4])
		off += 4
		op, err := align.CigarOpFromBAM(int(v & 0xf))
		if err != nil {
			return rec, err
		}
		cigar = append(cigar, align.CigarElem{Len: int(v >> 4), Op: op})
	}
	rec.Cigar = cigar.String()
	if nCigar == 0 {
		rec.Cigar = "*"
	}

	seqBytes := (lSeq + 1) / 2
	if off+seqBytes+lSeq > len(b) {
		return rec, fmt.Errorf("bam: seq/qual overruns block")
	}
	seq := make([]byte, lSeq)
	for i := 0; i < lSeq; i++ {
		nib := b[off+i/2]
		if i%2 == 0 {
			nib >>= 4
		}
		seq[i] = nibbleSeq(nib & 0xf)
	}
	off += seqBytes
	rec.Seq = string(seq)
	qual := make([]byte, lSeq)
	for i := 0; i < lSeq; i++ {
		qual[i] = b[off+i] + '!'
	}
	rec.Qual = string(qual)
	return rec, nil
}
