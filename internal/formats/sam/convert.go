package sam

import (
	"fmt"
	"io"

	"persona/internal/agd"
	"persona/internal/genome"
)

// reverseString reverses a byte string (quality reversal for reverse-strand
// records).
func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// Export streams an AGD dataset (with a results column) out as SAM — the
// compatibility output subgraph of §4.4. It returns the number of records
// written.
func Export(ds *agd.Dataset, dst io.Writer) (uint64, error) {
	if !ds.Manifest.HasColumn(agd.ColResults) {
		return 0, fmt.Errorf("sam: dataset %q has no results column", ds.Manifest.Name)
	}
	refmap := NewRefMap(ds.Manifest.RefSeqs)
	sortOrder := "unsorted"
	if ds.Manifest.SortedBy == "location" {
		sortOrder = "coordinate"
	}
	w, err := NewWriter(dst, ds.Manifest.RefSeqs, sortOrder)
	if err != nil {
		return 0, err
	}
	var n uint64
	for i := 0; i < ds.NumChunks(); i++ {
		recs, err := ChunkRecords(ds, refmap, i)
		if err != nil {
			return n, err
		}
		for j := range recs {
			if err := w.Write(&recs[j]); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, w.Flush()
}

// ChunkRecords materializes the SAM records of one AGD chunk.
func ChunkRecords(ds *agd.Dataset, refmap *RefMap, chunkIdx int) ([]Record, error) {
	basesChunk, err := ds.ReadChunk(agd.ColBases, chunkIdx)
	if err != nil {
		return nil, err
	}
	qualChunk, err := ds.ReadChunk(agd.ColQual, chunkIdx)
	if err != nil {
		return nil, err
	}
	metaChunk, err := ds.ReadChunk(agd.ColMetadata, chunkIdx)
	if err != nil {
		return nil, err
	}
	resChunk, err := ds.ReadChunk(agd.ColResults, chunkIdx)
	if err != nil {
		return nil, err
	}
	n := basesChunk.NumRecords()
	if qualChunk.NumRecords() != n || metaChunk.NumRecords() != n || resChunk.NumRecords() != n {
		return nil, fmt.Errorf("sam: chunk %d columns disagree on record count", chunkIdx)
	}
	out := make([]Record, 0, n)
	for r := 0; r < n; r++ {
		bases, err := basesChunk.ExpandBasesRecord(nil, r)
		if err != nil {
			return nil, err
		}
		qual, err := qualChunk.Record(r)
		if err != nil {
			return nil, err
		}
		meta, err := metaChunk.Record(r)
		if err != nil {
			return nil, err
		}
		res, err := resChunk.DecodeResultRecord(r)
		if err != nil {
			return nil, err
		}
		rec, err := FromResult(string(meta), string(bases), string(qual), &res, refmap)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// FromResult converts an AGD result plus read fields (in as-sequenced
// orientation, the AGD convention) to a SAM record. Reverse-strand
// alignments get SEQ reverse-complemented and QUAL reversed, per the SAM
// specification — the stored CIGAR already refers to that orientation.
func FromResult(name, seq, qual string, res *agd.Result, refmap *RefMap) (Record, error) {
	if res.Flags&agd.FlagReverse != 0 && res.Flags&agd.FlagUnmapped == 0 {
		seq = string(genome.ReverseComplement(make([]byte, len(seq)), []byte(seq)))
		qual = reverseString(qual)
	}
	rec := Record{
		Name:  name,
		Flags: res.Flags,
		MapQ:  res.MapQ,
		TLen:  res.TemplateLen,
		Seq:   seq,
		Qual:  qual,
	}
	if res.IsUnmapped() {
		rec.Ref, rec.Pos, rec.Cigar = "*", 0, "*"
	} else {
		ref, pos, err := refmap.Locate(res.Location)
		if err != nil {
			return rec, err
		}
		rec.Ref, rec.Pos, rec.Cigar = ref, pos+1, res.Cigar
	}
	if res.Flags&agd.FlagPaired != 0 && res.MateLocation >= 0 {
		ref, pos, err := refmap.Locate(res.MateLocation)
		if err != nil {
			return rec, err
		}
		if ref == rec.Ref {
			rec.RNext = "="
		} else {
			rec.RNext = ref
		}
		rec.PNext = pos + 1
	}
	return rec, nil
}

// ToResult converts a SAM record back to an AGD result.
func ToResult(rec *Record, refmap *RefMap) (agd.Result, error) {
	res := agd.Result{
		Flags:        rec.Flags,
		MapQ:         rec.MapQ,
		TemplateLen:  rec.TLen,
		Cigar:        rec.Cigar,
		Location:     agd.UnmappedLocation,
		MateLocation: agd.UnmappedLocation,
	}
	if rec.Flags&agd.FlagUnmapped == 0 && rec.Ref != "*" && rec.Pos > 0 {
		g, err := refmap.Global(rec.Ref, rec.Pos-1)
		if err != nil {
			return res, err
		}
		res.Location = g
	} else {
		res.Cigar = ""
	}
	if rec.RNext != "*" && rec.PNext > 0 {
		ref := rec.RNext
		if ref == "=" {
			ref = rec.Ref
		}
		g, err := refmap.Global(ref, rec.PNext-1)
		if err != nil {
			return res, err
		}
		res.MateLocation = g
	}
	return res, nil
}
