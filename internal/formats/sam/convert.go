package sam

import (
	"context"
	"fmt"
	"io"

	"persona/internal/agd"
	"persona/internal/genome"
)

// reverseString reverses a byte string (quality reversal for reverse-strand
// records).
func reverseString(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// ExportScratch is the reused per-record buffers of a streaming export:
// expanded bases, the reverse-complemented sequence and the reversed
// qualities of reverse-strand reads. The zero value is ready to use; one
// scratch serves any number of exports, one at a time.
type ExportScratch struct {
	bases []byte
	rc    []byte
	qrev  []byte
}

// Orient returns a record's SEQ and QUAL in SAM orientation: reverse-strand
// mapped reads are reverse-complemented / reversed into the scratch (the SAM
// convention; AGD stores reads as sequenced). The returned slices are valid
// until the next call.
func (s *ExportScratch) Orient(bases, qual []byte, v *agd.ResultView) (seq, q []byte) {
	if v.Flags&agd.FlagReverse == 0 || v.Flags&agd.FlagUnmapped != 0 {
		return bases, qual
	}
	s.rc = genome.ReverseComplementScratch(s.rc, bases)
	s.qrev = genome.ReverseScratch(s.qrev, qual)
	return s.rc, s.qrev
}

// exportColumns is the column order Export and bam.Export stream.
var exportColumns = []string{agd.ColBases, agd.ColQual, agd.ColMetadata, agd.ColResults}

// Export streams an AGD dataset (with a results column) out as SAM — the
// compatibility output subgraph of §4.4. Chunks arrive through a prefetching
// ChunkStream and each record is rendered from the column bytes in place, so
// the export performs no per-record allocation. It returns the number of
// records written. Cancellation and deadline of ctx are checked per chunk.
func Export(ctx context.Context, ds *agd.Dataset, dst io.Writer) (uint64, error) {
	in, err := exportGroups(ds)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	return ExportStream(ctx, in, dst)
}

// ExportStream renders a pipeline stream (with a results column) as SAM —
// the stream-in sink form of Export. The header's sort order comes from the
// stream metadata.
func ExportStream(ctx context.Context, in *agd.GroupStream, dst io.Writer) (uint64, error) {
	refmap := NewRefMap(in.Meta.RefSeqs)
	sortOrder := "unsorted"
	if in.Meta.SortedBy == "location" {
		sortOrder = "coordinate"
	}
	w, err := NewWriter(dst, in.Meta.RefSeqs, sortOrder)
	if err != nil {
		return 0, err
	}
	var n uint64
	err = StreamGroups(ctx, in, func(meta, seq, qual []byte, v *agd.ResultView) error {
		n++
		return w.WriteView(meta, seq, qual, v, refmap)
	})
	if err != nil {
		return n, err
	}
	return n, w.Flush()
}

// exportGroups opens the pooled four-column group stream the SAM and BAM
// dataset exporters walk.
func exportGroups(ds *agd.Dataset) (*agd.GroupStream, error) {
	if !ds.Manifest.HasColumn(agd.ColResults) {
		return nil, fmt.Errorf("sam: dataset %q has no results column", ds.Manifest.Name)
	}
	chunkPool := agd.NewChunkPool(len(exportColumns) * (agd.DefaultPrefetch + 1))
	return ds.Groups(agd.StreamOptions{Columns: exportColumns, Pool: chunkPool})
}

// StreamRecords streams every record of an aligned dataset in SAM
// orientation through fn(meta, seq, qual, result view). The slices alias
// reused buffers, valid only for the duration of the call — the shared
// zero-allocation walk under the SAM and BAM exporters.
func StreamRecords(ctx context.Context, ds *agd.Dataset, fn func(meta, seq, qual []byte, v *agd.ResultView) error) error {
	in, err := exportGroups(ds)
	if err != nil {
		return err
	}
	defer in.Close()
	return StreamGroups(ctx, in, fn)
}

// StreamGroups is StreamRecords over a pipeline stream: the group-stream
// walk shared by the SAM, BAM and dataset export paths. The stream must
// carry the bases, qual, metadata and results columns.
func StreamGroups(ctx context.Context, in *agd.GroupStream, fn func(meta, seq, qual []byte, v *agd.ResultView) error) error {
	basesCol := in.Meta.Col(agd.ColBases)
	qualCol := in.Meta.Col(agd.ColQual)
	metaCol := in.Meta.Col(agd.ColMetadata)
	resCol := in.Meta.Col(agd.ColResults)
	if basesCol < 0 || qualCol < 0 || metaCol < 0 || resCol < 0 {
		return fmt.Errorf("sam: stream lacks an export column (have %v)", in.Meta.Columns)
	}
	var scratch ExportScratch
	// v is hoisted out of the record loop: its address is passed to fn, so a
	// loop-local view would escape (one heap allocation per record).
	var v agd.ResultView
	walk := func(g *agd.RowGroup) error {
		basesChunk, qualChunk, metaChunk, resChunk := g.Chunks[basesCol], g.Chunks[qualCol], g.Chunks[metaCol], g.Chunks[resCol]
		n := basesChunk.NumRecords()
		if qualChunk.NumRecords() != n || metaChunk.NumRecords() != n || resChunk.NumRecords() != n {
			return fmt.Errorf("sam: group %d columns disagree on record count", g.Index)
		}
		var err error
		for r := 0; r < n; r++ {
			scratch.bases, err = basesChunk.ExpandBasesRecord(scratch.bases[:0], r)
			if err != nil {
				return err
			}
			qual, err := qualChunk.Record(r)
			if err != nil {
				return err
			}
			meta, err := metaChunk.Record(r)
			if err != nil {
				return err
			}
			rec, err := resChunk.Record(r)
			if err != nil {
				return err
			}
			if v, err = agd.DecodeResultView(rec); err != nil {
				return err
			}
			seq, q := scratch.Orient(scratch.bases, qual, &v)
			if err := fn(meta, seq, q, &v); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		err = walk(g)
		// Release on the error path too: pooled chunks must go back even
		// when the walk fails, or a shared session pool slowly drains.
		g.Release()
		if err != nil {
			return err
		}
	}
}

// ChunkRecords materializes the SAM records of one AGD chunk.
func ChunkRecords(ds *agd.Dataset, refmap *RefMap, chunkIdx int) ([]Record, error) {
	basesChunk, err := ds.ReadChunk(agd.ColBases, chunkIdx)
	if err != nil {
		return nil, err
	}
	qualChunk, err := ds.ReadChunk(agd.ColQual, chunkIdx)
	if err != nil {
		return nil, err
	}
	metaChunk, err := ds.ReadChunk(agd.ColMetadata, chunkIdx)
	if err != nil {
		return nil, err
	}
	resChunk, err := ds.ReadChunk(agd.ColResults, chunkIdx)
	if err != nil {
		return nil, err
	}
	n := basesChunk.NumRecords()
	if qualChunk.NumRecords() != n || metaChunk.NumRecords() != n || resChunk.NumRecords() != n {
		return nil, fmt.Errorf("sam: chunk %d columns disagree on record count", chunkIdx)
	}
	out := make([]Record, 0, n)
	for r := 0; r < n; r++ {
		bases, err := basesChunk.ExpandBasesRecord(nil, r)
		if err != nil {
			return nil, err
		}
		qual, err := qualChunk.Record(r)
		if err != nil {
			return nil, err
		}
		meta, err := metaChunk.Record(r)
		if err != nil {
			return nil, err
		}
		res, err := resChunk.DecodeResultRecord(r)
		if err != nil {
			return nil, err
		}
		rec, err := FromResult(string(meta), string(bases), string(qual), &res, refmap)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// FromResult converts an AGD result plus read fields (in as-sequenced
// orientation, the AGD convention) to a SAM record. Reverse-strand
// alignments get SEQ reverse-complemented and QUAL reversed, per the SAM
// specification — the stored CIGAR already refers to that orientation.
func FromResult(name, seq, qual string, res *agd.Result, refmap *RefMap) (Record, error) {
	if res.Flags&agd.FlagReverse != 0 && res.Flags&agd.FlagUnmapped == 0 {
		seq = string(genome.ReverseComplement(make([]byte, len(seq)), []byte(seq)))
		qual = reverseString(qual)
	}
	rec := Record{
		Name:  name,
		Flags: res.Flags,
		MapQ:  res.MapQ,
		TLen:  res.TemplateLen,
		Seq:   seq,
		Qual:  qual,
	}
	if res.IsUnmapped() {
		rec.Ref, rec.Pos, rec.Cigar = "*", 0, "*"
	} else {
		ref, pos, err := refmap.Locate(res.Location)
		if err != nil {
			return rec, err
		}
		rec.Ref, rec.Pos, rec.Cigar = ref, pos+1, res.Cigar
	}
	if res.Flags&agd.FlagPaired != 0 && res.MateLocation >= 0 {
		ref, pos, err := refmap.Locate(res.MateLocation)
		if err != nil {
			return rec, err
		}
		if ref == rec.Ref {
			rec.RNext = "="
		} else {
			rec.RNext = ref
		}
		rec.PNext = pos + 1
	}
	return rec, nil
}

// ToResult converts a SAM record back to an AGD result.
func ToResult(rec *Record, refmap *RefMap) (agd.Result, error) {
	res := agd.Result{
		Flags:        rec.Flags,
		MapQ:         rec.MapQ,
		TemplateLen:  rec.TLen,
		Cigar:        rec.Cigar,
		Location:     agd.UnmappedLocation,
		MateLocation: agd.UnmappedLocation,
	}
	if rec.Flags&agd.FlagUnmapped == 0 && rec.Ref != "*" && rec.Pos > 0 {
		g, err := refmap.Global(rec.Ref, rec.Pos-1)
		if err != nil {
			return res, err
		}
		res.Location = g
	} else {
		res.Cigar = ""
	}
	if rec.RNext != "*" && rec.PNext > 0 {
		ref := rec.RNext
		if ref == "=" {
			ref = rec.Ref
		}
		g, err := refmap.Global(ref, rec.PNext-1)
		if err != nil {
			return res, err
		}
		res.MateLocation = g
	}
	return res, nil
}
