package sam

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"persona/internal/agd"
)

const importSample = `@HD	VN:1.6	SO:coordinate
@SQ	SN:chr1	LN:1000
@SQ	SN:chr2	LN:500
r1	0	chr1	101	60	4M	*	0	0	ACGT	IIII
r2	16	chr1	201	37	4M	*	0	0	ACGT	ABCD
r3	4	*	0	0	*	*	0	0	GGGG	!!!!
`

func TestImportSAMRoundTrip(t *testing.T) {
	store := agd.NewMemStore()
	m, n, err := Import(context.Background(), store, "ds", strings.NewReader(importSample), ImportOptions{ChunkSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("imported %d records", n)
	}
	if m.SortedBy != "location" {
		t.Fatalf("SortedBy = %q", m.SortedBy)
	}
	if len(m.RefSeqs) != 2 || m.RefSeqs[0].Name != "chr1" || m.RefSeqs[1].Length != 500 {
		t.Fatalf("refs = %+v", m.RefSeqs)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("no results column")
	}

	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Location != 100 { // chr1:101 1-based → global 100
		t.Fatalf("r1 location = %d", results[0].Location)
	}
	if !results[1].IsReverse() || results[1].Location != 200 {
		t.Fatalf("r2 = %+v", results[1])
	}
	if !results[2].IsUnmapped() {
		t.Fatalf("r3 = %+v", results[2])
	}

	// Reverse-strand reads must come back out of AGD in as-sequenced
	// orientation: r2's stored bases are RC("ACGT") = "ACGT"... use the
	// export to confirm SAM-side fidelity instead.
	var out bytes.Buffer
	if _, err := Export(context.Background(), ds, &out); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(out.String()))
	var recs []Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("re-exported %d records", len(recs))
	}
	if recs[0].Seq != "ACGT" || recs[0].Pos != 101 {
		t.Fatalf("r1 re-export = %+v", recs[0])
	}
	// r2 was imported with SAM-oriented SEQ "ACGT"; re-export must produce
	// the same SAM-oriented SEQ and reversed qual.
	if recs[1].Seq != "ACGT" || recs[1].Qual != "ABCD" {
		t.Fatalf("r2 re-export = %+v", recs[1])
	}
	if recs[2].Flags&agd.FlagUnmapped == 0 {
		t.Fatalf("r3 re-export = %+v", recs[2])
	}
}

func TestImportSAMRejectsHeaderless(t *testing.T) {
	store := agd.NewMemStore()
	noSQ := "@HD\tVN:1.6\nr1\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\n"
	if _, _, err := Import(context.Background(), store, "ds", strings.NewReader(noSQ), ImportOptions{}); err == nil {
		t.Fatal("headerless SAM imported")
	}
	if _, _, err := Import(context.Background(), store, "ds", strings.NewReader("@HD\tVN:1.6\n"), ImportOptions{}); err == nil {
		t.Fatal("record-less SAM imported")
	}
}

func TestReverseStrandSeqConvention(t *testing.T) {
	// A reverse alignment whose as-sequenced read is "AACC": SAM must carry
	// RC = "GGTT"; importing that SAM must restore "AACC" in AGD.
	refmap := NewRefMap([]agd.RefSeq{{Name: "chr1", Length: 1000}})
	res := agd.Result{Location: 10, Flags: agd.FlagReverse, MapQ: 60, Cigar: "4M"}
	rec, err := FromResult("r", "AACC", "ABCD", &res, refmap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != "GGTT" {
		t.Fatalf("SAM seq = %q, want GGTT", rec.Seq)
	}
	if rec.Qual != "DCBA" {
		t.Fatalf("SAM qual = %q, want DCBA", rec.Qual)
	}
}
