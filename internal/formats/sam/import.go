package sam

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"persona/internal/agd"
	"persona/internal/genome"
)

// ImportOptions configures SAM → AGD conversion.
type ImportOptions struct {
	// ChunkSize is records per AGD chunk (default agd.DefaultChunkSize).
	ChunkSize int
}

// Import converts an aligned SAM stream into an AGD dataset with all four
// standard columns (bases, qual, metadata, results) — the ingestion path
// for data aligned by tools that have not been ported to AGD. Reference
// sequences are taken from the @SQ header lines. It returns the manifest
// and the number of records imported.
func Import(store agd.BlobStore, name string, src io.Reader, opts ImportOptions) (*agd.Manifest, uint64, error) {
	sc := NewScanner(src)
	var w *agd.Writer
	var refmap *RefMap
	var n uint64
	cols := append(agd.StandardReadColumns(), agd.ColumnSpec{Name: agd.ColResults, Type: agd.TypeResults})

	for sc.Scan() {
		if w == nil {
			// The header is complete once the first record appears.
			refs, err := refsFromHeader(sc.Header())
			if err != nil {
				return nil, 0, err
			}
			refmap = NewRefMap(refs)
			w, err = agd.NewWriter(store, name, cols, agd.WriterOptions{
				ChunkSize:     opts.ChunkSize,
				RefSeqs:       refs,
				SortedBy:      sortOrderFromHeader(sc.Header()),
				ParallelFlush: runtime.NumCPU(),
			})
			if err != nil {
				return nil, 0, err
			}
		}
		rec := sc.Record()
		res, err := ToResult(&rec, refmap)
		if err != nil {
			return nil, n, fmt.Errorf("sam: record %q: %w", rec.Name, err)
		}
		// SAM stores reverse-strand SEQ reverse-complemented; AGD stores
		// reads as sequenced, so undo the transformation on the way in.
		seq, qual := rec.Seq, rec.Qual
		if res.IsReverse() && !res.IsUnmapped() {
			seq = string(genome.ReverseComplement(make([]byte, len(seq)), []byte(seq)))
			qual = reverseString(qual)
		}
		if err := w.Append(
			[]byte(seq),
			[]byte(qual),
			[]byte(rec.Name),
			agd.EncodeResult(nil, &res),
		); err != nil {
			return nil, n, err
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, n, err
	}
	if w == nil {
		return nil, 0, fmt.Errorf("sam: stream %q has no alignment records", name)
	}
	m, err := w.Close()
	if err != nil {
		return nil, n, err
	}
	return m, n, nil
}

// refsFromHeader extracts the reference dictionary from @SQ lines.
func refsFromHeader(header []string) ([]agd.RefSeq, error) {
	var refs []agd.RefSeq
	for _, line := range header {
		if !strings.HasPrefix(line, "@SQ") {
			continue
		}
		var ref agd.RefSeq
		for _, field := range strings.Split(line, "\t")[1:] {
			switch {
			case strings.HasPrefix(field, "SN:"):
				ref.Name = field[3:]
			case strings.HasPrefix(field, "LN:"):
				l, err := strconv.ParseInt(field[3:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sam: bad @SQ LN in %q", line)
				}
				ref.Length = l
			}
		}
		if ref.Name == "" || ref.Length == 0 {
			return nil, fmt.Errorf("sam: incomplete @SQ line %q", line)
		}
		refs = append(refs, ref)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("sam: header has no @SQ lines")
	}
	return refs, nil
}

// sortOrderFromHeader maps the @HD SO field to the manifest convention.
func sortOrderFromHeader(header []string) string {
	for _, line := range header {
		if !strings.HasPrefix(line, "@HD") {
			continue
		}
		if strings.Contains(line, "SO:coordinate") {
			return "location"
		}
		if strings.Contains(line, "SO:queryname") {
			return "metadata"
		}
	}
	return ""
}
