package sam

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"persona/internal/agd"
	"persona/internal/genome"
)

// ImportOptions configures SAM → AGD conversion.
type ImportOptions struct {
	// ChunkSize is records per AGD chunk (default agd.DefaultChunkSize).
	ChunkSize int
}

// Import converts an aligned SAM stream into an AGD dataset with all four
// standard columns (bases, qual, metadata, results) — the ingestion path
// for data aligned by tools that have not been ported to AGD. Reference
// sequences are taken from the @SQ header lines. It returns the manifest
// and the number of records imported.
//
// Parsing is byte-level into reused buffers: fields flow from the input
// straight into the writer's arena-backed chunk builders without
// materializing Record objects or strings, so steady-state import performs
// no per-record allocation. Cancellation and deadline of ctx are checked
// once per output chunk's worth of records.
func Import(ctx context.Context, store agd.BlobStore, name string, src io.Reader, opts ImportOptions) (*agd.Manifest, uint64, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	chunkSize := uint64(opts.ChunkSize)
	if chunkSize == 0 {
		chunkSize = agd.DefaultChunkSize
	}
	var (
		w       *agd.Writer
		refmap  *RefMap
		n       uint64
		header  []string
		line    []byte
		fields  [][]byte
		rc      []byte // reverse-complement scratch
		qrev    []byte // reversed-quality scratch
		resBuf  []byte // encoded result scratch
		lineNum int
	)
	cols := append(agd.StandardReadColumns(), agd.ColumnSpec{Name: agd.ColResults, Type: agd.TypeResults})

	for {
		var rerr error
		line, rerr = readLine(br, line[:0])
		if rerr != nil && rerr != io.EOF {
			return nil, n, rerr
		}
		atEOF := rerr == io.EOF
		if len(line) == 0 {
			if atEOF {
				break
			}
			continue
		}
		lineNum++
		if line[0] == '@' {
			if w == nil {
				header = append(header, string(line))
			}
			if atEOF {
				break
			}
			continue
		}
		if w == nil {
			// The header is complete once the first record appears.
			refs, err := refsFromHeader(header)
			if err != nil {
				return nil, 0, err
			}
			refmap = NewRefMap(refs)
			w, err = agd.NewWriter(store, name, cols, agd.WriterOptions{
				ChunkSize:     opts.ChunkSize,
				RefSeqs:       refs,
				SortedBy:      sortOrderFromHeader(header),
				ParallelFlush: runtime.NumCPU(),
			})
			if err != nil {
				return nil, 0, err
			}
		}

		if n%chunkSize == 0 {
			if err := ctx.Err(); err != nil {
				return nil, n, err
			}
		}
		fields = splitTabs(fields[:0], line)
		if len(fields) < 11 {
			return nil, n, fmt.Errorf("sam: line %d: only %d fields", lineNum, len(fields))
		}
		flags, err := parseUintField(fields[1], 16, lineNum, "flags")
		if err != nil {
			return nil, n, err
		}
		pos, err := parseIntField(fields[3], 64, lineNum, "pos")
		if err != nil {
			return nil, n, err
		}
		mapq, err := parseUintField(fields[4], 8, lineNum, "mapq")
		if err != nil {
			return nil, n, err
		}
		pnext, err := parseIntField(fields[7], 64, lineNum, "pnext")
		if err != nil {
			return nil, n, err
		}
		tlen, err := parseIntField(fields[8], 32, lineNum, "tlen")
		if err != nil {
			return nil, n, err
		}
		rname, ref, cigar, rnext := fields[0], fields[2], fields[5], fields[6]
		seq, qual := fields[9], fields[10]

		v := agd.ResultView{
			Flags:        uint16(flags),
			MapQ:         uint8(mapq),
			TemplateLen:  int32(tlen),
			Cigar:        cigar,
			Location:     agd.UnmappedLocation,
			MateLocation: agd.UnmappedLocation,
		}
		if len(cigar) == 1 && cigar[0] == '*' {
			v.Cigar = nil
		}
		if v.Flags&agd.FlagUnmapped == 0 && !isStar(ref) && pos > 0 {
			g, err := refmap.GlobalBytes(ref, pos-1)
			if err != nil {
				return nil, n, fmt.Errorf("sam: record %q: %w", rname, err)
			}
			v.Location = g
		} else {
			v.Cigar = nil
		}
		if !isStar(rnext) && pnext > 0 {
			mref := rnext
			if len(mref) == 1 && mref[0] == '=' {
				mref = ref
			}
			g, err := refmap.GlobalBytes(mref, pnext-1)
			if err != nil {
				return nil, n, fmt.Errorf("sam: record %q: %w", rname, err)
			}
			v.MateLocation = g
		}
		// SAM stores reverse-strand SEQ reverse-complemented; AGD stores
		// reads as sequenced, so undo the transformation on the way in.
		if v.IsReverse() && !v.IsUnmapped() {
			rc = genome.ReverseComplementScratch(rc, seq)
			qrev = genome.ReverseScratch(qrev, qual)
			seq, qual = rc, qrev
		}
		resBuf = agd.EncodeResultView(resBuf[:0], &v)
		if err := w.Append(seq, qual, rname, resBuf); err != nil {
			return nil, n, err
		}
		n++
		if atEOF {
			break
		}
	}
	if w == nil {
		return nil, 0, fmt.Errorf("sam: stream %q has no alignment records", name)
	}
	m, err := w.Close()
	if err != nil {
		return nil, n, err
	}
	return m, n, nil
}

// readLine appends the next input line (terminator trimmed) to buf, reusing
// its backing array. At end of input it returns the final (possibly empty)
// line together with io.EOF.
func readLine(r *bufio.Reader, buf []byte) ([]byte, error) {
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == bufio.ErrBufferFull {
			continue
		}
		for len(buf) > 0 && (buf[len(buf)-1] == '\n' || buf[len(buf)-1] == '\r') {
			buf = buf[:len(buf)-1]
		}
		return buf, err
	}
}

// splitTabs appends line's tab-separated fields to dst (aliasing line).
func splitTabs(dst [][]byte, line []byte) [][]byte {
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == '\t' {
			dst = append(dst, line[start:i])
			start = i + 1
		}
	}
	return append(dst, line[start:])
}

func isStar(f []byte) bool { return len(f) == 1 && f[0] == '*' }

// parseUintField parses an unsigned decimal field of at most bits bits.
func parseUintField(b []byte, bits int, lineNum int, what string) (uint64, error) {
	var v uint64
	if len(b) == 0 {
		return 0, fmt.Errorf("sam: line %d: empty %s", lineNum, what)
	}
	max := uint64(1)<<bits - 1
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sam: line %d: bad %s %q", lineNum, what, b)
		}
		v = v*10 + uint64(c-'0')
		if v > max {
			return 0, fmt.Errorf("sam: line %d: %s %q overflows", lineNum, what, b)
		}
	}
	return v, nil
}

// parseIntField parses a signed decimal field of at most bits bits,
// erroring (never truncating) on out-of-range values.
func parseIntField(b []byte, bits, lineNum int, what string) (int64, error) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("sam: line %d: empty %s", lineNum, what)
	}
	limit := uint64(1) << (bits - 1) // magnitude limit: 2^(bits-1) negative, 2^(bits-1)-1 positive
	if !neg {
		limit--
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sam: line %d: bad %s %q", lineNum, what, b)
		}
		// Checked before multiplying, so v*10+d cannot wrap uint64.
		d := uint64(c - '0')
		if v > (limit-d)/10 {
			return 0, fmt.Errorf("sam: line %d: %s %q overflows", lineNum, what, b)
		}
		v = v*10 + d
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// refsFromHeader extracts the reference dictionary from @SQ lines.
func refsFromHeader(header []string) ([]agd.RefSeq, error) {
	var refs []agd.RefSeq
	for _, line := range header {
		if !strings.HasPrefix(line, "@SQ") {
			continue
		}
		var ref agd.RefSeq
		for _, field := range strings.Split(line, "\t")[1:] {
			switch {
			case strings.HasPrefix(field, "SN:"):
				ref.Name = field[3:]
			case strings.HasPrefix(field, "LN:"):
				l, err := strconv.ParseInt(field[3:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sam: bad @SQ LN in %q", line)
				}
				ref.Length = l
			}
		}
		if ref.Name == "" || ref.Length == 0 {
			return nil, fmt.Errorf("sam: incomplete @SQ line %q", line)
		}
		refs = append(refs, ref)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("sam: header has no @SQ lines")
	}
	return refs, nil
}

// sortOrderFromHeader maps the @HD SO field to the manifest convention.
func sortOrderFromHeader(header []string) string {
	for _, line := range header {
		if !strings.HasPrefix(line, "@HD") {
			continue
		}
		if strings.Contains(line, "SO:coordinate") {
			return "location"
		}
		if strings.Contains(line, "SO:queryname") {
			return "metadata"
		}
	}
	return ""
}
