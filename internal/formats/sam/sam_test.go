package sam

import (
	"bytes"
	"strings"
	"testing"

	"persona/internal/agd"
)

var testRefs = []agd.RefSeq{
	{Name: "chr1", Length: 1000},
	{Name: "chr2", Length: 500},
}

func TestRefMapRoundTrip(t *testing.T) {
	m := NewRefMap(testRefs)
	for _, g := range []int64{0, 999, 1000, 1499} {
		name, pos, err := m.Locate(g)
		if err != nil {
			t.Fatalf("Locate(%d): %v", g, err)
		}
		back, err := m.Global(name, pos)
		if err != nil || back != g {
			t.Fatalf("Global(%s,%d) = %d,%v want %d", name, pos, back, err, g)
		}
	}
	if _, _, err := m.Locate(1500); err == nil {
		t.Fatal("Locate past end succeeded")
	}
	if _, _, err := m.Locate(-1); err == nil {
		t.Fatal("Locate(-1) succeeded")
	}
	if _, err := m.Global("chrX", 0); err == nil {
		t.Fatal("unknown ref accepted")
	}
}

func TestWriterScannerRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Flags: 0, Ref: "chr1", Pos: 100, MapQ: 60, Cigar: "4M", Seq: "ACGT", Qual: "IIII"},
		{Name: "r2", Flags: agd.FlagUnmapped, Ref: "*", Pos: 0, Cigar: "*", Seq: "GGGG", Qual: "!!!!"},
		{Name: "r3", Flags: agd.FlagPaired | agd.FlagReverse, Ref: "chr2", Pos: 7, MapQ: 13,
			Cigar: "2M1I1M", RNext: "=", PNext: 200, TLen: -150, Seq: "TTTT", Qual: "ABCD"},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testRefs, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(buf.String(), "@SQ\tSN:chr1\tLN:1000") {
		t.Fatal("header missing @SQ line")
	}

	sc := NewScanner(&buf)
	i := 0
	for sc.Scan() {
		got := sc.Record()
		want := recs[i]
		if want.RNext == "" {
			want.RNext = "*"
		}
		if got != want {
			t.Fatalf("record %d:\ngot  %+v\nwant %+v", i, got, want)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(recs) {
		t.Fatalf("parsed %d records, want %d", i, len(recs))
	}
	if len(sc.Header()) != 4 { // @HD, 2x@SQ, @PG
		t.Fatalf("header lines = %d, want 4", len(sc.Header()))
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"tooshort\t0",
		"r\tx\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII",   // bad flags
		"r\t0\tchr1\tx\t60\t4M\t*\t0\t0\tACGT\tIIII",   // bad pos
		"r\t0\tchr1\t1\tmapq\t4M\t*\t0\t0\tACGT\tIIII", // bad mapq
	}
	for i, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("case %d accepted: %q", i, line)
		}
	}
}

func TestFromResultToResultRoundTrip(t *testing.T) {
	refmap := NewRefMap(testRefs)
	res := agd.Result{
		Location:     1100, // chr2:100
		MateLocation: 1200,
		TemplateLen:  180,
		MapQ:         37,
		Flags:        agd.FlagPaired | agd.FlagReverse,
		Cigar:        "50M",
	}
	rec, err := FromResult("read", "ACGT", "IIII", &res, refmap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ref != "chr2" || rec.Pos != 101 {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.RNext != "=" || rec.PNext != 201 {
		t.Fatalf("mate fields: %+v", rec)
	}
	back, err := ToResult(&rec, refmap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Location != res.Location || back.MateLocation != res.MateLocation ||
		back.Flags != res.Flags || back.Cigar != res.Cigar || back.MapQ != res.MapQ {
		t.Fatalf("round trip:\ngot  %+v\nwant %+v", back, res)
	}
}

func TestFromResultUnmapped(t *testing.T) {
	refmap := NewRefMap(testRefs)
	res := agd.Result{Location: agd.UnmappedLocation, Flags: agd.FlagUnmapped}
	rec, err := FromResult("read", "ACGT", "IIII", &res, refmap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ref != "*" || rec.Pos != 0 || rec.Cigar != "*" {
		t.Fatalf("unmapped rec = %+v", rec)
	}
	back, err := ToResult(&rec, refmap)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsUnmapped() {
		t.Fatal("round trip lost unmapped state")
	}
}
