// Package sam reads and writes the Sequence Alignment/Map text format
// (§2.2 of the paper): the de facto row-oriented standard for aligned reads.
// Persona uses it for compatibility with tools that have not been ported to
// AGD (§4.4).
package sam

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"persona/internal/agd"
)

// Record is one SAM alignment line.
type Record struct {
	Name  string
	Flags uint16
	Ref   string // "*" if unmapped
	Pos   int64  // 1-based leftmost position; 0 if unmapped
	MapQ  uint8
	Cigar string // "*" if unmapped
	// RNext/PNext describe the mate; "*"/0 when absent.
	RNext string
	PNext int64
	TLen  int32
	Seq   string
	Qual  string
}

// RefMap translates between global genome coordinates and (contig,
// position) pairs using the reference info carried in an AGD manifest.
type RefMap struct {
	seqs    []agd.RefSeq
	offsets []int64
}

// NewRefMap builds a RefMap from manifest reference sequences.
func NewRefMap(seqs []agd.RefSeq) *RefMap {
	m := &RefMap{seqs: seqs, offsets: make([]int64, len(seqs)+1)}
	for i, s := range seqs {
		m.offsets[i+1] = m.offsets[i] + s.Length
	}
	return m
}

// Locate translates a global position to (contig name, 0-based offset).
// The binary search is hand-rolled: sort.Search's closure would allocate on
// every call, and Locate runs once (or twice, paired) per exported record.
func (m *RefMap) Locate(global int64) (string, int64, error) {
	if global < 0 || global >= m.offsets[len(m.offsets)-1] {
		return "", 0, fmt.Errorf("sam: global position %d out of range", global)
	}
	lo, hi := 0, len(m.seqs)-1 // first contig whose end exceeds global
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.offsets[mid+1] > global {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return m.seqs[lo].Name, global - m.offsets[lo], nil
}

// Global translates (contig name, 0-based offset) to a global position.
func (m *RefMap) Global(ref string, pos int64) (int64, error) {
	for i, s := range m.seqs {
		if s.Name == ref {
			if pos < 0 || pos >= s.Length {
				return 0, fmt.Errorf("sam: position %d out of range for %q", pos, ref)
			}
			return m.offsets[i] + pos, nil
		}
	}
	return 0, fmt.Errorf("sam: unknown reference %q", ref)
}

// GlobalBytes is Global for a byte-slice reference name (the import hot
// path; the comparison converts without allocating).
func (m *RefMap) GlobalBytes(ref []byte, pos int64) (int64, error) {
	for i, s := range m.seqs {
		if s.Name == string(ref) {
			if pos < 0 || pos >= s.Length {
				return 0, fmt.Errorf("sam: position %d out of range for %q", pos, ref)
			}
			return m.offsets[i] + pos, nil
		}
	}
	return 0, fmt.Errorf("sam: unknown reference %q", ref)
}

// Seqs returns the underlying reference sequences.
func (m *RefMap) Seqs() []agd.RefSeq { return m.seqs }

// Writer emits a SAM file: header then records. Records are rendered into a
// reused line buffer with append-based encoding, so writing is
// allocation-free in steady state.
type Writer struct {
	w    *bufio.Writer
	line []byte
}

// NewWriter writes a SAM header for the given references and returns a
// record writer. sortOrder is the @HD SO field ("unsorted", "coordinate",
// "queryname").
func NewWriter(w io.Writer, refs []agd.RefSeq, sortOrder string) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if sortOrder == "" {
		sortOrder = "unsorted"
	}
	if _, err := fmt.Fprintf(bw, "@HD\tVN:1.6\tSO:%s\n", sortOrder); err != nil {
		return nil, err
	}
	for _, r := range refs {
		if _, err := fmt.Fprintf(bw, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length); err != nil {
			return nil, err
		}
	}
	if _, err := fmt.Fprintf(bw, "@PG\tID:persona\tPN:persona\n"); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write emits one record.
func (w *Writer) Write(r *Record) error {
	ref, cigar, rnext := r.Ref, r.Cigar, r.RNext
	if ref == "" {
		ref = "*"
	}
	if cigar == "" {
		cigar = "*"
	}
	if rnext == "" {
		rnext = "*"
	}
	b := w.line[:0]
	b = append(b, r.Name...)
	b = appendFixedFields(b, r.Flags, ref, r.Pos, r.MapQ)
	b = append(b, cigar...)
	b = appendMateFields(b, rnext, r.PNext, r.TLen)
	b = append(b, r.Seq...)
	b = append(b, '\t')
	b = append(b, r.Qual...)
	b = append(b, '\n')
	return w.writeLine(b)
}

// WriteView emits one record assembled from AGD column bytes and a decoded
// result view — the zero-allocation export path. seq and qual must already
// be in SAM orientation (reverse-strand reads reverse-complemented /
// reversed by the caller).
func (w *Writer) WriteView(name, seq, qual []byte, v *agd.ResultView, refmap *RefMap) error {
	ref, pos := "*", int64(0)
	cigar := v.Cigar
	if v.IsUnmapped() {
		cigar = nil
	} else {
		r, p, err := refmap.Locate(v.Location)
		if err != nil {
			return err
		}
		ref, pos = r, p+1
	}
	rnext, pnext := "*", int64(0)
	if v.Flags&agd.FlagPaired != 0 && v.MateLocation >= 0 {
		r, p, err := refmap.Locate(v.MateLocation)
		if err != nil {
			return err
		}
		if ref != "*" && r == ref {
			rnext = "="
		} else {
			rnext = r
		}
		pnext = p + 1
	}
	b := w.line[:0]
	b = append(b, name...)
	b = appendFixedFields(b, v.Flags, ref, pos, v.MapQ)
	if len(cigar) == 0 {
		b = append(b, '*')
	} else {
		b = append(b, cigar...)
	}
	b = appendMateFields(b, rnext, pnext, v.TemplateLen)
	b = append(b, seq...)
	b = append(b, '\t')
	b = append(b, qual...)
	b = append(b, '\n')
	return w.writeLine(b)
}

// appendFixedFields renders "\t<flags>\t<ref>\t<pos>\t<mapq>\t" — the fields
// between the name and the CIGAR.
func appendFixedFields(b []byte, flags uint16, ref string, pos int64, mapq uint8) []byte {
	b = append(b, '\t')
	b = strconv.AppendUint(b, uint64(flags), 10)
	b = append(b, '\t')
	b = append(b, ref...)
	b = append(b, '\t')
	b = strconv.AppendInt(b, pos, 10)
	b = append(b, '\t')
	b = strconv.AppendUint(b, uint64(mapq), 10)
	b = append(b, '\t')
	return b
}

// appendMateFields renders "\t<rnext>\t<pnext>\t<tlen>\t" — the fields
// between the CIGAR and the sequence.
func appendMateFields(b []byte, rnext string, pnext int64, tlen int32) []byte {
	b = append(b, '\t')
	b = append(b, rnext...)
	b = append(b, '\t')
	b = strconv.AppendInt(b, pnext, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(tlen), 10)
	b = append(b, '\t')
	return b
}

func (w *Writer) writeLine(b []byte) error {
	w.line = b
	_, err := w.w.Write(b)
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Scanner parses SAM files, skipping the header (which it retains).
type Scanner struct {
	r      *bufio.Reader
	header []string
	rec    Record
	err    error
	line   int
}

// NewScanner returns a scanner over r, consuming the header immediately.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReaderSize(r, 1<<16)}
}

// Header returns the header lines seen so far (fully populated after the
// first Scan).
func (s *Scanner) Header() []string { return s.header }

// Scan advances to the next alignment record.
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		line, err := s.r.ReadString('\n')
		if len(line) == 0 && err != nil {
			return false
		}
		s.line++
		line = strings.TrimRight(line, "\r\n")
		if len(line) == 0 {
			continue
		}
		if line[0] == '@' {
			s.header = append(s.header, line)
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			s.err = fmt.Errorf("sam: line %d: %w", s.line, err)
			return false
		}
		s.rec = rec
		return true
	}
}

// Record returns the current record.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first parse error (nil at clean EOF).
func (s *Scanner) Err() error { return s.err }

// ParseRecord parses one SAM alignment line.
func ParseRecord(line string) (Record, error) {
	var r Record
	fields := strings.Split(line, "\t")
	if len(fields) < 11 {
		return r, fmt.Errorf("only %d fields", len(fields))
	}
	r.Name = fields[0]
	flags, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return r, fmt.Errorf("flags: %v", err)
	}
	r.Flags = uint16(flags)
	r.Ref = fields[2]
	pos, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return r, fmt.Errorf("pos: %v", err)
	}
	r.Pos = pos
	mapq, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return r, fmt.Errorf("mapq: %v", err)
	}
	r.MapQ = uint8(mapq)
	r.Cigar = fields[5]
	r.RNext = fields[6]
	pnext, err := strconv.ParseInt(fields[7], 10, 64)
	if err != nil {
		return r, fmt.Errorf("pnext: %v", err)
	}
	r.PNext = pnext
	tlen, err := strconv.ParseInt(fields[8], 10, 32)
	if err != nil {
		return r, fmt.Errorf("tlen: %v", err)
	}
	r.TLen = int32(tlen)
	r.Seq = fields[9]
	r.Qual = fields[10]
	return r, nil
}
