package sam_test

import (
	"context"
	"bytes"
	"strings"
	"testing"

	"persona/internal/agd"
	"persona/internal/formats/sam"
	"persona/internal/testutil"
)

// TestSAMRoundTripGolden pins the exact SAM text of a small handcrafted
// dataset through SAM → AGD → SAM: the zero-allocation import/export
// rewrite must be byte-identical to the record-at-a-time one it replaced.
// The input covers the interesting shapes: forward, reverse-strand
// (SEQ/QUAL transformed both ways), unmapped, soft clips, and a proper pair
// with same-contig ("=") and cross-contig mates.
func TestSAMRoundTripGolden(t *testing.T) {
	const golden = "@HD\tVN:1.6\tSO:coordinate\n" +
		"@SQ\tSN:chr1\tLN:1000\n" +
		"@SQ\tSN:chr2\tLN:500\n" +
		"@PG\tID:persona\tPN:persona\n" +
		"fwd\t0\tchr1\t101\t60\t4M\t*\t0\t0\tACGT\tIIII\n" +
		"rev\t16\tchr1\t151\t37\t2S6M\t*\t0\t0\tGGTTACAA\tHGFEDCBA\n" +
		"un\t4\t*\t0\t0\t*\t*\t0\t0\tNNNN\t!!!!\n" +
		"p1\t99\tchr1\t201\t55\t4M\t=\t301\t104\tAAAA\tJJJJ\n" +
		"p2\t147\tchr1\t301\t55\t4M\t=\t201\t-104\tCCCC\tKKKK\n" +
		"x1\t65\tchr1\t401\t50\t4M\tchr2\t51\t0\tGGGG\tLLLL\n"

	store := agd.NewMemStore()
	_, n, err := sam.Import(context.Background(), store, "ds", strings.NewReader(golden), sam.ImportOptions{ChunkSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("imported %d records", n)
	}
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := sam.Export(context.Background(), ds, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != golden {
		t.Fatalf("round trip is not byte-identical:\n--- want ---\n%s--- got ---\n%s", golden, out.String())
	}
}

// TestSAMRoundTripFixture round-trips a realistic aligned dataset (SNAP
// alignments over a synthetic genome): export → import → export must be
// byte-identical, so the AGD encoding loses nothing SAM carries.
func TestSAMRoundTripFixture(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 120_000, NumReads: 400, ReadLen: 80, ChunkSize: 64, Seed: 77,
	})
	var first bytes.Buffer
	if _, err := sam.Export(context.Background(), f.Dataset, &first); err != nil {
		t.Fatal(err)
	}
	store2 := agd.NewMemStore()
	if _, _, err := sam.Import(context.Background(), store2, "ds2", bytes.NewReader(first.Bytes()), sam.ImportOptions{ChunkSize: 64}); err != nil {
		t.Fatal(err)
	}
	ds2, err := agd.Open(store2, "ds2")
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if _, err := sam.Export(context.Background(), ds2, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("SAM → AGD → SAM round trip is not byte-identical")
	}
}
