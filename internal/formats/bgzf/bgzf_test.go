package bgzf

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripSmall(t *testing.T) {
	payload := []byte("hello bgzf world")
	if got := roundTrip(t, payload); !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
}

func TestRoundTripMultiBlock(t *testing.T) {
	// > MaxBlockSize forces multiple blocks.
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 3*MaxBlockSize+12345)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	if got := roundTrip(t, payload); !bytes.Equal(got, payload) {
		t.Fatal("multi-block payload corrupted")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	if got := roundTrip(t, nil); len(got) != 0 {
		t.Fatalf("empty payload round-tripped to %d bytes", len(got))
	}
}

func TestEOFMarkerPresent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write([]byte("data"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), eofMarker) {
		t.Fatal("output does not end with the BGZF EOF marker")
	}
}

func TestBlocksCarryBSIZE(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(bytes.Repeat([]byte("x"), 100))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// First block: gzip magic, FLG has FEXTRA, subfield BC.
	if b[0] != 0x1f || b[1] != 0x8b {
		t.Fatal("not gzip")
	}
	if b[3]&0x04 == 0 {
		t.Fatal("FEXTRA not set")
	}
	if b[12] != 'B' || b[13] != 'C' {
		t.Fatalf("extra subfield = %c%c, want BC", b[12], b[13])
	}
	bsize := int(b[16]) | int(b[17])<<8
	// BSIZE+1 is the full block length; the next block (EOF marker) starts
	// there.
	if bsize+1 <= 0 || bsize+1 >= len(b) {
		t.Fatalf("BSIZE = %d, blob = %d bytes", bsize, len(b))
	}
	if !bytes.Equal(b[bsize+1:], eofMarker) {
		t.Fatal("BSIZE does not point at the EOF marker")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if _, err := w.Write(payload); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := io.ReadAll(NewReader(&buf))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
