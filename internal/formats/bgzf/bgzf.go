// Package bgzf implements the Blocked GZIP Format used by BAM: a series of
// independently decompressible gzip members, each carrying its compressed
// size in a "BC" extra subfield, terminated by a fixed empty EOF block.
// Block independence is what makes BAM seekable; Persona's row-oriented
// baselines use it the way samtools does.
package bgzf

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// MaxBlockSize is the maximum uncompressed payload per BGZF block, chosen so
// the compressed block size always fits the 16-bit BSIZE field.
const MaxBlockSize = 0xff00

// eofMarker is the specification's 28-byte empty terminal block.
var eofMarker = []byte{
	0x1f, 0x8b, 0x08, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff,
	0x06, 0x00, 0x42, 0x43, 0x02, 0x00, 0x1b, 0x00, 0x03, 0x00,
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
}

// Writer compresses a stream into BGZF blocks.
type Writer struct {
	w     io.Writer
	buf   []byte
	level int
	err   error
}

// NewWriter returns a BGZF writer over w compressing at gzip.BestSpeed.
func NewWriter(w io.Writer) *Writer {
	return NewWriterLevel(w, gzip.BestSpeed)
}

// NewWriterLevel returns a BGZF writer compressing at the given gzip level
// (tools differ here: htslib-era tools favour speed, Picard-era defaults
// favour ratio, and the difference is visible in Table 2).
func NewWriterLevel(w io.Writer, level int) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, MaxBlockSize), level: level}
}

// Write buffers p, flushing full blocks as they fill.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		room := MaxBlockSize - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if len(w.buf) == MaxBlockSize {
			if w.err = w.flushBlock(); w.err != nil {
				return total - len(p), w.err
			}
		}
	}
	return total, nil
}

// flushBlock emits the buffered payload as one BGZF block. BSIZE (total
// block size - 1) lives in the extra subfield at offset 16 of the block
// (10 fixed header bytes + 2 XLEN + 4 subfield header); compressBlock
// patches it after compression.
func (w *Writer) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	block, err := compressBlockLevel(w.buf, w.level)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(block); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the final partial block and writes the EOF marker. It does
// not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushBlock(); err != nil {
		w.err = err
		return err
	}
	_, err := w.w.Write(eofMarker)
	w.err = errors.New("bgzf: writer closed")
	return err
}

// Reader decompresses a BGZF stream block by block.
type Reader struct {
	br   *bufio.Reader
	zr   *gzip.Reader
	open bool
}

// NewReader returns a BGZF reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read implements io.Reader across block boundaries.
func (r *Reader) Read(p []byte) (int, error) {
	for {
		if !r.open {
			if err := r.nextBlock(); err != nil {
				return 0, err
			}
		}
		n, err := r.zr.Read(p)
		if n > 0 {
			return n, nil
		}
		if err == io.EOF {
			r.open = false
			continue
		}
		if err != nil {
			return 0, err
		}
	}
}

// nextBlock positions the gzip reader at the next member.
func (r *Reader) nextBlock() error {
	// Peek for EOF.
	if _, err := r.br.Peek(1); err != nil {
		return io.EOF
	}
	if r.zr == nil {
		zr, err := gzip.NewReader(r.br)
		if err != nil {
			return fmt.Errorf("bgzf: %w", err)
		}
		zr.Multistream(false)
		r.zr = zr
	} else {
		if err := r.zr.Reset(r.br); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("bgzf: %w", err)
		}
		r.zr.Multistream(false)
	}
	r.open = true
	return nil
}
