package bgzf

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ParallelWriter compresses BGZF blocks on multiple workers while an
// ordering stage writes them out in sequence — the same trick samtools'
// --threads option uses; block independence is exactly what BGZF buys.
type ParallelWriter struct {
	buf     []byte
	pending chan chan compressed
	jobs    chan job
	done    chan struct{}
	wg      sync.WaitGroup
	writeWG sync.WaitGroup

	mu  sync.Mutex
	err error
}

type job struct {
	payload []byte
	out     chan compressed
}

type compressed struct {
	block []byte
	err   error
}

// NewParallelWriter returns a BGZF writer compressing on workers goroutines.
func NewParallelWriter(w io.Writer, workers int) *ParallelWriter {
	if workers < 1 {
		workers = 1
	}
	p := &ParallelWriter{
		buf:     make([]byte, 0, MaxBlockSize),
		pending: make(chan chan compressed, workers*2),
		jobs:    make(chan job, workers*2),
		done:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				block, err := compressBlock(j.payload)
				j.out <- compressed{block: block, err: err}
			}
		}()
	}
	p.writeWG.Add(1)
	go func() {
		defer p.writeWG.Done()
		for ch := range p.pending {
			c := <-ch
			if c.err != nil {
				p.setErr(c.err)
				continue
			}
			if p.getErr() != nil {
				continue
			}
			if _, err := w.Write(c.block); err != nil {
				p.setErr(err)
			}
		}
		if p.getErr() == nil {
			if _, err := w.Write(eofMarker); err != nil {
				p.setErr(err)
			}
		}
	}()
	return p
}

func (p *ParallelWriter) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *ParallelWriter) getErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Write buffers p, dispatching full blocks to the compression workers.
func (p *ParallelWriter) Write(data []byte) (int, error) {
	if err := p.getErr(); err != nil {
		return 0, err
	}
	total := len(data)
	for len(data) > 0 {
		room := MaxBlockSize - len(p.buf)
		n := len(data)
		if n > room {
			n = room
		}
		p.buf = append(p.buf, data[:n]...)
		data = data[n:]
		if len(p.buf) == MaxBlockSize {
			p.dispatch()
		}
	}
	return total, nil
}

// dispatch hands the buffered payload to a worker, preserving output order
// through the pending queue.
func (p *ParallelWriter) dispatch() {
	payload := make([]byte, len(p.buf))
	copy(payload, p.buf)
	p.buf = p.buf[:0]
	out := make(chan compressed, 1)
	p.pending <- out
	p.jobs <- job{payload: payload, out: out}
}

// Close flushes the final block, waits for all compression and writing to
// finish, writes the EOF marker, and reports any deferred error.
func (p *ParallelWriter) Close() error {
	if len(p.buf) > 0 {
		p.dispatch()
	}
	close(p.jobs)
	p.wg.Wait()
	close(p.pending)
	p.writeWG.Wait()
	if err := p.getErr(); err != nil {
		return err
	}
	p.setErr(errors.New("bgzf: writer closed"))
	return nil
}

// gzPool recycles gzip writers: their deflate state is megabyte-scale and
// BGZF creates one stream per 64 KB block.
var gzPool = sync.Pool{
	New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	},
}

// compressBlock gzips one payload into a BGZF block at BestSpeed; shared by
// Writer and ParallelWriter.
func compressBlock(payload []byte) ([]byte, error) {
	var zbuf bytes.Buffer
	zw := gzPool.Get().(*gzip.Writer)
	defer gzPool.Put(zw)
	zw.Reset(&zbuf)
	zw.Extra = []byte{'B', 'C', 2, 0, 0, 0}
	if _, err := zw.Write(payload); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	block := zbuf.Bytes()
	if len(block) > 0xffff {
		return nil, fmt.Errorf("bgzf: compressed block too large (%d bytes)", len(block))
	}
	binary.LittleEndian.PutUint16(block[16:18], uint16(len(block)-1))
	return block, nil
}

// compressBlockLevel is compressBlock at an arbitrary gzip level. Levels
// other than BestSpeed allocate a fresh deflater per block, which is
// faithful to the per-record churn of the JVM tools that use them.
func compressBlockLevel(payload []byte, level int) ([]byte, error) {
	if level == gzip.BestSpeed || level == 0 {
		return compressBlock(payload)
	}
	var zbuf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&zbuf, level)
	if err != nil {
		return nil, err
	}
	zw.Extra = []byte{'B', 'C', 2, 0, 0, 0}
	if _, err := zw.Write(payload); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	block := zbuf.Bytes()
	if len(block) > 0xffff {
		return nil, fmt.Errorf("bgzf: compressed block too large (%d bytes)", len(block))
	}
	binary.LittleEndian.PutUint16(block[16:18], uint16(len(block)-1))
	return block, nil
}
