package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"persona/internal/genome"
)

// semiGlobal computes min edit distance of query against any prefix of ref
// by full DP: the reference semantics for LandauVishkin and BoundedAlign.
func semiGlobal(query, ref []byte) int {
	m, n := len(query), len(ref)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	// prev[j] = distance aligning empty query to ref[:j]; leading ref bases
	// must be consumed as deletions because alignment starts at ref[0].
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if query[i-1] == ref[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	best := prev[0]
	for j := 1; j <= n; j++ {
		if prev[j] < best {
			best = prev[j]
		}
	}
	return best
}

func TestEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "A", 1},
		{"ACGT", "ACGT", 0},
		{"ACGT", "ACCT", 1},
		{"ACGT", "AGT", 1},
		{"ACGT", "TGCA", 4},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := EditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLandauVishkinBasics(t *testing.T) {
	// query aligned against ref prefix; trailing ref free.
	cases := []struct {
		q, r string
		k    int
		want int
	}{
		{"ACGT", "ACGTTTTT", 3, 0},
		{"ACGT", "ACCTTTTT", 3, 1},
		{"ACGT", "AACGTTTT", 3, 1},  // one leading deletion
		{"AACGT", "ACGTTTTT", 3, 1}, // one leading insertion
		{"ACGT", "TTTTTTTT", 3, 3},  // three substitutions, T matches
		{"ACGT", "TTTTTTTT", 2, -1}, // ...but not within k=2
		{"", "ACGT", 2, 0},
	}
	for _, c := range cases {
		if got := LandauVishkin([]byte(c.q), []byte(c.r), c.k); got != c.want {
			t.Errorf("LandauVishkin(%q, %q, %d) = %d, want %d", c.q, c.r, c.k, got, c.want)
		}
	}
}

func TestBoundedAlignBasics(t *testing.T) {
	d, cig, refUsed := BoundedAlign([]byte("ACGT"), []byte("ACGTTTT"), 3)
	if d != 0 || cig.String() != "4M" || refUsed != 4 {
		t.Fatalf("exact: d=%d cigar=%s refUsed=%d", d, cig, refUsed)
	}
	d, cig, _ = BoundedAlign([]byte("ACGT"), []byte("AGGTTTT"), 3)
	if d != 1 || cig.String() != "4M" {
		t.Fatalf("mismatch: d=%d cigar=%s", d, cig)
	}
	d, cig, refUsed = BoundedAlign([]byte("ACGT"), []byte("ACGGTTT"), 3)
	if d != 1 {
		t.Fatalf("indel: d=%d cigar=%s refUsed=%d", d, cig, refUsed)
	}
	d, _, _ = BoundedAlign([]byte("AAAA"), []byte("TTTTTTT"), 2)
	if d != -1 {
		t.Fatalf("hopeless: d=%d, want -1", d)
	}
}

func TestBoundedAlignCigarConsistency(t *testing.T) {
	// The CIGAR must consume exactly the query and refUsed bases, and its
	// edit count must equal the reported distance.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		q := randSeq(rng, 30+rng.Intn(40))
		ref := mutateSeq(rng, q, 4)
		ref = append(ref, randSeq(rng, 8)...)
		d, cig, refUsed := BoundedAlign(q, ref, 8)
		if d < 0 {
			continue
		}
		if cig.ReadLen() != len(q) {
			t.Fatalf("cigar %s consumes %d query bases, want %d", cig, cig.ReadLen(), len(q))
		}
		if cig.RefLen() != refUsed {
			t.Fatalf("cigar %s consumes %d ref bases, refUsed=%d", cig, cig.RefLen(), refUsed)
		}
		// Count edits by replaying the cigar.
		edits, qi, ri := 0, 0, 0
		for _, e := range cig {
			switch e.Op {
			case CigarMatch:
				for x := 0; x < e.Len; x++ {
					if q[qi] != ref[ri] {
						edits++
					}
					qi++
					ri++
				}
			case CigarIns:
				edits += e.Len
				qi += e.Len
			case CigarDel:
				edits += e.Len
				ri += e.Len
			}
		}
		if edits != d {
			t.Fatalf("cigar %s implies %d edits, distance is %d", cig, edits, d)
		}
	}
}

func TestLVAgreesWithBoundedAlignAndDP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		q := randSeq(rng, 10+rng.Intn(60))
		var ref []byte
		if rng.Intn(4) == 0 {
			ref = randSeq(rng, len(q)+10) // unrelated
		} else {
			ref = mutateSeq(rng, q, rng.Intn(6))
			ref = append(ref, randSeq(rng, 10)...)
		}
		k := rng.Intn(9)
		want := semiGlobal(q, ref)
		if want > k {
			want = -1
		}
		if got := LandauVishkin(q, ref, k); got != want {
			t.Fatalf("LV(%q, %q, %d) = %d, want %d", q, ref, k, got, want)
		}
		gotBA, _, _ := BoundedAlign(q, ref, k)
		if gotBA != want {
			t.Fatalf("BoundedAlign(%q, %q, %d) = %d, want %d", q, ref, k, gotBA, want)
		}
	}
}

func TestLandauVishkinPropertyExactMatchWindows(t *testing.T) {
	// Any substring of a genome aligns with distance 0 against its own
	// window, and mutating b bases gives distance <= b.
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(20_000, 13))
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawPos uint32, rawMut uint8) bool {
		readLen := 60
		pos := int64(rawPos) % (g.Len() - int64(readLen) - 8)
		window, err := g.Slice(pos, readLen+8)
		if err != nil {
			return false
		}
		q := append([]byte{}, window[:readLen]...)
		if LandauVishkin(q, window, 8) != 0 {
			return false
		}
		// Mutate up to 4 distinct positions.
		muts := int(rawMut % 5)
		rng := rand.New(rand.NewSource(int64(rawPos)))
		for i := 0; i < muts; i++ {
			p := rng.Intn(len(q))
			q[p] = "ACGT"[rng.Intn(4)]
		}
		d := LandauVishkin(q, window, 8)
		return d >= 0 && d <= muts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

// mutateSeq applies up to edits random substitutions/insertions/deletions.
func mutateSeq(rng *rand.Rand, s []byte, edits int) []byte {
	out := append([]byte{}, s...)
	for i := 0; i < edits && len(out) > 1; i++ {
		p := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0:
			out[p] = "ACGT"[rng.Intn(4)]
		case 1:
			out = append(out[:p], out[p+1:]...)
		case 2:
			out = append(out[:p], append([]byte{"ACGT"[rng.Intn(4)]}, out[p:]...)...)
		}
	}
	return out
}
