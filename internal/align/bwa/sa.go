// Package bwa implements a BWA-MEM-style read aligner [Li & Durbin 2009; Li
// 2013]: an FM-index over the Burrows-Wheeler transform of the reference,
// maximal-exact-match seeding via backward search, diagonal chaining, and
// banded Smith-Waterman extension, with the batch paired-end insert-size
// inference step the paper discusses in §4.3 ("a single-threaded step over
// sets of reads to infer information about the data").
package bwa

// BuildSuffixArray computes the suffix array of text by prefix doubling with
// radix (counting) sorts — O(n log n) time, O(n) extra space. Suffixes that
// are proper prefixes of others sort first, matching the convention of an
// implicit smallest terminator.
func BuildSuffixArray(text []byte) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int32, n)
	newRank := make([]int32, n)
	order := make([]int32, n)
	cntSize := n + 1
	if cntSize < 256 {
		cntSize = 256
	}
	cnt := make([]int32, cntSize)

	// Initial counting sort by first byte.
	for i := 0; i < n; i++ {
		cnt[text[i]]++
	}
	for i := 1; i < 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := n - 1; i >= 0; i-- {
		cnt[text[i]]--
		sa[cnt[text[i]]] = int32(i)
	}
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		rank[sa[i]] = rank[sa[i-1]]
		if text[sa[i]] != text[sa[i-1]] {
			rank[sa[i]]++
		}
	}

	for k := 1; k < n; k <<= 1 {
		classes := int(rank[sa[n-1]]) + 1
		if classes == n {
			break
		}
		// Order by second key (rank at offset k): suffixes with no second
		// key (i >= n-k) are smallest and go first; the rest follow in the
		// current sa order shifted back by k (a stable bucket trick).
		p := 0
		for i := n - k; i < n; i++ {
			order[p] = int32(i)
			p++
		}
		for i := 0; i < n; i++ {
			if int(sa[i]) >= k {
				order[p] = sa[i] - int32(k)
				p++
			}
		}
		// Stable counting sort of order by first key.
		for i := 0; i < classes; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[order[i]]]++
		}
		for i := 1; i < classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			c := rank[order[i]]
			cnt[c]--
			sa[cnt[c]] = order[i]
		}
		// Recompute ranks over the refined order.
		newRank[sa[0]] = 0
		for i := 1; i < n; i++ {
			cur, prev := int(sa[i]), int(sa[i-1])
			newRank[sa[i]] = newRank[sa[i-1]]
			curSecond, prevSecond := int32(-1), int32(-1)
			if cur+k < n {
				curSecond = rank[cur+k]
			}
			if prev+k < n {
				prevSecond = rank[prev+k]
			}
			if rank[cur] != rank[prev] || curSecond != prevSecond {
				newRank[sa[i]]++
			}
		}
		rank, newRank = newRank, rank
	}
	return sa
}
