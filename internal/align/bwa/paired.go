package bwa

import (
	"math"
	"sort"

	"persona/internal/agd"
	"persona/internal/align"
)

// InsertStats describes the inferred insert-size distribution.
type InsertStats struct {
	Mean, Std float64
	// N is the number of high-confidence pairs the estimate is based on.
	N int
}

// Bounds returns the accepted insert range (mean ± 4σ, floored at read
// scale).
func (s InsertStats) Bounds() (int64, int64) {
	lo := int64(s.Mean - 4*s.Std)
	hi := int64(s.Mean + 4*s.Std)
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// inferInsertStats is the single-threaded per-batch step the paper calls out
// (§4.3): it scans the batch's unambiguous, opposite-strand candidate pairs
// and estimates the insert-size distribution that pair selection then uses.
func inferInsertStats(ext1, ext2 [][]extension, readLen int) InsertStats {
	var inserts []float64
	for i := range ext1 {
		if len(ext1[i]) == 0 || len(ext2[i]) == 0 {
			continue
		}
		e1, e2 := ext1[i][0], ext2[i][0]
		// Only clearly-unique pairs participate.
		if len(ext1[i]) > 1 && ext1[i][1].score == e1.score {
			continue
		}
		if len(ext2[i]) > 1 && ext2[i][1].score == e2.score {
			continue
		}
		if e1.rc == e2.rc {
			continue
		}
		left, right := e1, e2
		if e1.rc {
			left, right = e2, e1
		}
		insert := right.pos + int64(readLen) - left.pos
		if insert <= 0 || insert > 100_000 {
			continue
		}
		inserts = append(inserts, float64(insert))
	}
	if len(inserts) < 8 {
		return InsertStats{}
	}
	// Robust estimate: interquartile trim then moments.
	sort.Float64s(inserts)
	q := len(inserts) / 4
	trimmed := inserts[q : len(inserts)-q]
	if len(trimmed) == 0 {
		trimmed = inserts
	}
	var sum float64
	for _, v := range trimmed {
		sum += v
	}
	mean := sum / float64(len(trimmed))
	var ss float64
	for _, v := range trimmed {
		ss += (v - mean) * (v - mean)
	}
	std := math.Sqrt(ss / float64(len(trimmed)))
	if std < 10 {
		std = 10
	}
	return InsertStats{Mean: mean, Std: std, N: len(trimmed)}
}

// AlignPairBatch aligns a batch of read pairs. Candidate generation runs
// per-pair (parallelizable by the caller across batches); the insert-size
// inference in the middle is inherently single-threaded per batch, which is
// why Persona's executor splits threads between these stages for BWA (§4.3).
// It returns one result per read: 2*len(pairs1) results, interleaved
// (pair 0 read 1, pair 0 read 2, pair 1 read 1, ...).
func (a *Aligner) AlignPairBatch(pairs1, pairs2 [][]byte) ([]agd.Result, InsertStats) {
	n := len(pairs1)
	ext1 := make([][]extension, n)
	ext2 := make([][]extension, n)
	for i := 0; i < n; i++ {
		a.counts.Reads += 2
		ext1[i] = a.bestExtensions(pairs1[i])
		ext2[i] = a.bestExtensions(pairs2[i])
	}

	readLen := 0
	if n > 0 {
		readLen = len(pairs2[0])
	}
	stats := inferInsertStats(ext1, ext2, readLen)
	loIns, hiIns := int64(a.cfg.MinInsert), int64(a.cfg.MaxInsert)
	if stats.N > 0 {
		loIns, hiIns = stats.Bounds()
	}

	out := make([]agd.Result, 0, 2*n)
	for i := 0; i < n; i++ {
		r1, r2 := a.selectPair(pairs1[i], pairs2[i], ext1[i], ext2[i], loIns, hiIns)
		out = append(out, r1, r2)
	}
	return out, stats
}

// pairBonus is the score bonus a properly-oriented in-range pair receives
// during selection.
const pairBonus = 15

// selectPair picks the best combination of candidate extensions for a pair.
func (a *Aligner) selectPair(b1, b2 []byte, e1s, e2s []extension, loIns, hiIns int64) (agd.Result, agd.Result) {
	bestScore := int32(-1 << 30)
	secondScore := int32(-1 << 30)
	var best1, best2 *extension
	for i := range e1s {
		for j := range e2s {
			e1, e2 := &e1s[i], &e2s[j]
			combined := e1.score + e2.score
			if e1.rc != e2.rc {
				left, right := e1, e2
				rlen := len(b2)
				if e1.rc {
					left, right = e2, e1
					rlen = len(b1)
				}
				insert := right.pos + int64(rlen) - left.pos
				if left.pos <= right.pos && insert >= loIns && insert <= hiIns {
					combined += pairBonus
				}
			}
			if combined > bestScore {
				secondScore = bestScore
				bestScore = combined
				best1, best2 = e1, e2
			} else if combined > secondScore {
				secondScore = combined
			}
		}
	}

	if best1 == nil || best2 == nil {
		// At least one end had no candidates: fall back to singles.
		r1 := a.resultFromExts(b1, e1s)
		r2 := a.resultFromExts(b2, e2s)
		finalizePairFlags(&r1, &r2)
		return r1, r2
	}

	a.counts.Aligned += 2
	mapq := align.MapQFromScores(bestScore, secondScore, 1, a.cfg.Scoring.Match)
	r1 := extToResult(best1, mapq)
	r2 := extToResult(best2, mapq)

	// Proper-pair determination mirrors the bonus test.
	if best1.rc != best2.rc {
		left, right := best1, best2
		rlen := len(b2)
		if best1.rc {
			left, right = best2, best1
			rlen = len(b1)
		}
		insert := right.pos + int64(rlen) - left.pos
		if left.pos <= right.pos && insert >= loIns && insert <= hiIns {
			r1.Flags |= agd.FlagProperPair
			r2.Flags |= agd.FlagProperPair
			tlen := int32(insert)
			if best1.pos <= best2.pos {
				r1.TemplateLen, r2.TemplateLen = tlen, -tlen
			} else {
				r1.TemplateLen, r2.TemplateLen = -tlen, tlen
			}
		}
	}
	r1.MateLocation, r2.MateLocation = r2.Location, r1.Location
	finalizePairFlags(&r1, &r2)
	return r1, r2
}

// resultFromExts builds a single-end result from an extension list.
func (a *Aligner) resultFromExts(bases []byte, exts []extension) agd.Result {
	if len(exts) == 0 {
		return agd.Result{Location: agd.UnmappedLocation, MateLocation: agd.UnmappedLocation, Flags: agd.FlagUnmapped}
	}
	best := exts[0]
	second := int32(-1 << 30)
	bestCount := 1
	for _, e := range exts[1:] {
		if e.score == best.score {
			bestCount++
			second = e.score
		} else if e.score > second {
			second = e.score
		}
	}
	return extToResult(&best, align.MapQFromScores(best.score, second, bestCount, a.cfg.Scoring.Match))
}

func extToResult(e *extension, mapq uint8) agd.Result {
	var flags uint16
	if e.rc {
		flags |= agd.FlagReverse
	}
	return agd.Result{
		Location:     e.pos,
		MateLocation: agd.UnmappedLocation,
		Score:        e.score,
		MapQ:         mapq,
		Flags:        flags,
		Cigar:        e.cigar.String(),
	}
}

// finalizePairFlags stamps the shared pair bookkeeping on both results.
func finalizePairFlags(r1, r2 *agd.Result) {
	r1.Flags |= agd.FlagPaired | agd.FlagFirstInPair
	r2.Flags |= agd.FlagPaired | agd.FlagSecondInPair
	if r2.IsUnmapped() {
		r1.Flags |= agd.FlagMateUnmapped
	} else if r2.IsReverse() {
		r1.Flags |= agd.FlagMateReverse
	}
	if r1.IsUnmapped() {
		r2.Flags |= agd.FlagMateUnmapped
	} else if r1.IsReverse() {
		r2.Flags |= agd.FlagMateReverse
	}
	if !r1.IsUnmapped() && !r2.IsUnmapped() {
		r1.MateLocation = r2.Location
		r2.MateLocation = r1.Location
	}
}
