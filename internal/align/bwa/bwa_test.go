package bwa

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/genome"
	"persona/internal/reads"
)

func TestSuffixArraySortedProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		// Map into a small alphabet to generate repeats.
		text := make([]byte, len(raw))
		for i, b := range raw {
			text[i] = 'a' + b%4
		}
		sa := BuildSuffixArray(text)
		if len(sa) != len(text) {
			return false
		}
		seen := make([]bool, len(text))
		for _, p := range sa {
			if p < 0 || int(p) >= len(text) || seen[p] {
				return false
			}
			seen[p] = true
		}
		for i := 1; i < len(sa); i++ {
			if bytes.Compare(text[sa[i-1]:], text[sa[i]:]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSuffixArrayMatchesNaive(t *testing.T) {
	texts := []string{"banana", "mississippi", "aaaaaa", "abcabcabc", "x"}
	for _, s := range texts {
		sa := BuildSuffixArray([]byte(s))
		naive := make([]int, len(s))
		for i := range naive {
			naive[i] = i
		}
		sort.Slice(naive, func(a, b int) bool { return s[naive[a]:] < s[naive[b]:] })
		for i := range naive {
			if int(sa[i]) != naive[i] {
				t.Fatalf("%q: sa = %v, naive = %v", s, sa, naive)
			}
		}
	}
}

func testGenome(t testing.TB, size int, seed int64) *genome.Genome {
	t.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(size, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFMIndexCountMatchesNaive(t *testing.T) {
	g := testGenome(t, 30_000, 31)
	idx, err := NewFMIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	seq := g.Seq()
	// The encoded text replaces N, so count against the encoded text.
	enc := encodeRef(g)
	enc = enc[:len(enc)-1] // drop sentinel
	for _, plen := range []int{1, 3, 8, 15} {
		for trial := 0; trial < 30; trial++ {
			start := (trial * 997) % (len(seq) - plen)
			pattern := enc[start : start+plen]
			naive := 0
			for i := 0; i+plen <= len(enc); i++ {
				if bytes.Equal(enc[i:i+plen], pattern) {
					naive++
				}
			}
			if got := int(idx.Count(pattern)); got != naive {
				t.Fatalf("Count(len %d @%d) = %d, naive = %d", plen, start, got, naive)
			}
		}
	}
}

func TestFMIndexLocateFindsAllOccurrences(t *testing.T) {
	g := testGenome(t, 20_000, 32)
	idx, err := NewFMIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeRef(g)
	enc = enc[:len(enc)-1]
	pattern := enc[500:516]
	lo, hi := idx.Search(pattern)
	if lo >= hi {
		t.Fatal("pattern from the genome not found")
	}
	locs := idx.Locate(lo, hi, 1<<30)
	found := false
	for _, p := range locs {
		if !bytes.Equal(enc[p:int(p)+16], pattern) {
			t.Fatalf("located %d does not match pattern", p)
		}
		if p == 500 {
			found = true
		}
	}
	if !found {
		t.Fatal("origin position not located")
	}
}

func TestFMIndexSearchAbsent(t *testing.T) {
	g := testGenome(t, 10_000, 33)
	idx, err := NewFMIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	// A pattern with an unsearchable symbol.
	lo, hi := idx.Search([]byte{1, 2, 0, 3})
	if lo != hi {
		t.Fatal("pattern with sentinel symbol matched")
	}
}

func buildAligner(t testing.TB, size int, seed int64) (*Aligner, *genome.Genome) {
	t.Helper()
	g := testGenome(t, size, seed)
	idx, err := NewFMIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	return NewAligner(idx, g, Config{}), g
}

func TestAlignExactReads(t *testing.T) {
	a, g := buildAligner(t, 120_000, 34)
	for pos := int64(200); pos < g.Len()-200; pos += 9973 {
		ref, err := g.Slice(pos, 100)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.ContainsRune(ref, 'N') {
			continue
		}
		res := a.AlignRead(ref)
		if res.IsUnmapped() {
			t.Fatalf("exact read at %d unmapped", pos)
		}
		if res.Location != pos {
			// Accept exact repeat copies.
			got, err := g.Slice(res.Location, 100)
			if err != nil || !bytes.Equal(got, ref) {
				t.Fatalf("read from %d mapped to %d (not an exact copy)", pos, res.Location)
			}
		}
		if res.Score != 100 {
			t.Fatalf("exact read score = %d, want 100", res.Score)
		}
	}
}

func TestAlignSimulatedAccuracy(t *testing.T) {
	a, g := buildAligner(t, 300_000, 35)
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 9, N: 800, ReadLen: 101, ErrorRate: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	mapped, correct := 0, 0
	for i := range rs {
		res := a.AlignRead(rs[i].Bases)
		if res.IsUnmapped() {
			continue
		}
		mapped++
		diff := res.Location - origins[i].Pos
		if diff < 0 {
			diff = -diff
		}
		if diff <= 8 && res.IsReverse() == origins[i].Reverse {
			correct++
		}
	}
	if frac := float64(mapped) / float64(len(rs)); frac < 0.95 {
		t.Fatalf("mapped fraction %.3f < 0.95", frac)
	}
	if frac := float64(correct) / float64(mapped); frac < 0.93 {
		t.Fatalf("correct fraction %.3f < 0.93", frac)
	}
	stats := a.Stats()
	if stats.FMProbes == 0 || stats.SWCells == 0 {
		t.Fatalf("stats not accumulated: %+v", stats)
	}
}

func TestAlignSoftClipsDamagedEnds(t *testing.T) {
	a, g := buildAligner(t, 80_000, 36)
	ref, err := g.Slice(5000, 80)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(ref, 'N') {
		t.Skip("window contains N")
	}
	read := append([]byte("GGGGGGGGGG"), ref...) // 10 junk bases at head
	res := a.AlignRead(read)
	if res.IsUnmapped() {
		t.Fatal("damaged read unmapped")
	}
	cig, err := align.ParseCigar(res.Cigar)
	if err != nil {
		t.Fatal(err)
	}
	if cig.ReadLen() != len(read) {
		t.Fatalf("cigar %s consumes %d, read is %d", res.Cigar, cig.ReadLen(), len(read))
	}
	if cig[0].Op != align.CigarSoftClip && cig[len(cig)-1].Op != align.CigarSoftClip {
		t.Fatalf("no soft clip in cigar %s", res.Cigar)
	}
}

func TestAlignPairBatchInfersInsert(t *testing.T) {
	a, g := buildAligner(t, 250_000, 37)
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 10, N: 240, ReadLen: 80, Paired: true, InsertMean: 320, InsertStd: 25, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	var p1, p2 [][]byte
	for i := 0; i < len(rs); i += 2 {
		p1 = append(p1, rs[i].Bases)
		p2 = append(p2, rs[i+1].Bases)
	}
	results, stats := a.AlignPairBatch(p1, p2)
	if len(results) != len(rs) {
		t.Fatalf("results = %d, want %d", len(results), len(rs))
	}
	if stats.N == 0 {
		t.Fatal("insert stats not inferred")
	}
	if stats.Mean < 250 || stats.Mean > 400 {
		t.Fatalf("inferred mean %.1f, want ≈320", stats.Mean)
	}
	proper, correct := 0, 0
	for i := 0; i < len(results); i += 2 {
		r1, r2 := results[i], results[i+1]
		if r1.Flags&agd.FlagPaired == 0 {
			t.Fatal("pair flag missing")
		}
		if r1.Flags&agd.FlagProperPair == 0 {
			continue
		}
		proper++
		d1 := r1.Location - origins[i].Pos
		if d1 < 0 {
			d1 = -d1
		}
		d2 := r2.Location - origins[i+1].Pos
		if d2 < 0 {
			d2 = -d2
		}
		if d1 <= 8 && d2 <= 8 {
			correct++
		}
	}
	if frac := float64(proper) / float64(len(results)/2); frac < 0.85 {
		t.Fatalf("proper fraction %.3f", frac)
	}
	if proper > 0 {
		if frac := float64(correct) / float64(proper); frac < 0.93 {
			t.Fatalf("correct fraction %.3f", frac)
		}
	}
}

func TestAlignUnmappable(t *testing.T) {
	a, _ := buildAligner(t, 60_000, 38)
	res := a.AlignRead(bytes.Repeat([]byte("N"), 60))
	if !res.IsUnmapped() {
		t.Fatal("N read mapped")
	}
}

func TestInsertStatsBounds(t *testing.T) {
	s := InsertStats{Mean: 400, Std: 50, N: 100}
	lo, hi := s.Bounds()
	if lo != 200 || hi != 600 {
		t.Fatalf("bounds = [%d, %d]", lo, hi)
	}
}
