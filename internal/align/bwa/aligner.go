package bwa

import (
	"sort"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/genome"
)

// Config parameterizes the aligner.
type Config struct {
	// MinSeedLen is the minimum maximal-exact-match length used as a seed
	// (default 19, BWA-MEM's default).
	MinSeedLen int
	// MaxOcc skips seeds occurring more often than this (default 64).
	MaxOcc int32
	// MaxChains bounds how many candidate chains are extended per strand
	// (default 8).
	MaxChains int
	// Pad is the reference window padding around a chain during extension
	// (default 16).
	Pad int
	// MinScore is the minimum accepted Smith-Waterman score (default 30).
	MinScore int32
	// Scoring holds the extension scoring; zero value selects BWA defaults.
	Scoring align.Scoring
	// MinInsert/MaxInsert are fallback proper-pair bounds used before the
	// batch has inferred an insert distribution (defaults 50/1000).
	MinInsert, MaxInsert int
}

func (c Config) withDefaults() Config {
	if c.MinSeedLen <= 0 {
		c.MinSeedLen = 19
	}
	if c.MaxOcc <= 0 {
		c.MaxOcc = 64
	}
	if c.MaxChains <= 0 {
		c.MaxChains = 8
	}
	if c.Pad <= 0 {
		c.Pad = 16
	}
	if c.MinScore <= 0 {
		c.MinScore = 30
	}
	if c.Scoring == (align.Scoring{}) {
		c.Scoring = align.DefaultScoring()
	}
	if c.MinInsert <= 0 {
		c.MinInsert = 50
	}
	if c.MaxInsert <= 0 {
		c.MaxInsert = 1000
	}
	return c
}

// Stats counts aligner work for the perfmodel instrumentation.
type Stats struct {
	Reads    int64
	Seeds    int64
	FMProbes int64 // rank queries (random memory accesses)
	SWCells  int64 // Smith-Waterman cells filled (compute)
	Aligned  int64
}

// Aligner aligns reads using an FM-index. Like the SNAP aligner, each
// Aligner is single-goroutine; workers share the read-only index.
type Aligner struct {
	idx    *FMIndex
	gen    *genome.Genome
	cfg    Config
	counts Stats
	rcBuf  []byte
}

// NewAligner returns an aligner over the index.
func NewAligner(idx *FMIndex, g *genome.Genome, cfg Config) *Aligner {
	return &Aligner{idx: idx, gen: g, cfg: cfg.withDefaults()}
}

// Stats returns accumulated work counters (including FM probes, which are
// index-wide across all aligners sharing it).
func (a *Aligner) Stats() Stats {
	s := a.counts
	s.FMProbes = a.idx.Probes.Load()
	return s
}

// seed is a maximal exact match of read[qBeg:qEnd) with an SA interval.
type seed struct {
	qBeg, qEnd int
	lo, hi     int32
}

// maximalSeeds finds greedy right-to-left maximal exact matches of at least
// MinSeedLen bases (backward-search seeding).
func (a *Aligner) maximalSeeds(enc []byte) []seed {
	var seeds []seed
	end := len(enc)
	for end > 0 {
		lo, hi := int32(0), int32(a.idx.n)
		start := end
		for start > 0 {
			s := enc[start-1]
			if s < 1 || s > 4 {
				break
			}
			nlo, nhi := a.idx.extend(lo, hi, s)
			if nlo >= nhi {
				break
			}
			lo, hi = nlo, nhi
			start--
		}
		if end-start >= a.cfg.MinSeedLen {
			seeds = append(seeds, seed{qBeg: start, qEnd: end, lo: lo, hi: hi})
			a.counts.Seeds++
		}
		if start == end {
			end-- // no progress (ambiguous base or immediate mismatch)
		} else {
			end = start
		}
	}
	return seeds
}

// chain accumulates seed coverage on one diagonal.
type chain struct {
	diag   int64 // refPos - qBeg
	weight int   // total seeded bases
	qBeg   int
	refPos int64
}

// candidateChains maps seeds to diagonals and returns the strongest chains.
func (a *Aligner) candidateChains(seeds []seed) []chain {
	byDiag := make(map[int64]*chain)
	for _, s := range seeds {
		if s.hi-s.lo > a.cfg.MaxOcc {
			continue // repeat seed
		}
		for _, refPos := range a.idx.Locate(s.lo, s.hi, a.cfg.MaxOcc) {
			diag := int64(refPos) - int64(s.qBeg)
			c, ok := byDiag[diag]
			if !ok {
				byDiag[diag] = &chain{diag: diag, weight: s.qEnd - s.qBeg, qBeg: s.qBeg, refPos: int64(refPos)}
				continue
			}
			c.weight += s.qEnd - s.qBeg
			if s.qBeg < c.qBeg {
				c.qBeg = s.qBeg
				c.refPos = int64(refPos)
			}
		}
	}
	chains := make([]chain, 0, len(byDiag))
	for _, c := range byDiag {
		chains = append(chains, *c)
	}
	sort.Slice(chains, func(i, j int) bool {
		if chains[i].weight != chains[j].weight {
			return chains[i].weight > chains[j].weight
		}
		return chains[i].diag < chains[j].diag
	})
	if len(chains) > a.cfg.MaxChains {
		chains = chains[:a.cfg.MaxChains]
	}
	return chains
}

// extension is a scored candidate alignment.
type extension struct {
	score int32
	pos   int64
	rc    bool
	cigar align.Cigar
}

// extendChain Smith-Watermans the read against the chain's reference window
// and converts the local alignment into a soft-clipped candidate.
func (a *Aligner) extendChain(read []byte, c chain, rc bool) (extension, bool) {
	winStart := c.diag - int64(a.cfg.Pad)
	winLen := len(read) + 2*a.cfg.Pad
	if winStart < 0 {
		winLen += int(winStart)
		winStart = 0
	}
	if winStart+int64(winLen) > a.gen.Len() {
		winLen = int(a.gen.Len() - winStart)
	}
	if winLen <= 0 {
		return extension{}, false
	}
	window, err := a.gen.Slice(winStart, winLen)
	if err != nil {
		return extension{}, false
	}
	a.counts.SWCells += int64(len(read) * winLen)
	res := align.SmithWaterman(read, window, a.cfg.Scoring)
	if res.Score < a.cfg.MinScore {
		return extension{}, false
	}
	cigar := res.Cigar
	if res.QueryBeg > 0 {
		cigar = append(align.Cigar{{Len: res.QueryBeg, Op: align.CigarSoftClip}}, cigar...)
	}
	if tail := len(read) - res.QueryEnd; tail > 0 {
		cigar = append(cigar, align.CigarElem{Len: tail, Op: align.CigarSoftClip})
	}
	return extension{
		score: res.Score,
		pos:   winStart + int64(res.RefBeg),
		rc:    rc,
		cigar: cigar,
	}, true
}

// bestExtensions aligns the read on both strands and returns all accepted
// extensions sorted by score (best first).
func (a *Aligner) bestExtensions(bases []byte) []extension {
	var out []extension
	for _, dir := range [2]struct {
		seq []byte
		rc  bool
	}{{bases, false}, {a.reverseComplement(bases), true}} {
		enc := EncodeQuery(dir.seq)
		seeds := a.maximalSeeds(enc)
		for _, c := range a.candidateChains(seeds) {
			if ext, ok := a.extendChain(dir.seq, c, dir.rc); ok {
				out = append(out, ext)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].pos < out[j].pos
	})
	// Deduplicate identical positions (same alignment found via different
	// chains).
	dedup := out[:0]
	for _, e := range out {
		if len(dedup) > 0 {
			last := dedup[len(dedup)-1]
			if last.pos == e.pos && last.rc == e.rc {
				continue
			}
		}
		dedup = append(dedup, e)
	}
	return dedup
}

// AlignRead aligns a single read.
func (a *Aligner) AlignRead(bases []byte) agd.Result {
	a.counts.Reads++
	exts := a.bestExtensions(bases)
	if len(exts) == 0 {
		return agd.Result{Location: agd.UnmappedLocation, MateLocation: agd.UnmappedLocation, Flags: agd.FlagUnmapped}
	}
	a.counts.Aligned++
	best := exts[0]
	second := int32(-1 << 30)
	bestCount := 1
	for _, e := range exts[1:] {
		if e.score == best.score {
			bestCount++
		}
		if e.score > second && e.score < best.score {
			second = e.score
		}
		if e.score == best.score {
			second = e.score
		}
	}
	var flags uint16
	if best.rc {
		flags |= agd.FlagReverse
	}
	return agd.Result{
		Location:     best.pos,
		MateLocation: agd.UnmappedLocation,
		Score:        best.score,
		MapQ:         align.MapQFromScores(best.score, second, bestCount, a.cfg.Scoring.Match),
		Flags:        flags,
		Cigar:        best.cigar.String(),
	}
}

func (a *Aligner) reverseComplement(bases []byte) []byte {
	if cap(a.rcBuf) < len(bases) {
		a.rcBuf = make([]byte, len(bases))
	}
	a.rcBuf = a.rcBuf[:len(bases)]
	return genome.ReverseComplement(a.rcBuf, bases)
}
