package bwa

import (
	"fmt"
	"sync/atomic"

	"persona/internal/genome"
)

// FM-index over the BWT of the encoded reference. The alphabet is
// {0: sentinel, 1: A, 2: C, 3: G, 4: T}; ambiguous reference bases are
// rewritten to a position-dependent deterministic base (as BWA does with a
// random one) so they never create artificial repeat runs.

const (
	symSentinel = 0
	numSymbols  = 5
	occSample   = 64 // Occ checkpoint spacing
)

// FMIndex supports backward search over the reference.
type FMIndex struct {
	n    int    // text length including sentinel
	bwt  []byte // BWT symbols
	c    [numSymbols + 1]int32
	occ  []int32 // checkpoints: occ[(i/occSample)*4 + (sym-1)]
	sa   []int32 // full suffix array (locate)
	text []byte  // encoded text, for seed re-checking

	// Probes counts Occ rank lookups: the cache/TLB-hostile random accesses
	// that make BWT aligners memory-bound (§6 of the paper). Atomic: the
	// index is shared read-only across aligner workers, but this counter is
	// written by all of them.
	Probes atomic.Int64
}

// encodeRef rewrites the genome into the FM alphabet, replacing N with a
// deterministic pseudo-random base derived from the position.
func encodeRef(g *genome.Genome) []byte {
	seq := g.Seq()
	out := make([]byte, len(seq)+1)
	for i, b := range seq {
		code := genome.Code(b)
		if code > 3 {
			code = uint8((uint64(i)*2654435761 + 12345) & 3)
		}
		out[i] = code + 1
	}
	out[len(seq)] = symSentinel
	return out
}

// NewFMIndex builds the index for a genome.
func NewFMIndex(g *genome.Genome) (*FMIndex, error) {
	if g.Len()+1 > 1<<31-1 {
		return nil, fmt.Errorf("bwa: genome too large for int32 suffix array")
	}
	text := encodeRef(g)
	sa := BuildSuffixArray(text)
	n := len(text)

	x := &FMIndex{n: n, sa: sa, text: text}
	x.bwt = make([]byte, n)
	for i := 0; i < n; i++ {
		j := int(sa[i]) - 1
		if j < 0 {
			j = n - 1
		}
		x.bwt[i] = text[j]
	}

	// C array: for symbol s, number of text symbols < s.
	var counts [numSymbols]int32
	for _, s := range x.bwt {
		counts[s]++
	}
	for s := 0; s < numSymbols; s++ {
		x.c[s+1] = x.c[s] + counts[s]
	}

	// Occ checkpoints for the 4 base symbols.
	blocks := (n + occSample) / occSample
	x.occ = make([]int32, blocks*4)
	var running [4]int32
	for i := 0; i < n; i++ {
		if i%occSample == 0 {
			copy(x.occ[(i/occSample)*4:], running[:])
		}
		if s := x.bwt[i]; s >= 1 && s <= 4 {
			running[s-1]++
		}
	}
	return x, nil
}

// Len returns the indexed text length (genome + sentinel).
func (x *FMIndex) Len() int { return x.n }

// rank returns the number of occurrences of base symbol s (1..4) in
// bwt[0:i).
func (x *FMIndex) rank(s byte, i int32) int32 {
	x.Probes.Add(1)
	block := int(i) / occSample
	r := x.occ[block*4+int(s-1)]
	for j := block * occSample; j < int(i); j++ {
		if x.bwt[j] == s {
			r++
		}
	}
	return r
}

// extend performs one backward-search step: given the interval [lo, hi) of
// suffixes prefixed by pattern P, it returns the interval for sP.
func (x *FMIndex) extend(lo, hi int32, s byte) (int32, int32) {
	return x.c[s] + x.rank(s, lo), x.c[s] + x.rank(s, hi)
}

// Search returns the suffix-array interval [lo, hi) of exact occurrences of
// the encoded pattern (symbols 1..4), or an empty interval.
func (x *FMIndex) Search(pattern []byte) (int32, int32) {
	lo, hi := int32(0), int32(x.n)
	for i := len(pattern) - 1; i >= 0; i-- {
		s := pattern[i]
		if s < 1 || s > 4 {
			return 0, 0
		}
		lo, hi = x.extend(lo, hi, s)
		if lo >= hi {
			return 0, 0
		}
	}
	return lo, hi
}

// Locate returns up to max reference positions for an SA interval.
func (x *FMIndex) Locate(lo, hi, max int32) []int32 {
	if hi-lo > max {
		hi = lo + max
	}
	out := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, x.sa[i])
	}
	return out
}

// Count returns the number of occurrences of the encoded pattern.
func (x *FMIndex) Count(pattern []byte) int32 {
	lo, hi := x.Search(pattern)
	return hi - lo
}

// EncodeQuery converts base letters to FM symbols; ambiguous bases map to 0
// (unsearchable).
func EncodeQuery(bases []byte) []byte {
	out := make([]byte, len(bases))
	for i, b := range bases {
		code := genome.Code(b)
		if code > 3 {
			out[i] = 0
		} else {
			out[i] = code + 1
		}
	}
	return out
}
