// Package align provides the alignment core shared by Persona's aligners:
// CIGAR strings, bounded edit distance (Landau-Vishkin, the verification
// kernel SNAP uses), banded affine-gap Smith-Waterman (the extension kernel
// BWA-MEM uses), and mapping-quality estimation.
package align

import (
	"fmt"
	"strconv"
	"strings"
)

// CigarOp is one CIGAR operation kind.
type CigarOp byte

// CIGAR operation kinds, in BAM numeric order.
const (
	CigarMatch    CigarOp = 'M' // alignment match or mismatch
	CigarIns      CigarOp = 'I' // insertion to the reference
	CigarDel      CigarOp = 'D' // deletion from the reference
	CigarSkip     CigarOp = 'N'
	CigarSoftClip CigarOp = 'S'
	CigarHardClip CigarOp = 'H'
	CigarPad      CigarOp = 'P'
	CigarEqual    CigarOp = '='
	CigarDiff     CigarOp = 'X'
)

// cigarOps lists operations in BAM numeric encoding order.
var cigarOps = []CigarOp{CigarMatch, CigarIns, CigarDel, CigarSkip, CigarSoftClip, CigarHardClip, CigarPad, CigarEqual, CigarDiff}

// BAMCode returns the BAM numeric encoding of the op (0..8), or -1.
func (op CigarOp) BAMCode() int {
	for i, o := range cigarOps {
		if o == op {
			return i
		}
	}
	return -1
}

// CigarOpFromBAM maps a BAM numeric code back to the op.
func CigarOpFromBAM(code int) (CigarOp, error) {
	if code < 0 || code >= len(cigarOps) {
		return 0, fmt.Errorf("align: bad BAM cigar code %d", code)
	}
	return cigarOps[code], nil
}

// CigarElem is one run-length element of a CIGAR.
type CigarElem struct {
	Len int
	Op  CigarOp
}

// Cigar is a parsed CIGAR.
type Cigar []CigarElem

// String renders the CIGAR in SAM text form; empty renders as "*".
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	var sb strings.Builder
	for _, e := range c {
		sb.WriteString(strconv.Itoa(e.Len))
		sb.WriteByte(byte(e.Op))
	}
	return sb.String()
}

// AppendText appends the SAM text form to dst and returns the extended
// slice, rendering like String ("*" when empty) without allocating.
func (c Cigar) AppendText(dst []byte) []byte {
	if len(c) == 0 {
		return append(dst, '*')
	}
	for _, e := range c {
		dst = strconv.AppendInt(dst, int64(e.Len), 10)
		dst = append(dst, byte(e.Op))
	}
	return dst
}

// ParseCigar parses a SAM CIGAR string; "*" and "" parse to nil.
func ParseCigar(s string) (Cigar, error) {
	if s == "" || s == "*" {
		return nil, nil
	}
	var c Cigar
	n := 0
	sawDigit := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
			sawDigit = true
			continue
		}
		if !sawDigit || n == 0 {
			return nil, fmt.Errorf("align: bad cigar %q: op %q without length", s, ch)
		}
		switch op := CigarOp(ch); op {
		case CigarMatch, CigarIns, CigarDel, CigarSkip, CigarSoftClip, CigarHardClip, CigarPad, CigarEqual, CigarDiff:
			c = append(c, CigarElem{Len: n, Op: op})
		default:
			return nil, fmt.Errorf("align: bad cigar %q: unknown op %q", s, ch)
		}
		n = 0
		sawDigit = false
	}
	if sawDigit {
		return nil, fmt.Errorf("align: bad cigar %q: trailing length", s)
	}
	return c, nil
}

// ParseCigarBytes parses a SAM CIGAR from byte text, appending elements to
// dst (usually dst[:0] of a reused scratch) so steady-state parsing
// allocates nothing. "*" and empty parse to dst unchanged.
func ParseCigarBytes(dst Cigar, s []byte) (Cigar, error) {
	if len(s) == 0 || (len(s) == 1 && s[0] == '*') {
		return dst, nil
	}
	n := 0
	sawDigit := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
			sawDigit = true
			continue
		}
		if !sawDigit || n == 0 {
			return dst, fmt.Errorf("align: bad cigar %q: op %q without length", s, ch)
		}
		switch op := CigarOp(ch); op {
		case CigarMatch, CigarIns, CigarDel, CigarSkip, CigarSoftClip, CigarHardClip, CigarPad, CigarEqual, CigarDiff:
			dst = append(dst, CigarElem{Len: n, Op: op})
		default:
			return dst, fmt.Errorf("align: bad cigar %q: unknown op %q", s, ch)
		}
		n = 0
		sawDigit = false
	}
	if sawDigit {
		return dst, fmt.Errorf("align: bad cigar %q: trailing length", s)
	}
	return dst, nil
}

// ReadLen returns the read bases consumed by the CIGAR (M/I/S/=/X).
func (c Cigar) ReadLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarMatch, CigarIns, CigarSoftClip, CigarEqual, CigarDiff:
			n += e.Len
		}
	}
	return n
}

// RefLen returns the reference bases consumed by the CIGAR (M/D/N/=/X).
func (c Cigar) RefLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case CigarMatch, CigarDel, CigarSkip, CigarEqual, CigarDiff:
			n += e.Len
		}
	}
	return n
}

// Canonical merges adjacent elements with identical ops and drops
// zero-length elements.
func (c Cigar) Canonical() Cigar {
	var out Cigar
	for _, e := range c {
		if e.Len == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Op == e.Op {
			out[len(out)-1].Len += e.Len
			continue
		}
		out = append(out, e)
	}
	return out
}
