package align

// Mapping-quality estimation. MAPQ is the Phred-scaled probability that the
// reported location is wrong; like SNAP and BWA, we derive it from the gap
// between the best and second-best candidate scores and the number of
// equally good placements.

// MapQ computes a mapping quality for an edit-distance aligner.
//
//	bestDist       edit distance of the reported alignment
//	secondDist     edit distance of the best alternative (-1 if none found)
//	bestCount      number of distinct locations achieving bestDist
func MapQ(bestDist, secondDist, bestCount int) uint8 {
	if bestCount > 1 {
		// Multiple equally good placements: essentially a coin flip among
		// them.
		switch {
		case bestCount >= 10:
			return 0
		case bestCount >= 4:
			return 1
		default:
			return 3
		}
	}
	if secondDist < 0 {
		return 60 // unique: no competing placement at all
	}
	gap := secondDist - bestDist
	if gap <= 0 {
		return 3
	}
	// Each extra edit in the runner-up multiplies its likelihood down by
	// roughly the per-base error odds; 10 Phred per edit, capped at 60.
	q := 10 * gap
	if q > 60 {
		q = 60
	}
	return uint8(q)
}

// MapQFromScores computes a mapping quality for a score-based aligner
// (Smith-Waterman scores, higher is better).
func MapQFromScores(best, second int32, bestCount int, matchScore int32) uint8 {
	if bestCount > 1 {
		return MapQ(0, 0, bestCount)
	}
	if second <= 0 {
		return 60
	}
	if matchScore <= 0 {
		matchScore = 1
	}
	gap := (best - second) / matchScore
	if gap <= 0 {
		return 3
	}
	q := int32(10) * gap
	if q > 60 {
		q = 60
	}
	return uint8(q)
}
