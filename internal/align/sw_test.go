package align

import (
	"math/rand"
	"testing"
)

func TestSmithWatermanExact(t *testing.T) {
	sc := DefaultScoring()
	res := SmithWaterman([]byte("ACGTACGT"), []byte("TTTACGTACGTTTT"), sc)
	if res.Score != 8 {
		t.Fatalf("score = %d, want 8", res.Score)
	}
	if res.RefBeg != 3 || res.RefEnd != 11 {
		t.Fatalf("ref span = [%d,%d), want [3,11)", res.RefBeg, res.RefEnd)
	}
	if res.Cigar.String() != "8M" {
		t.Fatalf("cigar = %s", res.Cigar)
	}
}

func TestSmithWatermanMismatchAndGap(t *testing.T) {
	sc := DefaultScoring()
	// One mismatch in the middle: local alignment may clip or absorb it.
	res := SmithWaterman([]byte("AAAATAAAA"), []byte("AAAACAAAA"), sc)
	if res.Score < 4 {
		t.Fatalf("score = %d", res.Score)
	}
	// A deletion from ref.
	res = SmithWaterman([]byte("AACCGGTT"), []byte("AACCAGGTT"), sc)
	if res.Score <= 0 {
		t.Fatal("no alignment found across gap")
	}
	if res.Cigar.ReadLen() != res.QueryEnd-res.QueryBeg {
		t.Fatalf("cigar read len %d vs span %d", res.Cigar.ReadLen(), res.QueryEnd-res.QueryBeg)
	}
	if res.Cigar.RefLen() != res.RefEnd-res.RefBeg {
		t.Fatalf("cigar ref len %d vs span %d", res.Cigar.RefLen(), res.RefEnd-res.RefBeg)
	}
}

func TestSmithWatermanNoAlignment(t *testing.T) {
	res := SmithWaterman([]byte("AAAA"), []byte("TTTT"), DefaultScoring())
	if res.Score != 0 || len(res.Cigar) != 0 {
		t.Fatalf("res = %+v, want empty", res)
	}
	res = SmithWaterman(nil, []byte("ACGT"), DefaultScoring())
	if res.Score != 0 {
		t.Fatal("empty query scored")
	}
}

func TestSmithWatermanCigarSpansConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := DefaultScoring()
	for trial := 0; trial < 200; trial++ {
		q := randSeq(rng, 20+rng.Intn(40))
		r := mutateSeq(rng, q, rng.Intn(5))
		r = append(randSeq(rng, rng.Intn(10)), append(r, randSeq(rng, rng.Intn(10))...)...)
		res := SmithWaterman(q, r, sc)
		if res.Score == 0 {
			continue
		}
		if res.Cigar.ReadLen() != res.QueryEnd-res.QueryBeg {
			t.Fatalf("query span mismatch: %+v", res)
		}
		if res.Cigar.RefLen() != res.RefEnd-res.RefBeg {
			t.Fatalf("ref span mismatch: %+v", res)
		}
		// Recompute the score from the cigar.
		var score int32
		qi, ri := res.QueryBeg, res.RefBeg
		for _, e := range res.Cigar {
			switch e.Op {
			case CigarMatch:
				for x := 0; x < e.Len; x++ {
					score += sc.sub(q[qi], r[ri])
					qi++
					ri++
				}
			case CigarIns:
				score += sc.GapOpen + int32(e.Len)*sc.GapExtend
				qi += e.Len
			case CigarDel:
				score += sc.GapOpen + int32(e.Len)*sc.GapExtend
				ri += e.Len
			}
		}
		if score != res.Score {
			t.Fatalf("cigar %s implies score %d, reported %d", res.Cigar, score, res.Score)
		}
	}
}

func TestGlobalAffine(t *testing.T) {
	sc := DefaultScoring()
	score, cig := GlobalAffine([]byte("ACGT"), []byte("ACGT"), sc)
	if score != 4 || cig.String() != "4M" {
		t.Fatalf("exact global: %d %s", score, cig)
	}
	score, cig = GlobalAffine([]byte("ACGT"), []byte("ACT"), sc)
	if cig.ReadLen() != 4 || cig.RefLen() != 3 {
		t.Fatalf("global with deletion: %d %s", score, cig)
	}
	_, cig = GlobalAffine([]byte("AC"), []byte("ACGGGG"), sc)
	if cig.ReadLen() != 2 || cig.RefLen() != 6 {
		t.Fatalf("global padding: %s", cig)
	}
}

func TestParseCigarRoundTrip(t *testing.T) {
	for _, s := range []string{"101M", "50M1I50M", "10S80M11S", "3M2D5M", "*"} {
		c, err := ParseCigar(s)
		if err != nil {
			t.Fatal(err)
		}
		got := c.String()
		if s == "*" {
			if got != "*" {
				t.Fatalf("* → %s", got)
			}
			continue
		}
		if got != s {
			t.Fatalf("%s → %s", s, got)
		}
	}
	for _, bad := range []string{"M", "10", "10Z", "1-M"} {
		if _, err := ParseCigar(bad); err == nil {
			t.Errorf("bad cigar %q accepted", bad)
		}
	}
}

func TestCigarCanonical(t *testing.T) {
	c := Cigar{{2, CigarMatch}, {3, CigarMatch}, {0, CigarIns}, {1, CigarDel}}
	if got := c.Canonical().String(); got != "5M1D" {
		t.Fatalf("canonical = %s", got)
	}
}

func TestMapQ(t *testing.T) {
	if q := MapQ(0, -1, 1); q != 60 {
		t.Fatalf("unique = %d", q)
	}
	if q := MapQ(1, 1, 5); q > 3 {
		t.Fatalf("ambiguous = %d", q)
	}
	if q := MapQ(0, 4, 1); q != 40 {
		t.Fatalf("gap 4 = %d", q)
	}
	if MapQ(2, 2, 1) > 3 {
		t.Fatal("tied second best should give low mapq")
	}
	if MapQ(0, 0, 20) != 0 {
		t.Fatal("many placements should give mapq 0")
	}
	if q := MapQFromScores(50, -1<<30, 1, 1); q != 60 {
		t.Fatalf("score unique = %d", q)
	}
}
