package snap

import (
	"fmt"
	"slices"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/genome"
)

// Config parameterizes alignment.
type Config struct {
	// MaxDist is the maximum edit distance accepted (default 12).
	MaxDist int
	// SeedStride is the spacing between seed sampling offsets within a read
	// (default seedLen/2, minimum 1).
	SeedStride int
	// MaxCandidates caps the verified candidate locations per read
	// direction (default 64). Candidates beyond the cap are counted toward
	// ambiguity but not verified.
	MaxCandidates int
	// MinInsert/MaxInsert bound proper-pair insert sizes (defaults 50/1000).
	MinInsert, MaxInsert int
}

func (c Config) withDefaults(seedLen int) Config {
	if c.MaxDist <= 0 {
		c.MaxDist = 12
	}
	if c.SeedStride <= 0 {
		c.SeedStride = seedLen / 2
		if c.SeedStride < 1 {
			c.SeedStride = 1
		}
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 64
	}
	if c.MinInsert <= 0 {
		c.MinInsert = 50
	}
	if c.MaxInsert <= 0 {
		c.MaxInsert = 1000
	}
	return c
}

// Aligner aligns reads against a SNAP index. Aligners are stateless between
// calls except for scratch buffers, so one Aligner must be used by a single
// goroutine; create one per worker (they share the read-only index).
//
// All per-read state lives in reused scratch buffers, so steady-state
// AlignRead performs no heap allocation (the hot-loop requirement of §6:
// the aligner is core bound, and allocator traffic is pure overhead).
type Aligner struct {
	idx *Index
	cfg Config

	// scratch
	rc       []byte
	cands    []candidate
	keys     []candKey
	lv       align.LVScratch
	banded   align.BandedScratch
	cigarBuf []byte
	cigarTab map[string]string
	scoreBuf [2][]scored
	counts   Stats
}

// candKey is one candidate occurrence gathered from seed lookups before
// deduplication: the (position, strand) key plus the order it was seen in.
type candKey struct {
	key int64 // pos<<1 | rc
	seq int32
}

// maxCigarTab bounds the interned-CIGAR table. Real read sets repeat a small
// set of CIGARs ("101M", one-indel variants, ...), so the table converges and
// steady-state AlignRead allocates nothing; the bound keeps pathological
// inputs from growing it without limit.
const maxCigarTab = 1 << 14

// Stats counts aligner work for the perfmodel instrumentation.
type Stats struct {
	Reads         int64
	SeedLookups   int64
	CandidatesxLV int64 // Landau-Vishkin verifications
	LVCells       int64 // measured LV dependent operations (extends + diagonal updates)
	BytesCompared int64 // reference window bytes touched during verification
	Aligned       int64
}

type candidate struct {
	pos int64
	rc  bool
}

// NewAligner returns an aligner over idx.
func NewAligner(idx *Index, cfg Config) *Aligner {
	c := cfg.withDefaults(idx.seedLen)
	return &Aligner{
		idx:      idx,
		cfg:      c,
		cands:    make([]candidate, 0, c.MaxCandidates*2),
		keys:     make([]candKey, 0, 256),
		cigarBuf: make([]byte, 0, 64),
		cigarTab: make(map[string]string, 64),
	}
}

// Stats returns accumulated work counters.
func (a *Aligner) Stats() Stats { return a.counts }

// AlignRead aligns a single read and returns its result record.
func (a *Aligner) AlignRead(bases []byte) agd.Result {
	a.counts.Reads++
	best, second, bestCount, bestCand := a.findBest(bases)
	if bestCand == nil {
		return agd.Result{
			Location:     agd.UnmappedLocation,
			MateLocation: agd.UnmappedLocation,
			Flags:        agd.FlagUnmapped,
			MapQ:         0,
		}
	}
	a.counts.Aligned++
	return a.finish(bases, *bestCand, best, second, bestCount)
}

// findBest gathers and verifies candidates for both strands, returning the
// best and second-best edit distances, the count of locations achieving the
// best, and the best candidate.
func (a *Aligner) findBest(bases []byte) (best, second, bestCount int, bestCand *candidate) {
	cfg := a.cfg
	rcBases := a.gatherCandidates(bases)
	best, second = cfg.MaxDist+1, -1
	bestCount = 0
	for i := range a.cands {
		c := a.cands[i]
		query := bases
		if c.rc {
			query = rcBases
		}
		// Verify with a bound just past the current best: wide enough to
		// find ties and the second-best distances that set MAPQ, tight
		// enough to cut LV work once a good hit exists.
		d := a.verify(query, c.pos, min(best+6, cfg.MaxDist))
		if d < 0 {
			continue
		}
		switch {
		case d < best:
			if best <= cfg.MaxDist {
				second = best
			}
			best = d
			bestCount = 1
			bestCand = &a.cands[i]
		case d == best:
			bestCount++
			if second < 0 || d < second {
				second = d
			}
		case second < 0 || d < second:
			second = d
		}
	}
	if best > cfg.MaxDist {
		return 0, 0, 0, nil
	}
	return best, second, bestCount, bestCand
}

// gatherCandidates fills a.cands with deduplicated candidate positions from
// seeds at several offsets, for forward and reverse-complement orientations.
// It returns the reverse complement of bases (backed by the a.rc scratch, so
// valid until the next reverseComplement call) for callers to verify rc
// candidates without recomputing it.
//
// Deduplication runs on a reused sorted slice instead of a hash set: all
// occurrences are collected with their arrival order, sorted by (key, order),
// uniqued keeping each key's first occurrence, and re-sorted by order — the
// same first-seen candidate sequence a map would produce, with zero
// steady-state allocation and no per-occurrence hashing.
func (a *Aligner) gatherCandidates(bases []byte) []byte {
	a.cands = a.cands[:0]
	a.keys = a.keys[:0]
	rc := a.reverseComplement(bases)
	seedLen := a.idx.seedLen
	if len(bases) < seedLen {
		return rc
	}
	for _, dir := range [2]struct {
		seq []byte
		rc  bool
	}{{bases, false}, {rc, true}} {
		lastOffset := len(dir.seq) - seedLen
		for off := 0; ; off += a.cfg.SeedStride {
			if off > lastOffset {
				break
			}
			a.counts.SeedLookups++
			for _, loc := range a.idx.Lookup(dir.seq, off) {
				pos := int64(loc) - int64(off)
				if pos < 0 || pos+int64(len(dir.seq)) > a.idx.gen.Len()+int64(a.cfg.MaxDist) {
					continue
				}
				// Key forward and rc candidates separately.
				key := pos<<1 | int64(b2i(dir.rc))
				a.keys = append(a.keys, candKey{key: key, seq: int32(len(a.keys))})
			}
		}
	}

	slices.SortFunc(a.keys, func(x, y candKey) int {
		if x.key != y.key {
			if x.key < y.key {
				return -1
			}
			return 1
		}
		return int(x.seq) - int(y.seq)
	})
	uniq := a.keys[:0]
	for _, k := range a.keys {
		if len(uniq) > 0 && k.key == uniq[len(uniq)-1].key {
			continue
		}
		uniq = append(uniq, k)
	}
	slices.SortFunc(uniq, func(x, y candKey) int { return int(x.seq) - int(y.seq) })
	for _, k := range uniq {
		if len(a.cands) >= a.cfg.MaxCandidates*2 {
			break
		}
		a.cands = append(a.cands, candidate{pos: k.key >> 1, rc: k.key&1 != 0})
	}
	return rc
}

// verify runs bounded Landau-Vishkin of query at pos, returning the edit
// distance or -1.
func (a *Aligner) verify(query []byte, pos int64, maxK int) int {
	if maxK < 0 {
		return -1
	}
	window := a.window(pos, len(query)+maxK)
	if window == nil {
		return -1
	}
	a.counts.CandidatesxLV++
	d, ops := a.lv.DistanceOps(query, window, maxK)
	a.counts.LVCells += int64(ops)
	a.counts.BytesCompared += int64(len(window))
	return d
}

// window slices the reference at [pos, pos+n), truncating at the genome end.
func (a *Aligner) window(pos int64, n int) []byte {
	if pos < 0 || pos >= a.idx.gen.Len() {
		return nil
	}
	end := pos + int64(n)
	if end > a.idx.gen.Len() {
		end = a.idx.gen.Len()
	}
	w, err := a.idx.gen.Slice(pos, int(end-pos))
	if err != nil {
		return nil
	}
	return w
}

// finish re-aligns the winning candidate to recover the CIGAR and builds the
// result record.
func (a *Aligner) finish(bases []byte, c candidate, best, second, bestCount int) agd.Result {
	query := bases
	if c.rc {
		query = a.reverseComplement(bases)
	}
	window := a.window(c.pos, len(query)+a.cfg.MaxDist)
	dist, cigar, _ := a.banded.BoundedAlign(query, window, a.cfg.MaxDist)
	if dist < 0 {
		// The LV verification succeeded, so this cannot happen with a
		// consistent implementation; treat defensively as unmapped.
		return agd.Result{Location: agd.UnmappedLocation, MateLocation: agd.UnmappedLocation, Flags: agd.FlagUnmapped}
	}
	var flags uint16
	if c.rc {
		flags |= agd.FlagReverse
	}
	return agd.Result{
		Location:     c.pos,
		MateLocation: agd.UnmappedLocation,
		Score:        int32(best),
		MapQ:         align.MapQ(best, second, bestCount),
		Flags:        flags,
		Cigar:        a.internCigar(cigar),
	}
}

// internCigar renders a CIGAR into the aligner's scratch and interns the
// text in a bounded table, so a repeated CIGAR costs no allocation.
func (a *Aligner) internCigar(c align.Cigar) string {
	a.cigarBuf = c.AppendText(a.cigarBuf[:0])
	if s, ok := a.cigarTab[string(a.cigarBuf)]; ok {
		return s
	}
	if len(a.cigarTab) >= maxCigarTab {
		clear(a.cigarTab)
	}
	s := string(a.cigarBuf)
	a.cigarTab[s] = s
	return s
}

func (a *Aligner) reverseComplement(bases []byte) []byte {
	if cap(a.rc) < len(bases) {
		a.rc = make([]byte, len(bases))
	}
	a.rc = a.rc[:len(bases)]
	return genome.ReverseComplement(a.rc, bases)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Validate sanity-checks a configuration against an index.
func (c Config) Validate(idx *Index) error {
	cfg := c.withDefaults(idx.seedLen)
	if cfg.MinInsert >= cfg.MaxInsert {
		return fmt.Errorf("snap: MinInsert %d >= MaxInsert %d", cfg.MinInsert, cfg.MaxInsert)
	}
	return nil
}
