// Package snap implements a SNAP-style short-read aligner [Zaharia et al.,
// CoRR 2011]: a hash-based index of fixed-length reference seeds, candidate
// lookup at several read offsets, and Landau-Vishkin verification of each
// candidate with best/second-best tracking. This is the high-throughput
// aligner of the paper's evaluation (§4.3, §5); it is optimized for large
// memory and many cores.
package snap

import (
	"fmt"

	"persona/internal/genome"
)

// IndexConfig parameterizes index construction.
type IndexConfig struct {
	// SeedLen is the seed length in bases (max 31). Real SNAP uses ~20 for
	// a 3 Gbp genome; smaller synthetic genomes can use 16.
	SeedLen int
	// MaxSeedHits drops seeds occurring at more than this many locations
	// (repeat masking); 0 means 300.
	MaxSeedHits int
}

// Index is the hash-based seed index: seed value → reference locations (the
// "Genome Index: Seed → Ref. Loc" of Fig. 3).
type Index struct {
	gen     *genome.Genome
	seedLen int
	maxHits int
	table   map[uint64][]int32
	seeds   int // distinct seeds retained
}

// BuildIndex indexes every seed of the genome. Seeds containing N are
// skipped. Positions are stored as int32 (genomes beyond 2 Gb would need a
// wider type; hg19 contigs fit individually and the paper's datasets do
// too).
func BuildIndex(g *genome.Genome, cfg IndexConfig) (*Index, error) {
	if cfg.SeedLen <= 0 {
		cfg.SeedLen = 16
	}
	if cfg.SeedLen > 31 {
		return nil, fmt.Errorf("snap: seed length %d exceeds 31", cfg.SeedLen)
	}
	if cfg.MaxSeedHits <= 0 {
		cfg.MaxSeedHits = 300
	}
	if g.Len() > 1<<31-1 {
		return nil, fmt.Errorf("snap: genome too large for int32 locations (%d bases)", g.Len())
	}
	if int64(cfg.SeedLen) > g.Len() {
		return nil, fmt.Errorf("snap: seed length %d exceeds genome length %d", cfg.SeedLen, g.Len())
	}

	idx := &Index{
		gen:     g,
		seedLen: cfg.SeedLen,
		maxHits: cfg.MaxSeedHits,
		table:   make(map[uint64][]int32, g.Len()/2),
	}
	seq := g.Seq()
	var key uint64
	mask := uint64(1)<<(2*uint(cfg.SeedLen)) - 1
	valid := 0 // bases since last N
	for i := 0; i < len(seq); i++ {
		code := uint64(genome.Code(seq[i]))
		if code > 3 {
			valid = 0
			key = 0
			continue
		}
		key = (key<<2 | code) & mask
		valid++
		if valid < cfg.SeedLen {
			continue
		}
		pos := int32(i - cfg.SeedLen + 1)
		locs := idx.table[key]
		if len(locs) >= cfg.MaxSeedHits {
			continue // overflowing repeat seed: stop accumulating
		}
		idx.table[key] = append(locs, pos)
	}
	idx.seeds = len(idx.table)
	return idx, nil
}

// SeedLen returns the configured seed length.
func (x *Index) SeedLen() int { return x.seedLen }

// Genome returns the indexed genome.
func (x *Index) Genome() *genome.Genome { return x.gen }

// NumSeeds returns the number of distinct seeds retained.
func (x *Index) NumSeeds() int { return x.seeds }

// seedKey packs bases[i:i+seedLen] into a 2-bit key; ok is false when the
// window contains an ambiguous base.
func (x *Index) seedKey(bases []byte, i int) (key uint64, ok bool) {
	for j := 0; j < x.seedLen; j++ {
		code := uint64(genome.Code(bases[i+j]))
		if code > 3 {
			return 0, false
		}
		key = key<<2 | code
	}
	return key, true
}

// Lookup returns the reference locations of the seed at bases[i:i+seedLen].
// The returned slice is shared with the index; callers must not mutate it.
func (x *Index) Lookup(bases []byte, i int) []int32 {
	key, ok := x.seedKey(bases, i)
	if !ok {
		return nil
	}
	return x.table[key]
}
