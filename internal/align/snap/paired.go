package snap

import (
	"persona/internal/agd"
	"persona/internal/align"
)

// scored is a verified candidate.
type scored struct {
	pos  int64
	rc   bool
	dist int
}

// scoreCandidates verifies every gathered candidate of a read and returns
// those within MaxDist. The result is backed by the aligner's scratch slice
// `which` (0 or 1, so a pair's two reads keep separate results) and is valid
// until that scratch is reused.
func (a *Aligner) scoreCandidates(which int, bases []byte) []scored {
	rcBases := a.gatherCandidates(bases)
	out := a.scoreBuf[which][:0]
	for _, c := range a.cands {
		query := bases
		if c.rc {
			query = rcBases
		}
		d := a.verify(query, c.pos, a.cfg.MaxDist)
		if d >= 0 {
			out = append(out, scored{pos: c.pos, rc: c.rc, dist: d})
		}
	}
	a.scoreBuf[which] = out
	return out
}

// AlignPair aligns a read pair, preferring proper pairs (opposite strands,
// forward read leftmost, insert within configured bounds) by combined edit
// distance, falling back to independent single-end alignment when no proper
// pair exists.
func (a *Aligner) AlignPair(bases1, bases2 []byte) (agd.Result, agd.Result) {
	a.counts.Reads += 2
	s1 := a.scoreCandidates(0, bases1)
	s2 := a.scoreCandidates(1, bases2)

	type combo struct {
		c1, c2   scored
		combined int
	}
	bestCombined, secondCombined := 1<<30, -1
	bestCount := 0
	var best combo
	for _, c1 := range s1 {
		for _, c2 := range s2 {
			if c1.rc == c2.rc {
				continue // proper pairs sit on opposite strands
			}
			// The forward-strand read must be leftmost.
			fwd, rev := c1, c2
			len1, len2 := len(bases1), len(bases2)
			if c1.rc {
				fwd, rev = c2, c1
				len1, len2 = len2, len1
			}
			_ = len1
			insert := rev.pos + int64(len2) - fwd.pos
			if fwd.pos > rev.pos || insert < int64(a.cfg.MinInsert) || insert > int64(a.cfg.MaxInsert) {
				continue
			}
			combined := c1.dist + c2.dist
			switch {
			case combined < bestCombined:
				if bestCount > 0 {
					secondCombined = bestCombined
				}
				bestCombined = combined
				bestCount = 1
				best = combo{c1: c1, c2: c2, combined: combined}
			case combined == bestCombined:
				// A tie at a different location pair counts as ambiguity.
				if c1.pos != best.c1.pos || c2.pos != best.c2.pos {
					bestCount++
					if secondCombined < 0 || combined < secondCombined {
						secondCombined = combined
					}
				}
			case secondCombined < 0 || combined < secondCombined:
				secondCombined = combined
			}
		}
	}

	if bestCount == 0 {
		// No proper pair: fall back to independent alignment.
		r1 := a.AlignRead(bases1)
		r2 := a.AlignRead(bases2)
		pairFlags(&r1, &r2)
		pairFlags(&r2, &r1)
		r1.Flags |= agd.FlagFirstInPair
		r2.Flags |= agd.FlagSecondInPair
		return r1, r2
	}

	a.counts.Aligned += 2
	mapq := align.MapQ(bestCombined, secondCombined, bestCount)
	r1 := a.finish(bases1, candidate{pos: best.c1.pos, rc: best.c1.rc}, best.c1.dist, -1, 1)
	r2 := a.finish(bases2, candidate{pos: best.c2.pos, rc: best.c2.rc}, best.c2.dist, -1, 1)
	r1.MapQ, r2.MapQ = mapq, mapq
	r1.Flags |= agd.FlagPaired | agd.FlagProperPair | agd.FlagFirstInPair
	r2.Flags |= agd.FlagPaired | agd.FlagProperPair | agd.FlagSecondInPair
	if best.c2.rc {
		r1.Flags |= agd.FlagMateReverse
	}
	if best.c1.rc {
		r2.Flags |= agd.FlagMateReverse
	}
	r1.MateLocation, r2.MateLocation = r2.Location, r1.Location

	// Signed template length: leftmost start to rightmost end.
	left, right := r1.Location, r2.Location+int64(len(bases2))
	if r2.Location < r1.Location {
		left, right = r2.Location, r1.Location+int64(len(bases1))
	}
	tlen := int32(right - left)
	if r1.Location <= r2.Location {
		r1.TemplateLen, r2.TemplateLen = tlen, -tlen
	} else {
		r1.TemplateLen, r2.TemplateLen = -tlen, tlen
	}
	return r1, r2
}

// pairFlags sets the paired-read bookkeeping flags of r given its mate.
func pairFlags(r, mate *agd.Result) {
	r.Flags |= agd.FlagPaired
	if mate.IsUnmapped() {
		r.Flags |= agd.FlagMateUnmapped
	} else {
		r.MateLocation = mate.Location
		if mate.IsReverse() {
			r.Flags |= agd.FlagMateReverse
		}
	}
}
