package snap

import (
	"testing"

	"persona/internal/agd"
	"persona/internal/align"
	"persona/internal/genome"
	"persona/internal/reads"
)

func testGenome(t testing.TB, size int, seed int64) *genome.Genome {
	t.Helper()
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(size, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testIndex(t testing.TB, g *genome.Genome) *Index {
	t.Helper()
	idx, err := BuildIndex(g, IndexConfig{SeedLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBuildIndexProperties(t *testing.T) {
	g := testGenome(t, 100_000, 21)
	idx := testIndex(t, g)
	if idx.NumSeeds() == 0 {
		t.Fatal("empty index")
	}
	if idx.SeedLen() != 16 {
		t.Fatalf("seed len = %d", idx.SeedLen())
	}
	// Every indexed location must actually contain its seed.
	seq := g.Seq()
	checked := 0
	for i := 0; i+16 <= len(seq) && checked < 2000; i += 97 {
		locs := idx.Lookup(seq, i)
		window := seq[i : i+16]
		hasN := false
		for _, b := range window {
			if b == 'N' {
				hasN = true
			}
		}
		if hasN {
			if locs != nil {
				t.Fatalf("seed with N indexed at %d", i)
			}
			continue
		}
		found := false
		for _, loc := range locs {
			if int(loc) == i {
				found = true
			}
			got, err := g.Slice(int64(loc), 16)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(window) {
				t.Fatalf("location %d does not contain seed from %d", loc, i)
			}
		}
		if !found {
			t.Fatalf("position %d missing from its own seed's locations", i)
		}
		checked++
	}
}

func TestBuildIndexValidation(t *testing.T) {
	g := testGenome(t, 10_000, 1)
	if _, err := BuildIndex(g, IndexConfig{SeedLen: 40}); err == nil {
		t.Fatal("seed length 40 accepted")
	}
}

func TestAlignExactReads(t *testing.T) {
	g := testGenome(t, 200_000, 22)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 8})
	for pos := int64(100); pos < g.Len()-200; pos += 7919 {
		ref, err := g.Slice(pos, 100)
		if err != nil {
			t.Fatal(err)
		}
		hasN := false
		for _, b := range ref {
			if b == 'N' {
				hasN = true
			}
		}
		if hasN {
			continue
		}
		res := a.AlignRead(ref)
		if res.IsUnmapped() {
			t.Fatalf("exact read at %d unmapped", pos)
		}
		if res.Score != 0 {
			t.Fatalf("exact read at %d has distance %d", pos, res.Score)
		}
		// Repeats may legitimately map elsewhere with distance 0; require
		// either the origin or another exact copy.
		if res.Location != pos {
			got, err := g.Slice(res.Location, 100)
			if err != nil || string(got) != string(ref) {
				t.Fatalf("read from %d mapped to %d which is not an exact copy", pos, res.Location)
			}
		}
		if res.Cigar != "100M" {
			t.Fatalf("exact read cigar = %s", res.Cigar)
		}
	}
}

func TestAlignSimulatedReadsAccuracy(t *testing.T) {
	g := testGenome(t, 400_000, 23)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 10})
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 5, N: 1500, ReadLen: 101, ErrorRate: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	mapped, correct, confident, confidentWrong := 0, 0, 0, 0
	for i := range rs {
		res := a.AlignRead(rs[i].Bases)
		if res.IsUnmapped() {
			continue
		}
		mapped++
		if res.IsReverse() != origins[i].Reverse {
			continue
		}
		diff := res.Location - origins[i].Pos
		if diff < 0 {
			diff = -diff
		}
		if diff <= 5 {
			correct++
		}
		if res.MapQ >= 30 {
			confident++
			if diff > 5 {
				confidentWrong++
			}
		}
	}
	if frac := float64(mapped) / float64(len(rs)); frac < 0.97 {
		t.Fatalf("mapped fraction %.3f < 0.97", frac)
	}
	if frac := float64(correct) / float64(mapped); frac < 0.95 {
		t.Fatalf("correct fraction %.3f < 0.95", frac)
	}
	// High-MAPQ alignments should rarely be wrong.
	if confident > 0 {
		if frac := float64(confidentWrong) / float64(confident); frac > 0.02 {
			t.Fatalf("confident-wrong fraction %.4f > 0.02", frac)
		}
	}
	stats := a.Stats()
	if stats.Reads != int64(len(rs)) || stats.CandidatesxLV == 0 {
		t.Fatalf("stats not accumulated: %+v", stats)
	}
}

func TestAlignReverseComplementReads(t *testing.T) {
	g := testGenome(t, 100_000, 24)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 6})
	found := 0
	for pos := int64(500); pos < g.Len()-200 && found < 50; pos += 1009 {
		ref, err := g.Slice(pos, 80)
		if err != nil {
			t.Fatal(err)
		}
		skip := false
		for _, b := range ref {
			if b == 'N' {
				skip = true
			}
		}
		if skip {
			continue
		}
		rc := genome.ReverseComplement(make([]byte, 80), ref)
		res := a.AlignRead(rc)
		if res.IsUnmapped() {
			t.Fatalf("rc read from %d unmapped", pos)
		}
		if !res.IsReverse() {
			t.Fatalf("rc read from %d not flagged reverse", pos)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no rc reads tested")
	}
}

func TestAlignUnalignableRead(t *testing.T) {
	g := testGenome(t, 50_000, 25)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 4})
	// A read of Ns can't be seeded.
	res := a.AlignRead([]byte("NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN"))
	if !res.IsUnmapped() {
		t.Fatal("N read mapped")
	}
	// Too-short reads can't be seeded either.
	res = a.AlignRead([]byte("ACGT"))
	if !res.IsUnmapped() {
		t.Fatal("4bp read mapped")
	}
}

func TestAlignPairProper(t *testing.T) {
	g := testGenome(t, 300_000, 26)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 10, MinInsert: 100, MaxInsert: 800})
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: 6, N: 400, ReadLen: 90, Paired: true, InsertMean: 350, InsertStd: 30, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, origins := sim.All()
	proper, correct := 0, 0
	for i := 0; i < len(rs); i += 2 {
		r1, r2 := a.AlignPair(rs[i].Bases, rs[i+1].Bases)
		if r1.Flags&agd.FlagPaired == 0 || r2.Flags&agd.FlagPaired == 0 {
			t.Fatal("pair flags missing")
		}
		if r1.Flags&agd.FlagFirstInPair == 0 || r2.Flags&agd.FlagSecondInPair == 0 {
			t.Fatal("pair order flags missing")
		}
		if r1.Flags&agd.FlagProperPair == 0 {
			continue
		}
		proper++
		if r1.MateLocation != r2.Location || r2.MateLocation != r1.Location {
			t.Fatal("mate locations inconsistent")
		}
		if r1.TemplateLen != -r2.TemplateLen {
			t.Fatalf("TLEN not antisymmetric: %d %d", r1.TemplateLen, r2.TemplateLen)
		}
		d1 := r1.Location - origins[i].Pos
		if d1 < 0 {
			d1 = -d1
		}
		d2 := r2.Location - origins[i+1].Pos
		if d2 < 0 {
			d2 = -d2
		}
		if d1 <= 5 && d2 <= 5 {
			correct++
		}
	}
	if frac := float64(proper) / float64(len(rs)/2); frac < 0.9 {
		t.Fatalf("proper-pair fraction %.3f < 0.9", frac)
	}
	if frac := float64(correct) / float64(proper); frac < 0.95 {
		t.Fatalf("pair-correct fraction %.3f < 0.95", frac)
	}
}

func TestAlignPairFallback(t *testing.T) {
	g := testGenome(t, 100_000, 27)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 6})
	ref, err := g.Slice(1000, 80)
	if err != nil {
		t.Fatal(err)
	}
	junk := []byte("NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN")
	r1, r2 := a.AlignPair(ref, junk)
	if r1.IsUnmapped() {
		t.Fatal("mappable end unmapped")
	}
	if !r2.IsUnmapped() {
		t.Fatal("junk end mapped")
	}
	if r1.Flags&agd.FlagMateUnmapped == 0 {
		t.Fatal("mate-unmapped flag missing")
	}
}

func TestCigarMatchesReadLength(t *testing.T) {
	g := testGenome(t, 150_000, 28)
	idx := testIndex(t, g)
	a := NewAligner(idx, Config{MaxDist: 10})
	sim, err := reads.NewSimulator(g, reads.SimConfig{Seed: 8, N: 300, ReadLen: 75, ErrorRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := sim.All()
	for i := range rs {
		res := a.AlignRead(rs[i].Bases)
		if res.IsUnmapped() {
			continue
		}
		cig, err := align.ParseCigar(res.Cigar)
		if err != nil {
			t.Fatal(err)
		}
		if cig.ReadLen() != len(rs[i].Bases) {
			t.Fatalf("cigar %s consumes %d bases, read is %d", res.Cigar, cig.ReadLen(), len(rs[i].Bases))
		}
	}
}

func TestConfigValidate(t *testing.T) {
	g := testGenome(t, 50_000, 29)
	idx := testIndex(t, g)
	if err := (Config{MinInsert: 500, MaxInsert: 100}).Validate(idx); err == nil {
		t.Fatal("inverted insert bounds accepted")
	}
	if err := (Config{}).Validate(idx); err != nil {
		t.Fatal(err)
	}
}
