package align

// Smith-Waterman kernels: the seed-extension scoring BWA-MEM uses. Scores
// follow BWA-MEM's defaults (match +1, mismatch -4, gap open -6, gap
// extend -1).

// Scoring holds affine-gap alignment parameters.
type Scoring struct {
	Match     int32 // added per matching base (positive)
	Mismatch  int32 // added per mismatching base (negative)
	GapOpen   int32 // cost to open a gap (negative)
	GapExtend int32 // cost to extend a gap by one base (negative)
}

// DefaultScoring returns BWA-MEM's default scoring.
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: -4, GapOpen: -6, GapExtend: -1}
}

func (s Scoring) sub(a, b byte) int32 {
	if a == b && a != 'N' && a != 'n' {
		return s.Match
	}
	return s.Mismatch
}

// SWResult is the outcome of a local alignment.
type SWResult struct {
	Score    int32
	QueryBeg int // first aligned query index
	QueryEnd int // one past last aligned query index
	RefBeg   int // first aligned ref index
	RefEnd   int // one past last aligned ref index
	Cigar    Cigar
}

const swNeg = int32(-1 << 29)

// swMatrices fills the affine-gap DP matrices for query x ref. local
// selects Smith-Waterman (floor at 0) versus Needleman-Wunsch boundaries.
func swMatrices(query, ref []byte, sc Scoring, local bool) (h, e, f []int32) {
	m, n := len(query), len(ref)
	width := n + 1
	h = make([]int32, (m+1)*width)
	e = make([]int32, (m+1)*width)
	f = make([]int32, (m+1)*width)
	for i := range e {
		e[i], f[i] = swNeg, swNeg
	}
	if !local {
		for j := 1; j <= n; j++ {
			h[j] = sc.GapOpen + int32(j)*sc.GapExtend
			e[j] = h[j]
		}
		for i := 1; i <= m; i++ {
			h[i*width] = sc.GapOpen + int32(i)*sc.GapExtend
			f[i*width] = h[i*width]
		}
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			idx := i*width + j
			eo := h[idx-1] + sc.GapOpen + sc.GapExtend
			ee := e[idx-1] + sc.GapExtend
			if eo >= ee {
				e[idx] = eo
			} else {
				e[idx] = ee
			}
			fo := h[idx-width] + sc.GapOpen + sc.GapExtend
			fe := f[idx-width] + sc.GapExtend
			if fo >= fe {
				f[idx] = fo
			} else {
				f[idx] = fe
			}
			v := h[idx-width-1] + sc.sub(query[i-1], ref[j-1])
			if e[idx] > v {
				v = e[idx]
			}
			if f[idx] > v {
				v = f[idx]
			}
			if local && v < 0 {
				v = 0
			}
			h[idx] = v
		}
	}
	return h, e, f
}

// traceback recovers the alignment path ending at (bi, bj) by walking the
// three matrices with an explicit state machine (state H, in-E-gap,
// in-F-gap), which is required for correct multi-base affine gaps.
func traceback(query, ref []byte, sc Scoring, h, e, f []int32, bi, bj int, local bool) (Cigar, int, int) {
	width := len(ref) + 1
	var rev Cigar
	i, j := bi, bj
	const (
		stH = iota
		stE
		stF
	)
	state := stH
	for i > 0 || j > 0 {
		idx := i*width + j
		switch state {
		case stH:
			if local && h[idx] == 0 {
				// Start of the local alignment.
				return reverseCigar(rev), i, j
			}
			if i > 0 && j > 0 && h[idx] == h[idx-width-1]+sc.sub(query[i-1], ref[j-1]) {
				rev = append(rev, CigarElem{Len: 1, Op: CigarMatch})
				i, j = i-1, j-1
				continue
			}
			if h[idx] == e[idx] {
				state = stE
				continue
			}
			if h[idx] == f[idx] {
				state = stF
				continue
			}
			// Global boundary rows reduce to pure gaps.
			if i == 0 && j > 0 {
				rev = append(rev, CigarElem{Len: j, Op: CigarDel})
				j = 0
				continue
			}
			if j == 0 && i > 0 {
				rev = append(rev, CigarElem{Len: i, Op: CigarIns})
				i = 0
				continue
			}
			return reverseCigar(rev), i, j
		case stE:
			rev = append(rev, CigarElem{Len: 1, Op: CigarDel})
			if j > 0 && e[idx] == h[idx-1]+sc.GapOpen+sc.GapExtend {
				state = stH
			}
			j--
		case stF:
			rev = append(rev, CigarElem{Len: 1, Op: CigarIns})
			if i > 0 && f[idx] == h[idx-width]+sc.GapOpen+sc.GapExtend {
				state = stH
			}
			i--
		}
	}
	return reverseCigar(rev), i, j
}

func reverseCigar(rev Cigar) Cigar {
	out := make(Cigar, 0, len(rev))
	for k := len(rev) - 1; k >= 0; k-- {
		out = append(out, rev[k])
	}
	return out.Canonical()
}

// SmithWaterman computes an affine-gap local alignment of query against ref
// with full DP and traceback. O(m·n) time and space — used on seed-extension
// windows (hundreds of bases), not whole genomes.
func SmithWaterman(query, ref []byte, sc Scoring) SWResult {
	m, n := len(query), len(ref)
	if m == 0 || n == 0 {
		return SWResult{}
	}
	h, e, f := swMatrices(query, ref, sc, true)
	width := n + 1
	var best int32
	bi, bj := 0, 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			if v := h[i*width+j]; v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best <= 0 {
		return SWResult{}
	}
	cigar, qi, ri := traceback(query, ref, sc, h, e, f, bi, bj, true)
	return SWResult{
		Score:    best,
		QueryBeg: qi, QueryEnd: bi,
		RefBeg: ri, RefEnd: bj,
		Cigar: cigar,
	}
}

// GlobalAffine aligns all of query against all of ref with affine gaps
// (Needleman-Wunsch), returning score and CIGAR. Used to finish BWA-style
// extensions across a fixed window.
func GlobalAffine(query, ref []byte, sc Scoring) (int32, Cigar) {
	m, n := len(query), len(ref)
	if m == 0 {
		if n == 0 {
			return 0, nil
		}
		return sc.GapOpen + int32(n)*sc.GapExtend, Cigar{{Len: n, Op: CigarDel}}
	}
	if n == 0 {
		return sc.GapOpen + int32(m)*sc.GapExtend, Cigar{{Len: m, Op: CigarIns}}
	}
	h, e, f := swMatrices(query, ref, sc, false)
	width := n + 1
	cigar, _, _ := traceback(query, ref, sc, h, e, f, m, n, false)
	return h[m*width+n], cigar
}
