package align

// Edit-distance kernels. SNAP verifies each candidate location with a
// bounded edit-distance computation — the "short but frequent calls to a
// local alignment edit distance function" that make it core-bound (§6). The
// hot path uses the Landau-Vishkin diagonal algorithm (distance only); the
// winning candidate is re-aligned with a banded DP to recover the CIGAR.

// EditDistance computes the unbounded Levenshtein distance between query
// and ref with full dynamic programming. O(len(query)·len(ref)); used as
// the reference implementation in tests and for tiny inputs.
func EditDistance(query, ref []byte) int {
	m, n := len(query), len(ref)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if query[i-1] == ref[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if d := prev[j] + 1; d < best {
				best = d
			}
			if d := cur[j-1] + 1; d < best {
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// LandauVishkin computes the edit distance between query and ref if it is
// at most maxK, or -1 otherwise. The ref should be a window of at least
// len(query) bases (len(query)+maxK to allow trailing deletions); trailing
// unconsumed ref is free, i.e. the query is aligned globally against a ref
// prefix. O((maxK+1)²) time beyond the furthest-reach scans.
func LandauVishkin(query, ref []byte, maxK int) int {
	dist, _ := LandauVishkinOps(query, ref, maxK)
	return dist
}

// LandauVishkinOps is LandauVishkin plus a count of the serially dependent
// operations performed (diagonal updates and exact-match extension
// comparisons). The count feeds the Fig. 8 workload analysis: these short
// data-dependent loops are what make SNAP core bound (§6).
func LandauVishkinOps(query, ref []byte, maxK int) (dist, ops int) {
	var s LVScratch
	return s.DistanceOps(query, ref, maxK)
}

// LVScratch carries the two diagonal rows of the Landau-Vishkin kernel so a
// long-lived caller (an aligner verifying thousands of candidates per chunk)
// performs no per-call allocation. The zero value is ready to use; an
// LVScratch must not be shared between goroutines.
type LVScratch struct {
	cur, next []int
}

// DistanceOps is LandauVishkinOps computing into the scratch rows.
func (s *LVScratch) DistanceOps(query, ref []byte, maxK int) (dist, ops int) {
	m := len(query)
	if m == 0 {
		return 0, 0
	}
	if maxK < 0 {
		return -1, 0
	}
	// L[d] = furthest query index reached on diagonal d (ref index =
	// query index + d) with the current number of edits. Diagonals are
	// offset by maxK to index the slice.
	size := 2*maxK + 1
	if cap(s.cur) < size {
		s.cur = make([]int, size)
		s.next = make([]int, size)
	}
	cur, next := s.cur[:size], s.next[:size]
	for i := range cur {
		cur[i] = -2 // unreachable
	}
	for i := range next {
		next[i] = -2 // unreachable until written by the band sweep
	}
	// 0 edits: only diagonal 0, extend exact match.
	reach := extend(query, ref, 0, 0)
	ops += reach + 1
	if reach == m {
		return 0, ops
	}
	cur[maxK] = reach

	for e := 1; e <= maxK; e++ {
		lo, hi := -e, e
		if lo < -maxK {
			lo = -maxK
		}
		if hi > maxK {
			hi = maxK
		}
		for d := lo; d <= hi; d++ {
			// Best query index reachable on diagonal d with e edits:
			// substitution from (d, e-1), insertion (query base consumed)
			// from (d+1, e-1), deletion (ref base consumed) from (d-1, e-1).
			best := -1
			if v := get(cur, maxK, d); v >= 0 && v+1 > best {
				best = v + 1
			}
			if v := get(cur, maxK, d+1); v >= 0 && v+1 > best {
				best = v + 1
			}
			if v := get(cur, maxK, d-1); v >= 0 && v > best {
				best = v
			}
			if best < 0 {
				next[maxK+d] = -2 // diagonal still unreachable
				continue
			}
			if best > m {
				best = m
			}
			// Extend along the diagonal with free exact matches. The
			// invariant best+d >= 0 holds inductively (j never goes
			// negative along any edit path).
			ext := extend(query[best:], ref, best+d, 0)
			ops += ext + 3 // the extension scan plus the diagonal update
			best += ext
			if best >= m {
				return e, ops
			}
			next[maxK+d] = best
		}
		cur, next = next, cur
		for i := range next {
			next[i] = -2
		}
	}
	return -1, ops
}

// get fetches the furthest reach for diagonal d, or -2 when out of band.
func get(row []int, maxK, d int) int {
	if d < -maxK || d > maxK {
		return -2
	}
	return row[maxK+d]
}

// extend counts exact matches of query[qi:] against ref[ri:].
func extend(query, ref []byte, ri, qi int) int {
	n := 0
	for qi+n < len(query) && ri+n < len(ref) && query[qi+n] == ref[ri+n] {
		n++
	}
	return n
}

// BoundedAlign aligns query globally against a prefix of ref with at most
// maxK edits, returning the distance, the CIGAR and the number of reference
// bases consumed. It returns dist = -1 if no alignment within maxK exists.
// Banded DP, O(len(query)·(2maxK+1)) time and space.
func BoundedAlign(query, ref []byte, maxK int) (dist int, cigar Cigar, refUsed int) {
	var s BandedScratch
	return s.BoundedAlign(query, ref, maxK)
}

// BandedScratch carries the DP table and CIGAR buffers of BoundedAlign so a
// long-lived caller performs no per-call allocation. The zero value is ready
// to use; a BandedScratch must not be shared between goroutines.
//
// The Cigar returned by its BoundedAlign aliases scratch storage: it is valid
// only until the next call, and callers that keep it must copy (or render it
// to text) first.
type BandedScratch struct {
	dp       []int32
	rev, out Cigar
}

// BoundedAlign is the package-level BoundedAlign computing into the scratch.
func (s *BandedScratch) BoundedAlign(query, ref []byte, maxK int) (dist int, cigar Cigar, refUsed int) {
	m := len(query)
	if m == 0 {
		return 0, nil, 0
	}
	if maxK < 0 {
		return -1, nil, 0
	}
	w := 2*maxK + 1
	const inf = 1 << 29
	// dp[i*w + (j-i+maxK)] = distance aligning query[:i] with ref[:j].
	need := (m + 1) * w
	if cap(s.dp) < need {
		s.dp = make([]int32, need)
	}
	dp := s.dp[:need]
	for i := range dp {
		dp[i] = inf
	}
	at := func(i, j int) int32 {
		d := j - i + maxK
		if d < 0 || d >= w || j < 0 || j > len(ref) {
			return inf
		}
		return dp[i*w+d]
	}
	set := func(i, j int, v int32) {
		dp[i*w+(j-i+maxK)] = v
	}
	for j := 0; j <= maxK && j <= len(ref); j++ {
		set(0, j, int32(j)) // leading deletions
	}
	for i := 1; i <= m; i++ {
		lo, hi := i-maxK, i+maxK
		if lo < 0 {
			lo = 0
		}
		if hi > len(ref) {
			hi = len(ref)
		}
		for j := lo; j <= hi; j++ {
			best := int32(inf)
			if j > 0 {
				cost := int32(1)
				if query[i-1] == ref[j-1] {
					cost = 0
				}
				if v := at(i-1, j-1) + cost; v < best {
					best = v
				}
				if v := at(i, j-1) + 1; v < best { // deletion (ref consumed)
					best = v
				}
			}
			if v := at(i-1, j) + 1; v < best { // insertion (query consumed)
				best = v
			}
			set(i, j, best)
		}
	}
	// Answer: best dp[m][j] over the band; trailing ref is free.
	bestJ, bestD := -1, int32(inf)
	for j := m - maxK; j <= m+maxK; j++ {
		if j < 0 || j > len(ref) {
			continue
		}
		if v := at(m, j); v < bestD {
			bestD, bestJ = v, j
		}
	}
	if bestD > int32(maxK) {
		return -1, nil, 0
	}

	// Traceback.
	rev := s.rev[:0]
	i, j := m, bestJ
	for i > 0 || j > 0 {
		v := at(i, j)
		if i > 0 && j > 0 {
			cost := int32(1)
			if query[i-1] == ref[j-1] {
				cost = 0
			}
			if at(i-1, j-1)+cost == v {
				rev = append(rev, CigarElem{Len: 1, Op: CigarMatch})
				i, j = i-1, j-1
				continue
			}
		}
		if i > 0 && at(i-1, j)+1 == v {
			rev = append(rev, CigarElem{Len: 1, Op: CigarIns})
			i--
			continue
		}
		if j > 0 && at(i, j-1)+1 == v {
			rev = append(rev, CigarElem{Len: 1, Op: CigarDel})
			j--
			continue
		}
		// Unreachable given a consistent DP table.
		break
	}
	s.rev = rev
	// Reverse and run-length merge in one pass (Canonical without the copy).
	out := s.out[:0]
	for k := len(rev) - 1; k >= 0; k-- {
		e := rev[k]
		if e.Len == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Op == e.Op {
			out[len(out)-1].Len += e.Len
			continue
		}
		out = append(out, e)
	}
	s.out = out
	return int(bestD), out, bestJ
}
