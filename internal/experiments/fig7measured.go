package experiments

import (
	"context"
	"fmt"
	"io"

	"persona/internal/agd"
	"persona/internal/cluster"
)

// Fig7MeasuredPoint is one real node-sweep sample.
type Fig7MeasuredPoint struct {
	Nodes       int
	BasesPerSec float64
	Imbalance   float64
}

// RunFig7Measured runs the real distributed runtime (TCP manifest server +
// in-process worker nodes) for each node count. On a small machine the
// nodes share cores, so throughput validates functionality and the
// imbalance claim, not paper-scale linearity — that comes from the DES.
func RunFig7Measured(ctx context.Context, w io.Writer, sc Scale, nodeCounts []int) ([]Fig7MeasuredPoint, error) {
	var out []Fig7MeasuredPoint
	section(w, "Figure 7 (measured): real distributed runtime")
	fmt.Fprintf(w, "workload: %s\n", sc)
	for _, n := range nodeCounts {
		store := agd.NewMemStore()
		f, err := sc.fixture(store, "ds", false)
		if err != nil {
			return nil, err
		}
		report, _, err := cluster.Align(ctx, store, "ds", f.Index, cluster.Config{
			Nodes: n, ThreadsPerNode: 1,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7MeasuredPoint{Nodes: n, BasesPerSec: report.BasesPerSec, Imbalance: report.Imbalance})
		fmt.Fprintf(w, "%3d nodes  %10.2f Mbases/s  completion imbalance %.1f%%\n",
			n, report.BasesPerSec/1e6, report.Imbalance*100)
	}
	fmt.Fprintln(w, "paper: no measurable completion-time imbalance across nodes")
	return out, nil
}
