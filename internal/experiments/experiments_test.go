package experiments

import (
	"io"
	"strings"
	"testing"
)

// tinyScale keeps the experiment smoke tests fast while staying large
// enough that per-run constant overheads do not swamp the timing shapes.
func tinyScale() Scale {
	return Scale{GenomeSize: 200_000, NumReads: 2500, ReadLen: 80, ChunkSize: 250, DupFrac: 0.15, Seed: 3}
}

func TestTable1Simulated(t *testing.T) {
	rows, err := Table1Simulated(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestTable1Measured(t *testing.T) {
	res, err := RunTable1Measured(t.Context(), io.Discard, tinyScale(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// The AGD write-amplification advantage must hold at any scale: the
	// standalone pipeline writes whole SAM rows, Persona writes only the
	// results column.
	if res.SNAPWriteBytes <= res.PersonaWriteBytes {
		t.Fatalf("SNAP wrote %d <= Persona %d", res.SNAPWriteBytes, res.PersonaWriteBytes)
	}
}

func TestTable2(t *testing.T) {
	res, err := RunTable2(t.Context(), io.Discard, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Shape: Persona fastest, Picard slowest.
	if res.PicardSlowdown < res.SamtoolsSlowdown {
		t.Fatalf("picard %.2fx faster than samtools %.2fx?", res.PicardSlowdown, res.SamtoolsSlowdown)
	}
	if res.SamtoolsConvSlowdown < res.SamtoolsSlowdown {
		t.Fatal("conversion made samtools faster")
	}
}

func TestDupmark(t *testing.T) {
	res, err := RunDupmark(t.Context(), io.Discard, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Fatalf("Persona dup marking ratio %.2f <= 1", res.Ratio)
	}
}

func TestConversion(t *testing.T) {
	res, err := RunConversion(t.Context(), io.Discard, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.ImportMBps <= 0 || res.BAMExportMBps <= 0 {
		t.Fatalf("bad throughputs: %+v", res)
	}
	// §5.7 shape: import (360 MB/s) outruns BAM export (82 MB/s).
	if res.ImportMBps <= res.BAMExportMBps {
		t.Fatalf("import %.1f MB/s <= export %.1f MB/s", res.ImportMBps, res.BAMExportMBps)
	}
}

func TestFigs(t *testing.T) {
	if _, err := RunFig5(io.Discard); err != nil {
		t.Fatal(err)
	}
	if pts := RunFig6(io.Discard); len(pts) != 48 {
		t.Fatalf("fig6 points = %d", len(pts))
	}
	if _, err := RunFig7(io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTable3(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestFig8(t *testing.T) {
	res, err := RunFig8(t.Context(), io.Discard, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 4 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	for _, b := range res.Profiles {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// The §6 claim must hold on real instrumented mixes.
	byName := map[string]int{}
	for i, b := range res.Profiles {
		byName[b.Name] = i
	}
	s := res.Profiles[byName["snap"]]
	b := res.Profiles[byName["bwa"]]
	if s.CoreBound <= s.MemoryBound {
		t.Fatalf("snap core %.3f <= memory %.3f", s.CoreBound, s.MemoryBound)
	}
	if b.MemoryBound <= b.CoreBound {
		t.Fatalf("bwa memory %.3f <= core %.3f", b.MemoryBound, b.CoreBound)
	}
}

func TestFig6Measured(t *testing.T) {
	pts, err := RunFig6Measured(t.Context(), io.Discard, tinyScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestFig7Measured(t *testing.T) {
	pts, err := RunFig7Measured(t.Context(), io.Discard, tinyScale(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.BasesPerSec <= 0 {
			t.Fatalf("no throughput at %d nodes", p.Nodes)
		}
	}
}

func TestScaleString(t *testing.T) {
	if !strings.Contains(SmallScale().String(), "reads=") {
		t.Fatal("Scale.String uninformative")
	}
}

func TestAblations(t *testing.T) {
	sc := tinyScale()
	rows, err := RunChunkSizeAblation(t.Context(), io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("chunk-size rows = %d", len(rows))
	}
	// Storage efficiency must improve (monotonically at these sizes) with
	// larger chunks.
	if rows[len(rows)-1].BytesPerRead >= rows[0].BytesPerRead {
		t.Fatalf("larger chunks did not compress better: %.1f vs %.1f B/read",
			rows[len(rows)-1].BytesPerRead, rows[0].BytesPerRead)
	}

	crows, err := RunCompressionAblation(t.Context(), io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompressionRow{}
	for _, r := range crows {
		byName[r.Name] = r
	}
	// Compaction packs 101 bases into 41 bytes: ≥2x smaller than raw.
	if byName["compact"].Bytes*2 >= byName["raw"].Bytes {
		t.Fatalf("compaction too weak: %d vs raw %d", byName["compact"].Bytes, byName["raw"].Bytes)
	}
	// The deployed combination must be the smallest.
	for _, name := range []string{"raw", "gzip", "compact"} {
		if byName["compact+gzip"].Bytes > byName[name].Bytes {
			t.Fatalf("compact+gzip (%d) larger than %s (%d)", byName["compact+gzip"].Bytes, name, byName[name].Bytes)
		}
	}

	srows, err := RunSubchunkAblation(t.Context(), io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(srows) != 4 {
		t.Fatalf("subchunk rows = %d", len(srows))
	}
}
