package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"persona/internal/agd"
	"persona/internal/align/bwa"
	"persona/internal/core"
	"persona/internal/genome"
	"persona/internal/perfmodel"
	"persona/internal/reads"
	"persona/internal/simulate"
	"persona/internal/tco"
)

// RunFig5 produces the Fig. 5 CPU-utilization traces at paper scale.
func RunFig5(w io.Writer) (map[string]simulate.PipelineResult, error) {
	traces, err := simulate.Fig5(simulate.DefaultPaperParams())
	if err != nil {
		return nil, err
	}
	section(w, "Figure 5 (paper scale, modeled): CPU utilization")
	for _, name := range []string{"snap-singledisk", "persona-singledisk", "snap-raid0", "persona-raid0"} {
		tr := traces[name]
		fmt.Fprintf(w, "%-20s total %6.0f s   avg CPU %5.1f%%\n", name, tr.Seconds, tr.AvgCPU*100)
	}
	// Render a coarse sparkline of the first minutes of the single-disk
	// traces so the cyclical pattern is visible in text output.
	for _, name := range []string{"snap-singledisk", "persona-singledisk"} {
		tr := traces[name]
		fmt.Fprintf(w, "%-20s ", name)
		for i := 0; i < len(tr.Trace) && i < 100; i += 2 {
			fmt.Fprint(w, sparkChar(tr.Trace[i].CPU))
		}
		fmt.Fprintln(w, "  (first 200 s, 1 char = 2 s)")
	}
	fmt.Fprintln(w, "paper: SNAP single-disk shows cyclical stalls from buffer-cache writeback; Persona stays CPU bound")
	return traces, nil
}

func sparkChar(v float64) string {
	levels := []string{"_", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}
	i := int(v * float64(len(levels)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(levels) {
		i = len(levels) - 1
	}
	return levels[i]
}

// RunFig6 prints the thread-scaling series at paper scale.
func RunFig6(w io.Writer) []simulate.Fig6Point {
	points := simulate.Fig6(simulate.DefaultPaperParams())
	section(w, "Figure 6 (paper scale, modeled): alignment rate vs threads (Mbases/s)")
	fmt.Fprintf(w, "%7s %10s %12s %10s %12s\n", "threads", "SNAP", "PersonaSNAP", "BWA", "PersonaBWA")
	for _, p := range points {
		if p.Threads%4 != 0 && p.Threads != 1 && p.Threads != 47 {
			continue
		}
		fmt.Fprintf(w, "%7d %10.1f %12.1f %10.1f %12.1f\n",
			p.Threads, p.SNAP/1e6, p.PersonaSNAP/1e6, p.BWA/1e6, p.PersonaBWA/1e6)
	}
	fmt.Fprintln(w, "paper: near-linear to 24, +32% per hyperthread, SNAP drops at 48, BWA flattens past 24")
	return points
}

// Fig6MeasuredPoint is one real thread-sweep sample.
type Fig6MeasuredPoint struct {
	Threads     int
	BasesPerSec float64
}

// RunFig6Measured sweeps executor threads 1..maxThreads with the real
// pipeline on a small dataset.
func RunFig6Measured(ctx context.Context, w io.Writer, sc Scale, maxThreads int) ([]Fig6MeasuredPoint, error) {
	var out []Fig6MeasuredPoint
	section(w, "Figure 6 (measured): real executor-thread sweep")
	fmt.Fprintf(w, "workload: %s\n", sc)
	for t := 1; t <= maxThreads; t++ {
		store := agd.NewMemStore()
		f, err := sc.fixture(store, "ds", false)
		if err != nil {
			return nil, err
		}
		report, _, err := core.Align(ctx, core.AlignConfig{
			Store: store, Dataset: "ds", Index: f.Index, ExecutorThreads: t,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6MeasuredPoint{Threads: t, BasesPerSec: report.BasesPerSec})
		fmt.Fprintf(w, "%7d threads  %10.2f Mbases/s\n", t, report.BasesPerSec/1e6)
	}
	return out, nil
}

// RunFig7 produces the cluster-scaling series at paper scale.
func RunFig7(w io.Writer) ([]simulate.Fig7Point, error) {
	counts := []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 60, 64, 72, 80, 90, 100}
	points, err := simulate.Fig7(simulate.DefaultPaperParams(), counts)
	if err != nil {
		return nil, err
	}
	section(w, "Figure 7 (paper scale, modeled): cluster throughput")
	fmt.Fprintf(w, "%7s %16s %12s\n", "nodes", "Gbases/s", "genome (s)")
	for _, p := range points {
		fmt.Fprintf(w, "%7d %16.3f %12.1f\n", p.Nodes, p.BasesPerSec/1e9, p.Seconds)
	}
	for _, p := range points {
		if p.Nodes == 32 {
			fmt.Fprintf(w, "32-node headline: %.3f Gbases/s, %.1f s/genome (paper: 1.353 Gbases/s, 16.7 s)\n",
				p.BasesPerSec/1e9, p.Seconds)
		}
	}
	fmt.Fprintln(w, "paper: linear to 32 nodes (measured) and ~60 nodes (simulated); write-limited beyond")
	return points, nil
}

// RunTable3 prints the TCO analysis.
func RunTable3(w io.Writer) (tco.Report, error) {
	r, err := tco.Default().Evaluate()
	if err != nil {
		return r, err
	}
	section(w, "Table 3: cluster TCO and alignment costs")
	fmt.Fprintf(w, "%-16s %10s %6s %12s\n", "Item", "Unit cost", "Units", "Total")
	for _, it := range r.Items {
		fmt.Fprintf(w, "%-16s $%9.0f %6d $%11.0f\n", it.Item, it.UnitCost, it.Units, it.Total)
	}
	fmt.Fprintf(w, "%-16s %17s $%11.0f   (paper: $613K)\n", "Total", "", r.HardwareTotal)
	fmt.Fprintf(w, "%-16s %17s $%11.0f   (paper: $943K)\n", "TCO(5yr)", "", r.TCO5yr)
	fmt.Fprintf(w, "Cost/Alignment (100%% util): %.2f¢   (paper: 6.07¢)\n", r.CostPerAlignment*100)
	fmt.Fprintf(w, "Single server: %.0f alignments/day at %.2f¢   (paper: ~144/day, 4.1¢)\n",
		r.SingleServerAlignmentsPerDay, r.SingleServerCostPerAlignment*100)
	fmt.Fprintf(w, "Storage: %.0f genomes capacity, $%.2f/genome   (paper: ~6000, $8.83)\n",
		r.GenomesStorable, r.StoragePerGenome)
	fmt.Fprintf(w, "Glacier 5yr/genome: $%.2f   (paper: $6.72)\n", r.GlacierPerGenome5yr)
	return r, nil
}

// Fig8Result bundles the aligner profiles with the SPEC references.
type Fig8Result struct {
	Profiles []perfmodel.Breakdown
	SPEC     []perfmodel.Breakdown
}

// RunFig8 runs both aligners on the scaled workload, collects their
// instrumented op mixes, and prints the top-down comparison of Fig. 8.
//
// The Fig. 8 workload uses a repeat-rich reference (hg19 is roughly 45%
// repetitive; the default synthetic config's 5% would starve SNAP of the
// candidate-verification work that dominates its real profile).
func RunFig8(ctx context.Context, w io.Writer, sc Scale) (*Fig8Result, error) {
	cfg := genome.DefaultSyntheticConfig(sc.GenomeSize, sc.Seed)
	cfg.RepeatFraction = 0.45
	g, err := genome.Synthesize(cfg)
	if err != nil {
		return nil, err
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: sc.Seed + 1, N: sc.NumReads, ReadLen: sc.ReadLen, ErrorRate: 0.003,
	})
	if err != nil {
		return nil, err
	}
	rs, _ := sim.All()
	snapIdx, err := buildSnapIndex(g)
	if err != nil {
		return nil, err
	}
	snapAligner := newSnapAligner(snapIdx)
	for i := range rs {
		snapAligner.AlignRead(rs[i].Bases)
	}
	ss := snapAligner.Stats()
	snapMix := perfmodel.SNAPMix(ss.Reads, ss.SeedLookups, ss.LVCells, ss.BytesCompared)
	// A megabase-scale synthetic reference cannot reproduce hg19's candidate
	// multiplicity (seed space 4^16 dwarfs it), so the measured mix is
	// extrapolated to paper scale: per-verification costs stay as measured,
	// verifications per read rise to the hg19 mean. See perfmodel docs.
	measuredVerifies := float64(ss.CandidatesxLV) / float64(ss.Reads)
	snapMix = perfmodel.ExtrapolateSNAPToHG19(snapMix, measuredVerifies)

	fmIdx, err := bwa.NewFMIndex(g)
	if err != nil {
		return nil, err
	}
	bwaAligner := bwa.NewAligner(fmIdx, g, bwa.Config{})
	for i := range rs {
		bwaAligner.AlignRead(rs[i].Bases)
	}
	bs := bwaAligner.Stats()
	bwaMix := perfmodel.BWAMix(bs.Reads, bs.FMProbes, bs.SWCells)

	res := &Fig8Result{SPEC: perfmodel.SPECReferences()}
	for _, ht := range []bool{false, true} {
		suffix := ""
		if ht {
			suffix = "+HT"
		}
		res.Profiles = append(res.Profiles,
			perfmodel.Profile("snap"+suffix, snapMix, ht),
			perfmodel.Profile("bwa"+suffix, bwaMix, ht),
		)
	}

	section(w, "Figure 8: workload top-down analysis (instrumented op mixes)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%-18s %9s %9s %9s %9s %9s %9s\n", "workload", "retiring", "badspec", "frontend", "backend", "core", "memory")
	for _, b := range append(res.Profiles, res.SPEC...) {
		fmt.Fprintf(w, "%-18s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			b.Name, b.Retiring*100, b.BadSpeculation*100, b.FrontendBound*100,
			b.BackendBound*100, b.CoreBound*100, b.MemoryBound*100)
	}
	fmt.Fprintln(w, "paper: both aligners backend bound; SNAP stalls in the core, BWA in memory; HT raises memory pressure")
	return res, nil
}

// ConversionResult holds the §5.7 conversion throughputs.
type ConversionResult struct {
	Scale         Scale
	ImportMBps    float64
	BAMExportMBps float64
}

// RunConversion measures FASTQ→AGD import and AGD→BAM export throughput.
func RunConversion(ctx context.Context, w io.Writer, sc Scale) (*ConversionResult, error) {
	g, rs, err := sc.simulatedReads()
	if err != nil {
		return nil, err
	}
	fq, err := fastqText(rs)
	if err != nil {
		return nil, err
	}

	store := agd.NewMemStore()
	start := time.Now()
	if _, _, err := importFASTQ(ctx, store, "conv", fq, agd.RefSeqsFromGenome(g), sc.ChunkSize); err != nil {
		return nil, err
	}
	importSecs := time.Since(start).Seconds()

	// Export needs an aligned dataset.
	store2 := agd.NewMemStore()
	f, err := sc.fixture(store2, "ds", true)
	if err != nil {
		return nil, err
	}
	cw := &discardCounter{}
	start = time.Now()
	if _, err := exportBAM(ctx, f.Dataset, cw); err != nil {
		return nil, err
	}
	exportSecs := time.Since(start).Seconds()

	res := &ConversionResult{
		Scale:         sc,
		ImportMBps:    float64(len(fq)) / 1e6 / importSecs,
		BAMExportMBps: float64(cw.n) / 1e6 / exportSecs,
	}
	section(w, "Conversion throughput (measured, §5.7)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "FASTQ import: %8.1f MB/s   (paper: 360 MB/s on 48 cores)\n", res.ImportMBps)
	fmt.Fprintf(w, "BAM export:   %8.1f MB/s   (paper: 82 MB/s; import should stay faster than export)\n", res.BAMExportMBps)
	return res, nil
}

type discardCounter struct{ n int64 }

func (d *discardCounter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}
