package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"persona/internal/agd"
	"persona/internal/core"
)

// Ablations quantify the design choices the paper argues for: AGD chunk
// size (§3: "The choice of chunk size is an important factor"), per-column
// block compression and base compaction (§3's two size optimizations), and
// the fine-grain subchunk split that motivates the executor (§4.3/Fig. 4:
// AGD chunks alone are "too coarse for threads and produce work imbalance").

// ChunkSizeRow is one row of the chunk-size ablation.
type ChunkSizeRow struct {
	ChunkSize    int
	Chunks       int
	StoredBytes  int64
	BytesPerRead float64
	ImportSecs   float64
	AlignSecs    float64
}

// RunChunkSizeAblation imports and aligns the same workload at several AGD
// chunk sizes, reporting storage efficiency (large chunks compress better)
// against pipeline latency granularity.
func RunChunkSizeAblation(ctx context.Context, w io.Writer, sc Scale) ([]ChunkSizeRow, error) {
	g, rs, err := sc.simulatedReads()
	if err != nil {
		return nil, err
	}
	idx, err := buildSnapIndex(g)
	if err != nil {
		return nil, err
	}
	fq, err := fastqText(rs)
	if err != nil {
		return nil, err
	}

	section(w, "Ablation: AGD chunk size (§3)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%10s %8s %14s %10s %10s %10s\n", "chunk", "chunks", "stored bytes", "B/read", "import(s)", "align(s)")
	var rows []ChunkSizeRow
	for _, chunkSize := range []int{50, 200, 1000, 4000} {
		if chunkSize > sc.NumReads {
			continue
		}
		store := agd.NewMemStore()
		start := time.Now()
		m, _, err := importFASTQ(ctx, store, "ds", fq, agd.RefSeqsFromGenome(g), chunkSize)
		if err != nil {
			return nil, err
		}
		importSecs := time.Since(start).Seconds()

		var stored int64
		names, err := store.List("ds/")
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			blob, err := store.Get(n)
			if err != nil {
				return nil, err
			}
			stored += int64(len(blob))
		}

		start = time.Now()
		if _, _, err := core.Align(ctx, core.AlignConfig{
			Store: store, Dataset: "ds", Index: idx, ExecutorThreads: 2,
		}); err != nil {
			return nil, err
		}
		alignSecs := time.Since(start).Seconds()

		row := ChunkSizeRow{
			ChunkSize:    chunkSize,
			Chunks:       len(m.Chunks),
			StoredBytes:  stored,
			BytesPerRead: float64(stored) / float64(sc.NumReads),
			ImportSecs:   importSecs,
			AlignSecs:    alignSecs,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%10d %8d %14d %10.1f %10.3f %10.3f\n",
			row.ChunkSize, row.Chunks, row.StoredBytes, row.BytesPerRead, row.ImportSecs, row.AlignSecs)
	}
	fmt.Fprintln(w, "expected: larger chunks amortize headers and compress better (fewer bytes/read);")
	fmt.Fprintln(w, "smaller chunks reduce per-chunk latency — the paper's storage-vs-latency tradeoff")
	return rows, nil
}

// CompressionRow is one row of the compression/compaction ablation.
type CompressionRow struct {
	Name       string
	Bytes      int64
	EncodeSecs float64
	DecodeSecs float64
}

// RunCompressionAblation measures the bases column under the four
// combinations of base compaction and gzip — the two size optimizations of
// §3 — over one paper-sized chunk (100k reads).
func RunCompressionAblation(ctx context.Context, w io.Writer, sc Scale) ([]CompressionRow, error) {
	g, rs, err := sc.simulatedReads()
	if err != nil {
		return nil, err
	}
	_ = g

	build := func(compact bool) *agd.Chunk {
		b := agd.NewChunkBuilder(agd.TypeCompactBases, 0)
		if !compact {
			b = agd.NewChunkBuilder(agd.TypeRaw, 0)
		}
		for i := range rs {
			if compact {
				b.AppendBases(rs[i].Bases)
			} else {
				b.Append(rs[i].Bases)
			}
		}
		return b.Chunk()
	}

	section(w, "Ablation: base compaction x block compression (§3)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%-24s %12s %12s %12s\n", "bases column encoding", "bytes", "encode(s)", "decode(s)")
	var rows []CompressionRow
	for _, cfg := range []struct {
		name    string
		compact bool
		comp    agd.Compression
	}{
		{"raw", false, agd.CompressNone},
		{"gzip", false, agd.CompressGzip},
		{"compact", true, agd.CompressNone},
		{"compact+gzip", true, agd.CompressGzip},
	} {
		chunk := build(cfg.compact)
		start := time.Now()
		blob, err := agd.EncodeChunk(chunk, cfg.comp)
		if err != nil {
			return nil, err
		}
		encodeSecs := time.Since(start).Seconds()
		start = time.Now()
		if _, err := agd.DecodeChunk(blob); err != nil {
			return nil, err
		}
		decodeSecs := time.Since(start).Seconds()
		row := CompressionRow{Name: cfg.name, Bytes: int64(len(blob)), EncodeSecs: encodeSecs, DecodeSecs: decodeSecs}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-24s %12d %12.4f %12.4f\n", row.Name, row.Bytes, row.EncodeSecs, row.DecodeSecs)
	}
	fmt.Fprintln(w, "expected: compaction alone ≈2.4x smaller than raw; gzip compounds it; the paper's")
	fmt.Fprintln(w, "deployment uses compact+gzip for bases (≈3.5 MB per 100k-read chunk at 101 bp)")
	return rows, nil
}

// SubchunkRow is one row of the subchunk-granularity ablation.
type SubchunkRow struct {
	Subchunks int
	AlignSecs float64
}

// RunSubchunkAblation aligns the same dataset with different fine-grain
// splits, demonstrating why the executor exists: one task per chunk leaves
// cores idle at chunk boundaries (the §4.3 straggler problem), while
// subchunking keeps them busy.
func RunSubchunkAblation(ctx context.Context, w io.Writer, sc Scale) ([]SubchunkRow, error) {
	section(w, "Ablation: fine-grain subchunk split (Fig. 4)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%10s %10s\n", "subchunks", "align(s)")
	var rows []SubchunkRow
	for _, sub := range []int{1, 2, 8, 32} {
		store := agd.NewMemStore()
		f, err := sc.fixture(store, "ds", false)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, _, err := core.Align(ctx, core.AlignConfig{
			Store: store, Dataset: "ds", Index: f.Index,
			ExecutorThreads: 2, Subchunks: sub,
			// A single aligner node with one chunk in flight exposes the
			// granularity effect: without subchunks the second core idles.
			AlignerNodes: 1, Readers: 1, Parsers: 1, Writers: 1,
		}); err != nil {
			return nil, err
		}
		row := SubchunkRow{Subchunks: sub, AlignSecs: time.Since(start).Seconds()}
		rows = append(rows, row)
		fmt.Fprintf(w, "%10d %10.3f\n", row.Subchunks, row.AlignSecs)
	}
	fmt.Fprintln(w, "expected: subchunks>1 engage both executor threads within a chunk; the paper's")
	fmt.Fprintln(w, "fix for AGD chunks being 'too coarse for threads' (§4.3)")
	return rows, nil
}
