package experiments

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"persona/internal/agd"
	"persona/internal/baseline"
	"persona/internal/core"
	"persona/internal/simulate"
)

// Table1Simulated reproduces Table 1 at paper scale with the calibrated
// fluid model.
func Table1Simulated(w io.Writer) ([]simulate.Table1Row, error) {
	p := simulate.DefaultPaperParams()
	rows, err := simulate.Table1(p)
	if err != nil {
		return nil, err
	}
	section(w, "Table 1 (paper scale, modeled)")
	fmt.Fprintf(w, "%-14s %10s %10s %8s   paper: SNAP/Persona/speedup\n", "Config", "SNAP(s)", "Persona(s)", "speedup")
	paper := map[string][3]string{
		"Disk(Single)": {"817", "501", "1.63"},
		"Disk(RAID)":   {"494", "499", "0.99"},
		"Network":      {"760", "493.5", "1.54"},
	}
	for _, r := range rows {
		pp := paper[r.Config]
		fmt.Fprintf(w, "%-14s %10.0f %10.0f %8.2f   %s / %s / %s\n",
			r.Config, r.SNAPSeconds, r.PersonaSeconds, r.Speedup, pp[0], pp[1], pp[2])
	}
	fmt.Fprintf(w, "%-14s %10.0f %10.0f %8.2f   18 GB / 15 GB / 1.2\n", "Data Read(GB)",
		p.FASTQReadBytes/1e9, p.AGDReadBytes/1e9, p.FASTQReadBytes/p.AGDReadBytes)
	fmt.Fprintf(w, "%-14s %10.0f %10.0f %8.2f   67 GB / 4 GB / 16.75\n", "Data Written",
		p.SAMWriteBytes/1e9, p.AGDWriteBytes/1e9, p.SAMWriteBytes/p.AGDWriteBytes)
	return rows, nil
}

// Table1Measured is one measured row of Table 1 at laptop scale.
type Table1Measured struct {
	Scale             Scale
	SNAPSeconds       float64
	PersonaSeconds    float64
	Speedup           float64
	SNAPReadBytes     int64
	SNAPWriteBytes    int64
	PersonaReadBytes  int64
	PersonaWriteBytes int64
}

// countingStore decorates a BlobStore with byte accounting; counters are
// atomic because pipeline reader/writer nodes run in parallel.
type countingStore struct {
	agd.BlobStore
	read, written atomic.Int64
}

func (c *countingStore) Get(name string) ([]byte, error) {
	b, err := c.BlobStore.Get(name)
	c.read.Add(int64(len(b)))
	return b, err
}

func (c *countingStore) Put(name string, data []byte) error {
	c.written.Add(int64(len(data)))
	return c.BlobStore.Put(name, data)
}

// RunTable1Measured runs the real single-server comparison on local files:
// the standalone row-oriented pipeline (gz FASTQ in → SAM text out) versus
// the Persona AGD dataflow pipeline, both with the same SNAP aligner
// underneath.
func RunTable1Measured(ctx context.Context, w io.Writer, sc Scale, dir string) (*Table1Measured, error) {
	g, rs, err := sc.simulatedReads()
	if err != nil {
		return nil, err
	}
	idx, err := buildSnapIndex(g)
	if err != nil {
		return nil, err
	}
	fq, err := fastqText(rs)
	if err != nil {
		return nil, err
	}

	// Standalone input: gzipped FASTQ on disk.
	gzPath := filepath.Join(dir, "reads.fastq.gz")
	gzFile, err := os.Create(gzPath)
	if err != nil {
		return nil, err
	}
	zw := gzip.NewWriter(gzFile)
	if _, err := zw.Write([]byte(fq)); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	if err := gzFile.Close(); err != nil {
		return nil, err
	}

	// Persona input: AGD dataset on a local DirStore.
	dirStore, err := agd.NewDirStore(filepath.Join(dir, "agd"))
	if err != nil {
		return nil, err
	}
	store := &countingStore{BlobStore: dirStore}
	if _, err := sc.fixture(store, "ds", false); err != nil {
		return nil, err
	}
	store.read.Store(0) // count only the alignment phase
	store.written.Store(0)

	// Run 1: standalone.
	in, err := os.Open(gzPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	samOut, err := os.Create(filepath.Join(dir, "out.sam"))
	if err != nil {
		return nil, err
	}
	defer samOut.Close()
	cr := &baseline.CountingReader{R: in}
	cw := &baseline.CountingWriter{W: samOut}
	snapStart := time.Now()
	if _, err := baseline.RunStandaloneAligner(idx, agd.RefSeqsFromGenome(g), cr, cw, baseline.StandaloneConfig{
		Threads: 2, Gzipped: true,
	}); err != nil {
		return nil, err
	}
	snapSecs := time.Since(snapStart).Seconds()

	// Run 2: Persona AGD pipeline.
	personaStart := time.Now()
	if _, _, err := core.Align(ctx, core.AlignConfig{
		Store: store, Dataset: "ds", Index: idx, ExecutorThreads: 2,
	}); err != nil {
		return nil, err
	}
	personaSecs := time.Since(personaStart).Seconds()

	res := &Table1Measured{
		Scale:             sc,
		SNAPSeconds:       snapSecs,
		PersonaSeconds:    personaSecs,
		Speedup:           snapSecs / personaSecs,
		SNAPReadBytes:     cr.N,
		SNAPWriteBytes:    cw.N,
		PersonaReadBytes:  store.read.Load(),
		PersonaWriteBytes: store.written.Load(),
	}
	section(w, "Table 1 (measured, laptop scale)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%-22s %12s %12s\n", "", "SNAP-style", "Persona-AGD")
	fmt.Fprintf(w, "%-22s %12.2f %12.2f   (speedup %.2fx)\n", "alignment time (s)", res.SNAPSeconds, res.PersonaSeconds, res.Speedup)
	fmt.Fprintf(w, "%-22s %12d %12d   (ratio %.2fx)\n", "bytes read", res.SNAPReadBytes, res.PersonaReadBytes,
		float64(res.SNAPReadBytes)/float64(res.PersonaReadBytes))
	fmt.Fprintf(w, "%-22s %12d %12d   (ratio %.2fx; paper: 16.75x)\n", "bytes written", res.SNAPWriteBytes, res.PersonaWriteBytes,
		float64(res.SNAPWriteBytes)/float64(res.PersonaWriteBytes))
	fmt.Fprintln(w, "note: with a tiny workload on a fast local filesystem both pipelines are compute")
	fmt.Fprintln(w, "bound (the paper's RAID row); AGD's time advantage appears when storage bandwidth")
	fmt.Fprintln(w, "is the constraint (modeled rows above) — the write-volume advantage appears at any scale")
	return res, nil
}
