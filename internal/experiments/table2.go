package experiments

import (
	"context"
	"bytes"
	"fmt"
	"io"
	"time"

	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/baseline"
	"persona/internal/formats/sam"
	"persona/internal/markdup"
)

// Table2Result holds the measured sort comparison (paper Table 2).
type Table2Result struct {
	Scale                Scale
	PersonaSeconds       float64
	SamtoolsSeconds      float64
	SamtoolsConvSeconds  float64 // conversion + sort
	PicardSeconds        float64
	SamtoolsSlowdown     float64
	SamtoolsConvSlowdown float64
	PicardSlowdown       float64
}

// RunTable2 measures full-dataset sorting: Persona's AGD external merge
// sort versus the samtools-style BAM sort (with and without the SAM→BAM
// conversion) and the Picard-style single-threaded sort.
func RunTable2(ctx context.Context, w io.Writer, sc Scale) (*Table2Result, error) {
	store := agd.NewMemStore()
	f, err := sc.fixture(store, "ds", true)
	if err != nil {
		return nil, err
	}

	// Render the row-oriented inputs the baselines need.
	var samText bytes.Buffer
	if _, err := sam.Export(ctx, f.Dataset, &samText); err != nil {
		return nil, err
	}
	refs := f.Dataset.Manifest.RefSeqs
	var bamBlob bytes.Buffer
	if _, err := baseline.ConvertSAMToBAM(bytes.NewReader(samText.Bytes()), &bamBlob, refs); err != nil {
		return nil, err
	}

	res := &Table2Result{Scale: sc}

	start := time.Now()
	if _, err := agdsort.SortDataset(ctx, f.Dataset, agdsort.Options{By: agdsort.ByLocation, OutputName: "sorted"}); err != nil {
		return nil, err
	}
	res.PersonaSeconds = time.Since(start).Seconds()

	start = time.Now()
	var sortedBAM bytes.Buffer
	if _, err := baseline.SamtoolsSortBAM(bytes.NewReader(bamBlob.Bytes()), &sortedBAM); err != nil {
		return nil, err
	}
	res.SamtoolsSeconds = time.Since(start).Seconds()

	start = time.Now()
	var convBAM, sortedBAM2 bytes.Buffer
	if _, err := baseline.ConvertSAMToBAM(bytes.NewReader(samText.Bytes()), &convBAM, refs); err != nil {
		return nil, err
	}
	if _, err := baseline.SamtoolsSortBAM(bytes.NewReader(convBAM.Bytes()), &sortedBAM2); err != nil {
		return nil, err
	}
	res.SamtoolsConvSeconds = time.Since(start).Seconds()

	start = time.Now()
	var sortedSAM bytes.Buffer
	if _, err := baseline.PicardSortSAM(bytes.NewReader(samText.Bytes()), &sortedSAM, refs); err != nil {
		return nil, err
	}
	res.PicardSeconds = time.Since(start).Seconds()

	res.SamtoolsSlowdown = res.SamtoolsSeconds / res.PersonaSeconds
	res.SamtoolsConvSlowdown = res.SamtoolsConvSeconds / res.PersonaSeconds
	res.PicardSlowdown = res.PicardSeconds / res.PersonaSeconds

	section(w, "Table 2 (measured): dataset sort time")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%-26s %10s %10s   paper\n", "Tool", "time (s)", "vs Persona")
	fmt.Fprintf(w, "%-26s %10.3f %10.2f   1.0x\n", "Persona (AGD merge sort)", res.PersonaSeconds, 1.0)
	fmt.Fprintf(w, "%-26s %10.3f %10.2f   1.54x\n", "Samtools-style (BAM)", res.SamtoolsSeconds, res.SamtoolsSlowdown)
	fmt.Fprintf(w, "%-26s %10.3f %10.2f   2.32x\n", "Samtools w/ conversion", res.SamtoolsConvSeconds, res.SamtoolsConvSlowdown)
	fmt.Fprintf(w, "%-26s %10.3f %10.2f   5.15x\n", "Picard-style (SAM, 1 thr)", res.PicardSeconds, res.PicardSlowdown)
	return res, nil
}

// DupmarkResult holds the §5.6 duplicate-marking comparison.
type DupmarkResult struct {
	Scale                 Scale
	PersonaReadsPerSec    float64
	SamblasterReadsPerSec float64
	Ratio                 float64
}

// RunDupmark measures duplicate marking: Persona over the results column
// versus the Samblaster-style SAM streaming marker.
func RunDupmark(ctx context.Context, w io.Writer, sc Scale) (*DupmarkResult, error) {
	store := agd.NewMemStore()
	f, err := sc.fixture(store, "ds", true)
	if err != nil {
		return nil, err
	}
	var samText bytes.Buffer
	if _, err := sam.Export(ctx, f.Dataset, &samText); err != nil {
		return nil, err
	}
	refs := f.Dataset.Manifest.RefSeqs

	start := time.Now()
	stats, err := markdup.MarkDataset(ctx, f.Dataset)
	if err != nil {
		return nil, err
	}
	personaSecs := time.Since(start).Seconds()

	start = time.Now()
	var out bytes.Buffer
	bstats, err := baseline.SamblasterMark(bytes.NewReader(samText.Bytes()), &out, refs)
	if err != nil {
		return nil, err
	}
	samblasterSecs := time.Since(start).Seconds()

	res := &DupmarkResult{
		Scale:                 sc,
		PersonaReadsPerSec:    float64(stats.Reads) / personaSecs,
		SamblasterReadsPerSec: float64(bstats.Reads) / samblasterSecs,
	}
	res.Ratio = res.PersonaReadsPerSec / res.SamblasterReadsPerSec

	section(w, "Duplicate marking (measured, §5.6)")
	fmt.Fprintf(w, "workload: %s\n", sc)
	fmt.Fprintf(w, "%-26s %14.0f reads/s\n", "Persona (results column)", res.PersonaReadsPerSec)
	fmt.Fprintf(w, "%-26s %14.0f reads/s\n", "Samblaster-style (SAM)", res.SamblasterReadsPerSec)
	fmt.Fprintf(w, "ratio %.2fx (paper: 1.36M vs 365K reads/s = 3.7x)\n", res.Ratio)
	return res, nil
}
