// Package experiments implements the evaluation harness: one entry point
// per table and figure of the paper's §5/§6, each producing both the
// paper-scale modeled numbers (via internal/simulate, internal/tco,
// internal/perfmodel) and, where the experiment is measurable on a small
// machine, real measurements over synthetic workloads. The persona-bench
// command and the repository's testing.B benchmarks are thin wrappers
// around this package; EXPERIMENTS.md records representative output.
package experiments

import (
	"context"
	"bytes"
	"fmt"
	"io"
	"strings"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/formats/bam"
	"persona/internal/formats/fastq"
	"persona/internal/genome"
	"persona/internal/reads"
	"persona/internal/testutil"
)

// Scale sizes the measured (laptop-scale) experiments. The paper's dataset
// is 223M 101-bp reads against hg19; measured runs here default to a small
// synthetic slice of that workload and print their parameters.
type Scale struct {
	GenomeSize int
	NumReads   int
	ReadLen    int
	ChunkSize  int
	DupFrac    float64
	Seed       int64
}

// SmallScale fits a 2-core CI box (a few seconds per experiment).
func SmallScale() Scale {
	return Scale{GenomeSize: 400_000, NumReads: 4000, ReadLen: 101, ChunkSize: 500, DupFrac: 0.15, Seed: 1}
}

func (s Scale) String() string {
	return fmt.Sprintf("genome=%d bases, reads=%d x %d bp, chunk=%d, dup=%.0f%%",
		s.GenomeSize, s.NumReads, s.ReadLen, s.ChunkSize, s.DupFrac*100)
}

// fixture builds an aligned dataset for measured experiments.
func (s Scale) fixture(store agd.BlobStore, name string, aligned bool) (*testutil.Fixture, error) {
	return testutil.BuildE(store, name, testutil.Config{
		GenomeSize: s.GenomeSize,
		NumReads:   s.NumReads,
		ReadLen:    s.ReadLen,
		ChunkSize:  s.ChunkSize,
		DupFrac:    s.DupFrac,
		Seed:       s.Seed,
		SkipAlign:  !aligned,
	})
}

// simulatedReads renders the scale's read set.
func (s Scale) simulatedReads() (*genome.Genome, []reads.Read, error) {
	g, err := genome.Synthesize(genome.DefaultSyntheticConfig(s.GenomeSize, s.Seed))
	if err != nil {
		return nil, nil, err
	}
	sim, err := reads.NewSimulator(g, reads.SimConfig{
		Seed: s.Seed + 1, N: s.NumReads, ReadLen: s.ReadLen,
		ErrorRate: 0.003, DuplicateFraction: s.DupFrac,
	})
	if err != nil {
		return nil, nil, err
	}
	rs, _ := sim.All()
	return g, rs, nil
}

// fastqText renders reads as FASTQ.
func fastqText(rs []reads.Read) (string, error) {
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	for i := range rs {
		if err := w.Write(&rs[i]); err != nil {
			return "", err
		}
	}
	if err := w.Flush(); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// buildSnapIndex is shared by measured experiments.
func buildSnapIndex(g *genome.Genome) (*snap.Index, error) {
	return snap.BuildIndex(g, snap.IndexConfig{SeedLen: 16})
}

// newSnapAligner returns an aligner with the experiments' standard tuning.
func newSnapAligner(idx *snap.Index) *snap.Aligner {
	return snap.NewAligner(idx, snap.Config{MaxDist: 10})
}

// importFASTQ wraps fastq.Import for the conversion experiment.
func importFASTQ(ctx context.Context, store agd.BlobStore, name, text string, refs []agd.RefSeq, chunkSize int) (*agd.Manifest, uint64, error) {
	return fastq.Import(ctx, store, name, strings.NewReader(text), fastq.ImportOptions{ChunkSize: chunkSize, RefSeqs: refs})
}

// exportBAM wraps bam.Export for the conversion experiment.
func exportBAM(ctx context.Context, ds *agd.Dataset, w io.Writer) (uint64, error) {
	return bam.Export(ctx, ds, w)
}

// section prints a header for an experiment section.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
