package agd

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// This file is the range-read surface of the storage tiering layer: callers
// that need only a slice of a blob — the 40-byte chunk header for an
// existence/metadata probe, or header + index without the (much larger) data
// block — can fetch exactly those bytes instead of the whole object. On
// DirStore, adjacent ranges coalesce into one preadv-style vectored syscall
// (store_linux.go; portable ReadAt fallback in store_portable.go).

// ByteRange addresses Len bytes at Off within a blob.
type ByteRange struct {
	Off int64
	Len int
}

// RangeBlobStore is a BlobStore that can serve sub-ranges of a blob without
// materializing the rest of it.
type RangeBlobStore interface {
	BlobStore
	// GetRange returns exactly n bytes of the blob at off. It fails with
	// ErrNotFound if the blob does not exist and io.ErrUnexpectedEOF if the
	// blob is shorter than off+n.
	GetRange(name string, off int64, n int) ([]byte, error)
	// GetRanges returns one buffer per range, in order, with the same error
	// contract as GetRange. Implementations coalesce adjacent ranges where
	// the backend allows (DirStore turns a contiguous run into a single
	// vectored read scattered across the result buffers).
	GetRanges(name string, ranges []ByteRange) ([][]byte, error)
}

// RangeOf returns store as a RangeBlobStore: native implementations
// (MemStore, DirStore) pass through, anything else is emulated over full
// Gets — correct everywhere, byte-saving only where the store cooperates.
func RangeOf(store BlobStore) RangeBlobStore {
	if rs, ok := store.(RangeBlobStore); ok {
		return rs
	}
	return rangeAdapter{store}
}

// rangeAdapter emulates range reads on a plain BlobStore by slicing the full
// blob.
type rangeAdapter struct {
	BlobStore
}

func sliceRange(blob []byte, name string, off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(blob)) {
		return nil, fmt.Errorf("get range %q [%d:+%d]: %w", name, off, n, io.ErrUnexpectedEOF)
	}
	return blob[off : off+int64(n)], nil
}

func (a rangeAdapter) GetRange(name string, off int64, n int) ([]byte, error) {
	blob, err := a.Get(name)
	if err != nil {
		return nil, err
	}
	return sliceRange(blob, name, off, n)
}

func (a rangeAdapter) GetRanges(name string, ranges []ByteRange) ([][]byte, error) {
	blob, err := a.Get(name)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		if out[i], err = sliceRange(blob, name, r.Off, r.Len); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GetRange implements RangeBlobStore. The returned slice aliases the stored
// blob (as Get does); callers must not mutate it.
func (s *MemStore) GetRange(name string, off int64, n int) ([]byte, error) {
	blob, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	return sliceRange(blob, name, off, n)
}

// GetRanges implements RangeBlobStore.
func (s *MemStore) GetRanges(name string, ranges []ByteRange) ([][]byte, error) {
	blob, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		if out[i], err = sliceRange(blob, name, r.Off, r.Len); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GetRange implements RangeBlobStore with a positional read of exactly the
// requested window — no stat, no full-file buffer.
func (s *DirStore) GetRange(name string, off int64, n int) ([]byte, error) {
	bufs, err := s.GetRanges(name, []ByteRange{{Off: off, Len: n}})
	if err != nil {
		return nil, err
	}
	return bufs[0], nil
}

// GetRanges implements RangeBlobStore. The file opens once; maximal runs of
// exactly-adjacent ranges (each starting where the previous ended) collapse
// into a single vectored positional read — one preadv syscall scattering a
// contiguous region across the result buffers on Linux, a ReadAt loop
// elsewhere. Disjoint ranges cost one vectored read each.
func (s *DirStore) GetRanges(name string, ranges []ByteRange) ([][]byte, error) {
	f, err := os.Open(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("get range %q: %w", name, ErrNotFound)
		}
		return nil, fmt.Errorf("get range %q: %w", name, err)
	}
	defer f.Close()
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		if r.Off < 0 || r.Len < 0 {
			return nil, fmt.Errorf("get range %q [%d:+%d]: %w", name, r.Off, r.Len, io.ErrUnexpectedEOF)
		}
		out[i] = make([]byte, r.Len)
	}
	for i := 0; i < len(ranges); {
		// Extend the run while the next range starts exactly where this
		// one ends.
		j := i + 1
		end := ranges[i].Off + int64(ranges[i].Len)
		for j < len(ranges) && ranges[j].Off == end {
			end += int64(ranges[j].Len)
			j++
		}
		if err := readVectored(f, ranges[i].Off, out[i:j]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("get range %q [%d:+%d]: %w",
					name, ranges[i].Off, end-ranges[i].Off, io.ErrUnexpectedEOF)
			}
			return nil, fmt.Errorf("get range %q: %w", name, err)
		}
		i = j
	}
	return out, nil
}

// ChunkMeta is the decoded fixed header of a stored chunk blob — everything
// a caller can learn about a chunk without fetching its index or data.
type ChunkMeta struct {
	Version      uint8
	Type         RecordType
	Compression  Compression
	Records      uint32
	FirstOrdinal uint64
	IndexSize    uint64
	DataSize     uint64
}

// ReadChunkMeta fetches and validates just the 40-byte header of a chunk
// blob — an existence + metadata probe that moves 40 bytes instead of the
// whole object on range-capable stores.
func ReadChunkMeta(store BlobStore, name string) (ChunkMeta, error) {
	hdr, err := RangeOf(store).GetRange(name, 0, chunkHeaderSize)
	if err != nil {
		return ChunkMeta{}, err
	}
	return parseChunkMeta(hdr)
}

// parseChunkMeta decodes and sanity-checks a bare 40-byte header.
func parseChunkMeta(hdr []byte) (ChunkMeta, error) {
	if len(hdr) < chunkHeaderSize {
		return ChunkMeta{}, fmt.Errorf("%w: truncated header", ErrBadMagic)
	}
	if string(hdr[0:4]) != chunkMagic {
		return ChunkMeta{}, ErrBadMagic
	}
	m := ChunkMeta{
		Version:      hdr[4],
		Type:         RecordType(hdr[5]),
		Compression:  Compression(hdr[6]),
		Records:      binary.LittleEndian.Uint32(hdr[8:12]),
		FirstOrdinal: binary.LittleEndian.Uint64(hdr[12:20]),
		IndexSize:    binary.LittleEndian.Uint64(hdr[20:28]),
		DataSize:     binary.LittleEndian.Uint64(hdr[28:36]),
	}
	if m.Version != chunkVersion && m.Version != chunkVersionParallel {
		return ChunkMeta{}, fmt.Errorf("%w: unsupported chunk version %d", ErrCorrupt, m.Version)
	}
	return m, nil
}

// ReadChunkIndex fetches a chunk's record-length index (the relative index)
// without its data block: the header and index ranges are exactly adjacent,
// so on DirStore this is one vectored read of header+index — tens of bytes
// plus the index versus the whole (data-dominated) blob.
func ReadChunkIndex(store BlobStore, name string) (ChunkMeta, []uint32, error) {
	rs := RangeOf(store)
	hdr, err := rs.GetRange(name, 0, chunkHeaderSize)
	if err != nil {
		return ChunkMeta{}, nil, err
	}
	m, err := parseChunkMeta(hdr)
	if err != nil {
		return ChunkMeta{}, nil, err
	}
	bufs, err := rs.GetRanges(name, []ByteRange{
		{Off: 0, Len: chunkHeaderSize},
		{Off: chunkHeaderSize, Len: int(m.IndexSize)},
	})
	if err != nil {
		return ChunkMeta{}, nil, err
	}
	idx := bufs[1]
	lengths := make([]uint32, 0, m.Records)
	for len(lengths) < int(m.Records) {
		l, n := binary.Uvarint(idx)
		if n <= 0 || l > uint64(^uint32(0)) {
			return ChunkMeta{}, nil, fmt.Errorf("%w: bad index varint", ErrCorrupt)
		}
		idx = idx[n:]
		lengths = append(lengths, uint32(l))
	}
	if len(idx) != 0 {
		return ChunkMeta{}, nil, fmt.Errorf("%w: index has %d trailing bytes", ErrCorrupt, len(idx))
	}
	return m, lengths, nil
}

var (
	_ RangeBlobStore = (*MemStore)(nil)
	_ RangeBlobStore = (*DirStore)(nil)
)
