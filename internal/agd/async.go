package agd

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// This file is the asynchronous read layer of the storage interface (the
// paper's §4.2 readers keep many object fetches in flight to saturate the
// Ceph cluster at ~6 GB/s aggregate). A Future is the handle of one pending
// blob read; AsyncBlobStore extends BlobStore with GetAsync/GetBatch so a
// reader node can issue a window of fetches and overlap storage latency with
// parse and compute instead of stalling on each Get.

// Future is the handle of an asynchronous blob read. It is resolved exactly
// once by the issuing store; any number of goroutines may Wait on it.
type Future struct {
	done chan struct{}
	data []byte
	err  error
}

// closedChan is shared by all pre-resolved futures, so synchronous stores
// (MemStore) answer GetAsync without allocating a channel.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// NewFuture returns an unresolved Future together with the function that
// fulfils it. Store implementations must call resolve exactly once.
func NewFuture() (*Future, func(data []byte, err error)) {
	f := &Future{done: make(chan struct{})}
	return f, func(data []byte, err error) {
		f.data, f.err = data, err
		close(f.done)
	}
}

// ResolvedFuture returns an already-fulfilled Future, for stores whose reads
// complete synchronously.
func ResolvedFuture(data []byte, err error) *Future {
	return &Future{done: closedChan, data: data, err: err}
}

// Done returns a channel that is closed once the read has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the read completes or ctx is cancelled, returning the
// blob contents or the read error.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.data, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// AsyncBlobStore is a BlobStore whose reads can be issued asynchronously and
// in batches, keeping multiple fetches in flight concurrently.
type AsyncBlobStore interface {
	BlobStore
	// GetAsync starts fetching name and returns a Future for the result.
	GetAsync(name string) *Future
	// GetBatch starts fetching every name concurrently and returns one
	// Future per name, in order. Implementations must not retain the
	// names slice itself — callers may reuse it.
	GetBatch(names []string) []*Future
}

// asyncAdapterParallelism bounds how many adapter-issued Gets run at once:
// enough to keep a storage device busy without stampeding a backend that
// was never built for concurrency.
const asyncAdapterParallelism = 32

// AsyncOf returns store as an AsyncBlobStore. Stores with a native async
// path (MemStore, DirStore, the object store) are returned unchanged; any
// other store is wrapped in an adapter that services GetAsync on a bounded
// set of fetch goroutines.
func AsyncOf(store BlobStore) AsyncBlobStore {
	if as, ok := store.(AsyncBlobStore); ok {
		return as
	}
	return &asyncAdapter{
		BlobStore: store,
		sem:       make(chan struct{}, asyncAdapterParallelism),
	}
}

// asyncAdapter lifts a synchronous BlobStore into AsyncBlobStore with one
// goroutine per in-flight read, gated by a semaphore. The semaphore is
// acquired before the goroutine is spawned, so a huge batch throttles the
// issuer instead of stamping out an unbounded goroutine herd.
type asyncAdapter struct {
	BlobStore
	sem chan struct{}
}

func (a *asyncAdapter) GetAsync(name string) *Future {
	fut, resolve := NewFuture()
	a.sem <- struct{}{}
	go func() {
		defer func() { <-a.sem }()
		resolve(a.BlobStore.Get(name))
	}()
	return fut
}

func (a *asyncAdapter) GetBatch(names []string) []*Future {
	futs := make([]*Future, len(names))
	for i, name := range names {
		futs[i] = a.GetAsync(name)
	}
	return futs
}

// GetAsync implements AsyncBlobStore. Map reads complete immediately, so the
// future is returned pre-resolved.
func (s *MemStore) GetAsync(name string) *Future {
	return ResolvedFuture(s.Get(name))
}

// GetBatch implements AsyncBlobStore. The resolved futures share one
// backing array, so a batch costs two allocations regardless of size.
func (s *MemStore) GetBatch(names []string) []*Future {
	futs := make([]*Future, len(names))
	backing := make([]Future, len(names))
	for i, name := range names {
		data, err := s.Get(name)
		backing[i] = Future{done: closedChan, data: data, err: err}
		futs[i] = &backing[i]
	}
	return futs
}

// GetAsync implements AsyncBlobStore: file reads run on a bounded set of
// goroutines so a batch keeps several disk requests in flight. As in the
// generic adapter, the semaphore gates goroutine creation itself.
func (s *DirStore) GetAsync(name string) *Future {
	if s.sem == nil { // zero-value store: read synchronously
		return ResolvedFuture(s.Get(name))
	}
	fut, resolve := NewFuture()
	s.sem <- struct{}{}
	go func() {
		defer func() { <-s.sem }()
		resolve(s.Get(name))
	}()
	return fut
}

// GetBatch implements AsyncBlobStore with a real batched read loop instead
// of one goroutine per name: a bounded set of workers drains the batch via
// an atomic cursor, and each blob is read with stat + a positional-read
// (pread) loop into an exactly-sized buffer — the portable first step of
// the io_uring-style DirStore (one syscall loop per worker, no per-name
// goroutine spawn, no ReadFile readdir/grow overhead).
func (s *DirStore) GetBatch(names []string) []*Future {
	futs := make([]*Future, len(names))
	if len(names) == 0 {
		return futs
	}
	if s.sem == nil { // zero-value store: read synchronously
		for i, name := range names {
			futs[i] = ResolvedFuture(s.Get(name))
		}
		return futs
	}
	// Snapshot the names: the contract lets callers reuse the slice as soon
	// as GetBatch returns, while the workers are still draining it.
	batch := make([]string, len(names))
	copy(batch, names)
	resolves := make([]func([]byte, error), len(batch))
	for i := range futs {
		futs[i], resolves[i] = NewFuture()
	}
	workers := dirStoreParallelism
	if workers > len(batch) {
		workers = len(batch)
	}
	cursor := new(atomic.Int64)
	// First-error cancellation: once any read in the batch fails, the
	// remaining unserviced reads are not issued — their futures resolve with
	// an error wrapping the batch's first failure (deterministically the one
	// that won the CAS), so a caller draining futures in order sees the
	// failure immediately instead of paying for the rest of a doomed batch.
	firstErr := new(atomic.Pointer[batchFailure])
	for w := 0; w < workers; w++ {
		// The semaphore still bounds total file concurrency across batches
		// and GetAsync calls; acquire before spawning so a huge batch
		// throttles the issuer, not the file-descriptor table.
		s.sem <- struct{}{}
		go func() {
			defer func() { <-s.sem }()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				if f := firstErr.Load(); f != nil {
					resolves[i](nil, fmt.Errorf("get %q: batch aborted: %w", batch[i], f.err))
					continue
				}
				data, err := s.readBlob(batch[i])
				if err != nil {
					firstErr.CompareAndSwap(nil, &batchFailure{name: batch[i], err: err})
				}
				resolves[i](data, err)
			}
		}()
	}
	return futs
}

// batchFailure records the read that aborted a GetBatch.
type batchFailure struct {
	name string
	err  error
}

// readBlob reads one blob with stat + a positional vectored read into an
// exactly-sized buffer: on 64-bit Linux the whole blob arrives in one preadv
// (store_linux.go), elsewhere in a portable ReadAt loop.
func (s *DirStore) readBlob(name string) ([]byte, error) {
	f, err := os.Open(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
		}
		return nil, fmt.Errorf("get %q: %w", name, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("get %q: %w", name, err)
	}
	buf := make([]byte, info.Size())
	if err := readVectored(f, 0, [][]byte{buf}); err != nil {
		if err == io.ErrUnexpectedEOF {
			// The file shrank between stat and read; whatever exists was
			// read, but the caller cannot know how much — treat as corrupt.
			return nil, fmt.Errorf("get %q: %w: blob shrank mid-read", name, ErrCorrupt)
		}
		return nil, fmt.Errorf("get %q: %w", name, err)
	}
	return buf, nil
}

var (
	_ AsyncBlobStore = (*MemStore)(nil)
	_ AsyncBlobStore = (*DirStore)(nil)
	_ AsyncBlobStore = (*asyncAdapter)(nil)
)
