package agd

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// gzip writers and readers carry megabyte-scale internal state; pooling
// them keeps chunk encode/decode allocation-free in steady state, which
// matters for the many-small-chunks regimes of sorting and marking.
var gzWriterPool = sync.Pool{
	New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	},
}

var gzReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

// Chunk file layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "AGD1"
//	4      1    version (1)
//	5      1    record type
//	6      1    compression
//	7      1    reserved
//	8      4    record count
//	12     8    first record ordinal in the dataset
//	20     8    index block size in bytes
//	28     8    data block size in bytes (compressed)
//	36     4    CRC-32 (IEEE) of the uncompressed data block
//	40     ...  index block: uvarint length per record (the relative index)
//	...    ...  data block (possibly compressed)

const (
	chunkMagic      = "AGD1"
	chunkVersion    = 1
	chunkHeaderSize = 40
)

// Chunk is an in-memory, parsed AGD chunk: the "chunk object" that flows
// through Persona's queues after the AGD parser stage.
type Chunk struct {
	Type         RecordType
	FirstOrdinal uint64

	// lengths is the relative index: the byte length of each record within
	// Data. offsets is the absolute index, materialized lazily (§3: "an
	// absolute index can be generated on the fly") and exactly once —
	// executor subchunk tasks access one chunk concurrently.
	lengths     []uint32
	offsets     []uint64
	offsetsOnce sync.Once

	// Data holds the concatenated, uncompressed record bytes.
	Data []byte
}

// NumRecords returns the record count.
func (c *Chunk) NumRecords() int { return len(c.lengths) }

// Lengths exposes the relative index. Callers must not mutate it.
func (c *Chunk) Lengths() []uint32 { return c.lengths }

// absIndex materializes the absolute index by summing the relative index.
func (c *Chunk) absIndex() []uint64 {
	c.offsetsOnce.Do(func() {
		offsets := make([]uint64, len(c.lengths)+1)
		var sum uint64
		for i, l := range c.lengths {
			offsets[i] = sum
			sum += uint64(l)
		}
		offsets[len(c.lengths)] = sum
		c.offsets = offsets
	})
	return c.offsets
}

// Record returns the raw bytes of record i (no copy).
func (c *Chunk) Record(i int) ([]byte, error) {
	if i < 0 || i >= len(c.lengths) {
		return nil, ErrOutOfRange
	}
	off := c.absIndex()
	return c.Data[off[i]:off[i+1]], nil
}

// ChunkBuilder accumulates records for one column chunk.
type ChunkBuilder struct {
	typ          RecordType
	firstOrdinal uint64
	lengths      []uint32
	data         []byte
}

// NewChunkBuilder returns a builder for a chunk whose first record has the
// given dataset-wide ordinal.
func NewChunkBuilder(typ RecordType, firstOrdinal uint64) *ChunkBuilder {
	return &ChunkBuilder{typ: typ, firstOrdinal: firstOrdinal}
}

// Append adds one record.
func (b *ChunkBuilder) Append(record []byte) {
	b.lengths = append(b.lengths, uint32(len(record)))
	b.data = append(b.data, record...)
}

// AppendBases adds one record of base letters, applying base compaction.
func (b *ChunkBuilder) AppendBases(bases []byte) {
	before := len(b.data)
	b.data = CompactBases(b.data, bases)
	b.lengths = append(b.lengths, uint32(len(b.data)-before))
}

// NumRecords returns how many records have been appended.
func (b *ChunkBuilder) NumRecords() int { return len(b.lengths) }

// DataLen returns the current uncompressed data size.
func (b *ChunkBuilder) DataLen() int { return len(b.data) }

// Chunk returns the accumulated records as an in-memory Chunk (no copy).
func (b *ChunkBuilder) Chunk() *Chunk {
	return &Chunk{
		Type:         b.typ,
		FirstOrdinal: b.firstOrdinal,
		lengths:      b.lengths,
		Data:         b.data,
	}
}

// EncodeChunk serializes a chunk to the on-disk format.
func EncodeChunk(c *Chunk, comp Compression) ([]byte, error) {
	var index bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, l := range c.lengths {
		n := binary.PutUvarint(tmp[:], uint64(l))
		index.Write(tmp[:n])
	}

	data := c.Data
	crc := crc32.ChecksumIEEE(data)
	switch comp {
	case CompressNone:
	case CompressGzip:
		var zbuf bytes.Buffer
		zw := gzWriterPool.Get().(*gzip.Writer)
		zw.Reset(&zbuf)
		if _, err := zw.Write(data); err != nil {
			gzWriterPool.Put(zw)
			return nil, err
		}
		if err := zw.Close(); err != nil {
			gzWriterPool.Put(zw)
			return nil, err
		}
		gzWriterPool.Put(zw)
		data = zbuf.Bytes()
	default:
		return nil, fmt.Errorf("agd: unknown compression %d", comp)
	}

	out := make([]byte, chunkHeaderSize, chunkHeaderSize+index.Len()+len(data))
	copy(out[0:4], chunkMagic)
	out[4] = chunkVersion
	out[5] = byte(c.Type)
	out[6] = byte(comp)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(c.lengths)))
	binary.LittleEndian.PutUint64(out[12:20], c.FirstOrdinal)
	binary.LittleEndian.PutUint64(out[20:28], uint64(index.Len()))
	binary.LittleEndian.PutUint64(out[28:36], uint64(len(data)))
	binary.LittleEndian.PutUint32(out[36:40], crc)
	out = append(out, index.Bytes()...)
	out = append(out, data...)
	return out, nil
}

// DecodeChunk parses an on-disk chunk blob, decompressing the data block.
func DecodeChunk(blob []byte) (*Chunk, error) {
	if len(blob) < chunkHeaderSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(blob))
	}
	if string(blob[0:4]) != chunkMagic {
		return nil, ErrBadMagic
	}
	if blob[4] != chunkVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, blob[4])
	}
	typ := RecordType(blob[5])
	comp := Compression(blob[6])
	records := binary.LittleEndian.Uint32(blob[8:12])
	firstOrdinal := binary.LittleEndian.Uint64(blob[12:20])
	indexSize := binary.LittleEndian.Uint64(blob[20:28])
	dataSize := binary.LittleEndian.Uint64(blob[28:36])
	wantCRC := binary.LittleEndian.Uint32(blob[36:40])

	if uint64(len(blob)) != chunkHeaderSize+indexSize+dataSize {
		return nil, fmt.Errorf("%w: size mismatch (header says %d, blob is %d)",
			ErrCorrupt, chunkHeaderSize+indexSize+dataSize, len(blob))
	}
	indexBlock := blob[chunkHeaderSize : chunkHeaderSize+indexSize]
	dataBlock := blob[chunkHeaderSize+indexSize:]

	lengths := make([]uint32, 0, records)
	var total uint64
	for len(indexBlock) > 0 {
		l, n := binary.Uvarint(indexBlock)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad index varint", ErrCorrupt)
		}
		lengths = append(lengths, uint32(l))
		total += l
		indexBlock = indexBlock[n:]
	}
	if uint32(len(lengths)) != records {
		return nil, fmt.Errorf("%w: index has %d entries, header says %d", ErrCorrupt, len(lengths), records)
	}

	var data []byte
	switch comp {
	case CompressNone:
		data = dataBlock
	case CompressGzip:
		zr := gzReaderPool.Get().(*gzip.Reader)
		if err := zr.Reset(bytes.NewReader(dataBlock)); err != nil {
			gzReaderPool.Put(zr)
			return nil, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
		}
		data = make([]byte, 0, total)
		buf := bytes.NewBuffer(data)
		if _, err := io.Copy(buf, zr); err != nil { //nolint:gosec // bounded by chunk size
			gzReaderPool.Put(zr)
			return nil, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
		}
		if err := zr.Close(); err != nil {
			gzReaderPool.Put(zr)
			return nil, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
		}
		gzReaderPool.Put(zr)
		data = buf.Bytes()
	default:
		return nil, fmt.Errorf("%w: unknown compression %d", ErrCorrupt, comp)
	}

	if uint64(len(data)) != total {
		return nil, fmt.Errorf("%w: data block is %d bytes, index sums to %d", ErrCorrupt, len(data), total)
	}
	if crc32.ChecksumIEEE(data) != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}

	return &Chunk{
		Type:         typ,
		FirstOrdinal: firstOrdinal,
		lengths:      lengths,
		Data:         data,
	}, nil
}

// ExpandBasesRecord decodes record i of a TypeCompactBases chunk into base
// letters, appending to dst.
func (c *Chunk) ExpandBasesRecord(dst []byte, i int) ([]byte, error) {
	rec, err := c.Record(i)
	if err != nil {
		return dst, err
	}
	out, _, err := ExpandBases(dst, rec)
	return out, err
}
