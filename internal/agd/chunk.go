package agd

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// gzip writers and readers carry megabyte-scale internal state; pooling
// them keeps chunk encode/decode allocation-free in steady state, which
// matters for the many-small-chunks regimes of sorting and marking.
var gzWriterPool = sync.Pool{
	New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	},
}

// gzReadCtx pairs a gzip reader with its source so a whole decompression
// context can be recycled without allocating a bytes.Reader per call.
type gzReadCtx struct {
	br bytes.Reader
	zr gzip.Reader
}

var gzReadCtxPool = sync.Pool{New: func() any { return new(gzReadCtx) }}

// appendWriter adapts an append-grown byte slice as an io.Writer, letting
// gzip compress straight into an output blob with no intermediate buffer.
type appendWriter struct{ buf *[]byte }

func (w appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// gzipAppend compresses src at BestSpeed, appending the stream to dst.
func gzipAppend(dst []byte, src []byte) ([]byte, error) {
	zw := gzWriterPool.Get().(*gzip.Writer)
	defer gzWriterPool.Put(zw)
	zw.Reset(appendWriter{&dst})
	if _, err := zw.Write(src); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return dst, nil
}

// gunzipExact inflates src into dst, which must be exactly the uncompressed
// size. It fails if the stream is shorter or longer than dst, avoiding the
// grow-and-copy of a bytes.Buffer read.
func gunzipExact(dst, src []byte) error {
	c := gzReadCtxPool.Get().(*gzReadCtx)
	c.br.Reset(src)
	if err := c.zr.Reset(&c.br); err != nil {
		// The reader's state is suspect after a failed Reset; drop the
		// context rather than pooling it.
		return fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
	}
	defer func() {
		// Detach the source before pooling so an idle context does not pin
		// the (arbitrarily large) compressed blob it last decoded.
		c.br.Reset(nil)
		gzReadCtxPool.Put(c)
	}()
	if _, err := io.ReadFull(&c.zr, dst); err != nil {
		return fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
	}
	// The stream must end exactly at len(dst); the extra read also forces
	// gzip's own checksum verification.
	var one [1]byte
	if n, err := c.zr.Read(one[:]); n != 0 || err != io.EOF {
		if err == nil || err == io.EOF {
			return fmt.Errorf("%w: gzip stream longer than index", ErrCorrupt)
		}
		return fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
	}
	if err := c.zr.Close(); err != nil {
		return fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
	}
	return nil
}

// Chunk file layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "AGD1"
//	4      1    version (1 or 2)
//	5      1    record type
//	6      1    compression
//	7      1    reserved
//	8      4    record count
//	12     8    first record ordinal in the dataset
//	20     8    index block size in bytes
//	28     8    data block size in bytes (compressed)
//	36     4    CRC-32 (IEEE) of the uncompressed data block
//	40     ...  index block: uvarint length per record (the relative index)
//	...    ...  data block (possibly compressed)
//
// Version 1 stores the data block as a single (possibly gzip-compressed)
// run. Version 2 splits it into independent gzip members that compress and
// decompress in parallel (see parallel.go for the member table layout).
// Version 1 blobs written by earlier releases decode unchanged.
//
// Both versions may carry a trailing whole-blob footer:
//
//	offset size field
//	end-8  4    footer magic "C32C"
//	end-4  4    CRC-32C (Castagnoli) of every blob byte before the footer
//
// The header's in-band CRC only covers the uncompressed data block, so it
// cannot tell a corrupted index or member table from a malformed one. The
// footer covers the raw stored bytes — header, index and (compressed) data —
// and is verified before anything is parsed beyond the header, so storage
// corruption is detected up front, classified permanent (ErrChecksum) and
// reported with blob coordinates instead of decoding garbage. Blobs without
// a footer (written by earlier releases) decode unchanged; the header size
// fields disambiguate the two layouts exactly.

const (
	chunkMagic           = "AGD1"
	chunkVersion         = 1
	chunkVersionParallel = 2
	chunkHeaderSize      = 40
	chunkFooterMagic     = "C32C"
	chunkFooterSize      = 8
)

// castagnoli is the CRC-32C table of the blob footer (hardware-accelerated
// on amd64/arm64, so footers cost ~a memory scan).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendChunkFooter appends the whole-blob footer over dst[base:].
func appendChunkFooter(dst []byte, base int) []byte {
	var foot [chunkFooterSize]byte
	copy(foot[0:4], chunkFooterMagic)
	binary.LittleEndian.PutUint32(foot[4:8], crc32.Checksum(dst[base:], castagnoli))
	return append(dst, foot[:]...)
}

// Chunk is an in-memory, parsed AGD chunk: the "chunk object" that flows
// through Persona's queues after the AGD parser stage.
type Chunk struct {
	Type         RecordType
	FirstOrdinal uint64

	// lengths is the relative index: the byte length of each record within
	// Data. offsets is the absolute index, materialized lazily (§3: "an
	// absolute index can be generated on the fly") and exactly once —
	// executor subchunk tasks access one chunk concurrently.
	lengths     []uint32
	offsets     []uint64
	offsetsOnce sync.Once

	// Data holds the concatenated, uncompressed record bytes.
	Data []byte
}

// NumRecords returns the record count.
func (c *Chunk) NumRecords() int { return len(c.lengths) }

// Lengths exposes the relative index. Callers must not mutate it.
func (c *Chunk) Lengths() []uint32 { return c.lengths }

// absIndex materializes the absolute index by summing the relative index,
// reusing the offsets backing array of a recycled chunk.
func (c *Chunk) absIndex() []uint64 {
	c.offsetsOnce.Do(func() {
		n := len(c.lengths) + 1
		offsets := c.offsets
		if cap(offsets) < n {
			offsets = make([]uint64, n)
		}
		offsets = offsets[:n]
		var sum uint64
		for i, l := range c.lengths {
			offsets[i] = sum
			sum += uint64(l)
		}
		offsets[n-1] = sum
		c.offsets = offsets
	})
	return c.offsets
}

// Record returns the raw bytes of record i (no copy).
func (c *Chunk) Record(i int) ([]byte, error) {
	if i < 0 || i >= len(c.lengths) {
		return nil, ErrOutOfRange
	}
	off := c.absIndex()
	return c.Data[off[i]:off[i+1]], nil
}

// MemSize estimates the chunk's resident memory in bytes: record data, the
// relative index, the (possibly materialized) absolute index, and a small
// fixed overhead for the struct itself. The chunk cache's byte budget is
// accounted in these units.
func (c *Chunk) MemSize() int64 {
	return int64(cap(c.Data)) + 4*int64(cap(c.lengths)) + 8*int64(cap(c.offsets)) + 64
}

// Clone returns an independently owned deep copy: mutating or recycling the
// receiver afterwards cannot affect the copy. Used to detach a row group
// from a stage whose builders recycle on the next pull.
func (c *Chunk) Clone() *Chunk {
	out := &Chunk{
		Type:         c.Type,
		FirstOrdinal: c.FirstOrdinal,
		lengths:      make([]uint32, len(c.lengths)),
		Data:         make([]byte, len(c.Data)),
	}
	copy(out.lengths, c.lengths)
	copy(out.Data, c.Data)
	return out
}

// Reset clears the chunk for reuse, retaining the Data, lengths and offsets
// backing arrays so a recycled chunk decodes with no allocation. The caller
// must ensure no records or slices of the previous contents are still
// referenced.
func (c *Chunk) Reset() {
	c.Type = 0
	c.FirstOrdinal = 0
	c.lengths = c.lengths[:0]
	c.offsets = c.offsets[:0]
	c.offsetsOnce = sync.Once{}
	c.Data = c.Data[:0]
}

// ChunkBuilder accumulates records for one column chunk.
type ChunkBuilder struct {
	typ          RecordType
	firstOrdinal uint64
	lengths      []uint32
	data         []byte
}

// NewChunkBuilder returns a builder for a chunk whose first record has the
// given dataset-wide ordinal.
func NewChunkBuilder(typ RecordType, firstOrdinal uint64) *ChunkBuilder {
	return &ChunkBuilder{typ: typ, firstOrdinal: firstOrdinal}
}

// Reset re-targets the builder at a new chunk, retaining the backing arrays
// so pooled builders accumulate with no steady-state allocation. Chunks
// previously returned by Chunk() share those arrays and must be fully
// consumed (e.g. encoded) before the builder is reset.
func (b *ChunkBuilder) Reset(typ RecordType, firstOrdinal uint64) {
	b.typ = typ
	b.firstOrdinal = firstOrdinal
	b.lengths = b.lengths[:0]
	b.data = b.data[:0]
}

// Append adds one record.
func (b *ChunkBuilder) Append(record []byte) {
	b.lengths = append(b.lengths, uint32(len(record)))
	b.data = append(b.data, record...)
}

// AppendBases adds one record of base letters, applying base compaction.
func (b *ChunkBuilder) AppendBases(bases []byte) {
	before := len(b.data)
	b.data = CompactBases(b.data, bases)
	b.lengths = append(b.lengths, uint32(len(b.data)-before))
}

// AppendResult encodes one alignment result straight into the data block —
// no intermediate record buffer.
func (b *ChunkBuilder) AppendResult(r *Result) {
	before := len(b.data)
	b.data = EncodeResult(b.data, r)
	b.lengths = append(b.lengths, uint32(len(b.data)-before))
}

// AppendResultView is AppendResult for the borrowing form.
func (b *ChunkBuilder) AppendResultView(v *ResultView) {
	before := len(b.data)
	b.data = EncodeResultView(b.data, v)
	b.lengths = append(b.lengths, uint32(len(b.data)-before))
}

// NumRecords returns how many records have been appended.
func (b *ChunkBuilder) NumRecords() int { return len(b.lengths) }

// DataLen returns the current uncompressed data size.
func (b *ChunkBuilder) DataLen() int { return len(b.data) }

// Chunk returns the accumulated records as an in-memory Chunk (no copy).
func (b *ChunkBuilder) Chunk() *Chunk {
	return &Chunk{
		Type:         b.typ,
		FirstOrdinal: b.firstOrdinal,
		lengths:      b.lengths,
		Data:         b.data,
	}
}

// EncodeChunk serializes a chunk to the on-disk format. Large gzip chunks
// are written in the version-2 multi-member layout and compressed in
// parallel (see Codec); small chunks keep the single-run version-1 layout.
// Either way the blob carries a trailing CRC32-C footer (Codec.NoChecksum
// omits it), verified on decode.
func EncodeChunk(c *Chunk, comp Compression) ([]byte, error) {
	return Codec{}.Encode(c, comp)
}

// EncodeChunkAppend is EncodeChunk appending to dst, so writers can recycle
// output blobs.
func EncodeChunkAppend(dst []byte, c *Chunk, comp Compression) ([]byte, error) {
	return Codec{}.EncodeAppend(dst, c, comp)
}

// encodeChunkHeader appends a chunk header to dst with the size fields
// zeroed; patchChunkHeader fills them once the blocks are written.
func encodeChunkHeader(dst []byte, c *Chunk, version byte, comp Compression) []byte {
	var hdr [chunkHeaderSize]byte
	copy(hdr[0:4], chunkMagic)
	hdr[4] = version
	hdr[5] = byte(c.Type)
	hdr[6] = byte(comp)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(c.lengths)))
	binary.LittleEndian.PutUint64(hdr[12:20], c.FirstOrdinal)
	return append(dst, hdr[:]...)
}

func patchChunkHeader(hdr []byte, indexLen, dataLen int, crc uint32) {
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(indexLen))
	binary.LittleEndian.PutUint64(hdr[28:36], uint64(dataLen))
	binary.LittleEndian.PutUint32(hdr[36:40], crc)
}

// appendChunkIndex appends the relative index (uvarint record lengths).
func appendChunkIndex(dst []byte, c *Chunk) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, l := range c.lengths {
		n := binary.PutUvarint(tmp[:], uint64(l))
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// encodeChunkV1Append writes the single-run version-1 layout, compressing
// (if requested) straight into the output slice.
func encodeChunkV1Append(dst []byte, c *Chunk, comp Compression) ([]byte, error) {
	base := len(dst)
	// Worst-case estimate: full header and index plus incompressible data
	// (gzip at BestSpeed stores incompressible input nearly verbatim).
	dst = ensureCap(dst, chunkHeaderSize+3*len(c.lengths)+len(c.Data)+len(c.Data)/128+64)
	dst = encodeChunkHeader(dst, c, chunkVersion, comp)
	idxStart := len(dst)
	dst = appendChunkIndex(dst, c)
	idxLen := len(dst) - idxStart

	dataStart := len(dst)
	crc := crc32.ChecksumIEEE(c.Data)
	switch comp {
	case CompressNone:
		dst = append(dst, c.Data...)
	case CompressGzip:
		var err error
		if dst, err = gzipAppend(dst, c.Data); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("agd: unknown compression %d", comp)
	}
	patchChunkHeader(dst[base:], idxLen, len(dst)-dataStart, crc)
	return dst, nil
}

// DecodeChunk parses an on-disk chunk blob, decompressing the data block.
// Both layout versions are accepted; multi-member data blocks decompress in
// parallel.
func DecodeChunk(blob []byte) (*Chunk, error) {
	return Codec{}.Decode(blob)
}

// DecodeChunkInto decodes blob into c, reusing c's backing arrays (pooled
// chunk lifecycle: the steady-state pipeline decodes with no allocation).
// The chunk owns its memory afterwards — even uncompressed data is copied
// out of blob.
func DecodeChunkInto(c *Chunk, blob []byte) error {
	return Codec{}.DecodeInto(c, blob)
}

// chunkHeader is a parsed fixed-size chunk blob header.
type chunkHeader struct {
	version      byte
	typ          RecordType
	comp         Compression
	records      uint32
	firstOrdinal uint64
	indexSize    uint64
	dataSize     uint64
	crc          uint32
}

func parseChunkHeader(blob []byte) (chunkHeader, error) {
	var h chunkHeader
	if len(blob) < chunkHeaderSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(blob))
	}
	if string(blob[0:4]) != chunkMagic {
		return h, ErrBadMagic
	}
	if blob[4] != chunkVersion && blob[4] != chunkVersionParallel {
		return h, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, blob[4])
	}
	h.version = blob[4]
	h.typ = RecordType(blob[5])
	h.comp = Compression(blob[6])
	h.records = binary.LittleEndian.Uint32(blob[8:12])
	h.firstOrdinal = binary.LittleEndian.Uint64(blob[12:20])
	h.indexSize = binary.LittleEndian.Uint64(blob[20:28])
	h.dataSize = binary.LittleEndian.Uint64(blob[28:36])
	h.crc = binary.LittleEndian.Uint32(blob[36:40])
	// Guard the size sum against overflow before using it for slicing: a
	// corrupt header can claim block sizes whose sum wraps around.
	if h.indexSize > uint64(len(blob)) || h.dataSize > uint64(len(blob)) {
		return h, fmt.Errorf("%w: size mismatch (header says %d+%d block bytes, blob is %d)",
			ErrCorrupt, h.indexSize, h.dataSize, len(blob))
	}
	expected := chunkHeaderSize + h.indexSize + h.dataSize
	switch uint64(len(blob)) {
	case expected:
		// Unchecksummed blob from an earlier release: accepted as-is.
	case expected + chunkFooterSize:
		foot := blob[expected:]
		if string(foot[0:4]) != chunkFooterMagic {
			return h, fmt.Errorf("%w: bad footer magic %q", ErrCorrupt, foot[0:4])
		}
		want := binary.LittleEndian.Uint32(foot[4:8])
		if got := crc32.Checksum(blob[:expected], castagnoli); got != want {
			return h, fmt.Errorf("%w: blob CRC32-C %08x, footer says %08x", ErrChecksum, got, want)
		}
	default:
		return h, fmt.Errorf("%w: size mismatch (header says %d, blob is %d)",
			ErrCorrupt, expected, len(blob))
	}
	return h, nil
}

// decodeChunkIndex parses the relative index into lengths (reusing its
// backing array) and returns it with the summed record bytes.
func decodeChunkIndex(lengths []uint32, indexBlock []byte, records uint32) ([]uint32, uint64, error) {
	lengths = lengths[:0]
	var total uint64
	for len(indexBlock) > 0 {
		l, n := binary.Uvarint(indexBlock)
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: bad index varint", ErrCorrupt)
		}
		if l > math.MaxUint32 {
			// A record length wider than the on-disk uint32 can only come
			// from corruption; truncating it would desynchronize the
			// absolute index from the summed total.
			return nil, 0, fmt.Errorf("%w: record length %d overflows", ErrCorrupt, l)
		}
		lengths = append(lengths, uint32(l))
		total += l
		indexBlock = indexBlock[n:]
	}
	if uint32(len(lengths)) != records {
		return nil, 0, fmt.Errorf("%w: index has %d entries, header says %d", ErrCorrupt, len(lengths), records)
	}
	return lengths, total, nil
}

// growBytes returns a slice of exactly n bytes, reusing b's backing array
// when it is large enough.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// ensureCap grows b so at least extra more bytes can be appended without
// reallocating, keeping encode's append-as-you-go from doubling repeatedly.
func ensureCap(b []byte, extra int) []byte {
	if cap(b)-len(b) >= extra {
		return b
	}
	nb := make([]byte, len(b), len(b)+extra)
	copy(nb, b)
	return nb
}

// ExpandBasesRecord decodes record i of a TypeCompactBases chunk into base
// letters, appending to dst.
func (c *Chunk) ExpandBasesRecord(dst []byte, i int) ([]byte, error) {
	rec, err := c.Record(i)
	if err != nil {
		return dst, err
	}
	out, _, err := ExpandBases(dst, rec)
	return out, err
}
