package agd

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// buildBigChunk builds a chunk whose data block spans several members.
func buildBigChunk(t *testing.T, records, recLen int) *Chunk {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	b := NewChunkBuilder(TypeRaw, 42)
	rec := make([]byte, recLen)
	for i := 0; i < records; i++ {
		for j := range rec {
			rec[j] = "ACGT"[rng.Intn(4)]
		}
		b.Append(rec)
	}
	return b.Chunk()
}

func checkChunkEqual(t *testing.T, got, want *Chunk) {
	t.Helper()
	if got.Type != want.Type || got.FirstOrdinal != want.FirstOrdinal {
		t.Fatalf("header mismatch: got (%v, %d), want (%v, %d)", got.Type, got.FirstOrdinal, want.Type, want.FirstOrdinal)
	}
	if got.NumRecords() != want.NumRecords() {
		t.Fatalf("records = %d, want %d", got.NumRecords(), want.NumRecords())
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatal("data mismatch")
	}
	for i := 0; i < want.NumRecords(); i++ {
		g, err1 := got.Record(i)
		w, err2 := want.Record(i)
		if err1 != nil || err2 != nil {
			t.Fatalf("record %d: %v / %v", i, err1, err2)
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestParallelChunkRoundTrip(t *testing.T) {
	c := buildBigChunk(t, 500, 120) // 60 KB of data
	for _, members := range []int{1, 2, 3, 7, 16} {
		t.Run(fmt.Sprintf("members=%d", members), func(t *testing.T) {
			cd := Codec{Members: members}
			blob, err := cd.Encode(c, CompressGzip)
			if err != nil {
				t.Fatal(err)
			}
			if blob[4] != chunkVersionParallel {
				t.Fatalf("version = %d, want %d", blob[4], chunkVersionParallel)
			}
			dec, err := DecodeChunk(blob)
			if err != nil {
				t.Fatal(err)
			}
			checkChunkEqual(t, dec, c)
		})
	}
}

func TestParallelChunkDecodeIntoReuses(t *testing.T) {
	big := buildBigChunk(t, 500, 120)
	small := buildBigChunk(t, 10, 30)
	blobBig, err := Codec{Members: 4}.Encode(big, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	blobSmall, err := EncodeChunk(small, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}

	// Decode big → small → big into one chunk: contents must be exact and
	// the second big decode must reuse the backing arrays.
	var c Chunk
	if err := DecodeChunkInto(&c, blobBig); err != nil {
		t.Fatal(err)
	}
	checkChunkEqual(t, &c, big)
	// Materialize offsets, then ensure reuse resets them.
	if _, err := c.Record(3); err != nil {
		t.Fatal(err)
	}
	dataCap, lenCap := cap(c.Data), cap(c.lengths)
	if err := DecodeChunkInto(&c, blobSmall); err != nil {
		t.Fatal(err)
	}
	checkChunkEqual(t, &c, small)
	if cap(c.Data) != dataCap || cap(c.lengths) != lenCap {
		t.Fatalf("backing arrays not reused: data cap %d→%d, lengths cap %d→%d",
			dataCap, cap(c.Data), lenCap, cap(c.lengths))
	}
	if err := DecodeChunkInto(&c, blobBig); err != nil {
		t.Fatal(err)
	}
	checkChunkEqual(t, &c, big)
}

func TestParallelChunkCorruptMember(t *testing.T) {
	c := buildBigChunk(t, 500, 120)
	blob, err := Codec{Members: 4}.Encode(c, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the last member's compressed stream.
	corrupt := append([]byte{}, blob...)
	corrupt[len(corrupt)-3] ^= 0xff
	if _, err := DecodeChunk(corrupt); err == nil {
		t.Fatal("corrupt member accepted")
	}

	// Member count beyond the blob must be rejected, not crash.
	hdr, err := parseChunkHeader(blob)
	if err != nil {
		t.Fatal(err)
	}
	tableOff := chunkHeaderSize + int(hdr.indexSize)
	badCount := append([]byte{}, blob...)
	badCount[tableOff] = 0xff // member count 255 with a 4-member body
	if _, err := DecodeChunk(badCount); err == nil {
		t.Fatal("bad member count accepted")
	}

	// Truncated member body.
	if _, err := DecodeChunk(blob[:len(blob)-5]); err == nil {
		t.Fatal("truncated member body accepted")
	}

	// Member sizes that lie about the uncompressed total.
	badSize := append([]byte{}, blob...)
	badSize[tableOff+4+4*4] ^= 0x01 // first member's uncompressed size
	if _, err := DecodeChunk(badSize); err == nil {
		t.Fatal("bad member size accepted")
	}
}

func TestParallelChunkMemberCountClamped(t *testing.T) {
	// A forced member count beyond what the decoder accepts must be
	// clamped, not written as an undecodable blob.
	c := buildBigChunk(t, 500, 120)
	blob, err := Codec{Members: maxChunkMembers + 100}.Encode(c, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeChunk(blob)
	if err != nil {
		t.Fatal(err)
	}
	checkChunkEqual(t, dec, c)
}

func TestDecodeRejectsAbsurdIndexSum(t *testing.T) {
	// A corrupt index claiming a huge uncompressed size must fail with
	// ErrCorrupt before any allocation is attempted.
	var idx []byte
	var tmp [10]byte
	n := binary.PutUvarint(tmp[:], 1<<50)
	idx = append(idx, tmp[:n]...)
	blob := make([]byte, chunkHeaderSize)
	copy(blob[0:4], chunkMagic)
	blob[4] = chunkVersion
	blob[6] = byte(CompressGzip)
	binary.LittleEndian.PutUint32(blob[8:12], 1) // one record
	binary.LittleEndian.PutUint64(blob[20:28], uint64(len(idx)))
	binary.LittleEndian.PutUint64(blob[28:36], 4)
	blob = append(blob, idx...)
	blob = append(blob, 1, 2, 3, 4) // 4-byte "data block"
	if _, err := DecodeChunk(blob); err == nil {
		t.Fatal("absurd index sum accepted")
	}
}

func TestLegacyV1BlobsDecodeUnchanged(t *testing.T) {
	c := buildBigChunk(t, 500, 120)
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		// encodeChunkV1Append is the exact pre-parallel on-disk layout.
		legacy, err := encodeChunkV1Append(nil, c, comp)
		if err != nil {
			t.Fatal(err)
		}
		if legacy[4] != chunkVersion {
			t.Fatalf("legacy version byte = %d", legacy[4])
		}
		dec, err := DecodeChunk(legacy)
		if err != nil {
			t.Fatal(err)
		}
		checkChunkEqual(t, dec, c)
		var into Chunk
		if err := DecodeChunkInto(&into, legacy); err != nil {
			t.Fatal(err)
		}
		checkChunkEqual(t, &into, c)
	}

	// Small gzip chunks keep the legacy layout byte-for-byte: the default
	// encoder and the explicit v1 encoder must agree exactly, up to the
	// CRC32-C footer the default codec now appends.
	small := buildBigChunk(t, 10, 30)
	auto, err := Codec{Members: 0, Exec: nil}.Encode(small, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := encodeChunkV1Append(nil, small, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != len(v1)+chunkFooterSize || !bytes.Equal(auto[:len(v1)], v1) {
		t.Fatal("small-chunk encoding diverged from the legacy layout")
	}
	unchecked, err := Codec{NoChecksum: true}.Encode(small, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unchecked, v1) {
		t.Fatal("NoChecksum encoding diverged from the legacy layout")
	}
}

func TestParallelChunkConcurrentCodec(t *testing.T) {
	// Many goroutines sharing the default codec executor must not interfere.
	c := buildBigChunk(t, 400, 100)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(members int) {
			defer wg.Done()
			cd := Codec{Members: members}
			var reused Chunk
			for i := 0; i < 10; i++ {
				blob, err := cd.Encode(c, CompressGzip)
				if err != nil {
					errs <- err
					return
				}
				if err := cd.DecodeInto(&reused, blob); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(reused.Data, c.Data) {
					errs <- fmt.Errorf("members=%d: data mismatch", members)
					return
				}
			}
		}(1 + g%5)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
