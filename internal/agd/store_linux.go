//go:build linux && (amd64 || arm64)

package agd

import (
	"io"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// readVectored fills bufs from f starting at off using preadv: one syscall
// reads the contiguous region and scatters it across the buffers, however
// many ranges were coalesced. Restricted to 64-bit Linux so the file offset
// fits one syscall argument (32-bit ABIs split it lo/hi); everywhere else
// store_portable.go supplies a ReadAt loop. Returns io.ErrUnexpectedEOF if
// the file ends before the buffers are full.
func readVectored(f *os.File, off int64, bufs [][]byte) error {
	iovs := make([]syscall.Iovec, 0, len(bufs))
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		iovs = append(iovs, syscall.Iovec{Base: &b[0], Len: uint64(len(b))})
	}
	for len(iovs) > 0 {
		n, _, errno := syscall.Syscall6(syscall.SYS_PREADV,
			f.Fd(), uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)),
			uintptr(off), 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return errno
		}
		if n == 0 {
			return io.ErrUnexpectedEOF
		}
		off += int64(n)
		// Advance past fully read iovecs; trim a partially read one.
		got := uint64(n)
		for len(iovs) > 0 && got >= iovs[0].Len {
			got -= iovs[0].Len
			iovs = iovs[1:]
		}
		if len(iovs) > 0 && got > 0 {
			iovs[0].Base = (*byte)(unsafe.Pointer(uintptr(unsafe.Pointer(iovs[0].Base)) + uintptr(got)))
			iovs[0].Len -= got
		}
	}
	runtime.KeepAlive(f)
	return nil
}
