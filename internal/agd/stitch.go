package agd

import "fmt"

// StitchManifest assembles one ordered manifest from per-partition chunk
// entry lists: parts[k] holds partition k's chunks in row order, with
// whatever partition-local First values their writer used. The stitched
// manifest renumbers First cumulatively in concatenation order (partition 0
// first), so the result validates as one contiguous dataset; entry Paths
// are kept as given, which is how a dataset's chunks can live under
// per-partition blob prefixes. Empty partitions are skipped.
//
// Readers never check a stored chunk's header ordinal against the manifest
// entry, so partition-local chunk blobs are served unmodified under the
// stitched manifest's global numbering.
func StitchManifest(name string, cols []ColumnSpec, parts [][]ChunkEntry, refSeqs []RefSeq, sortedBy string) (*Manifest, error) {
	var entries []ChunkEntry
	var first uint64
	for _, part := range parts {
		for _, e := range part {
			if e.Records == 0 {
				continue
			}
			e.First = first
			first += uint64(e.Records)
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("agd: stitch %q: no rows", name)
	}
	m := NewManifest(name, cols, entries, refSeqs, sortedBy)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("agd: stitch %q: %w", name, err)
	}
	return m, nil
}
