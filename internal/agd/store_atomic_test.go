package agd

// DirStore.Put crash-safety: a Put that dies mid-write must never leave a
// torn blob under a live name — at worst an invisible temp file. These tests
// simulate the crash states a torn write can leave behind and hammer the
// rename path with concurrent readers.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestDirStorePutTornWriteInvisible simulates a crash mid-Put — a partial
// temp file on disk, the rename never issued — and asserts the store never
// surfaces it: Get of the target name sees the old blob (or ErrNotFound),
// List omits the temp, and a later Put of the same name lands cleanly.
func TestDirStorePutTornWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A checksummed chunk blob is the realistic payload: if a torn prefix of
	// it ever surfaced under the live name, decode would fail ErrChecksum.
	c := buildRawChunk(t, [][]byte{[]byte("acgtacgt"), []byte("ttttcccc")})
	blob, err := Codec{}.Encode(c, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ds/chunk-000000.bases", blob); err != nil {
		t.Fatal(err)
	}

	// Crash state: a torn temp write next to the blob (what a power cut
	// mid-Put leaves behind under the temp-then-rename discipline).
	torn := filepath.Join(dir, "ds", tmpPrefix+"12345"+tmpSuffix)
	if err := os.WriteFile(torn, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// And a torn temp for a name that was never fully Put.
	tornNew := filepath.Join(dir, "ds", tmpPrefix+"67890"+tmpSuffix)
	if err := os.WriteFile(tornNew, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.Get("ds/chunk-000000.bases")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("existing blob changed by a crashed Put")
	}
	if _, err := (Codec{}).Decode(got); err != nil {
		t.Fatalf("blob no longer decodes after crashed Put: %v", err)
	}
	if _, err := s.Get("ds/chunk-000001.bases"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get of never-completed name = %v, want ErrNotFound", err)
	}
	names, err := s.List("ds/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "ds/chunk-000000.bases" {
		t.Fatalf("List = %v, want only the completed blob", names)
	}

	// The crashed Put must not block a clean retry of the same name.
	if err := s.Put("ds/chunk-000001.bases", blob); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("ds/chunk-000001.bases"); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("retried Put round trip: %v", err)
	}
}

// TestDirStorePutAtomicUnderConcurrentReads: readers racing Puts of
// different payloads under the same name must only ever observe one payload
// in full — never a prefix or a mix (the failure a non-atomic WriteFile
// allows).
func TestDirStorePutAtomicUnderConcurrentReads(t *testing.T) {
	s, err := NewDirStoreNoSync(t.TempDir()) // atomicity is what's under test
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{'a'}, 64<<10)
	b := bytes.Repeat([]byte{'b'}, 96<<10)
	if err := s.Put("blob", a); err != nil {
		t.Fatal(err)
	}

	const writes = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 1)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := s.Get("blob")
				if err != nil {
					select {
					case fail <- "get failed mid-rename: " + err.Error():
					default:
					}
					return
				}
				if !bytes.Equal(got, a) && !bytes.Equal(got, b) {
					select {
					case fail <- "torn read: saw neither payload in full":
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		p := a
		if i%2 == 1 {
			p = b
		}
		if err := s.Put("blob", p); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// No temp-file debris after the churn.
	entries, err := os.ReadDir(s.root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if isTempName(e.Name()) {
			t.Fatalf("leaked Put temp file %q", e.Name())
		}
	}
}
