package agd

import (
	"encoding/binary"
	"fmt"
)

// SAM-compatible flag bits used in Result.Flags.
const (
	FlagPaired       = 0x1
	FlagProperPair   = 0x2
	FlagUnmapped     = 0x4
	FlagMateUnmapped = 0x8
	FlagReverse      = 0x10
	FlagMateReverse  = 0x20
	FlagFirstInPair  = 0x40
	FlagSecondInPair = 0x80
	FlagSecondary    = 0x100
	FlagQCFail       = 0x200
	FlagDuplicate    = 0x400
	FlagSupplement   = 0x800
)

// UnmappedLocation marks an unaligned read in Result.Location.
const UnmappedLocation = int64(-1)

// Result is one record of the "results" column: the outcome of aligning one
// read. Locations are global genome coordinates (contig offsets are resolved
// through the manifest's reference info, the way the paper's manifest stores
// "names and sizes of contiguous reference sequences").
type Result struct {
	// Location is the global position of the leftmost aligned base, or
	// UnmappedLocation.
	Location int64
	// MateLocation is the pair mate's location (paired-end), or
	// UnmappedLocation.
	MateLocation int64
	// TemplateLen is the signed observed template length (SAM TLEN).
	TemplateLen int32
	// Score is the aligner's internal score (edit distance for SNAP-style
	// aligners, Smith-Waterman score for BWA-style).
	Score int32
	// MapQ is the Phred-scaled mapping quality.
	MapQ uint8
	// Flags holds SAM-compatible flag bits.
	Flags uint16
	// Cigar is the alignment CIGAR string (empty for unmapped reads).
	Cigar string
}

// IsUnmapped reports whether the read failed to align.
func (r *Result) IsUnmapped() bool { return r.Flags&FlagUnmapped != 0 || r.Location < 0 }

// IsReverse reports whether the read aligned to the reverse strand.
func (r *Result) IsReverse() bool { return r.Flags&FlagReverse != 0 }

// IsDuplicate reports whether the read is marked as a PCR duplicate.
func (r *Result) IsDuplicate() bool { return r.Flags&FlagDuplicate != 0 }

// ResultView is a Result decoded without copying: the CIGAR aliases the
// source record. It is the zero-allocation decode the hot paths use (export,
// sorting, filtering, duplicate marking); Result remains the owning form.
type ResultView struct {
	Location     int64
	MateLocation int64
	TemplateLen  int32
	Score        int32
	MapQ         uint8
	Flags        uint16
	// Cigar aliases the decoded record; valid only while the record's buffer
	// is.
	Cigar []byte
}

// IsUnmapped reports whether the read failed to align.
func (v *ResultView) IsUnmapped() bool { return v.Flags&FlagUnmapped != 0 || v.Location < 0 }

// IsReverse reports whether the read aligned to the reverse strand.
func (v *ResultView) IsReverse() bool { return v.Flags&FlagReverse != 0 }

// IsDuplicate reports whether the read is marked as a PCR duplicate.
func (v *ResultView) IsDuplicate() bool { return v.Flags&FlagDuplicate != 0 }

// Result materializes an owning Result (copies the CIGAR).
func (v *ResultView) Result() Result {
	return Result{
		Location:     v.Location,
		MateLocation: v.MateLocation,
		TemplateLen:  v.TemplateLen,
		Score:        v.Score,
		MapQ:         v.MapQ,
		Flags:        v.Flags,
		Cigar:        string(v.Cigar),
	}
}

// View returns the borrowing form of r (the CIGAR bytes alias r's string).
func (r *Result) View() ResultView {
	return ResultView{
		Location:     r.Location,
		MateLocation: r.MateLocation,
		TemplateLen:  r.TemplateLen,
		Score:        r.Score,
		MapQ:         r.MapQ,
		Flags:        r.Flags,
		Cigar:        []byte(r.Cigar),
	}
}

// EncodeResult appends the binary encoding of r to dst.
func EncodeResult(dst []byte, r *Result) []byte {
	v := ResultView{
		Location:     r.Location,
		MateLocation: r.MateLocation,
		TemplateLen:  r.TemplateLen,
		Score:        r.Score,
		MapQ:         r.MapQ,
		Flags:        r.Flags,
	}
	return encodeResultView(dst, &v, r.Cigar)
}

// EncodeResultView is EncodeResult for the borrowing form.
func EncodeResultView(dst []byte, v *ResultView) []byte {
	return encodeResultView(dst, v, "")
}

// encodeResultView appends the encoding; the CIGAR comes from v.Cigar unless
// the string form is non-empty (EncodeResult's path, avoiding a []byte
// conversion).
func encodeResultView(dst []byte, v *ResultView, cigarStr string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(x int64) {
		n := binary.PutVarint(tmp[:], x)
		dst = append(dst, tmp[:n]...)
	}
	putU := func(x uint64) {
		n := binary.PutUvarint(tmp[:], x)
		dst = append(dst, tmp[:n]...)
	}
	cigarLen := len(v.Cigar)
	if cigarStr != "" {
		cigarLen = len(cigarStr)
	}
	put(v.Location)
	put(v.MateLocation)
	put(int64(v.TemplateLen))
	put(int64(v.Score))
	putU(uint64(v.MapQ))
	putU(uint64(v.Flags))
	putU(uint64(cigarLen))
	if cigarStr != "" {
		dst = append(dst, cigarStr...)
	} else {
		dst = append(dst, v.Cigar...)
	}
	return dst
}

// DecodeResult parses one encoded Result from src.
func DecodeResult(src []byte) (Result, error) {
	v, err := DecodeResultView(src)
	if err != nil {
		return Result{}, err
	}
	return v.Result(), nil
}

// DecodeResultView parses one encoded Result from src without allocating;
// the returned view's Cigar aliases src.
func DecodeResultView(src []byte) (ResultView, error) {
	var r ResultView
	off := 0
	get := func() (int64, error) {
		v, n := binary.Varint(src[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad result varint", ErrCorrupt)
		}
		off += n
		return v, nil
	}
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad result uvarint", ErrCorrupt)
		}
		off += n
		return v, nil
	}
	var err error
	if r.Location, err = get(); err != nil {
		return r, err
	}
	if r.MateLocation, err = get(); err != nil {
		return r, err
	}
	v, err := get()
	if err != nil {
		return r, err
	}
	r.TemplateLen = int32(v)
	if v, err = get(); err != nil {
		return r, err
	}
	r.Score = int32(v)
	u, err := getU()
	if err != nil {
		return r, err
	}
	r.MapQ = uint8(u)
	if u, err = getU(); err != nil {
		return r, err
	}
	r.Flags = uint16(u)
	if u, err = getU(); err != nil {
		return r, err
	}
	if off+int(u) > len(src) {
		return r, fmt.Errorf("%w: result CIGAR truncated", ErrCorrupt)
	}
	r.Cigar = src[off : off+int(u)]
	return r, nil
}

// ResultLocation decodes just the alignment location of an encoded Result —
// the sort key — without touching the rest of the record.
func ResultLocation(src []byte) (int64, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad result varint", ErrCorrupt)
	}
	return v, nil
}

// DecodeResultRecord decodes record i of a TypeResults chunk.
func (c *Chunk) DecodeResultRecord(i int) (Result, error) {
	rec, err := c.Record(i)
	if err != nil {
		return Result{}, err
	}
	return DecodeResult(rec)
}

// DecodeResultViewRecord decodes record i of a TypeResults chunk without
// allocating; the view's CIGAR aliases the chunk's data.
func (c *Chunk) DecodeResultViewRecord(i int) (ResultView, error) {
	rec, err := c.Record(i)
	if err != nil {
		return ResultView{}, err
	}
	return DecodeResultView(rec)
}
