package agd

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// rangeStores builds the three RangeBlobStore flavors over the same payload:
// native MemStore, native DirStore (vectored read path), and the full-Get
// emulation over a store that hides its range capability.
func rangeStores(t *testing.T, name string, payload []byte) map[string]RangeBlobStore {
	t.Helper()
	mem := NewMemStore()
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []BlobStore{mem, dir} {
		if err := s.Put(name, payload); err != nil {
			t.Fatal(err)
		}
	}
	return map[string]RangeBlobStore{
		"mem":     mem,
		"dir":     dir,
		"adapter": RangeOf(opaqueStore{mem}),
	}
}

// opaqueStore hides the inner store's RangeBlobStore methods so RangeOf
// falls back to the full-Get adapter.
type opaqueStore struct{ inner BlobStore }

func (o opaqueStore) Get(name string) ([]byte, error) { return o.inner.Get(name) }
func (o opaqueStore) Put(name string, b []byte) error { return o.inner.Put(name, b) }
func (o opaqueStore) Delete(name string) error        { return o.inner.Delete(name) }
func (o opaqueStore) List(p string) ([]string, error) { return o.inner.List(p) }

func TestGetRangeContract(t *testing.T) {
	payload := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	for flavor, rs := range rangeStores(t, "blob", payload) {
		t.Run(flavor, func(t *testing.T) {
			got, err := rs.GetRange("blob", 10, 6)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "abcdef" {
				t.Fatalf("GetRange = %q", got)
			}
			// Zero-length and boundary reads.
			if got, err := rs.GetRange("blob", int64(len(payload)), 0); err != nil || len(got) != 0 {
				t.Fatalf("empty tail range: %q, %v", got, err)
			}
			// Short blob: exactly-n-or-error.
			if _, err := rs.GetRange("blob", 30, 10); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("past-end range error = %v, want ErrUnexpectedEOF", err)
			}
			if _, err := rs.GetRange("missing", 0, 1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing blob error = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestGetRangesCoalescing(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	cases := []struct {
		name   string
		ranges []ByteRange
	}{
		// Exactly adjacent: one vectored read scattered across 3 buffers.
		{"adjacent", []ByteRange{{0, 100}, {100, 300}, {400, 50}}},
		// Disjoint: one read each.
		{"disjoint", []ByteRange{{0, 10}, {1000, 10}, {4000, 96}}},
		// Mixed runs, including empty ranges inside a run.
		{"mixed", []ByteRange{{0, 40}, {40, 0}, {40, 60}, {2000, 8}}},
		{"single", []ByteRange{{123, 321}}},
		{"whole", []ByteRange{{0, 4096}}},
	}
	for flavor, rs := range rangeStores(t, "blob", payload) {
		for _, tc := range cases {
			t.Run(flavor+"/"+tc.name, func(t *testing.T) {
				bufs, err := rs.GetRanges("blob", tc.ranges)
				if err != nil {
					t.Fatal(err)
				}
				if len(bufs) != len(tc.ranges) {
					t.Fatalf("got %d buffers, want %d", len(bufs), len(tc.ranges))
				}
				for i, r := range tc.ranges {
					want := payload[r.Off : r.Off+int64(r.Len)]
					if !bytes.Equal(bufs[i], want) {
						t.Fatalf("range %d [%d:+%d] mismatch", i, r.Off, r.Len)
					}
				}
			})
		}
		t.Run(flavor+"/past-end", func(t *testing.T) {
			_, err := rs.GetRanges("blob", []ByteRange{{0, 10}, {4090, 100}})
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("error = %v, want ErrUnexpectedEOF", err)
			}
		})
	}
}

func TestReadChunkMetaAndIndex(t *testing.T) {
	mem := NewMemStore()
	m := writeTestDataset(t, mem, "ds", 25, 10)
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		blob, _ := mem.Get(n)
		if err := dir.Put(n, blob); err != nil {
			t.Fatal(err)
		}
	}
	for flavor, store := range map[string]BlobStore{"mem": mem, "dir": dir} {
		t.Run(flavor, func(t *testing.T) {
			for i, entry := range m.Chunks {
				name := chunkPath(entry, ColMetadata)
				meta, err := ReadChunkMeta(store, name)
				if err != nil {
					t.Fatal(err)
				}
				if meta.Records != uint32(entry.Records) {
					t.Fatalf("chunk %d: header records %d, manifest %d", i, meta.Records, entry.Records)
				}
				if meta.FirstOrdinal != entry.First {
					t.Fatalf("chunk %d: first ordinal %d, want %d", i, meta.FirstOrdinal, entry.First)
				}
				// The header+index pair (the two-iovec vectored read) must
				// agree with a full decode.
				_, lengths, err := ReadChunkIndex(store, name)
				if err != nil {
					t.Fatal(err)
				}
				blob, _ := store.Get(name)
				full, err := DecodeChunk(blob)
				if err != nil {
					t.Fatal(err)
				}
				if len(lengths) != full.NumRecords() {
					t.Fatalf("index has %d lengths, chunk %d records", len(lengths), full.NumRecords())
				}
				for r, l := range lengths {
					rec, err := full.Record(r)
					if err != nil {
						t.Fatal(err)
					}
					if int(l) != len(rec) {
						t.Fatalf("record %d: index length %d, actual %d", r, l, len(rec))
					}
				}
			}
			if _, err := ReadChunkMeta(store, "ds/manifest.json"); err == nil {
				t.Fatal("non-chunk blob parsed as chunk header")
			}
			if _, err := ReadChunkMeta(store, "nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing chunk error = %v, want ErrNotFound", err)
			}
		})
	}
}

// TestGetRangeShortFile covers the vectored path's short-read handling: a
// range run extending past EOF must surface as ErrUnexpectedEOF, not a
// silent prefix.
func TestGetRangeShortFile(t *testing.T) {
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Put("b", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// Adjacent run whose tail extends past EOF: the vectored read must
	// report ErrUnexpectedEOF even though the first buffer was satisfied.
	if _, err := dir.GetRanges("b", []ByteRange{{0, 8}, {8, 8}}); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := dir.GetRange("b", -1, 4); err == nil {
		t.Fatal("negative offset accepted")
	}
}
