package agd

import (
	"bytes"
	"testing"
)

// TestChecksumAllocOverhead guards the Table-1 allocation discipline: the
// CRC32-C footer must not add allocations to the encode or decode paths —
// encode's capacity slack absorbs the 8 footer bytes, and verification is
// pure arithmetic over the blob.
func TestChecksumAllocOverhead(t *testing.T) {
	b := NewChunkBuilder(TypeRaw, 0)
	for i := 0; i < 256; i++ {
		b.Append(bytes.Repeat([]byte{byte('a' + i%26)}, 64))
	}
	c := b.Chunk()

	measureEnc := func(cd Codec) float64 {
		var dst []byte
		return testing.AllocsPerRun(50, func() {
			var err error
			dst, err = cd.EncodeAppend(dst[:0], c, CompressNone)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	encWith := measureEnc(Codec{})
	encWithout := measureEnc(Codec{NoChecksum: true})
	if encWith > encWithout {
		t.Fatalf("checksummed encode allocates more: %v vs %v allocs/run", encWith, encWithout)
	}

	blobWith, err := Codec{}.Encode(c, CompressNone)
	if err != nil {
		t.Fatal(err)
	}
	blobWithout, err := Codec{NoChecksum: true}.Encode(c, CompressNone)
	if err != nil {
		t.Fatal(err)
	}
	measureDec := func(blob []byte) float64 {
		var ch Chunk
		return testing.AllocsPerRun(50, func() {
			if err := DecodeChunkInto(&ch, blob); err != nil {
				t.Fatal(err)
			}
		})
	}
	decWith := measureDec(blobWith)
	decWithout := measureDec(blobWithout)
	if decWith > decWithout {
		t.Fatalf("checksummed decode allocates more: %v vs %v allocs/run", decWith, decWithout)
	}
}
