package agd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"persona/internal/dataflow"
)

func TestFutureResolveAndWait(t *testing.T) {
	fut, resolve := NewFuture()
	select {
	case <-fut.Done():
		t.Fatal("future done before resolve")
	default:
	}
	go resolve([]byte("data"), nil)
	got, err := fut.Wait(context.Background())
	if err != nil || string(got) != "data" {
		t.Fatalf("Wait = %q, %v", got, err)
	}
	// Waiting again returns the same result.
	if got, err = fut.Wait(context.Background()); err != nil || string(got) != "data" {
		t.Fatalf("second Wait = %q, %v", got, err)
	}

	pre := ResolvedFuture(nil, ErrNotFound)
	if _, err := pre.Wait(context.Background()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolved future err = %v", err)
	}
}

func TestFutureWaitCancelled(t *testing.T) {
	fut, _ := NewFuture() // never resolved
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fut.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v", err)
	}
}

// plainStore hides a MemStore's async methods, forcing AsyncOf to use the
// generic goroutine adapter.
type plainStore struct{ BlobStore }

func TestAsyncOfNativePassthrough(t *testing.T) {
	mem := NewMemStore()
	if AsyncOf(mem) != AsyncBlobStore(mem) {
		t.Fatal("MemStore not passed through AsyncOf")
	}
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if AsyncOf(dir) != AsyncBlobStore(dir) {
		t.Fatal("DirStore not passed through AsyncOf")
	}
}

func TestAsyncAdapterAndNativesMatchGet(t *testing.T) {
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	stores := map[string]AsyncBlobStore{
		"mem":     mem,
		"dir":     dir,
		"adapter": AsyncOf(plainStore{NewMemStore()}),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			names := make([]string, 20)
			for i := range names {
				names[i] = fmt.Sprintf("blob-%02d", i)
				if err := s.Put(names[i], []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			futs := s.GetBatch(names)
			if len(futs) != len(names) {
				t.Fatalf("GetBatch returned %d futures", len(futs))
			}
			for i, fut := range futs {
				got, err := fut.Wait(context.Background())
				if err != nil || string(got) != fmt.Sprintf("payload-%02d", i) {
					t.Fatalf("future %d = %q, %v", i, got, err)
				}
			}
			// A missing blob fails only its own future.
			futs = s.GetBatch([]string{"blob-00", "missing"})
			if _, err := futs[0].Wait(context.Background()); err != nil {
				t.Fatalf("present blob failed: %v", err)
			}
			if _, err := futs[1].Wait(context.Background()); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing blob err = %v", err)
			}
		})
	}
}

// streamTestDataset builds a dataset and returns the expected per-chunk
// records of every column, via the synchronous read path.
func streamTestDataset(t *testing.T, store BlobStore, n, cs int) (*Dataset, [][][]string) {
	t.Helper()
	writeTestDataset(t, store, "ds", n, cs)
	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	want := make([][][]string, len(ds.Manifest.Chunks))
	for ci := range ds.Manifest.Chunks {
		want[ci] = make([][]string, len(ds.Manifest.Columns))
		for col, name := range ds.Manifest.Columns {
			c, err := ds.ReadChunk(name, ci)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < c.NumRecords(); r++ {
				rec, err := c.Record(r)
				if err != nil {
					t.Fatal(err)
				}
				want[ci][col] = append(want[ci][col], string(rec))
			}
		}
	}
	return ds, want
}

func checkStreamChunk(t *testing.T, sc *StreamChunk, want [][][]string) {
	t.Helper()
	for col, c := range sc.Chunks() {
		recs := want[sc.Index][col]
		if c.NumRecords() != len(recs) {
			t.Fatalf("chunk %d col %d: %d records, want %d", sc.Index, col, c.NumRecords(), len(recs))
		}
		for r := range recs {
			rec, err := c.Record(r)
			if err != nil {
				t.Fatal(err)
			}
			if string(rec) != recs[r] {
				t.Fatalf("chunk %d col %d record %d = %q, want %q", sc.Index, col, r, rec, recs[r])
			}
		}
	}
}

func TestChunkStreamDeliversAllChunks(t *testing.T) {
	ds, want := streamTestDataset(t, NewMemStore(), 50, 8) // 7 chunks
	for _, window := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			stream, err := ds.Stream(StreamOptions{Prefetch: window})
			if err != nil {
				t.Fatal(err)
			}
			defer stream.Close()
			next := 0
			for {
				sc, err := stream.Next(context.Background())
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if sc.Index != next {
					t.Fatalf("chunk %d delivered, want %d", sc.Index, next)
				}
				checkStreamChunk(t, sc, want)
				next++
			}
			if next != len(ds.Manifest.Chunks) {
				t.Fatalf("delivered %d chunks, want %d", next, len(ds.Manifest.Chunks))
			}
			// The stream stays exhausted.
			if _, err := stream.Next(context.Background()); err != io.EOF {
				t.Fatalf("Next after EOF = %v", err)
			}
		})
	}
}

func TestChunkStreamColumnSubsetAndRange(t *testing.T) {
	ds, want := streamTestDataset(t, NewMemStore(), 50, 8)
	stream, err := ds.Stream(StreamOptions{
		Columns: []string{ColQual}, Start: 2, End: 5, Prefetch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	qualCol := 0
	for i, name := range ds.Manifest.Columns {
		if name == ColQual {
			qualCol = i
		}
	}
	for i := 2; i < 5; i++ {
		sc, err := stream.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sc.Index != i {
			t.Fatalf("Index = %d, want %d", sc.Index, i)
		}
		if sc.Col(ColQual) == nil || sc.Col(ColBases) != nil {
			t.Fatal("column subset not respected")
		}
		c := sc.Col(ColQual)
		for r := 0; r < c.NumRecords(); r++ {
			rec, _ := c.Record(r)
			if string(rec) != want[i][qualCol][r] {
				t.Fatalf("chunk %d qual record %d = %q", i, r, rec)
			}
		}
	}
	if _, err := stream.Next(context.Background()); err != io.EOF {
		t.Fatalf("range end = %v, want EOF", err)
	}

	if _, err := ds.Stream(StreamOptions{Columns: []string{"nope"}}); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("unknown column err = %v", err)
	}
}

func TestChunkStreamPoolRecycles(t *testing.T) {
	ds, want := streamTestDataset(t, NewMemStore(), 60, 6) // 10 chunks
	cols := len(ds.Manifest.Columns)
	pool := dataflow.NewItemPool(cols+1, // barely enough for one chunk in hand
		func() *Chunk { return new(Chunk) },
		func(c *Chunk) *Chunk { c.Reset(); return c },
	)
	stream, err := ds.Stream(StreamOptions{Prefetch: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	delivered := 0
	for {
		sc, err := stream.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		checkStreamChunk(t, sc, want)
		sc.Release()
		delivered++
	}
	if delivered != 10 {
		t.Fatalf("delivered %d chunks", delivered)
	}
	if pool.Recycled() < int64((delivered-1)*cols) {
		t.Fatalf("pool recycled %d times; chunks leaked from the pool", pool.Recycled())
	}
	if pool.Free() != pool.Size() {
		t.Fatalf("%d of %d pool items free after stream end", pool.Free(), pool.Size())
	}
}

func TestChunkStreamConcurrentConsumers(t *testing.T) {
	ds, want := streamTestDataset(t, NewMemStore(), 120, 7) // 18 chunks
	stream, err := ds.Stream(StreamOptions{Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sc, err := stream.Next(context.Background())
				if err == io.EOF {
					return
				}
				if err != nil {
					errs <- err
					return
				}
				checkStreamChunk(t, sc, want)
				mu.Lock()
				if seen[sc.Index] {
					mu.Unlock()
					errs <- fmt.Errorf("chunk %d delivered twice", sc.Index)
					return
				}
				seen[sc.Index] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if len(seen) != len(ds.Manifest.Chunks) {
		t.Fatalf("saw %d distinct chunks, want %d", len(seen), len(ds.Manifest.Chunks))
	}
}

func TestChunkStreamCorruptBlob(t *testing.T) {
	store := NewMemStore()
	ds, _ := streamTestDataset(t, store, 50, 8)
	name := ds.Manifest.ChunkBlobPath(3, ColBases)
	blob, err := store.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, blob...)
	bad[len(bad)-1] ^= 0xff
	if err := store.Put(name, bad); err != nil {
		t.Fatal(err)
	}
	stream, err := ds.Stream(StreamOptions{Prefetch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	for i := 0; ; i++ {
		_, err := stream.Next(context.Background())
		if i < 3 && err != nil {
			t.Fatalf("chunk %d failed early: %v", i, err)
		}
		if i == 3 {
			if err == nil {
				t.Fatal("corrupt chunk delivered")
			}
			break
		}
	}
}

func TestChunkStreamClose(t *testing.T) {
	ds, _ := streamTestDataset(t, NewMemStore(), 50, 8)
	stream, err := ds.Stream(StreamOptions{Prefetch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	if _, err := stream.Next(context.Background()); err != io.EOF {
		t.Fatalf("Next after Close = %v, want EOF", err)
	}
	stream.Close() // idempotent
}

// TestChunkStreamOverlapsLatency is the tentpole's behavioural check: with a
// per-Get latency of d, a synchronous reader pays ~chunks*cols*d while a
// windowed stream overlaps the fetches. The margin (3x) is wide enough for
// CI noise but tight enough that a silently serialized stream fails.
func TestChunkStreamOverlapsLatency(t *testing.T) {
	const d = 2 * time.Millisecond
	store := NewMemStore()
	ds, _ := streamTestDataset(t, store, 96, 8) // 12 chunks, 3 columns
	slow := AsyncOf(plainStore{BlobStore: delayStore{store, d}})
	sds := OpenManifest(slow, ds.Manifest)

	elapsed := func(window int) time.Duration {
		stream, err := sds.Stream(StreamOptions{Prefetch: window})
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		start := time.Now()
		for {
			if _, err := stream.Next(context.Background()); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	serial := elapsed(1)
	windowed := elapsed(8)
	if windowed > serial/3 {
		t.Fatalf("prefetch window hid no latency: sync %v, windowed %v", serial, windowed)
	}
}

// delayStore adds fixed latency to every Get.
type delayStore struct {
	BlobStore
	d time.Duration
}

func (s delayStore) Get(name string) ([]byte, error) {
	time.Sleep(s.d)
	return s.BlobStore.Get(name)
}
