package agd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestDirStoreGetBatch(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// More blobs than the worker bound, so the batch loop wraps around.
	const n = 3 * dirStoreParallelism
	want := make(map[string][]byte, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("col/blob-%03d", i)
		blob := bytes.Repeat([]byte{byte(i)}, 100+i*37)
		want[names[i]] = blob
		if err := store.Put(names[i], blob); err != nil {
			t.Fatal(err)
		}
	}

	futs := store.GetBatch(names)
	// The contract says implementations must not retain the slice: clobber
	// it while the reads are in flight.
	for i := range names {
		names[i] = "clobbered"
	}
	for i, fut := range futs {
		name := fmt.Sprintf("col/blob-%03d", i)
		got, err := fut.Wait(context.Background())
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if !bytes.Equal(got, want[name]) {
			t.Fatalf("blob %d: got %d bytes, want %d", i, len(got), len(want[name]))
		}
	}
}

func TestDirStoreGetBatchMissing(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	futs := store.GetBatch([]string{"a", "missing"})
	if _, err := futs[0].Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := futs[1].Wait(context.Background()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: err = %v, want ErrNotFound", err)
	}
}

func TestDirStoreGetBatchEmptyAndZeroValue(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if futs := store.GetBatch(nil); len(futs) != 0 {
		t.Fatalf("empty batch returned %d futures", len(futs))
	}
	// The zero-value store (no semaphore) reads synchronously.
	var zero DirStore
	zero.root = store.root
	if err := store.Put("z", []byte("zz")); err != nil {
		t.Fatal(err)
	}
	futs := zero.GetBatch([]string{"z"})
	got, err := futs[0].Wait(context.Background())
	if err != nil || string(got) != "zz" {
		t.Fatalf("zero-value GetBatch = %q, %v", got, err)
	}
}
