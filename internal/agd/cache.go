package agd

import (
	"context"
	"errors"
	"strings"
	"sync"
)

// This file is the read-through decoded-chunk cache of the storage tiering
// layer (ROADMAP item 4b): hot column chunks — reference datasets the job
// server re-reads across jobs, repeat pipeline sources — skip the fetch, the
// CRC verify and the decode entirely on a hit. Keys are chunk blob names
// ("<dataset>/chunk-NNNNNN.<col>"), i.e. (dataset, column, chunk); the
// budget is bytes of decoded chunk memory, evicted LRU.
//
// Two contracts make the cache safe next to the pooled-chunk lifecycle:
//
//   - Fills are singleflight: the first stream to miss a key owns its fill
//     (fetch + decode + validate, then Commit or Abort); concurrent streams
//     pin the in-flight entry and Wait. One decode per chunk, however many
//     stages ask.
//   - Cached chunks are never pool-owned. A fill decodes into a freshly
//     allocated Chunk, and delivered cache hits are pinned until the
//     consumer releases its row group — so no cached chunk can ever be
//     Reset under a reader by an ItemPool recycle, structurally.

// ErrCacheAbandoned reports that the stream owning an in-flight fill closed
// before completing it. Waiters fall back to a direct fetch + decode.
var ErrCacheAbandoned = errors.New("agd: cache fill abandoned")

// CacheStats is a point-in-time snapshot of a ChunkCache's counters.
type CacheStats struct {
	// Hits counts lookups served from a resident entry or an in-flight
	// fill (waiters on a singleflight fill count as hits: they skip the
	// fetch and decode). Misses counts lookups that had to start a fill.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Fills counts completed fills; FillErrors counts fills aborted by a
	// fetch, decode or validation error (those entries are never cached).
	Fills      int64 `json:"fills"`
	FillErrors int64 `json:"fill_errors"`
	// Evictions counts entries evicted by the LRU byte budget.
	Evictions int64 `json:"evictions"`
	// Bytes is resident decoded-chunk memory; Capacity the budget.
	Bytes    int64 `json:"bytes"`
	Capacity int64 `json:"capacity"`
	// Entries is resident chunk count; Pinned how many are pinned by
	// in-flight consumers right now.
	Entries int `json:"entries"`
	Pinned  int `json:"pinned"`
}

// Delta subtracts b's cumulative counters from a's, keeping a's gauges
// (Bytes, Capacity, Entries, Pinned) — the per-run view pipeline reports use.
func (a CacheStats) Delta(b CacheStats) CacheStats {
	a.Hits -= b.Hits
	a.Misses -= b.Misses
	a.Fills -= b.Fills
	a.FillErrors -= b.FillErrors
	a.Evictions -= b.Evictions
	return a
}

// CacheEntry is one cache slot: resident, or an in-flight singleflight fill.
type CacheEntry struct {
	key   string
	chunk *Chunk
	size  int64
	err   error
	// abandoned marks a fill whose owner closed before completing it;
	// waiters fall back to a direct read.
	abandoned bool
	// ready closes when the fill completes (Commit or Abort).
	ready chan struct{}

	pins int
	// dropped marks an entry removed from the index (evicted, flushed or
	// invalidated) while still pinned: Unpin and Commit must not touch the
	// LRU list or byte accounting for it.
	dropped    bool
	prev, next *CacheEntry
}

// Chunk returns the entry's decoded chunk once ready. Valid while pinned.
func (e *CacheEntry) Chunk() *Chunk { return e.chunk }

// Wait blocks until the entry's fill completes, returning the decoded chunk,
// the fill error, or ErrCacheAbandoned when the filling stream closed early.
func (e *CacheEntry) Wait(ctx context.Context) (*Chunk, error) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.err != nil {
		return nil, e.err
	}
	if e.abandoned {
		return nil, ErrCacheAbandoned
	}
	return e.chunk, nil
}

// ChunkCache is a read-through LRU cache of decoded chunks with a byte
// budget. All methods are safe for concurrent use.
type ChunkCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[string]*CacheEntry
	// LRU list of resident entries: head is most recently used.
	head, tail *CacheEntry

	hits, misses, fills, fillErrors, evictions int64
}

// NewChunkCache returns a cache bounded to capacity bytes of decoded chunk
// memory (minimum one chunk: a single entry larger than the budget still
// caches, then evicts on the next commit).
func NewChunkCache(capacity int64) *ChunkCache {
	return &ChunkCache{capacity: capacity, entries: make(map[string]*CacheEntry)}
}

// Lookup pins and returns the entry for key. fill reports ownership: true
// means the caller must complete the fill (fetch + decode, then Commit or
// Abort — never neither); false means the entry is resident or another
// caller's fill is in flight (Wait for it). Every returned entry is pinned
// and must be Unpinned when the caller's use of the chunk ends.
func (c *ChunkCache) Lookup(key string) (e *CacheEntry, fill bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.entries[key]; e != nil {
		e.pins++
		c.hits++
		if e.chunk != nil && !e.dropped {
			c.touchLocked(e)
		}
		return e, false
	}
	e = &CacheEntry{key: key, ready: make(chan struct{}), pins: 1}
	c.entries[key] = e
	c.misses++
	return e, true
}

// Commit completes a fill with its decoded, validated chunk: the entry
// becomes resident, waiters wake, and the LRU evicts unpinned entries while
// over budget. The chunk must be freshly allocated (never pool-owned).
func (c *ChunkCache) Commit(e *CacheEntry, chunk *Chunk) {
	c.mu.Lock()
	e.chunk = chunk
	e.size = chunk.MemSize()
	c.fills++
	if !e.dropped { // a racing Flush/Invalidate already dropped the entry
		c.bytes += e.size
		c.pushFrontLocked(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
}

// Abort completes a fill without caching: err records a failed fetch,
// decode or validation (a corrupt blob is never cached); nil err marks the
// fill abandoned (owner closed early) and waiters fall back to direct reads.
// The entry is removed from the index so the next Lookup restarts the fill.
func (c *ChunkCache) Abort(e *CacheEntry, err error) {
	c.mu.Lock()
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	e.dropped = true
	if err != nil {
		e.err = err
		c.fillErrors++
	} else {
		e.abandoned = true
	}
	c.mu.Unlock()
	close(e.ready)
}

// Unpin releases one pin. Unpinned resident entries become evictable.
func (c *ChunkCache) Unpin(e *CacheEntry) {
	c.mu.Lock()
	e.pins--
	if e.pins == 0 && e.chunk != nil && !e.dropped {
		c.evictLocked() // a pin may have held the cache over budget
	}
	c.mu.Unlock()
}

// Flush drops every entry, returning what was resident. Pinned chunks stay
// valid for their holders (they keep their references); in-flight fills
// complete but are not cached.
func (c *ChunkCache) Flush() (entries int, bytes int64) {
	return c.dropMatching("")
}

// InvalidatePrefix drops entries whose key starts with prefix — the staleness
// hook for dataset overwrites.
func (c *ChunkCache) InvalidatePrefix(prefix string) (entries int, bytes int64) {
	return c.dropMatching(prefix)
}

func (c *ChunkCache) dropMatching(prefix string) (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if prefix != "" && !strings.HasPrefix(key, prefix) {
			continue
		}
		delete(c.entries, key)
		if e.chunk != nil && !e.dropped {
			c.removeLocked(e)
			c.bytes -= e.size
			entries++
			bytes += e.size
		}
		e.dropped = true
	}
	return entries, bytes
}

// Stats snapshots the counters.
func (c *ChunkCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits: c.hits, Misses: c.misses,
		Fills: c.fills, FillErrors: c.fillErrors,
		Evictions: c.evictions,
		Bytes:     c.bytes, Capacity: c.capacity,
	}
	for _, e := range c.entries {
		if e.chunk != nil && !e.dropped {
			s.Entries++
			if e.pins > 0 {
				s.Pinned++
			}
		}
	}
	return s
}

// touchLocked moves a resident entry to the LRU front.
func (c *ChunkCache) touchLocked(e *CacheEntry) {
	if c.head == e {
		return
	}
	c.removeLocked(e)
	c.pushFrontLocked(e)
}

func (c *ChunkCache) pushFrontLocked(e *CacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ChunkCache) removeLocked(e *CacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictLocked drops unpinned entries from the LRU tail while over budget.
// Pinned entries are skipped — a pin is a liveness promise — so a fully
// pinned cache can sit over budget until pins release.
func (c *ChunkCache) evictLocked() {
	for e := c.tail; e != nil && c.bytes > c.capacity; {
		prev := e.prev
		if e.pins == 0 {
			c.removeLocked(e)
			delete(c.entries, e.key)
			e.dropped = true
			c.bytes -= e.size
			c.evictions++
		}
		e = prev
	}
}
