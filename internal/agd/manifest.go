package agd

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
)

// RefSeq records the name and length of one reference contig the dataset was
// aligned against, mirroring the paper's manifest contents ("names and sizes
// of contiguous reference sequences to which the dataset reads have been
// aligned").
type RefSeq struct {
	Name   string `json:"name"`
	Length int64  `json:"length"`
}

// ChunkEntry describes one row-group of chunk files in the manifest.
type ChunkEntry struct {
	// Path is the blob name prefix; column chunks live at Path + "." + col.
	Path string `json:"path"`
	// First is the dataset-wide ordinal of the chunk's first record.
	First uint64 `json:"first"`
	// Records is the number of records in the chunk.
	Records uint32 `json:"records"`
}

// Manifest is the descriptive metadata file of an AGD dataset, stored as
// JSON under "<name>/manifest.json" (Fig. 2 of the paper).
type Manifest struct {
	Name    string       `json:"name"`
	Version int          `json:"version"`
	Columns []string     `json:"columns"`
	Chunks  []ChunkEntry `json:"records"`
	RefSeqs []RefSeq     `json:"ref_seqs,omitempty"`
	// SortedBy records the sort order ("", "location" or "metadata").
	SortedBy string `json:"sorted_by,omitempty"`
}

// manifestPath returns the blob name of a dataset's manifest.
func manifestPath(name string) string { return name + "/manifest.json" }

// chunkPath returns the blob name of one column chunk.
func chunkPath(entry ChunkEntry, col string) string { return entry.Path + "." + col }

// ChunkEntryPath returns the canonical path of chunk idx of a dataset —
// the single definition of the "<name>/chunk-NNNNNN" convention, shared by
// the Writer and any parallel writer that must produce identical layouts
// (agdsort's range-partitioned merge).
func ChunkEntryPath(dataset string, idx int) string {
	return fmt.Sprintf("%s/chunk-%06d", dataset, idx)
}

// ColumnBlobPath returns the blob name of one column chunk of an entry.
func ColumnBlobPath(entry ChunkEntry, col string) string { return chunkPath(entry, col) }

// NewManifest assembles a manifest in the canonical form the Writer
// produces on Close (version, column order from the specs).
func NewManifest(name string, cols []ColumnSpec, chunks []ChunkEntry, refSeqs []RefSeq, sortedBy string) *Manifest {
	m := &Manifest{Name: name, Version: 1, Chunks: chunks, RefSeqs: refSeqs, SortedBy: sortedBy}
	for _, c := range cols {
		m.Columns = append(m.Columns, c.Name)
	}
	return m
}

// ChunkBlobPath returns the blob name of column col of chunk i, without
// requiring the column to be listed yet — distributed writers use it to
// store result chunks before the column is registered.
func (m *Manifest) ChunkBlobPath(i int, col string) string {
	return chunkPath(m.Chunks[i], col)
}

// RegisterColumn appends a column name to the manifest (whose chunk blobs
// must already exist, e.g. written by cluster workers) and persists the
// updated manifest. On range-capable stores the existence checks probe only
// each blob's 40-byte header (validated against the manifest's record
// counts) on a bounded worker pool; elsewhere they fall back to async
// full-blob batches, costing a round trip per window instead of one per
// chunk.
func RegisterColumn(store BlobStore, m *Manifest, col string) (*Manifest, error) {
	if m.HasColumn(col) {
		return nil, fmt.Errorf("agd: dataset %q already has column %q", m.Name, col)
	}
	if err := verifyColumnBlobs(store, m, col); err != nil {
		return nil, err
	}
	return RegisterColumnUnchecked(store, m, col)
}

// RegisterColumnUnchecked appends a column and persists the manifest without
// probing the chunk blobs — for callers that already know they exist: a
// writer that just produced them, or the Session's column-verified cache on
// repeat jobs, where the probe round trips are pure overhead.
func RegisterColumnUnchecked(store BlobStore, m *Manifest, col string) (*Manifest, error) {
	if m.HasColumn(col) {
		return nil, fmt.Errorf("agd: dataset %q already has column %q", m.Name, col)
	}
	updated := *m
	updated.Columns = append(append([]string{}, m.Columns...), col)
	if err := WriteManifest(store, &updated); err != nil {
		return nil, err
	}
	return &updated, nil
}

// registerProbeWorkers bounds concurrent header probes during RegisterColumn.
const registerProbeWorkers = 16

// verifyColumnBlobs checks that every chunk blob of col exists (and, where
// only headers are fetched, that record counts match the manifest).
func verifyColumnBlobs(store BlobStore, m *Manifest, col string) error {
	if rs, ok := store.(RangeBlobStore); ok {
		workers := min(registerProbeWorkers, len(m.Chunks))
		var cursor atomic.Int64
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(m.Chunks) {
						errs <- nil
						return
					}
					meta, err := ReadChunkMeta(rs, m.ChunkBlobPath(i, col))
					if err != nil {
						errs <- fmt.Errorf("agd: registering column %q: chunk %d: %w", col, i, err)
						return
					}
					if meta.Records != m.Chunks[i].Records {
						errs <- fmt.Errorf("agd: registering column %q: chunk %d has %d records, manifest says %d",
							col, i, meta.Records, m.Chunks[i].Records)
						return
					}
				}
			}()
		}
		var first error
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	const checkWindow = 64
	as := AsyncOf(store)
	names := make([]string, 0, checkWindow)
	for lo := 0; lo < len(m.Chunks); lo += checkWindow {
		hi := min(lo+checkWindow, len(m.Chunks))
		names = names[:0]
		for i := lo; i < hi; i++ {
			names = append(names, m.ChunkBlobPath(i, col))
		}
		for i, fut := range as.GetBatch(names) {
			if _, err := fut.Wait(context.Background()); err != nil {
				return fmt.Errorf("agd: registering column %q: chunk %d blob missing: %w", col, lo+i, err)
			}
		}
	}
	return nil
}

// NumRecords returns the dataset's total record count.
func (m *Manifest) NumRecords() uint64 {
	var n uint64
	for _, c := range m.Chunks {
		n += uint64(c.Records)
	}
	return n
}

// HasColumn reports whether the manifest lists col.
func (m *Manifest) HasColumn(col string) bool {
	for _, c := range m.Columns {
		if c == col {
			return true
		}
	}
	return false
}

// Validate checks manifest invariants: contiguous, row-grouped chunks.
func (m *Manifest) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("agd: manifest has empty name")
	}
	if len(m.Columns) == 0 {
		return fmt.Errorf("agd: manifest %q has no columns", m.Name)
	}
	var next uint64
	for i, c := range m.Chunks {
		if c.First != next {
			return fmt.Errorf("agd: manifest %q chunk %d starts at %d, want %d", m.Name, i, c.First, next)
		}
		if c.Records == 0 {
			return fmt.Errorf("agd: manifest %q chunk %d is empty", m.Name, i)
		}
		next += uint64(c.Records)
	}
	return nil
}

// WriteManifest stores the manifest in the blob store.
func WriteManifest(store BlobStore, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return store.Put(manifestPath(m.Name), data)
}

// ReadManifest loads a dataset's manifest from the blob store.
func ReadManifest(store BlobStore, name string) (*Manifest, error) {
	data, err := store.Get(manifestPath(name))
	if err != nil {
		return nil, fmt.Errorf("agd: reading manifest for %q: %w", name, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("agd: parsing manifest for %q: %w", name, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReconstructManifest rebuilds a manifest by listing and inspecting a
// dataset's chunk blobs — the paper notes the manifest "can be reconstructed
// from the set of chunk files it describes".
func ReconstructManifest(store BlobStore, name string) (*Manifest, error) {
	names, err := store.List(name + "/chunk-")
	if err != nil {
		return nil, err
	}
	type chunkInfo struct {
		path    string
		first   uint64
		records uint32
	}
	byPath := make(map[string]*chunkInfo)
	colSet := make(map[string]bool)
	for _, blobName := range names {
		// Blob names look like "<name>/chunk-000042.<col>".
		dot := -1
		for i := len(blobName) - 1; i >= 0; i-- {
			if blobName[i] == '.' {
				dot = i
				break
			}
		}
		if dot < 0 {
			continue
		}
		path, col := blobName[:dot], blobName[dot+1:]
		colSet[col] = true
		blob, err := store.Get(blobName)
		if err != nil {
			return nil, err
		}
		c, err := DecodeChunk(blob)
		if err != nil {
			return nil, fmt.Errorf("agd: reconstructing %q from %q: %w", name, blobName, err)
		}
		info, ok := byPath[path]
		if !ok {
			byPath[path] = &chunkInfo{path: path, first: c.FirstOrdinal, records: uint32(c.NumRecords())}
			continue
		}
		if info.first != c.FirstOrdinal || info.records != uint32(c.NumRecords()) {
			return nil, fmt.Errorf("%w: %q", ErrRowGroup, path)
		}
	}
	if len(byPath) == 0 {
		return nil, fmt.Errorf("agd: no chunks found for dataset %q", name)
	}

	m := &Manifest{Name: name, Version: 1}
	for col := range colSet {
		m.Columns = append(m.Columns, col)
	}
	sort.Strings(m.Columns)
	for _, info := range byPath {
		m.Chunks = append(m.Chunks, ChunkEntry{Path: info.path, First: info.first, Records: info.records})
	}
	sort.Slice(m.Chunks, func(i, j int) bool { return m.Chunks[i].First < m.Chunks[j].First })
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
