package agd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// testChunk builds a fresh raw chunk with n records of the given payload.
func testChunk(t testing.TB, payload string, n int) *Chunk {
	t.Helper()
	b := NewChunkBuilder(TypeRaw, 0)
	for i := 0; i < n; i++ {
		b.Append([]byte(payload))
	}
	return b.Chunk()
}

// probeAbsent asserts key is not resident. A probe Lookup that wins fill
// ownership must complete it (Abort), or later readers would wait forever.
func probeAbsent(t testing.TB, c *ChunkCache, key string) {
	t.Helper()
	e, fill := c.Lookup(key)
	if !fill {
		c.Unpin(e)
		t.Fatalf("entry %q unexpectedly resident", key)
	}
	c.Abort(e, nil)
	c.Unpin(e)
}

// fillCache commits a fresh chunk under key and releases the pin.
func fillCache(t testing.TB, c *ChunkCache, key string, recs int) *Chunk {
	t.Helper()
	e, fill := c.Lookup(key)
	if !fill {
		t.Fatalf("Lookup(%q): expected fill ownership", key)
	}
	ch := testChunk(t, "ACGT", recs)
	c.Commit(e, ch)
	c.Unpin(e)
	return ch
}

func TestChunkCacheLRUOrder(t *testing.T) {
	one := testChunk(t, "ACGT", 4).MemSize()
	c := NewChunkCache(3 * one)
	fillCache(t, c, "a", 4)
	fillCache(t, c, "b", 4)
	fillCache(t, c, "c", 4)

	// Touch "a" so "b" becomes the LRU tail.
	if e, fill := c.Lookup("a"); fill {
		t.Fatal("resident entry reported as fill")
	} else {
		c.Unpin(e)
	}

	// Committing "d" exceeds the budget by one entry: "b" must go, not "a".
	fillCache(t, c, "d", 4)
	probeAbsent(t, c, "b")
	for _, key := range []string{"a", "c", "d"} {
		e, fill := c.Lookup(key)
		if fill {
			t.Fatalf("entry %q was evicted out of LRU order", key)
		}
		c.Unpin(e)
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestChunkCacheByteBudget drives a random commit/lookup/unpin schedule and
// checks the accounting invariants: resident bytes equal the sum of resident
// entry sizes, and with no pins outstanding the cache is within budget.
func TestChunkCacheByteBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const budget = 16 << 10
	c := NewChunkCache(budget)
	chunks := make(map[string]*Chunk)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("ds/chunk-%06d.bases", rng.Intn(40))
		e, fill := c.Lookup(key)
		if fill {
			ch := testChunk(t, strings.Repeat("A", 16+rng.Intn(512)), 1+rng.Intn(8))
			chunks[key] = ch
			c.Commit(e, ch)
		} else if got := e.Chunk(); got == nil {
			t.Fatalf("resident entry %q has nil chunk", key)
		}
		c.Unpin(e)

		s := c.Stats()
		if s.Pinned != 0 {
			t.Fatalf("pinned = %d with no outstanding consumers", s.Pinned)
		}
		if s.Bytes > budget {
			t.Fatalf("bytes %d over budget %d with nothing pinned", s.Bytes, budget)
		}
		var sum int64
		n := 0
		for key, ch := range chunks {
			if e, fill := c.Lookup(key); !fill {
				sum += ch.MemSize()
				n++
				c.Unpin(e)
			} else {
				// Our probe Lookup started a fill; abandon it.
				c.Abort(e, nil)
				c.Unpin(e)
				delete(chunks, key)
			}
		}
		if s2 := c.Stats(); s2.Bytes != sum || s2.Entries != n {
			t.Fatalf("stats bytes=%d entries=%d, recomputed bytes=%d entries=%d",
				s2.Bytes, s2.Entries, sum, n)
		}
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatal("schedule never evicted; budget property unexercised")
	}
}

// TestChunkCacheSingleflight has many goroutines race Lookup on one key:
// exactly one must win fill ownership, everyone else waits and sees the
// winner's chunk. Run under -race this is the cache's concurrency test.
func TestChunkCacheSingleflight(t *testing.T) {
	c := NewChunkCache(1 << 20)
	const workers = 16
	var (
		fills  int64
		fillMu sync.Mutex
		wg     sync.WaitGroup
		want   *Chunk
	)
	start := make(chan struct{})
	got := make([]*Chunk, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			e, fill := c.Lookup("ds/chunk-000000.bases")
			if fill {
				time.Sleep(time.Millisecond) // widen the wait window
				ch := testChunk(t, "ACGT", 4)
				fillMu.Lock()
				fills++
				want = ch
				fillMu.Unlock()
				c.Commit(e, ch)
				got[w] = ch
			} else {
				ch, err := e.Wait(context.Background())
				if err != nil {
					t.Errorf("waiter %d: %v", w, err)
				}
				got[w] = ch
			}
			c.Unpin(e)
		}(w)
	}
	close(start)
	wg.Wait()
	if fills != 1 {
		t.Fatalf("fills = %d, want exactly 1", fills)
	}
	for w, ch := range got {
		if ch != want {
			t.Fatalf("worker %d got a different chunk than the filler", w)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != workers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", s.Hits, s.Misses, workers-1)
	}
}

func TestChunkCachePinnedNotEvicted(t *testing.T) {
	one := testChunk(t, "ACGT", 4).MemSize()
	c := NewChunkCache(one) // room for exactly one entry
	fillCache(t, c, "a", 4)
	// Pin "a", then overflow the budget: "a" must survive (a pin is a
	// liveness promise), leaving the cache temporarily over budget.
	ea, fill := c.Lookup("a")
	if fill {
		t.Fatal("a missing")
	}
	fillCache(t, c, "b", 4)
	if ea.Chunk() == nil {
		t.Fatal("pinned entry lost its chunk")
	}
	if _, fill := c.Lookup("a"); fill {
		t.Fatal("pinned entry evicted")
	} else {
		c.Unpin(ea) // the probe's pin
	}
	// Releasing the original pin makes "a" evictable; the budget squeeze
	// resolves on Unpin.
	c.Unpin(ea)
	if s := c.Stats(); s.Bytes > one {
		t.Fatalf("bytes %d over budget %d after pins released", s.Bytes, one)
	}
}

func TestChunkCacheAbortPaths(t *testing.T) {
	c := NewChunkCache(1 << 20)

	// Error abort: the failure propagates to waiters, nothing is cached,
	// and the next Lookup restarts the fill.
	e, fill := c.Lookup("k")
	if !fill {
		t.Fatal("want fill")
	}
	waiter, fill2 := c.Lookup("k")
	if fill2 {
		t.Fatal("second lookup won a second fill")
	}
	bad := errors.New("corrupt blob")
	c.Abort(e, bad)
	c.Unpin(e)
	if _, err := waiter.Wait(context.Background()); !errors.Is(err, bad) {
		t.Fatalf("waiter error = %v, want the abort error", err)
	}
	c.Unpin(waiter)
	probeAbsent(t, c, "k")
	if s := c.Stats(); s.FillErrors != 1 || s.Entries != 0 {
		t.Fatalf("fillErrors=%d entries=%d, want 1/0", s.FillErrors, s.Entries)
	}

	// Abandoned abort (owner closed early): waiters get ErrCacheAbandoned.
	e2, _ := c.Lookup("k2")
	w2, _ := c.Lookup("k2")
	c.Abort(e2, nil)
	c.Unpin(e2)
	if _, err := w2.Wait(context.Background()); !errors.Is(err, ErrCacheAbandoned) {
		t.Fatalf("waiter error = %v, want ErrCacheAbandoned", err)
	}
	c.Unpin(w2)
}

func TestChunkCacheFlushAndInvalidate(t *testing.T) {
	c := NewChunkCache(1 << 20)
	fillCache(t, c, "ds1/chunk-000000.bases", 4)
	fillCache(t, c, "ds1/chunk-000001.bases", 4)
	fillCache(t, c, "ds2/chunk-000000.bases", 4)

	n, bytes := c.InvalidatePrefix("ds1/")
	if n != 2 || bytes <= 0 {
		t.Fatalf("InvalidatePrefix dropped %d entries (%d bytes), want 2", n, bytes)
	}
	if _, fill := c.Lookup("ds2/chunk-000000.bases"); fill {
		t.Fatal("invalidate crossed dataset prefixes")
	}
	n, _ = c.Flush()
	if n != 1 {
		t.Fatalf("Flush dropped %d, want the 1 remaining", n)
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("post-flush stats: %+v", s)
	}
}

// TestStreamCacheWarmReads streams a dataset twice through one cache: the
// second pass must be all hits, deliver byte-identical records, and leave
// the chunk pool whole — proving cached chunks are never pool-owned (an
// ItemPool recycle of a cached chunk is structurally impossible because the
// cache only ever holds freshly allocated decodes).
func TestStreamCacheWarmReads(t *testing.T) {
	store := NewMemStore()
	writeTestDataset(t, store, "ds", 40, 10)
	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewChunkCache(1 << 20)
	pool := NewShardedChunkPool(2, 64)

	readAll := func() []string {
		var recs []string
		st, err := ds.Stream(StreamOptions{ShardedPool: pool, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for {
			sc, err := st.Next(context.Background())
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range sc.Chunks() {
				for r := 0; r < c.NumRecords(); r++ {
					rec, err := c.Record(r)
					if err != nil {
						t.Fatal(err)
					}
					recs = append(recs, string(rec))
				}
			}
			sc.Release()
		}
		return recs
	}

	first := readAll()
	s1 := cache.Stats()
	if s1.Fills == 0 || s1.Hits != 0 {
		t.Fatalf("cold pass: fills=%d hits=%d", s1.Fills, s1.Hits)
	}
	second := readAll()
	s2 := cache.Stats()
	if s2.Fills != s1.Fills {
		t.Fatalf("warm pass refilled: fills %d -> %d", s1.Fills, s2.Fills)
	}
	if warmHits := s2.Hits - s1.Hits; warmHits != s1.Misses {
		t.Fatalf("warm pass hits = %d, want %d (every cold miss)", warmHits, s1.Misses)
	}
	if len(first) != len(second) {
		t.Fatalf("record counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("record %d differs cold vs warm", i)
		}
	}
	if pool.Free() != pool.Size() {
		t.Fatalf("pool free=%d size=%d: a cached chunk leaked into (or out of) the pool",
			pool.Free(), pool.Size())
	}
	if s2.Pinned != 0 {
		t.Fatalf("pinned = %d after all groups released", s2.Pinned)
	}
}

// TestStreamCacheConcurrentStreams runs several cache-sharing streams over
// the same dataset concurrently (singleflight fills + waits under -race) and
// checks each sees the full record set.
func TestStreamCacheConcurrentStreams(t *testing.T) {
	store := NewMemStore()
	writeTestDataset(t, store, "ds", 60, 10)
	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewChunkCache(1 << 20)
	const streams = 6
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := ds.Stream(StreamOptions{Cache: cache, Prefetch: 3})
			if err != nil {
				t.Error(err)
				return
			}
			defer st.Close()
			records := 0
			for {
				sc, err := st.Next(context.Background())
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Error(err)
					return
				}
				records += sc.Col(ColBases).NumRecords()
				sc.Release()
			}
			if records != 60 {
				t.Errorf("stream saw %d records, want 60", records)
			}
		}()
	}
	wg.Wait()
	s := cache.Stats()
	if s.Pinned != 0 {
		t.Fatalf("pinned = %d after all streams done", s.Pinned)
	}
	if s.Fills > 6*3 { // 6 chunks × 3 columns; singleflight may not be perfect across Close races but must not blow up
		t.Fatalf("fills = %d, want at most one per (chunk, column) = 18", s.Fills)
	}
}

// corruptingStore flips a byte of one blob's payload on its first read.
type corruptingStore struct {
	BlobStore
	target string
	mu     sync.Mutex
	done   bool
}

func (s *corruptingStore) Get(name string) ([]byte, error) {
	data, err := s.BlobStore.Get(name)
	if err != nil || name != s.target {
		return data, err
	}
	s.mu.Lock()
	first := !s.done
	s.done = true
	s.mu.Unlock()
	if first {
		cp := make([]byte, len(data))
		copy(cp, data)
		cp[len(cp)/2] ^= 0xFF
		return cp, nil
	}
	return data, nil
}

// TestStreamCacheCorruptNeverCached reads through a store that corrupts one
// chunk blob once: the stream must fail (CRC), the cache must not retain the
// bad decode, and the healed retry must succeed and cache normally.
func TestStreamCacheCorruptNeverCached(t *testing.T) {
	mem := NewMemStore()
	m := writeTestDataset(t, mem, "ds", 30, 10)
	target := chunkPath(m.Chunks[1], ColBases)
	store := &corruptingStore{BlobStore: mem, target: target}
	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewChunkCache(1 << 20)

	st, err := ds.Stream(StreamOptions{Cache: cache, Prefetch: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for {
		sc, err := st.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
		sc.Release()
	}
	st.Close()
	if !sawErr {
		t.Fatal("corrupted blob read succeeded")
	}
	if s := cache.Stats(); s.FillErrors == 0 {
		t.Fatalf("no fill error recorded: %+v", s)
	}
	probeAbsent(t, cache, target)

	// The store heals (corruption was one-shot); a fresh stream succeeds and
	// the once-bad chunk now caches.
	st2, err := ds.Stream(StreamOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	records := 0
	for {
		sc, err := st2.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("healed read failed: %v", err)
		}
		records += sc.Col(ColBases).NumRecords()
		sc.Release()
	}
	if records != 30 {
		t.Fatalf("healed read saw %d records, want 30", records)
	}
}

// TestCacheAllocOverhead budgets the warm hit path: a resident Lookup+Unpin
// pair must not allocate — repeat jobs hammer this per chunk per column.
func TestCacheAllocOverhead(t *testing.T) {
	c := NewChunkCache(1 << 20)
	fillCache(t, c, "ds/chunk-000000.bases", 8)
	allocs := testing.AllocsPerRun(1000, func() {
		e, fill := c.Lookup("ds/chunk-000000.bases")
		if fill {
			t.Fatal("warm lookup missed")
		}
		c.Unpin(e)
	})
	if allocs > 0 {
		t.Fatalf("warm Lookup+Unpin allocates %.1f objects/op, want 0", allocs)
	}
}
