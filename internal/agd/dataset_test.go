package agd

import (
	"bytes"
	"fmt"
	"testing"
)

// writeTestDataset builds a small 3-column dataset with n records and chunk
// size cs.
func writeTestDataset(t *testing.T, store BlobStore, name string, n, cs int) *Manifest {
	t.Helper()
	w, err := NewWriter(store, name, StandardReadColumns(), WriterOptions{
		ChunkSize: cs,
		RefSeqs:   []RefSeq{{Name: "chr1", Length: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		bases := []byte("ACGTACGTAC")
		qual := bytes.Repeat([]byte("I"), len(bases))
		meta := []byte(fmt.Sprintf("read.%d", i))
		if err := w.Append(bases, qual, meta); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDatasetWriteRead(t *testing.T) {
	store := NewMemStore()
	m := writeTestDataset(t, store, "ds", 25, 10)
	if len(m.Chunks) != 3 { // 10+10+5
		t.Fatalf("chunks = %d, want 3", len(m.Chunks))
	}
	if m.NumRecords() != 25 {
		t.Fatalf("NumRecords = %d, want 25", m.NumRecords())
	}

	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	bases, err := ds.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 25 {
		t.Fatalf("bases = %d records", len(bases))
	}
	for _, b := range bases {
		if string(b) != "ACGTACGTAC" {
			t.Fatalf("bases = %q", b)
		}
	}
	metas, err := ds.ReadAllColumn(ColMetadata)
	if err != nil {
		t.Fatal(err)
	}
	for i, meta := range metas {
		if string(meta) != fmt.Sprintf("read.%d", i) {
			t.Fatalf("meta[%d] = %q", i, meta)
		}
	}
	if ds.Manifest.RefSeqs[0].Name != "chr1" {
		t.Fatal("ref seqs not preserved")
	}
}

func TestDatasetSelectiveColumnAccess(t *testing.T) {
	// Reading one column must not touch the other columns' blobs: count Get
	// calls through a spying store.
	spy := &spyStore{BlobStore: NewMemStore()}
	writeTestDataset(t, spy, "ds", 10, 10)
	spy.gets = nil
	ds, err := Open(spy, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadChunk(ColQual, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range spy.gets {
		if bytes.Contains([]byte(name), []byte(".bases")) || bytes.Contains([]byte(name), []byte(".metadata")) {
			t.Fatalf("reading qual touched %q", name)
		}
	}
}

type spyStore struct {
	BlobStore
	gets []string
}

func (s *spyStore) Get(name string) ([]byte, error) {
	s.gets = append(s.gets, name)
	return s.BlobStore.Get(name)
}

func TestDatasetErrors(t *testing.T) {
	store := NewMemStore()
	writeTestDataset(t, store, "ds", 5, 10)
	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadChunk("nope", 0); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := ds.ReadChunk(ColBases, 99); err == nil {
		t.Fatal("unknown chunk accepted")
	}
	if _, err := Open(store, "missing"); err == nil {
		t.Fatal("missing dataset opened")
	}
}

func TestWriterValidation(t *testing.T) {
	store := NewMemStore()
	if _, err := NewWriter(store, "", StandardReadColumns(), WriterOptions{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewWriter(store, "x", nil, WriterOptions{}); err == nil {
		t.Fatal("no columns accepted")
	}
	dupCols := []ColumnSpec{{Name: "a"}, {Name: "a"}}
	if _, err := NewWriter(store, "x", dupCols, WriterOptions{}); err == nil {
		t.Fatal("duplicate columns accepted")
	}
	w, err := NewWriter(store, "x", StandardReadColumns(), WriterOptions{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("AC")); err == nil {
		t.Fatal("wrong field count accepted")
	}
	if _, err := w.Close(); err == nil {
		t.Fatal("empty dataset close succeeded")
	}
}

func TestAppendColumnRowGrouped(t *testing.T) {
	store := NewMemStore()
	m := writeTestDataset(t, store, "ds", 25, 10)

	results := make([]Result, 25)
	for i := range results {
		results[i] = Result{Location: int64(i * 100), MapQ: 60, Cigar: "10M"}
	}
	m2, err := AppendColumn(store, m, ColumnSpec{Name: ColResults, Type: TypeResults},
		func(chunkIdx int) ([][]byte, error) {
			entry := m.Chunks[chunkIdx]
			var recs [][]byte
			for r := uint64(0); r < uint64(entry.Records); r++ {
				recs = append(recs, EncodeResult(nil, &results[entry.First+r]))
			}
			return recs, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasColumn(ColResults) {
		t.Fatal("results column missing after append")
	}

	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("results = %d", len(got))
	}
	for i, r := range got {
		if r.Location != int64(i*100) {
			t.Fatalf("result %d location = %d", i, r.Location)
		}
	}

	// Appending a misaligned column must fail.
	_, err = AppendColumn(store, m2, ColumnSpec{Name: "extra"}, func(int) ([][]byte, error) {
		return [][]byte{[]byte("only-one")}, nil
	})
	if err == nil {
		t.Fatal("misaligned column accepted")
	}
	// Duplicate column name must fail.
	_, err = AppendColumn(store, m2, ColumnSpec{Name: ColResults}, nil)
	if err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestReconstructManifest(t *testing.T) {
	store := NewMemStore()
	orig := writeTestDataset(t, store, "ds", 25, 10)
	// Lose the manifest; reconstruct from chunk blobs.
	if err := store.Delete("ds/manifest.json"); err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructManifest(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumRecords() != orig.NumRecords() {
		t.Fatalf("reconstructed records = %d, want %d", rec.NumRecords(), orig.NumRecords())
	}
	if len(rec.Chunks) != len(orig.Chunks) {
		t.Fatalf("reconstructed chunks = %d, want %d", len(rec.Chunks), len(orig.Chunks))
	}
	if len(rec.Columns) != len(orig.Columns) {
		t.Fatalf("reconstructed columns = %v, want %v", rec.Columns, orig.Columns)
	}
}

func TestManifestValidate(t *testing.T) {
	bad := &Manifest{Name: "x", Columns: []string{"a"}, Chunks: []ChunkEntry{
		{Path: "x/chunk-0", First: 0, Records: 10},
		{Path: "x/chunk-1", First: 99, Records: 10}, // gap
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("gap in ordinals accepted")
	}
}

func TestDeleteDataset(t *testing.T) {
	store := NewMemStore()
	writeTestDataset(t, store, "ds", 5, 10)
	if err := Delete(store, "ds"); err != nil {
		t.Fatal(err)
	}
	names, err := store.List("ds/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("blobs remain after delete: %v", names)
	}
}

func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeTestDataset(t, store, "ds", 12, 5)
	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	bases, err := ds.ReadAllBases()
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 12 {
		t.Fatalf("bases = %d", len(bases))
	}
	if _, err := store.Get("nope"); err == nil {
		t.Fatal("missing blob fetched")
	}
	if err := store.Delete("nope"); err != nil {
		t.Fatalf("Delete of missing blob: %v", err)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	store := NewMemStore()
	data := []byte("abc")
	if err := store.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // caller mutation must not affect stored blob
	got, err := store.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("stored blob mutated: %q", got)
	}
	if store.Size() != 3 {
		t.Fatalf("Size = %d", store.Size())
	}
}
