package agd

import "persona/internal/genome"

// RefSeqsFromGenome derives manifest reference-sequence entries from a
// genome, preserving contig order so global coordinates in results columns
// stay translatable.
func RefSeqsFromGenome(g *genome.Genome) []RefSeq {
	contigs := g.Contigs()
	out := make([]RefSeq, len(contigs))
	for i := range contigs {
		out[i] = RefSeq{Name: contigs[i].Name, Length: int64(contigs[i].Len())}
	}
	return out
}
