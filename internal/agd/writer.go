package agd

import (
	"fmt"
	"sync"
)

// ColumnSpec declares one column of a dataset under construction.
type ColumnSpec struct {
	Name string
	Type RecordType
	// Compression for this column's chunks; the zero value selects gzip,
	// matching the paper's deployment. (The per-column choice is the
	// flexibility knob §3 describes.)
	Compression Compression
	compSet     bool
}

// WithCompression returns the spec with an explicit compression choice.
func (c ColumnSpec) WithCompression(comp Compression) ColumnSpec {
	c.Compression = comp
	c.compSet = true
	return c
}

func (c ColumnSpec) compression() Compression {
	if !c.compSet && c.Compression == CompressNone {
		return CompressGzip
	}
	return c.Compression
}

// EffectiveCompression is the compression the Writer actually applies to
// this column (the zero value means gzip). Parallel writers that must match
// the Writer's bytes use it instead of re-encoding the default rule.
func (c ColumnSpec) EffectiveCompression() Compression { return c.compression() }

// StandardReadColumns returns the specs of the three sequencer-read columns
// (bases, qual, metadata).
func StandardReadColumns() []ColumnSpec {
	return []ColumnSpec{
		{Name: ColBases, Type: TypeCompactBases},
		{Name: ColQual, Type: TypeRaw},
		{Name: ColMetadata, Type: TypeRaw},
	}
}

// Writer builds an AGD dataset chunk by chunk. Records are appended row-wise
// (one field per column); the writer splits columns into row-grouped chunks
// of ChunkSize records and writes each column chunk as its own blob.
// With ParallelFlush > 1, chunk encoding and compression run on background
// workers so ingest keeps all cores busy — how the paper's importer reaches
// 360 MB/s (§5.7).
type Writer struct {
	store     BlobStore
	name      string
	cols      []ColumnSpec
	chunkSize int
	refSeqs   []RefSeq
	sortedBy  string

	builders []*ChunkBuilder
	ordinal  uint64
	chunkIdx int
	entries  []ChunkEntry
	closed   bool

	// bpool recycles builder sets flush→startChunk so steady-state chunk
	// rollover reuses the previous chunks' backing arrays instead of
	// allocating a fresh builder per column per chunk.
	bpool chan []*ChunkBuilder

	flushers  chan struct{} // semaphore; nil means synchronous
	flushWG   sync.WaitGroup
	flushErrs chan error
}

// WriterOptions configures a dataset writer.
type WriterOptions struct {
	// ChunkSize is records per chunk; default DefaultChunkSize.
	ChunkSize int
	// RefSeqs is recorded in the manifest (may be nil for unaligned data).
	RefSeqs []RefSeq
	// SortedBy is recorded in the manifest ("", "location", "metadata").
	SortedBy string
	// ParallelFlush > 1 compresses and stores completed chunks on that many
	// background workers.
	ParallelFlush int
}

// NewWriter creates a dataset writer. The dataset's manifest is written on
// Close.
func NewWriter(store BlobStore, name string, cols []ColumnSpec, opts WriterOptions) (*Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("agd: empty dataset name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("agd: no columns")
	}
	seen := make(map[string]bool)
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("agd: column with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("agd: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	w := &Writer{
		store:     store,
		name:      name,
		cols:      cols,
		chunkSize: opts.ChunkSize,
		refSeqs:   opts.RefSeqs,
		sortedBy:  opts.SortedBy,
	}
	if opts.ParallelFlush > 1 {
		w.flushers = make(chan struct{}, opts.ParallelFlush)
		w.flushErrs = make(chan error, opts.ParallelFlush)
		w.bpool = make(chan []*ChunkBuilder, opts.ParallelFlush+1)
	} else {
		w.bpool = make(chan []*ChunkBuilder, 2)
	}
	w.startChunk()
	return w, nil
}

func (w *Writer) startChunk() {
	select {
	case bs := <-w.bpool:
		for i, c := range w.cols {
			bs[i].Reset(c.Type, w.ordinal)
		}
		w.builders = bs
		return
	default:
	}
	w.builders = make([]*ChunkBuilder, len(w.cols))
	for i, c := range w.cols {
		w.builders[i] = NewChunkBuilder(c.Type, w.ordinal)
	}
}

// Append adds one record; fields must match the writer's columns in order.
// Bases columns (TypeCompactBases) receive raw base letters and are
// compacted here.
func (w *Writer) Append(fields ...[]byte) error {
	if w.closed {
		return fmt.Errorf("agd: writer for %q is closed", w.name)
	}
	if len(fields) != len(w.cols) {
		return fmt.Errorf("agd: Append got %d fields, want %d", len(fields), len(w.cols))
	}
	for i, f := range fields {
		if w.cols[i].Type == TypeCompactBases {
			w.builders[i].AppendBases(f)
		} else {
			w.builders[i].Append(f)
		}
	}
	w.ordinal++
	if w.builders[0].NumRecords() >= w.chunkSize {
		return w.flushChunk()
	}
	return nil
}

// AppendResult is a convenience for results-only datasets/columns.
func (w *Writer) AppendResult(r *Result) error {
	return w.Append(EncodeResult(nil, r))
}

// AppendStored adds one record whose fields are already in stored
// representation (e.g. bases already compacted) — the zero-copy path used
// by the external merge sort, which never expands what it only reorders.
func (w *Writer) AppendStored(fields ...[]byte) error {
	if w.closed {
		return fmt.Errorf("agd: writer for %q is closed", w.name)
	}
	if len(fields) != len(w.cols) {
		return fmt.Errorf("agd: AppendStored got %d fields, want %d", len(fields), len(w.cols))
	}
	for i, f := range fields {
		w.builders[i].Append(f)
	}
	w.ordinal++
	if w.builders[0].NumRecords() >= w.chunkSize {
		return w.flushChunk()
	}
	return nil
}

func (w *Writer) flushChunk() error {
	n := w.builders[0].NumRecords()
	if n == 0 {
		return nil
	}
	entry := ChunkEntry{
		Path:    ChunkEntryPath(w.name, w.chunkIdx),
		First:   w.builders[0].Chunk().FirstOrdinal,
		Records: uint32(n),
	}
	w.entries = append(w.entries, entry)
	w.chunkIdx++
	builders := w.builders
	w.startChunk()

	if w.flushers == nil {
		return w.encodeAndStore(entry, builders)
	}
	// Drain any async error first so failures surface promptly.
	select {
	case err := <-w.flushErrs:
		return err
	default:
	}
	w.flushers <- struct{}{}
	w.flushWG.Add(1)
	go func() {
		defer w.flushWG.Done()
		defer func() { <-w.flushers }()
		if err := w.encodeAndStore(entry, builders); err != nil {
			select {
			case w.flushErrs <- err:
			default:
			}
		}
	}()
	return nil
}

// encodeAndStore compresses and stores every column chunk of one row group,
// then recycles the builder set for a future startChunk.
func (w *Writer) encodeAndStore(entry ChunkEntry, builders []*ChunkBuilder) error {
	for i, c := range w.cols {
		blob, err := EncodeChunk(builders[i].Chunk(), c.compression())
		if err != nil {
			return err
		}
		if err := w.store.Put(chunkPath(entry, c.Name), blob); err != nil {
			return err
		}
	}
	select {
	case w.bpool <- builders:
	default:
	}
	return nil
}

// NumRecords returns how many records have been appended so far.
func (w *Writer) NumRecords() uint64 { return w.ordinal }

// Close flushes the final partial chunk and writes the manifest. It returns
// the completed manifest.
func (w *Writer) Close() (*Manifest, error) {
	if w.closed {
		return nil, fmt.Errorf("agd: writer for %q already closed", w.name)
	}
	w.closed = true
	if err := w.flushChunk(); err != nil {
		return nil, err
	}
	w.flushWG.Wait()
	if w.flushErrs != nil {
		select {
		case err := <-w.flushErrs:
			return nil, err
		default:
		}
	}
	m := NewManifest(w.name, w.cols, w.entries, w.refSeqs, w.sortedBy)
	if len(m.Chunks) == 0 {
		return nil, fmt.Errorf("agd: dataset %q has no records", w.name)
	}
	if err := WriteManifest(w.store, m); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendColumn adds a new column to an existing dataset, row-grouped with
// the existing chunks: records must be supplied per chunk, matching each
// chunk's record count. This is how Persona appends alignment results to a
// dataset (§3: "a new record field ... can be easily added by writing the
// column chunk files and adding appropriate entries to the metadata file").
func AppendColumn(store BlobStore, m *Manifest, spec ColumnSpec, chunkRecords func(chunkIdx int) ([][]byte, error)) (*Manifest, error) {
	if m.HasColumn(spec.Name) {
		return nil, fmt.Errorf("agd: dataset %q already has column %q", m.Name, spec.Name)
	}
	for i, entry := range m.Chunks {
		records, err := chunkRecords(i)
		if err != nil {
			return nil, err
		}
		if len(records) != int(entry.Records) {
			return nil, fmt.Errorf("%w: chunk %d has %d records, column supplies %d",
				ErrRowGroup, i, entry.Records, len(records))
		}
		b := NewChunkBuilder(spec.Type, entry.First)
		for _, rec := range records {
			if spec.Type == TypeCompactBases {
				b.AppendBases(rec)
			} else {
				b.Append(rec)
			}
		}
		blob, err := EncodeChunk(b.Chunk(), spec.compression())
		if err != nil {
			return nil, err
		}
		if err := store.Put(chunkPath(entry, spec.Name), blob); err != nil {
			return nil, err
		}
	}
	updated := *m
	updated.Columns = append(append([]string{}, m.Columns...), spec.Name)
	if err := WriteManifest(store, &updated); err != nil {
		return nil, err
	}
	return &updated, nil
}
