package agd

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedChunk encodes a chunk of the given records for the seed corpus.
func fuzzSeedChunk(f *testing.F, typ RecordType, comp Compression, members int, records ...[]byte) []byte {
	f.Helper()
	b := NewChunkBuilder(typ, 7)
	for _, r := range records {
		b.Append(r)
	}
	blob, err := Codec{Members: members}.Encode(b.Chunk(), comp)
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzDecodeChunk drives the AGD chunk decoder with arbitrary blobs. The
// decoder must never panic and never allocate beyond the deflate expansion
// bound, and anything it accepts must be internally consistent: records
// tile the data block exactly, and a re-encode/decode round trip preserves
// them (both layout versions).
func FuzzDecodeChunk(f *testing.F) {
	// Valid seeds across the format matrix: v1 raw, v1 gzip, forced v2
	// multi-member, empty chunk, single empty record.
	v1raw := fuzzSeedChunk(f, TypeRaw, CompressNone, 0, []byte("hello"), []byte(""), []byte("world"))
	v1gz := fuzzSeedChunk(f, TypeRaw, CompressGzip, 0, bytes.Repeat([]byte("acgt"), 600))
	v2 := fuzzSeedChunk(f, TypeCompactBases, CompressGzip, 3, bytes.Repeat([]byte("acgtacgt"), 4<<10))
	f.Add(v1raw)
	f.Add(v1gz)
	f.Add(v2)
	f.Add(fuzzSeedChunk(f, TypeResults, CompressGzip, 0))
	f.Add(fuzzSeedChunk(f, TypeRaw, CompressNone, 0, []byte{}))

	// Broken seeds: truncations, header bit-flips, a corrupted member
	// table, and garbage.
	f.Add(v1gz[:len(v1gz)/2])
	f.Add(v2[:chunkHeaderSize+3])
	flipped := bytes.Clone(v2)
	flipped[chunkHeaderSize+1] ^= 0xff // member table
	f.Add(flipped)
	tornCRC := bytes.Clone(v1raw)
	tornCRC[36] ^= 0x55
	f.Add(tornCRC)
	f.Add([]byte{})
	f.Add([]byte("AGD1"))
	f.Add(bytes.Repeat([]byte{0xa5}, chunkHeaderSize+32))

	f.Fuzz(func(t *testing.T, blob []byte) {
		c, err := DecodeChunk(blob)
		if err != nil {
			// Errors must be the package's sentinel kinds, so callers can
			// classify them, and must not carry a partial chunk.
			if c != nil {
				t.Fatalf("DecodeChunk returned chunk AND error %v", err)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}

		// Allocation bound: deflate expands at most ~1032x, so an accepted
		// chunk can never hold more data than that bound allows.
		const maxDeflateRatio = 1032
		if uint64(len(c.Data)) > uint64(len(blob))*maxDeflateRatio {
			t.Fatalf("decoded %d data bytes from a %d-byte blob", len(c.Data), len(blob))
		}

		// Records must tile Data exactly; every index must be reachable.
		total := 0
		for i := 0; i < c.NumRecords(); i++ {
			rec, err := c.Record(i)
			if err != nil {
				t.Fatalf("record %d of accepted chunk: %v", i, err)
			}
			total += len(rec)
		}
		if total != len(c.Data) {
			t.Fatalf("records sum to %d bytes, data block is %d", total, len(c.Data))
		}
		if _, err := c.Record(c.NumRecords()); err == nil {
			t.Fatal("out-of-range record accessible")
		}

		// Round trip through both layout versions.
		for _, cd := range []Codec{{}, {Members: 2}} {
			re, err := cd.Encode(c, CompressGzip)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			c2, err := cd.Decode(re)
			if err != nil {
				t.Fatalf("decode of re-encoded chunk: %v", err)
			}
			if c2.Type != c.Type || c2.FirstOrdinal != c.FirstOrdinal ||
				c2.NumRecords() != c.NumRecords() || !bytes.Equal(c2.Data, c.Data) {
				t.Fatal("round trip changed the chunk")
			}
		}
	})
}
