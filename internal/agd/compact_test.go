package agd

import (
	"bytes"
	"testing"
	"testing/quick"

	"persona/internal/genome"
)

func TestCompactRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("A"),
		[]byte("ACGTN"),
		[]byte("ACGTACGTACGTACGTACGTA"),  // exactly 21
		[]byte("ACGTACGTACGTACGTACGTAC"), // 22: spills into 2nd word
		bytes.Repeat([]byte("ACGTN"), 100),
	}
	for _, bases := range cases {
		enc := CompactBases(nil, bases)
		if len(enc) != CompactedSize(len(bases)) {
			t.Errorf("CompactedSize(%d) = %d, encoding is %d bytes",
				len(bases), CompactedSize(len(bases)), len(enc))
		}
		dec, n, err := ExpandBases(nil, enc)
		if err != nil {
			t.Fatalf("ExpandBases(%q): %v", bases, err)
		}
		if n != len(enc) {
			t.Errorf("consumed %d bytes, encoded %d", n, len(enc))
		}
		if !bytes.Equal(dec, bases) {
			t.Errorf("round trip: got %q, want %q", dec, bases)
		}
	}
}

func TestCompact21BasesPerWord(t *testing.T) {
	// 21 bases must pack into exactly one 64-bit word (plus 1 length byte).
	enc := CompactBases(nil, bytes.Repeat([]byte("A"), 21))
	if len(enc) != 1+8 {
		t.Fatalf("21 bases encoded to %d bytes, want 9", len(enc))
	}
	// The paper's ratio: 101 bases → 1 varint byte + 5 words = 41 bytes,
	// versus 101 raw.
	enc101 := CompactBases(nil, bytes.Repeat([]byte("G"), 101))
	if len(enc101) != 1+5*8 {
		t.Fatalf("101 bases encoded to %d bytes, want 41", len(enc101))
	}
}

func TestCompactRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		bases := make([]byte, len(raw))
		for i, b := range raw {
			bases[i] = genome.Letter(b % 5)
		}
		dec, _, err := ExpandBases(nil, CompactBases(nil, bases))
		return err == nil && bytes.Equal(dec, bases)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompactConcatenatedRecords(t *testing.T) {
	// Multiple compacted records back to back decode sequentially via the
	// consumed-byte count.
	recs := [][]byte{[]byte("ACGT"), []byte(""), bytes.Repeat([]byte("TTTTA"), 30)}
	var enc []byte
	for _, r := range recs {
		enc = CompactBases(enc, r)
	}
	off := 0
	for i, want := range recs {
		dec, n, err := ExpandBases(nil, enc[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(dec, want) {
			t.Fatalf("record %d: got %q want %q", i, dec, want)
		}
		off += n
	}
	if off != len(enc) {
		t.Fatalf("consumed %d of %d bytes", off, len(enc))
	}
}

func TestExpandBasesCorrupt(t *testing.T) {
	if _, _, err := ExpandBases(nil, []byte{}); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid count but missing words.
	enc := CompactBases(nil, []byte("ACGTACGTACGT"))
	if _, _, err := ExpandBases(nil, enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated input accepted")
	}
}
