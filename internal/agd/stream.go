package agd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"persona/internal/dataflow"
)

// StreamOptions configures a ChunkStream.
type StreamOptions struct {
	// Columns are the columns fetched per chunk, in delivery order.
	// Empty means every manifest column.
	Columns []string
	// Prefetch is the number of chunk fetch batches kept in flight,
	// counting the one being delivered: 1 reads synchronously, larger
	// windows overlap storage latency with decode and compute.
	// Zero or negative selects DefaultPrefetch.
	Prefetch int
	// Start and End bound the chunk range [Start, End); End <= 0 means the
	// end of the dataset.
	Start, End int
	// Pool, when non-nil, supplies the decoded chunk objects: Next checks
	// chunks out of it and StreamChunk.Release returns them, so a bounded
	// pool gives the stream the same back-pressure as the pipeline queues.
	// When nil, chunks are freshly allocated and Release is a no-op.
	Pool *dataflow.ItemPool[*Chunk]
	// ShardedPool is Pool with per-executor-shard free lists
	// (NewShardedChunkPool): chunk i checks its objects out of shard
	// i % Shards()'s list and Release returns them there, so a chunk's
	// buffers stay with the shard that aligns it. Takes precedence over
	// Pool. The same shard is handed to the codec (Codec.WithShard), so a
	// multi-member decode runs on the chunk's own shard too.
	ShardedPool *dataflow.ShardedItemPool[*Chunk]
	// Cache, when non-nil, makes the stream read through the shared decoded
	// chunk cache: hits skip the fetch, CRC verify and decode entirely;
	// misses become singleflight fills this stream owns. Cached chunks are
	// always freshly allocated and pinned until Release — the stream never
	// checks them out of Pool/ShardedPool (the pools still provide shard
	// affinity hints, but no chunk object can be both cached and pooled).
	Cache *ChunkCache
	// Codec decodes the fetched blobs; the zero value is the package
	// default. Pipelines pass their shared-executor codec.
	Codec Codec
}

// DefaultPrefetch is the fetch window used when StreamOptions.Prefetch is
// unset: deep enough to hide per-blob latency behind decode, shallow enough
// that a handful of streams cannot balloon memory.
const DefaultPrefetch = 4

// fetchSlot is one column of one chunk's in-flight window. Exactly one of
// three shapes:
//
//	ent == nil             plain fetch (no cache): fut resolves the blob
//	ent != nil, fill true  cache miss owned by this stream: fut resolves the
//	                       blob, and Next must Commit or Abort the entry
//	ent != nil, fill false cache hit or another stream's in-flight fill:
//	                       no fetch; Next waits on the entry
type fetchSlot struct {
	fut  *Future
	ent  *CacheEntry
	fill bool
	// done marks an owned fill already resolved (Commit/Abort), so cleanup
	// paths do not abort it a second time.
	done bool
}

// ChunkStream iterates the column chunks of a dataset in chunk order while
// keeping a window of blob fetches in flight through the store's async read
// path (§4.2: readers saturate storage by overlapping many object fetches).
// Next is safe for concurrent consumers; each call claims the next chunk.
type ChunkStream struct {
	ds    *Dataset
	as    AsyncBlobStore
	cols  []string
	codec Codec
	pool  *dataflow.ItemPool[*Chunk]
	spool *dataflow.ShardedItemPool[*Chunk]
	cache *ChunkCache

	window int
	start  int
	end    int

	mu     sync.Mutex
	next   int // next chunk index to claim
	issued int // first chunk index whose fetch has not been issued
	// slots[i-start] holds chunk i's in-flight column slots; entries are
	// nilled as chunks are claimed.
	slots [][]fetchSlot
	// names is the blob-name scratch reused across GetBatch calls
	// (implementations must not retain it).
	names  []string
	closed bool
}

// StreamChunk is one delivered row group: the decoded chunks of every
// requested column.
type StreamChunk struct {
	// Index is the chunk's position in the manifest.
	Index  int
	chunks []*Chunk
	// ents[k], when non-nil, is the pinned cache entry backing chunks[k];
	// Release unpins it instead of recycling the chunk.
	ents   []*CacheEntry
	stream *ChunkStream
}

// Chunks returns the decoded column chunks in StreamOptions.Columns order.
func (sc *StreamChunk) Chunks() []*Chunk { return sc.chunks }

// Col returns the decoded chunk of the named column, or nil if the column
// was not requested.
func (sc *StreamChunk) Col(name string) *Chunk {
	for i, col := range sc.stream.cols {
		if col == name {
			return sc.chunks[i]
		}
	}
	return nil
}

// Release ends the caller's use of the row group: cache-backed chunks are
// unpinned (they stay resident for the next reader), pooled chunks return to
// the stream's pool — on a sharded pool, to the chunk's own shard's free
// list. The caller must not reference the chunks (or slices of their data)
// afterwards. On a pool-less, cache-less stream it is a no-op.
func (sc *StreamChunk) Release() {
	s := sc.stream
	for k, c := range sc.chunks {
		if sc.ents != nil && sc.ents[k] != nil {
			s.cache.Unpin(sc.ents[k])
			continue
		}
		if c == nil || s.cache != nil {
			// Cache-mode chunks that are not entry-backed (abandoned-fill
			// fallbacks) are standalone allocations; never pool them.
			continue
		}
		switch {
		case s.spool != nil:
			s.spool.Put(sc.Index%s.spool.Shards(), c)
		case s.pool != nil:
			s.pool.Put(c)
		}
	}
	sc.chunks = nil
	sc.ents = nil
}

// Shard returns the executor shard this chunk is affine to (chunk index
// modulo the sharded pool's shard count; 0 on unsharded streams). Consumers
// pass it to Executor.SubmitWaitTo so the chunk's fine-grain tasks land on
// the shard holding its pooled buffers.
func (sc *StreamChunk) Shard() int {
	if sp := sc.stream.spool; sp != nil {
		return sc.Index % sp.Shards()
	}
	return 0
}

// NewChunkPool returns a bounded pool of decoded chunks for stream
// consumers (StreamOptions.Pool): size chunks, Reset applied on recycle.
// Size it to columns × (prefetch window + 1) so the stream's fetches never
// starve while the consumer holds one delivered row group.
func NewChunkPool(size int) *dataflow.ItemPool[*Chunk] {
	return dataflow.NewItemPool(size,
		func() *Chunk { return new(Chunk) },
		func(c *Chunk) *Chunk { c.Reset(); return c },
	)
}

// NewShardedChunkPool is NewChunkPool with one free list per executor
// shard (StreamOptions.ShardedPool): chunks decoded for shard S recycle on
// shard S, keeping their backing arrays in that core's cache.
func NewShardedChunkPool(shards, size int) *dataflow.ShardedItemPool[*Chunk] {
	return dataflow.NewShardedItemPool(shards, size,
		func() *Chunk { return new(Chunk) },
		func(c *Chunk) *Chunk { c.Reset(); return c },
	)
}

// Stream opens a prefetching iterator over the dataset's chunks.
func (d *Dataset) Stream(opts StreamOptions) (*ChunkStream, error) {
	cols := opts.Columns
	if len(cols) == 0 {
		cols = append([]string{}, d.Manifest.Columns...)
	}
	for _, col := range cols {
		if !d.Manifest.HasColumn(col) {
			return nil, fmt.Errorf("%w: %q", ErrNoColumn, col)
		}
	}
	start, end := opts.Start, opts.End
	if start < 0 {
		start = 0
	}
	if end <= 0 || end > len(d.Manifest.Chunks) {
		end = len(d.Manifest.Chunks)
	}
	if start > end {
		start = end
	}
	window := opts.Prefetch
	if window <= 0 {
		window = DefaultPrefetch
	}
	return &ChunkStream{
		ds:     d,
		as:     AsyncOf(d.store),
		cols:   cols,
		codec:  opts.Codec,
		pool:   opts.Pool,
		spool:  opts.ShardedPool,
		cache:  opts.Cache,
		window: window,
		start:  start,
		end:    end,
		next:   start,
		issued: start,
		slots:  make([][]fetchSlot, end-start),
		names:  make([]string, 0, len(cols)),
	}, nil
}

// issueToLocked issues fetch batches for chunks [s.issued, hi). With a cache,
// each column is looked up first: hits and other streams' in-flight fills
// cost no fetch at all; only owned misses go into the GetBatch. Callers hold
// s.mu (lock order is stream.mu then cache.mu).
func (s *ChunkStream) issueToLocked(hi int) {
	if hi > s.end {
		hi = s.end
	}
	for ; s.issued < hi; s.issued++ {
		entry := s.ds.Manifest.Chunks[s.issued]
		slots := make([]fetchSlot, len(s.cols))
		names := s.names[:0]
		for k, col := range s.cols {
			name := chunkPath(entry, col)
			if s.cache != nil {
				ent, fill := s.cache.Lookup(name)
				slots[k].ent = ent
				slots[k].fill = fill
				if !fill {
					continue
				}
			}
			names = append(names, name)
		}
		if len(names) > 0 {
			futs := s.as.GetBatch(names)
			fi := 0
			for k := range slots {
				if slots[k].ent == nil || slots[k].fill {
					slots[k].fut = futs[fi]
					fi++
				}
			}
		}
		s.names = names[:0]
		s.slots[s.issued-s.start] = slots
	}
}

// Next claims the next chunk, waits for its blobs, decodes them and returns
// the row group. It returns io.EOF once the range is exhausted (or the
// stream closed). Claiming also tops up the fetch window, so a consumer
// loop keeps Prefetch chunk batches in flight.
func (s *ChunkStream) Next(ctx context.Context) (*StreamChunk, error) {
	s.mu.Lock()
	if s.closed || s.next >= s.end {
		s.mu.Unlock()
		return nil, io.EOF
	}
	i := s.next
	s.next++
	s.issueToLocked(i + s.window)
	slots := s.slots[i-s.start]
	s.slots[i-s.start] = nil
	s.mu.Unlock()

	shard := 0
	codec := s.codec
	if s.spool != nil {
		shard = i % s.spool.Shards()
		codec = codec.WithShard(shard)
	}
	entry := s.ds.Manifest.Chunks[i]
	chunks := make([]*Chunk, len(slots))
	fail := func(err error) (*StreamChunk, error) {
		for k := range slots {
			sl := &slots[k]
			if sl.ent != nil {
				if sl.fill && !sl.done {
					// Abandon unresolved owned fills so waiters fall back
					// to a direct read instead of blocking forever.
					s.cache.Abort(sl.ent, nil)
				}
				s.cache.Unpin(sl.ent)
				continue
			}
			if c := chunks[k]; c != nil && s.cache == nil {
				switch {
				case s.spool != nil:
					s.spool.Put(shard, c)
				case s.pool != nil:
					s.pool.Put(c)
				}
			}
		}
		return nil, err
	}
	validate := func(c *Chunk, col string) error {
		if want := int(entry.Records); c.NumRecords() != want {
			return fmt.Errorf("%w: chunk %q has %d records, manifest says %d",
				ErrCorrupt, chunkPath(entry, col), c.NumRecords(), want)
		}
		return nil
	}

	// Pass 1: resolve every fetch this stream owns — plain fetches and the
	// singleflight cache fills it was assigned. Owned fills Commit (or
	// Abort) before pass 2 waits on anything filled elsewhere, so streams
	// covering the same chunks in different column orders cannot form a
	// waits-for cycle across each other's fills.
	for k := range slots {
		sl := &slots[k]
		if sl.ent != nil && !sl.fill {
			continue
		}
		blob, err := sl.fut.Wait(ctx)
		if err != nil {
			if sl.ent != nil {
				s.cache.Abort(sl.ent, err)
				sl.done = true
			}
			return fail(err)
		}
		if sl.ent != nil {
			// Owned fill: decode into a fresh chunk (never pooled — cached
			// chunks must not be recyclable under later readers) and
			// validate before Commit, so a corrupt blob is never cached.
			c, err := codec.Decode(blob)
			if err != nil {
				err = fmt.Errorf("agd: chunk %q: %w", chunkPath(entry, s.cols[k]), err)
			} else {
				err = validate(c, s.cols[k])
			}
			if err != nil {
				s.cache.Abort(sl.ent, err)
				sl.done = true
				return fail(err)
			}
			s.cache.Commit(sl.ent, c)
			sl.done = true
			chunks[k] = c
			continue
		}
		var c *Chunk
		switch {
		case s.spool != nil:
			if c, err = s.spool.Get(ctx, shard); err != nil {
				return fail(err)
			}
			// Record the checkout before decoding, so a decode error
			// releases this chunk too instead of leaking it from the
			// bounded pool.
			chunks[k] = c
			err = codec.DecodeInto(c, blob)
		case s.pool != nil:
			if c, err = s.pool.Get(ctx); err != nil {
				return fail(err)
			}
			chunks[k] = c
			err = codec.DecodeInto(c, blob)
		default:
			c, err = codec.Decode(blob)
		}
		if err != nil {
			return fail(fmt.Errorf("agd: chunk %q: %w", chunkPath(entry, s.cols[k]), err))
		}
		chunks[k] = c
		if err := validate(c, s.cols[k]); err != nil {
			return fail(err)
		}
	}

	// Pass 2: collect cache hits and other streams' fills. Validation
	// happened before the chunk was committed, so hits are trusted as-is.
	for k := range slots {
		sl := &slots[k]
		if sl.ent == nil || sl.fill {
			continue
		}
		c, err := sl.ent.Wait(ctx)
		if errors.Is(err, ErrCacheAbandoned) {
			// The filling stream closed before completing its fill; read
			// the blob directly. The result stays standalone (uncached,
			// unpooled) — the next Lookup will restart a proper fill.
			s.cache.Unpin(sl.ent)
			sl.ent = nil
			name := chunkPath(entry, s.cols[k])
			blob, ferr := s.as.GetAsync(name).Wait(ctx)
			if ferr == nil {
				c, ferr = codec.Decode(blob)
			}
			if ferr != nil {
				return fail(fmt.Errorf("agd: chunk %q: %w", name, ferr))
			}
			chunks[k] = c
			if verr := validate(c, s.cols[k]); verr != nil {
				return fail(verr)
			}
			continue
		}
		if err != nil {
			return fail(err)
		}
		chunks[k] = c
	}

	var ents []*CacheEntry
	if s.cache != nil {
		ents = make([]*CacheEntry, len(slots))
		for k := range slots {
			ents[k] = slots[k].ent
		}
	}
	return &StreamChunk{Index: i, chunks: chunks, ents: ents, stream: s}, nil
}

// Close stops the stream: subsequent Next calls return io.EOF and no further
// fetches are issued. Fetches already in flight complete in the background
// and their results are dropped; owned cache fills that were never resolved
// are abandoned so streams waiting on them fall back to direct reads.
func (s *ChunkStream) Close() {
	s.mu.Lock()
	s.closed = true
	slots := s.slots
	s.slots = nil
	s.mu.Unlock()
	if s.cache == nil {
		return
	}
	for _, ss := range slots {
		for k := range ss {
			sl := &ss[k]
			if sl.ent == nil {
				continue
			}
			if sl.fill && !sl.done {
				s.cache.Abort(sl.ent, nil)
			}
			s.cache.Unpin(sl.ent)
		}
	}
}
