package agd

import (
	"context"
	"fmt"
	"io"
	"sync"

	"persona/internal/dataflow"
)

// StreamOptions configures a ChunkStream.
type StreamOptions struct {
	// Columns are the columns fetched per chunk, in delivery order.
	// Empty means every manifest column.
	Columns []string
	// Prefetch is the number of chunk fetch batches kept in flight,
	// counting the one being delivered: 1 reads synchronously, larger
	// windows overlap storage latency with decode and compute.
	// Zero or negative selects DefaultPrefetch.
	Prefetch int
	// Start and End bound the chunk range [Start, End); End <= 0 means the
	// end of the dataset.
	Start, End int
	// Pool, when non-nil, supplies the decoded chunk objects: Next checks
	// chunks out of it and StreamChunk.Release returns them, so a bounded
	// pool gives the stream the same back-pressure as the pipeline queues.
	// When nil, chunks are freshly allocated and Release is a no-op.
	Pool *dataflow.ItemPool[*Chunk]
	// ShardedPool is Pool with per-executor-shard free lists
	// (NewShardedChunkPool): chunk i checks its objects out of shard
	// i % Shards()'s list and Release returns them there, so a chunk's
	// buffers stay with the shard that aligns it. Takes precedence over
	// Pool. The same shard is handed to the codec (Codec.WithShard), so a
	// multi-member decode runs on the chunk's own shard too.
	ShardedPool *dataflow.ShardedItemPool[*Chunk]
	// Codec decodes the fetched blobs; the zero value is the package
	// default. Pipelines pass their shared-executor codec.
	Codec Codec
}

// DefaultPrefetch is the fetch window used when StreamOptions.Prefetch is
// unset: deep enough to hide per-blob latency behind decode, shallow enough
// that a handful of streams cannot balloon memory.
const DefaultPrefetch = 4

// ChunkStream iterates the column chunks of a dataset in chunk order while
// keeping a window of blob fetches in flight through the store's async read
// path (§4.2: readers saturate storage by overlapping many object fetches).
// Next is safe for concurrent consumers; each call claims the next chunk.
type ChunkStream struct {
	ds    *Dataset
	as    AsyncBlobStore
	cols  []string
	codec Codec
	pool  *dataflow.ItemPool[*Chunk]
	spool *dataflow.ShardedItemPool[*Chunk]

	window int
	start  int
	end    int

	mu     sync.Mutex
	next   int // next chunk index to claim
	issued int // first chunk index whose fetch has not been issued
	// futs[i-start] holds chunk i's in-flight column fetches; entries are
	// nilled as chunks are claimed.
	futs [][]*Future
	// names is the blob-name scratch reused across GetBatch calls
	// (implementations must not retain it).
	names  []string
	closed bool
}

// StreamChunk is one delivered row group: the decoded chunks of every
// requested column.
type StreamChunk struct {
	// Index is the chunk's position in the manifest.
	Index  int
	chunks []*Chunk
	stream *ChunkStream
}

// Chunks returns the decoded column chunks in StreamOptions.Columns order.
func (sc *StreamChunk) Chunks() []*Chunk { return sc.chunks }

// Col returns the decoded chunk of the named column, or nil if the column
// was not requested.
func (sc *StreamChunk) Col(name string) *Chunk {
	for i, col := range sc.stream.cols {
		if col == name {
			return sc.chunks[i]
		}
	}
	return nil
}

// Release returns the chunks to the stream's pool — on a sharded pool, to
// the chunk's own shard's free list. The caller must not reference the
// chunks (or slices of their data) afterwards. On a pool-less stream it is
// a no-op.
func (sc *StreamChunk) Release() {
	s := sc.stream
	for _, c := range sc.chunks {
		if c == nil {
			continue
		}
		switch {
		case s.spool != nil:
			s.spool.Put(sc.Index%s.spool.Shards(), c)
		case s.pool != nil:
			s.pool.Put(c)
		}
	}
	sc.chunks = nil
}

// Shard returns the executor shard this chunk is affine to (chunk index
// modulo the sharded pool's shard count; 0 on unsharded streams). Consumers
// pass it to Executor.SubmitWaitTo so the chunk's fine-grain tasks land on
// the shard holding its pooled buffers.
func (sc *StreamChunk) Shard() int {
	if sp := sc.stream.spool; sp != nil {
		return sc.Index % sp.Shards()
	}
	return 0
}

// NewChunkPool returns a bounded pool of decoded chunks for stream
// consumers (StreamOptions.Pool): size chunks, Reset applied on recycle.
// Size it to columns × (prefetch window + 1) so the stream's fetches never
// starve while the consumer holds one delivered row group.
func NewChunkPool(size int) *dataflow.ItemPool[*Chunk] {
	return dataflow.NewItemPool(size,
		func() *Chunk { return new(Chunk) },
		func(c *Chunk) *Chunk { c.Reset(); return c },
	)
}

// NewShardedChunkPool is NewChunkPool with one free list per executor
// shard (StreamOptions.ShardedPool): chunks decoded for shard S recycle on
// shard S, keeping their backing arrays in that core's cache.
func NewShardedChunkPool(shards, size int) *dataflow.ShardedItemPool[*Chunk] {
	return dataflow.NewShardedItemPool(shards, size,
		func() *Chunk { return new(Chunk) },
		func(c *Chunk) *Chunk { c.Reset(); return c },
	)
}

// Stream opens a prefetching iterator over the dataset's chunks.
func (d *Dataset) Stream(opts StreamOptions) (*ChunkStream, error) {
	cols := opts.Columns
	if len(cols) == 0 {
		cols = append([]string{}, d.Manifest.Columns...)
	}
	for _, col := range cols {
		if !d.Manifest.HasColumn(col) {
			return nil, fmt.Errorf("%w: %q", ErrNoColumn, col)
		}
	}
	start, end := opts.Start, opts.End
	if start < 0 {
		start = 0
	}
	if end <= 0 || end > len(d.Manifest.Chunks) {
		end = len(d.Manifest.Chunks)
	}
	if start > end {
		start = end
	}
	window := opts.Prefetch
	if window <= 0 {
		window = DefaultPrefetch
	}
	return &ChunkStream{
		ds:     d,
		as:     AsyncOf(d.store),
		cols:   cols,
		codec:  opts.Codec,
		pool:   opts.Pool,
		spool:  opts.ShardedPool,
		window: window,
		start:  start,
		end:    end,
		next:   start,
		issued: start,
		futs:   make([][]*Future, end-start),
		names:  make([]string, len(cols)),
	}, nil
}

// issueToLocked issues fetch batches for chunks [s.issued, hi). Callers hold
// s.mu.
func (s *ChunkStream) issueToLocked(hi int) {
	if hi > s.end {
		hi = s.end
	}
	for ; s.issued < hi; s.issued++ {
		entry := s.ds.Manifest.Chunks[s.issued]
		for k, col := range s.cols {
			s.names[k] = chunkPath(entry, col)
		}
		s.futs[s.issued-s.start] = s.as.GetBatch(s.names)
	}
}

// Next claims the next chunk, waits for its blobs, decodes them and returns
// the row group. It returns io.EOF once the range is exhausted (or the
// stream closed). Claiming also tops up the fetch window, so a consumer
// loop keeps Prefetch chunk batches in flight.
func (s *ChunkStream) Next(ctx context.Context) (*StreamChunk, error) {
	s.mu.Lock()
	if s.closed || s.next >= s.end {
		s.mu.Unlock()
		return nil, io.EOF
	}
	i := s.next
	s.next++
	s.issueToLocked(i + s.window)
	futs := s.futs[i-s.start]
	s.futs[i-s.start] = nil
	s.mu.Unlock()

	shard := 0
	codec := s.codec
	if s.spool != nil {
		shard = i % s.spool.Shards()
		codec = codec.WithShard(shard)
	}
	chunks := make([]*Chunk, len(futs))
	fail := func(err error) (*StreamChunk, error) {
		for _, c := range chunks {
			if c == nil {
				continue
			}
			switch {
			case s.spool != nil:
				s.spool.Put(shard, c)
			case s.pool != nil:
				s.pool.Put(c)
			}
		}
		return nil, err
	}
	for k, fut := range futs {
		blob, err := fut.Wait(ctx)
		if err != nil {
			return fail(err)
		}
		var c *Chunk
		switch {
		case s.spool != nil:
			if c, err = s.spool.Get(ctx, shard); err != nil {
				return fail(err)
			}
			// Record the checkout before decoding, so a decode error
			// releases this chunk too instead of leaking it from the
			// bounded pool.
			chunks[k] = c
			err = codec.DecodeInto(c, blob)
		case s.pool != nil:
			if c, err = s.pool.Get(ctx); err != nil {
				return fail(err)
			}
			chunks[k] = c
			err = codec.DecodeInto(c, blob)
		default:
			c, err = codec.Decode(blob)
		}
		if err != nil {
			return fail(fmt.Errorf("agd: chunk %q: %w", chunkPath(s.ds.Manifest.Chunks[i], s.cols[k]), err))
		}
		chunks[k] = c
		if want := int(s.ds.Manifest.Chunks[i].Records); c.NumRecords() != want {
			return fail(fmt.Errorf("%w: chunk %q has %d records, manifest says %d",
				ErrCorrupt, chunkPath(s.ds.Manifest.Chunks[i], s.cols[k]), c.NumRecords(), want))
		}
	}
	return &StreamChunk{Index: i, chunks: chunks, stream: s}, nil
}

// Close stops the stream: subsequent Next calls return io.EOF and no further
// fetches are issued. Fetches already in flight complete in the background
// and their results are dropped.
func (s *ChunkStream) Close() {
	s.mu.Lock()
	s.closed = true
	s.futs = nil
	s.mu.Unlock()
}
