package agd

import (
	"encoding/binary"
	"fmt"

	"persona/internal/genome"
)

// Base compaction (§3): base characters are stored 3 bits each, 21 bases to
// a 64-bit word (63 bits used, top bit spare). A compacted record is the
// uvarint base count followed by the packed little-endian words.

// basesPerWord is the number of 3-bit bases packed in one 64-bit word.
const basesPerWord = 21

// CompactBases appends the compacted encoding of bases to dst and returns
// the extended slice.
func CompactBases(dst, bases []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(bases)))
	dst = append(dst, hdr[:n]...)
	for i := 0; i < len(bases); i += basesPerWord {
		end := i + basesPerWord
		if end > len(bases) {
			end = len(bases)
		}
		var word uint64
		for j, b := range bases[i:end] {
			word |= uint64(genome.Code(b)) << (3 * uint(j))
		}
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], word)
		dst = append(dst, w[:]...)
	}
	return dst
}

// ExpandBases decodes one compacted record from src, appending the base
// letters to dst. It returns the extended dst and the number of source bytes
// consumed.
func ExpandBases(dst, src []byte) ([]byte, int, error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return dst, 0, fmt.Errorf("%w: bad base count varint", ErrCorrupt)
	}
	words := (int(count) + basesPerWord - 1) / basesPerWord
	need := n + words*8
	if len(src) < need {
		return dst, 0, fmt.Errorf("%w: compacted record truncated (need %d bytes, have %d)", ErrCorrupt, need, len(src))
	}
	remaining := int(count)
	off := n
	for w := 0; w < words; w++ {
		word := binary.LittleEndian.Uint64(src[off : off+8])
		off += 8
		inWord := basesPerWord
		if remaining < inWord {
			inWord = remaining
		}
		for j := 0; j < inWord; j++ {
			dst = append(dst, genome.Letter(uint8(word>>(3*uint(j))&0x7)))
		}
		remaining -= inWord
	}
	return dst, need, nil
}

// CompactedSize returns the encoded size in bytes of a record of n bases.
func CompactedSize(n int) int {
	var hdr [binary.MaxVarintLen64]byte
	h := binary.PutUvarint(hdr[:], uint64(n))
	return h + (n+basesPerWord-1)/basesPerWord*8
}
