package agd

import "math"

// RecordArena stores a sequence of variable-length records in one contiguous
// data buffer plus a uint32 offset index — the AGD discipline (§3 of the
// paper: touch records as slices of one buffer, not as per-record objects)
// extracted into a shared type. It replaces per-record allocation in the
// alignment writers (core), the external merge sort's run staging (agdsort)
// and the format converters: appending a record costs amortized zero
// allocations (grow-by-doubling via append), and Reset recycles the backing
// arrays, so arenas pool cleanly through dataflow.ItemPool.
//
// The zero value is an empty, ready-to-use arena.
type RecordArena struct {
	data []byte
	// offs holds record boundaries: record i is data[offs[i]:offs[i+1]].
	// Either empty (no records) or len == Len()+1 with offs[0] == 0.
	offs []uint32
}

// NewRecordArena returns an arena with pre-sized backing arrays: capBytes of
// record data and capRecords index entries. Pools pass their steady-state
// sizes so checked-out arenas never grow.
func NewRecordArena(capBytes, capRecords int) *RecordArena {
	a := &RecordArena{}
	if capBytes > 0 {
		a.data = make([]byte, 0, capBytes)
	}
	if capRecords > 0 {
		a.offs = make([]uint32, 0, capRecords+1)
	}
	return a
}

// Len returns the number of records.
func (a *RecordArena) Len() int {
	if len(a.offs) == 0 {
		return 0
	}
	return len(a.offs) - 1
}

// DataLen returns the total record bytes stored.
func (a *RecordArena) DataLen() int { return len(a.data) }

// Record returns record i, aliasing the arena's buffer. The slice is valid
// until the next append moves the buffer; callers that keep records across
// appends must copy. i must be in [0, Len()).
func (a *RecordArena) Record(i int) []byte {
	return a.data[a.offs[i]:a.offs[i+1]]
}

// Append adds one record (copying rec into the arena). rec may alias the
// arena's own buffer: the source range lies below the append point, so the
// copy is safe even when growth relocates the backing array.
func (a *RecordArena) Append(rec []byte) {
	a.data = append(a.data, rec...)
	a.commit()
}

// AppendChunk bulk-appends every record of a decoded chunk, preserving
// record boundaries — the staging path of the external merge sort, one copy
// per column chunk instead of one per record.
func (a *RecordArena) AppendChunk(c *Chunk) {
	a.data = append(a.data, c.Data...)
	if len(a.offs) == 0 {
		a.offs = append(a.offs, 0)
	}
	a.checkSize()
	off := a.offs[len(a.offs)-1]
	for _, l := range c.lengths {
		off += l
		a.offs = append(a.offs, off)
	}
}

// Buf exposes the arena's data buffer so a record can be encoded in place
// with append-style helpers (e.g. EncodeResult); pass the grown slice to
// Commit to complete the record. No other arena method may be called between
// Buf and Commit.
func (a *RecordArena) Buf() []byte { return a.data }

// Commit completes an in-place append started with Buf: buf must be the
// arena's buffer extended with exactly one record's bytes.
func (a *RecordArena) Commit(buf []byte) {
	a.data = buf
	a.commit()
}

// AppendResult encodes one alignment result straight into the arena.
func (a *RecordArena) AppendResult(r *Result) {
	a.data = EncodeResult(a.data, r)
	a.commit()
}

func (a *RecordArena) commit() {
	if len(a.offs) == 0 {
		a.offs = append(a.offs, 0)
	}
	a.checkSize()
	a.offs = append(a.offs, uint32(len(a.data)))
}

// checkSize keeps the uint32 offset index honest: overflowing it would
// silently corrupt every subsequent record, so fail loudly instead. Arenas
// hold chunk-scale data (megabytes); reaching 4 GiB means a caller is
// staging far past the format's working set.
func (a *RecordArena) checkSize() {
	if uint64(len(a.data)) > math.MaxUint32 {
		panic("agd: RecordArena exceeds the 4 GiB offset-index limit")
	}
}

// Reset empties the arena, retaining both backing arrays so a pooled arena
// refills with no allocation. Records previously returned must no longer be
// referenced.
func (a *RecordArena) Reset() {
	a.data = a.data[:0]
	a.offs = a.offs[:0]
}
