package agd

import (
	"fmt"
)

// Dataset provides read access to an AGD dataset in a blob store.
type Dataset struct {
	Manifest *Manifest
	store    BlobStore
}

// Open loads a dataset's manifest and returns a reader for it.
func Open(store BlobStore, name string) (*Dataset, error) {
	m, err := ReadManifest(store, name)
	if err != nil {
		return nil, err
	}
	return &Dataset{Manifest: m, store: store}, nil
}

// OpenManifest wraps an already-loaded manifest.
func OpenManifest(store BlobStore, m *Manifest) *Dataset {
	return &Dataset{Manifest: m, store: store}
}

// Store returns the underlying blob store.
func (d *Dataset) Store() BlobStore { return d.store }

// NumChunks returns the number of row-group chunks.
func (d *Dataset) NumChunks() int { return len(d.Manifest.Chunks) }

// NumRecords returns the total record count.
func (d *Dataset) NumRecords() uint64 { return d.Manifest.NumRecords() }

// ChunkBlobName returns the blob name of column col of chunk i, so callers
// (e.g. the cluster runtime) can fetch raw blobs themselves.
func (d *Dataset) ChunkBlobName(col string, i int) (string, error) {
	if !d.Manifest.HasColumn(col) {
		return "", fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	if i < 0 || i >= len(d.Manifest.Chunks) {
		return "", fmt.Errorf("%w: %d", ErrNoChunk, i)
	}
	return chunkPath(d.Manifest.Chunks[i], col), nil
}

// ReadChunk fetches and decodes column col of chunk i. Only the requested
// column's blob is touched — the selective-field-access property that
// motivates AGD's column orientation.
func (d *Dataset) ReadChunk(col string, i int) (*Chunk, error) {
	name, err := d.ChunkBlobName(col, i)
	if err != nil {
		return nil, err
	}
	blob, err := d.store.Get(name)
	if err != nil {
		return nil, err
	}
	c, err := DecodeChunk(blob)
	if err != nil {
		return nil, fmt.Errorf("agd: chunk %q: %w", name, err)
	}
	if int(d.Manifest.Chunks[i].Records) != c.NumRecords() {
		return nil, fmt.Errorf("%w: chunk %q has %d records, manifest says %d",
			ErrCorrupt, name, c.NumRecords(), d.Manifest.Chunks[i].Records)
	}
	return c, nil
}

// ReadAllColumn decodes every record of a column across all chunks, copying
// each record. Intended for tests and small datasets; the pipeline operates
// chunk-wise.
func (d *Dataset) ReadAllColumn(col string) ([][]byte, error) {
	var out [][]byte
	for i := range d.Manifest.Chunks {
		c, err := d.ReadChunk(col, i)
		if err != nil {
			return nil, err
		}
		for r := 0; r < c.NumRecords(); r++ {
			rec, err := c.Record(r)
			if err != nil {
				return nil, err
			}
			cp := make([]byte, len(rec))
			copy(cp, rec)
			out = append(out, cp)
		}
	}
	return out, nil
}

// ReadAllBases decodes the bases column across all chunks into base-letter
// strings.
func (d *Dataset) ReadAllBases() ([][]byte, error) {
	var out [][]byte
	for i := range d.Manifest.Chunks {
		c, err := d.ReadChunk(ColBases, i)
		if err != nil {
			return nil, err
		}
		if c.Type != TypeCompactBases {
			return nil, fmt.Errorf("agd: bases column has type %v", c.Type)
		}
		for r := 0; r < c.NumRecords(); r++ {
			bases, err := c.ExpandBasesRecord(nil, r)
			if err != nil {
				return nil, err
			}
			out = append(out, bases)
		}
	}
	return out, nil
}

// ReadAllResults decodes the results column across all chunks.
func (d *Dataset) ReadAllResults() ([]Result, error) {
	var out []Result
	for i := range d.Manifest.Chunks {
		c, err := d.ReadChunk(ColResults, i)
		if err != nil {
			return nil, err
		}
		for r := 0; r < c.NumRecords(); r++ {
			res, err := c.DecodeResultRecord(r)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// Delete removes every blob of the dataset (all column chunks plus the
// manifest).
func Delete(store BlobStore, name string) error {
	names, err := store.List(name + "/")
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := store.Delete(n); err != nil {
			return err
		}
	}
	return nil
}
