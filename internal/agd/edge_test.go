package agd

// Tests for the pumped dataflow primitives: bounded-edge backpressure and
// teardown, the GroupStream Next/Close race contract, RunPump's ownership
// handling, and builder-pool backpressure. The concurrency tests here are
// meant to run under -race.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// edgeGroup builds a one-record raw group whose payload encodes idx, with a
// release hook counting into released.
func edgeGroup(idx int, released *atomic.Int32) *RowGroup {
	b := NewChunkBuilder(TypeRaw, uint64(idx))
	b.Append([]byte(fmt.Sprintf("rec-%04d", idx)))
	return NewRowGroup(idx, 0, []*Chunk{b.Chunk()}, func() { released.Add(1) })
}

// TestBoundedEdgeBackpressure checks the §4.5 contract: a producer ahead of
// its consumer blocks in Push at the edge's depth and resumes as soon as the
// consumer pops a group.
func TestBoundedEdgeBackpressure(t *testing.T) {
	var released atomic.Int32
	e := NewBoundedEdge(2)
	if e.Depth() != 2 {
		t.Fatalf("depth %d", e.Depth())
	}
	for i := 0; i < 2; i++ {
		if err := e.Push(edgeGroup(i, &released)); err != nil {
			t.Fatal(err)
		}
	}
	pushed := make(chan error, 1)
	go func() { pushed <- e.Push(edgeGroup(2, &released)) }()
	select {
	case err := <-pushed:
		t.Fatalf("push beyond depth did not block (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	g, err := e.Pop()
	if err != nil || g.Index != 0 {
		t.Fatalf("pop got (%v, %v), want group 0", g, err)
	}
	g.Release()
	select {
	case err := <-pushed:
		if err != nil {
			t.Fatalf("unblocked push failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("push did not resume after a pop")
	}
	e.CloseSend(nil)
	for want := 1; want <= 2; want++ {
		g, err := e.Pop()
		if err != nil || g.Index != want {
			t.Fatalf("drain got (%v, %v), want group %d", g, err, want)
		}
		g.Release()
	}
	if _, err := e.Pop(); err != io.EOF {
		t.Fatalf("pop after drain got %v, want EOF", err)
	}
	if e.Moved() != 3 || e.PeakDepth() != 2 {
		t.Fatalf("moved %d peak %d, want 3 and 2", e.Moved(), e.PeakDepth())
	}
	if e.PushWait() == 0 {
		t.Fatal("blocked push recorded no push-wait time")
	}
	if released.Load() != 3 {
		t.Fatalf("%d of 3 groups released", released.Load())
	}
}

// TestBoundedEdgeFailure checks failure semantics: queued groups are released
// exactly once, the first error sticks, and a post-failure Push releases the
// group on the producer's behalf.
func TestBoundedEdgeFailure(t *testing.T) {
	var released atomic.Int32
	e := NewBoundedEdge(4)
	for i := 0; i < 3; i++ {
		if err := e.Push(edgeGroup(i, &released)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	e.Fail(boom)
	if released.Load() != 3 {
		t.Fatalf("failure released %d of 3 queued groups", released.Load())
	}
	e.Fail(errors.New("later")) // only the first failure sticks
	if _, err := e.Pop(); err != boom {
		t.Fatalf("pop after failure got %v, want boom", err)
	}
	if err := e.Push(edgeGroup(9, &released)); err != boom {
		t.Fatalf("push after failure got %v, want boom", err)
	}
	if released.Load() != 4 {
		t.Fatal("post-failure push did not release the group")
	}
}

// TestBoundedEdgeCloseRecv checks consumer-side teardown: the queue drains
// and releases, and the producer sees ErrEdgeClosed (not an error of its
// own).
func TestBoundedEdgeCloseRecv(t *testing.T) {
	var released atomic.Int32
	e := NewBoundedEdge(4)
	for i := 0; i < 2; i++ {
		if err := e.Push(edgeGroup(i, &released)); err != nil {
			t.Fatal(err)
		}
	}
	e.CloseRecv()
	e.CloseRecv() // idempotent
	if released.Load() != 2 {
		t.Fatalf("CloseRecv released %d of 2 queued groups", released.Load())
	}
	if err := e.Push(edgeGroup(3, &released)); !errors.Is(err, ErrEdgeClosed) {
		t.Fatalf("push after CloseRecv got %v, want ErrEdgeClosed", err)
	}
	if released.Load() != 3 {
		t.Fatal("rejected push did not release the group")
	}
}

// TestBoundedEdgeBlockedSidesWake checks that Fail wakes both a producer
// blocked on a full edge and a consumer blocked on an empty one — the path
// the pipeline's context watcher depends on.
func TestBoundedEdgeBlockedSidesWake(t *testing.T) {
	var released atomic.Int32
	boom := errors.New("watcher: cancelled")

	full := NewBoundedEdge(1)
	if err := full.Push(edgeGroup(0, &released)); err != nil {
		t.Fatal(err)
	}
	pushErr := make(chan error, 1)
	go func() { pushErr <- full.Push(edgeGroup(1, &released)) }()

	empty := NewBoundedEdge(1)
	popErr := make(chan error, 1)
	go func() {
		_, err := empty.Pop()
		popErr <- err
	}()

	time.Sleep(20 * time.Millisecond) // let both goroutines block
	full.Fail(boom)
	empty.Fail(boom)
	for name, ch := range map[string]chan error{"push": pushErr, "pop": popErr} {
		select {
		case err := <-ch:
			if err != boom {
				t.Fatalf("%s woke with %v, want boom", name, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("Fail did not wake blocked %s", name)
		}
	}
	if released.Load() != 2 {
		t.Fatalf("%d of 2 groups released after failure", released.Load())
	}
}

// TestGroupStreamCloseDuringNext is the satellite-1 race hammer: Close racing
// a concurrent Next must never leak a group, must run the stop hook exactly
// once, and every Next after Close must return io.EOF. Run under -race this
// catches the unsynchronized closed-flag bug the pumped teardown exposed.
func TestGroupStreamCloseDuringNext(t *testing.T) {
	for iter := 0; iter < 300; iter++ {
		var created, released, stopped atomic.Int32
		n := 0 // next is single-caller by contract
		next := func(ctx context.Context) (*RowGroup, error) {
			created.Add(1)
			b := NewChunkBuilder(TypeRaw, uint64(n))
			b.Append([]byte("x"))
			n++
			return NewRowGroup(n-1, 0, []*Chunk{b.Chunk()}, func() { released.Add(1) }), nil
		}
		s := NewGroupStream(StreamMeta{Columns: []string{"c"}}, next, func() { stopped.Add(1) })
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g, err := s.Next(context.Background())
				if err != nil {
					if err != io.EOF {
						panic(err)
					}
					return
				}
				g.Release()
			}
		}()
		s.Close()
		s.Close() // idempotent, including concurrently with the reader
		wg.Wait()
		if _, err := s.Next(context.Background()); err != io.EOF {
			t.Fatalf("iter %d: Next after Close got %v, want EOF", iter, err)
		}
		if created.Load() != released.Load() {
			t.Fatalf("iter %d: %d groups created, %d released — leak across the Next/Close race",
				iter, created.Load(), released.Load())
		}
		if stopped.Load() != 1 {
			t.Fatalf("iter %d: stop hook ran %d times", iter, stopped.Load())
		}
	}
}

// TestRunPumpDetachesUnowned checks RunPump's ownership handling: groups from
// a strict-pull stream (one reused builder) are detached before queueing, so
// queued groups keep their own bytes while the builder recycles under them.
func TestRunPumpDetachesUnowned(t *testing.T) {
	const groups = 6
	b := NewChunkBuilder(TypeRaw, 0)
	n := 0
	next := func(ctx context.Context) (*RowGroup, error) {
		if n >= groups {
			return nil, io.EOF
		}
		b.Reset(TypeRaw, uint64(n)) // recycles the previous group's bytes
		b.Append([]byte(fmt.Sprintf("rec-%04d", n)))
		g := NewRowGroup(n, 0, []*Chunk{b.Chunk()}, nil)
		n++
		return g, nil
	}
	src := NewGroupStream(StreamMeta{Columns: []string{"c"}}, next, nil) // Owned=false
	e := NewBoundedEdge(groups)                                         // deep enough that every group queues
	if _, err := RunPump(context.Background(), src, e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < groups; i++ {
		g, err := e.Pop()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := g.Chunks[0].Record(0)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("rec-%04d", i); string(rec) != want {
			t.Fatalf("queued group %d reads %q, want %q — builder recycled under the queue", i, rec, want)
		}
		g.Release()
	}
	if _, err := e.Pop(); err != io.EOF {
		t.Fatalf("after drain got %v, want EOF", err)
	}
}

// TestRunPumpPassesOwnedThrough checks the complementary contract: groups
// from an Owned stream cross the edge without copying.
func TestRunPumpPassesOwnedThrough(t *testing.T) {
	var made []*RowGroup
	next := func(ctx context.Context) (*RowGroup, error) {
		if len(made) >= 3 {
			return nil, io.EOF
		}
		b := NewChunkBuilder(TypeRaw, uint64(len(made)))
		b.Append([]byte("x"))
		g := NewRowGroup(len(made), 0, []*Chunk{b.Chunk()}, nil)
		made = append(made, g)
		return g, nil
	}
	src := NewGroupStream(StreamMeta{Columns: []string{"c"}}, next, nil)
	src.Owned = true
	e := NewBoundedEdge(4)
	if _, err := RunPump(context.Background(), src, e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		g, err := e.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if g != made[i] {
			t.Fatalf("owned group %d was copied across the edge", i)
		}
	}
}

// TestRunPumpStopsOnDeadEdge checks that a producer whose consumer vanished
// stops cleanly: ErrEdgeClosed is not reported as the pump's own failure, and
// the source stream is closed so teardown cascades upstream.
func TestRunPumpStopsOnDeadEdge(t *testing.T) {
	var released, stopped atomic.Int32
	n := 0
	next := func(ctx context.Context) (*RowGroup, error) {
		g := edgeGroup(n, &released)
		n++
		return g, nil // unbounded: only the dead edge stops the pump
	}
	src := NewGroupStream(StreamMeta{Columns: []string{"c"}}, next, func() { stopped.Add(1) })
	src.Owned = true
	e := NewBoundedEdge(2)
	e.CloseRecv()
	if _, err := RunPump(context.Background(), src, e); err != nil {
		t.Fatalf("pump reported consumer close as its own failure: %v", err)
	}
	if stopped.Load() != 1 {
		t.Fatal("pump did not close its source on a dead edge")
	}
	if released.Load() != int32(n) {
		t.Fatalf("%d of %d groups released after dead-edge stop", released.Load(), n)
	}
}

// TestBuilderPoolBackpressure checks the builder-pool contract: exhaustion
// blocks Get until a Put, and cancellation unblocks it with an error.
func TestBuilderPoolBackpressure(t *testing.T) {
	ctx := context.Background()
	bp := NewBuilderPool(2, []ColumnSpec{{Name: "c", Type: TypeRaw}})
	if bp.Size() != 2 || bp.Free() != 2 {
		t.Fatalf("fresh pool %d/%d", bp.Free(), bp.Size())
	}
	s1, err := bp.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bp.Get(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Free() != 0 {
		t.Fatalf("free %d after checking out both sets", bp.Free())
	}
	got := make(chan *BuilderSet, 1)
	go func() {
		s, err := bp.Get(ctx, 200)
		if err != nil {
			panic(err)
		}
		got <- s
	}()
	select {
	case <-got:
		t.Fatal("Get on an exhausted pool did not block")
	case <-time.After(50 * time.Millisecond):
	}
	bp.Put(s1)
	select {
	case s3 := <-got:
		if s3 != s1 {
			t.Fatal("unblocked Get returned a set that was never put back")
		}
		bp.Put(s3)
	case <-time.After(2 * time.Second):
		t.Fatal("Get did not resume after a Put")
	}
	bp.Put(s2)
	if bp.Free() != bp.Size() {
		t.Fatalf("pool leak: %d of %d free", bp.Free(), bp.Size())
	}
	// A cancelled context must unblock a Get on an exhausted pool. (On a
	// pool with free sets Get may legitimately win the select against the
	// dead context, so exhaust it first to force the blocking path.)
	a, err := bp.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := bp.Get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := bp.Get(dead, 0); err == nil {
		t.Fatal("Get ignored a cancelled context on an exhausted pool")
	}
	bp.Put(a)
	bp.Put(b2)
}
