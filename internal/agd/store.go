package agd

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemStore is an in-memory BlobStore, used by tests and as the backing for
// the simulated object store.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements BlobStore.
func (s *MemStore) Put(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.blobs[name] = cp
	s.mu.Unlock()
	return nil
}

// Get implements BlobStore.
func (s *MemStore) Get(name string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.blobs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
	}
	return data, nil
}

// Delete implements BlobStore.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	delete(s.blobs, name)
	s.mu.Unlock()
	return nil
}

// List implements BlobStore.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	var names []string
	for name := range s.blobs {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Size returns the total bytes stored.
func (s *MemStore) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}

// DirStore is a BlobStore over a local directory; blob names map to file
// paths ('/' separators become directories).
type DirStore struct {
	root string
	// sem bounds concurrent async file reads (see GetAsync).
	sem chan struct{}
}

// dirStoreParallelism is how many async file reads a DirStore keeps in
// flight: enough to fill a disk queue without exhausting file descriptors.
const dirStoreParallelism = 16

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: dir, sem: make(chan struct{}, dirStoreParallelism)}, nil
}

func (s *DirStore) path(name string) string {
	return filepath.Join(s.root, filepath.FromSlash(name))
}

// Put implements BlobStore.
func (s *DirStore) Put(name string, data []byte) error {
	p := s.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("put %q: %w", name, err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("put %q: %w", name, err)
	}
	return nil
}

// Get implements BlobStore.
func (s *DirStore) Get(name string) ([]byte, error) {
	data, err := os.ReadFile(s.path(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("get %q: %w", name, err)
	}
	return data, nil
}

// Delete implements BlobStore.
func (s *DirStore) Delete(name string) error {
	err := os.Remove(s.path(name))
	if os.IsNotExist(err) || err == nil {
		return nil
	}
	return fmt.Errorf("delete %q: %w", name, err)
}

// List implements BlobStore.
func (s *DirStore) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("list %q: %w", prefix, err)
	}
	sort.Strings(names)
	return names, nil
}
