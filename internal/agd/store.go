package agd

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemStore is an in-memory BlobStore, used by tests and as the backing for
// the simulated object store.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Put implements BlobStore.
func (s *MemStore) Put(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.blobs[name] = cp
	s.mu.Unlock()
	return nil
}

// Get implements BlobStore.
func (s *MemStore) Get(name string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.blobs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
	}
	return data, nil
}

// Delete implements BlobStore.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	delete(s.blobs, name)
	s.mu.Unlock()
	return nil
}

// List implements BlobStore.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	var names []string
	for name := range s.blobs {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names, nil
}

// Size returns the total bytes stored.
func (s *MemStore) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}

// DirStore is a BlobStore over a local directory; blob names map to file
// paths ('/' separators become directories). Puts are atomic: data lands in
// a temp file that is renamed over the final path, so a crash mid-Put can
// never leave a torn blob under a live name (it leaves at most an invisible
// temp file, which Get and List never surface).
type DirStore struct {
	root string
	// sem bounds concurrent async file reads (see GetAsync).
	sem chan struct{}
	// noSync skips the fsync calls of Put (NewDirStoreNoSync): atomicity
	// is kept (temp + rename) but durability is left to the OS — for
	// benchmarks and throwaway test dirs.
	noSync bool
}

// dirStoreParallelism is how many async file reads a DirStore keeps in
// flight: enough to fill a disk queue without exhausting file descriptors.
const dirStoreParallelism = 16

// tmpPattern marks in-flight Put temp files; List filters them out so a
// crashed Put's leftover is invisible rather than a phantom blob.
const (
	tmpPrefix = ".agd-put-"
	tmpSuffix = ".tmp"
)

// isTempName reports whether a path base names an in-flight Put temp file.
func isTempName(base string) bool {
	return strings.HasPrefix(base, tmpPrefix) && strings.HasSuffix(base, tmpSuffix)
}

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: dir, sem: make(chan struct{}, dirStoreParallelism)}, nil
}

// NewDirStoreNoSync returns a store whose Puts stay atomic (temp + rename)
// but skip fsync — faster, with durability left to the OS's writeback.
func NewDirStoreNoSync(dir string) (*DirStore, error) {
	s, err := NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	s.noSync = true
	return s, nil
}

func (s *DirStore) path(name string) string {
	return filepath.Join(s.root, filepath.FromSlash(name))
}

// Put implements BlobStore. The write is crash-safe: data goes to a temp
// file in the destination directory, is fsync'd, then renamed over the
// final path, and the directory is fsync'd so the rename itself is durable.
// A reader concurrent with Put (or a crash at any point) sees either the
// whole previous blob or the whole new one — never a prefix that would
// later fail the chunk checksum.
func (s *DirStore) Put(name string, data []byte) error {
	p := s.path(name)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("put %q: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("put %q: %w", name, err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the final path is
	// untouched until the rename.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if !s.noSync {
		if err := tmp.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", name, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", name, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", name, err)
	}
	if !s.noSync {
		if err := syncDir(dir); err != nil {
			return fmt.Errorf("put %q: %w", name, err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements BlobStore.
func (s *DirStore) Get(name string) ([]byte, error) {
	data, err := os.ReadFile(s.path(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("get %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("get %q: %w", name, err)
	}
	return data, nil
}

// Delete implements BlobStore.
func (s *DirStore) Delete(name string) error {
	err := os.Remove(s.path(name))
	if os.IsNotExist(err) || err == nil {
		return nil
	}
	return fmt.Errorf("delete %q: %w", name, err)
}

// List implements BlobStore.
func (s *DirStore) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		if isTempName(filepath.Base(path)) {
			return nil // in-flight or crashed Put temp, not a blob
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("list %q: %w", prefix, err)
	}
	sort.Strings(names)
	return names, nil
}
