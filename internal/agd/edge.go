package agd

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"
)

// This file is the pumped half of the stage-to-stage dataflow: a bounded
// queue of row groups layered on the GroupStream edge, so stage N+1 can
// consume chunk k−1 while stage N produces chunk k. Depth bounds memory
// (groups in flight across the graph ≤ Σ edge depths plus one in hand per
// stage) and is the back-pressure valve: a producer ahead of its consumer
// blocks in Push instead of buffering unboundedly (§4.5's bounded queues).

// ErrEdgeClosed is returned by Push after the consumer has closed its side
// of the edge: the producer should stop — its output can no longer go
// anywhere — but has itself done nothing wrong.
var ErrEdgeClosed = errors.New("agd: edge closed by consumer")

// BoundedEdge is a bounded FIFO of row groups between a producing pump and a
// consuming stage. One producer and one consumer; either side may close, and
// anyone may Fail the edge (the cancellation watcher does). Every queued
// group is release-owned: on failure or consumer close the edge drains and
// releases them, so pooled chunks return to their pools instead of leaking
// under a dead pipeline.
//
// The edge is a mutex + condition variable rather than a channel: draining a
// channel race-free against a concurrent send is not possible (a group can
// land in the buffer after the drain loop exits), and failure must release
// queued groups exactly once.
type BoundedEdge struct {
	mu   sync.Mutex
	cond *sync.Cond

	queue      []*RowGroup
	depth      int
	sendClosed bool
	recvClosed bool
	err        error // sticky first failure; queue is empty once set

	peak       int
	moved      int64
	pushWaitNs int64
	popWaitNs  int64
}

// NewBoundedEdge creates an edge holding at most depth groups (minimum 1).
func NewBoundedEdge(depth int) *BoundedEdge {
	if depth < 1 {
		depth = 1
	}
	e := &BoundedEdge{depth: depth, queue: make([]*RowGroup, 0, depth)}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Depth returns the edge's capacity in groups.
func (e *BoundedEdge) Depth() int { return e.depth }

// Push queues a group for the consumer, blocking while the edge is full. On
// a failed or closed edge the group is released on the caller's behalf and
// the edge error returned (ErrEdgeClosed for a clean consumer close) — the
// producer should stop pumping. Push never blocks on a dead edge.
func (e *BoundedEdge) Push(g *RowGroup) error {
	e.mu.Lock()
	if len(e.queue) >= e.depth && e.err == nil && !e.recvClosed && !e.sendClosed {
		t0 := time.Now()
		for len(e.queue) >= e.depth && e.err == nil && !e.recvClosed && !e.sendClosed {
			e.cond.Wait()
		}
		e.pushWaitNs += time.Since(t0).Nanoseconds()
	}
	if e.err != nil || e.recvClosed || e.sendClosed {
		err := e.err
		e.mu.Unlock()
		g.Release()
		if err != nil {
			return err
		}
		return ErrEdgeClosed
	}
	e.queue = append(e.queue, g)
	if len(e.queue) > e.peak {
		e.peak = len(e.queue)
	}
	e.moved++
	e.cond.Broadcast()
	e.mu.Unlock()
	return nil
}

// Pop dequeues the next group in row order. After a clean CloseSend the
// remaining queue drains first, then Pop returns io.EOF; after a failure the
// error is delivered immediately (the queue was already drained and
// released). Pop blocks on an empty live edge — cancellation reaches it via
// Fail, typically from the pipeline's context watcher.
func (e *BoundedEdge) Pop() (*RowGroup, error) {
	e.mu.Lock()
	if len(e.queue) == 0 && e.err == nil && !e.sendClosed && !e.recvClosed {
		t0 := time.Now()
		for len(e.queue) == 0 && e.err == nil && !e.sendClosed && !e.recvClosed {
			e.cond.Wait()
		}
		e.popWaitNs += time.Since(t0).Nanoseconds()
	}
	if e.err != nil {
		err := e.err
		e.mu.Unlock()
		return nil, err
	}
	if len(e.queue) > 0 {
		g := e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.cond.Broadcast()
		e.mu.Unlock()
		return g, nil
	}
	e.mu.Unlock()
	return nil, io.EOF
}

// CloseSend marks the producer finished. A nil err lets the consumer drain
// the queue and then see io.EOF; a non-nil err fails the edge: queued groups
// are released and the consumer's next Pop returns err without draining.
// Idempotent; only the first failure sticks.
func (e *BoundedEdge) CloseSend(err error) {
	e.mu.Lock()
	var drained []*RowGroup
	if err != nil && e.err == nil {
		e.err = err
		drained = e.takeQueueLocked()
	}
	e.sendClosed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	releaseAll(drained)
}

// CloseRecv marks the consumer gone: queued groups are drained and released
// (returning pooled chunks, which unblocks a producer waiting on a pool) and
// subsequent Pushes fail with ErrEdgeClosed. Idempotent.
func (e *BoundedEdge) CloseRecv() {
	e.mu.Lock()
	e.recvClosed = true
	drained := e.takeQueueLocked()
	e.cond.Broadcast()
	e.mu.Unlock()
	releaseAll(drained)
}

// Fail poisons the edge from outside the producer/consumer pair — the
// pipeline's cancellation watcher fails every edge when the run context is
// cancelled, since a condition-variable wait cannot select on a context.
// Queued groups are released; both sides wake with err. The first failure
// sticks.
func (e *BoundedEdge) Fail(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	var drained []*RowGroup
	if e.err == nil {
		e.err = err
		drained = e.takeQueueLocked()
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	releaseAll(drained)
}

// takeQueueLocked empties the queue for release outside the lock (release
// hooks return chunks to pools; keeping them out from under the edge mutex
// avoids ordering the edge against every pool's internals).
func (e *BoundedEdge) takeQueueLocked() []*RowGroup {
	if len(e.queue) == 0 {
		return nil
	}
	drained := make([]*RowGroup, len(e.queue))
	copy(drained, e.queue)
	e.queue = e.queue[:0]
	return drained
}

func releaseAll(groups []*RowGroup) {
	for _, g := range groups {
		g.Release()
	}
}

// PeakDepth reports the deepest the queue ever got — how much of the edge's
// buffer the stage pair actually used.
func (e *BoundedEdge) PeakDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peak
}

// Moved reports how many groups crossed the edge.
func (e *BoundedEdge) Moved() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.moved
}

// PushWait reports cumulative producer time blocked on a full edge, PopWait
// cumulative consumer time blocked on an empty one — the raw material for
// per-stage busy-vs-blocked attribution.
func (e *BoundedEdge) PushWait() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.pushWaitNs)
}

// PopWait reports cumulative consumer time blocked on an empty edge.
func (e *BoundedEdge) PopWait() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.popWaitNs)
}

// Stream wraps the consumer side as a GroupStream, so an unchanged stage
// form can sit downstream of a pumped edge through the ordinary pull
// interface. Closing the stream closes the receive side (draining and
// releasing queued groups). The stream is Owned: everything queued on an
// edge is release-owned by construction (RunPump detaches anything that
// isn't).
func (e *BoundedEdge) Stream(meta StreamMeta) *GroupStream {
	gs := NewGroupStream(meta, func(ctx context.Context) (*RowGroup, error) {
		return e.Pop()
	}, e.CloseRecv)
	gs.Owned = true
	return gs
}

// RunPump drains a stage's output stream into an edge until EOF or failure:
// the body of one pump goroutine. Groups from a stream that does not
// declare Owned delivery are detached (deep-copied) before queueing —
// under the strict pull contract the next Next would recycle them while
// they sit in the queue. On return the edge's send side is closed with the
// stage's error (nil for clean EOF), propagating downstream, and the source
// stream is closed, propagating teardown upstream.
//
// The returned duration is total wall spent inside src.Next — stage
// production plus time blocked on the stage's own upstream edge; callers
// split those with that edge's PopWait.
func RunPump(ctx context.Context, src *GroupStream, edge *BoundedEdge) (time.Duration, error) {
	var produce time.Duration
	var pumpErr error
	for {
		t0 := time.Now()
		g, err := src.Next(ctx)
		produce += time.Since(t0)
		if err == io.EOF {
			break
		}
		if err != nil {
			pumpErr = err
			break
		}
		if !src.Owned {
			g = g.Detach()
		}
		if err := edge.Push(g); err != nil {
			// The edge died under us: the consumer closed (its own pump
			// reports the root cause) or a watcher failed it. Either way
			// this stage has nothing to report unless the error is real.
			if !errors.Is(err, ErrEdgeClosed) {
				pumpErr = err
			}
			break
		}
	}
	edge.CloseSend(pumpErr)
	src.Close()
	return produce, pumpErr
}
