package agd

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"persona/internal/dataflow"
)

// This file defines the chunk-granularity dataflow edge between pipeline
// stages: a pull-based stream of decoded row groups plus the dataset-level
// metadata downstream stages need (columns, reference sequences, sort
// order). Stages consume a GroupStream and return a new one, so a composed
// pipeline moves chunks stage-to-stage in memory instead of materializing
// an intermediate dataset in the store between every pair of stages (§4.1's
// graph composition, §4.3's pipelines).

// StreamMeta describes the rows flowing across a pipeline edge.
type StreamMeta struct {
	// Columns names the column of each chunk in a RowGroup, in order.
	Columns []string
	// RefSeqs is the reference the rows were (or will be) aligned against.
	RefSeqs []RefSeq
	// SortedBy is the row order ("", "location" or "metadata").
	SortedBy string
	// NumRecords is the total row count when known up front; 0 when the
	// source is unbounded (e.g. a FASTQ import stream).
	NumRecords uint64
	// ChunkSize is the source's records-per-chunk (0 when unknown). Stages
	// that re-chunk rows (sort's merge, the dataset sink) default to it, so
	// a pipeline whose groups shrink mid-stream — a selective filter —
	// still produces output chunked like its source rather than like the
	// first surviving group.
	ChunkSize int
}

// Col returns the index of the named column, or -1.
func (m StreamMeta) Col(name string) int {
	for i, c := range m.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the stream carries the named column.
func (m StreamMeta) HasColumn(name string) bool { return m.Col(name) >= 0 }

// WithColumn returns a copy of the metadata with one column appended.
func (m StreamMeta) WithColumn(name string) StreamMeta {
	cols := make([]string, 0, len(m.Columns)+1)
	cols = append(cols, m.Columns...)
	m.Columns = append(cols, name)
	return m
}

// RowGroup is one row group in flight between stages: the decoded chunks of
// every stream column, row-aligned. Groups are delivered in row order.
//
// Ownership: the consumer must finish with a group — and Release it — before
// asking the stream for the next one. Stages that reuse builders or pooled
// buffers recycle them on the next Next call, so a group's chunks are valid
// only until Release or the following Next, whichever comes first.
type RowGroup struct {
	// Index is the group's position in the stream (0-based).
	Index int
	// Shard is the executor shard the group's pooled buffers are affine to
	// (0 when the source is unsharded).
	Shard int
	// Chunks holds one decoded chunk per StreamMeta.Columns entry.
	Chunks []*Chunk
	// release returns pooled resources; nil when nothing is pooled.
	release func()
}

// NewRowGroup assembles a group for delivery, with an optional release hook
// (run once, on Release) returning pooled resources — for a derived group,
// typically the upstream group's Release.
func NewRowGroup(index, shard int, chunks []*Chunk, release func()) *RowGroup {
	return &RowGroup{Index: index, Shard: shard, Chunks: chunks, release: release}
}

// NumRecords returns the group's row count.
func (g *RowGroup) NumRecords() int {
	if len(g.Chunks) == 0 {
		return 0
	}
	return g.Chunks[0].NumRecords()
}

// Col returns the chunk of the named column per meta, or nil.
func (g *RowGroup) Col(meta StreamMeta, name string) *Chunk {
	if i := meta.Col(name); i >= 0 && i < len(g.Chunks) {
		return g.Chunks[i]
	}
	return nil
}

// Release returns the group's pooled resources to their owners. The caller
// must not reference the chunks (or slices of their data) afterwards.
// Releasing twice is a no-op.
func (g *RowGroup) Release() {
	if g.release != nil {
		r := g.release
		g.release = nil
		g.Chunks = nil
		r()
	}
}

// Detach returns a group whose chunks are independently owned copies, valid
// until the garbage collector — however many later groups the producing
// stream delivers. The original group is released. Pumped edges detach
// groups from streams that do not declare Owned delivery, so a stage's
// reused builders can never recycle under a queued group.
func (g *RowGroup) Detach() *RowGroup {
	chunks := make([]*Chunk, len(g.Chunks))
	for i, c := range g.Chunks {
		chunks[i] = c.Clone()
	}
	out := NewRowGroup(g.Index, g.Shard, chunks, nil)
	g.Release()
	return out
}

// GroupStream is the pull-based edge between pipeline stages. Next returns
// groups in row order and io.EOF when the stream is exhausted; Close stops
// the stream early and releases stage resources (temporary spill blobs,
// upstream streams). Next also checks the context before delivering, so a
// cancelled pipeline stops within one chunk at every stage.
//
// Next must be called from one goroutine at a time (stage state is not
// shareable), but Close may race a concurrent Next: a pumped pipeline's
// teardown closes streams while their pumps are mid-pull. After Close, the
// in-flight Next finishes (or fails) and every later Next returns io.EOF.
type GroupStream struct {
	// Meta describes the rows this edge carries.
	Meta StreamMeta
	// Owned declares the delivery contract: when true, every delivered
	// group's chunks stay valid until the group is Released, no matter how
	// many further groups are requested first (pool- or copy-backed
	// stages). When false — the strict pull contract — a group's chunks
	// may recycle on the following Next call, so a pumped edge must Detach
	// the group before queueing it.
	Owned bool

	next     func(ctx context.Context) (*RowGroup, error)
	stop     func()
	closed   atomic.Bool
	stopOnce sync.Once
}

// NewGroupStream assembles a stream from a delivery function and an optional
// stop hook (run once, on the first Close).
func NewGroupStream(meta StreamMeta, next func(ctx context.Context) (*RowGroup, error), stop func()) *GroupStream {
	return &GroupStream{Meta: meta, next: next, stop: stop}
}

// Next delivers the next row group, or io.EOF at the end of the stream. The
// context's cancellation and deadline are checked per group.
func (s *GroupStream) Next(ctx context.Context) (*RowGroup, error) {
	if s.closed.Load() {
		return nil, io.EOF
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := s.next(ctx)
	if err == nil && s.closed.Load() {
		// Raced a Close: the stop hook may already be tearing down the
		// resources backing this group, so don't hand it out.
		g.Release()
		return nil, io.EOF
	}
	return g, err
}

// Close stops the stream. Groups already delivered stay valid until
// released; subsequent Next calls return io.EOF. Close is idempotent and
// safe to call concurrently with Next.
func (s *GroupStream) Close() {
	s.closed.Store(true)
	s.stopOnce.Do(func() {
		if s.stop != nil {
			s.stop()
		}
	})
}

// BuilderSet is one checked-out set of per-column chunk builders from a
// BuilderPool: the backing buffers of one in-flight output group.
type BuilderSet struct {
	// Builders holds one builder per pool column, in spec order.
	Builders []*ChunkBuilder
}

// Chunks returns every builder's accumulated chunk, in column order. The
// chunks share the builders' backing arrays, so they are valid until the set
// is Put back.
func (s *BuilderSet) Chunks() []*Chunk {
	chunks := make([]*Chunk, len(s.Builders))
	for i, b := range s.Builders {
		chunks[i] = b.Chunk()
	}
	return chunks
}

// BuilderPool is a bounded pool of per-column builder sets. Stages that used
// to recycle one builder set per pull draw from a pool instead, which turns
// their output groups release-owned (valid until Release, not until the next
// Next): a pumped edge can then queue several of a stage's groups without
// any recycling under a live reader. Exhaustion blocks in Get — the same
// back-pressure contract as the chunk pools — so an undersized window
// degrades to waiting, never to corruption.
type BuilderPool struct {
	specs []ColumnSpec
	pool  *dataflow.ItemPool[*BuilderSet]
}

// NewBuilderPool creates a pool of window builder sets (minimum 2: one being
// filled, one in flight), one builder per spec.
func NewBuilderPool(window int, specs []ColumnSpec) *BuilderPool {
	if window < 2 {
		window = 2
	}
	bp := &BuilderPool{specs: specs}
	bp.pool = dataflow.NewItemPool(window, func() *BuilderSet {
		set := &BuilderSet{Builders: make([]*ChunkBuilder, len(specs))}
		for i, sp := range specs {
			set.Builders[i] = NewChunkBuilder(sp.Type, 0)
		}
		return set
	}, nil)
	return bp
}

// Get checks out a builder set, blocking while every set is held by an
// in-flight group (ErrStopped on ctx cancellation). Each builder is reset to
// its column's record type with the given first-record ordinal.
func (bp *BuilderPool) Get(ctx context.Context, firstOrdinal uint64) (*BuilderSet, error) {
	set, err := bp.pool.Get(ctx)
	if err != nil {
		return nil, err
	}
	for i, sp := range bp.specs {
		set.Builders[i].Reset(sp.Type, firstOrdinal)
	}
	return set, nil
}

// Put returns a set to the pool. The group built from it must be dead: its
// chunks alias the builders' arrays, which the next Get recycles.
func (bp *BuilderPool) Put(set *BuilderSet) {
	if set != nil {
		bp.pool.Put(set)
	}
}

// Size returns the pool's bound; Free the sets currently available. Equal
// when no group is in flight — the leak check for pumped-stage tests.
func (bp *BuilderPool) Size() int { return bp.pool.Size() }

// Free returns the number of sets currently available.
func (bp *BuilderPool) Free() int { return bp.pool.Free() }

// Groups opens a GroupStream over the dataset's chunks — the pipeline
// source form of Stream. Column order follows opts.Columns (every manifest
// column when empty), and the group metadata carries the manifest's
// reference sequences and sort order.
func (d *Dataset) Groups(opts StreamOptions) (*GroupStream, error) {
	cs, err := d.Stream(opts)
	if err != nil {
		return nil, err
	}
	meta := StreamMeta{
		Columns:    cs.cols,
		RefSeqs:    d.Manifest.RefSeqs,
		SortedBy:   d.Manifest.SortedBy,
		NumRecords: d.Manifest.NumRecords(),
	}
	if len(d.Manifest.Chunks) > 0 {
		meta.ChunkSize = int(d.Manifest.Chunks[0].Records)
	}
	next := func(ctx context.Context) (*RowGroup, error) {
		sc, err := cs.Next(ctx)
		if err != nil {
			return nil, err
		}
		return &RowGroup{
			Index:   sc.Index,
			Shard:   sc.Shard(),
			Chunks:  sc.Chunks(),
			release: sc.Release,
		}, nil
	}
	gs := NewGroupStream(meta, next, cs.Close)
	// Pooled source chunks are valid until Release (the pool recycles only
	// released chunks), so dataset groups satisfy the Owned contract.
	gs.Owned = true
	return gs, nil
}

// SpecsForColumns maps standard column names to their column specs (the
// record-type convention shared by sort, filter and the pipeline writer).
func SpecsForColumns(columns []string) []ColumnSpec {
	cols := make([]ColumnSpec, len(columns))
	for i, name := range columns {
		cols[i] = ColumnSpec{Name: name, Type: SpecTypeFor(name)}
	}
	return cols
}

// SpecTypeFor returns the record-type convention for a standard column name.
func SpecTypeFor(name string) RecordType {
	switch name {
	case ColBases:
		return TypeCompactBases
	case ColResults:
		return TypeResults
	}
	return TypeRaw
}

// WriteGroups drains a stream into a new dataset: every row is appended in
// stored representation through a Writer (re-chunking to opts.ChunkSize,
// which defaults to the stream's source chunk size, then the first group's
// size, so chunking survives a fused pipeline), and the manifest is
// written on EOF. It is the pipeline's dataset sink.
func WriteGroups(ctx context.Context, in *GroupStream, store BlobStore, name string, opts WriterOptions) (*Manifest, error) {
	if opts.RefSeqs == nil {
		opts.RefSeqs = in.Meta.RefSeqs
	}
	if opts.SortedBy == "" {
		opts.SortedBy = in.Meta.SortedBy
	}
	var w *Writer
	fields := make([][]byte, len(in.Meta.Columns))
	writeGroup := func(g *RowGroup) error {
		if len(g.Chunks) != len(fields) {
			return fmt.Errorf("agd: group %d has %d columns, stream declares %d", g.Index, len(g.Chunks), len(fields))
		}
		n := g.NumRecords()
		for r := 0; r < n; r++ {
			for c, chunk := range g.Chunks {
				f, err := chunk.Record(r)
				if err != nil {
					return err
				}
				fields[c] = f
			}
			if err := w.AppendStored(fields...); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		g, err := in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if w == nil {
			if opts.ChunkSize <= 0 {
				opts.ChunkSize = in.Meta.ChunkSize
			}
			if opts.ChunkSize <= 0 {
				opts.ChunkSize = g.NumRecords()
			}
			if w, err = NewWriter(store, name, SpecsForColumns(in.Meta.Columns), opts); err != nil {
				g.Release()
				return nil, err
			}
		}
		err = writeGroup(g)
		g.Release()
		if err != nil {
			return nil, err
		}
	}
	if w == nil {
		return nil, fmt.Errorf("agd: stream for dataset %q has no records", name)
	}
	return w.Close()
}
