package agd

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"

	"persona/internal/dataflow"
)

// Version-2 data block layout (all integers little-endian):
//
//	offset            size  field
//	0                 4     member count N
//	4                 4*N   compressed size of each member
//	4+4*N             4*N   uncompressed size of each member
//	4+8*N             ...   N concatenated gzip members
//
// Members are independent gzip streams covering consecutive ranges of the
// uncompressed data block, so they compress and decompress concurrently —
// the bgzf trick applied to AGD chunks. The concatenation is itself a valid
// multi-member gzip stream, so external tools can still `zcat` the block.
// The header's data-size field covers the whole section including the
// member table; the CRC still covers the full uncompressed data.

const (
	// minMemberSize is the smallest data span worth a dedicated gzip
	// member: below this the per-member overhead (stream header, flush,
	// dispatch) outweighs the parallelism.
	minMemberSize = 8 << 10
	// maxChunkMembers bounds the member count accepted at decode so a
	// corrupt table cannot drive huge allocations.
	maxChunkMembers = 1 << 12
)

// codecExec is the package-default executor for parallel chunk compression,
// started lazily on first use with one worker per CPU.
var (
	codecExecOnce sync.Once
	codecExec     *dataflow.Executor
)

func defaultCodecExec() *dataflow.Executor {
	codecExecOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		codecExec = dataflow.NewExecutor(n, 2*n)
	})
	return codecExec
}

// Codec bundles the policy knobs of chunk encoding and decoding. The zero
// value is the package default used by EncodeChunk/DecodeChunk: gzip blocks
// large enough to split are written as version-2 multi-member chunks and
// (de)compressed in parallel on a shared per-process executor.
type Codec struct {
	// Exec runs member compression tasks. Nil selects the package-default
	// executor (one worker per CPU). Pipelines pass their own shared
	// executor so compression competes with alignment for the same
	// fine-grain compute threads (Fig. 4) instead of oversubscribing.
	Exec *dataflow.Executor
	// Members forces the version-2 layout with exactly this many gzip
	// members (clamped to the data size). Zero picks automatically: the
	// version-1 single-run layout for small blocks, multi-member for
	// blocks of at least 2*minMemberSize. Members only applies to
	// CompressGzip; uncompressed chunks always use version 1.
	Members int
	// NoChecksum omits the trailing whole-blob CRC32-C footer on encode.
	// Decoding always accepts both layouts (and always verifies a footer
	// when present); the knob exists for byte-stable comparisons against
	// blobs written by earlier releases.
	NoChecksum bool
	// shard+1, when non-zero, is the executor shard member tasks are
	// submitted to (WithShard): the shard that decoded a chunk re-encodes
	// it with warm caches, and idle shards steal the surplus members.
	shard int
}

// WithShard returns the codec with member tasks pinned (advisorily) to the
// given executor shard. Pipelines derive the shard from the chunk index so
// one chunk's decode, align and compress tasks land on the same worker.
func (cd Codec) WithShard(shard int) Codec {
	cd.shard = shard + 1
	return cd
}

// exec returns the executor to run member tasks on.
func (cd Codec) exec() *dataflow.Executor {
	if cd.Exec != nil {
		return cd.Exec
	}
	return defaultCodecExec()
}

// memberCount picks how many gzip members to write for n data bytes.
func (cd Codec) memberCount(n int) int {
	if cd.Members > 0 {
		m := cd.Members
		if m > n { // never emit empty members
			m = n
		}
		if m > maxChunkMembers { // the decoder rejects larger tables
			m = maxChunkMembers
		}
		if m < 1 {
			m = 1
		}
		return m
	}
	m := n / minMemberSize
	if m <= 1 {
		// Too small to split — answer before touching cd.exec() so tiny
		// encodes never spin up the package-default executor.
		return 1
	}
	if w := cd.exec().Workers(); m > w {
		m = w
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Encode serializes a chunk, choosing the layout per the codec policy.
func (cd Codec) Encode(c *Chunk, comp Compression) ([]byte, error) {
	return cd.EncodeAppend(nil, c, comp)
}

// EncodeAppend is Encode appending to dst. Unless the codec opts out, the
// blob gains a trailing CRC32-C footer over its raw bytes, so storage
// corruption anywhere in the blob is detected before decode.
func (cd Codec) EncodeAppend(dst []byte, c *Chunk, comp Compression) ([]byte, error) {
	base := len(dst)
	var err error
	if comp != CompressGzip {
		dst, err = encodeChunkV1Append(dst, c, comp)
	} else if members := cd.memberCount(len(c.Data)); members == 1 && cd.Members == 0 {
		// Small block: keep the single-run legacy layout.
		dst, err = encodeChunkV1Append(dst, c, comp)
	} else {
		dst, err = cd.encodeV2Append(dst, c, members)
	}
	if err != nil {
		return nil, err
	}
	if !cd.NoChecksum {
		dst = appendChunkFooter(dst, base)
	}
	return dst, nil
}

// memberScratchPool recycles per-member compression buffers.
var memberScratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, minMemberSize)
		return &b
	},
}

// encodeV2Append writes the version-2 multi-member layout, compressing the
// members concurrently on the codec's executor.
func (cd Codec) encodeV2Append(dst []byte, c *Chunk, members int) ([]byte, error) {
	data := c.Data
	base := len(dst)
	dst = ensureCap(dst, chunkHeaderSize+3*len(c.lengths)+8*members+len(data)+len(data)/128+64)
	dst = encodeChunkHeader(dst, c, chunkVersionParallel, CompressGzip)
	idxStart := len(dst)
	dst = appendChunkIndex(dst, c)
	idxLen := len(dst) - idxStart
	crc := crc32.ChecksumIEEE(data)

	// Split into near-equal member payloads.
	bounds := make([]int, members+1)
	for i := 1; i < members; i++ {
		bounds[i] = i * len(data) / members
	}
	bounds[members] = len(data)

	comps := make([]*[]byte, members)
	errs := make([]error, members)
	run := func(i int) {
		buf := memberScratchPool.Get().(*[]byte)
		out, err := gzipAppend((*buf)[:0], data[bounds[i]:bounds[i+1]])
		*buf = out
		comps[i], errs[i] = buf, err
	}
	if members == 1 {
		run(0)
	} else if err := cd.submitMembers(members, run); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Member table, then the concatenated members.
	dataStart := len(dst)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(members))
	dst = append(dst, u32[:]...)
	for _, cb := range comps {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(*cb)))
		dst = append(dst, u32[:]...)
	}
	for i := range comps {
		binary.LittleEndian.PutUint32(u32[:], uint32(bounds[i+1]-bounds[i]))
		dst = append(dst, u32[:]...)
	}
	for _, cb := range comps {
		dst = append(dst, *cb...)
		memberScratchPool.Put(cb)
	}
	patchChunkHeader(dst[base:], idxLen, len(dst)-dataStart, crc)
	return dst, nil
}

// Decode parses a chunk blob of either layout version into a fresh chunk.
func (cd Codec) Decode(blob []byte) (*Chunk, error) {
	c := new(Chunk)
	if err := cd.decodeInto(c, blob, false); err != nil {
		return nil, err
	}
	return c, nil
}

// DecodeInto decodes blob into c, reusing its backing arrays and always
// copying data so the chunk owns its memory (required for pooling).
func (cd Codec) DecodeInto(c *Chunk, blob []byte) error {
	return cd.decodeInto(c, blob, true)
}

func (cd Codec) decodeInto(c *Chunk, blob []byte, copyRaw bool) error {
	h, err := parseChunkHeader(blob)
	if err != nil {
		return err
	}
	indexBlock := blob[chunkHeaderSize : chunkHeaderSize+h.indexSize]
	// The data block ends where the header says; a verified CRC32-C footer
	// may follow it (parseChunkHeader checked the exact length either way).
	dataBlock := blob[chunkHeaderSize+h.indexSize : chunkHeaderSize+h.indexSize+h.dataSize]

	lengths, total, err := decodeChunkIndex(c.lengths, indexBlock, h.records)
	if err != nil {
		return err
	}
	c.lengths = lengths
	// A corrupt index can claim an absurd uncompressed size; reject it
	// before allocating. Deflate expands at most ~1032:1, so any honest
	// total is bounded by the stored data block size.
	const maxDeflateRatio = 1032
	if total > uint64(len(dataBlock))*maxDeflateRatio {
		return fmt.Errorf("%w: index sums to %d bytes from a %d-byte data block", ErrCorrupt, total, len(dataBlock))
	}

	var data []byte
	switch {
	case h.comp == CompressNone && h.version == chunkVersion:
		if uint64(len(dataBlock)) != total {
			return fmt.Errorf("%w: data block is %d bytes, index sums to %d", ErrCorrupt, len(dataBlock), total)
		}
		if copyRaw {
			data = growBytes(c.Data, int(total))
			copy(data, dataBlock)
		} else {
			data = dataBlock
		}
	case h.comp == CompressGzip && h.version == chunkVersion:
		data = growBytes(c.Data, int(total))
		if err := gunzipExact(data, dataBlock); err != nil {
			return err
		}
	case h.comp == CompressGzip && h.version == chunkVersionParallel:
		data = growBytes(c.Data, int(total))
		if err := cd.decodeMembers(data, dataBlock); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: unknown compression %d (version %d)", ErrCorrupt, h.comp, h.version)
	}

	if crc32.ChecksumIEEE(data) != h.crc {
		return fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	c.Type = h.typ
	c.FirstOrdinal = h.firstOrdinal
	c.Data = data
	c.offsets = c.offsets[:0]
	c.offsetsOnce = sync.Once{}
	return nil
}

// decodeMembers validates a version-2 member table and inflates the members
// concurrently into dst, which must be exactly the total uncompressed size.
func (cd Codec) decodeMembers(dst []byte, dataBlock []byte) error {
	if len(dataBlock) < 4 {
		return fmt.Errorf("%w: truncated member table", ErrCorrupt)
	}
	members := int(binary.LittleEndian.Uint32(dataBlock[0:4]))
	if members < 1 || members > maxChunkMembers {
		return fmt.Errorf("%w: bad member count %d", ErrCorrupt, members)
	}
	tableSize := 4 + 8*members
	if len(dataBlock) < tableSize {
		return fmt.Errorf("%w: truncated member table", ErrCorrupt)
	}
	compOff := make([]int, members+1)
	uncompOff := make([]int, members+1)
	for i := 0; i < members; i++ {
		compOff[i+1] = compOff[i] + int(binary.LittleEndian.Uint32(dataBlock[4+4*i:]))
		uncompOff[i+1] = uncompOff[i] + int(binary.LittleEndian.Uint32(dataBlock[4+4*members+4*i:]))
		if compOff[i+1] < compOff[i] || uncompOff[i+1] < uncompOff[i] {
			return fmt.Errorf("%w: member size overflow", ErrCorrupt)
		}
	}
	body := dataBlock[tableSize:]
	if compOff[members] != len(body) {
		return fmt.Errorf("%w: member sizes sum to %d, body is %d bytes", ErrCorrupt, compOff[members], len(body))
	}
	if uncompOff[members] != len(dst) {
		return fmt.Errorf("%w: member data is %d bytes, index sums to %d", ErrCorrupt, uncompOff[members], len(dst))
	}

	errs := make([]error, members)
	run := func(i int) {
		errs[i] = gunzipExact(dst[uncompOff[i]:uncompOff[i+1]], body[compOff[i]:compOff[i+1]])
	}
	if members == 1 {
		run(0)
	} else if err := cd.submitMembers(members, run); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// submitMembers runs the member tasks on the codec's executor, pinned to the
// codec's shard when WithShard set one.
func (cd Codec) submitMembers(members int, run func(i int)) error {
	if cd.shard > 0 {
		return cd.exec().SubmitWaitTo(context.Background(), cd.shard-1, members, func(i int) dataflow.ShardTask {
			return func(int) { run(i) }
		})
	}
	return cd.exec().SubmitWait(context.Background(), members, func(i int) dataflow.Task {
		return func() { run(i) }
	})
}
