// Package agd implements the Aggregate Genomic Data format (§3 of the
// paper): an extensible, indexed column store for genomic data.
//
// An AGD dataset is a relational table of records. Fields are stored by
// column; columns are divided into large-granularity chunks that live in
// separate blobs ("files"). A JSON manifest describes the columns, chunks
// and record counts, plus reference-genome metadata. Chunk blobs carry a
// fixed header, a relative index (per-record lengths, from which absolute
// offsets are computed by summation — or materialized on the fly for random
// access), and a compressed data block.
//
// Two size optimizations from the paper are implemented: per-column block
// compression (gzip; the compression byte in the header leaves room for
// other codecs) and base compaction, which packs base letters 3 bits each,
// 21 bases to a 64-bit word.
//
// The standard columns are "bases", "qual", "metadata" and (after
// alignment) "results"; new columns can be added freely — they are just new
// blobs plus manifest entries (§3: "AGD is extensible").
package agd

import (
	"errors"
	"fmt"
)

// Standard column names used by Persona.
const (
	ColBases    = "bases"
	ColQual     = "qual"
	ColMetadata = "metadata"
	ColResults  = "results"
)

// RecordType tells applications how to parse the records of a chunk (§3:
// "AGD specifies the record type in the chunk header").
type RecordType uint8

const (
	// TypeRaw records are opaque byte strings (qualities, metadata).
	TypeRaw RecordType = iota
	// TypeCompactBases records are 3-bit packed base strings.
	TypeCompactBases
	// TypeResults records are encoded alignment Results.
	TypeResults
)

func (t RecordType) String() string {
	switch t {
	case TypeRaw:
		return "raw"
	case TypeCompactBases:
		return "bases"
	case TypeResults:
		return "results"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Compression identifies the block compression applied to a chunk's data
// block. It is selectable column-by-column (§3).
type Compression uint8

const (
	// CompressNone stores the data block raw.
	CompressNone Compression = iota
	// CompressGzip applies stdlib gzip; the paper's deployment choice.
	CompressGzip
)

func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressGzip:
		return "gzip"
	default:
		return fmt.Sprintf("Compression(%d)", uint8(c))
	}
}

// DefaultChunkSize is the number of records per chunk used throughout the
// paper's evaluation (§5.2).
const DefaultChunkSize = 100_000

// Errors shared across the package.
var (
	ErrBadMagic = errors.New("agd: bad chunk magic")
	ErrCorrupt  = errors.New("agd: corrupt chunk")
	// ErrChecksum reports a chunk blob whose CRC32-C footer does not match
	// the stored bytes: the blob was corrupted in (or under) the store. It
	// wraps ErrCorrupt, so errors.Is(err, ErrCorrupt) still classifies it;
	// resilience layers treat it as permanent — a retry re-reads the same
	// corrupt replica, so the right response is to fail with coordinates,
	// never to decode garbage.
	ErrChecksum   = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	ErrNoColumn   = errors.New("agd: no such column")
	ErrNoChunk    = errors.New("agd: no such chunk")
	ErrRowGroup   = errors.New("agd: column chunking misaligned (not row-grouped)")
	ErrNotFound   = errors.New("agd: blob not found")
	ErrOutOfRange = errors.New("agd: record index out of range")
)

// BlobStore abstracts the storage system a dataset lives in. Local
// filesystems and the Ceph-like object store both implement it; the AGD API
// simply layers on top (§7: "The AGD API ... can simply be layered on top of
// different storage or file systems").
type BlobStore interface {
	// Put stores data under name, replacing any previous blob.
	Put(name string, data []byte) error
	// Get retrieves the blob stored under name, or ErrNotFound.
	Get(name string) ([]byte, error)
	// Delete removes the blob if present.
	Delete(name string) error
	// List returns the names of blobs with the given prefix, sorted.
	List(prefix string) ([]string, error)
}
