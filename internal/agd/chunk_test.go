package agd

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildRawChunk(t *testing.T, records [][]byte) *Chunk {
	t.Helper()
	b := NewChunkBuilder(TypeRaw, 7)
	for _, r := range records {
		b.Append(r)
	}
	return b.Chunk()
}

func TestChunkEncodeDecodeRoundTrip(t *testing.T) {
	records := [][]byte{[]byte("hello"), []byte(""), []byte("world!"), bytes.Repeat([]byte("x"), 1000)}
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		c := buildRawChunk(t, records)
		blob, err := EncodeChunk(c, comp)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		dec, err := DecodeChunk(blob)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		if dec.Type != TypeRaw || dec.FirstOrdinal != 7 || dec.NumRecords() != len(records) {
			t.Fatalf("%v: header mismatch: %+v", comp, dec)
		}
		for i, want := range records {
			got, err := dec.Record(i)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: record %d = %q, want %q", comp, i, got, want)
			}
		}
	}
}

func TestChunkRecordOutOfRange(t *testing.T) {
	c := buildRawChunk(t, [][]byte{[]byte("a")})
	if _, err := c.Record(-1); err == nil {
		t.Fatal("Record(-1) succeeded")
	}
	if _, err := c.Record(1); err == nil {
		t.Fatal("Record(1) succeeded")
	}
}

func TestChunkBasesRoundTrip(t *testing.T) {
	b := NewChunkBuilder(TypeCompactBases, 0)
	reads := [][]byte{[]byte("ACGTACGTA"), []byte("NNNNN"), []byte("GATTACA")}
	for _, r := range reads {
		b.AppendBases(r)
	}
	blob, err := EncodeChunk(b.Chunk(), CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeChunk(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range reads {
		got, err := dec.ExpandBasesRecord(nil, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
}

func TestChunkDecodeRejectsCorruption(t *testing.T) {
	c := buildRawChunk(t, [][]byte{[]byte("abc"), []byte("defg")})
	blob, err := EncodeChunk(c, CompressNone)
	if err != nil {
		t.Fatal(err)
	}

	short := blob[:10]
	if _, err := DecodeChunk(short); err == nil {
		t.Fatal("short blob accepted")
	}

	badMagic := append([]byte{}, blob...)
	badMagic[0] = 'X'
	if _, err := DecodeChunk(badMagic); err != ErrBadMagic {
		t.Fatalf("bad magic: got %v", err)
	}

	badVersion := append([]byte{}, blob...)
	badVersion[4] = 99
	if _, err := DecodeChunk(badVersion); err == nil {
		t.Fatal("bad version accepted")
	}

	truncated := blob[:len(blob)-1]
	if _, err := DecodeChunk(truncated); err == nil {
		t.Fatal("truncated blob accepted")
	}

	flipped := append([]byte{}, blob...)
	flipped[len(flipped)-1] ^= 0xff // corrupt data block → CRC mismatch
	if _, err := DecodeChunk(flipped); err == nil {
		t.Fatal("corrupt data accepted")
	}
}

func TestChunkPropertyRoundTrip(t *testing.T) {
	f := func(records [][]byte) bool {
		b := NewChunkBuilder(TypeRaw, 3)
		for _, r := range records {
			b.Append(r)
		}
		blob, err := EncodeChunk(b.Chunk(), CompressGzip)
		if err != nil {
			return false
		}
		dec, err := DecodeChunk(blob)
		if err != nil || dec.NumRecords() != len(records) {
			return false
		}
		for i, want := range records {
			got, err := dec.Record(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkAbsoluteIndexFromRelative(t *testing.T) {
	// The absolute index must equal the running sum of the relative index.
	records := [][]byte{[]byte("aa"), []byte("b"), []byte(""), []byte("cccc")}
	c := buildRawChunk(t, records)
	idx := c.absIndex()
	var sum uint64
	for i, l := range c.Lengths() {
		if idx[i] != sum {
			t.Fatalf("offsets[%d] = %d, want %d", i, idx[i], sum)
		}
		sum += uint64(l)
	}
	if idx[len(records)] != sum {
		t.Fatalf("final offset %d, want %d", idx[len(records)], sum)
	}
}

func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Result{
		{},
		{Location: 12345, MateLocation: -1, TemplateLen: -200, Score: 37, MapQ: 60, Flags: FlagPaired | FlagReverse, Cigar: "101M"},
		{Location: UnmappedLocation, Flags: FlagUnmapped},
		{Location: 1 << 40, MateLocation: 1<<40 + 300, TemplateLen: 400, Score: -12, MapQ: 3, Flags: FlagDuplicate, Cigar: "50M1I50M"},
	}
	for i, r := range cases {
		enc := EncodeResult(nil, &r)
		dec, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if dec != r {
			t.Fatalf("case %d: got %+v, want %+v", i, dec, r)
		}
	}
}

func TestResultDecodeCorrupt(t *testing.T) {
	r := Result{Location: 5, Cigar: "10M"}
	enc := EncodeResult(nil, &r)
	if _, err := DecodeResult(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated result accepted")
	}
	if _, err := DecodeResult(nil); err == nil {
		t.Fatal("empty result accepted")
	}
}

func TestResultFlags(t *testing.T) {
	r := Result{Location: -1, Flags: FlagUnmapped}
	if !r.IsUnmapped() {
		t.Fatal("IsUnmapped false for unmapped")
	}
	r2 := Result{Location: 10, Flags: FlagReverse | FlagDuplicate}
	if r2.IsUnmapped() || !r2.IsReverse() || !r2.IsDuplicate() {
		t.Fatal("flag accessors wrong")
	}
}
