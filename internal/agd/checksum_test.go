package agd

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestChunkFooterRoundTrip: every (layout, compression) combination encodes
// with a footer by default and decodes back identically.
func TestChunkFooterRoundTrip(t *testing.T) {
	records := [][]byte{[]byte("hello"), []byte(""), bytes.Repeat([]byte("acgt"), 8<<10)}
	cases := []struct {
		name string
		cd   Codec
		comp Compression
	}{
		{"v1-raw", Codec{}, CompressNone},
		{"v1-gzip", Codec{Members: 1}, CompressGzip},
		{"v2-gzip", Codec{Members: 3}, CompressGzip},
	}
	for _, tc := range cases {
		c := buildRawChunk(t, records)
		blob, err := tc.cd.Encode(c, tc.comp)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(blob[len(blob)-chunkFooterSize:len(blob)-4]) != chunkFooterMagic {
			t.Fatalf("%s: no footer magic at blob tail", tc.name)
		}
		dec, err := tc.cd.Decode(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if dec.NumRecords() != len(records) || !bytes.Equal(dec.Data, c.Data) {
			t.Fatalf("%s: round trip changed the chunk", tc.name)
		}
	}
}

// TestChunkFooterBackwardCompat: blobs written without a footer (earlier
// releases, Codec.NoChecksum) still decode, and are exactly footer-sized
// smaller.
func TestChunkFooterBackwardCompat(t *testing.T) {
	c := buildRawChunk(t, [][]byte{[]byte("abc"), []byte("defg")})
	legacy, err := Codec{NoChecksum: true}.Encode(c, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Codec{}.Encode(c, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	if len(checked) != len(legacy)+chunkFooterSize {
		t.Fatalf("footer overhead = %d bytes, want %d", len(checked)-len(legacy), chunkFooterSize)
	}
	if !bytes.Equal(checked[:len(legacy)], legacy) {
		t.Fatal("footer changed the blob body")
	}
	dec, err := DecodeChunk(legacy)
	if err != nil {
		t.Fatalf("legacy unchecksummed blob rejected: %v", err)
	}
	if !bytes.Equal(dec.Data, c.Data) {
		t.Fatal("legacy decode changed the data")
	}
}

// TestChunkFooterDetectsCorruption: a bit flip anywhere in a checksummed
// blob must yield a classified permanent error (ErrChecksum / ErrCorrupt /
// ErrBadMagic) — never a successful decode of wrong bytes.
func TestChunkFooterDetectsCorruption(t *testing.T) {
	b := NewChunkBuilder(TypeRaw, 3)
	for i := 0; i < 64; i++ {
		b.Append(bytes.Repeat([]byte{byte(i)}, 33))
	}
	blob, err := EncodeChunk(b.Chunk(), CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	want := b.Chunk().Data
	for pos := 0; pos < len(blob); pos++ {
		bad := bytes.Clone(blob)
		bad[pos] ^= 0x40
		dec, err := DecodeChunk(bad)
		if err == nil {
			if !bytes.Equal(dec.Data, want) {
				t.Fatalf("flip at %d decoded WRONG data with no error", pos)
			}
			t.Fatalf("flip at %d went undetected", pos)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("flip at %d: unclassified error %v", pos, err)
		}
	}

	// A flip in the index block specifically is what the in-band data CRC
	// cannot see; the footer must catch it as a checksum error.
	bad := bytes.Clone(blob)
	bad[chunkHeaderSize] ^= 0x01
	if _, err := DecodeChunk(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("index flip: err = %v, want ErrChecksum", err)
	}
	// ErrChecksum classifies as corruption (permanent) too.
	if !errors.Is(ErrChecksum, ErrCorrupt) {
		t.Fatal("ErrChecksum does not wrap ErrCorrupt")
	}
}

// TestChunkFooterTruncation: shaving bytes off a checksummed blob is
// rejected with a classified error, including cutting exactly the footer
// plus a partial data block.
func TestChunkFooterTruncation(t *testing.T) {
	c := buildRawChunk(t, [][]byte{bytes.Repeat([]byte("x"), 4096)})
	blob, err := EncodeChunk(c, CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, chunkFooterSize - 1, chunkFooterSize + 1, len(blob) / 2} {
		truncated := blob[:len(blob)-cut]
		if _, err := DecodeChunk(truncated); err == nil {
			t.Fatalf("blob truncated by %d accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("blob truncated by %d: unclassified error %v", cut, err)
		}
	}
	// Cutting exactly the footer leaves a well-formed legacy blob — that is
	// the backward-compatibility contract, and the header's in-band data CRC
	// still guards the data block itself.
	if _, err := DecodeChunk(blob[:len(blob)-chunkFooterSize]); err != nil {
		t.Fatalf("footer-less body rejected: %v", err)
	}
}

// TestChunkFooterErrorNamesBlob: the stream layer reports checksum failures
// with the blob's dataset/chunk/column coordinates.
func TestChunkFooterErrorNamesBlob(t *testing.T) {
	store := NewMemStore()
	w, err := NewWriter(store, "ds", []ColumnSpec{{Name: ColMetadata, Type: TypeRaw}}, WriterOptions{ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the second chunk's blob in place.
	name := "ds/chunk-000001." + ColMetadata
	blob, err := store.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(blob)
	bad[chunkHeaderSize+1] ^= 0x20
	if err := store.Put(name, bad); err != nil {
		t.Fatal(err)
	}

	ds, err := Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ds.ReadChunk(ColMetadata, 1)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte(name)) {
		t.Fatalf("error %q does not name blob %q", err, name)
	}
}
