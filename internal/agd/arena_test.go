package agd

import (
	"bytes"
	"fmt"
	"testing"
)

func TestRecordArenaAppendAndRecord(t *testing.T) {
	var a RecordArena // zero value must be usable
	recs := [][]byte{[]byte("alpha"), {}, []byte("b"), []byte("gamma-gamma")}
	for _, r := range recs {
		a.Append(r)
	}
	if a.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(recs))
	}
	want := 0
	for i, r := range recs {
		if got := a.Record(i); !bytes.Equal(got, r) {
			t.Fatalf("record %d = %q, want %q", i, got, r)
		}
		want += len(r)
	}
	if a.DataLen() != want {
		t.Fatalf("DataLen = %d, want %d", a.DataLen(), want)
	}
}

func TestRecordArenaGrow(t *testing.T) {
	// Start tiny and append far past the initial capacity; every record must
	// survive the grow-by-doubling relocations.
	a := NewRecordArena(8, 2)
	const n = 10_000
	for i := 0; i < n; i++ {
		a.Append([]byte(fmt.Sprintf("record-%05d", i)))
	}
	if a.Len() != n {
		t.Fatalf("Len = %d", a.Len())
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		if got, want := string(a.Record(i)), fmt.Sprintf("record-%05d", i); got != want {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
}

func TestRecordArenaAliasSafetyUnderAppend(t *testing.T) {
	// Appending a record that aliases the arena's own buffer must stay
	// correct even when the append reallocates the backing array mid-copy.
	var a RecordArena
	a.Append(bytes.Repeat([]byte("x"), 3))
	for i := 0; i < 2000; i++ {
		// Re-append the previous record (an alias into a.data).
		a.Append(a.Record(a.Len() - 1))
	}
	for i := 0; i < a.Len(); i++ {
		if got := a.Record(i); !bytes.Equal(got, []byte("xxx")) {
			t.Fatalf("record %d corrupted: %q", i, got)
		}
	}
}

func TestRecordArenaReset(t *testing.T) {
	a := NewRecordArena(64, 4)
	a.Append([]byte("one"))
	a.Append([]byte("two"))
	dataCap, offsCap := cap(a.data), cap(a.offs)
	a.Reset()
	if a.Len() != 0 || a.DataLen() != 0 {
		t.Fatalf("after Reset: Len=%d DataLen=%d", a.Len(), a.DataLen())
	}
	a.Append([]byte("three"))
	if got := a.Record(0); !bytes.Equal(got, []byte("three")) {
		t.Fatalf("record after reset = %q", got)
	}
	if cap(a.data) != dataCap || cap(a.offs) != offsCap {
		t.Fatalf("Reset dropped backing arrays (data %d→%d, offs %d→%d)",
			dataCap, cap(a.data), offsCap, cap(a.offs))
	}
}

func TestRecordArenaBufCommit(t *testing.T) {
	var a RecordArena
	r := Result{Location: 42, MateLocation: -1, MapQ: 60, Flags: FlagReverse, Cigar: "10M"}
	a.Commit(EncodeResult(a.Buf(), &r))
	a.AppendResult(&r)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < 2; i++ {
		got, err := DecodeResult(a.Record(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Fatalf("record %d = %+v, want %+v", i, got, r)
		}
	}
}

func TestRecordArenaAppendChunk(t *testing.T) {
	b := NewChunkBuilder(TypeRaw, 0)
	var want [][]byte
	for i := 0; i < 37; i++ {
		rec := []byte(fmt.Sprintf("rec-%02d", i))
		if i%5 == 0 {
			rec = nil // empty records must keep their boundaries
		}
		b.Append(rec)
		want = append(want, rec)
	}
	var a RecordArena
	a.AppendChunk(b.Chunk())
	a.AppendChunk(b.Chunk()) // twice: boundaries must chain correctly
	if a.Len() != 2*len(want) {
		t.Fatalf("Len = %d, want %d", a.Len(), 2*len(want))
	}
	for i := 0; i < a.Len(); i++ {
		if got := a.Record(i); !bytes.Equal(got, want[i%len(want)]) {
			t.Fatalf("record %d = %q, want %q", i, got, want[i%len(want)])
		}
	}
}

func TestRecordArenaAppendAllocs(t *testing.T) {
	a := NewRecordArena(1<<16, 1024)
	rec := bytes.Repeat([]byte("r"), 32)
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		for i := 0; i < 1000; i++ {
			a.Append(rec)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Append allocates (%v allocs/run)", allocs)
	}
}

func TestResultViewRoundTrip(t *testing.T) {
	in := Result{
		Location: 123456, MateLocation: 654321, TemplateLen: -250, Score: 17,
		MapQ: 60, Flags: FlagPaired | FlagReverse, Cigar: "50M1I49M",
	}
	enc := EncodeResult(nil, &in)
	v, err := DecodeResultView(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Result(); got != in {
		t.Fatalf("view round trip = %+v, want %+v", got, in)
	}
	// Encoding the borrowed view must be byte-identical to EncodeResult.
	if enc2 := EncodeResultView(nil, &v); !bytes.Equal(enc, enc2) {
		t.Fatalf("EncodeResultView differs: %x vs %x", enc, enc2)
	}
	loc, err := ResultLocation(enc)
	if err != nil {
		t.Fatal(err)
	}
	if loc != in.Location {
		t.Fatalf("ResultLocation = %d, want %d", loc, in.Location)
	}
}
