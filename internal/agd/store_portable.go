//go:build !linux || (!amd64 && !arm64)

package agd

import (
	"io"
	"os"
)

// readVectored fills bufs from f starting at off — the portable fallback
// for platforms without the preadv fast path (store_linux.go): one ReadAt
// loop per buffer. Returns io.ErrUnexpectedEOF if the file ends before the
// buffers are full.
func readVectored(f *os.File, off int64, bufs [][]byte) error {
	for _, b := range bufs {
		for len(b) > 0 {
			n, err := f.ReadAt(b, off)
			b = b[n:]
			off += int64(n)
			if err == io.EOF {
				if len(b) > 0 {
					return io.ErrUnexpectedEOF
				}
				break
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
