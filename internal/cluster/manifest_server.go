// Package cluster implements Persona's distributed runtime (§5.2): a
// manifest server — "a simple message queue" handing out AGD chunk names —
// and worker nodes that each run an alignment pipeline against shared
// storage. The paper launches one TensorFlow instance per compute server;
// here each worker is an in-process node with its own executor, and the
// manifest server speaks a tiny line protocol over real TCP so that the
// coordination path is genuinely networked.
//
// The server is also the cluster's failure detector: tracked workers lease
// each chunk they are handed and heartbeat while they work. A chunk whose
// worker misses its heartbeats (dead) or blows its lease deadline
// (straggling) is re-queued and handed to the next worker that asks —
// bounded by MaxAttempts, after which the run aborts — so an alignment run
// completes on the surviving workers instead of hanging on a lost one.
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAborted reports a run the manifest server gave up on: some chunk
// failed MaxAttempts leases in a row, so re-execution is not converging.
var ErrAborted = errors.New("cluster: manifest server aborted the run")

// ServerOptions tunes the manifest server's failure detector. Zero values
// take the noted defaults.
type ServerOptions struct {
	// LeaseTimeout bounds one worker's processing of one chunk; past it the
	// chunk is a straggler and may be re-dealt (default 30s).
	LeaseTimeout time.Duration
	// BeatTimeout declares a worker dead when its last heartbeat (or any
	// other request) is older than this; its chunks may be re-dealt
	// immediately (default 5s).
	BeatTimeout time.Duration
	// MaxAttempts bounds how many times one chunk may be dealt before the
	// run aborts (default 3).
	MaxAttempts int
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	if o.BeatTimeout <= 0 {
		o.BeatTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	return o
}

// chunkLease is one chunk's dealing state.
type chunkLease struct {
	assigned bool
	done     bool
	worker   int
	deadline time.Time
	attempts int
}

// ManifestServer hands out chunk indices to workers over TCP and tracks
// their completion.
//
// Protocol (line-oriented):
//
//	C: NEXT\n             S: CHUNK <idx>\n  or  DONE\n
//	C: NEXT <worker>\n    S: CHUNK <idx>\n, WAIT\n, DONE\n or ABORT <msg>\n
//	C: ACK <worker> <idx>\n   S: OK\n
//	C: BEAT <worker>\n    S: OK\n
//	C: STATS\n            S: SERVED <n>\n
//
// Bare NEXT is the untracked legacy form: the chunk is dealt at-most-once
// and counted complete immediately (no lease, no recovery). NEXT with a
// worker id leases the chunk: the worker must ACK it when its results are
// durably written, and BEAT while working. ACK is idempotent, so a
// reassigned chunk completed twice (the straggler finished after all) is
// safe. WAIT means every remaining chunk is currently leased to a live
// worker — poll again; reassignment happens on a later NEXT once a lease
// expires.
type ManifestServer struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool
	opts   ServerOptions
	served atomic.Int64

	mu         sync.Mutex
	chunks     []chunkLease
	lastBeat   map[int]time.Time
	remaining  int
	reassigned int64
	abortMsg   string
}

// NewManifestServer starts a server dealing out chunk indices [0, numChunks)
// on a random localhost port, with default failure-detector options.
func NewManifestServer(numChunks int) (*ManifestServer, error) {
	return NewManifestServerOpts(numChunks, ServerOptions{})
}

// NewManifestServerOpts is NewManifestServer with explicit options.
func NewManifestServerOpts(numChunks int, opts ServerOptions) (*ManifestServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &ManifestServer{
		ln:        ln,
		opts:      opts.withDefaults(),
		chunks:    make([]chunkLease, numChunks),
		lastBeat:  make(map[int]time.Time),
		remaining: numChunks,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's address for clients.
func (s *ManifestServer) Addr() string { return s.ln.Addr().String() }

func (s *ManifestServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *ManifestServer) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "NEXT":
			worker := -1
			if len(fields) > 1 {
				worker, _ = strconv.Atoi(fields[1])
			}
			fmt.Fprintf(w, "%s\n", s.handleNext(worker))
		case "ACK":
			if len(fields) == 3 {
				worker, _ := strconv.Atoi(fields[1])
				idx, _ := strconv.Atoi(fields[2])
				s.handleAck(worker, idx)
				fmt.Fprintf(w, "OK\n")
			} else {
				fmt.Fprintf(w, "ERR bad ack\n")
			}
		case "BEAT":
			if len(fields) == 2 {
				worker, _ := strconv.Atoi(fields[1])
				s.touch(worker)
				fmt.Fprintf(w, "OK\n")
			} else {
				fmt.Fprintf(w, "ERR bad beat\n")
			}
		case "STATS":
			fmt.Fprintf(w, "SERVED %d\n", s.served.Load())
		default:
			fmt.Fprintf(w, "ERR unknown command\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// touch records a sign of life from a tracked worker.
func (s *ManifestServer) touch(worker int) {
	if worker < 0 {
		return
	}
	s.mu.Lock()
	s.lastBeat[worker] = time.Now()
	s.mu.Unlock()
}

// expiredLocked reports whether a leased chunk is reclaimable: its worker
// is dead (heartbeats stopped) or straggling (lease deadline passed).
func (s *ManifestServer) expiredLocked(c *chunkLease, now time.Time) bool {
	if now.After(c.deadline) {
		return true
	}
	if lb, ok := s.lastBeat[c.worker]; ok && now.Sub(lb) > s.opts.BeatTimeout {
		return true
	}
	return false
}

// handleNext deals one chunk to worker (-1 for the untracked legacy form).
func (s *ManifestServer) handleNext(worker int) string {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker >= 0 {
		s.lastBeat[worker] = now
	}
	if s.abortMsg != "" {
		return "ABORT " + s.abortMsg
	}
	if s.remaining == 0 {
		return "DONE"
	}
	deal := func(i int) string {
		c := &s.chunks[i]
		c.assigned = true
		c.worker = worker
		c.deadline = now.Add(s.opts.LeaseTimeout)
		c.attempts++
		s.served.Add(1)
		if worker < 0 {
			// Legacy untracked deal: at-most-once, counted complete now.
			c.done = true
			s.remaining--
		}
		return fmt.Sprintf("CHUNK %d", i)
	}
	// Fresh chunks first, then expired leases (dead or straggling workers).
	for i := range s.chunks {
		if c := &s.chunks[i]; !c.assigned && !c.done {
			return deal(i)
		}
	}
	for i := range s.chunks {
		c := &s.chunks[i]
		if !c.assigned || c.done || !s.expiredLocked(c, now) {
			continue
		}
		if c.attempts >= s.opts.MaxAttempts {
			s.abortMsg = fmt.Sprintf("chunk %d failed %d leases", i, c.attempts)
			return "ABORT " + s.abortMsg
		}
		s.reassigned++
		return deal(i)
	}
	// Everything left is leased to a live worker: poll again.
	return "WAIT"
}

// handleAck marks a chunk complete. Idempotent: duplicate completions (a
// straggler finishing after reassignment) are accepted silently.
func (s *ManifestServer) handleAck(worker, idx int) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker >= 0 {
		s.lastBeat[worker] = now
	}
	if idx < 0 || idx >= len(s.chunks) {
		return
	}
	if c := &s.chunks[idx]; !c.done {
		c.done = true
		s.remaining--
	}
}

// Served returns how many chunk leases have been handed out (reassignments
// included).
func (s *ManifestServer) Served() int64 { return s.served.Load() }

// Reassigned returns how many chunks were re-dealt after an expired lease.
func (s *ManifestServer) Reassigned() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reassigned
}

// AllDone reports whether every chunk has been completed.
func (s *ManifestServer) AllDone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remaining == 0 && s.abortMsg == ""
}

// Close stops the server.
func (s *ManifestServer) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.ln.Close()
		s.wg.Wait()
	}
}

// ManifestClient fetches chunk indices from a manifest server on behalf of
// one worker. Its methods are safe for concurrent use from the worker's
// fetch, completion and heartbeat goroutines — each request/response pair
// is serialized on the connection.
type ManifestClient struct {
	mu       sync.Mutex
	conn     net.Conn
	r        *bufio.Reader
	worker   int
	waitPoll time.Duration
}

// defaultWaitPoll is how often a waiting worker re-asks the server.
const defaultWaitPoll = 10 * time.Millisecond

// DialManifest connects to a manifest server as an untracked legacy client
// (bare NEXT, no leases).
func DialManifest(addr string) (*ManifestClient, error) {
	return dial(addr, -1)
}

// DialManifestWorker connects as tracked worker id (leases + heartbeats).
func DialManifestWorker(addr string, worker int) (*ManifestClient, error) {
	return dial(addr, worker)
}

func dial(addr string, worker int) (*ManifestClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &ManifestClient{
		conn:     conn,
		r:        bufio.NewReader(conn),
		worker:   worker,
		waitPoll: defaultWaitPoll,
	}, nil
}

// roundTrip sends one request line and reads one response line.
func (c *ManifestClient) roundTrip(req string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Next fetches the next chunk index; ok is false when the queue is drained.
// WAIT responses are polled through internally (see NextWait to bound the
// polling).
func (c *ManifestClient) Next() (idx int, ok bool, err error) {
	return c.NextWait(nil)
}

// NextWait is Next, aborting the internal WAIT polling (with ok=false, no
// error) when stop closes.
func (c *ManifestClient) NextWait(stop <-chan struct{}) (idx int, ok bool, err error) {
	req := "NEXT"
	if c.worker >= 0 {
		req = fmt.Sprintf("NEXT %d", c.worker)
	}
	for {
		line, err := c.roundTrip(req)
		if err != nil {
			return 0, false, err
		}
		switch {
		case line == "DONE":
			return 0, false, nil
		case line == "WAIT":
			t := time.NewTimer(c.waitPoll)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return 0, false, nil
			}
		case strings.HasPrefix(line, "CHUNK "):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "CHUNK "))
			if err != nil {
				return 0, false, fmt.Errorf("cluster: bad chunk index %q", line)
			}
			return v, true, nil
		case strings.HasPrefix(line, "ABORT"):
			return 0, false, fmt.Errorf("%w: %s", ErrAborted, strings.TrimSpace(strings.TrimPrefix(line, "ABORT")))
		default:
			return 0, false, fmt.Errorf("cluster: bad manifest response %q", line)
		}
	}
}

// Ack reports chunk idx complete (its results are durably written).
func (c *ManifestClient) Ack(idx int) error {
	if c.worker < 0 {
		return nil // untracked clients' deals complete on assignment
	}
	_, err := c.roundTrip(fmt.Sprintf("ACK %d %d", c.worker, idx))
	return err
}

// Beat sends a heartbeat keeping this worker's leases alive.
func (c *ManifestClient) Beat() error {
	if c.worker < 0 {
		return nil
	}
	_, err := c.roundTrip(fmt.Sprintf("BEAT %d", c.worker))
	return err
}

// Close closes the client connection.
func (c *ManifestClient) Close() error { return c.conn.Close() }
