// Package cluster implements Persona's distributed runtime (§5.2): a
// manifest server — "a simple message queue" handing out AGD chunk names —
// and worker nodes that each run an alignment pipeline against shared
// storage. The paper launches one TensorFlow instance per compute server;
// here each worker is an in-process node with its own executor, and the
// manifest server speaks a tiny line protocol over real TCP so that the
// coordination path is genuinely networked.
package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ManifestServer hands out chunk indices to workers over TCP.
//
// Protocol (line-oriented):
//
//	C: NEXT\n            S: CHUNK <idx>\n   or   DONE\n
//	C: STATS\n           S: SERVED <n>\n
type ManifestServer struct {
	ln     net.Listener
	next   atomic.Int64
	total  int64
	served atomic.Int64
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewManifestServer starts a server dealing out chunk indices [0, numChunks)
// on a random localhost port.
func NewManifestServer(numChunks int) (*ManifestServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &ManifestServer{ln: ln, total: int64(numChunks)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's address for clients.
func (s *ManifestServer) Addr() string { return s.ln.Addr().String() }

func (s *ManifestServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *ManifestServer) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		switch strings.TrimSpace(sc.Text()) {
		case "NEXT":
			idx := s.next.Add(1) - 1
			if idx >= s.total {
				fmt.Fprintf(w, "DONE\n")
			} else {
				s.served.Add(1)
				fmt.Fprintf(w, "CHUNK %d\n", idx)
			}
		case "STATS":
			fmt.Fprintf(w, "SERVED %d\n", s.served.Load())
		default:
			fmt.Fprintf(w, "ERR unknown command\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Served returns how many chunk names have been handed out.
func (s *ManifestServer) Served() int64 { return s.served.Load() }

// Close stops the server.
func (s *ManifestServer) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.ln.Close()
		s.wg.Wait()
	}
}

// ManifestClient fetches chunk indices from a manifest server.
type ManifestClient struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialManifest connects to a manifest server.
func DialManifest(addr string) (*ManifestClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &ManifestClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Next fetches the next chunk index; ok is false when the queue is drained.
func (c *ManifestClient) Next() (idx int, ok bool, err error) {
	if _, err := fmt.Fprintf(c.conn, "NEXT\n"); err != nil {
		return 0, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, false, err
	}
	line = strings.TrimSpace(line)
	if line == "DONE" {
		return 0, false, nil
	}
	var idxStr string
	if n, _ := fmt.Sscanf(line, "CHUNK %s", &idxStr); n != 1 {
		return 0, false, fmt.Errorf("cluster: bad manifest response %q", line)
	}
	v, err := strconv.Atoi(idxStr)
	if err != nil {
		return 0, false, fmt.Errorf("cluster: bad chunk index %q", idxStr)
	}
	return v, true, nil
}

// Close closes the client connection.
func (c *ManifestClient) Close() error { return c.conn.Close() }
