package cluster

import (
	"context"
	"sync"
	"testing"

	"persona/internal/agd"
	"persona/internal/storage"
	"persona/internal/testutil"
)

func TestManifestServerDealsEachChunkOnce(t *testing.T) {
	srv, err := NewManifestServer(100)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := DialManifest(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			for {
				idx, ok, err := client.Next()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				if seen[idx] {
					t.Errorf("chunk %d dealt twice", idx)
				}
				seen[idx] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 100 {
		t.Fatalf("dealt %d chunks, want 100", len(seen))
	}
	if srv.Served() != 100 {
		t.Fatalf("Served = %d", srv.Served())
	}
}

func TestClusterAlignEndToEnd(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 150_000, NumReads: 800, ReadLen: 80, ChunkSize: 100, Seed: 81, SkipAlign: true,
	})
	report, m, err := Align(context.Background(), store, "ds", f.Index, Config{Nodes: 3, ThreadsPerNode: 2, Subchunks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasColumn(agd.ColResults) {
		t.Fatal("results column not registered")
	}
	if report.TotalReads != 800 {
		t.Fatalf("TotalReads = %d", report.TotalReads)
	}
	if report.TotalBases != 800*80 {
		t.Fatalf("TotalBases = %d", report.TotalBases)
	}
	if report.BasesPerSec <= 0 {
		t.Fatal("no throughput measured")
	}

	// Results must decode and be mostly mapped and accurate.
	ds, err := agd.Open(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	results, err := ds.ReadAllResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 800 {
		t.Fatalf("results = %d", len(results))
	}
	mapped, correct := 0, 0
	for i, r := range results {
		if r.IsUnmapped() {
			continue
		}
		mapped++
		diff := r.Location - f.Origins[i].Pos
		if diff < 0 {
			diff = -diff
		}
		if diff <= 5 {
			correct++
		}
	}
	if frac := float64(mapped) / 800; frac < 0.95 {
		t.Fatalf("mapped fraction %.3f", frac)
	}
	if frac := float64(correct) / float64(mapped); frac < 0.9 {
		t.Fatalf("correct fraction %.3f", frac)
	}

	// All chunks must be accounted to exactly one node.
	chunkSum := 0
	for _, nr := range report.Nodes {
		chunkSum += nr.Chunks
	}
	if chunkSum != ds.NumChunks() {
		t.Fatalf("nodes processed %d chunks, dataset has %d", chunkSum, ds.NumChunks())
	}
}

func TestClusterAlignOnObjectStore(t *testing.T) {
	objStore, err := storage.NewObjectStore(storage.ObjectStoreConfig{OSDs: 7, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := testutil.Build(t, objStore, "ds", testutil.Config{
		GenomeSize: 100_000, NumReads: 300, ReadLen: 70, ChunkSize: 64, Seed: 82, SkipAlign: true,
	})
	report, _, err := Align(context.Background(), objStore, "ds", f.Index, Config{Nodes: 2, ThreadsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalReads != 300 {
		t.Fatalf("TotalReads = %d", report.TotalReads)
	}
	stats := objStore.Stats()
	if stats.ReplicatedBytesIn <= stats.BytesIn {
		t.Fatal("replication accounting missing")
	}
}

func TestClusterAlignRejectsAligned(t *testing.T) {
	store := agd.NewMemStore()
	f := testutil.Build(t, store, "ds", testutil.Config{
		GenomeSize: 60_000, NumReads: 100, ReadLen: 60, ChunkSize: 50, Seed: 83,
	})
	if _, _, err := Align(context.Background(), store, "ds", f.Index, Config{Nodes: 1}); err == nil {
		t.Fatal("re-aligning an aligned dataset succeeded")
	}
}
