package cluster

import (
	"context"
	"fmt"
	"time"

	"persona/internal/agd"
	"persona/internal/agdsort"
	"persona/internal/align/snap"
	"persona/internal/core"
	"persona/internal/dataflow"
	"persona/internal/filter"
	"persona/internal/markdup"
	"persona/internal/shuffle"
	"persona/internal/storage"
)

// The distributed fused pipeline: the whole declarative stage graph
// (Read → Align → Sort → MarkDup → Filter → output dataset) executed across
// N workers, not just the Align stage. The run is a three-phase sample
// sort coordinated by a PhaseServer:
//
//	map:     each task aligns a batch of source chunks (the sort's staging
//	         batch size, so runs are byte-identical to the single-node
//	         spill of the same batch) and spills one sorted run, acking
//	         its equi-depth key samples back (SAMPLE);
//	shuffle: the coordinator pools the samples into global key-range cuts
//	         (CUTS) and opens the held phase; each task then cuts its run
//	         at the splitters and hands every fragment to its owning
//	         partition under <tmp>/part<k>/ blob prefixes (SHUFFLE);
//	reduce:  each task merges one partition's fragments in key order —
//	         the same heap and tie rules as the in-process merge, over
//	         splitter-aligned cuts, so concatenating the partitions
//	         reproduces the single-merge row order exactly — marks
//	         duplicates (seeded from the cut halos), filters, and writes
//	         the partition's output chunks.
//
// Every task is leased, heartbeat-guarded and re-dealt on worker death or
// straggling, exactly like Align's chunks; task outputs are deterministic
// deterministically-named blobs, so re-execution is idempotent. The
// coordinator stitches the partition manifests into one ordered output
// dataset and aggregates the cluster report.

// Task phases of a distributed pipeline run.
const (
	phaseMap = iota
	phaseShuffle
	phaseReduce
	numPhases
)

// PipelinePlan declares the fused stage graph of a distributed run. The
// shape mirrors the single-node Pipeline: a dataset source, optional Align,
// a mandatory Sort (the shuffle is the sort), optional MarkDup and Filter,
// and a materialized output dataset the caller exports or keeps.
type PipelinePlan struct {
	// Dataset names the AGD input in the shared store.
	Dataset string
	// Align appends a results column using Index (and Config.Aligner)
	// before sorting. Off, the dataset must already carry results when the
	// key or a later stage needs them.
	Align bool
	Index *snap.Index
	// By is the sort key the shuffle ranges over.
	By agdsort.Key
	// MarkDup flags duplicate reads (requires By == ByLocation, like the
	// single-node pipeline after a location sort).
	MarkDup bool
	// Filter, when non-nil, keeps only matching rows.
	Filter filter.Predicate
	// OutName names the output dataset; partition k's chunks are written
	// under OutName/part<k>/ and stitched into one manifest at OutName.
	OutName string
	// ChunkSize is records per output chunk; 0 follows the input dataset.
	ChunkSize int
	// ChunksPerBatch is how many source chunks one map task stages into a
	// run — the single-node sort's staging batch (default 8), which is what
	// keeps distributed runs byte-identical to its spills.
	ChunksPerBatch int
	// TempPrefix is the namespace for runs, pieces and halos, swept after a
	// successful run. Default "cluster/<dataset>/tmp".
	TempPrefix string
}

// PipelineResult is a completed distributed pipeline run.
type PipelineResult struct {
	// Report is the cluster-level accounting (nodes, shuffle bytes, skew,
	// degradation).
	Report *Report
	// Manifest is the stitched, ordered output dataset.
	Manifest *agd.Manifest
	// Rows is the output row count; Dups and Filtered carry the marking and
	// filtering statistics aggregated across partitions.
	Rows     uint64
	Dups     markdup.Stats
	Filtered filter.Stats
}

func (p *PipelinePlan) applyDefaults() {
	if p.ChunksPerBatch <= 0 {
		p.ChunksPerBatch = 8
	}
	if p.TempPrefix == "" {
		p.TempPrefix = "cluster/" + p.Dataset + "/tmp"
	}
}

// validatePlan checks the plan against the opened input, mirroring the
// single-node Pipeline.validate rules.
func validatePlan(plan *PipelinePlan, m *agd.Manifest) error {
	if plan.OutName == "" {
		return fmt.Errorf("cluster: pipeline needs an output dataset name")
	}
	if plan.Align {
		if plan.Index == nil {
			return fmt.Errorf("cluster: pipeline %q: align needs an index", plan.Dataset)
		}
		if m.HasColumn(agd.ColResults) {
			return fmt.Errorf("cluster: dataset %q already aligned", plan.Dataset)
		}
		if !m.HasColumn(agd.ColBases) {
			return fmt.Errorf("cluster: dataset %q: align needs a %q column", plan.Dataset, agd.ColBases)
		}
	} else if needsResults(plan) && !m.HasColumn(agd.ColResults) {
		return fmt.Errorf("cluster: dataset %q has no results column (align first)", plan.Dataset)
	}
	if plan.MarkDup && plan.By != agdsort.ByLocation {
		return fmt.Errorf("cluster: pipeline %q: markdup needs a location sort", plan.Dataset)
	}
	return nil
}

func needsResults(plan *PipelinePlan) bool {
	return plan.By == agdsort.ByLocation || plan.MarkDup || plan.Filter != nil
}

// planColumns returns the stream columns a run's rows carry: the manifest
// columns, plus the results column Align appends.
func planColumns(plan *PipelinePlan, m *agd.Manifest) []string {
	cols := append([]string(nil), m.Columns...)
	if plan.Align {
		cols = append(cols, agd.ColResults)
	}
	return cols
}

// RunPipeline executes a fused pipeline across cfg.Nodes in-process workers
// against shared storage: phased task dealing over a PhaseServer, key-range
// shuffle between map and reduce, per-partition merge→markdup→filter, and a
// stitched ordered output manifest. Output rows are byte-identical to the
// single-node pipeline of the same shape for any node count. Worker death
// degrades the run (tasks re-dealt to survivors, bounded by
// MaxChunkAttempts); permanent storage errors and server aborts fail it.
// Temp blobs under plan.TempPrefix are swept on success, degraded or not.
func RunPipeline(ctx context.Context, store storage.Store, plan PipelinePlan, cfg Config) (*PipelineResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 2
	}
	if cfg.Subchunks <= 0 {
		cfg.Subchunks = 8
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 4
	}
	plan.applyDefaults()

	ds, err := agd.Open(store, plan.Dataset)
	if err != nil {
		return nil, fmt.Errorf("cluster: open dataset %q: %w", plan.Dataset, err)
	}
	m := ds.Manifest
	if err := validatePlan(&plan, m); err != nil {
		return nil, err
	}
	cols := planColumns(&plan, m)
	if agdsort.KeyColumn(cols, plan.By) < 0 {
		return nil, fmt.Errorf("cluster: dataset %q has no %s key column", plan.Dataset, plan.By)
	}
	if plan.ChunkSize <= 0 {
		plan.ChunkSize = int(m.Chunks[0].Records)
	}

	numBatches := (len(m.Chunks) + plan.ChunksPerBatch - 1) / plan.ChunksPerBatch
	parts := cfg.Nodes

	srv, err := NewPhaseServer([]int{numBatches, numBatches, parts}, []int{phaseShuffle}, ServerOptions{
		LeaseTimeout: cfg.Lease,
		BeatTimeout:  cfg.HeartbeatTimeout,
		MaxAttempts:  cfg.MaxChunkAttempts,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Cut selection: once every map task has acked its run summary, pool
	// the samples into global splitters, publish them and open the held
	// shuffle phase. A failure here poisons the run — without cuts the
	// barrier would never lift.
	go func() {
		select {
		case <-srv.PhaseDone(phaseMap):
		case <-runCtx.Done():
			return
		}
		summaries := make([]shuffle.RunSummary, 0, numBatches)
		for _, payload := range srv.Payloads(phaseMap) {
			var sum shuffle.RunSummary
			if err := shuffle.Decode(payload, &sum); err != nil {
				srv.Abort(fmt.Sprintf("bad run summary: %v", err))
				return
			}
			summaries = append(summaries, sum)
		}
		cuts, err := shuffle.SelectCuts(summaries, parts, plan.MarkDup)
		if err != nil {
			srv.Abort(err.Error())
			return
		}
		payload, err := shuffle.Encode(cuts)
		if err != nil {
			srv.Abort(err.Error())
			return
		}
		srv.SetCuts(payload)
		srv.Open(phaseShuffle)
	}()

	report := &Report{Nodes: make([]NodeReport, cfg.Nodes), Partitions: parts}
	start := time.Now()
	type outcome struct {
		node int
		rep  NodeReport
		err  error
	}
	outs := make(chan outcome, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		go func(node int) {
			rep, err := runPipelineNode(runCtx, node, srv.Addr(), store, ds, plan, cfg, cols, parts, numBatches)
			outs <- outcome{node, rep, err}
		}(n)
	}
	var fatal, firstNodeErr error
	for i := 0; i < cfg.Nodes; i++ {
		o := <-outs
		o.rep.Node = o.node
		if o.err != nil {
			o.rep.Failed = true
			o.rep.Err = o.err.Error()
			report.FailedNodes++
			if firstNodeErr == nil {
				firstNodeErr = o.err
			}
			if fatal == nil && runFatal(o.err) {
				fatal = fmt.Errorf("cluster: node %d: %w", o.node, o.err)
				cancel() // no point letting the survivors keep going
			}
		}
		report.Nodes[o.node] = o.rep
	}
	if fatal != nil {
		return nil, fatal
	}
	if report.FailedNodes == cfg.Nodes {
		return nil, fmt.Errorf("cluster: all %d nodes failed: %w", cfg.Nodes, firstNodeErr)
	}
	if !srv.AllDone() {
		return nil, fmt.Errorf("cluster: run incomplete after %d node failures: %w", report.FailedNodes, firstNodeErr)
	}
	report.Elapsed = time.Since(start)
	report.Degraded = report.FailedNodes > 0
	report.Reassigned = srv.Reassigned()

	var minE, maxE, sumE time.Duration
	for i, nr := range report.Nodes {
		report.TotalReads += nr.Reads
		report.TotalBases += nr.Bases
		if i == 0 || nr.Elapsed < minE {
			minE = nr.Elapsed
		}
		if nr.Elapsed > maxE {
			maxE = nr.Elapsed
		}
		sumE += nr.Elapsed
	}
	if mean := sumE / time.Duration(len(report.Nodes)); mean > 0 {
		report.Imbalance = float64(maxE-minE) / float64(mean)
	}

	// Shuffle accounting from the authoritative first-win task payloads
	// (node reports can double-count re-executed work).
	partRows := make([]int64, parts)
	for i, payload := range srv.Payloads(phaseShuffle) {
		var sr shuffle.ShuffleResult
		if err := shuffle.Decode(payload, &sr); err != nil {
			return nil, fmt.Errorf("cluster: shuffle result %d: %w", i, err)
		}
		report.ShuffleBytes += sr.Bytes
		for k, n := range sr.PartRows {
			partRows[k] += n
		}
	}
	report.PartitionSkew = shuffle.Skew(partRows)

	res := &PipelineResult{Report: report}
	partEntries := make([][]agd.ChunkEntry, parts)
	for k, payload := range srv.Payloads(phaseReduce) {
		var pr shuffle.PartResult
		if err := shuffle.Decode(payload, &pr); err != nil {
			return nil, fmt.Errorf("cluster: partition result %d: %w", k, err)
		}
		res.Rows += pr.Rows
		res.Dups.Reads += pr.DupReads
		res.Dups.Duplicates += pr.Duplicates
		res.Filtered.In += pr.FilterIn
		res.Filtered.Kept += pr.FilterKept
		for i, n := range pr.ChunkRecords {
			partEntries[k] = append(partEntries[k], agd.ChunkEntry{
				Path:    shuffle.PartChunkPath(plan.OutName, k, i),
				Records: n,
			})
		}
	}
	stitched, err := agd.StitchManifest(plan.OutName, agd.SpecsForColumns(cols), partEntries, m.RefSeqs, plan.By.String())
	if err != nil {
		return nil, err
	}
	if err := agd.WriteManifest(store, stitched); err != nil {
		return nil, fmt.Errorf("cluster: write manifest %q: %w", plan.OutName, err)
	}
	res.Manifest = stitched

	// Sweep the shuffle namespace: runs, pieces and halos are all under the
	// temp prefix, deterministic names included the re-executed ones, so one
	// List covers everything any attempt wrote.
	names, err := store.List(plan.TempPrefix + "/")
	if err != nil {
		return nil, fmt.Errorf("cluster: list temp %q: %w", plan.TempPrefix, err)
	}
	for _, name := range names {
		if err := store.Delete(name); err != nil {
			return nil, fmt.Errorf("cluster: sweep temp %q: %w", name, err)
		}
	}
	return res, nil
}

// runPipelineNode is one worker of a distributed pipeline run: a task loop
// over the phase server, heartbeating while it works, dying silently under
// fault injection (Config.NodeFaults with Config.FaultPhase) so the server
// re-deals its unacked tasks to the survivors.
func runPipelineNode(ctx context.Context, node int, addr string, store storage.Store, ds *agd.Dataset, plan PipelinePlan, cfg Config, cols []string, parts, numBatches int) (NodeReport, error) {
	client, err := DialManifestWorker(addr, node)
	if err != nil {
		return NodeReport{}, err
	}
	defer client.Close()

	exec := cfg.Executor
	if exec == nil {
		exec = dataflow.NewExecutor(cfg.ThreadsPerNode, cfg.ThreadsPerNode*2)
		defer exec.Close()
	}

	rep := NodeReport{Node: node}
	nodeStart := time.Now()
	defer func() { rep.Elapsed = time.Since(nodeStart) }()

	// Heartbeat loop: keeps this worker's leases alive until it returns (a
	// dead worker stops beating, which is exactly how the server finds out).
	beatStop := make(chan struct{})
	defer close(beatStop)
	beatEvery := cfg.HeartbeatTimeout / 3
	if beatEvery <= 0 {
		beatEvery = time.Second
	}
	go func() {
		t := time.NewTicker(beatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := client.Beat(); err != nil {
					return
				}
			case <-beatStop:
				return
			}
		}
	}()

	keyCol := agdsort.KeyColumn(cols, plan.By)
	var cuts *shuffle.Cuts
	var phaseTasks [numPhases]int
	for {
		phase, idx, ok, err := client.NextTask(ctx.Done())
		if err != nil {
			return rep, err
		}
		if !ok {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			return rep, nil // every phase drained: server said DONE
		}
		// Injected worker death: stop before processing, leaving the dealt
		// task unacked so its lease expires and a survivor re-runs it.
		if kill, faulty := cfg.NodeFaults[node]; faulty && phase == cfg.FaultPhase && phaseTasks[phase] >= kill {
			return rep, errNodeDeath
		}
		phaseTasks[phase]++

		var payload string
		switch phase {
		case phaseMap:
			var rows int64
			payload, rows, err = runMapTask(ctx, store, ds, &plan, cfg, exec, idx)
			rep.Reads += rows
		case phaseShuffle:
			if cuts == nil {
				tok, ok, cerr := client.Cuts(ctx.Done())
				if cerr != nil {
					return rep, cerr
				}
				if !ok {
					return rep, ctx.Err()
				}
				var c shuffle.Cuts
				if cerr := shuffle.Decode(tok, &c); cerr != nil {
					return rep, cerr
				}
				cuts = &c
			}
			var bytes int64
			payload, bytes, err = runShuffleTask(store, &plan, keyCol, cuts, idx, parts)
			rep.ShuffleBytes += bytes
		case phaseReduce:
			payload, err = runReduceTask(ctx, store, &plan, cols, keyCol, idx, numBatches)
		default:
			err = fmt.Errorf("cluster: unknown phase %d", phase)
		}
		if err != nil {
			return rep, err
		}
		if err := client.AckTask(phase, idx, payload); err != nil {
			return rep, err
		}
		rep.Chunks++
	}
}

// runMapTask stages one batch of source chunks — aligned on the fly when the
// plan says so — into one sorted run blob, and returns the run-summary
// payload (rows, key samples, max signature span).
func runMapTask(ctx context.Context, store storage.Store, ds *agd.Dataset, plan *PipelinePlan, cfg Config, exec *dataflow.Executor, b int) (string, int64, error) {
	lo := b * plan.ChunksPerBatch
	hi := lo + plan.ChunksPerBatch
	if hi > len(ds.Manifest.Chunks) {
		hi = len(ds.Manifest.Chunks)
	}
	gs, err := ds.Groups(agd.StreamOptions{
		Prefetch: cfg.Prefetch,
		Start:    lo,
		End:      hi,
		Codec:    agd.Codec{Exec: exec},
	})
	if err != nil {
		return "", 0, err
	}
	stream := gs
	defer func() { stream.Close() }()
	if plan.Align {
		out, _, err := core.AlignStream(core.AlignConfig{
			Index:     plan.Index,
			Aligner:   cfg.Aligner,
			Subchunks: cfg.Subchunks,
		}, exec, gs)
		if err != nil {
			return "", 0, err
		}
		stream = out
	}

	var mk *markdup.Marker
	var maxSpan int64
	var visit func(key uint64, keyField []byte) error
	if plan.MarkDup {
		mk = markdup.NewMarker(0)
		visit = func(_ uint64, keyField []byte) error {
			span, err := mk.Span(keyField)
			if err != nil {
				return err
			}
			if span > maxSpan {
				maxSpan = span
			}
			return nil
		}
	}
	info, err := agdsort.BuildRun(ctx, store, stream, shuffle.RunBlob(plan.TempPrefix, b), plan.By, shuffle.SampleCount, visit)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: map batch %d: %w", b, err)
	}
	sum := shuffle.RunSummary{Rows: info.Rows, MaxSpan: maxSpan}
	for _, s := range info.Samples {
		sum.Samples = append(sum.Samples, shuffle.Sample{Key: s.Key, Full: s.Full})
	}
	payload, err := shuffle.Encode(sum)
	return payload, int64(info.Rows), err
}

// runShuffleTask cuts one sorted run at the global splitters and writes each
// fragment — and, for marking pipelines, each cut's halo — to its owning
// partition's blob prefix, returning the shuffle-result payload.
func runShuffleTask(store storage.Store, plan *PipelinePlan, keyCol int, cuts *shuffle.Cuts, b, parts int) (string, int64, error) {
	runName := shuffle.RunBlob(plan.TempPrefix, b)
	blob, err := store.Get(runName)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: run %q: %w", runName, err)
	}
	run, err := agd.DecodeChunk(blob)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: run %q: %w", runName, err)
	}
	bounds := make([]int, 0, parts+1)
	bounds = append(bounds, 0)
	bounds = append(bounds, shuffle.CutPoints(run, keyCol, plan.By, cuts.Splitters)...)
	bounds = append(bounds, run.NumRecords())

	res := shuffle.ShuffleResult{PartRows: make([]int64, parts)}
	put := func(name string, c *agd.Chunk) error {
		enc, err := agd.EncodeChunk(c, agd.CompressNone)
		if err != nil {
			return err
		}
		if err := store.Put(name, enc); err != nil {
			return fmt.Errorf("cluster: piece %q: %w", name, err)
		}
		res.Bytes += int64(len(enc))
		return nil
	}
	for k := 0; k < parts; k++ {
		piece, err := shuffle.BuildPiece(run, bounds[k], bounds[k+1])
		if err != nil {
			return "", 0, err
		}
		if err := put(shuffle.PieceBlob(plan.TempPrefix, k, b), piece); err != nil {
			return "", 0, err
		}
		res.PartRows[k] = int64(bounds[k+1] - bounds[k])
	}
	if plan.MarkDup {
		for k := 1; k < parts; k++ {
			lo, hi := shuffle.HaloRange(run, keyCol, plan.By, cuts.Splitters[k-1], cuts.Halo)
			halo, err := shuffle.BuildHalo(run, keyCol, lo, hi)
			if err != nil {
				return "", 0, err
			}
			if err := put(shuffle.HaloBlob(plan.TempPrefix, k, b), halo); err != nil {
				return "", 0, err
			}
		}
	}
	payload, err := shuffle.Encode(res)
	return payload, res.Bytes, err
}

// runReduceTask merges one partition's shuffled fragments in global key
// order, marks duplicates (seeded from the partition's halos), filters, and
// writes the partition's output chunks, returning the partition-result
// payload the coordinator stitches from.
func runReduceTask(ctx context.Context, store storage.Store, plan *PipelinePlan, cols []string, keyCol, k, numBatches int) (string, error) {
	as := agd.AsyncOf(store)
	names := make([]string, numBatches)
	for b := range names {
		names[b] = shuffle.PieceBlob(plan.TempPrefix, k, b)
	}
	futs := as.GetBatch(names)
	pieces := make([]*agd.Chunk, numBatches)
	for b, fut := range futs {
		blob, err := fut.Wait(ctx)
		if err != nil {
			return "", fmt.Errorf("cluster: piece %q: %w", names[b], err)
		}
		if pieces[b], err = agd.DecodeChunk(blob); err != nil {
			return "", fmt.Errorf("cluster: piece %q: %w", names[b], err)
		}
	}

	var mk *markdup.Marker
	if plan.MarkDup {
		mk = markdup.NewMarker(0)
		if k > 0 {
			haloNames := make([]string, numBatches)
			for b := range haloNames {
				haloNames[b] = shuffle.HaloBlob(plan.TempPrefix, k, b)
			}
			for b, fut := range as.GetBatch(haloNames) {
				blob, err := fut.Wait(ctx)
				if err != nil {
					return "", fmt.Errorf("cluster: halo %q: %w", haloNames[b], err)
				}
				halo, err := agd.DecodeChunk(blob)
				if err != nil {
					return "", fmt.Errorf("cluster: halo %q: %w", haloNames[b], err)
				}
				for r := 0; r < halo.NumRecords(); r++ {
					rec, err := halo.Record(r)
					if err != nil {
						return "", err
					}
					if err := mk.Observe(rec); err != nil {
						return "", err
					}
				}
			}
		}
	}

	merger, err := agdsort.NewRunMerger(pieces, len(cols), keyCol, plan.By, nil)
	if err != nil {
		return "", err
	}
	resCol := -1
	for i, c := range cols {
		if c == agd.ColResults {
			resCol = i
		}
	}
	specs := agd.SpecsForColumns(cols)
	builders := make([]*agd.ChunkBuilder, len(cols))
	for i, sp := range specs {
		builders[i] = agd.NewChunkBuilder(sp.Type, 0)
	}

	var pr shuffle.PartResult
	var ord uint64 // partition-local; the stitch renumbers globally
	flush := func() error {
		n := builders[0].NumRecords()
		if n == 0 {
			return nil
		}
		entry := agd.ChunkEntry{
			Path:    shuffle.PartChunkPath(plan.OutName, k, len(pr.ChunkRecords)),
			First:   ord,
			Records: uint32(n),
		}
		for c := range builders {
			enc, err := agd.EncodeChunk(builders[c].Chunk(), specs[c].EffectiveCompression())
			if err != nil {
				return err
			}
			name := agd.ColumnBlobPath(entry, cols[c])
			if err := store.Put(name, enc); err != nil {
				return fmt.Errorf("cluster: chunk %q: %w", name, err)
			}
		}
		pr.ChunkRecords = append(pr.ChunkRecords, uint32(n))
		ord += uint64(n)
		for c, sp := range specs {
			builders[c].Reset(sp.Type, ord)
		}
		return nil
	}
	for {
		fields, ok, err := merger.Next()
		if err != nil {
			return "", err
		}
		if !ok {
			break
		}
		keep := true
		if mk != nil || plan.Filter != nil {
			v, err := agd.DecodeResultView(fields[resCol])
			if err != nil {
				return "", err
			}
			if mk != nil {
				if err := mk.MarkView(&v); err != nil {
					return "", err
				}
			}
			if plan.Filter != nil {
				pr.FilterIn++
				keep = plan.Filter(&v)
				if keep {
					pr.FilterKept++
				}
			}
			if keep {
				for c := range builders {
					if c == resCol && mk != nil {
						// Marking re-encodes every results record, exactly
						// like the single-node mark stage; a filter without
						// marking copies the stored bytes instead.
						builders[c].AppendResultView(&v)
					} else {
						builders[c].Append(fields[c])
					}
				}
			}
		} else {
			for c := range builders {
				builders[c].Append(fields[c])
			}
		}
		if keep {
			pr.Rows++
			if builders[0].NumRecords() >= plan.ChunkSize {
				if err := flush(); err != nil {
					return "", err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return "", err
	}
	if mk != nil {
		pr.DupReads = mk.Stats.Reads
		pr.Duplicates = mk.Stats.Duplicates
	}
	return shuffle.Encode(&pr)
}
