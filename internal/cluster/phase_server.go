package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// phaseState is one phase's dealing state: a task queue with the same
// lease/reassignment semantics the manifest server applies to chunks, plus
// the payload each completed task reported.
type phaseState struct {
	tasks     []chunkLease
	payloads  []string
	remaining int
	held      bool
	dealt     map[int]bool  // workers that have received >= 1 task here
	done      chan struct{} // closed when remaining reaches 0
}

// PhaseServer is the manifest server generalized to a phased run: tasks are
// grouped into strictly ordered phases (map, shuffle, reduce for the fused
// pipeline), a phase's tasks are dealt only once every earlier phase has
// completed, and a completing worker attaches a payload to its ack — which
// is how per-run key samples reach the coordinator (SAMPLE, the map acks)
// and per-partition results reach the stitcher (the reduce acks). A phase
// can be created held (SHUFFLE): its tasks are withheld until the
// coordinator calls Open, after it has computed the global cuts from the
// map payloads and published them (SetCuts / the CUTS verb).
//
// Protocol (line-oriented; payloads are single base64 tokens):
//
//	C: TASK <worker>\n                         S: TASK <phase> <idx>\n, WAIT\n, DONE\n or ABORT <msg>\n
//	C: TACK <worker> <phase> <idx> <payload>\n S: OK\n    ("-" = no payload)
//	C: CUTS <worker>\n                         S: CUTS <payload>\n or WAIT\n
//	C: BEAT <worker>\n                         S: OK\n
//
// Leases, heartbeats, straggler reassignment and the MaxAttempts abort all
// work exactly as in ManifestServer; TACK is idempotent with first-wins
// payloads, so a reassigned task completed twice reports once.
type PhaseServer struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool
	opts   ServerOptions
	served atomic.Int64

	mu         sync.Mutex
	phases     []phaseState
	lastBeat   map[int]time.Time
	reassigned int64
	abortMsg   string
	cuts       string
	cutsSet    bool
}

// NewPhaseServer starts a phase server on a random localhost port. counts
// gives each phase's task count in order; phases listed in held start
// withheld and deal nothing until Open.
func NewPhaseServer(counts []int, held []int, opts ServerOptions) (*PhaseServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &PhaseServer{
		ln:       ln,
		opts:     opts.withDefaults(),
		phases:   make([]phaseState, len(counts)),
		lastBeat: make(map[int]time.Time),
	}
	for p, n := range counts {
		s.phases[p] = phaseState{
			tasks:     make([]chunkLease, n),
			payloads:  make([]string, n),
			remaining: n,
			dealt:     make(map[int]bool),
			done:      make(chan struct{}),
		}
		if n == 0 {
			close(s.phases[p].done)
		}
	}
	for _, p := range held {
		s.phases[p].held = true
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's address for clients.
func (s *PhaseServer) Addr() string { return s.ln.Addr().String() }

func (s *PhaseServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *PhaseServer) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	// Acks carry run-sample / partition-result payloads well past the
	// scanner's default token limit.
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "TASK":
			worker := -1
			if len(fields) > 1 {
				worker, _ = strconv.Atoi(fields[1])
			}
			fmt.Fprintf(w, "%s\n", s.handleTask(worker))
		case "TACK":
			if len(fields) == 5 {
				worker, _ := strconv.Atoi(fields[1])
				phase, _ := strconv.Atoi(fields[2])
				idx, _ := strconv.Atoi(fields[3])
				payload := fields[4]
				if payload == "-" {
					payload = ""
				}
				s.handleTack(worker, phase, idx, payload)
				fmt.Fprintf(w, "OK\n")
			} else {
				fmt.Fprintf(w, "ERR bad tack\n")
			}
		case "CUTS":
			worker := -1
			if len(fields) > 1 {
				worker, _ = strconv.Atoi(fields[1])
			}
			fmt.Fprintf(w, "%s\n", s.handleCuts(worker))
		case "BEAT":
			if len(fields) == 2 {
				worker, _ := strconv.Atoi(fields[1])
				s.touch(worker)
				fmt.Fprintf(w, "OK\n")
			} else {
				fmt.Fprintf(w, "ERR bad beat\n")
			}
		default:
			fmt.Fprintf(w, "ERR unknown command\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// touch records a sign of life from a tracked worker.
func (s *PhaseServer) touch(worker int) {
	if worker < 0 {
		return
	}
	s.mu.Lock()
	s.lastBeat[worker] = time.Now()
	s.mu.Unlock()
}

// expiredLocked reports whether a leased task is reclaimable: its worker is
// dead (heartbeats stopped) or straggling (lease deadline passed).
func (s *PhaseServer) expiredLocked(c *chunkLease, now time.Time) bool {
	if now.After(c.deadline) {
		return true
	}
	if lb, ok := s.lastBeat[c.worker]; ok && now.Sub(lb) > s.opts.BeatTimeout {
		return true
	}
	return false
}

// handleTask deals one task of the lowest incomplete phase — the phase
// barrier: later phases wait until every task of the phase completes, and a
// held phase answers WAIT until the coordinator opens it.
func (s *PhaseServer) handleTask(worker int) string {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker >= 0 {
		s.lastBeat[worker] = now
	}
	if s.abortMsg != "" {
		return "ABORT " + s.abortMsg
	}
	for p := range s.phases {
		ph := &s.phases[p]
		if ph.remaining == 0 {
			continue
		}
		if ph.held {
			return "WAIT"
		}
		deal := func(i int) string {
			c := &ph.tasks[i]
			c.assigned = true
			c.worker = worker
			c.deadline = now.Add(s.opts.LeaseTimeout)
			c.attempts++
			ph.dealt[worker] = true
			s.served.Add(1)
			return fmt.Sprintf("TASK %d %d", p, i)
		}
		// Fresh tasks first — spread across the fleet: one fresh task stays
		// reserved for every live worker yet to receive any task of this
		// phase, so a fast node cannot drain a cheap phase before slower
		// peers get their share started. A reserved-for worker that dies
		// releases its reservation once its heartbeats lapse.
		fresh := 0
		for i := range ph.tasks {
			if c := &ph.tasks[i]; !c.assigned && !c.done {
				fresh++
			}
		}
		if fresh > 0 {
			reserved := 0
			if ph.dealt[worker] {
				for wkr, lb := range s.lastBeat {
					if wkr != worker && !ph.dealt[wkr] && now.Sub(lb) <= s.opts.BeatTimeout {
						reserved++
					}
				}
			}
			if fresh > reserved {
				for i := range ph.tasks {
					if c := &ph.tasks[i]; !c.assigned && !c.done {
						return deal(i)
					}
				}
			}
		}
		// Then expired leases (dead or straggling workers).
		for i := range ph.tasks {
			c := &ph.tasks[i]
			if !c.assigned || c.done || !s.expiredLocked(c, now) {
				continue
			}
			if c.attempts >= s.opts.MaxAttempts {
				s.abortMsg = fmt.Sprintf("phase %d task %d failed %d leases", p, i, c.attempts)
				return "ABORT " + s.abortMsg
			}
			s.reassigned++
			return deal(i)
		}
		// Everything left in this phase is leased to a live worker; the
		// barrier forbids dealing from later phases.
		return "WAIT"
	}
	return "DONE"
}

// handleTack marks a task complete and records its payload. Idempotent with
// first-wins payloads: a straggler finishing after reassignment changes
// nothing.
func (s *PhaseServer) handleTack(worker, phase, idx int, payload string) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker >= 0 {
		s.lastBeat[worker] = now
	}
	if phase < 0 || phase >= len(s.phases) {
		return
	}
	ph := &s.phases[phase]
	if idx < 0 || idx >= len(ph.tasks) {
		return
	}
	if c := &ph.tasks[idx]; !c.done {
		c.done = true
		ph.payloads[idx] = payload
		ph.remaining--
		if ph.remaining == 0 {
			close(ph.done)
		}
	}
}

// handleCuts serves the coordinator's published cut decision, or WAIT while
// it is still being computed.
func (s *PhaseServer) handleCuts(worker int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker >= 0 {
		s.lastBeat[worker] = time.Now()
	}
	if s.abortMsg != "" {
		return "ABORT " + s.abortMsg
	}
	if !s.cutsSet {
		return "WAIT"
	}
	return "CUTS " + s.cuts
}

// SetCuts publishes the coordinator's cut payload to workers polling CUTS.
func (s *PhaseServer) SetCuts(payload string) {
	s.mu.Lock()
	s.cuts = payload
	s.cutsSet = true
	s.mu.Unlock()
}

// Open releases a held phase for dealing.
func (s *PhaseServer) Open(phase int) {
	s.mu.Lock()
	s.phases[phase].held = false
	s.mu.Unlock()
}

// Abort poisons the run: every subsequent TASK answers ABORT, unwinding the
// workers. Used by the coordinator when cut computation fails.
func (s *PhaseServer) Abort(msg string) {
	s.mu.Lock()
	if s.abortMsg == "" {
		s.abortMsg = msg
	}
	s.mu.Unlock()
}

// PhaseDone returns a channel closed once every task of the phase has
// completed.
func (s *PhaseServer) PhaseDone(phase int) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phases[phase].done
}

// Payloads returns the payload each task of a phase reported (indexed by
// task).
func (s *PhaseServer) Payloads(phase int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.phases[phase].payloads))
	copy(out, s.phases[phase].payloads)
	return out
}

// Served returns how many task leases have been handed out (reassignments
// included).
func (s *PhaseServer) Served() int64 { return s.served.Load() }

// Reassigned returns how many tasks were re-dealt after an expired lease.
func (s *PhaseServer) Reassigned() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reassigned
}

// AllDone reports whether every task of every phase has completed.
func (s *PhaseServer) AllDone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abortMsg != "" {
		return false
	}
	for p := range s.phases {
		if s.phases[p].remaining != 0 {
			return false
		}
	}
	return true
}

// Close stops the server.
func (s *PhaseServer) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.ln.Close()
		s.wg.Wait()
	}
}

// NextTask fetches the next (phase, task) pair from a phase server,
// polling through WAIT (phase barriers, held phases) until stop closes; ok
// is false when every phase is drained or stop closed.
func (c *ManifestClient) NextTask(stop <-chan struct{}) (phase, idx int, ok bool, err error) {
	req := fmt.Sprintf("TASK %d", c.worker)
	for {
		line, err := c.roundTrip(req)
		if err != nil {
			return 0, 0, false, err
		}
		switch {
		case line == "DONE":
			return 0, 0, false, nil
		case line == "WAIT":
			t := time.NewTimer(c.waitPoll)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return 0, 0, false, nil
			}
		case strings.HasPrefix(line, "TASK "):
			var p, i int
			if _, err := fmt.Sscanf(line, "TASK %d %d", &p, &i); err != nil {
				return 0, 0, false, fmt.Errorf("cluster: bad task response %q", line)
			}
			return p, i, true, nil
		case strings.HasPrefix(line, "ABORT"):
			return 0, 0, false, fmt.Errorf("%w: %s", ErrAborted, strings.TrimSpace(strings.TrimPrefix(line, "ABORT")))
		default:
			return 0, 0, false, fmt.Errorf("cluster: bad task response %q", line)
		}
	}
}

// AckTask reports task idx of phase complete, attaching payload (a single
// token; empty for none).
func (c *ManifestClient) AckTask(phase, idx int, payload string) error {
	if payload == "" {
		payload = "-"
	}
	line, err := c.roundTrip(fmt.Sprintf("TACK %d %d %d %s", c.worker, phase, idx, payload))
	if err != nil {
		return err
	}
	if line != "OK" {
		return fmt.Errorf("cluster: bad tack response %q", line)
	}
	return nil
}

// Cuts fetches the coordinator's published cut payload, polling through
// WAIT until stop closes (ok false when it did).
func (c *ManifestClient) Cuts(stop <-chan struct{}) (payload string, ok bool, err error) {
	req := fmt.Sprintf("CUTS %d", c.worker)
	for {
		line, err := c.roundTrip(req)
		if err != nil {
			return "", false, err
		}
		switch {
		case strings.HasPrefix(line, "CUTS "):
			return strings.TrimPrefix(line, "CUTS "), true, nil
		case line == "WAIT":
			t := time.NewTimer(c.waitPoll)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return "", false, nil
			}
		case strings.HasPrefix(line, "ABORT"):
			return "", false, fmt.Errorf("%w: %s", ErrAborted, strings.TrimSpace(strings.TrimPrefix(line, "ABORT")))
		default:
			return "", false, fmt.Errorf("cluster: bad cuts response %q", line)
		}
	}
}
