package cluster

// PhaseServer protocol tests: phase barriers, held phases, payload acks,
// first-wins idempotence, fleet-spread dealing and dead-worker reassignment.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func dialPhase(t *testing.T, srv *PhaseServer, worker int) *ManifestClient {
	t.Helper()
	c, err := DialManifestWorker(srv.Addr(), worker)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestPhaseBarrier: phase 1 tasks are withheld until every phase 0 task is
// acked, and DONE follows the last ack.
func TestPhaseBarrier(t *testing.T) {
	srv, err := NewPhaseServer([]int{2, 1}, nil, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialPhase(t, srv, 0)

	for want := 0; want < 2; want++ {
		p, i, ok, err := c.NextTask(nil)
		if err != nil || !ok || p != 0 {
			t.Fatalf("task %d: phase=%d ok=%v err=%v, want phase 0", want, p, ok, err)
		}
		if err := c.AckTask(p, i, fmt.Sprintf("pay%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	p, i, ok, err := c.NextTask(nil)
	if err != nil || !ok || p != 1 || i != 0 {
		t.Fatalf("after barrier: phase=%d idx=%d ok=%v err=%v, want phase 1 task 0", p, i, ok, err)
	}
	if err := c.AckTask(1, 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := c.NextTask(nil); ok || err != nil {
		t.Fatalf("after all phases: ok=%v err=%v, want DONE", ok, err)
	}
	if !srv.AllDone() {
		t.Error("AllDone = false after draining every phase")
	}
	if got := srv.Payloads(0); got[0] != "pay0" || got[1] != "pay1" {
		t.Errorf("phase 0 payloads = %v", got)
	}
}

// TestHeldPhaseAndCuts: a held phase deals nothing until Open, and CUTS
// polls WAIT until SetCuts publishes.
func TestHeldPhaseAndCuts(t *testing.T) {
	srv, err := NewPhaseServer([]int{0, 1}, []int{1}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialPhase(t, srv, 0)

	stop := make(chan struct{})
	close(stop)
	// Held: the only incomplete phase answers WAIT, so a closed stop channel
	// makes NextTask return not-ok without error.
	if _, _, ok, err := c.NextTask(stop); ok || err != nil {
		t.Fatalf("held phase dealt a task (ok=%v err=%v)", ok, err)
	}
	if _, ok, err := c.Cuts(stop); ok || err != nil {
		t.Fatalf("unset cuts served (ok=%v err=%v)", ok, err)
	}
	srv.SetCuts("abc123")
	srv.Open(1)
	if pay, ok, err := c.Cuts(nil); err != nil || !ok || pay != "abc123" {
		t.Fatalf("cuts = %q ok=%v err=%v", pay, ok, err)
	}
	if p, _, ok, err := c.NextTask(nil); err != nil || !ok || p != 1 {
		t.Fatalf("opened phase: phase=%d ok=%v err=%v", p, ok, err)
	}
}

// TestTackFirstWins: double-acking a task keeps the first payload and
// counts the task once.
func TestTackFirstWins(t *testing.T) {
	srv, err := NewPhaseServer([]int{1}, nil, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dialPhase(t, srv, 0)
	if _, _, ok, err := c.NextTask(nil); !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if err := c.AckTask(0, 0, "first"); err != nil {
		t.Fatal(err)
	}
	if err := c.AckTask(0, 0, "second"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Payloads(0); got[0] != "first" {
		t.Errorf("payload = %q, want first-wins", got[0])
	}
	if !srv.AllDone() {
		t.Error("AllDone = false")
	}
}

// TestPhaseSpreadsFreshTasks: with two live workers, the second fresh task
// of a phase is reserved for the worker that has none yet — the first
// worker is told WAIT rather than draining the phase.
func TestPhaseSpreadsFreshTasks(t *testing.T) {
	srv, err := NewPhaseServer([]int{2}, nil, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c0 := dialPhase(t, srv, 0)
	c1 := dialPhase(t, srv, 1)

	// Both workers announce themselves (BEAT), so both are live and
	// undealt.
	if err := c0.Beat(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Beat(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := c0.NextTask(nil); !ok || err != nil {
		t.Fatalf("worker 0 first deal: ok=%v err=%v", ok, err)
	}
	// Worker 0's second request must WAIT: the last fresh task is reserved
	// for live worker 1.
	stop := make(chan struct{})
	close(stop)
	if _, _, ok, err := c0.NextTask(stop); ok || err != nil {
		t.Fatalf("worker 0 drained the reserved task (ok=%v err=%v)", ok, err)
	}
	if _, i, ok, err := c1.NextTask(nil); !ok || err != nil {
		t.Fatalf("worker 1 reserved deal: ok=%v err=%v", ok, err)
	} else if err := c1.AckTask(0, i, ""); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseDeadWorkerReassigned: a worker that takes a task and stops
// beating has its lease re-dealt to the survivor; MaxAttempts exhaustion
// aborts the run for everyone.
func TestPhaseDeadWorkerReassigned(t *testing.T) {
	srv, err := NewPhaseServer([]int{1}, nil, ServerOptions{
		LeaseTimeout: 50 * time.Millisecond,
		BeatTimeout:  50 * time.Millisecond,
		MaxAttempts:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	dead := dialPhase(t, srv, 0)
	if _, _, ok, err := dead.NextTask(nil); !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// The dead worker never acks and never beats again; the survivor polls
	// until the lease expires.
	alive := dialPhase(t, srv, 1)
	deadline := time.After(2 * time.Second)
	for {
		p, i, ok, err := alive.NextTask(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if p != 0 || i != 0 {
				t.Fatalf("reassigned task = (%d, %d)", p, i)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("lease never reassigned")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if srv.Reassigned() == 0 {
		t.Error("Reassigned = 0")
	}
	if err := alive.AckTask(0, 0, ""); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseAbort: an aborted run poisons TASK and CUTS with ErrAborted.
func TestPhaseAbort(t *testing.T) {
	srv, err := NewPhaseServer([]int{1}, nil, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.Abort("cut selection failed")
	c := dialPhase(t, srv, 0)
	if _, _, _, err := c.NextTask(nil); !errors.Is(err, ErrAborted) {
		t.Errorf("NextTask err = %v, want ErrAborted", err)
	}
	if _, _, err := c.Cuts(nil); !errors.Is(err, ErrAborted) {
		t.Errorf("Cuts err = %v, want ErrAborted", err)
	}
	if srv.AllDone() {
		t.Error("AllDone = true on an aborted run")
	}
}
