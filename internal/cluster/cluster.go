package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/dataflow"
	"persona/internal/storage"
)

// Config parameterizes a cluster alignment run.
type Config struct {
	// Nodes is the number of worker nodes (paper: up to 32).
	Nodes int
	// ThreadsPerNode sizes each node's executor (paper: 47 aligner
	// threads per 48-core server). Defaults to 2 for the test machines.
	ThreadsPerNode int
	// Subchunks is the fine-grain split of each AGD chunk fed to the
	// executor (Fig. 4). Default 8.
	Subchunks int
	// Prefetch is how many chunk fetches each worker keeps in flight
	// beyond the chunk it is aligning: the node asks the manifest server
	// ahead and issues async reads, so storage latency overlaps with
	// alignment. 0 defaults to 4.
	Prefetch int
	// Aligner tunes the SNAP algorithm.
	Aligner snap.Config
	// Executor, when non-nil, is a caller-owned (typically Session-owned)
	// shared executor all worker nodes submit to, instead of each node
	// constructing and tearing down its own — so repeated distributed runs
	// reuse warm executor state. It is never closed here. ThreadsPerNode
	// still sizes each node's aligner pool.
	Executor *dataflow.Executor
}

// NodeReport describes one worker's run.
type NodeReport struct {
	Node    int
	Chunks  int
	Reads   int64
	Bases   int64
	Elapsed time.Duration
}

// Report describes a cluster run: the §5.5 measurements.
type Report struct {
	Nodes       []NodeReport
	Elapsed     time.Duration
	TotalBases  int64
	TotalReads  int64
	BasesPerSec float64
	// Imbalance is (max node elapsed - min node elapsed) / mean: the
	// "completion-time imbalance" the paper reports as unmeasurable.
	Imbalance float64
}

// Align runs a distributed alignment of a dataset: every node pulls chunk
// indices from the manifest server, reads bases from shared storage, aligns
// them on its executor, and writes a results-column chunk back. The results
// column is registered in the manifest at the end. Cancellation and
// deadline of ctx are checked per chunk on every node.
func Align(ctx context.Context, store storage.Store, datasetName string, idx *snap.Index, cfg Config) (*Report, *agd.Manifest, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 2
	}
	if cfg.Subchunks <= 0 {
		cfg.Subchunks = 8
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 4
	}

	ds, err := agd.Open(store, datasetName)
	if err != nil {
		return nil, nil, err
	}
	m := ds.Manifest
	if m.HasColumn(agd.ColResults) {
		return nil, nil, fmt.Errorf("cluster: dataset %q already aligned", datasetName)
	}

	srv, err := NewManifestServer(len(m.Chunks))
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()

	report := &Report{Nodes: make([]NodeReport, cfg.Nodes)}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			rep, err := runNode(ctx, node, srv.Addr(), store, ds, idx, cfg)
			if err != nil {
				errs <- fmt.Errorf("cluster: node %d: %w", node, err)
				return
			}
			report.Nodes[node] = rep
		}(n)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, nil, err
	}
	report.Elapsed = time.Since(start)

	var minE, maxE, sumE time.Duration
	for i, nr := range report.Nodes {
		report.TotalBases += nr.Bases
		report.TotalReads += nr.Reads
		if i == 0 || nr.Elapsed < minE {
			minE = nr.Elapsed
		}
		if nr.Elapsed > maxE {
			maxE = nr.Elapsed
		}
		sumE += nr.Elapsed
	}
	if report.Elapsed > 0 {
		report.BasesPerSec = float64(report.TotalBases) / report.Elapsed.Seconds()
	}
	if mean := sumE / time.Duration(len(report.Nodes)); mean > 0 {
		report.Imbalance = float64(maxE-minE) / float64(mean)
	}

	updated, err := agd.RegisterColumn(store, m, agd.ColResults)
	if err != nil {
		return nil, nil, err
	}
	return report, updated, nil
}

// runNode is one worker: a small Persona graph (reader → aligner(executor)
// → writer) fed by the manifest server.
func runNode(ctx context.Context, node int, manifestAddr string, store storage.Store, ds *agd.Dataset, idx *snap.Index, cfg Config) (NodeReport, error) {
	client, err := DialManifest(manifestAddr)
	if err != nil {
		return NodeReport{}, err
	}
	defer client.Close()

	exec := cfg.Executor
	if exec == nil {
		exec = dataflow.NewExecutor(cfg.ThreadsPerNode, cfg.ThreadsPerNode*2)
		defer exec.Close()
	}

	// Per-worker aligners (one per executor thread; they share the index).
	aligners := make(chan *snap.Aligner, cfg.ThreadsPerNode)
	for i := 0; i < cfg.ThreadsPerNode; i++ {
		aligners <- snap.NewAligner(idx, cfg.Aligner)
	}

	rep := NodeReport{Node: node}
	nodeStart := time.Now()
	m := ds.Manifest

	// Prefetcher: pull chunk indices from the manifest server ahead of the
	// aligner and issue async bases-column reads, keeping up to cfg.Prefetch
	// fetches in flight beyond the chunk being aligned — the worker never
	// stalls on storage unless it outruns the window.
	type fetch struct {
		idx int
		fut *agd.Future
		err error
	}
	as := agd.AsyncOf(store)
	fetches := make(chan fetch, cfg.Prefetch)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(fetches)
		for {
			chunkIdx, ok, err := client.Next()
			if err != nil {
				select {
				case fetches <- fetch{err: err}:
				case <-done:
				}
				return
			}
			if !ok {
				return
			}
			f := fetch{idx: chunkIdx, fut: as.GetAsync(m.ChunkBlobPath(chunkIdx, agd.ColBases))}
			select {
			case fetches <- f:
			case <-done:
				return
			}
		}
	}()

	for f := range fetches {
		if f.err != nil {
			return rep, f.err
		}
		chunkIdx := f.idx
		blob, err := f.fut.Wait(ctx)
		if err != nil {
			return rep, err
		}
		basesChunk, err := agd.DecodeChunk(blob)
		if err != nil {
			return rep, fmt.Errorf("chunk %d: %w", chunkIdx, err)
		}
		n := basesChunk.NumRecords()
		if n != int(m.Chunks[chunkIdx].Records) {
			return rep, fmt.Errorf("chunk %d has %d records, manifest says %d",
				chunkIdx, n, m.Chunks[chunkIdx].Records)
		}

		// Fine-grain split: subchunk tasks into the shared executor, one
		// output slot per record (Fig. 4). The whole batch is pinned to the
		// chunk's shard — the worker that decodes the chunk pops its
		// subchunks LIFO while they are cache-hot, and idle shards steal
		// the tail of the batch.
		encoded := make([][]byte, n)
		sub := cfg.Subchunks
		if sub > n {
			sub = n
		}
		if sub == 0 {
			sub = 1
		}
		err = exec.SubmitWaitTo(ctx, chunkIdx%exec.NumShards(), sub, func(s int) dataflow.ShardTask {
			lo := s * n / sub
			hi := (s + 1) * n / sub
			return func(int) {
				a := <-aligners
				defer func() { aligners <- a }()
				var scratch []byte
				for r := lo; r < hi; r++ {
					scratch = scratch[:0]
					bases, err := basesChunk.ExpandBasesRecord(scratch, r)
					if err != nil {
						encoded[r] = agd.EncodeResult(nil, &agd.Result{
							Location: agd.UnmappedLocation, MateLocation: agd.UnmappedLocation, Flags: agd.FlagUnmapped,
						})
						continue
					}
					res := a.AlignRead(bases)
					encoded[r] = agd.EncodeResult(nil, &res)
					scratch = bases
				}
			}
		})
		if err != nil {
			return rep, err
		}
		// Count aligned bases from the compact records' length headers
		// (cheaper than re-expanding).
		var basesTotal int64
		for r := 0; r < n; r++ {
			rec, err := basesChunk.Record(r)
			if err != nil {
				return rep, err
			}
			count, n2 := uvarint(rec)
			if n2 <= 0 {
				return rep, fmt.Errorf("cluster: corrupt bases record")
			}
			basesTotal += int64(count)
		}

		builder := agd.NewChunkBuilder(agd.TypeResults, basesChunk.FirstOrdinal)
		for r := 0; r < n; r++ {
			builder.Append(encoded[r])
		}
		out, err := agd.EncodeChunk(builder.Chunk(), agd.CompressGzip)
		if err != nil {
			return rep, err
		}
		if err := store.Put(m.ChunkBlobPath(chunkIdx, agd.ColResults), out); err != nil {
			return rep, err
		}
		rep.Chunks++
		rep.Reads += int64(n)
		rep.Bases += basesTotal
	}
	rep.Elapsed = time.Since(nodeStart)
	return rep, nil
}

// uvarint decodes a uvarint without importing encoding/binary at every call
// site above.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, 0
}
