package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"persona/internal/agd"
	"persona/internal/align/snap"
	"persona/internal/dataflow"
	"persona/internal/storage"
)

// errNodeDeath is the injected worker-death fault (Config.NodeFaults): the
// node stops mid-run without acking its chunk, exactly like a crashed
// process. It is classified transient, so the run degrades instead of
// failing.
var errNodeDeath = errors.New("cluster: injected node death")

// Config parameterizes a cluster alignment run.
type Config struct {
	// Nodes is the number of worker nodes (paper: up to 32).
	Nodes int
	// ThreadsPerNode sizes each node's executor (paper: 47 aligner
	// threads per 48-core server). Defaults to 2 for the test machines.
	ThreadsPerNode int
	// Subchunks is the fine-grain split of each AGD chunk fed to the
	// executor (Fig. 4). Default 8.
	Subchunks int
	// Prefetch is how many chunk fetches each worker keeps in flight
	// beyond the chunk it is aligning: the node asks the manifest server
	// ahead and issues async reads, so storage latency overlaps with
	// alignment. 0 defaults to 4.
	Prefetch int
	// Aligner tunes the SNAP algorithm.
	Aligner snap.Config
	// Executor, when non-nil, is a caller-owned (typically Session-owned)
	// shared executor all worker nodes submit to, instead of each node
	// constructing and tearing down its own — so repeated distributed runs
	// reuse warm executor state. It is never closed here. ThreadsPerNode
	// still sizes each node's aligner pool.
	Executor *dataflow.Executor

	// Lease, HeartbeatTimeout and MaxChunkAttempts tune the manifest
	// server's failure detector (ServerOptions); zero values take the
	// server defaults. Lease bounds one worker's processing of one chunk
	// (stragglers past it are re-dealt); HeartbeatTimeout declares a
	// silent worker dead; MaxChunkAttempts bounds re-execution per chunk.
	Lease            time.Duration
	HeartbeatTimeout time.Duration
	MaxChunkAttempts int
	// NodeFaults injects worker death: node id → how many chunks it
	// completes before dying mid-run (failure injection for recovery
	// tests; the run completes on the surviving workers).
	NodeFaults map[int]int
	// FaultPhase scopes NodeFaults on a distributed pipeline run: the node
	// dies on receiving its (n+1)-th task of this phase (0 = map,
	// 1 = shuffle, 2 = reduce), which is how a chaos test kills a worker
	// deterministically mid-shuffle. Ignored by Align.
	FaultPhase int
	// SkipColumnCheck registers the results column without re-probing every
	// chunk blob. Set by callers (the client Session) that verified the
	// column on a previous run of the same dataset, so repeat jobs skip
	// one header round trip per chunk.
	SkipColumnCheck bool
}

// NodeReport describes one worker's run.
type NodeReport struct {
	Node    int
	Chunks  int
	Reads   int64
	Bases   int64
	Elapsed time.Duration
	// ShuffleBytes is what this node wrote during a distributed pipeline's
	// shuffle phase (pieces and halos; 0 on Align runs). Re-executed tasks
	// count here, so node totals can exceed the report's first-win total.
	ShuffleBytes int64
	// Failed marks a worker that died mid-run (its chunks were re-dealt
	// to the survivors); Err is its final error.
	Failed bool
	Err    string
}

// Report describes a cluster run: the §5.5 measurements.
type Report struct {
	Nodes       []NodeReport
	Elapsed     time.Duration
	TotalBases  int64
	TotalReads  int64
	BasesPerSec float64
	// Imbalance is (max node elapsed - min node elapsed) / mean: the
	// "completion-time imbalance" the paper reports as unmeasurable.
	Imbalance float64
	// Degraded marks a run that lost workers but completed anyway;
	// FailedNodes counts them and Reassigned counts the chunk leases the
	// manifest server re-dealt after worker death or straggling.
	Degraded    bool
	FailedNodes int
	Reassigned  int64
	// Distributed-pipeline runs only: ShuffleBytes is the cross-node
	// shuffle's total encoded piece+halo traffic (first-win task results),
	// Partitions the reduce fan-in, and PartitionSkew the largest
	// partition's row count over the mean (1.0 = perfectly balanced).
	ShuffleBytes  int64
	Partitions    int
	PartitionSkew float64
}

// runFatal classifies a node error as run-fatal: permanent storage errors
// (corruption, missing blobs, the caller's context ending) and a manifest
// server abort cannot be fixed by the surviving workers. Everything else is
// a node failure the run survives.
func runFatal(err error) bool {
	return storage.IsPermanent(err) || errors.Is(err, ErrAborted)
}

// Align runs a distributed alignment of a dataset: every node pulls chunk
// leases from the manifest server, reads bases from shared storage, aligns
// them on its executor, writes a results-column chunk back, and acks the
// lease. Workers heartbeat the server; a worker that dies or straggles has
// its chunks re-dealt to the survivors (bounded by MaxChunkAttempts;
// results writes are idempotent, so duplicate completion is safe) and the
// run completes degraded, with the reassignments recorded in the report.
// Permanent errors — corrupt chunks, missing blobs, ctx ending — abort the
// whole run. The results column is registered in the manifest at the end.
func Align(ctx context.Context, store storage.Store, datasetName string, idx *snap.Index, cfg Config) (*Report, *agd.Manifest, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = 2
	}
	if cfg.Subchunks <= 0 {
		cfg.Subchunks = 8
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 4
	}

	ds, err := agd.Open(store, datasetName)
	if err != nil {
		return nil, nil, err
	}
	m := ds.Manifest
	if m.HasColumn(agd.ColResults) {
		return nil, nil, fmt.Errorf("cluster: dataset %q already aligned", datasetName)
	}

	srv, err := NewManifestServerOpts(len(m.Chunks), ServerOptions{
		LeaseTimeout: cfg.Lease,
		BeatTimeout:  cfg.HeartbeatTimeout,
		MaxAttempts:  cfg.MaxChunkAttempts,
	})
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	report := &Report{Nodes: make([]NodeReport, cfg.Nodes)}
	start := time.Now()
	type outcome struct {
		node int
		rep  NodeReport
		err  error
	}
	outs := make(chan outcome, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		go func(node int) {
			rep, err := runNode(runCtx, node, srv.Addr(), store, ds, idx, cfg)
			outs <- outcome{node, rep, err}
		}(n)
	}
	var fatal, firstNodeErr error
	for i := 0; i < cfg.Nodes; i++ {
		o := <-outs
		o.rep.Node = o.node
		if o.err != nil {
			o.rep.Failed = true
			o.rep.Err = o.err.Error()
			report.FailedNodes++
			if firstNodeErr == nil {
				firstNodeErr = o.err
			}
			if fatal == nil && runFatal(o.err) {
				fatal = fmt.Errorf("cluster: node %d: %w", o.node, o.err)
				cancel() // no point letting the survivors keep going
			}
		}
		report.Nodes[o.node] = o.rep
	}
	if fatal != nil {
		return nil, nil, fatal
	}
	if report.FailedNodes == cfg.Nodes {
		return nil, nil, fmt.Errorf("cluster: all %d nodes failed: %w", cfg.Nodes, firstNodeErr)
	}
	if !srv.AllDone() {
		return nil, nil, fmt.Errorf("cluster: run incomplete after %d node failures: %w", report.FailedNodes, firstNodeErr)
	}
	report.Elapsed = time.Since(start)
	report.Degraded = report.FailedNodes > 0
	report.Reassigned = srv.Reassigned()

	var minE, maxE, sumE time.Duration
	for i, nr := range report.Nodes {
		report.TotalBases += nr.Bases
		report.TotalReads += nr.Reads
		if i == 0 || nr.Elapsed < minE {
			minE = nr.Elapsed
		}
		if nr.Elapsed > maxE {
			maxE = nr.Elapsed
		}
		sumE += nr.Elapsed
	}
	if report.Elapsed > 0 {
		report.BasesPerSec = float64(report.TotalBases) / report.Elapsed.Seconds()
	}
	if mean := sumE / time.Duration(len(report.Nodes)); mean > 0 {
		report.Imbalance = float64(maxE-minE) / float64(mean)
	}

	var updated *agd.Manifest
	if cfg.SkipColumnCheck {
		updated, err = agd.RegisterColumnUnchecked(store, m, agd.ColResults)
	} else {
		updated, err = agd.RegisterColumn(store, m, agd.ColResults)
	}
	if err != nil {
		return nil, nil, err
	}
	return report, updated, nil
}

// runNode is one worker: a small Persona graph (reader → aligner(executor)
// → writer) fed by manifest-server leases, acking each chunk after its
// results blob is durably written and heartbeating while it works.
func runNode(ctx context.Context, node int, manifestAddr string, store storage.Store, ds *agd.Dataset, idx *snap.Index, cfg Config) (NodeReport, error) {
	client, err := DialManifestWorker(manifestAddr, node)
	if err != nil {
		return NodeReport{}, err
	}
	defer client.Close()

	exec := cfg.Executor
	if exec == nil {
		exec = dataflow.NewExecutor(cfg.ThreadsPerNode, cfg.ThreadsPerNode*2)
		defer exec.Close()
	}

	// Per-worker aligners (one per executor thread; they share the index).
	aligners := make(chan *snap.Aligner, cfg.ThreadsPerNode)
	for i := 0; i < cfg.ThreadsPerNode; i++ {
		aligners <- snap.NewAligner(idx, cfg.Aligner)
	}

	rep := NodeReport{Node: node}
	nodeStart := time.Now()
	m := ds.Manifest
	defer func() { rep.Elapsed = time.Since(nodeStart) }()

	// Heartbeat loop: keeps this worker's leases alive until it returns
	// (a dead worker stops beating, which is exactly how the server finds
	// out).
	beatStop := make(chan struct{})
	defer close(beatStop)
	beatEvery := cfg.HeartbeatTimeout / 3
	if beatEvery <= 0 {
		beatEvery = time.Second
	}
	go func() {
		t := time.NewTicker(beatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := client.Beat(); err != nil {
					return
				}
			case <-beatStop:
				return
			}
		}
	}()

	// Prefetcher: pull chunk leases from the manifest server ahead of the
	// aligner and issue async bases-column reads, keeping up to cfg.Prefetch
	// fetches in flight beyond the chunk being aligned — the worker never
	// stalls on storage unless it outruns the window.
	type fetch struct {
		idx int
		fut *agd.Future
		err error
	}
	as := agd.AsyncOf(store)
	fetches := make(chan fetch, cfg.Prefetch)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(fetches)
		for {
			chunkIdx, ok, err := client.NextWait(done)
			if err != nil {
				select {
				case fetches <- fetch{err: err}:
				case <-done:
				}
				return
			}
			if !ok {
				return
			}
			f := fetch{idx: chunkIdx, fut: as.GetAsync(m.ChunkBlobPath(chunkIdx, agd.ColBases))}
			select {
			case fetches <- f:
			case <-done:
				return
			}
		}
	}()

	for {
		var f fetch
		var open bool
		select {
		case f, open = <-fetches:
			if !open {
				return rep, nil // queue drained: server said DONE
			}
		case <-ctx.Done():
			return rep, ctx.Err()
		}
		if f.err != nil {
			return rep, f.err
		}
		// Injected worker death: stop before processing (the fetched chunk
		// is never acked, so its lease expires and a survivor re-runs it).
		if kill, ok := cfg.NodeFaults[node]; ok && rep.Chunks >= kill {
			return rep, errNodeDeath
		}
		chunkIdx := f.idx
		blobName := m.ChunkBlobPath(chunkIdx, agd.ColBases)
		blob, err := f.fut.Wait(ctx)
		if err != nil {
			return rep, err
		}
		basesChunk, err := agd.DecodeChunk(blob)
		if err != nil {
			return rep, fmt.Errorf("cluster: decode chunk %q: %w", blobName, err)
		}
		n := basesChunk.NumRecords()
		if n != int(m.Chunks[chunkIdx].Records) {
			return rep, fmt.Errorf("cluster: chunk %q has %d records, manifest says %d",
				blobName, n, m.Chunks[chunkIdx].Records)
		}

		// Fine-grain split: subchunk tasks into the shared executor, one
		// output slot per record (Fig. 4). The whole batch is pinned to the
		// chunk's shard — the worker that decodes the chunk pops its
		// subchunks LIFO while they are cache-hot, and idle shards steal
		// the tail of the batch.
		encoded := make([][]byte, n)
		sub := cfg.Subchunks
		if sub > n {
			sub = n
		}
		if sub == 0 {
			sub = 1
		}
		err = exec.SubmitWaitTo(ctx, chunkIdx%exec.NumShards(), sub, func(s int) dataflow.ShardTask {
			lo := s * n / sub
			hi := (s + 1) * n / sub
			return func(int) {
				a := <-aligners
				defer func() { aligners <- a }()
				var scratch []byte
				for r := lo; r < hi; r++ {
					scratch = scratch[:0]
					bases, err := basesChunk.ExpandBasesRecord(scratch, r)
					if err != nil {
						encoded[r] = agd.EncodeResult(nil, &agd.Result{
							Location: agd.UnmappedLocation, MateLocation: agd.UnmappedLocation, Flags: agd.FlagUnmapped,
						})
						continue
					}
					res := a.AlignRead(bases)
					encoded[r] = agd.EncodeResult(nil, &res)
					scratch = bases
				}
			}
		})
		if err != nil {
			return rep, err
		}
		// Count aligned bases from the compact records' length headers
		// (cheaper than re-expanding).
		var basesTotal int64
		for r := 0; r < n; r++ {
			rec, err := basesChunk.Record(r)
			if err != nil {
				return rep, err
			}
			count, n2 := uvarint(rec)
			if n2 <= 0 {
				return rep, fmt.Errorf("cluster: corrupt bases record")
			}
			basesTotal += int64(count)
		}

		builder := agd.NewChunkBuilder(agd.TypeResults, basesChunk.FirstOrdinal)
		for r := 0; r < n; r++ {
			builder.Append(encoded[r])
		}
		out, err := agd.EncodeChunk(builder.Chunk(), agd.CompressGzip)
		if err != nil {
			return rep, err
		}
		// The results write is idempotent — Put replaces, and a re-executed
		// chunk encodes identical bytes — so a duplicate completion after
		// lease reassignment is harmless. Ack only after the write landed.
		if err := store.Put(m.ChunkBlobPath(chunkIdx, agd.ColResults), out); err != nil {
			return rep, err
		}
		if err := client.Ack(chunkIdx); err != nil {
			return rep, err
		}
		rep.Chunks++
		rep.Reads += int64(n)
		rep.Bases += basesTotal
	}
}

// uvarint decodes a uvarint without importing encoding/binary at every call
// site above.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, 0
}
